// Overload-protection bench: admission policies under sustained open-loop
// overload on the Figure-10 topology (Sock Shop, 2-core / 5-thread Cart).
//
// The bench first calibrates the deployment's knee rate (saturated browse
// throughput of the initial configuration), then sweeps
//   {Sora, FIRM} x {none, token_bucket, gradient, knee_coupled}
//                x {1x, 2x, 3x knee load}
// with the admission controller installed on the Cart. Without admission,
// excess load queues without bound and the tail explodes; with a
// well-placed limit — in particular the knee-coupled one fed by Sora's SCG
// estimate — excess requests are fast-rejected and goodput stays flat.
//
// The decision log of the (sora, knee_coupled, 2x) cell is exported to
// overload_decisions.jsonl (in SORA_BENCH_CSV_DIR when set, else the CWD);
// CI asserts it is non-empty and contains "shed" records.
//
// Usage: overload_admission [duration_minutes] (default 2)
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "admission/controller.h"
#include "bench_util.h"
#include "harness/sweep.h"

namespace sora::bench {
namespace {

enum class Ctl { kSora, kFirm };

const char* name(Ctl c) { return c == Ctl::kSora ? "sora" : "firm"; }

struct Cell {
  Ctl ctl = Ctl::kSora;
  AdmissionPolicy policy = AdmissionPolicy::kNone;
  double mult = 1.0;  ///< load as a multiple of the calibrated knee rate
};

struct CellResult {
  ExperimentSummary summary;
  std::uint64_t admitted = 0;
  std::uint64_t ctrl_shed = 0;       ///< controller's own shed counter
  std::uint64_t log_shed_records = 0;  ///< "shed" records in the decision log
  double final_limit = 0.0;
  double knee = 0.0;
  std::string decisions_jsonl;  ///< filled only for the exported cell
};

/// Saturated browse throughput of the initial deployment (no control plane,
/// no admission): the reference "knee rate" every overload multiple scales.
double calibrate_knee_rate() {
  ExperimentConfig cfg;
  cfg.duration = sec(60);
  cfg.sla = msec(400);
  cfg.seed = 42;
  Experiment exp(sock_shop::make_sock_shop({}), cfg);
  exp.closed_loop(2500, sec(1), RequestMix(sock_shop::kBrowse));
  exp.run();
  return exp.summary().throughput_rps;
}

CellResult run_cell(const Cell& cell, double knee_rate, SimTime duration,
                    bool export_decisions) {
  ExperimentConfig cfg;
  cfg.duration = duration;
  cfg.sla = msec(400);
  cfg.seed = 42;
  Experiment exp(sock_shop::make_sock_shop({}), cfg);

  // Dual phase: the first half runs at ~the knee rate (Sora's estimator sees
  // a concurrency range and publishes the knee), the second half is the
  // overload burst. kDualPhase's low plateau sits at intensity 0.3 of
  // [base, peak], so solve base + 0.3 * (peak - base) = knee_rate for base.
  // At mult = 1 this degenerates to flat knee-rate load.
  const double rate = knee_rate * cell.mult;
  const double base = std::max(0.0, (knee_rate - 0.3 * rate) / 0.7);
  const WorkloadTrace trace(TraceShape::kDualPhase, duration, base, rate);
  exp.open_loop(trace, RequestMix(sock_shop::kBrowse));

  switch (cell.ctl) {
    case Ctl::kSora: {
      SoraFrameworkOptions so;
      so.sla = cfg.sla;
      auto& fw = exp.add_sora(so);
      fw.manage(ResourceKnob::entry(exp.app().service("cart")));
      break;
    }
    case Ctl::kFirm: {
      FirmOptions fo;
      fo.slo_latency = cfg.sla;
      fo.min_cores = 2.0;
      fo.max_cores = 4.0;
      auto& firm = exp.add_firm(fo);
      firm.manage(exp.app().service("cart"));
      break;
    }
  }

  AdmissionController* adm = nullptr;
  if (cell.policy != AdmissionPolicy::kNone) {
    AdmissionOptions ao;
    ao.policy = cell.policy;
    // Token bucket: a static operator-provisioned rate limit at the knee.
    ao.tokens_per_sec = knee_rate;
    ao.bucket_burst = knee_rate * 0.1;
    adm = &exp.enable_admission("cart", ao);
  }

  exp.run();

  CellResult out;
  out.summary = exp.summary();
  if (adm != nullptr) {
    out.admitted = adm->admitted();
    out.ctrl_shed = adm->shed();
    out.final_limit = adm->current_limit();
    out.knee = adm->knee();
  }
  for (const auto& rec : exp.decision_log().records()) {
    if (rec.controller == "admission" && rec.action == "shed") {
      ++out.log_shed_records;
    }
  }
  if (export_decisions) {
    std::ostringstream os;
    exp.export_decision_log(os);
    out.decisions_jsonl = os.str();
  }
  return out;
}

int run(int argc, char** argv) {
  const int minutes_arg = argc > 1 ? std::atoi(argv[1]) : 2;
  const SimTime duration = minutes(std::max(1, minutes_arg));

  print_header("Overload protection: admission policies at 1-3x knee load",
               "Open-loop browse traffic, Fig-10 Sock Shop deployment; "
               "admission on Cart");
  print_ctl_hint();

  const double knee_rate = calibrate_knee_rate();
  std::cout << "calibrated knee rate (saturated throughput, initial deploy): "
            << fmt(knee_rate, 0) << " r/s\n";

  const std::vector<Ctl> controllers = {Ctl::kSora, Ctl::kFirm};
  const std::vector<AdmissionPolicy> policies = {
      AdmissionPolicy::kNone, AdmissionPolicy::kTokenBucket,
      AdmissionPolicy::kGradient, AdmissionPolicy::kKneeCoupled};
  const std::vector<double> mults = {1.0, 2.0, 3.0};

  std::vector<Cell> cells;
  for (Ctl c : controllers) {
    for (AdmissionPolicy p : policies) {
      for (double m : mults) cells.push_back({c, p, m});
    }
  }
  auto is_export_cell = [](const Cell& c) {
    return c.ctl == Ctl::kSora && c.policy == AdmissionPolicy::kKneeCoupled &&
           c.mult == 2.0;
  };

  SweepRunner runner;
  const auto results = runner.map(cells, [&](const Cell& cell) {
    return run_cell(cell, knee_rate, duration, is_export_cell(cell));
  });

  TextTable table({"control", "admission", "load", "goodput r/s",
                   "admitted p99 ms", "good %", "shed", "shed %", "limit",
                   "knee"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const CellResult& r = results[i];
    const double total =
        static_cast<double>(r.summary.injected > 0 ? r.summary.injected : 1);
    table.add_row(
        {name(c.ctl), to_string(c.policy), fmt(c.mult, 0) + "x",
         fmt(r.summary.goodput_rps, 1), fmt(r.summary.p99_ms, 1),
         fmt(r.summary.good_fraction * 100.0, 1), fmt_count(r.summary.shed),
         fmt(100.0 * static_cast<double>(r.summary.shed) / total, 1),
         c.policy == AdmissionPolicy::kNone ? "-" : fmt(r.final_limit, 1),
         r.knee > 0.0 ? fmt(r.knee, 1) : "-"});
  }
  emit_table(table, "overload_admission");

  // Export the knee-coupled decision log for CI's shed-record assertion.
  std::string decisions_path = "overload_decisions.jsonl";
  if (const char* dir = std::getenv("SORA_BENCH_CSV_DIR")) {
    std::filesystem::create_directories(dir);
    decisions_path = std::string(dir) + "/overload_decisions.jsonl";
  }
  std::uint64_t total_shed_records = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (is_export_cell(cells[i])) {
      std::ofstream os(decisions_path);
      os << results[i].decisions_jsonl;
    }
    total_shed_records += results[i].log_shed_records;
  }
  std::cout << "\ndecision log of (sora, knee_coupled, 2x) written to "
            << decisions_path << "\n";

  // Machine-checkable verdict lines (CI greps these).
  auto find = [&](Ctl ctl, AdmissionPolicy p, double m) -> const CellResult& {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].ctl == ctl && cells[i].policy == p && cells[i].mult == m) {
        return results[i];
      }
    }
    return results.front();
  };
  const CellResult& none2x = find(Ctl::kSora, AdmissionPolicy::kNone, 2.0);
  const CellResult& knee2x =
      find(Ctl::kSora, AdmissionPolicy::kKneeCoupled, 2.0);
  const bool knee_wins =
      knee2x.summary.goodput_rps > none2x.summary.goodput_rps &&
      knee2x.summary.p99_ms < none2x.summary.p99_ms;
  std::cout << "\nknee-coupled vs none at 2x knee load (sora): goodput "
            << fmt(knee2x.summary.goodput_rps, 1) << " vs "
            << fmt(none2x.summary.goodput_rps, 1) << " r/s, admitted p99 "
            << fmt(knee2x.summary.p99_ms, 1) << " vs "
            << fmt(none2x.summary.p99_ms, 1) << " ms -> "
            << (knee_wins ? "PASS" : "FAIL") << "\n";
  std::cout << "admission shed records in decision logs: "
            << total_shed_records << "\n";

  const bool shed_logged = total_shed_records > 0 &&
                           knee2x.log_shed_records > 0 &&
                           !knee2x.decisions_jsonl.empty();
  std::cout << "shed records present: " << (shed_logged ? "yes" : "NO")
            << "\n";
  return shed_logged ? 0 : 1;
}

}  // namespace
}  // namespace sora::bench

int main(int argc, char** argv) { return sora::bench::run(argc, argv); }
