// Micro-benchmarks (google-benchmark) — the online costs Section 6 claims:
// SCG estimation (fit + Kneedle) is sub-second even on large windows, and
// the trace-analysis path (critical path extraction + deadline propagation)
// adds at most tens of milliseconds per control round. After the benchmark
// run, the control-plane stage profiler (fed by the SORA_PROFILE_STAGE
// scopes the benchmarks exercised) reports the per-stage breakdown.
#include <benchmark/benchmark.h>

#include <iostream>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/deadline.h"
#include "core/localization.h"
#include "core/scg_model.h"
#include "obs/profiler.h"
#include "obs/quantile_sketch.h"
#include "trace/critical_path.h"
#include "trace/warehouse.h"

namespace sora {
namespace {

std::vector<SamplePoint> make_scatter(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SamplePoint> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SamplePoint p;
    p.at = static_cast<SimTime>(i) * msec(100);
    p.concurrency = rng.uniform(0.5, 30.0);
    p.goodput = 1000.0 * (1.0 - std::exp(-p.concurrency / 4.0)) +
                rng.normal(0.0, 15.0);
    p.throughput = p.goodput + rng.uniform(0.0, 30.0);
    out.push_back(p);
  }
  return out;
}

void BM_ScgEstimate(benchmark::State& state) {
  const auto scatter = make_scatter(static_cast<std::size_t>(state.range(0)), 3);
  ScgModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.estimate(scatter));
  }
  state.SetLabel("points=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ScgEstimate)->Arg(600)->Arg(1800)->Arg(6000)->Arg(18000);

void BM_KneedleOnly(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<double>(i + 1);
    ys[i] = 1.0 - std::exp(-xs[i] / 8.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kneedle(xs, ys));
  }
}
BENCHMARK(BM_KneedleOnly)->Arg(50)->Arg(500);

Trace make_deep_trace(int depth, std::uint64_t id) {
  Trace t;
  t.id = TraceId(id);
  t.start = 0;
  t.end = depth * 100;
  SimTime lo = 0, hi = static_cast<SimTime>(depth) * 100;
  for (int i = 0; i < depth; ++i) {
    Span s;
    s.id = SpanId(id * 100 + static_cast<std::uint64_t>(i));
    s.trace = t.id;
    s.parent = i == 0 ? SpanId{} : SpanId(id * 100 + static_cast<std::uint64_t>(i - 1));
    s.service = ServiceId(static_cast<std::uint64_t>(i));
    s.arrival = lo;
    s.admitted = lo;
    s.departure = hi;
    s.downstream_wait = i + 1 < depth ? hi - lo - 40 : 0;
    if (i > 0) {
      t.spans[static_cast<std::size_t>(i - 1)].children.push_back(
          ChildCall{s.id, 0, lo, hi});
    }
    t.spans.push_back(s);
    lo += 20;
    hi -= 20;
  }
  return t;
}

void BM_CriticalPathExtraction(benchmark::State& state) {
  const Trace t = make_deep_trace(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_critical_path(t));
  }
}
BENCHMARK(BM_CriticalPathExtraction)->Arg(4)->Arg(16)->Arg(64);

// -- Pearson paths: batch recompute vs. streaming co-moments ------------------
//
// The localizer used to rescan every window trace at analyze() time and
// recompute PCC(PT_si, RT_CP) from scratch — O(window) per control round.
// The streaming CorrelationAccumulator absorbs each (pt, rt) pair once at
// trace-store time and finalizes r in O(1) per service per round. The sweep
// shows the round cost of the batch path growing with the window size while
// the streaming finalize stays flat.

std::pair<std::vector<double>, std::vector<double>> make_pt_rt(std::size_t n) {
  Rng rng(23);
  std::vector<double> pt(n), rt(n);
  for (std::size_t i = 0; i < n; ++i) {
    pt[i] = rng.uniform(500.0, 50000.0);                // hop processing, usec
    rt[i] = 3.0 * pt[i] + rng.normal(0.0, 10000.0);     // end-to-end, usec
  }
  return {std::move(pt), std::move(rt)};
}

void BM_PearsonBatchRecompute(benchmark::State& state) {
  // Old per-round cost: correlate the full window again every analyze().
  const auto [pt, rt] = make_pt_rt(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pearson(pt, rt));
  }
  state.SetLabel("window=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PearsonBatchRecompute)->Arg(100)->Arg(500)->Arg(1000)->Arg(5000);

void BM_PearsonStreamingAdd(benchmark::State& state) {
  // New per-trace cost: one add() per critical-path hop at store time.
  const auto [pt, rt] = make_pt_rt(4096);
  CorrelationAccumulator acc;
  std::size_t i = 0;
  for (auto _ : state) {
    acc.add(pt[i & 4095], rt[i & 4095]);
    ++i;
  }
  benchmark::DoNotOptimize(acc.r());
}
BENCHMARK(BM_PearsonStreamingAdd);

void BM_PearsonStreamingFinalize(benchmark::State& state) {
  // New per-round cost: finalize r from the co-moments — O(1), so the
  // window-size sweep is flat (same Args as the batch path for contrast).
  const auto [pt, rt] = make_pt_rt(static_cast<std::size_t>(state.range(0)));
  CorrelationAccumulator acc;
  for (std::size_t i = 0; i < pt.size(); ++i) acc.add(pt[i], rt[i]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.r());
  }
  state.SetLabel("window=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PearsonStreamingFinalize)
    ->Arg(100)->Arg(500)->Arg(1000)->Arg(5000);

// -- percentile paths: sorted-vector vs. quantile sketch ----------------------
//
// The LatencyRecorder used to keep every sample and re-sort on each
// percentile query — O(n log n) per query and O(n) memory. The sketch makes
// the query O(buckets) and memory constant. These two benchmarks show the
// before/after at growing sample counts.

std::vector<double> make_latencies(std::size_t n) {
  Rng rng(17);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(rng.lognormal_mean_cv(250000.0, 1.2));  // ~250ms, in usec
  }
  return out;
}

void BM_PercentileSortedVector(benchmark::State& state) {
  // The pre-sketch LatencyRecorder::percentile_ms path: copy + full sort
  // of the sample vector on every query.
  const auto xs = make_latencies(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(percentile(xs, 99.0));
  }
  state.SetLabel("samples=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PercentileSortedVector)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PercentileQuantileSketch(benchmark::State& state) {
  obs::QuantileSketch sk(0.01);
  for (double v : make_latencies(static_cast<std::size_t>(state.range(0)))) {
    sk.record(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sk.percentile(99.0));
  }
  state.SetLabel("samples=" + std::to_string(state.range(0)) +
                 " buckets=" + std::to_string(sk.num_buckets()));
}
BENCHMARK(BM_PercentileQuantileSketch)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_QuantileSketchRecord(benchmark::State& state) {
  // Ingest cost per sample (the recorder's hot path).
  const auto xs = make_latencies(4096);
  obs::QuantileSketch sk(0.01);
  std::size_t i = 0;
  for (auto _ : state) {
    sk.record(xs[i++ & 4095]);
  }
  benchmark::DoNotOptimize(sk.count());
}
BENCHMARK(BM_QuantileSketchRecord);

void BM_QuantileSketchMerge(benchmark::State& state) {
  obs::QuantileSketch a(0.01), b(0.01);
  for (double v : make_latencies(50000)) a.record(v);
  for (double v : make_latencies(50000)) b.record(v * 1.5);
  for (auto _ : state) {
    obs::QuantileSketch merged(a);
    merged.merge(b);
    benchmark::DoNotOptimize(merged.count());
  }
}
BENCHMARK(BM_QuantileSketchMerge);

void BM_DeadlinePropagationWindow(benchmark::State& state) {
  TraceWarehouse wh(100000);
  for (int i = 0; i < state.range(0); ++i) {
    Trace t = make_deep_trace(5, static_cast<std::uint64_t>(i));
    t.end = i;  // spread completion times
    wh.store(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(propagate_deadline(
        wh, 0, state.range(0), ServiceId(3), msec(400)));
  }
  state.SetLabel("traces=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_DeadlinePropagationWindow)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace sora

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  sora::obs::OverheadProfiler::global().reset();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  const auto stats = sora::obs::OverheadProfiler::global().stats();
  std::cout << "\n=== Per-stage controller overhead (accumulated across all "
               "benchmark iterations) ===\n";
  sora::obs::OverheadProfiler::print(stats, std::cout);
  std::cout << "\nPer-control-round cost = mean(scg.estimate) + "
               "mean(sora.deadline_prop); the paper's Section 6 claims the "
               "loop stays sub-second per round.\n";
  for (const auto& s : stats) {
    if (s.stage == "scg.estimate" || s.stage == "sora.deadline_prop") {
      std::cout << "  " << s.stage << ": mean "
                << s.mean_us() / 1000.0 << " ms/call over " << s.calls
                << " calls\n";
    }
  }
  return 0;
}
