// planet_scale: Sora vs HPA vs autothrottle on a synthesized 1000-service
// topology under a replayed flash-crowd cluster trace.
//
// The topology comes from src/topo (heavy-tailed fan-out, shared db/cache/
// blob tiers, async callback cycles, four tenants — one batch-priority);
// the workload replays a deterministic Alibaba-style CSV (diurnal baseline
// + flash-crowd spikes + interference overlay) through the exact thinning
// generator, one stream per tenant, composed with per-tenant priorities and
// front-door admission. Three legs race the same scenario under Sora soft
// adaptation, the K8s HPA and autothrottle, reporting goodput/p99 plus
// engine events/sec and the localizer's per-round overhead (wall ms and op
// count) — the scaling claim of DESIGN.md §14.
//
// Also run:
//   - a 5000-service localizer probe (no race): measures analyze() wall
//     time and op count per round at the paper's upper scale;
//   - a shard-parity gate: the Sora leg re-run at shards {1,2,4} must be
//     byte-identical (decision log + summary + warehouse digest).
//
// Usage: planet_scale [--smoke] [--rate-scale X]
//   --smoke: CI mode — 500 services, 1 sim-minute, parity at shards {1,4},
//   asserts a non-empty decision log and the localizer-overhead ceiling;
//   exits nonzero on any violation.
//   --rate-scale X: override the replayed-rate multiplier (capacity tuning).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "topo/synth.h"
#include "workload/replay.h"

namespace sora::bench {
namespace {

using WallClock = std::chrono::steady_clock;

double elapsed_sec(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

struct ScenarioConfig {
  int services = 1000;
  SimTime duration = minutes(3);
  int shards = 0;
  std::uint64_t seed = 42;
  double rate_scale = 1.0;
};

topo::Topology make_topology(int services) {
  topo::TopologyConfig tc;
  tc.seed = 1;
  tc.services = services;
  tc.tenants = 4;
  tc.entries_per_tenant = 2;
  tc.network_latency = usec(500);
  // Deeper fleets carry longer critical paths (a request walks its whole
  // tenant slice), so the quoted SLA widens with scale — otherwise the
  // baseline path eats the budget and no queueing headroom is left for the
  // controllers to fight over.
  tc.request_sla = msec(std::max(500, services));
  // A request executes its tenant's whole mid slice, so the critical path
  // grows linearly with the fleet; shrink per-hop work to match so the
  // request-level SLA means the same thing at every scale.
  tc.demand_scale = 500.0 / services;
  // Shared backends keep their generous default pools (128 threads in
  // front of 4-6 cores): the oversized-by-default soft resource the paper
  // starts from, and what Sora right-sizes down under the crowds.
  // Concentrate shared-tier popularity hard enough that the flash crowds
  // actually contend the hottest db instance (the Sora story), not just
  // the front door.
  tc.shared_zipf_s = 2.0;
  return topo::synthesize(tc);
}

std::string make_trace_csv(SimTime duration, double base_rps) {
  ReplaySynthesisConfig rc;
  rc.seed = 7;
  rc.tenants = 4;
  rc.duration_s = to_sec(duration);
  rc.step_s = 5.0;
  rc.base_rps = base_rps;
  rc.flash_crowds = 2;
  rc.flash_peak = 2.5;
  return synthesize_cluster_trace_csv(rc);
}

std::unique_ptr<Experiment> make_experiment(const topo::Topology& topo,
                                            const std::string& trace_csv,
                                            const ScenarioConfig& sc) {
  ExperimentConfig cfg;
  cfg.duration = sc.duration;
  cfg.seed = sc.seed;
  cfg.sla = topo.config.request_sla;
  auto exp = std::make_unique<Experiment>(topo.app, cfg);
  exp->set_shards(sc.shards);

  const ClusterTraceParse parsed = parse_cluster_trace_csv(trace_csv);
  if (!parsed.ok) {
    std::cerr << "planet_scale: trace parse failed: " << parsed.error << "\n";
    std::exit(1);
  }
  auto source =
      std::make_unique<ReplayWorkloadSource>(parsed.trace, sc.rate_scale);
  for (int t = 0; t < topo.config.tenants; ++t) {
    source->set_tenant_mix(static_cast<std::size_t>(t), topo.tenant_mix(t));
  }
  exp->set_workload_source(std::move(source));
  // Front-door admission on every entry (priority shedding under the flash
  // crowds; batch tenants go first). AIMD keyed to the SLA: a synthesized
  // deep tree has huge *natural* RTT spread, so relative policies
  // (gradient's long-RTT vs min-RTT test) throttle a healthy fleet; only
  // an SLA breach should count as congestion here.
  AdmissionOptions ao;
  ao.policy = AdmissionPolicy::kAimd;
  ao.aimd_latency_threshold = topo.config.request_sla;
  ao.initial_limit = 256.0;
  for (const auto& [cls, name] : topo.app.entry_service) {
    (void)cls;
    exp->enable_admission(name, ao);
  }
  return exp;
}

/// Shared-backend services (the contended soft-resource tier every
/// controller manages, so the race compares like against like).
std::vector<Service*> shared_backends(Experiment& exp,
                                      const topo::Topology& topo) {
  std::vector<Service*> out;
  for (std::size_t i = 0; i < topo.app.services.size(); ++i) {
    if (topo.tenant_of[i] >= 0) continue;
    out.push_back(exp.app().service(topo.app.services[i].name));
  }
  return out;
}

struct LegResult {
  std::string controller;
  ExperimentSummary summary;
  double wall_sec = 0.0;
  double events_per_sec = 0.0;
  std::size_t decisions = 0;
  // Sora leg only:
  double localizer_ms_per_round = 0.0;
  std::uint64_t localizer_rounds = 0;
  std::size_t localizer_round_ops = 0;
  std::string fingerprint;  ///< byte-parity probe material
};

LegResult run_leg(const std::string& controller, const topo::Topology& topo,
                  const std::string& trace_csv, const ScenarioConfig& sc) {
  auto exp = make_experiment(topo, trace_csv, sc);
  // Equal hardware envelopes (the §5.2 pairing DESIGN.md §13 uses for the
  // tournament): the soft controllers (sora, autothrottle) ride a FIRM
  // vertical baseline over the same shared backends HPA scales, so the
  // race isolates what soft-resource adaptation adds — not who was handed
  // more cores.
  // Envelope: the synthesized db tier starts at 6 cores x 2 replicas; FIRM
  // may grow each replica to 12 cores (24 total) and HPA may double its
  // replica count (4 x 6 = 24 total) — same ceiling on the binding tier.
  const auto add_firm_baseline = [&]() -> FirmAutoscaler& {
    FirmOptions fo;
    fo.slo_latency = topo.config.request_sla;
    fo.min_cores = 4.0;
    fo.max_cores = 12.0;
    auto& firm = exp->add_firm(fo);
    for (Service* svc : shared_backends(*exp, topo)) firm.manage(svc);
    return firm;
  };
  SoraFramework* sora_fw = nullptr;
  if (controller == "sora") {
    SoraFrameworkOptions so;
    so.sla = topo.config.request_sla;
    // Top-k detail keeps the per-round report O(n log k) at thousands of
    // services; the verdict is identical to the full-sort path.
    so.localizer.top_k = 32;
    // Bound deadline propagation the same way: fold a deterministic sample
    // of the window instead of every ~500-hop trace, per knob, per round.
    so.deadline.max_traces = 512;
    auto& fw = exp->add_sora(so);
    for (Service* svc : shared_backends(*exp, topo)) {
      fw.manage(ResourceKnob::entry(svc));
    }
    Experiment::link(add_firm_baseline(), fw);
    sora_fw = &fw;
  } else if (controller == "firm") {
    add_firm_baseline();
  } else if (controller == "hpa") {
    HpaOptions ho;
    ho.max_replicas = 4;  // 4 x 6-core db replicas = the shared 24-core cap
    auto& hpa = exp->add_hpa(ho);
    for (Service* svc : shared_backends(*exp, topo)) hpa.manage(svc);
  } else if (controller == "autothrottle") {
    AutothrottleOptions ao;
    ao.budget = topo.config.request_sla;
    auto& at = exp->add_autothrottle(ao);
    // Autothrottle actuates through knee-coupled admission at the services
    // it manages (its fast throttlers publish concurrency caps via
    // set_knee) — without this its decisions never touch the fleet.
    AdmissionOptions knee;
    knee.policy = AdmissionPolicy::kKneeCoupled;
    for (Service* svc : shared_backends(*exp, topo)) {
      at.manage(svc);
      exp->enable_admission(svc->name(), knee);
    }
    add_firm_baseline();
  }

  const auto start = WallClock::now();
  exp->run();
  LegResult r;
  r.controller = controller;
  r.wall_sec = elapsed_sec(start);
  r.summary = exp->summary();
  r.events_per_sec =
      r.wall_sec > 0
          ? static_cast<double>(exp->sim().events_executed()) / r.wall_sec
          : 0.0;
  r.decisions = exp->decision_log().size();
  if (sora_fw != nullptr) {
    for (const obs::StageStats& s : r.summary.controller_overhead) {
      if (s.stage == "sora.localization") {
        r.localizer_rounds = s.calls;
        r.localizer_ms_per_round = s.mean_us() / 1000.0;
      }
    }
    r.localizer_round_ops = sora_fw->localizer().last_round_cost().total();
  }

  std::ostringstream fp;
  fp.precision(17);
  const ExperimentSummary& s = r.summary;
  fp << s.injected << '|' << s.completed << '|' << s.shed << '|' << s.mean_ms
     << '|' << s.p50_ms << '|' << s.p95_ms << '|' << s.p99_ms << '|'
     << s.goodput_rps << '|' << s.good_fraction << '\n';
  fp << exp->warehouse().digest() << '|' << exp->warehouse().total_stored()
     << '\n';
  exp->export_decision_log(fp);
  r.fingerprint = fp.str();
  return r;
}

/// Localizer scale probe: a short run at `services`, then analyze() timed
/// standalone over repeated calls (it only reads the streamed state).
struct LocalizerProbe {
  int services = 0;
  double ms_per_round = 0.0;
  std::size_t round_ops = 0;
  std::size_t traces_folded = 0;
};

LocalizerProbe probe_localizer(int services, SimTime duration,
                               const ScenarioConfig& base) {
  const topo::Topology topo = make_topology(services);
  const std::string csv = make_trace_csv(duration, 40.0);
  ScenarioConfig sc = base;
  sc.duration = duration;
  // Deeper fleet, hotter shared tier: scale the replayed rate down with the
  // per-request cost so the probe's window actually completes traces.
  sc.rate_scale = 200.0 / services;
  auto exp = make_experiment(topo, csv, sc);
  CriticalServiceLocalizer localizer(
      exp->app(), exp->warehouse(),
      LocalizerOptions{.utilization_threshold = 0.5,
                       .min_cp_appearances = 10,
                       .top_k = 32});
  exp->run();

  LocalizerProbe p;
  p.services = services;
  constexpr int kReps = 20;
  const auto start = WallClock::now();
  for (int i = 0; i < kReps; ++i) (void)localizer.analyze();
  p.ms_per_round = elapsed_sec(start) * 1000.0 / kReps;
  p.round_ops = localizer.last_round_cost().total();
  p.traces_folded = localizer.last_round_cost().traces_folded;
  return p;
}

int run(int argc, char** argv) {
  bool smoke = false;
  double rate_scale_override = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--rate-scale") == 0 && i + 1 < argc) {
      rate_scale_override = std::atof(argv[++i]);
    }
  }

  ScenarioConfig sc;
  sc.services = smoke ? 500 : 1000;
  sc.duration = smoke ? minutes(1) : minutes(3);
  // The synthesized graph is fully reachable: one request touches every mid
  // on its tenant's slice plus dozens of Zipf-hot shared-backend calls, so
  // aggregate capacity is bounded by the hottest db instance. The replayed
  // rates are scaled to sit just under that bound at steady state — the
  // flash crowds are what push the fleet into overload.
  sc.rate_scale = smoke ? 0.12 : 0.15;
  if (rate_scale_override > 0.0) sc.rate_scale = rate_scale_override;
  const std::vector<int> parity_shards = smoke ? std::vector<int>{1, 4}
                                               : std::vector<int>{1, 2, 4};

  print_header("planet_scale: Sora vs HPA vs autothrottle",
               "Synthesized topology + replayed flash-crowd cluster trace");

  const topo::Topology topo = make_topology(sc.services);
  const topo::TopologyStats stats = topo.stats();
  std::cout << "topology: " << stats.services << " services ("
            << stats.entries << " entries, " << stats.mid_services
            << " mid, " << stats.shared_services << " shared), "
            << stats.sync_edges << " sync + " << stats.async_edges
            << " async edges, fanout p99 " << stats.fanout_p99
            << ", shared in-degree max " << stats.shared_in_degree_max
            << "\n";
  const std::string csv =
      make_trace_csv(sc.duration, smoke ? 60.0 : 120.0);
  std::cout << "trace: " << topo.config.tenants
            << " tenant columns, replayed over " << to_sec(sc.duration)
            << " s\n\n";

  bool ok = true;

  // ---- The race -------------------------------------------------------------
  std::vector<LegResult> legs;
  for (const char* controller : {"sora", "firm", "hpa", "autothrottle"}) {
    legs.push_back(run_leg(controller, topo, csv, sc));
    const LegResult& r = legs.back();
    std::cout << r.controller << ":\n"
              << "  goodput        : " << fmt(r.summary.goodput_rps, 1)
              << " rps (" << fmt(r.summary.good_fraction * 100.0, 1)
              << "% good)\n"
              << "  p99            : " << fmt(r.summary.p99_ms, 1) << " ms\n"
              << "  injected/shed  : " << r.summary.injected << " / "
              << r.summary.shed << "\n"
              << "  decisions      : " << r.decisions << "\n"
              << "  events/sec     : " << fmt(r.events_per_sec / 1e6, 2)
              << " M (wall " << fmt(r.wall_sec, 1) << " s)\n";
    if (r.controller == "sora") {
      std::cout << "  localizer      : " << fmt(r.localizer_ms_per_round, 3)
                << " ms/round over " << r.localizer_rounds << " rounds, "
                << r.localizer_round_ops << " ops/round\n";
    }
    if (r.decisions == 0) {
      std::cout << "  FAIL: empty decision log\n";
      ok = false;
    }
  }

  // ---- Localizer scale probe ------------------------------------------------
  const int probe_services = smoke ? 2000 : 5000;
  const LocalizerProbe probe =
      probe_localizer(probe_services, smoke ? sec(20) : sec(40), sc);
  std::cout << "\nlocalizer probe at " << probe.services << " services: "
            << fmt(probe.ms_per_round, 3) << " ms/round ("
            << probe.round_ops << " ops, " << probe.traces_folded
            << " traces folded)\n";
  // The DESIGN.md §14 ceiling: sub-millisecond per round at 5000 services
  // in release builds. The gate is deliberately looser (sanitizered or
  // loaded CI boxes) — the op-count guard in test_localizer_scale pins the
  // asymptotics; this catches gross wall-clock regressions.
  const double ceiling_ms = 10.0;
  if (probe.ms_per_round > ceiling_ms) {
    std::cout << "FAIL: localizer round " << fmt(probe.ms_per_round, 3)
              << " ms exceeds ceiling " << fmt(ceiling_ms, 1) << " ms\n";
    ok = false;
  }

  // ---- Shard parity ---------------------------------------------------------
  std::cout << "\nshard parity (sora leg, shards";
  for (int s : parity_shards) std::cout << " " << s;
  std::cout << "):\n";
  std::string reference;
  for (int shards : parity_shards) {
    ScenarioConfig psc = sc;
    psc.shards = shards;
    const LegResult leg = run_leg("sora", topo, csv, psc);
    if (shards == parity_shards.front()) {
      reference = leg.fingerprint;
      std::cout << "  shards=" << shards << ": reference ("
                << reference.size() << " fingerprint bytes)\n";
      continue;
    }
    const bool match = leg.fingerprint == reference;
    std::cout << "  shards=" << shards << ": "
              << (match ? "IDENTICAL" : "DIVERGED") << "\n";
    if (!match) {
      ok = false;
      std::istringstream a(reference), b(leg.fingerprint);
      std::string la, lb;
      int line = 1;
      while (std::getline(a, la) && std::getline(b, lb) && la == lb) ++line;
      std::cout << "    first divergence at fingerprint line " << line
                << ":\n      shards=" << parity_shards.front() << ": " << la
                << "\n      shards=" << shards << ": " << lb << "\n";
    }
  }

  std::cout << (ok ? "\nPASS\n" : "\nFAIL\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sora::bench

int main(int argc, char** argv) { return sora::bench::run(argc, argv); }
