// Table 1 — optimal-concurrency estimation accuracy (MAPE) of the SCG
// model across sampling intervals, for three heterogeneous soft resources:
// Cart server threads, Catalogue DB connections, Post Storage client
// connections.
//
// Paper claim: 100 ms sampling minimizes MAPE for all three services; both
// finer (noisy buckets) and coarser (missed transients) intervals estimate
// worse.
#include "bench_util.h"

#include "common/stats.h"
#include "core/estimator.h"
#include "core/scg_model.h"
#include "harness/sweep.h"

namespace sora::bench {
namespace {

constexpr SimTime kDuration = minutes(2);
const std::vector<SimTime> kIntervals = {msec(10),  msec(20),  msec(50),
                                         msec(100), msec(200), msec(500)};
const std::vector<std::uint64_t> kSeeds = {11, 22, 33};

struct Target {
  std::string name;
  std::function<ApplicationConfig()> make_app;
  std::function<ResourceKnob(Application&)> make_knob;
  int request_class = 0;
  int users = 0;
  SimTime rtt = 0;  ///< service-level threshold for the SCG goodput
  int truth = 0;    ///< ground-truth optimum (filled by a sweep)
  std::function<void(ApplicationConfig&, int)> set_pool;
};

std::vector<Target> make_targets() {
  std::vector<Target> targets;
  {
    Target t;
    t.name = "Cart";
    t.make_app = [] {
      sock_shop::Params p;
      p.cart_cores = 2.0;
      p.cart_threads = 48;  // generous: let concurrency range freely
      return sock_shop::make_sock_shop(p);
    };
    t.make_knob = [](Application& app) {
      return ResourceKnob::entry(app.service("cart"));
    };
    t.request_class = sock_shop::kBrowse;
    t.users = 1000;  // near the 2-core Cart's capacity
    t.rtt = msec(30);
    t.set_pool = [](ApplicationConfig& cfg, int size) {
      for (auto& s : cfg.services) {
        if (s.name == "cart") s.entry_pool_size = size;
      }
    };
    targets.push_back(std::move(t));
  }
  {
    Target t;
    t.name = "Catalogue";
    t.make_app = [] {
      sock_shop::Params p;
      p.catalogue_db_connections = 48;
      // Keep Cart out of the way: catalogue-db must be the bottleneck.
      p.cart_cores = 8.0;
      p.cart_threads = 64;
      return sock_shop::make_sock_shop(p);
    };
    t.make_knob = [](Application& app) {
      return ResourceKnob::edge(app.service("catalogue"), "catalogue-db");
    };
    t.request_class = sock_shop::kBrowse;
    t.users = 2600;  // near catalogue-db's capacity
    t.rtt = msec(10);
    t.set_pool = [](ApplicationConfig& cfg, int size) {
      for (auto& s : cfg.services) {
        if (s.name == "catalogue") s.edge_pools["catalogue-db"].size = size;
      }
    };
    targets.push_back(std::move(t));
  }
  {
    Target t;
    t.name = "Post Storage";
    t.make_app = [] {
      social_network::Params p;
      p.post_storage_connections = 48;
      return social_network::make_social_network(p);
    };
    t.make_knob = [](Application& app) {
      return ResourceKnob::edge(app.service("home-timeline"), "post-storage");
    };
    t.request_class = social_network::kReadTimelineLight;
    t.users = 1600;  // near Post Storage's capacity
    t.rtt = msec(15);
    t.set_pool = [](ApplicationConfig& cfg, int size) {
      for (auto& s : cfg.services) {
        if (s.name == "home-timeline") s.edge_pools["post-storage"].size = size;
      }
    };
    targets.push_back(std::move(t));
  }
  return targets;
}

/// SCG estimate of the optimum at one sampling interval (one seed).
int estimate_once(const Target& t, SimTime interval, std::uint64_t seed) {
  ExperimentConfig ecfg;
  ecfg.duration = kDuration;
  ecfg.seed = seed;
  Experiment exp(t.make_app(), ecfg);
  const WorkloadTrace trace(TraceShape::kLargeVariation, kDuration,
                            t.users * 0.3, t.users);
  auto& users = exp.closed_loop(t.users / 3, sec(1), RequestMix(t.request_class));
  users.follow_trace(trace);

  EstimatorOptions opts;
  opts.sampling_interval = interval;
  opts.window = kDuration;
  ConcurrencyEstimator est(exp.sim(), exp.tracer(), opts);
  const ResourceKnob knob = t.make_knob(exp.app());
  est.watch(knob);
  est.set_rt_threshold(knob, t.rtt);
  exp.run();
  const auto e = est.estimate(knob);
  return e.valid ? e.recommended : 0;
}

/// Pool sizes swept for the ground-truth goodput argmax.
const std::vector<int> kTruthSizes = {2, 4, 6, 8, 12, 16, 24};

/// Service-level goodput of one fixed pool size (one cell of the
/// ground-truth sweep), measured with the same threshold the SCG model
/// uses, via a sampler on the knob.
double ground_truth_goodput(const Target& t, int size) {
  ApplicationConfig cfg = t.make_app();
  t.set_pool(cfg, size);
  ExperimentConfig ecfg;
  ecfg.duration = kDuration;
  ecfg.seed = 99;
  ecfg.sla = t.rtt;  // client-side SLA not used for truth; see below
  Experiment exp(std::move(cfg), ecfg);
  const WorkloadTrace trace(TraceShape::kLargeVariation, kDuration,
                            t.users * 0.3, t.users);
  auto& users =
      exp.closed_loop(t.users / 3, sec(1), RequestMix(t.request_class));
  users.follow_trace(trace);

  ConcurrencyEstimator est(exp.sim(), exp.tracer());
  const ResourceKnob knob = t.make_knob(exp.app());
  est.watch(knob);
  est.set_rt_threshold(knob, t.rtt);
  exp.run();
  double gp = 0.0;
  for (const auto& p : est.sampler(knob)->points()) gp += p.goodput;
  return gp;
}

/// Ground truth: goodput-argmax over the pool-size goodputs (first
/// maximum wins, matching an in-order serial sweep).
int ground_truth(const std::vector<double>& goodputs) {
  int best = kTruthSizes.front();
  double best_gp = -1.0;
  for (std::size_t i = 0; i < kTruthSizes.size(); ++i) {
    if (goodputs[i] > best_gp) {
      best_gp = goodputs[i];
      best = kTruthSizes[i];
    }
  }
  return best;
}

int main_impl() {
  print_header("Table 1: SCG estimation MAPE vs sampling interval",
               "Paper: 100ms interval minimizes MAPE for all three services "
               "(5.83/5.33/12.04%)");

  auto targets = make_targets();
  TextTable table({"Sampling Interval", "Cart", "Catalogue", "Post Storage"});
  std::vector<std::vector<double>> mape_by_interval(kIntervals.size());

  SweepRunner runner;
  // Ground truth: targets x pool sizes, flattened into one parallel pass.
  const auto truth_gps = runner.map(
      targets.size() * kTruthSizes.size(), [&](std::size_t i) {
        const Target& t = targets[i / kTruthSizes.size()];
        return ground_truth_goodput(t, kTruthSizes[i % kTruthSizes.size()]);
      });
  for (std::size_t ti = 0; ti < targets.size(); ++ti) {
    auto& t = targets[ti];
    t.truth = ground_truth(
        {truth_gps.begin() + ti * kTruthSizes.size(),
         truth_gps.begin() + (ti + 1) * kTruthSizes.size()});
    std::cout << "ground-truth optimum for " << t.name << ": " << t.truth
              << "\n";
  }

  // Estimates: intervals x targets x seeds, flattened row-major.
  const std::size_t per_cell = kSeeds.size();
  const std::size_t per_interval = targets.size() * per_cell;
  const auto estimates = runner.map(
      kIntervals.size() * per_interval, [&](std::size_t i) {
        const Target& t = targets[(i % per_interval) / per_cell];
        return estimate_once(t, kIntervals[i / per_interval],
                             kSeeds[i % per_cell]);
      });
  for (std::size_t ii = 0; ii < kIntervals.size(); ++ii) {
    for (std::size_t ti = 0; ti < targets.size(); ++ti) {
      const Target& t = targets[ti];
      std::vector<double> actual, predicted;
      for (std::size_t si = 0; si < kSeeds.size(); ++si) {
        const int est = estimates[ii * per_interval + ti * per_cell + si];
        actual.push_back(static_cast<double>(t.truth));
        predicted.push_back(static_cast<double>(est));
      }
      mape_by_interval[ii].push_back(mape(actual, predicted));
    }
  }

  for (std::size_t ii = 0; ii < kIntervals.size(); ++ii) {
    table.add_row({fmt(to_msec(kIntervals[ii]), 0) + "ms",
                   fmt(mape_by_interval[ii][0], 2),
                   fmt(mape_by_interval[ii][1], 2),
                   fmt(mape_by_interval[ii][2], 2)});
  }
  std::cout << "\nMAPE [%]:\n";
  emit_table(table, "table1_sampling_mape");

  // Which interval wins per service?
  std::cout << "\nbest interval per service (paper: 100ms for all):\n";
  const char* names[] = {"Cart", "Catalogue", "Post Storage"};
  for (int s = 0; s < 3; ++s) {
    std::size_t best = 0;
    for (std::size_t ii = 1; ii < kIntervals.size(); ++ii) {
      if (mape_by_interval[ii][s] < mape_by_interval[best][s]) best = ii;
    }
    std::cout << "  " << names[s] << ": " << fmt(to_msec(kIntervals[best]), 0)
              << "ms\n";
  }
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main() { return sora::bench::main_impl(); }
