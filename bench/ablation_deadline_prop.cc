// Ablation — Sora with and without deadline propagation.
//
// Without the RT Threshold Propagation Phase, the critical service's
// goodput is measured against a fixed default threshold instead of
// "SLA - upstream processing time". When upstream services consume a
// meaningful share of the budget, the un-propagated threshold is too loose
// and the model over-allocates; the propagated one keeps the knee honest.
// (This isolates the paper's answer to "why not just swap throughput for
// goodput in ConScale" — Section 5.2's closing discussion.)
#include "bench_util.h"

#include "core/sora.h"
#include "harness/sweep.h"

namespace sora::bench {
namespace {

struct Result {
  ExperimentSummary summary;
  SimTime final_rtt = 0;
  int final_threads = 0;
};

Result run(bool with_propagation, SimTime fixed_rtt, std::uint64_t seed) {
  sock_shop::Params params;
  params.cart_cores = 2.0;
  params.cart_threads = 5;
  ExperimentConfig ecfg;
  ecfg.duration = minutes(5);
  ecfg.sla = msec(250);
  ecfg.seed = seed;
  Experiment exp(sock_shop::make_sock_shop(params), ecfg);
  const WorkloadTrace trace(TraceShape::kDualPhase, ecfg.duration, 500, 1100);
  auto& users = exp.closed_loop(500, sec(1), RequestMix(sock_shop::kBrowse));
  users.follow_trace(trace);

  SoraFrameworkOptions so;
  so.sla = ecfg.sla;
  so.deadline_propagation = with_propagation;
  so.estimator.default_rt_threshold = fixed_rtt;
  auto& sora = exp.add_sora(so);
  const ResourceKnob knob = ResourceKnob::entry(exp.app().service("cart"));
  sora.manage(knob);

  exp.run();
  Result out;
  out.summary = exp.summary();
  out.final_rtt = sora.estimator().rt_threshold(knob);
  out.final_threads = knob.current_size();
  return out;
}

int main_impl() {
  print_header("Ablation: deadline propagation on vs off",
               "Propagated thresholds keep the knee honest when upstream "
               "services consume part of the latency budget");

  struct Variant {
    bool propagation;
    SimTime fixed_rtt;
  };
  // Without propagation, the threshold stays at whatever static default the
  // operator guessed. Evaluate a loose and a tight guess.
  const std::vector<Variant> variants = {
      {true, msec(50)}, {false, msec(250)}, {false, msec(5)}};
  const auto results = SweepRunner().map(variants, [](const Variant& v) {
    return run(v.propagation, v.fixed_rtt, 17);
  });
  const Result& with = results[0];
  const Result& loose = results[1];
  const Result& tight = results[2];

  TextTable t({"variant", "final RTT [ms]", "final threads",
               "goodput [req/s]", "p99 [ms]"});
  t.add_row({"propagated (Sora)", fmt(to_msec(with.final_rtt), 1),
             fmt_count(static_cast<std::uint64_t>(with.final_threads)),
             fmt(with.summary.goodput_rps, 0), fmt(with.summary.p99_ms, 0)});
  t.add_row({"fixed 250ms (= SLA, too loose)", fmt(to_msec(loose.final_rtt), 1),
             fmt_count(static_cast<std::uint64_t>(loose.final_threads)),
             fmt(loose.summary.goodput_rps, 0), fmt(loose.summary.p99_ms, 0)});
  t.add_row({"fixed 5ms (too tight)", fmt(to_msec(tight.final_rtt), 1),
             fmt_count(static_cast<std::uint64_t>(tight.final_threads)),
             fmt(tight.summary.goodput_rps, 0), fmt(tight.summary.p99_ms, 0)});
  t.print(std::cout);

  std::cout << "\npropagated >= best fixed guess: "
            << (with.summary.goodput_rps >=
                        0.95 * std::max(loose.summary.goodput_rps,
                                        tight.summary.goodput_rps)
                    ? "yes"
                    : "no")
            << " (and requires no manual per-service threshold tuning)\n";
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main() { return sora::bench::main_impl(); }
