// Figure 12 — Kubernetes HPA vs. HPA+Sora under system-state drifting:
// the Read-Home-Timeline request type flips from light (2 posts) to heavy
// (10 posts) mid-run while HPA scales Post Storage horizontally.
//
// HPA alone adds Post Storage replicas but the Home-Timeline ClientPool
// stays at its pre-profiled size: the static connections bottleneck the
// scaled-out tier, especially after requests turn heavy. Sora tracks the
// replica count (proportional rescale on scale events) and re-learns the
// optimum after the drift.
#include "bench_util.h"

namespace sora::bench {
namespace {

struct DriftResult {
  ExperimentSummary summary;
  std::vector<ServiceTimelinePoint> home_timeline;  // edge pool view
  std::vector<ServiceTimelinePoint> post_storage;   // CPU + replicas view
  std::vector<TimelineBucket> client;
  std::size_t slo_episodes = 0;
  std::string top_episode_consumer;  // during the longest e2e episode
};

DriftResult run(bool with_sora, std::uint64_t seed,
                const std::string& telemetry_dir) {
  social_network::Params params;
  params.post_storage_connections = 10;  // pre-profiled for light requests
  params.post_storage_cores = 2.0;
  ExperimentConfig ecfg;
  ecfg.duration = minutes(8);
  ecfg.sla = msec(400);
  ecfg.seed = seed;
  Experiment exp(social_network::make_social_network(params), ecfg);

  // Peak sized so the post-drift (heavy) demand is feasible for the
  // scaled-out tier with an adapted connection pool (~1100 req/s vs. the
  // ~770 req/s the static 10-connection gate can admit) — the same
  // headroom relationship as the paper's testbed.
  const WorkloadTrace trace(TraceShape::kLargeVariation, ecfg.duration, 400,
                            1300);
  auto& users = exp.closed_loop(
      400, sec(1), RequestMix(social_network::kReadTimelineLight));
  users.follow_trace(trace);
  // State drift at 5/8 of the run (the paper flips at 450s of 720s).
  exp.sim().schedule_at(ecfg.duration * 5 / 8, [&users] {
    users.set_mix(RequestMix(social_network::kReadTimelineHeavy));
  });

  HpaOptions ho;
  ho.max_replicas = 4;
  // Kubernetes' default downscale stabilization is 5 minutes; a fast
  // scale-in right at the drift would be a config artifact, not a finding.
  ho.downscale_stabilization_periods = 20;
  auto& hpa = exp.add_hpa(ho);
  hpa.manage(exp.app().service("post-storage"));

  if (with_sora) {
    SoraFrameworkOptions so;
    so.sla = ecfg.sla;
    // Operator floor: never shrink below the pre-profiled baseline (the
    // paper's Sora likewise never drops the Post Storage pool below the
    // 10-connection light-request optimum, Figure 12(iii)).
    so.adapter.min_size = params.post_storage_connections;
    auto& sora = exp.add_sora(so);
    sora.manage(
        ResourceKnob::edge(exp.app().service("home-timeline"), "post-storage"));
    Experiment::link(hpa, sora);
  }

  exp.track_service("home-timeline", "post-storage");
  exp.track_service("post-storage");
  if (!telemetry_dir.empty()) {
    SloAnalyticsOptions slo;
    slo.attribution_window = sec(15);
    exp.enable_slo_analytics(slo);
  }
  exp.run();

  if (!telemetry_dir.empty()) {
    std::filesystem::create_directories(telemetry_dir);
    const std::string tag = with_sora ? "sora" : "hpa";
    const std::string base = telemetry_dir + "/" + tag;
    const std::string title = "Social Network drift, " + tag + " run";
    {
      std::ofstream os(base + "_slo_report.txt");
      exp.export_slo_report_text(os, title);
    }
    {
      std::ofstream os(base + "_slo_report.html");
      exp.export_slo_report_html(os, title);
    }
    {
      std::ofstream os(base + "_attribution.csv");
      exp.export_attribution_csv(os);
    }
    {
      std::ofstream os(base + "_burn.csv");
      exp.export_burn_csv("e2e", os);
    }
    {
      std::ofstream os(base + "_decisions.jsonl");
      exp.export_decision_log(os);
    }
  }

  DriftResult out;
  out.summary = exp.summary();
  out.home_timeline = exp.timeline("home-timeline");
  out.post_storage = exp.timeline("post-storage");
  out.client = exp.recorder().timeline();
  if (exp.slo_analytics_enabled()) {
    const auto eps = exp.slo_monitor().episodes_for("e2e");
    out.slo_episodes = eps.size();
    const obs::ViolationEpisode* longest = nullptr;
    for (const auto* ep : eps) {
      if (longest == nullptr || ep->duration() > longest->duration()) {
        longest = ep;
      }
    }
    if (longest != nullptr) {
      out.top_episode_consumer =
          exp.attribution().top_consumer(longest->start, longest->end);
    }
  }
  return out;
}

void print_panes(const std::string& label, const DriftResult& r) {
  const auto rt = column(r.client,
                         [](const TimelineBucket& b) { return b.mean_rt_ms(); });
  const auto gp = column(r.client, [](const TimelineBucket& b) {
    return static_cast<double>(b.good);
  });
  const auto util = column(
      r.post_storage, [](const ServiceTimelinePoint& p) { return p.util_pct; });
  const auto reps = column(r.post_storage, [](const ServiceTimelinePoint& p) {
    return static_cast<double>(p.replicas);
  });
  const auto conns = column(r.home_timeline, [](const ServiceTimelinePoint& p) {
    return static_cast<double>(p.edge_capacity);
  });
  auto vmax = [](const std::vector<double>& v) {
    double m = 0.0;
    for (double x : v) m = std::max(m, x);
    return m;
  };
  std::cout << "\n--- " << label << " ---\n";
  std::cout << "resp time (max " << fmt(vmax(rt), 0) << " ms)      |"
            << sparkline(rt) << "|\n";
  std::cout << "goodput   (max " << fmt(vmax(gp), 0) << " r/s)     |"
            << sparkline(gp) << "|\n";
  std::cout << "PS util   (max " << fmt(vmax(util), 0) << " %)       |"
            << sparkline(util) << "|\n";
  std::cout << "PS replicas (max " << fmt(vmax(reps), 0) << ")        |"
            << sparkline(reps) << "|\n";
  std::cout << "connections to PS (max " << fmt(vmax(conns), 0) << ") |"
            << sparkline(conns) << "|\n";
}

int main_impl(int argc, char** argv) {
  print_header(
      "Figure 12: Kubernetes HPA vs Sora under system-state drifting",
      "Paper: static 10-conn pool bottlenecks the scaled-out Post Storage "
      "after the light->heavy flip; Sora re-adapts (e.g. 120 conns across "
      "4 replicas)");

  // SLO report / attribution export directory, overridable as argv[1];
  // "-" disables export.
  std::string telemetry_dir = argc > 1 ? argv[1] : "telemetry/fig12";
  if (telemetry_dir == "-") telemetry_dir.clear();

  const DriftResult hpa = run(false, 6, telemetry_dir);
  const DriftResult sora = run(true, 6, telemetry_dir);
  print_panes("(a) Kubernetes HPA only", hpa);
  print_panes("(b) HPA + Sora", sora);

  std::cout << "\n=== Summary (RTT " << 400 << "ms) ===\n";
  TextTable t({"metric", "HPA", "HPA+Sora", "paper shape"});
  t.add_row({"p99 latency [ms]", fmt(hpa.summary.p99_ms, 0),
             fmt(sora.summary.p99_ms, 0), "Sora lower"});
  t.add_row({"avg goodput [req/s]", fmt(hpa.summary.goodput_rps, 0),
             fmt(sora.summary.goodput_rps, 0), "Sora higher"});
  auto final_conns = [](const DriftResult& r) {
    return r.home_timeline.empty() ? 0 : r.home_timeline.back().edge_capacity;
  };
  t.add_row({"final connections to PS", fmt_count(final_conns(hpa)),
             fmt_count(final_conns(sora)),
             "Sora grows with replicas + drift"});
  t.print(std::cout);

  if (!telemetry_dir.empty()) {
    std::cout << "\n=== Streaming SLO analytics ===\n";
    std::cout << "HPA run:  " << hpa.slo_episodes
              << " SLO violation episode(s)";
    if (!hpa.top_episode_consumer.empty()) {
      std::cout << ", longest episode's budget went to "
                << hpa.top_episode_consumer;
    }
    std::cout << "\nSora run: " << sora.slo_episodes
              << " SLO violation episode(s)";
    if (!sora.top_episode_consumer.empty()) {
      std::cout << ", longest episode's budget went to "
                << sora.top_episode_consumer;
    }
    std::cout << "\nSLO reports exported to " << telemetry_dir
              << "/: {hpa,sora}_slo_report.{txt,html}, "
                 "{hpa,sora}_attribution.csv, {hpa,sora}_burn.csv, "
                 "{hpa,sora}_decisions.jsonl\n";
  }
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main(int argc, char** argv) { return sora::bench::main_impl(argc, argv); }
