// Figure 7 — correlation between Cart concurrency and goodput at 100 ms
// sampling over a 3-minute bursty run, under two different service-level
// response-time thresholds.
//
// Paper claim: the threshold changes the main-sequence curve and therefore
// the knee — a loose threshold lets goodput keep rising to higher
// concurrency; a tight threshold caps it earlier.
#include "bench_util.h"

#include "core/estimator.h"
#include "core/scg_model.h"

namespace sora::bench {
namespace {

struct ScatterRun {
  std::vector<CurvePoint> curve;
  ConcurrencyEstimate estimate;
};

ScatterRun run(SimTime rtt, std::uint64_t seed) {
  sock_shop::Params params;
  params.cart_cores = 2.0;
  params.cart_threads = 24;  // generous cap so concurrency ranges freely
  ExperimentConfig ecfg;
  ecfg.duration = minutes(3);
  ecfg.sla = msec(400);
  ecfg.seed = seed;
  Experiment exp(sock_shop::make_sock_shop(params), ecfg);
  const WorkloadTrace trace(TraceShape::kLargeVariation, ecfg.duration, 150,
                            700);
  auto& users = exp.closed_loop(150, sec(1), RequestMix(sock_shop::kBrowse));
  users.follow_trace(trace);

  ConcurrencyEstimator est(exp.sim(), exp.tracer());
  const ResourceKnob knob = ResourceKnob::entry(exp.app().service("cart"));
  est.watch(knob);
  est.set_rt_threshold(knob, rtt);

  exp.run();

  ScatterRun out;
  ScgModel model;
  const auto points = est.sampler(knob)->points();
  out.curve = model.aggregate(points);
  out.estimate = model.estimate(points);
  return out;
}

void print_run(const std::string& label, const ScatterRun& r) {
  std::cout << "\n--- " << label << " ---\n";
  TextTable t({"concurrency", "mean goodput [req/s]", "samples"});
  for (const auto& p : r.curve) {
    t.add_row({fmt(p.concurrency, 0), fmt(p.value, 1),
               fmt_count(p.samples)});
  }
  t.print(std::cout);
  if (r.estimate.valid) {
    std::cout << "knee: " << fmt(r.estimate.knee_concurrency, 1)
              << " (recommended " << r.estimate.recommended << ", degree "
              << r.estimate.degree_used << ", R^2 "
              << fmt(r.estimate.r_squared, 3) << ")\n";
  } else {
    std::cout << "knee: none (" << r.estimate.failure << ")\n";
  }
}

int main_impl() {
  print_header(
      "Figure 7: Cart concurrency-goodput scatter, 100ms sampling, 3 min",
      "Paper: 5ms vs 50ms service thresholds produce different knees");

  const ScatterRun tight = run(msec(5), 4);
  const ScatterRun loose = run(msec(50), 4);
  print_run("(a) 5ms response-time threshold", tight);
  print_run("(b) 50ms response-time threshold", loose);

  std::cout << "\npaper's claim: the knee/goodput ceiling under the tight "
               "threshold sits at or below the loose one's\n";
  double tight_peak = 0, loose_peak = 0;
  for (const auto& p : tight.curve) tight_peak = std::max(tight_peak, p.value);
  for (const auto& p : loose.curve) loose_peak = std::max(loose_peak, p.value);
  std::cout << "measured goodput ceilings: 5ms -> " << fmt(tight_peak, 1)
            << " req/s, 50ms -> " << fmt(loose_peak, 1) << " req/s ("
            << (tight_peak <= loose_peak ? "holds" : "DOES NOT HOLD")
            << ")\n";
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main() { return sora::bench::main_impl(); }
