// Figure 11 — ConScale vs. Sora under the "Large Variation" workload,
// both paired with a threshold-based vertical autoscaler (K8s VPA).
//
// ConScale's latency-agnostic SCT model picks the *throughput* knee, which
// over-allocates the thread pool once the pod scales up; the extra
// concurrency inflates latency past the SLO and burns CPU. Sora's SCG model
// folds the propagated deadline into the same pipeline and lands on a
// smaller, latency-safe allocation.
#include "bench_util.h"

namespace sora::bench {
namespace {

int main_impl() {
  print_header("Figure 11: ConScale vs Sora, Large Variation, VPA substrate",
               "Paper: ConScale adapts ~40 threads (throughput knee), Sora "
               "~30 (goodput knee); Sora achieves higher goodput");

  CartTraceConfig cfg;
  cfg.shape = TraceShape::kLargeVariation;
  cfg.duration = minutes(6);
  cfg.sla = msec(250);
  // Heavier per-visit demands (tens of ms, as on the paper's testbed) so
  // the response-time distribution actually interacts with the SLA.
  cfg.demand_scale = 6.0;
  cfg.base_users = 100;
  cfg.peak_users = 420;
  cfg.scaler = HardwareScaler::kVpa;
  cfg.max_cores = 6.0;

  cfg.adaptation = SoftAdaptation::kConScale;
  const CartTraceResult conscale = run_cart_trace(cfg);
  cfg.adaptation = SoftAdaptation::kSora;
  const CartTraceResult sora = run_cart_trace(cfg);

  print_cart_panes("(a) ConScale (SCT, latency-agnostic)", conscale);
  print_cart_panes("(b) Sora (SCG, latency-sensitive)", sora);

  auto mean_threads = [](const CartTraceResult& r) {
    double sum = 0.0;
    for (const auto& p : r.cart) sum += p.entry_capacity;
    return r.cart.empty() ? 0.0 : sum / static_cast<double>(r.cart.size());
  };

  std::cout << "\n=== Summary (RTT " << to_msec(cfg.sla) << "ms) ===\n";
  TextTable t({"metric", "ConScale", "Sora", "paper shape"});
  t.add_row({"avg goodput [req/s]", fmt(conscale.summary.goodput_rps, 0),
             fmt(sora.summary.goodput_rps, 0), "Sora higher (~1.2x)"});
  t.add_row({"p99 latency [ms]", fmt(conscale.summary.p99_ms, 0),
             fmt(sora.summary.p99_ms, 0), "Sora lower (~1.5x)"});
  t.add_row({"mean thread allocation", fmt(mean_threads(conscale), 1),
             fmt(mean_threads(sora), 1), "ConScale over-allocates"});
  t.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main() { return sora::bench::main_impl(); }
