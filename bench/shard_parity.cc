// Shard-parity gate: the sharded engine must reproduce the serial engine
// byte for byte. Runs two scenarios at shard counts {1, 2, 4} and compares
// full-precision fingerprints of everything an experiment emits:
//
//   (a) the Figure-10 cart trace (FIRM hardware scaling + Sora soft
//       adaptation, Steep Tri Phase) — summary, per-second cart timeline,
//       per-second client timeline, localization verdict;
//   (b) a faulted Social Network run (instance crash + scatter dropout)
//       — summary, decision-log JSONL, trace-warehouse digest.
//
// Any divergence prints the offending leg and exits 1, so CI can gate on
// it. Shard counts are injected via SORA_SIM_SHARDS; SORA_NET_LATENCY_US
// gives the zero-latency topologies a cross-service wire so multi-shard
// windows are legal.
//
// Usage: shard_parity [duration_minutes] (default 2)
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fault_plan.h"

namespace sora::bench {
namespace {

void fp(std::ostringstream& os, const ExperimentSummary& s) {
  os << s.injected << '|' << s.completed << '|' << s.shed << '|' << s.mean_ms
     << '|' << s.p50_ms << '|' << s.p95_ms << '|' << s.p99_ms << '|'
     << s.goodput_rps << '|' << s.throughput_rps << '|' << s.good_fraction
     << '|' << s.slo_episodes << '\n';
}

void set_shards_env(int shards) {
  ::setenv("SORA_SIM_SHARDS", std::to_string(shards).c_str(), 1);
  ::setenv("SORA_NET_LATENCY_US", "500", 1);
}

std::string cart_leg(int shards, SimTime duration) {
  set_shards_env(shards);
  CartTraceConfig cfg;
  cfg.shape = TraceShape::kSteepTriPhase;
  cfg.duration = duration;
  cfg.sla = msec(400);
  cfg.base_users = 600;
  cfg.peak_users = 2400;
  cfg.initial_threads = 5;
  cfg.initial_cores = 2.0;
  cfg.max_cores = 4.0;
  cfg.adaptation = SoftAdaptation::kSora;
  const CartTraceResult r = run_cart_trace(cfg);

  std::ostringstream os;
  os.precision(17);
  fp(os, r.summary);
  os << r.localized_critical_service << '\n';
  for (const auto& p : r.cart) {
    os << p.at << ',' << p.util_pct << ',' << p.limit_pct << ',' << p.replicas
       << ',' << p.entry_capacity << ',' << p.entry_in_use << ','
       << p.edge_capacity << ',' << p.edge_in_use << '\n';
  }
  for (const auto& b : r.client) {
    os << b.start << ',' << b.completed << ',' << b.good << ',' << b.shed
       << ',' << b.sum_rt << ',' << b.max_rt << '\n';
  }
  return os.str();
}

std::string faulted_leg(int shards, SimTime duration) {
  set_shards_env(shards);
  social_network::Params params;
  params.post_storage_replicas = 2;
  ExperimentConfig cfg;
  cfg.duration = duration;
  cfg.sla = msec(400);
  cfg.seed = 42;
  Experiment exp(social_network::make_social_network(params), cfg);
  exp.closed_loop(400, sec(1), RequestMix(social_network::kReadTimelineLight));
  SoraFrameworkOptions so;
  so.sla = cfg.sla;
  so.adapter.min_size = params.post_storage_connections;
  auto& fw = exp.add_sora(so);
  fw.manage(
      ResourceKnob::edge(exp.app().service("home-timeline"), "post-storage"));

  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kCrashInstance;
  crash.at = duration / 3;
  crash.service = "post-storage";
  crash.drop_inflight = true;
  crash.duration = duration / 6;
  FaultEvent scatter;
  scatter.kind = FaultKind::kScatterDropout;
  scatter.at = duration / 2;
  scatter.duration = duration / 6;
  scatter.fraction = 0.5;
  plan.add(crash).add(scatter);
  exp.enable_faults(plan);
  exp.run();

  std::ostringstream os;
  os.precision(17);
  fp(os, exp.summary());
  os << exp.warehouse().digest() << '|' << exp.warehouse().total_stored()
     << '\n';
  exp.export_decision_log(os);
  return os.str();
}

int run(int argc, char** argv) {
  const int minutes_arg = argc > 1 ? std::atoi(argv[1]) : 2;
  const SimTime duration = minutes(std::max(1, minutes_arg));

  print_header("Shard parity gate",
               "Sharded engine output must be byte-identical to serial "
               "(shards 1 vs 2 vs 4, wire latency 500us)");

  struct Leg {
    const char* name;
    std::string (*fn)(int, SimTime);
  };
  const std::vector<Leg> legs = {{"fig10_cart_trace", &cart_leg},
                                 {"faulted_social_network", &faulted_leg}};
  const std::vector<int> shard_counts = {1, 2, 4};

  bool ok = true;
  for (const Leg& leg : legs) {
    std::string reference;
    for (int shards : shard_counts) {
      const std::string got = leg.fn(shards, duration);
      if (shards == shard_counts.front()) {
        reference = got;
        std::cout << leg.name << " shards=" << shards << ": reference ("
                  << got.size() << " fingerprint bytes)\n";
        continue;
      }
      const bool match = got == reference;
      std::cout << leg.name << " shards=" << shards << ": "
                << (match ? "IDENTICAL" : "DIVERGED") << "\n";
      if (!match) {
        ok = false;
        // Locate the first differing line to make the report actionable.
        std::istringstream a(reference), b(got);
        std::string la, lb;
        int line = 1;
        while (std::getline(a, la) && std::getline(b, lb) && la == lb) ++line;
        std::cout << "  first divergence at fingerprint line " << line
                  << ":\n    shards=1: " << la << "\n    shards=" << shards
                  << ": " << lb << "\n";
      }
    }
  }

  std::cout << (ok ? "\nPASS: all shard counts byte-identical\n"
                   : "\nFAIL: sharded engine diverged from serial\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sora::bench

int main(int argc, char** argv) { return sora::bench::run(argc, argv); }
