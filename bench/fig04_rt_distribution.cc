// Figure 4 — semi-log response-time distributions of the 4-core Cart
// service under a small vs. large thread allocation.
//
// Paper claim: the large allocation concentrates a tall peak at low
// latencies but grows a heavier tail, so which allocation "wins" reverses
// between a tight threshold (the peak dominates) and a loose one (the tail
// dominates) — the goodput order at 150 ms vs 250 ms flips.
#include "bench_util.h"

#include "metrics/latency_recorder.h"

namespace sora::bench {
namespace {

struct Distribution {
  LinearHistogram hist{10.0, 70};  // 10ms buckets up to 700ms, as the figure
  std::uint64_t within(double ms) const {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < hist.num_buckets(); ++i) {
      if (hist.bucket_center(i) <= ms) n += hist.bucket_count(i);
    }
    return n;
  }
};

Distribution run(int threads, std::uint64_t seed) {
  sock_shop::Params params;
  params.cart_cores = 4.0;
  params.cart_threads = threads;
  ExperimentConfig ecfg;
  ecfg.duration = minutes(3);
  ecfg.sla = msec(250);
  ecfg.seed = seed;
  Experiment exp(sock_shop::make_sock_shop(params), ecfg);
  // Near-saturation population, as in the paper's 3-minute profiling runs
  // (their Figure 4 mass sits at 50-700 ms).
  exp.closed_loop(1900, sec(1), RequestMix(sock_shop::kBrowse));
  exp.run();
  Distribution d;
  d.hist = exp.recorder().distribution_ms(10.0, 70);
  return d;
}

int main_impl() {
  print_header(
      "Figure 4: Cart response-time distributions, small vs large pool",
      "Paper: 80-thread beats 30-thread at RTT 150ms; order reverses at 250ms");

  // Our calibrated Cart has smaller optima than the paper's testbed; use a
  // small (near the 250ms optimum) and a large (4x) allocation.
  const int small_pool = 8, large_pool = 16;
  const Distribution small = run(small_pool, 3);
  const Distribution large = run(large_pool, 3);

  std::cout << "\nsemi-log histograms (counts per 10ms bucket):\n";
  TextTable t({"bucket [ms]", "pool=" + fmt_count(small_pool),
               "pool=" + fmt_count(large_pool)});
  for (std::size_t i = 0; i < 40; ++i) {
    t.add_row({fmt(small.hist.bucket_center(i), 0),
               fmt_count(small.hist.bucket_count(i)),
               fmt_count(large.hist.bucket_count(i))});
  }
  t.print(std::cout);

  std::cout << "\ncumulative goodput comparison:\n";
  TextTable c({"threshold [ms]", "pool=" + fmt_count(small_pool),
               "pool=" + fmt_count(large_pool), "winner"});
  int small_wins = 0, large_wins = 0;
  for (double thr :
       {10.0, 25.0, 50.0, 100.0, 150.0, 200.0, 250.0, 350.0, 500.0}) {
    const auto a = small.within(thr);
    const auto b = large.within(thr);
    if (a > b) ++small_wins;
    if (b > a) ++large_wins;
    c.add_row({fmt(thr, 0), fmt_count(a), fmt_count(b),
               a > b ? "small" : (b > a ? "large" : "tie")});
  }
  c.print(std::cout);
  std::cout << "\npaper's claim: the threshold decides which allocation wins."
            << "\nmeasured: winner flips across thresholds -> "
            << (small_wins > 0 && large_wins > 0 ? "YES" : "NO")
            << " (note: in our substrate the tight-threshold winner is the "
               "small pool, the opposite assignment to the paper's 150/250ms "
               "pair - see EXPERIMENTS.md)\n";
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main() { return sora::bench::main_impl(); }
