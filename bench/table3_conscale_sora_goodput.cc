// Table 3 — average goodput, ConScale vs. Sora, across the six bursty
// traces and two SLA thresholds (250 ms and 500 ms), both on the VPA
// hardware substrate.
//
// Paper: Sora's goodput beats ConScale's on every trace at both SLAs.
#include <cstdlib>

#include "bench_util.h"

#include "harness/sweep.h"

namespace sora::bench {
namespace {

int main_impl() {
  print_header("Table 3: ConScale vs Sora goodput, six traces x two SLAs",
               "Paper: Sora higher goodput everywhere (up to ~1.5x)");

  const std::vector<SimTime> slas = {msec(250), msec(500)};
  int wins = 0, cells = 0;

  // 2 SLAs x 6 traces x {ConScale, Sora} = 24 independent runs; fan them
  // all out at once and read them back in enumeration order.
  std::vector<CartTraceConfig> bases;
  for (SimTime sla : slas) {
    for (TraceShape shape : all_trace_shapes()) {
      CartTraceConfig cfg;
      cfg.shape = shape;
      cfg.duration = minutes(4);
      cfg.sla = sla;
      cfg.demand_scale = 6.0;  // paper-regime service times (see Figure 11)
      cfg.base_users = 100;
      cfg.peak_users = 420;
      cfg.scaler = HardwareScaler::kVpa;
      cfg.max_cores = 6.0;
      bases.push_back(cfg);
    }
  }
  const auto results =
      run_ab_traces(bases, SoftAdaptation::kConScale, SoftAdaptation::kSora);

  std::size_t next = 0;
  for (SimTime sla : slas) {
    std::cout << "\nSLA threshold " << to_msec(sla) << "ms:\n";
    TextTable t({"system", "Large Variation", "Quick Varying", "Slowly Varying",
                 "Big Spike", "Dual Phase", "SteepTri Phase"});
    std::vector<std::string> conscale_row, sora_row;
    std::vector<double> conscale_gp, sora_gp;
    for ([[maybe_unused]] TraceShape shape : all_trace_shapes()) {
      const auto& conscale = results[next].a;
      const auto& sora = results[next].b;
      ++next;

      conscale_gp.push_back(conscale.summary.goodput_rps);
      sora_gp.push_back(sora.summary.goodput_rps);
      conscale_row.push_back(fmt(conscale.summary.goodput_rps, 0));
      sora_row.push_back(fmt(sora.summary.goodput_rps, 0));
      ++cells;
      if (sora.summary.goodput_rps >= conscale.summary.goodput_rps) ++wins;
    }
    conscale_row.insert(conscale_row.begin(), "ConScale");
    sora_row.insert(sora_row.begin(), "Sora");
    t.add_row(conscale_row);
    t.add_row(sora_row);
    emit_table(t, "table3_goodput_sla" + fmt(to_msec(sla), 0) + "ms");
  }
  std::cout << "\nSora goodput >= ConScale in " << wins << "/" << cells
            << " cells (paper: all)\n";
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main() { return sora::bench::main_impl(); }
