// Figure 3 — "Optimal" soft resource allocation shifts for Cart and
// Post Storage as the response-time threshold, hardware provisioning, or
// system state changes.
//
// Panels:
//   (a) 4-core Cart, 250 ms SLA  — optimum in the tens of threads
//   (b) 4-core Cart, 150 ms SLA  — optimum shifts HIGHER (tighter deadline)
//   (c) 2-core Cart, 250 ms SLA  — optimum shifts LOWER (fewer cores)
//   (d) 2-core Cart, 350 ms SLA  — optimum lower still (looser deadline)
//   (e) Post Storage, light requests — small connection optimum
//   (f) Post Storage, heavy requests — optimum shifts higher
//
// The paper's absolute optima (30/80/10/5 threads, 10/30 connections) are
// testbed-specific; the reproduced artifact is the *direction* of each
// shift.
#include "bench_util.h"

#include "harness/sweep.h"

namespace sora::bench {
namespace {

// Pool sweeps near saturation (the regime of the paper's 3-minute
// profiling runs): both the under-allocation rise and the over-allocation
// falloff are visible.
const std::vector<int> kThreadSizes = {2, 3, 5, 8, 12, 16, 24, 32, 64, 128, 200};
const std::vector<int> kConnSizes = {1, 2, 3, 4, 6, 8, 12, 20, 32, 64};

struct CartPanel {
  double cores;
  SimTime sla;
  int users;
  std::uint64_t seed;
};

/// All cart panels at once: panels x kThreadSizes independent runs through
/// one SweepRunner pass, sliced back into per-panel sweeps in order.
std::vector<std::vector<SweepResult>> cart_sweeps(
    const std::vector<CartPanel>& panels) {
  struct Job {
    CartSweepConfig cfg;
    int threads;
  };
  std::vector<Job> jobs;
  for (const CartPanel& p : panels) {
    CartSweepConfig cfg;
    cfg.cart_cores = p.cores;
    cfg.sla = p.sla;
    cfg.users = p.users;
    cfg.seed = p.seed;
    for (int threads : kThreadSizes) jobs.push_back(Job{cfg, threads});
  }
  const auto flat = SweepRunner().map(
      jobs, [](const Job& j) { return run_cart_point(j.cfg, j.threads); });
  std::vector<std::vector<SweepResult>> out(panels.size());
  for (std::size_t p = 0; p < panels.size(); ++p) {
    out[p].assign(flat.begin() + p * kThreadSizes.size(),
                  flat.begin() + (p + 1) * kThreadSizes.size());
  }
  return out;
}

SweepResult run_post_storage_point(int connections, int request_class,
                                   SimTime sla, int users,
                                   std::uint64_t seed) {
  social_network::Params params;
  params.post_storage_connections = connections;
  ExperimentConfig ecfg;
  ecfg.duration = minutes(3);
  ecfg.sla = sla;
  ecfg.seed = seed;
  Experiment exp(social_network::make_social_network(params), ecfg);
  exp.closed_loop(users, sec(1), RequestMix(request_class));
  exp.run();
  const ExperimentSummary s = exp.summary();
  return SweepResult{connections, s.goodput_rps, s.throughput_rps, s.p99_ms};
}

void print_panel(const std::string& name, const std::string& claim,
                 const std::vector<SweepResult>& sweep) {
  std::cout << "\n--- " << name << " ---\n" << claim << "\n";
  TextTable t({"pool size", "goodput [req/s]", "normalized", "p99 [ms]"});
  const auto norm = normalized_goodput(sweep);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    t.add_row({fmt_count(static_cast<std::uint64_t>(sweep[i].pool_size)),
               fmt(sweep[i].goodput, 1), fmt(norm[i], 3),
               fmt(sweep[i].p99_ms, 1)});
  }
  t.print(std::cout);
  std::cout << "measured optimum: " << argmax_goodput(sweep) << "\n";
}

int main_impl() {
  print_header("Figure 3: optimal soft-resource allocation shifts",
               "Paper: optima 30/80/10/5 threads (a-d), 10/30 connections (e-f)");

  const auto cart = cart_sweeps({{4.0, msec(250), 1900, 1},
                                 {4.0, msec(150), 1900, 1},
                                 {2.0, msec(250), 1000, 1},
                                 {2.0, msec(350), 1000, 1}});
  const auto& a = cart[0];
  const auto& b = cart[1];
  const auto& c = cart[2];
  const auto& d = cart[3];

  print_panel("(a) 4-core Cart, 250ms", "paper optimum: 30 threads", a);
  print_panel("(b) 4-core Cart, 150ms",
              "paper optimum: 80 threads (shifts HIGHER than (a))", b);
  print_panel("(c) 2-core Cart, 250ms",
              "paper optimum: 10 threads (shifts LOWER than (a))", c);
  print_panel("(d) 2-core Cart, 350ms",
              "paper optimum: 5 threads (shifts LOWER than (c))", d);

  // Panels (e) and (f) in one pass: light requests first, heavy second.
  const auto post = SweepRunner().map(
      kConnSizes.size() * 2, [](std::size_t i) {
        const bool heavy = i >= kConnSizes.size();
        const int conns = kConnSizes[i % kConnSizes.size()];
        return heavy ? run_post_storage_point(
                           conns, social_network::kReadTimelineHeavy, msec(250),
                           700, 2)
                     : run_post_storage_point(
                           conns, social_network::kReadTimelineLight, msec(250),
                           1500, 2);
      });
  const std::vector<SweepResult> e(post.begin(),
                                   post.begin() + kConnSizes.size());
  const std::vector<SweepResult> f(post.begin() + kConnSizes.size(),
                                   post.end());
  print_panel("(e) Post Storage, light requests", "paper optimum: 10 connections", e);
  print_panel("(f) Post Storage, heavy requests",
              "paper optimum: 30 connections (shifts HIGHER than (e))", f);

  std::cout << "\n=== Shift summary (paper direction -> measured) ===\n";
  TextTable t({"shift", "paper", "measured", "holds"});
  const int oa = argmax_goodput(a), ob = argmax_goodput(b),
            oc = argmax_goodput(c), od = argmax_goodput(d),
            oe = argmax_goodput(e), of_ = argmax_goodput(f);
  t.add_row({"(a)->(b) tighter SLA, 4-core", "30 -> 80 (up)",
             fmt_count(oa) + " -> " + fmt_count(ob), ob >= oa ? "yes" : "NO"});
  t.add_row({"(a)->(c) fewer cores", "30 -> 10 (down)",
             fmt_count(oa) + " -> " + fmt_count(oc), oc <= oa ? "yes" : "NO"});
  t.add_row({"(c)->(d) looser SLA, 2-core", "10 -> 5 (down)",
             fmt_count(oc) + " -> " + fmt_count(od), od <= oc ? "yes" : "NO"});
  t.add_row({"(e)->(f) heavier requests", "10 -> 30 (up)",
             fmt_count(oe) + " -> " + fmt_count(of_), of_ >= oe ? "yes" : "NO"});
  t.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main() { return sora::bench::main_impl(); }
