// Controller tournament — every control plane over the same obstacle
// course: {controllers} x {trace shapes} x {faults on/off} x {admission
// on/off}, one Sock Shop cart cell each, fanned over SweepRunner. Emits the
// per-cell grid, the aggregated league table (EXPERIMENTS.md), and
// machine-checkable VERDICT lines for the overload operating point
// (peak load ~2x the cart knee).
//
// Smoke mode (--smoke or SORA_TOURNAMENT_SMOKE=1): a 1-minute 2x2 slice
// (sora + k8s-hpa, one trace, faults x admission) for CI gating.
#include "bench_util.h"

#include <cstring>

#include "harness/tournament.h"

namespace sora::bench {
namespace {

int main_impl(bool smoke) {
  print_header(smoke ? "Controller tournament (smoke slice)"
                     : "Controller tournament",
               "Six+ control planes, shared Controller contract, one league");
  print_ctl_hint();

  std::vector<std::string> controllers;
  std::vector<TraceShape> shapes;
  SimTime duration = 0;
  if (smoke) {
    controllers = {"sora", "k8s-hpa"};
    shapes = {TraceShape::kSteepTriPhase};
    duration = minutes(1);
  } else {
    controllers = tournament_controllers();
    shapes = {TraceShape::kLargeVariation, TraceShape::kBigSpike,
              TraceShape::kDualPhase, TraceShape::kSteepTriPhase};
    duration = minutes(3);
  }

  const auto cells = tournament_grid(controllers, shapes, duration, 42);
  std::cout << "\nrunning " << cells.size() << " cells ("
            << controllers.size() << " controllers x " << shapes.size()
            << " traces x faults on/off x admission on/off, "
            << duration / minutes(1) << " min each)...\n";
  const auto rows = run_tournament(cells);

  emit_table(rows_table(rows), smoke ? "controller_tournament_smoke_cells"
                                     : "controller_tournament_cells");
  std::cout << "\nLeague (mean across cells, ranked by goodput):\n";
  const auto standings = league(rows);
  emit_table(league_table(standings), smoke ? "controller_tournament_smoke"
                                            : "controller_tournament");

  // Machine-checkable verdicts at the overload operating point. The CI
  // smoke job greps these lines; the full run substantiates the league
  // table committed to EXPERIMENTS.md.
  auto mean_goodput = [&rows](const std::string& name, bool admission) {
    double sum = 0.0;
    int n = 0;
    for (const auto& row : rows) {
      if (row.cell.controller == name && row.cell.admission == admission) {
        sum += row.goodput_rps;
        ++n;
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  const double hpa = mean_goodput("k8s-hpa", false);
  const double sora_adm = mean_goodput("sora", true);
  std::cout << "\nVERDICT league_nonempty " << (standings.empty() ? "FAIL" : "PASS")
            << " (" << standings.size() << " controllers, " << rows.size()
            << " cells)\n";
  int fails = standings.empty() ? 1 : 0;
  std::cout << "VERDICT sora_beats_hpa "
            << (sora_adm > hpa ? "PASS" : "FAIL") << " (knee-coupled sora "
            << fmt(sora_adm, 1) << " r/s vs hpa " << fmt(hpa, 1) << " r/s)"
            << (smoke ? " [informational in smoke]" : "") << "\n";
  if (!smoke && sora_adm <= hpa) ++fails;
  if (!smoke) {
    const double at = mean_goodput("autothrottle", true);
    const double ls = mean_goodput("lsram", false);
    const bool new_baseline_wins = at > hpa || ls > hpa;
    std::cout << "VERDICT new_baseline_beats_hpa "
              << (new_baseline_wins ? "PASS" : "FAIL") << " (autothrottle "
              << fmt(at, 1) << ", lsram " << fmt(ls, 1) << " vs hpa "
              << fmt(hpa, 1) << " r/s)\n";
    if (!new_baseline_wins) ++fails;
  }
  return fails;
}

}  // namespace
}  // namespace sora::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (const char* env = std::getenv("SORA_TOURNAMENT_SMOKE")) {
    if (env[0] != '\0' && env[0] != '0') smoke = true;
  }
  return sora::bench::main_impl(smoke);
}
