// Table 2 — FIRM vs. Sora across all six real-world bursty traces:
// p95 / p99 tail latency and average goodput (RTT = 400 ms).
//
// Paper: Sora reduces p95/p99 ~2.2x on average and improves goodput on
// every trace.
#include "bench_util.h"

#include "harness/sweep.h"

namespace sora::bench {
namespace {

int main_impl() {
  print_header("Table 2: FIRM vs Sora, six bursty traces",
               "Paper: tail latency cut up to 2.5x, goodput improved on all");

  TextTable t({"Workload Trace", "p95 [ms] FIRM/Sora", "p99 [ms] FIRM/Sora",
               "Goodput-400ms FIRM/Sora", "Sora wins"});
  double p99_ratio_sum = 0.0;
  int wins = 0;

  // All 12 runs (FIRM + Sora per trace) are independent; fan them out and
  // read the results back pairwise in trace order.
  std::vector<CartTraceConfig> bases;
  for (TraceShape shape : all_trace_shapes()) {
    CartTraceConfig cfg;
    cfg.shape = shape;
    cfg.duration = minutes(6);
    cfg.sla = msec(400);
    cfg.base_users = 600;
    cfg.peak_users = 2400;
    bases.push_back(cfg);
  }
  const auto results =
      run_ab_traces(bases, SoftAdaptation::kNone, SoftAdaptation::kSora);

  const auto shapes = all_trace_shapes();
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const TraceShape shape = shapes[i];
    const auto& firm = results[i].a;
    const auto& sora = results[i].b;

    const bool win = sora.summary.p99_ms < firm.summary.p99_ms &&
                     sora.summary.goodput_rps > firm.summary.goodput_rps;
    if (win) ++wins;
    if (sora.summary.p99_ms > 0) {
      p99_ratio_sum += firm.summary.p99_ms / sora.summary.p99_ms;
    }
    t.add_row({to_string(shape),
               fmt(firm.summary.p95_ms, 0) + " / " + fmt(sora.summary.p95_ms, 0),
               fmt(firm.summary.p99_ms, 0) + " / " + fmt(sora.summary.p99_ms, 0),
               fmt(firm.summary.goodput_rps, 0) + " / " +
                   fmt(sora.summary.goodput_rps, 0),
               win ? "yes" : "no"});
  }
  emit_table(t, "table2_firm_sora_traces");
  std::cout << "\nSora wins (lower p99 AND higher goodput) on " << wins
            << "/6 traces; mean p99 improvement "
            << fmt(p99_ratio_sum / 6.0, 2) << "x (paper: 2.2x average)\n";
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main() { return sora::bench::main_impl(); }
