// Ablation (Section 3.3) — sensitivity of the SCG estimate to the
// polynomial degree used for smoothing.
//
// Paper: too low a degree cannot produce a valid knee; too high a degree
// overfits noise; degrees 5-8 fit the profiling data well; an incremental
// strategy finds the minimum adequate degree with sub-second cost.
#include "bench_util.h"

#include "core/estimator.h"
#include "core/scg_model.h"
#include "harness/sweep.h"

namespace sora::bench {
namespace {

std::vector<SamplePoint> collect_scatter(std::uint64_t seed) {
  sock_shop::Params params;
  params.cart_cores = 2.0;
  params.cart_threads = 32;
  ExperimentConfig ecfg;
  ecfg.duration = minutes(3);
  ecfg.seed = seed;
  Experiment exp(sock_shop::make_sock_shop(params), ecfg);
  const WorkloadTrace trace(TraceShape::kLargeVariation, ecfg.duration, 300,
                            1000);
  auto& users = exp.closed_loop(300, sec(1), RequestMix(sock_shop::kBrowse));
  users.follow_trace(trace);
  ConcurrencyEstimator est(exp.sim(), exp.tracer());
  const ResourceKnob knob = ResourceKnob::entry(exp.app().service("cart"));
  est.watch(knob);
  est.set_rt_threshold(knob, msec(30));
  exp.run();
  return est.sampler(knob)->points();
}

int main_impl() {
  print_header("Ablation: Kneedle polynomial degree sensitivity",
               "Paper (Section 3.3): degree 5-8 adequate; low degrees miss "
               "the knee, high degrees overfit");

  const auto scatter = collect_scatter(13);
  std::cout << "scatter: " << scatter.size() << " samples\n\n";

  // Each degree fit reads the shared scatter and builds its own model, so
  // the fits parallelize like any other sweep.
  SweepRunner runner;
  constexpr int kMaxDegree = 12;
  const auto fits = runner.map(kMaxDegree, [&](std::size_t i) {
    ScgOptions opts;
    opts.min_degree = static_cast<int>(i) + 1;
    opts.max_degree = static_cast<int>(i) + 1;
    ScgModel model(opts);
    return model.estimate(scatter);
  });

  TextTable t({"fixed degree", "valid", "recommended", "R^2", "note"});
  for (int degree = 1; degree <= kMaxDegree; ++degree) {
    const auto& est = fits[degree - 1];
    t.add_row({fmt_count(static_cast<std::uint64_t>(degree)),
               est.valid ? "yes" : "no",
               est.valid ? fmt_count(static_cast<std::uint64_t>(est.recommended))
                         : "-",
               fmt(est.r_squared, 3), est.valid ? "" : est.failure});
  }
  t.print(std::cout);

  ScgOptions incremental;  // default 3..10 incremental tuning
  ScgModel model(incremental);
  const auto est = model.estimate(scatter);
  std::cout << "\nincremental tuning picked degree " << est.degree_used
            << " -> recommended " << (est.valid ? est.recommended : 0)
            << " (R^2 " << fmt(est.r_squared, 3) << ")\n";

  // Kneedle sensitivity S sweep on the same data.
  std::cout << "\nKneedle sensitivity sweep:\n";
  const std::vector<double> sensitivities = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  const auto sens_fits = runner.map(sensitivities, [&](double sens) {
    ScgOptions opts;
    opts.kneedle.sensitivity = sens;
    ScgModel m(opts);
    return m.estimate(scatter);
  });
  TextTable s({"sensitivity S", "valid", "recommended"});
  for (std::size_t i = 0; i < sensitivities.size(); ++i) {
    const auto& e = sens_fits[i];
    s.add_row({fmt(sensitivities[i], 2), e.valid ? "yes" : "no",
               e.valid ? fmt_count(static_cast<std::uint64_t>(e.recommended))
                       : "-"});
  }
  s.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main() { return sora::bench::main_impl(); }
