// Figure 9 — SCG model estimation and validation for three heterogeneous
// soft resources:
//   (a) server threads in Cart (SpringBoot)           — 10 ms threshold
//   (b) DB connections in Catalogue (Golang)          — 10 ms threshold
//   (c) client connections to Post Storage (Thrift)   — 15 ms threshold
//
// Left column: the SCG estimate from a 3-minute scatter. Right column:
// validation — the recommended allocation is compared against neighbouring
// allocations across a range of user populations; the recommendation should
// win (or tie) the goodput comparison, as in the paper.
#include "bench_util.h"

#include "core/estimator.h"
#include "core/scg_model.h"
#include "harness/sweep.h"

namespace sora::bench {
namespace {

struct Case {
  std::string name;
  std::string paper;
  std::function<ApplicationConfig(int pool)> make_app;  // pool<0: generous cap
  std::function<ResourceKnob(Application&)> make_knob;
  int request_class;
  SimTime rtt;
  int profile_users;
  std::vector<int> validation_users;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  cases.push_back(Case{
      "(a) threads in Cart",
      "paper: SCG recommends 5 threads (10ms threshold)",
      [](int pool) {
        sock_shop::Params p;
        p.cart_cores = 2.0;
        p.cart_threads = pool < 0 ? 48 : pool;
        return sock_shop::make_sock_shop(p);
      },
      [](Application& app) { return ResourceKnob::entry(app.service("cart")); },
      sock_shop::kBrowse, msec(10), 1000,
      {600, 800, 1000, 1200}});
  cases.push_back(Case{
      "(b) DB connections in Catalogue",
      "paper: SCG recommends 15 connections (10ms threshold)",
      [](int pool) {
        sock_shop::Params p;
        p.catalogue_db_connections = pool < 0 ? 48 : pool;
        // Cart out of the way: catalogue-db must be the bottleneck.
        p.cart_cores = 8.0;
        p.cart_threads = 64;
        return sock_shop::make_sock_shop(p);
      },
      [](Application& app) {
        return ResourceKnob::edge(app.service("catalogue"), "catalogue-db");
      },
      sock_shop::kBrowse, msec(10), 2600,
      {1800, 2200, 2600, 3000}});
  cases.push_back(Case{
      "(c) request connections to Post Storage",
      "paper: SCG recommends 10 connections (15ms threshold)",
      [](int pool) {
        social_network::Params p;
        p.post_storage_connections = pool < 0 ? 48 : pool;
        return social_network::make_social_network(p);
      },
      [](Application& app) {
        return ResourceKnob::edge(app.service("home-timeline"), "post-storage");
      },
      social_network::kReadTimelineLight, msec(15), 1400,
      {800, 1100, 1400, 1700}});
  return cases;
}

ConcurrencyEstimate profile(const Case& c, std::uint64_t seed) {
  ExperimentConfig ecfg;
  ecfg.duration = minutes(3);
  ecfg.seed = seed;
  Experiment exp(c.make_app(-1), ecfg);
  const WorkloadTrace trace(TraceShape::kLargeVariation, ecfg.duration,
                            c.profile_users * 0.3, c.profile_users);
  auto& users =
      exp.closed_loop(c.profile_users / 3, sec(1), RequestMix(c.request_class));
  users.follow_trace(trace);
  ConcurrencyEstimator est(exp.sim(), exp.tracer());
  const ResourceKnob knob = c.make_knob(exp.app());
  est.watch(knob);
  est.set_rt_threshold(knob, c.rtt);
  exp.run();
  return est.estimate(knob);
}

/// Service-level goodput with a fixed pool under a fixed user population.
double validate_point(const Case& c, int pool, int users, std::uint64_t seed) {
  ExperimentConfig ecfg;
  ecfg.duration = minutes(1);
  ecfg.seed = seed;
  Experiment exp(c.make_app(pool), ecfg);
  exp.closed_loop(users, sec(1), RequestMix(c.request_class));
  ConcurrencyEstimator est(exp.sim(), exp.tracer());
  const ResourceKnob knob = c.make_knob(exp.app());
  est.watch(knob);
  est.set_rt_threshold(knob, c.rtt);
  exp.run();
  double gp = 0.0;
  std::size_t n = 0;
  for (const auto& p : est.sampler(knob)->points()) {
    gp += p.goodput;
    ++n;
  }
  return n ? gp / static_cast<double>(n) : 0.0;
}

int main_impl() {
  print_header("Figure 9: SCG estimation + validation on three soft resources",
               "Paper: the SCG recommendation beats adjacent allocations");
  int wins = 0, comparisons = 0;
  SweepRunner runner;
  const auto cases = make_cases();
  // The three profiling runs are independent of each other; the validation
  // grid depends on each profile's recommendation, so it fans out per case.
  const auto estimates = runner.map(
      cases, [](const Case& c) { return profile(c, 21); });
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& c = cases[ci];
    const ConcurrencyEstimate& est = estimates[ci];
    std::cout << "\n===== " << c.name << " =====\n" << c.paper << "\n";
    if (!est.valid) {
      std::cout << "model estimation FAILED: " << est.failure << "\n";
      continue;
    }
    std::cout << "(i) model estimation: knee at concurrency "
              << fmt(est.knee_concurrency, 1) << " -> recommended pool "
              << est.recommended << " (degree " << est.degree_used << ", R^2 "
              << fmt(est.r_squared, 3) << ")\n";

    const int r = est.recommended;
    std::vector<int> candidates = {std::max(1, r / 3), r, r * 3, r * 8};
    std::cout << "\n(ii) validation: mean service-level goodput [req/s]\n";
    TextTable t({"users", "pool=" + fmt_count(candidates[0]),
                 "pool=" + fmt_count(candidates[1]) + " (SCG)",
                 "pool=" + fmt_count(candidates[2]),
                 "pool=" + fmt_count(candidates[3]), "winner"});
    // users x candidates grid in one pass, row-major like the table.
    const auto grid = runner.map(
        c.validation_users.size() * candidates.size(), [&](std::size_t i) {
          const int users = c.validation_users[i / candidates.size()];
          const int pool = candidates[i % candidates.size()];
          return validate_point(c, pool, users, 31);
        });
    for (std::size_t ui = 0; ui < c.validation_users.size(); ++ui) {
      const int users = c.validation_users[ui];
      const std::vector<double> gps(
          grid.begin() + ui * candidates.size(),
          grid.begin() + (ui + 1) * candidates.size());
      std::size_t best = 0;
      for (std::size_t i = 1; i < gps.size(); ++i) {
        if (gps[i] > gps[best]) best = i;
      }
      ++comparisons;
      // The recommendation "wins" if it is within 3% of the best candidate.
      if (gps[1] >= 0.97 * gps[best]) ++wins;
      t.add_row({fmt_count(static_cast<std::uint64_t>(users)), fmt(gps[0], 1),
                 fmt(gps[1], 1), fmt(gps[2], 1), fmt(gps[3], 1),
                 "pool=" + fmt_count(candidates[best])});
    }
    t.print(std::cout);
  }
  std::cout << "\nSCG recommendation within 3% of best candidate in " << wins
            << "/" << comparisons << " validation points\n";
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main() { return sora::bench::main_impl(); }
