// Performance smoke benchmark — the repo's wall-clock trajectory anchor.
//
// Times the canonical 1-minute Sock Shop cart simulation (the building
// block of every figure/table sweep) and reports engine throughput
// (events/sec, wall-ms per sim-second), then measures the sweep-level
// serial-vs-parallel speedup. Results are APPENDED to BENCH_sim.json — a
// JSON array of runs keyed by git SHA and date — so the repo accumulates a
// perf trajectory across PRs instead of only remembering the last run.
//
// Usage: perf_smoke [output.json]   (default: BENCH_sim.json in the CWD)
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "bench_util.h"
#include "harness/sweep.h"
#include "obs/json.h"

namespace sora::bench {
namespace {

using WallClock = std::chrono::steady_clock;

double elapsed_sec(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

struct EngineResult {
  std::uint64_t events = 0;
  std::uint64_t cancelled = 0;
  double wall_sec = 0.0;
  double sim_sec = 0.0;
  double events_per_sec = 0.0;
  double wall_ms_per_sim_sec = 0.0;
};

/// The canonical single run: 1 minute of Sock Shop browse traffic against a
/// 4-core cart with a fixed 12-thread pool (mid-sweep operating point).
/// SORA_PERF_SMOKE_MINUTES lengthens the probe (profiling runs).
EngineResult run_engine_probe() {
  sock_shop::Params params;
  params.cart_cores = 4.0;
  params.cart_threads = 12;
  ExperimentConfig ecfg;
  int probe_minutes = 1;
  if (const char* env = std::getenv("SORA_PERF_SMOKE_MINUTES")) {
    probe_minutes = std::max(1, std::atoi(env));
  }
  ecfg.duration = minutes(probe_minutes);
  ecfg.sla = msec(250);
  ecfg.seed = 42;
  Experiment exp(sock_shop::make_sock_shop(params), ecfg);
  exp.closed_loop(600, sec(1), RequestMix(sock_shop::kBrowse));

  const auto start = WallClock::now();
  exp.run();
  EngineResult r;
  r.wall_sec = elapsed_sec(start);
  r.events = exp.sim().events_executed();
  r.cancelled = exp.sim().events_cancelled();
  r.sim_sec = to_sec(exp.sim().now());
  r.events_per_sec = r.wall_sec > 0 ? r.events / r.wall_sec : 0.0;
  r.wall_ms_per_sim_sec =
      r.sim_sec > 0 ? r.wall_sec * 1000.0 / r.sim_sec : 0.0;
  return r;
}

/// One sweep unit: a short cart run at a thread-pool setting derived from
/// the index. Returns the summary so the parity between serial and
/// parallel execution is checked on real output, not just timing.
ExperimentSummary run_sweep_point(std::size_t index) {
  sock_shop::Params params;
  params.cart_cores = 4.0;
  params.cart_threads = 4 + static_cast<int>(index) * 4;
  ExperimentConfig ecfg;
  ecfg.duration = sec(20);
  ecfg.sla = msec(250);
  ecfg.seed = 1000 + index;
  Experiment exp(sock_shop::make_sock_shop(params), ecfg);
  exp.closed_loop(400, sec(1), RequestMix(sock_shop::kBrowse));
  exp.run();
  return exp.summary();
}

struct SweepResult {
  std::size_t runs = 0;
  double serial_sec = 0.0;
  double parallel_sec = 0.0;
  double speedup = 0.0;
  int workers = 0;
  bool identical = true;  ///< parallel summaries match serial bit-for-bit
};

bool same_sim_outputs(const ExperimentSummary& a, const ExperimentSummary& b) {
  return a.injected == b.injected && a.completed == b.completed &&
         a.shed == b.shed && a.mean_ms == b.mean_ms && a.p50_ms == b.p50_ms &&
         a.p95_ms == b.p95_ms && a.p99_ms == b.p99_ms &&
         a.goodput_rps == b.goodput_rps &&
         a.throughput_rps == b.throughput_rps &&
         a.good_fraction == b.good_fraction &&
         a.slo_episodes == b.slo_episodes;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Short git SHA of HEAD, or "unknown" outside a git checkout.
std::string git_sha() {
  std::string sha = "unknown";
  if (FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      const std::string line = trim(buf);
      if (!line.empty()) sha = line;
    }
    ::pclose(p);
  }
  return sha;
}

std::string today_utc() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[16];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm);
  return buf;
}

/// Append `entry` to the JSON trajectory array at `path`. A legacy
/// single-object file becomes the first element; a missing or unreadable
/// file starts a fresh array.
void append_trajectory(const std::string& path, const std::string& entry) {
  std::string existing;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    existing = trim(buf.str());
  }
  std::ofstream os(path, std::ios::trunc);
  os << "[\n";
  if (existing.size() >= 2 && existing.front() == '[' &&
      existing.back() == ']') {
    const std::string body =
        trim(existing.substr(1, existing.size() - 2));
    if (!body.empty()) os << body << ",\n";
  } else if (!existing.empty() && existing.front() == '{') {
    os << existing << ",\n";
  }
  os << entry << "\n]\n";
}

SweepResult run_sweep_probe() {
  SweepResult r;
  r.runs = 8;
  r.workers = SweepRunner::default_worker_count();

  auto serial_start = WallClock::now();
  SweepRunner serial(1);
  const auto serial_results =
      serial.map(r.runs, [](std::size_t i) { return run_sweep_point(i); });
  r.serial_sec = elapsed_sec(serial_start);

  auto parallel_start = WallClock::now();
  SweepRunner parallel(r.workers);
  const auto parallel_results =
      parallel.map(r.runs, [](std::size_t i) { return run_sweep_point(i); });
  r.parallel_sec = elapsed_sec(parallel_start);

  r.speedup = r.parallel_sec > 0 ? r.serial_sec / r.parallel_sec : 0.0;
  for (std::size_t i = 0; i < r.runs; ++i) {
    if (!same_sim_outputs(serial_results[i], parallel_results[i])) {
      r.identical = false;
    }
  }
  return r;
}

int main_impl(int argc, char** argv) {
  print_header("perf_smoke: engine throughput + sweep speedup",
               "Emits BENCH_sim.json (the repo's perf trajectory)");

  const EngineResult engine = run_engine_probe();
  std::cout << "engine probe (1-min cart sim):\n"
            << "  events executed : " << engine.events << "\n"
            << "  events cancelled: " << engine.cancelled << "\n"
            << "  wall clock      : " << fmt(engine.wall_sec, 3) << " s\n"
            << "  events/sec      : " << fmt(engine.events_per_sec / 1e6, 3)
            << " M\n"
            << "  wall ms / sim s : " << fmt(engine.wall_ms_per_sim_sec, 2)
            << "\n";

  const SweepResult sweep = run_sweep_probe();
  std::cout << "\nsweep probe (" << sweep.runs << " independent 20-s runs, "
            << sweep.workers << " worker(s)):\n"
            << "  serial          : " << fmt(sweep.serial_sec, 3) << " s\n"
            << "  parallel        : " << fmt(sweep.parallel_sec, 3) << " s\n"
            << "  speedup         : " << fmt(sweep.speedup, 2) << "x\n"
            << "  outputs match   : " << (sweep.identical ? "yes" : "NO")
            << "\n";

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sim.json";
  obs::JsonObject o;
  o.field("bench", "perf_smoke");
  o.field("git_sha", git_sha());
  o.field("date", today_utc());
  o.field("engine_events", engine.events);
  o.field("engine_events_cancelled", engine.cancelled);
  o.field("engine_wall_sec", engine.wall_sec);
  o.field("engine_events_per_sec", engine.events_per_sec);
  o.field("engine_wall_ms_per_sim_sec", engine.wall_ms_per_sim_sec);
  o.field("sweep_runs", static_cast<std::uint64_t>(sweep.runs));
  o.field("sweep_workers", static_cast<std::uint64_t>(sweep.workers));
  o.field("sweep_serial_sec", sweep.serial_sec);
  o.field("sweep_parallel_sec", sweep.parallel_sec);
  o.field("sweep_speedup", sweep.speedup);
  o.field("sweep_outputs_match", sweep.identical);
  o.field("host_hardware_concurrency",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  append_trajectory(out_path, o.str());
  std::cout << "\nappended to " << out_path << "\n";
  return sweep.identical ? 0 : 1;
}

}  // namespace
}  // namespace sora::bench

int main(int argc, char** argv) { return sora::bench::main_impl(argc, argv); }
