// Performance smoke benchmark — the repo's wall-clock trajectory anchor.
//
// Times the canonical 1-minute Sock Shop cart simulation (the building
// block of every figure/table sweep) and reports engine throughput
// (events/sec, wall-ms per sim-second), then measures the sweep-level
// serial-vs-parallel speedup. Results are APPENDED to BENCH_sim.json — a
// JSON array of runs keyed by git SHA and date — so the repo accumulates a
// perf trajectory across PRs instead of only remembering the last run.
//
// A third probe repeats the engine run with the ctl introspection server
// attached and a 10 Hz /statusz poller hammering it, substantiating the
// claim that live observation does not perturb the hot path (<1% budget).
//
// Every timed probe runs SORA_PERF_SMOKE_REPS times (default 3, floor 3)
// and reports the median rep: single-shot wall timings on a shared CI box
// regularly produced nonsense overhead numbers (the instrumented run
// "faster" than the baseline by double digits). A fourth probe times the
// same scenario under the sharded engine (shards=4, 500 us network
// latency) and records sharded_events_per_sec next to a serial run of the
// identical scenario, so the trajectory tracks the window machinery's cost.
//
// Usage: perf_smoke [--gate] [output.json]   (default: BENCH_sim.json)
//
// With --gate, the freshly measured engine events/sec is compared against
// the best engine_events_per_sec already committed in the trajectory file;
// a regression beyond SORA_PERF_GATE_PCT percent (default 10) exits 2 — the
// CI perf gate.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "ctl/http.h"
#include "ctl/json_value.h"
#include "ctl/plane.h"
#include "harness/causal_lab.h"
#include "harness/sweep.h"
#include "obs/json.h"
#include "topo/synth.h"

namespace sora::bench {
namespace {

using WallClock = std::chrono::steady_clock;

double elapsed_sec(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

struct EngineResult {
  std::uint64_t events = 0;
  std::uint64_t cancelled = 0;
  double wall_sec = 0.0;
  double sim_sec = 0.0;
  double events_per_sec = 0.0;
  double wall_ms_per_sim_sec = 0.0;
};

/// Timed probes repeat and take the median; see the header comment.
int probe_reps() {
  int reps = 3;
  if (const char* env = std::getenv("SORA_PERF_SMOKE_REPS")) {
    reps = std::max(3, std::atoi(env));
  }
  return reps;
}

/// The canonical single run: 1 minute of Sock Shop browse traffic against a
/// 4-core cart with a fixed 12-thread pool (mid-sweep operating point).
/// SORA_PERF_SMOKE_MINUTES lengthens the probe (profiling runs). With
/// `digest`, the causal profiler's per-event digest is folded in — the only
/// hot-path cost causal profiling adds to an instrumented run. With
/// `shards` > 0 the scenario gains a nonzero network latency (sharding
/// needs cross-service edges with wire time) and runs on the windowed
/// engine; shards == 0 pins the serial engine even under SORA_SIM_SHARDS.
EngineResult run_engine_probe(bool digest = false, int shards = 0,
                              SimTime net_latency = 0) {
  sock_shop::Params params;
  params.cart_cores = 4.0;
  params.cart_threads = 12;
  ExperimentConfig ecfg;
  int probe_minutes = 1;
  if (const char* env = std::getenv("SORA_PERF_SMOKE_MINUTES")) {
    probe_minutes = std::max(1, std::atoi(env));
  }
  ecfg.duration = minutes(probe_minutes);
  ecfg.sla = msec(250);
  ecfg.seed = 42;
  ApplicationConfig app = sock_shop::make_sock_shop(params);
  if (net_latency > 0) app.network_latency = net_latency;
  Experiment exp(std::move(app), ecfg);
  exp.set_shards(shards);  // after ctor: wins over the env override
  exp.closed_loop(600, sec(1), RequestMix(sock_shop::kBrowse));
  if (digest) exp.sim().set_digest_enabled(true);

  const auto start = WallClock::now();
  exp.run();
  EngineResult r;
  r.wall_sec = elapsed_sec(start);
  r.events = exp.sim().events_executed();
  r.cancelled = exp.sim().events_cancelled();
  r.sim_sec = to_sec(exp.sim().now());
  r.events_per_sec = r.wall_sec > 0 ? r.events / r.wall_sec : 0.0;
  r.wall_ms_per_sim_sec =
      r.sim_sec > 0 ? r.wall_sec * 1000.0 / r.sim_sec : 0.0;
  return r;
}

/// Median-by-events/sec over `reps` identical engine probes.
EngineResult median_engine_probe(int reps, bool digest = false,
                                 int shards = 0, SimTime net_latency = 0) {
  std::vector<EngineResult> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    runs.push_back(run_engine_probe(digest, shards, net_latency));
  }
  std::sort(runs.begin(), runs.end(),
            [](const EngineResult& a, const EngineResult& b) {
              return a.events_per_sec < b.events_per_sec;
            });
  return runs[runs.size() / 2];
}

struct CtlProbeResult {
  bool ran = false;
  double events_per_sec = 0.0;
  double overhead_pct = 0.0;  ///< slowdown vs the serverless engine probe
  std::uint64_t requests_served = 0;
};

/// The engine probe again, with the introspection server live and a 10 Hz
/// /statusz poller attached for the whole run. The interesting number is
/// the events/sec delta against the serverless probe.
CtlProbeResult run_ctl_overhead_probe_once(double baseline_events_per_sec) {
  sock_shop::Params params;
  params.cart_cores = 4.0;
  params.cart_threads = 12;
  ExperimentConfig ecfg;
  int probe_minutes = 1;
  if (const char* env = std::getenv("SORA_PERF_SMOKE_MINUTES")) {
    probe_minutes = std::max(1, std::atoi(env));
  }
  ecfg.duration = minutes(probe_minutes);
  ecfg.sla = msec(250);
  ecfg.seed = 42;
  Experiment exp(sock_shop::make_sock_shop(params), ecfg);
  exp.closed_loop(600, sec(1), RequestMix(sock_shop::kBrowse));
  ctl::CtlOptions copts;
  copts.port = 0;  // ephemeral: the probe must not collide with a real server
  exp.enable_ctl(copts);
  exp.start_all();

  CtlProbeResult r;
  ctl::CtlServer* server =
      exp.ctl_plane() != nullptr ? exp.ctl_plane()->server() : nullptr;
  if (server == nullptr || !server->running()) return r;
  const int port = server->port();

  std::atomic<bool> done{false};
  std::thread poller([&done, port] {
    while (!done.load(std::memory_order_acquire)) {
      std::string body;
      ctl::http_get("127.0.0.1", port, "/statusz", &body);
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  const auto start = WallClock::now();
  exp.run();
  const double wall = elapsed_sec(start);
  done.store(true, std::memory_order_release);
  poller.join();

  r.ran = true;
  r.events_per_sec =
      wall > 0 ? static_cast<double>(exp.sim().events_executed()) / wall : 0.0;
  r.requests_served = server->requests_served();
  if (baseline_events_per_sec > 0 && r.events_per_sec > 0) {
    r.overhead_pct =
        (1.0 - r.events_per_sec / baseline_events_per_sec) * 100.0;
  }
  return r;
}

/// Median-by-events/sec over `reps` ctl probes. A rep whose server failed
/// to bind is excluded; the probe reports ran=false only if every rep did.
CtlProbeResult run_ctl_overhead_probe(int reps,
                                      double baseline_events_per_sec) {
  std::vector<CtlProbeResult> runs;
  for (int i = 0; i < reps; ++i) {
    CtlProbeResult r = run_ctl_overhead_probe_once(baseline_events_per_sec);
    if (r.ran) runs.push_back(r);
  }
  if (runs.empty()) return CtlProbeResult{};
  std::sort(runs.begin(), runs.end(),
            [](const CtlProbeResult& a, const CtlProbeResult& b) {
              return a.events_per_sec < b.events_per_sec;
            });
  return runs[runs.size() / 2];
}

struct CausalProbeResult {
  double digest_events_per_sec = 0.0;
  double digest_overhead_pct = 0.0;  ///< vs the digest-off engine probe
  double round_wall_sec = 0.0;       ///< one serial profiling round
  std::uint64_t round_runs = 0;      ///< baseline + control + counterfactuals
};

/// Cost of causal profiling when it is switched ON: the digest-instrumented
/// engine probe (median of `reps`), plus one serial CausalLab round on a
/// short cart scenario (baseline + control re-run + 3 counterfactuals).
CausalProbeResult run_causal_probe(int reps, double baseline_events_per_sec) {
  CausalProbeResult r;
  const EngineResult digest = median_engine_probe(reps, /*digest=*/true);
  r.digest_events_per_sec = digest.events_per_sec;
  if (baseline_events_per_sec > 0 && digest.events_per_sec > 0) {
    r.digest_overhead_pct =
        (1.0 - digest.events_per_sec / baseline_events_per_sec) * 100.0;
  }

  CausalLabOptions opts;
  opts.checkpoint = sec(10);
  opts.speedup_factors = {0.9};
  opts.pool_delta = 2;
  opts.cap_delta = 0;
  opts.services = {"cart"};
  opts.threads = 1;
  opts.scenario = "perf_probe";
  CausalLab lab(
      [] {
        sock_shop::Params params;
        params.cart_cores = 4.0;
        params.cart_threads = 12;
        ExperimentConfig ecfg;
        ecfg.duration = sec(20);
        ecfg.sla = msec(250);
        ecfg.seed = 42;
        auto exp = std::make_unique<Experiment>(
            sock_shop::make_sock_shop(params), ecfg);
        exp->closed_loop(400, sec(1), RequestMix(sock_shop::kBrowse));
        return exp;
      },
      opts);
  const auto start = WallClock::now();
  const obs::CausalProfile profile = lab.run();
  r.round_wall_sec = elapsed_sec(start);
  r.round_runs = 2 + profile.effects.size();
  return r;
}

struct ShardedProbeResult {
  bool ran = false;
  int shards = 0;
  double events_per_sec = 0.0;         ///< windowed engine, shards lanes
  double serial_events_per_sec = 0.0;  ///< same scenario, serial engine
  double overhead_pct = 0.0;  ///< windowed vs serial on this scenario
};

/// The engine scenario with a 500 us wire latency, serial vs shards=4. On a
/// single-core host this measures pure window-machinery overhead; with real
/// cores and SORA_SIM_THREADS it becomes a speedup. Either way the
/// trajectory keeps the sharded engine's throughput honest.
ShardedProbeResult run_sharded_probe(int reps) {
  constexpr SimTime kWire = 500;  // us; also the conservative lookahead
  ShardedProbeResult r;
  r.shards = 4;
  const EngineResult serial =
      median_engine_probe(reps, /*digest=*/false, /*shards=*/0, kWire);
  const EngineResult sharded =
      median_engine_probe(reps, /*digest=*/false, r.shards, kWire);
  r.serial_events_per_sec = serial.events_per_sec;
  r.events_per_sec = sharded.events_per_sec;
  if (serial.events_per_sec > 0 && sharded.events_per_sec > 0) {
    r.ran = true;
    r.overhead_pct =
        (1.0 - sharded.events_per_sec / serial.events_per_sec) * 100.0;
  }
  return r;
}

struct TopoSynthProbeResult {
  int services = 0;
  double wall_sec = 0.0;
  double services_per_sec = 0.0;
};

/// Deterministic topology synthesis throughput: wall clock of one
/// 2000-service synthesize() call (median of `reps`). Planet-scale benches
/// and the CI smoke build their graphs this way, so a synthesis slowdown
/// shows up here before it shows up as bench timeouts.
TopoSynthProbeResult run_topo_synth_probe(int reps) {
  TopoSynthProbeResult r;
  r.services = 2000;
  topo::TopologyConfig cfg;
  cfg.seed = 1;
  cfg.services = r.services;
  std::vector<double> walls;
  walls.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto start = WallClock::now();
    const topo::Topology topo = topo::synthesize(cfg);
    walls.push_back(elapsed_sec(start));
    if (static_cast<int>(topo.app.services.size()) != r.services) return r;
  }
  std::sort(walls.begin(), walls.end());
  r.wall_sec = walls[walls.size() / 2];
  r.services_per_sec = r.wall_sec > 0 ? r.services / r.wall_sec : 0.0;
  return r;
}

/// One sweep unit: a short cart run at a thread-pool setting derived from
/// the index. Returns the summary so the parity between serial and
/// parallel execution is checked on real output, not just timing.
ExperimentSummary run_sweep_point(std::size_t index) {
  sock_shop::Params params;
  params.cart_cores = 4.0;
  params.cart_threads = 4 + static_cast<int>(index) * 4;
  ExperimentConfig ecfg;
  ecfg.duration = sec(20);
  ecfg.sla = msec(250);
  ecfg.seed = 1000 + index;
  Experiment exp(sock_shop::make_sock_shop(params), ecfg);
  exp.closed_loop(400, sec(1), RequestMix(sock_shop::kBrowse));
  exp.run();
  return exp.summary();
}

struct SweepResult {
  std::size_t runs = 0;
  double serial_sec = 0.0;
  double parallel_sec = 0.0;
  double speedup = 0.0;
  int workers = 0;
  bool identical = true;  ///< parallel summaries match serial bit-for-bit
};

bool same_sim_outputs(const ExperimentSummary& a, const ExperimentSummary& b) {
  return a.injected == b.injected && a.completed == b.completed &&
         a.shed == b.shed && a.mean_ms == b.mean_ms && a.p50_ms == b.p50_ms &&
         a.p95_ms == b.p95_ms && a.p99_ms == b.p99_ms &&
         a.goodput_rps == b.goodput_rps &&
         a.throughput_rps == b.throughput_rps &&
         a.good_fraction == b.good_fraction &&
         a.slo_episodes == b.slo_episodes;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Short git SHA of HEAD, or "unknown" outside a git checkout.
std::string git_sha() {
  std::string sha = "unknown";
  if (FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) {
      const std::string line = trim(buf);
      if (!line.empty()) sha = line;
    }
    ::pclose(p);
  }
  return sha;
}

std::string today_utc() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[16];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm);
  return buf;
}

/// Append `entry` to the JSON trajectory array at `path`. A legacy
/// single-object file becomes the first element; a missing or unreadable
/// file starts a fresh array.
void append_trajectory(const std::string& path, const std::string& entry) {
  std::string existing;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    existing = trim(buf.str());
  }
  std::ofstream os(path, std::ios::trunc);
  os << "[\n";
  if (existing.size() >= 2 && existing.front() == '[' &&
      existing.back() == ']') {
    const std::string body =
        trim(existing.substr(1, existing.size() - 2));
    if (!body.empty()) os << body << ",\n";
  } else if (!existing.empty() && existing.front() == '{') {
    os << existing << ",\n";
  }
  os << entry << "\n]\n";
}

/// Trajectory schema check: every committed entry must carry the keys the
/// perf gate and trajectory tooling key on. Returns "" when the file is
/// absent/empty or every entry validates; otherwise the first problem.
std::string validate_trajectory(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = trim(buf.str());
  if (text.empty()) return "";
  ctl::JsonValue doc;
  if (!ctl::parse_json(text, &doc)) return "unparsable JSON";
  if (doc.kind() != ctl::JsonValue::Kind::kArray) return "not a JSON array";
  static const char* const kRequired[] = {"bench", "git_sha", "date",
                                          "engine_events_per_sec"};
  // An instrumented run that is >50% slower — or any amount "faster" —
  // than its own baseline is a measurement artifact, not a result; such
  // entries poison the trajectory and must not be committed.
  static const char* const kOverheadKeys[] = {"ctl_overhead_pct",
                                              "causal_digest_overhead_pct"};
  std::size_t i = 0;
  for (const auto& entry : doc.as_array()) {
    for (const char* key : kRequired) {
      if (!entry.has(key)) {
        return "entry " + std::to_string(i) + " missing \"" + key + "\"";
      }
    }
    if (!(entry["engine_events_per_sec"].as_number() > 0)) {
      return "entry " + std::to_string(i) +
             ": engine_events_per_sec not positive";
    }
    for (const char* key : kOverheadKeys) {
      if (entry.has(key) && std::abs(entry[key].as_number()) > 50.0) {
        return "entry " + std::to_string(i) + ": |" + key +
               "| > 50% — suspect measurement";
      }
    }
    if (entry.has("topo_synth_services_per_sec") &&
        !(entry["topo_synth_services_per_sec"].as_number() > 0)) {
      return "entry " + std::to_string(i) +
             ": topo_synth_services_per_sec not positive";
    }
    if (entry.has("sharded_events_per_sec")) {
      if (!(entry["sharded_events_per_sec"].as_number() > 0)) {
        return "entry " + std::to_string(i) +
               ": sharded_events_per_sec not positive";
      }
      if (!(entry["sharded_shards"].as_number() >= 1)) {
        return "entry " + std::to_string(i) +
               ": sharded_shards missing or < 1";
      }
    }
    ++i;
  }
  return "";
}

/// Best engine_events_per_sec across the committed trajectory entries
/// (0 when the file is missing, unparsable, or empty).
double best_trajectory_events_per_sec(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0.0;
  std::ostringstream buf;
  buf << in.rdbuf();
  ctl::JsonValue doc;
  if (!ctl::parse_json(buf.str(), &doc)) return 0.0;
  double best = 0.0;
  if (doc.kind() == ctl::JsonValue::Kind::kArray) {
    for (const auto& entry : doc.as_array()) {
      best = std::max(best, entry["engine_events_per_sec"].as_number());
    }
  } else {
    best = doc["engine_events_per_sec"].as_number();
  }
  return best;
}

SweepResult run_sweep_probe() {
  SweepResult r;
  r.runs = 8;
  r.workers = SweepRunner::default_worker_count();

  auto serial_start = WallClock::now();
  SweepRunner serial(1);
  const auto serial_results =
      serial.map(r.runs, [](std::size_t i) { return run_sweep_point(i); });
  r.serial_sec = elapsed_sec(serial_start);

  auto parallel_start = WallClock::now();
  SweepRunner parallel(r.workers);
  const auto parallel_results =
      parallel.map(r.runs, [](std::size_t i) { return run_sweep_point(i); });
  r.parallel_sec = elapsed_sec(parallel_start);

  r.speedup = r.parallel_sec > 0 ? r.serial_sec / r.parallel_sec : 0.0;
  for (std::size_t i = 0; i < r.runs; ++i) {
    if (!same_sim_outputs(serial_results[i], parallel_results[i])) {
      r.identical = false;
    }
  }
  return r;
}

int main_impl(int argc, char** argv) {
  print_header("perf_smoke: engine throughput + sweep speedup",
               "Emits BENCH_sim.json (the repo's perf trajectory)");

  bool gate = false;
  std::string out_path = "BENCH_sim.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gate") {
      gate = true;
    } else {
      out_path = arg;
    }
  }
  // Gate mode refuses to extend a malformed trajectory: catching a bad
  // entry here (hand-edit, merge damage) beats silently gating against it.
  if (gate) {
    const std::string problem = validate_trajectory(out_path);
    if (!problem.empty()) {
      std::cout << "perf gate: FAIL — malformed trajectory " << out_path
                << ": " << problem << "\n";
      return 2;
    }
  }
  // Read the best committed entry BEFORE appending this run's.
  const double best_prior =
      gate ? best_trajectory_events_per_sec(out_path) : 0.0;

  const int reps = probe_reps();
  const EngineResult engine = median_engine_probe(reps);
  std::cout << "engine probe (1-min cart sim, median of " << reps
            << "):\n"
            << "  events executed : " << engine.events << "\n"
            << "  events cancelled: " << engine.cancelled << "\n"
            << "  wall clock      : " << fmt(engine.wall_sec, 3) << " s\n"
            << "  events/sec      : " << fmt(engine.events_per_sec / 1e6, 3)
            << " M\n"
            << "  wall ms / sim s : " << fmt(engine.wall_ms_per_sim_sec, 2)
            << "\n";

  const CtlProbeResult ctl =
      run_ctl_overhead_probe(reps, engine.events_per_sec);
  std::cout << "\nctl overhead probe (same sim, live server + 10 Hz poller, "
               "median of " << reps << "):\n";
  if (ctl.ran) {
    std::cout << "  events/sec      : " << fmt(ctl.events_per_sec / 1e6, 3)
              << " M\n"
              << "  requests served : " << ctl.requests_served << "\n"
              << "  overhead        : " << fmt(ctl.overhead_pct, 2)
              << " % (budget: < 1%)\n";
  } else {
    std::cout << "  skipped (server failed to bind)\n";
  }

  const CausalProbeResult causal =
      run_causal_probe(reps, engine.events_per_sec);
  std::cout << "\ncausal probe (digest-instrumented engine + 1 serial round):\n"
            << "  digest events/s : " << fmt(causal.digest_events_per_sec / 1e6, 3)
            << " M (overhead " << fmt(causal.digest_overhead_pct, 2) << " %)\n"
            << "  round wall      : " << fmt(causal.round_wall_sec, 3) << " s ("
            << causal.round_runs << " runs of a 20-s scenario)\n";

  const ShardedProbeResult sharded = run_sharded_probe(reps);
  std::cout << "\nsharded probe (same sim + 500 us wire, serial vs shards="
            << sharded.shards << "):\n"
            << "  serial events/s : "
            << fmt(sharded.serial_events_per_sec / 1e6, 3) << " M\n"
            << "  sharded events/s: " << fmt(sharded.events_per_sec / 1e6, 3)
            << " M\n"
            << "  window overhead : " << fmt(sharded.overhead_pct, 2)
            << " %\n";

  const TopoSynthProbeResult topo_synth = run_topo_synth_probe(reps);
  std::cout << "\ntopology synthesis probe (" << topo_synth.services
            << " services, median of " << reps << "):\n"
            << "  wall clock      : " << fmt(topo_synth.wall_sec * 1000.0, 2)
            << " ms\n"
            << "  services/sec    : "
            << fmt(topo_synth.services_per_sec / 1e3, 1) << " K\n";

  const SweepResult sweep = run_sweep_probe();
  std::cout << "\nsweep probe (" << sweep.runs << " independent 20-s runs, "
            << sweep.workers << " worker(s)):\n"
            << "  serial          : " << fmt(sweep.serial_sec, 3) << " s\n"
            << "  parallel        : " << fmt(sweep.parallel_sec, 3) << " s\n"
            << "  speedup         : " << fmt(sweep.speedup, 2) << "x\n"
            << "  outputs match   : " << (sweep.identical ? "yes" : "NO")
            << "\n";

  obs::JsonObject o;
  o.field("bench", "perf_smoke");
  o.field("git_sha", git_sha());
  o.field("date", today_utc());
  o.field("engine_events", engine.events);
  o.field("engine_events_cancelled", engine.cancelled);
  o.field("engine_wall_sec", engine.wall_sec);
  o.field("engine_events_per_sec", engine.events_per_sec);
  o.field("engine_wall_ms_per_sim_sec", engine.wall_ms_per_sim_sec);
  o.field("probe_reps", static_cast<std::uint64_t>(reps));
  if (sharded.ran) {
    o.field("sharded_events_per_sec", sharded.events_per_sec);
    o.field("sharded_serial_events_per_sec", sharded.serial_events_per_sec);
    o.field("sharded_shards", static_cast<std::uint64_t>(sharded.shards));
    o.field("sharded_overhead_pct", sharded.overhead_pct);
  }
  if (topo_synth.services_per_sec > 0) {
    o.field("topo_synth_services", static_cast<std::uint64_t>(topo_synth.services));
    o.field("topo_synth_wall_sec", topo_synth.wall_sec);
    o.field("topo_synth_services_per_sec", topo_synth.services_per_sec);
  }
  o.field("sweep_runs", static_cast<std::uint64_t>(sweep.runs));
  o.field("sweep_workers", static_cast<std::uint64_t>(sweep.workers));
  o.field("sweep_serial_sec", sweep.serial_sec);
  o.field("sweep_parallel_sec", sweep.parallel_sec);
  o.field("sweep_speedup", sweep.speedup);
  o.field("sweep_outputs_match", sweep.identical);
  if (ctl.ran) {
    o.field("ctl_events_per_sec", ctl.events_per_sec);
    o.field("ctl_overhead_pct", ctl.overhead_pct);
    o.field("ctl_requests_served", ctl.requests_served);
  }
  o.field("causal_digest_events_per_sec", causal.digest_events_per_sec);
  o.field("causal_digest_overhead_pct", causal.digest_overhead_pct);
  o.field("causal_round_wall_sec", causal.round_wall_sec);
  o.field("causal_round_runs", causal.round_runs);
  o.field("host_hardware_concurrency",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  append_trajectory(out_path, o.str());
  std::cout << "\nappended to " << out_path << "\n";

  // Re-validate with this run's entry included: a fresh suspect overhead
  // measurement must fail the gate, not get committed for the next run to
  // trip over.
  if (gate) {
    const std::string problem = validate_trajectory(out_path);
    if (!problem.empty()) {
      std::cout << "perf gate: FAIL — " << problem << "\n";
      return 2;
    }
  }

  if (gate) {
    double pct = 10.0;
    if (const char* env = std::getenv("SORA_PERF_GATE_PCT")) {
      const double v = std::atof(env);
      if (v > 0) pct = v;
    }
    if (best_prior <= 0) {
      std::cout << "perf gate: no prior trajectory entry; nothing to gate\n";
    } else {
      const double floor = best_prior * (1.0 - pct / 100.0);
      std::cout << "perf gate: current " << fmt(engine.events_per_sec / 1e6, 3)
                << " M ev/s vs best committed "
                << fmt(best_prior / 1e6, 3) << " M (floor "
                << fmt(floor / 1e6, 3) << " M, -" << fmt(pct, 0) << "%)\n";
      if (engine.events_per_sec < floor) {
        std::cout << "perf gate: FAIL — events/sec regressed beyond "
                  << fmt(pct, 0) << "%\n";
        return 2;
      }
      std::cout << "perf gate: OK\n";
    }
  }
  return sweep.identical ? 0 : 1;
}

}  // namespace
}  // namespace sora::bench

int main(int argc, char** argv) { return sora::bench::main_impl(argc, argv); }
