// Figure 1 — the paper's motivating incident: Kubernetes HPA scales the
// bottlenecked Catalogue service out, but the DB connection pool stays
// over-allocated; response time keeps spiking. Sora adapts the pool.
//
// Panels (as in the figure): end-to-end latency, Catalogue CPU
// utilization (with the scale-out visible), and established DB connections.
#include "bench_util.h"

namespace sora::bench {
namespace {

struct Fig1Result {
  ExperimentSummary summary;
  std::vector<ServiceTimelinePoint> catalogue;
  std::vector<TimelineBucket> client;
};

Fig1Result run(bool with_sora, std::uint64_t seed) {
  sock_shop::Params params;
  params.catalogue_db_connections = 96;  // grossly over-allocated pool
  params.catalogue_cores = 2.0;          // catalogue = bottleneck HPA scales
  // Keep every other service well out of the way so the catalogue branch
  // (the paper's Figure 1 subject) is the bottleneck.
  params.cart_cores = 8.0;
  params.cart_threads = 64;
  ExperimentConfig ecfg;
  ecfg.duration = minutes(6);
  ecfg.sla = msec(400);
  ecfg.seed = seed;
  Experiment exp(sock_shop::make_sock_shop(params), ecfg);

  // Sustained high phase (the paper's figure shows a scale-out under a
  // lasting surge, not an instantaneous spike).
  const WorkloadTrace trace(TraceShape::kDualPhase, ecfg.duration, 600, 2400);
  auto& users = exp.closed_loop(600, sec(1), RequestMix(sock_shop::kBrowse));
  users.follow_trace(trace);

  HpaOptions ho;
  ho.max_replicas = 4;
  auto& hpa = exp.add_hpa(ho);
  hpa.manage(exp.app().service("catalogue"));

  if (with_sora) {
    SoraFrameworkOptions so;
    so.sla = ecfg.sla;
    auto& sora = exp.add_sora(so);
    sora.manage(
        ResourceKnob::edge(exp.app().service("catalogue"), "catalogue-db"));
    Experiment::link(hpa, sora);
  }

  exp.track_service("catalogue", "catalogue-db");
  exp.run();
  Fig1Result out;
  out.summary = exp.summary();
  out.catalogue = exp.timeline("catalogue");
  out.client = exp.recorder().timeline();
  return out;
}

void print_panes(const std::string& label, const Fig1Result& r) {
  const auto rt = column(r.client,
                         [](const TimelineBucket& b) { return b.max_rt_ms(); });
  const auto util = column(
      r.catalogue, [](const ServiceTimelinePoint& p) { return p.util_pct; });
  const auto conns = column(r.catalogue, [](const ServiceTimelinePoint& p) {
    return static_cast<double>(p.edge_capacity);
  });
  auto vmax = [](const std::vector<double>& v) {
    double m = 0.0;
    for (double x : v) m = std::max(m, x);
    return m;
  };
  std::cout << "\n--- " << label << " ---\n";
  std::cout << "end-to-end latency (max " << fmt(vmax(rt), 0) << " ms) |"
            << sparkline(rt) << "|\n";
  std::cout << "catalogue CPU util (max " << fmt(vmax(util), 0) << " %)  |"
            << sparkline(util) << "|\n";
  std::cout << "established DB conns (max " << fmt(vmax(conns), 0) << ")  |"
            << sparkline(conns) << "|\n";
}

int main_impl() {
  print_header("Figure 1: HPA with over-allocated DB connections vs Sora",
               "Paper: HPA scale-out alone cannot remove the latency spikes; "
               "Sora trims the connection pool");

  const Fig1Result hpa = run(false, 9);
  const Fig1Result sora = run(true, 9);
  print_panes("(a) Kubernetes HPA only (96 DB conns static)", hpa);
  print_panes("(b) HPA + Sora", sora);

  std::cout << "\n=== Summary ===\n";
  TextTable t({"metric", "HPA", "HPA+Sora", "paper shape"});
  t.add_row({"p99 latency [ms]", fmt(hpa.summary.p99_ms, 0),
             fmt(sora.summary.p99_ms, 0), "Sora lower"});
  t.add_row({"avg goodput [req/s]", fmt(hpa.summary.goodput_rps, 0),
             fmt(sora.summary.goodput_rps, 0), "Sora higher"});
  const int hpa_conns =
      hpa.catalogue.empty() ? 0 : hpa.catalogue.back().edge_capacity;
  const int sora_conns =
      sora.catalogue.empty() ? 0 : sora.catalogue.back().edge_capacity;
  t.add_row({"final DB conn allocation", fmt_count(hpa_conns),
             fmt_count(sora_conns), "Sora trims over-allocation"});
  t.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main() { return sora::bench::main_impl(); }
