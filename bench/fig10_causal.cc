// Figure 10 (causal variant) — what-if profiling of the FIRM+Sora run.
//
// Reuses the Figure 10 scenario (Sock Shop cart, Steep Tri Phase, FIRM
// hardware scaling + Sora soft-resource adaptation) and asks the causal
// question the Pearson localizer can only approximate: which service, if
// actually sped up, would move tail latency? The CausalLab forks the run at
// a checkpoint into counterfactual re-simulations (virtual speedups 0.75 /
// 0.9, entry-pool +/-2) per candidate service, across three load regimes:
//
//   calibrated   the paper's operating point — localizer and causal ground
//                truth should agree (MATCH printed),
//   overload     2x peak users — queueing couples every service's PT to the
//                e2e tail; the bottleneck saturates the correlation,
//   light_load   1/8th the calibrated users — no service clears the
//                localizer's utilization gate, so its verdict falls back to
//                raw PCC over sparse critical-path evidence, where a
//                rarely-sampled side service (tens of hops) posts a
//                spuriously perfect correlation. The counterfactual
//                speedups still identify the real, if now small, lever.
//
// Emits the causal report (text + HTML + profile JSON) with the agreement
// table, and publishes /causalz on the first bound ctl server so sora_top's
// what-if panel has live data.
//
//   argv[1]  telemetry dir (default telemetry/fig10_causal, "-" = none)
//   argv[2]  run length in minutes (default 3)
//   SORA_CAUSAL_THREADS    counterfactual fan width (default 4)
//   SORA_CAUSAL_HOLD_SEC   keep serving /causalz this long after finishing
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "bench_util.h"
#include "harness/causal_lab.h"
#include "obs/causal/report.h"

namespace sora::bench {
namespace {

struct Regime {
  std::string name;
  double peak_users = 2400;
};

/// One un-started Figure-10 experiment (FIRM + Sora on cart). Mirrors
/// run_cart_trace's wiring; the CausalLab re-invokes this for the baseline,
/// the control re-run and every counterfactual.
CausalLab::Builder make_builder(CartTraceConfig cfg) {
  return [cfg]() {
    sock_shop::Params params;
    params.cart_cores = cfg.initial_cores;
    params.cart_threads = cfg.initial_threads;
    ExperimentConfig ecfg;
    ecfg.duration = cfg.duration;
    ecfg.sla = cfg.sla;
    ecfg.seed = cfg.seed;
    auto exp = std::make_unique<Experiment>(sock_shop::make_sock_shop(params),
                                            ecfg);
    const WorkloadTrace trace(cfg.shape, cfg.duration, cfg.base_users,
                              cfg.peak_users);
    auto& users = exp->closed_loop(static_cast<int>(cfg.base_users), sec(1),
                                   RequestMix(sock_shop::kBrowse));
    users.follow_trace(trace);

    FirmOptions fo;
    fo.slo_latency = cfg.sla;
    fo.min_cores = cfg.initial_cores;
    fo.max_cores = cfg.max_cores;
    auto& firm = exp->add_firm(fo);
    firm.manage(exp->app().service("cart"));
    SoraFrameworkOptions so;
    so.sla = cfg.sla;
    auto& fw = exp->add_sora(so);
    fw.manage(ResourceKnob::entry(exp->app().service("cart")));
    Experiment::link(firm, fw);

    return exp;
  };
}

int main_impl(int argc, char** argv) {
  print_header("Figure 10 (causal): virtual-speedup attribution vs Pearson "
               "localization",
               "Counterfactual co-simulation: exact causal what-if effects, "
               "cross-validated against the correlation-based localizer");

  CartTraceConfig cfg;
  cfg.shape = TraceShape::kSteepTriPhase;
  cfg.duration = minutes(3);
  cfg.sla = msec(400);
  cfg.base_users = 600;
  cfg.peak_users = 2400;
  cfg.initial_threads = 5;
  cfg.initial_cores = 2.0;
  cfg.max_cores = 4.0;
  cfg.telemetry_dir = argc > 1 ? argv[1] : "telemetry/fig10_causal";
  if (cfg.telemetry_dir == "-") cfg.telemetry_dir.clear();
  if (argc > 2) cfg.duration = minutes(std::max(1, std::atoi(argv[2])));
  print_ctl_hint();

  int threads = 4;
  if (const char* env = std::getenv("SORA_CAUSAL_THREADS")) {
    threads = std::max(1, std::atoi(env));
  }

  const std::vector<Regime> regimes = {
      {"calibrated", cfg.peak_users},
      {"overload", cfg.peak_users * 2},
      {"light_load", 300},
  };

  std::vector<std::unique_ptr<CausalLab>> labs;
  std::vector<obs::CausalProfile> profiles;
  for (const Regime& regime : regimes) {
    CartTraceConfig rc = cfg;
    rc.peak_users = regime.peak_users;
    rc.base_users = std::min(rc.base_users, regime.peak_users);
    CausalLabOptions opts;
    opts.checkpoint = rc.duration * 6 / 10;  // 60% in: past the load ramp
    opts.speedup_factors = {0.75, 0.9};
    opts.pool_delta = 2;
    opts.services = {"front-end", "cart", "catalogue"};
    opts.threads = threads;
    opts.scenario = regime.name;
    labs.push_back(std::make_unique<CausalLab>(make_builder(rc), opts));
    std::cout << "\n[" << regime.name << "] profiling (checkpoint "
              << fmt(to_sec(opts.checkpoint), 0) << " s, fan " << threads
              << " threads)...\n";
    profiles.push_back(labs.back()->run());
    const obs::CausalProfile& p = profiles.back();
    std::cout << "  control re-run: "
              << (p.control_identical ? "bit-identical" : "DIVERGED")
              << "   causal rank: " << p.ranking_string() << "\n";

    // The observational evidence the Pearson verdict rests on — makes the
    // agreement (or divergence) with the causal rank auditable.
    Experiment& base = labs.back()->baseline();
    if (!base.frameworks().empty()) {
      const CriticalServiceReport& rep =
          base.frameworks().front()->last_report();
      TextTable diag({"service", "util", "pcc", "cp hops", "mean PT [ms]"});
      for (const ServiceDiagnostics& d : rep.services) {
        diag.add_row({base.app().service_name(d.service),
                      fmt(d.utilization, 2), fmt(d.pcc, 3),
                      fmt_count(static_cast<double>(d.cp_appearances)),
                      fmt(d.mean_pt_ms, 2)});
      }
      diag.print(std::cout);
    }
  }

  // All regimes on one /causalz document, served by whichever baseline
  // bound SORA_CTL_PORT first (the first lab's).
  CausalLab::publish(labs.front()->baseline(), profiles);

  obs::CausalReportInputs report;
  report.title = "Figure 10 causal what-if profile";
  report.profiles = &profiles;
  std::cout << "\n";
  write_causal_report_text(report, std::cout);

  // The headline cross-validation verdicts.
  std::cout << "\n";
  for (const obs::CausalProfile& p : profiles) {
    std::cout << "[" << p.scenario << "] "
              << (p.agree ? "MATCH" : "DIVERGE") << ": causal pick '"
              << p.causal_pick << "' vs pearson pick '" << p.pearson_pick
              << "'\n";
  }

  if (!cfg.telemetry_dir.empty()) {
    std::filesystem::create_directories(cfg.telemetry_dir);
    const std::string base = cfg.telemetry_dir + "/causal";
    {
      std::ofstream os(base + "_report.txt");
      write_causal_report_text(report, os);
    }
    {
      std::ofstream os(base + "_report.html");
      write_causal_report_html(report, os);
    }
    {
      std::ofstream os(base + "_profile.json");
      os << CausalLab::profiles_json(profiles) << "\n";
    }
    {
      std::ofstream os(base + "_decisions.jsonl");
      labs.front()->baseline().export_decision_log(os);
    }
    std::cout << "\nTelemetry exported to " << cfg.telemetry_dir
              << "/: causal_report.{txt,html}, causal_profile.json, "
                 "causal_decisions.jsonl\n";
  }

  // Keep the first baseline's ctl server (and its /causalz document) alive
  // for dashboards / the CI smoke poll.
  if (const char* hold = std::getenv("SORA_CAUSAL_HOLD_SEC")) {
    const int hold_sec = std::atoi(hold);
    if (hold_sec > 0) {
      std::cout << "[ctl] holding /causalz for " << hold_sec << " s\n";
      std::cout.flush();
      std::this_thread::sleep_for(std::chrono::seconds(hold_sec));
    }
  }
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main(int argc, char** argv) { return sora::bench::main_impl(argc, argv); }
