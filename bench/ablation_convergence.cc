// Ablation — convergence speed: SCG model vs. step-by-step hill climbing.
//
// Section 3.1 argues that step-by-step heuristic tuners are too slow for
// bursty workloads, which is why the SCG model estimates the optimum in one
// shot from the scatter. Both tuners start from the same badly
// under-allocated Cart thread pool; we track goodput over time and report
// time-to-recovery.
#include "bench_util.h"

#include "core/hillclimb.h"
#include "core/sora.h"
#include "harness/sweep.h"

namespace sora::bench {
namespace {

struct ConvergenceResult {
  std::vector<TimelineBucket> client;
  ExperimentSummary summary;
  int final_pool = 0;
};

enum class Tuner { kNone, kSora, kHillClimb };

ConvergenceResult run(Tuner tuner, std::uint64_t seed) {
  sock_shop::Params params;
  params.cart_cores = 4.0;
  // Under-allocated cold start, but inside the region where goodput has a
  // usable gradient (a gradient-free zero plateau would let the hill
  // climber wander in either direction and never recover).
  params.cart_threads = 4;
  ExperimentConfig ecfg;
  ecfg.duration = minutes(6);
  ecfg.sla = msec(250);
  ecfg.seed = seed;
  Experiment exp(sock_shop::make_sock_shop(params), ecfg);
  exp.closed_loop(1700, sec(1), RequestMix(sock_shop::kBrowse));

  const ResourceKnob knob = ResourceKnob::entry(exp.app().service("cart"));
  std::unique_ptr<HillClimbTuner> climber;
  switch (tuner) {
    case Tuner::kSora: {
      SoraFrameworkOptions so;
      so.sla = ecfg.sla;
      exp.add_sora(so).manage(knob);
      break;
    }
    case Tuner::kHillClimb: {
      HillClimbOptions ho;
      ho.rt_threshold = msec(200);
      climber = std::make_unique<HillClimbTuner>(exp.sim(), exp.tracer(), knob,
                                                 ho);
      climber->start();
      break;
    }
    case Tuner::kNone:
      break;
  }

  exp.run();
  ConvergenceResult out;
  out.client = exp.recorder().timeline();
  out.summary = exp.summary();
  out.final_pool = knob.current_size();
  return out;
}

/// First time [s] at which goodput sustains >= `fraction` of the reference
/// steady-state goodput for 30 consecutive seconds; -1 if never.
int recovery_time(const ConvergenceResult& r, double target_gps) {
  int streak = 0;
  for (std::size_t i = 0; i < r.client.size(); ++i) {
    if (static_cast<double>(r.client[i].good) >= target_gps) {
      if (++streak >= 30) return static_cast<int>(i) - 29;
    } else {
      streak = 0;
    }
  }
  return -1;
}

int main_impl() {
  print_header("Ablation: convergence speed, SCG vs step-by-step tuning",
               "Paper Section 3.1: heuristic step-by-step tuners converge "
               "too slowly for bursty workloads");

  const std::vector<Tuner> tuners = {Tuner::kNone, Tuner::kSora,
                                     Tuner::kHillClimb};
  const auto results =
      SweepRunner().map(tuners, [](Tuner t) { return run(t, 23); });
  const ConvergenceResult& none = results[0];
  const ConvergenceResult& sora = results[1];
  const ConvergenceResult& climb = results[2];

  // Reference: the best goodput any variant sustains.
  double target = 0.0;
  for (const auto* r : {&sora, &climb}) {
    for (const auto& b : r->client) {
      target = std::max(target, static_cast<double>(b.good));
    }
  }
  target *= 0.9;

  TextTable t({"tuner", "recovery time [s]", "avg goodput [req/s]",
               "p99 [ms]", "final pool"});
  auto row = [&](const char* name, const ConvergenceResult& r) {
    const int rec = recovery_time(r, target);
    t.add_row({name, rec < 0 ? "never" : fmt_count(static_cast<std::uint64_t>(rec)),
               fmt(r.summary.goodput_rps, 0), fmt(r.summary.p99_ms, 0),
               fmt_count(static_cast<std::uint64_t>(r.final_pool))});
  };
  row("static (4 threads)", none);
  row("Sora (SCG)", sora);
  row("hill climbing", climb);
  t.print(std::cout);

  std::cout << "\ngoodput timelines:\n";
  auto spark = [](const ConvergenceResult& r) {
    return sparkline(column(r.client, [](const TimelineBucket& b) {
      return static_cast<double>(b.good);
    }));
  };
  std::cout << "static     |" << spark(none) << "|\n";
  std::cout << "Sora       |" << spark(sora) << "|\n";
  std::cout << "hill climb |" << spark(climb) << "|\n";
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main() { return sora::bench::main_impl(); }
