// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "apps/sock_shop.h"
#include "apps/social_network.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/sweep.h"

namespace sora::bench {

/// Goodput of Sock Shop browse traffic with a fixed Cart thread pool, under
/// a closed-loop population. Used by the Figure 3/9 sweeps.
struct SweepResult {
  int pool_size = 0;
  double goodput = 0.0;
  double throughput = 0.0;
  double p99_ms = 0.0;
};

struct CartSweepConfig {
  double cart_cores = 4.0;
  SimTime sla = msec(250);  ///< end-to-end goodput threshold
  int users = 600;
  SimTime think = sec(1);
  SimTime duration = minutes(3);
  std::uint64_t seed = 42;
};

inline SweepResult run_cart_point(const CartSweepConfig& cfg, int threads) {
  sock_shop::Params params;
  params.cart_cores = cfg.cart_cores;
  params.cart_threads = threads;
  ExperimentConfig ecfg;
  ecfg.duration = cfg.duration;
  ecfg.sla = cfg.sla;
  ecfg.seed = cfg.seed;
  Experiment exp(sock_shop::make_sock_shop(params), ecfg);
  exp.closed_loop(cfg.users, cfg.think, RequestMix(sock_shop::kBrowse));
  exp.run();
  const ExperimentSummary s = exp.summary();
  return SweepResult{threads, s.goodput_rps, s.throughput_rps, s.p99_ms};
}

/// Normalize a sweep's goodput column to its maximum (the paper's Figure 3
/// y-axis is normalized goodput).
inline std::vector<double> normalized_goodput(
    const std::vector<SweepResult>& sweep) {
  double max_gp = 0.0;
  for (const auto& r : sweep) max_gp = std::max(max_gp, r.goodput);
  std::vector<double> out;
  out.reserve(sweep.size());
  for (const auto& r : sweep) {
    out.push_back(max_gp > 0 ? r.goodput / max_gp : 0.0);
  }
  return out;
}

inline int argmax_goodput(const std::vector<SweepResult>& sweep) {
  int best = sweep.empty() ? 0 : sweep.front().pool_size;
  double best_gp = -1.0;
  for (const auto& r : sweep) {
    if (r.goodput > best_gp) {
      best_gp = r.goodput;
      best = r.pool_size;
    }
  }
  return best;
}

/// Render an ASCII timeline sparkline (one char per bucket, scaled to max).
inline std::string sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  double max_v = 0.0;
  for (double v : values) max_v = std::max(max_v, v);
  std::string out;
  for (double v : values) {
    const int level =
        max_v > 0 ? static_cast<int>(v / max_v * 7.0 + 0.5) : 0;
    out += kLevels[std::clamp(level, 0, 7)];
  }
  return out;
}

/// Downsample a timeline column for compact printing.
template <typename T, typename Fn>
std::vector<double> column(const std::vector<T>& points, Fn&& get,
                           std::size_t max_points = 72) {
  std::vector<double> out;
  if (points.empty()) return out;
  const std::size_t stride = std::max<std::size_t>(1, points.size() / max_points);
  for (std::size_t i = 0; i < points.size(); i += stride) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t j = i; j < std::min(points.size(), i + stride); ++j, ++n) {
      acc += get(points[j]);
    }
    out.push_back(n ? acc / static_cast<double>(n) : 0.0);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared runner for the Section 5.2 comparisons: Sock Shop Cart under a
// bursty trace, a hardware-only autoscaler, and optionally a soft-resource
// adaptation framework (Sora = SCG, ConScale = SCT).
// ---------------------------------------------------------------------------

enum class HardwareScaler { kNone, kFirm, kVpa, kHpa };
enum class SoftAdaptation { kNone, kSora, kConScale };

struct CartTraceConfig {
  TraceShape shape = TraceShape::kSteepTriPhase;
  SimTime duration = minutes(6);
  SimTime sla = msec(400);
  double base_users = 600;
  double peak_users = 2400;
  HardwareScaler scaler = HardwareScaler::kFirm;
  SoftAdaptation adaptation = SoftAdaptation::kNone;
  int initial_threads = 5;   ///< pre-profiled for the 2-core limit (paper)
  double initial_cores = 2.0;
  double max_cores = 4.0;
  /// Scales every CPU demand. >1 puts per-visit service times in the
  /// tens-of-ms regime of the paper's testbed, where the latency-filtered
  /// (SCG) and latency-agnostic (SCT) models genuinely diverge.
  double demand_scale = 1.0;
  std::uint64_t seed = 42;
  /// When non-empty, the run's telemetry is exported into this directory
  /// (created if needed): <tag>_decisions.jsonl (control-decision audit
  /// log), <tag>_trace.json (Chrome trace_event, load into
  /// ui.perfetto.dev), <tag>_cart_timeline.csv, <tag>_metrics.jsonl, plus
  /// the streaming SLO analytics artifacts <tag>_slo_report.{txt,html},
  /// <tag>_attribution.csv and <tag>_burn.csv.
  std::string telemetry_dir;
  std::string telemetry_tag = "run";
};

struct CartTraceResult {
  ExperimentSummary summary;
  std::vector<ServiceTimelinePoint> cart;        ///< per-second cart state
  std::vector<TimelineBucket> client;            ///< per-second client view
  /// End-to-end SLO violation episodes (empty when telemetry was disabled).
  std::vector<obs::ViolationEpisode> episodes;
  /// Service with the largest attributed budget consumption during the
  /// longest episode ("" when no episode was detected).
  std::string top_episode_consumer;
  /// Most frequent non-empty localization verdict in the decision log
  /// ("" when no control plane localized anything).
  std::string localized_critical_service;
};

/// Most frequent non-empty `critical_service` among a run's decisions — the
/// consensus localization verdict of the control plane.
inline std::string localization_mode(const obs::DecisionLog& log) {
  std::map<std::string, int> votes;
  for (const auto& rec : log.records()) {
    if (!rec.critical_service.empty()) ++votes[rec.critical_service];
  }
  std::string best;
  int best_n = 0;
  for (const auto& [name, n] : votes) {
    if (n > best_n) {
      best = name;
      best_n = n;
    }
  }
  return best;
}

inline CartTraceResult run_cart_trace(const CartTraceConfig& cfg) {
  sock_shop::Params params;
  params.cart_cores = cfg.initial_cores;
  params.cart_threads = cfg.initial_threads;
  params.demand_scale = cfg.demand_scale;
  ExperimentConfig ecfg;
  ecfg.duration = cfg.duration;
  ecfg.sla = cfg.sla;
  ecfg.seed = cfg.seed;
  Experiment exp(sock_shop::make_sock_shop(params), ecfg);

  const WorkloadTrace trace(cfg.shape, cfg.duration, cfg.base_users,
                            cfg.peak_users);
  auto& users = exp.closed_loop(static_cast<int>(cfg.base_users), sec(1),
                                RequestMix(sock_shop::kBrowse));
  users.follow_trace(trace);

  Autoscaler* scaler = nullptr;
  switch (cfg.scaler) {
    case HardwareScaler::kFirm: {
      FirmOptions fo;
      fo.slo_latency = cfg.sla;
      fo.min_cores = cfg.initial_cores;
      fo.max_cores = cfg.max_cores;
      auto& firm = exp.add_firm(fo);
      firm.manage(exp.app().service("cart"));
      scaler = &firm;
      break;
    }
    case HardwareScaler::kVpa: {
      VpaOptions vo;
      vo.min_cores = cfg.initial_cores;
      vo.max_cores = cfg.max_cores;
      auto& vpa = exp.add_vpa(vo);
      vpa.manage(exp.app().service("cart"));
      scaler = &vpa;
      break;
    }
    case HardwareScaler::kHpa: {
      auto& hpa = exp.add_hpa();
      hpa.manage(exp.app().service("cart"));
      scaler = &hpa;
      break;
    }
    case HardwareScaler::kNone:
      break;
  }

  if (cfg.adaptation != SoftAdaptation::kNone) {
    SoraFrameworkOptions so = cfg.adaptation == SoftAdaptation::kConScale
                                  ? make_conscale_options()
                                  : SoraFrameworkOptions{};
    so.sla = cfg.sla;
    auto& fw = exp.add_sora(so);
    fw.manage(ResourceKnob::entry(exp.app().service("cart")));
    if (scaler != nullptr) Experiment::link(*scaler, fw);
  }

  exp.track_service("cart");
  if (!cfg.telemetry_dir.empty()) {
    exp.enable_metrics_sampling(sec(5));
    // Streaming SLO layer: burn-rate monitor + latency-budget attribution,
    // aggregated per control round.
    SloAnalyticsOptions slo;
    slo.attribution_window = sec(15);
    exp.enable_slo_analytics(slo);
  }
  exp.run();

  if (!cfg.telemetry_dir.empty()) {
    std::filesystem::create_directories(cfg.telemetry_dir);
    const std::string base = cfg.telemetry_dir + "/" + cfg.telemetry_tag;
    {
      std::ofstream os(base + "_decisions.jsonl");
      exp.export_decision_log(os);
    }
    {
      std::ofstream os(base + "_trace.json");
      obs::ChromeTraceOptions topt;
      topt.max_traces = 200;  // keep the viewer file small
      exp.export_chrome_trace(os, topt);
    }
    {
      std::ofstream os(base + "_cart_timeline.csv");
      exp.export_timelines_csv("cart", os);
    }
    {
      std::ofstream os(base + "_metrics.jsonl");
      exp.export_metrics_jsonl(os);
    }
    const std::string title =
        "Sock Shop cart, " + cfg.telemetry_tag + " run";
    {
      std::ofstream os(base + "_slo_report.txt");
      exp.export_slo_report_text(os, title);
    }
    {
      std::ofstream os(base + "_slo_report.html");
      exp.export_slo_report_html(os, title);
    }
    {
      std::ofstream os(base + "_attribution.csv");
      exp.export_attribution_csv(os);
    }
    {
      std::ofstream os(base + "_burn.csv");
      exp.export_burn_csv("e2e", os);
    }
  }

  CartTraceResult out;
  out.summary = exp.summary();
  out.cart = exp.timeline("cart");
  out.client = exp.recorder().timeline();
  if (exp.slo_analytics_enabled()) {
    for (const auto* ep : exp.slo_monitor().episodes_for("e2e")) {
      out.episodes.push_back(*ep);
    }
    const obs::ViolationEpisode* longest = nullptr;
    for (const auto& ep : out.episodes) {
      if (longest == nullptr || ep.duration() > longest->duration()) {
        longest = &ep;
      }
    }
    if (longest != nullptr) {
      out.top_episode_consumer =
          exp.attribution().top_consumer(longest->start, longest->end);
    }
  }
  out.localized_critical_service = localization_mode(exp.decision_log());
  return out;
}

/// Print the stacked timeline panes of Figures 10/11 as sparklines.
inline void print_cart_panes(const std::string& label,
                             const CartTraceResult& r) {
  const auto rt = column(r.client,
                         [](const TimelineBucket& b) { return b.mean_rt_ms(); });
  const auto gp = column(r.client, [](const TimelineBucket& b) {
    return static_cast<double>(b.good);
  });
  const auto util = column(
      r.cart, [](const ServiceTimelinePoint& p) { return p.util_pct; });
  const auto limit = column(
      r.cart, [](const ServiceTimelinePoint& p) { return p.limit_pct; });
  const auto threads = column(r.cart, [](const ServiceTimelinePoint& p) {
    return static_cast<double>(p.entry_capacity);
  });
  auto vmax = [](const std::vector<double>& v) {
    double m = 0.0;
    for (double x : v) m = std::max(m, x);
    return m;
  };
  std::cout << "\n--- " << label << " ---\n";
  std::cout << "resp time    (max " << fmt(vmax(rt), 0) << " ms)   |"
            << sparkline(rt) << "|\n";
  std::cout << "goodput      (max " << fmt(vmax(gp), 0) << " r/s)  |"
            << sparkline(gp) << "|\n";
  std::cout << "cart util    (max " << fmt(vmax(util), 0) << " %)    |"
            << sparkline(util) << "|\n";
  std::cout << "cart limit   (max " << fmt(vmax(limit), 0) << " %)    |"
            << sparkline(limit) << "|\n";
  std::cout << "cart threads (max " << fmt(vmax(threads), 0) << ")      |"
            << sparkline(threads) << "|\n";
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "\n================================================================\n"
            << title << "\n" << paper << "\n"
            << "================================================================\n";
}

/// When SORA_CTL_PORT is set, every Experiment in this process tries to
/// start the introspection server on that port at start_all() (the first
/// one wins; parallel sweep workers log a warning and run serverless).
/// Print where to point a browser / sora_top.
inline void print_ctl_hint() {
  if (const char* port = std::getenv("SORA_CTL_PORT")) {
    std::cout << "[ctl] live introspection on http://127.0.0.1:" << port
              << "  (/statusz /metrics /logz /decisions) — dashboard: "
              << "sora_top --port " << port << "\n";
  }
}

/// Emit a result table: aligned text to stdout and, when SORA_BENCH_CSV_DIR
/// is set, a machine-readable copy at <dir>/<name>.csv (directory created if
/// needed). Every bench funnels its tables through here so the console and
/// CSV renderings cannot drift apart.
inline void emit_table(const TextTable& t, const std::string& name) {
  t.print(std::cout);
  if (const char* dir = std::getenv("SORA_BENCH_CSV_DIR")) {
    std::filesystem::create_directories(dir);
    const std::string path = std::string(dir) + "/" + name + ".csv";
    std::ofstream os(path);
    t.print_csv(os);
    std::cout << "[csv] " << path << "\n";
  }
}

/// One A/B cell of a paired comparison sweep (e.g. FIRM-only vs FIRM+Sora).
struct AbTraceResult {
  CartTraceResult a;
  CartTraceResult b;
};

/// Fan out an A/B comparison: each base config is run twice — once with
/// `adaptation` forced to `a`, once to `b` — through one shared SweepRunner
/// pass, and the results come back pairwise in input order. Tables 2/3 and
/// the overload bench all use this instead of hand-interleaving configs.
inline std::vector<AbTraceResult> run_ab_traces(
    const std::vector<CartTraceConfig>& bases, SoftAdaptation a,
    SoftAdaptation b) {
  std::vector<CartTraceConfig> configs;
  configs.reserve(bases.size() * 2);
  for (CartTraceConfig cfg : bases) {
    cfg.adaptation = a;
    configs.push_back(cfg);
    cfg.adaptation = b;
    configs.push_back(cfg);
  }
  const auto flat = SweepRunner().map(
      configs, [](const CartTraceConfig& cfg) { return run_cart_trace(cfg); });
  std::vector<AbTraceResult> out;
  out.reserve(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) {
    out.push_back({flat[2 * i], flat[2 * i + 1]});
  }
  return out;
}

}  // namespace sora::bench
