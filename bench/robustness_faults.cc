// Robustness-under-faults sweep: fault kinds x controllers on the Social
// Network application (Home-Timeline -> Post-Storage connection pool as the
// soft-resource knob, 2 Post-Storage replicas so one can crash).
//
// For every controller {sora, conscale, firm, hpa} and every scenario
// {none, crash, cpu_churn, telemetry_dropout, control_stall} this runs one
// deterministic experiment (scripted FaultPlan, fixed seed) and reports
// p99 / goodput plus the p99 degradation factor against that controller's
// fault-free run. The table feeds the EXPERIMENTS.md robustness section.
//
// Usage: robustness_faults [duration_minutes] (default 4)
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "apps/social_network.h"
#include "bench_util.h"
#include "fault/fault_plan.h"
#include "harness/sweep.h"

namespace sora::bench {
namespace {

enum class Ctl { kSora, kConScale, kFirm, kHpa };
enum class Scn { kNone, kCrash, kCpuChurn, kTelemetryDropout, kControlStall };

const char* name(Ctl c) {
  switch (c) {
    case Ctl::kSora: return "sora";
    case Ctl::kConScale: return "conscale";
    case Ctl::kFirm: return "firm";
    case Ctl::kHpa: return "hpa";
  }
  return "?";
}

const char* name(Scn s) {
  switch (s) {
    case Scn::kNone: return "none";
    case Scn::kCrash: return "crash";
    case Scn::kCpuChurn: return "cpu_churn";
    case Scn::kTelemetryDropout: return "telemetry_dropout";
    case Scn::kControlStall: return "control_stall";
  }
  return "?";
}

/// Scripted (not seed-drawn) plans: every controller faces the *same* fault
/// timeline, so columns are comparable.
FaultPlan plan_for(Scn scenario, SimTime duration) {
  FaultPlan plan;
  const SimTime t0 = duration / 3;
  switch (scenario) {
    case Scn::kNone:
      break;
    case Scn::kCrash: {
      FaultEvent ev;
      ev.kind = FaultKind::kCrashInstance;
      ev.at = t0;
      ev.service = "post-storage";
      ev.drop_inflight = true;
      ev.duration = sec(45);
      plan.add(ev);
      break;
    }
    case Scn::kCpuChurn: {
      FaultEvent down;
      down.kind = FaultKind::kCpuLimitStep;
      down.at = t0;
      down.service = "post-storage";
      down.cores = 1.0;
      FaultEvent up = down;
      up.at = t0 + sec(45);
      up.cores = 2.0;
      plan.add(down).add(up);
      break;
    }
    case Scn::kTelemetryDropout: {
      FaultEvent spans;
      spans.kind = FaultKind::kSpanDropout;
      spans.at = t0;
      spans.duration = sec(60);
      spans.fraction = 0.7;
      FaultEvent scatter;
      scatter.kind = FaultKind::kScatterDropout;
      scatter.at = t0;
      scatter.duration = sec(60);
      scatter.fraction = 0.7;
      plan.add(spans).add(scatter);
      break;
    }
    case Scn::kControlStall: {
      FaultEvent ev;
      ev.kind = FaultKind::kControlStall;
      ev.at = t0;
      ev.duration = sec(45);
      plan.add(ev);
      break;
    }
  }
  return plan;
}

struct CellResult {
  ExperimentSummary summary;
  std::uint64_t visits_dropped = 0;
  std::size_t fault_records = 0;
  std::size_t stalled_records = 0;
};

CellResult run_cell(Ctl controller, Scn scenario, SimTime duration) {
  social_network::Params params;
  params.post_storage_replicas = 2;  // one can crash without refusal
  ExperimentConfig cfg;
  cfg.duration = duration;
  cfg.sla = msec(400);
  cfg.seed = 42;
  Experiment exp(social_network::make_social_network(params), cfg);
  exp.closed_loop(400, sec(1), RequestMix(social_network::kReadTimelineLight));

  switch (controller) {
    case Ctl::kSora:
    case Ctl::kConScale: {
      SoraFrameworkOptions so = controller == Ctl::kConScale
                                    ? make_conscale_options()
                                    : SoraFrameworkOptions{};
      so.sla = cfg.sla;
      so.adapter.min_size = params.post_storage_connections;
      auto& fw = exp.add_sora(so);
      fw.manage(ResourceKnob::edge(exp.app().service("home-timeline"),
                                   "post-storage"));
      break;
    }
    case Ctl::kFirm: {
      FirmOptions fo;
      fo.slo_latency = cfg.sla;
      auto& firm = exp.add_firm(fo);
      firm.manage(exp.app().service("post-storage"));
      break;
    }
    case Ctl::kHpa: {
      auto& hpa = exp.add_hpa();
      hpa.manage(exp.app().service("post-storage"));
      break;
    }
  }

  const FaultPlan plan = plan_for(scenario, duration);
  if (!plan.empty()) exp.enable_faults(plan);
  exp.run();

  CellResult out;
  out.summary = exp.summary();
  out.visits_dropped = exp.app().service("post-storage")->visits_dropped();
  for (const auto& rec : exp.decision_log().records()) {
    if (rec.controller == "fault") ++out.fault_records;
    if (rec.action == "stalled") ++out.stalled_records;
  }
  return out;
}

int run(int argc, char** argv) {
  const int minutes_arg = argc > 1 ? std::atoi(argv[1]) : 4;
  const SimTime duration = minutes(std::max(1, minutes_arg));

  print_header("Robustness under fault injection",
               "Controllers x fault scenarios, Social Network, scripted "
               "FaultPlan (seed 42)");

  const std::vector<Ctl> controllers = {Ctl::kSora, Ctl::kConScale, Ctl::kFirm,
                                        Ctl::kHpa};
  const std::vector<Scn> scenarios = {Scn::kNone, Scn::kCrash, Scn::kCpuChurn,
                                      Scn::kTelemetryDropout,
                                      Scn::kControlStall};

  struct Cell {
    Ctl controller;
    Scn scenario;
  };
  std::vector<Cell> cells;
  for (Ctl c : controllers) {
    for (Scn s : scenarios) cells.push_back({c, s});
  }

  SweepRunner runner;
  const auto results = runner.map(cells, [&](const Cell& cell) {
    return run_cell(cell.controller, cell.scenario, duration);
  });

  // Fault-free baselines per controller, for the degradation factor.
  std::vector<double> base_p99(controllers.size(), 0.0);
  for (std::size_t ci = 0; ci < controllers.size(); ++ci) {
    base_p99[ci] = results[ci * scenarios.size()].summary.p99_ms;
  }

  TextTable table({"controller", "scenario", "p99 ms", "p99 vs fault-free",
                   "goodput r/s", "good %", "dropped visits",
                   "fault records", "stalled rounds"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = results[i];
    const std::size_t ci = i / scenarios.size();
    const double factor =
        base_p99[ci] > 0.0 ? r.summary.p99_ms / base_p99[ci] : 0.0;
    table.add_row({name(cells[i].controller), name(cells[i].scenario),
                   fmt(r.summary.p99_ms, 1), fmt(factor, 2) + "x",
                   fmt(r.summary.goodput_rps, 1),
                   fmt(r.summary.good_fraction * 100.0, 1),
                   fmt_count(r.visits_dropped), fmt_count(r.fault_records),
                   fmt_count(r.stalled_records)});
  }
  emit_table(table, "robustness_faults");

  // Machine-checkable verdict lines (CI greps these).
  bool all_survived = true;
  double worst_factor = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (results[i].summary.completed == 0) all_survived = false;
    const std::size_t ci = i / scenarios.size();
    if (base_p99[ci] > 0.0) {
      worst_factor =
          std::max(worst_factor, results[i].summary.p99_ms / base_p99[ci]);
    }
  }
  std::cout << "\nall controllers survived all faults: "
            << (all_survived ? "yes" : "NO") << "\n"
            << "worst p99 degradation factor: " << fmt(worst_factor, 2)
            << "x\n";
  return all_survived ? 0 : 1;
}

}  // namespace
}  // namespace sora::bench

int main(int argc, char** argv) { return sora::bench::run(argc, argv); }
