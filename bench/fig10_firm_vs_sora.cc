// Figure 10 — FIRM vs. FIRM+Sora under the "Steep Tri Phase" workload.
//
// FIRM scales the Cart pod's CPU limit (2 -> 4 cores) when the SLO is
// violated, but never touches the 5-thread pool that was pre-profiled for
// the 2-core limit: the extra cores sit idle behind the too-small pool
// (CPU utilization stays well below the new limit) and response time keeps
// spiking. Sora re-adapts the thread pool after each hardware scale, so the
// scaled-up pod is actually exploited.
#include <algorithm>
#include <cstdlib>

#include "bench_util.h"

namespace sora::bench {
namespace {

int main_impl(int argc, char** argv) {
  print_header("Figure 10: FIRM vs Sora, Steep Tri Phase, Cart service",
               "Paper: Sora stabilizes RT; FIRM leaves CPU under-utilized "
               "(~310% of 400%) because the 5-thread pool is never re-adapted");

  CartTraceConfig cfg;
  cfg.shape = TraceShape::kSteepTriPhase;
  cfg.duration = minutes(6);
  cfg.sla = msec(400);
  cfg.base_users = 600;
  cfg.peak_users = 2400;
  cfg.initial_threads = 5;
  cfg.initial_cores = 2.0;
  cfg.max_cores = 4.0;
  // Telemetry export directory (decision log, Chrome trace, timelines,
  // metrics, SLO report + attribution), overridable as argv[1]; "-"
  // disables export. argv[2] optionally shortens the run (minutes) for
  // smoke testing.
  cfg.telemetry_dir = argc > 1 ? argv[1] : "telemetry/fig10";
  if (cfg.telemetry_dir == "-") cfg.telemetry_dir.clear();
  if (argc > 2) cfg.duration = minutes(std::max(1, std::atoi(argv[2])));
  print_ctl_hint();

  cfg.adaptation = SoftAdaptation::kNone;
  cfg.telemetry_tag = "firm";
  const CartTraceResult firm = run_cart_trace(cfg);
  cfg.adaptation = SoftAdaptation::kSora;
  cfg.telemetry_tag = "sora";
  const CartTraceResult sora = run_cart_trace(cfg);

  print_cart_panes("(a) FIRM (hardware-only)", firm);
  print_cart_panes("(b) FIRM + Sora", sora);

  std::cout << "\n=== Summary (RTT " << to_msec(cfg.sla) << "ms) ===\n";
  TextTable t({"metric", "FIRM", "Sora", "paper shape"});
  t.add_row({"p95 latency [ms]", fmt(firm.summary.p95_ms, 0),
             fmt(sora.summary.p95_ms, 0), "Sora lower"});
  t.add_row({"p99 latency [ms]", fmt(firm.summary.p99_ms, 0),
             fmt(sora.summary.p99_ms, 0), "Sora ~2x lower"});
  t.add_row({"avg goodput [req/s]", fmt(firm.summary.goodput_rps, 0),
             fmt(sora.summary.goodput_rps, 0), "Sora higher"});
  t.add_row({"mean latency [ms]", fmt(firm.summary.mean_ms, 0),
             fmt(sora.summary.mean_ms, 0), "Sora lower"});
  t.print(std::cout);

  // The CPU-underutilization signature: during the high phase FIRM's cart
  // runs at a lower fraction of its limit than Sora's.
  auto high_phase_util_fraction = [](const CartTraceResult& r) {
    double frac_sum = 0.0;
    int n = 0;
    for (const auto& p : r.cart) {
      if (p.limit_pct > 250.0) {  // scaled-up phase
        frac_sum += p.util_pct / p.limit_pct;
        ++n;
      }
    }
    return n ? frac_sum / n : 0.0;
  };
  const double firm_frac = high_phase_util_fraction(firm);
  const double sora_frac = high_phase_util_fraction(sora);
  std::cout << "\nCPU utilization fraction of limit while scaled up: FIRM "
            << fmt(100 * firm_frac, 0) << "%, Sora " << fmt(100 * sora_frac, 0)
            << "% (paper: FIRM stuck at ~310/400, Sora saturates)\n";

  // Streaming SLO analytics: burn-rate episodes detected on the FIRM run,
  // and whether the budget attribution blames the same service Sora's
  // localization picked — two independent observability paths agreeing on
  // the culprit.
  if (!cfg.telemetry_dir.empty()) {
    std::cout << "\n=== Streaming SLO analytics ===\n";
    std::cout << "FIRM run: " << firm.episodes.size()
              << " SLO violation episode(s)";
    if (!firm.episodes.empty()) {
      SimTime violated = 0;
      double peak = 0.0;
      for (const auto& ep : firm.episodes) {
        violated += ep.duration();
        peak = std::max(peak, ep.peak_fast_burn);
      }
      std::cout << ", " << fmt(to_sec(violated), 0)
                << " s in violation, peak burn " << fmt(peak, 1);
    }
    std::cout << "\nSora run: " << sora.episodes.size()
              << " SLO violation episode(s)\n";
    if (!firm.episodes.empty() && !firm.top_episode_consumer.empty()) {
      std::cout << "FIRM episode budget attribution blames: "
                << firm.top_episode_consumer << "\n";
      const std::string& localized = sora.localized_critical_service;
      if (!localized.empty()) {
        std::cout << "Sora localization picked:             " << localized
                  << "\n";
        std::cout << (firm.top_episode_consumer == localized
                          ? "MATCH: attribution agrees with localization\n"
                          : "MISMATCH: attribution disagrees with "
                            "localization\n");
      }
    }
  }

  // Section 6 overhead claim: the whole adaptation loop is cheap. The
  // profiler accumulated host wall-clock cost per control-plane stage
  // during the Sora run (deltas are attributed per Experiment).
  std::cout << "\n=== Controller overhead, Sora run (host wall clock) ===\n";
  obs::OverheadProfiler::print(sora.summary.controller_overhead, std::cout);

  if (!cfg.telemetry_dir.empty()) {
    std::cout << "\nTelemetry exported to " << cfg.telemetry_dir
              << "/: {firm,sora}_decisions.jsonl (audit log), "
                 "{firm,sora}_trace.json (load into ui.perfetto.dev), "
                 "{firm,sora}_cart_timeline.csv, {firm,sora}_metrics.jsonl, "
                 "{firm,sora}_slo_report.{txt,html}, "
                 "{firm,sora}_attribution.csv, {firm,sora}_burn.csv\n";
  }
  return 0;
}

}  // namespace
}  // namespace sora::bench

int main(int argc, char** argv) { return sora::bench::main_impl(argc, argv); }
