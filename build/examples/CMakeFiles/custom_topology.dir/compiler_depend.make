# Empty compiler generated dependencies file for custom_topology.
# This may be replaced when dependencies are built.
