file(REMOVE_RECURSE
  "CMakeFiles/sock_shop_autoscale.dir/sock_shop_autoscale.cpp.o"
  "CMakeFiles/sock_shop_autoscale.dir/sock_shop_autoscale.cpp.o.d"
  "sock_shop_autoscale"
  "sock_shop_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sock_shop_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
