# Empty dependencies file for sock_shop_autoscale.
# This may be replaced when dependencies are built.
