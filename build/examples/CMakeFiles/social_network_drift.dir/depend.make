# Empty dependencies file for social_network_drift.
# This may be replaced when dependencies are built.
