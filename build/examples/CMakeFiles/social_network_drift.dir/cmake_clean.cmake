file(REMOVE_RECURSE
  "CMakeFiles/social_network_drift.dir/social_network_drift.cpp.o"
  "CMakeFiles/social_network_drift.dir/social_network_drift.cpp.o.d"
  "social_network_drift"
  "social_network_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_network_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
