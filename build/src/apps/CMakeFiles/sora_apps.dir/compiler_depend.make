# Empty compiler generated dependencies file for sora_apps.
# This may be replaced when dependencies are built.
