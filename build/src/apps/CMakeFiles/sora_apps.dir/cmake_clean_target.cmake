file(REMOVE_RECURSE
  "libsora_apps.a"
)
