file(REMOVE_RECURSE
  "CMakeFiles/sora_apps.dir/social_network.cc.o"
  "CMakeFiles/sora_apps.dir/social_network.cc.o.d"
  "CMakeFiles/sora_apps.dir/sock_shop.cc.o"
  "CMakeFiles/sora_apps.dir/sock_shop.cc.o.d"
  "libsora_apps.a"
  "libsora_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sora_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
