
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/social_network.cc" "src/apps/CMakeFiles/sora_apps.dir/social_network.cc.o" "gcc" "src/apps/CMakeFiles/sora_apps.dir/social_network.cc.o.d"
  "/root/repo/src/apps/sock_shop.cc" "src/apps/CMakeFiles/sora_apps.dir/sock_shop.cc.o" "gcc" "src/apps/CMakeFiles/sora_apps.dir/sock_shop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/svc/CMakeFiles/sora_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sora_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sora_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
