file(REMOVE_RECURSE
  "libsora_workload.a"
)
