
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/sora_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/sora_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/traces.cc" "src/workload/CMakeFiles/sora_workload.dir/traces.cc.o" "gcc" "src/workload/CMakeFiles/sora_workload.dir/traces.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sora_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sora_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
