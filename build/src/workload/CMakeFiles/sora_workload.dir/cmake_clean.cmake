file(REMOVE_RECURSE
  "CMakeFiles/sora_workload.dir/generator.cc.o"
  "CMakeFiles/sora_workload.dir/generator.cc.o.d"
  "CMakeFiles/sora_workload.dir/traces.cc.o"
  "CMakeFiles/sora_workload.dir/traces.cc.o.d"
  "libsora_workload.a"
  "libsora_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sora_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
