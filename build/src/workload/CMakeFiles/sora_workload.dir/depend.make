# Empty dependencies file for sora_workload.
# This may be replaced when dependencies are built.
