file(REMOVE_RECURSE
  "CMakeFiles/sora_sim.dir/simulator.cc.o"
  "CMakeFiles/sora_sim.dir/simulator.cc.o.d"
  "libsora_sim.a"
  "libsora_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sora_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
