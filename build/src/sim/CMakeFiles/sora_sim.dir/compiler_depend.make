# Empty compiler generated dependencies file for sora_sim.
# This may be replaced when dependencies are built.
