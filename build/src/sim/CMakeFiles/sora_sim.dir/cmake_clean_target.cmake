file(REMOVE_RECURSE
  "libsora_sim.a"
)
