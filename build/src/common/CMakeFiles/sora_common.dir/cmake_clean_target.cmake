file(REMOVE_RECURSE
  "libsora_common.a"
)
