# Empty dependencies file for sora_common.
# This may be replaced when dependencies are built.
