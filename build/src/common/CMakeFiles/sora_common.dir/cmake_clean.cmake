file(REMOVE_RECURSE
  "CMakeFiles/sora_common.dir/histogram.cc.o"
  "CMakeFiles/sora_common.dir/histogram.cc.o.d"
  "CMakeFiles/sora_common.dir/log.cc.o"
  "CMakeFiles/sora_common.dir/log.cc.o.d"
  "CMakeFiles/sora_common.dir/polyfit.cc.o"
  "CMakeFiles/sora_common.dir/polyfit.cc.o.d"
  "CMakeFiles/sora_common.dir/stats.cc.o"
  "CMakeFiles/sora_common.dir/stats.cc.o.d"
  "CMakeFiles/sora_common.dir/table.cc.o"
  "CMakeFiles/sora_common.dir/table.cc.o.d"
  "libsora_common.a"
  "libsora_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sora_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
