# Empty compiler generated dependencies file for sora_autoscale.
# This may be replaced when dependencies are built.
