file(REMOVE_RECURSE
  "CMakeFiles/sora_autoscale.dir/autoscaler.cc.o"
  "CMakeFiles/sora_autoscale.dir/autoscaler.cc.o.d"
  "CMakeFiles/sora_autoscale.dir/firm.cc.o"
  "CMakeFiles/sora_autoscale.dir/firm.cc.o.d"
  "CMakeFiles/sora_autoscale.dir/hpa.cc.o"
  "CMakeFiles/sora_autoscale.dir/hpa.cc.o.d"
  "CMakeFiles/sora_autoscale.dir/vpa.cc.o"
  "CMakeFiles/sora_autoscale.dir/vpa.cc.o.d"
  "libsora_autoscale.a"
  "libsora_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sora_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
