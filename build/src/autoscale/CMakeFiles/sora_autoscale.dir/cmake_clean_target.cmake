file(REMOVE_RECURSE
  "libsora_autoscale.a"
)
