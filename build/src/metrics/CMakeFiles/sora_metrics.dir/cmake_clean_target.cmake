file(REMOVE_RECURSE
  "libsora_metrics.a"
)
