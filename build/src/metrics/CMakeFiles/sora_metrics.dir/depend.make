# Empty dependencies file for sora_metrics.
# This may be replaced when dependencies are built.
