
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/knob.cc" "src/metrics/CMakeFiles/sora_metrics.dir/knob.cc.o" "gcc" "src/metrics/CMakeFiles/sora_metrics.dir/knob.cc.o.d"
  "/root/repo/src/metrics/latency_recorder.cc" "src/metrics/CMakeFiles/sora_metrics.dir/latency_recorder.cc.o" "gcc" "src/metrics/CMakeFiles/sora_metrics.dir/latency_recorder.cc.o.d"
  "/root/repo/src/metrics/scatter_sampler.cc" "src/metrics/CMakeFiles/sora_metrics.dir/scatter_sampler.cc.o" "gcc" "src/metrics/CMakeFiles/sora_metrics.dir/scatter_sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sora_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sora_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/svc/CMakeFiles/sora_svc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
