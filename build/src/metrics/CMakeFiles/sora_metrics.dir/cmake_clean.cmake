file(REMOVE_RECURSE
  "CMakeFiles/sora_metrics.dir/knob.cc.o"
  "CMakeFiles/sora_metrics.dir/knob.cc.o.d"
  "CMakeFiles/sora_metrics.dir/latency_recorder.cc.o"
  "CMakeFiles/sora_metrics.dir/latency_recorder.cc.o.d"
  "CMakeFiles/sora_metrics.dir/scatter_sampler.cc.o"
  "CMakeFiles/sora_metrics.dir/scatter_sampler.cc.o.d"
  "libsora_metrics.a"
  "libsora_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sora_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
