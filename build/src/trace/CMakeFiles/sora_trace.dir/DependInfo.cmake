
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/critical_path.cc" "src/trace/CMakeFiles/sora_trace.dir/critical_path.cc.o" "gcc" "src/trace/CMakeFiles/sora_trace.dir/critical_path.cc.o.d"
  "/root/repo/src/trace/tracer.cc" "src/trace/CMakeFiles/sora_trace.dir/tracer.cc.o" "gcc" "src/trace/CMakeFiles/sora_trace.dir/tracer.cc.o.d"
  "/root/repo/src/trace/warehouse.cc" "src/trace/CMakeFiles/sora_trace.dir/warehouse.cc.o" "gcc" "src/trace/CMakeFiles/sora_trace.dir/warehouse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sora_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
