# Empty compiler generated dependencies file for sora_trace.
# This may be replaced when dependencies are built.
