file(REMOVE_RECURSE
  "libsora_trace.a"
)
