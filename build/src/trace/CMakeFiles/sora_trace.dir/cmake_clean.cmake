file(REMOVE_RECURSE
  "CMakeFiles/sora_trace.dir/critical_path.cc.o"
  "CMakeFiles/sora_trace.dir/critical_path.cc.o.d"
  "CMakeFiles/sora_trace.dir/tracer.cc.o"
  "CMakeFiles/sora_trace.dir/tracer.cc.o.d"
  "CMakeFiles/sora_trace.dir/warehouse.cc.o"
  "CMakeFiles/sora_trace.dir/warehouse.cc.o.d"
  "libsora_trace.a"
  "libsora_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sora_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
