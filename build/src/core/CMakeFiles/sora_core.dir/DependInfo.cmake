
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adapter.cc" "src/core/CMakeFiles/sora_core.dir/adapter.cc.o" "gcc" "src/core/CMakeFiles/sora_core.dir/adapter.cc.o.d"
  "/root/repo/src/core/deadline.cc" "src/core/CMakeFiles/sora_core.dir/deadline.cc.o" "gcc" "src/core/CMakeFiles/sora_core.dir/deadline.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/sora_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/sora_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/hillclimb.cc" "src/core/CMakeFiles/sora_core.dir/hillclimb.cc.o" "gcc" "src/core/CMakeFiles/sora_core.dir/hillclimb.cc.o.d"
  "/root/repo/src/core/kneedle.cc" "src/core/CMakeFiles/sora_core.dir/kneedle.cc.o" "gcc" "src/core/CMakeFiles/sora_core.dir/kneedle.cc.o.d"
  "/root/repo/src/core/localization.cc" "src/core/CMakeFiles/sora_core.dir/localization.cc.o" "gcc" "src/core/CMakeFiles/sora_core.dir/localization.cc.o.d"
  "/root/repo/src/core/scg_model.cc" "src/core/CMakeFiles/sora_core.dir/scg_model.cc.o" "gcc" "src/core/CMakeFiles/sora_core.dir/scg_model.cc.o.d"
  "/root/repo/src/core/sora.cc" "src/core/CMakeFiles/sora_core.dir/sora.cc.o" "gcc" "src/core/CMakeFiles/sora_core.dir/sora.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sora_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sora_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/svc/CMakeFiles/sora_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sora_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
