file(REMOVE_RECURSE
  "CMakeFiles/sora_core.dir/adapter.cc.o"
  "CMakeFiles/sora_core.dir/adapter.cc.o.d"
  "CMakeFiles/sora_core.dir/deadline.cc.o"
  "CMakeFiles/sora_core.dir/deadline.cc.o.d"
  "CMakeFiles/sora_core.dir/estimator.cc.o"
  "CMakeFiles/sora_core.dir/estimator.cc.o.d"
  "CMakeFiles/sora_core.dir/hillclimb.cc.o"
  "CMakeFiles/sora_core.dir/hillclimb.cc.o.d"
  "CMakeFiles/sora_core.dir/kneedle.cc.o"
  "CMakeFiles/sora_core.dir/kneedle.cc.o.d"
  "CMakeFiles/sora_core.dir/localization.cc.o"
  "CMakeFiles/sora_core.dir/localization.cc.o.d"
  "CMakeFiles/sora_core.dir/scg_model.cc.o"
  "CMakeFiles/sora_core.dir/scg_model.cc.o.d"
  "CMakeFiles/sora_core.dir/sora.cc.o"
  "CMakeFiles/sora_core.dir/sora.cc.o.d"
  "libsora_core.a"
  "libsora_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sora_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
