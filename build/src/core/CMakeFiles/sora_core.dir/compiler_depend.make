# Empty compiler generated dependencies file for sora_core.
# This may be replaced when dependencies are built.
