file(REMOVE_RECURSE
  "libsora_core.a"
)
