file(REMOVE_RECURSE
  "libsora_svc.a"
)
