# Empty compiler generated dependencies file for sora_svc.
# This may be replaced when dependencies are built.
