file(REMOVE_RECURSE
  "CMakeFiles/sora_svc.dir/application.cc.o"
  "CMakeFiles/sora_svc.dir/application.cc.o.d"
  "CMakeFiles/sora_svc.dir/cpu.cc.o"
  "CMakeFiles/sora_svc.dir/cpu.cc.o.d"
  "CMakeFiles/sora_svc.dir/instance.cc.o"
  "CMakeFiles/sora_svc.dir/instance.cc.o.d"
  "CMakeFiles/sora_svc.dir/load_balancer.cc.o"
  "CMakeFiles/sora_svc.dir/load_balancer.cc.o.d"
  "CMakeFiles/sora_svc.dir/service.cc.o"
  "CMakeFiles/sora_svc.dir/service.cc.o.d"
  "CMakeFiles/sora_svc.dir/soft_resource.cc.o"
  "CMakeFiles/sora_svc.dir/soft_resource.cc.o.d"
  "libsora_svc.a"
  "libsora_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sora_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
