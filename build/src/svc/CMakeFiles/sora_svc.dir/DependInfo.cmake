
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svc/application.cc" "src/svc/CMakeFiles/sora_svc.dir/application.cc.o" "gcc" "src/svc/CMakeFiles/sora_svc.dir/application.cc.o.d"
  "/root/repo/src/svc/cpu.cc" "src/svc/CMakeFiles/sora_svc.dir/cpu.cc.o" "gcc" "src/svc/CMakeFiles/sora_svc.dir/cpu.cc.o.d"
  "/root/repo/src/svc/instance.cc" "src/svc/CMakeFiles/sora_svc.dir/instance.cc.o" "gcc" "src/svc/CMakeFiles/sora_svc.dir/instance.cc.o.d"
  "/root/repo/src/svc/load_balancer.cc" "src/svc/CMakeFiles/sora_svc.dir/load_balancer.cc.o" "gcc" "src/svc/CMakeFiles/sora_svc.dir/load_balancer.cc.o.d"
  "/root/repo/src/svc/service.cc" "src/svc/CMakeFiles/sora_svc.dir/service.cc.o" "gcc" "src/svc/CMakeFiles/sora_svc.dir/service.cc.o.d"
  "/root/repo/src/svc/soft_resource.cc" "src/svc/CMakeFiles/sora_svc.dir/soft_resource.cc.o" "gcc" "src/svc/CMakeFiles/sora_svc.dir/soft_resource.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sora_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sora_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
