file(REMOVE_RECURSE
  "libsora_harness.a"
)
