file(REMOVE_RECURSE
  "CMakeFiles/sora_harness.dir/experiment.cc.o"
  "CMakeFiles/sora_harness.dir/experiment.cc.o.d"
  "libsora_harness.a"
  "libsora_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sora_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
