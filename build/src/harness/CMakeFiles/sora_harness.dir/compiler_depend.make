# Empty compiler generated dependencies file for sora_harness.
# This may be replaced when dependencies are built.
