file(REMOVE_RECURSE
  "CMakeFiles/test_sora_framework.dir/test_sora_framework.cc.o"
  "CMakeFiles/test_sora_framework.dir/test_sora_framework.cc.o.d"
  "test_sora_framework"
  "test_sora_framework.pdb"
  "test_sora_framework[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sora_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
