
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sora_framework.cc" "tests/CMakeFiles/test_sora_framework.dir/test_sora_framework.cc.o" "gcc" "tests/CMakeFiles/test_sora_framework.dir/test_sora_framework.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/sora_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/autoscale/CMakeFiles/sora_autoscale.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sora_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/sora_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sora_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sora_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/svc/CMakeFiles/sora_svc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sora_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sora_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sora_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
