# Empty dependencies file for test_sora_framework.
# This may be replaced when dependencies are built.
