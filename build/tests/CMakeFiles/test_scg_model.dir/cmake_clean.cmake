file(REMOVE_RECURSE
  "CMakeFiles/test_scg_model.dir/test_scg_model.cc.o"
  "CMakeFiles/test_scg_model.dir/test_scg_model.cc.o.d"
  "test_scg_model"
  "test_scg_model.pdb"
  "test_scg_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scg_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
