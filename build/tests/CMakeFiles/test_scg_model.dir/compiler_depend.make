# Empty compiler generated dependencies file for test_scg_model.
# This may be replaced when dependencies are built.
