file(REMOVE_RECURSE
  "CMakeFiles/test_localization.dir/test_localization.cc.o"
  "CMakeFiles/test_localization.dir/test_localization.cc.o.d"
  "test_localization"
  "test_localization.pdb"
  "test_localization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
