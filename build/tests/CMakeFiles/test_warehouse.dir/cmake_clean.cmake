file(REMOVE_RECURSE
  "CMakeFiles/test_warehouse.dir/test_warehouse.cc.o"
  "CMakeFiles/test_warehouse.dir/test_warehouse.cc.o.d"
  "test_warehouse"
  "test_warehouse.pdb"
  "test_warehouse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
