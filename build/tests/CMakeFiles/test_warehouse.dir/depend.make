# Empty dependencies file for test_warehouse.
# This may be replaced when dependencies are built.
