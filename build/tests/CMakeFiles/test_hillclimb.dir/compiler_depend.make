# Empty compiler generated dependencies file for test_hillclimb.
# This may be replaced when dependencies are built.
