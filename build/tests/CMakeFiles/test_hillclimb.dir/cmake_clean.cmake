file(REMOVE_RECURSE
  "CMakeFiles/test_hillclimb.dir/test_hillclimb.cc.o"
  "CMakeFiles/test_hillclimb.dir/test_hillclimb.cc.o.d"
  "test_hillclimb"
  "test_hillclimb.pdb"
  "test_hillclimb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hillclimb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
