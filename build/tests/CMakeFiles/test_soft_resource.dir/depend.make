# Empty dependencies file for test_soft_resource.
# This may be replaced when dependencies are built.
