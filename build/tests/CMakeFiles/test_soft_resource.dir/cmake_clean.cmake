file(REMOVE_RECURSE
  "CMakeFiles/test_soft_resource.dir/test_soft_resource.cc.o"
  "CMakeFiles/test_soft_resource.dir/test_soft_resource.cc.o.d"
  "test_soft_resource"
  "test_soft_resource.pdb"
  "test_soft_resource[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soft_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
