# Empty dependencies file for test_critical_path.
# This may be replaced when dependencies are built.
