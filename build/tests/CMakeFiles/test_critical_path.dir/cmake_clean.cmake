file(REMOVE_RECURSE
  "CMakeFiles/test_critical_path.dir/test_critical_path.cc.o"
  "CMakeFiles/test_critical_path.dir/test_critical_path.cc.o.d"
  "test_critical_path"
  "test_critical_path.pdb"
  "test_critical_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_critical_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
