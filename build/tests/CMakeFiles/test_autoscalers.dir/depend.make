# Empty dependencies file for test_autoscalers.
# This may be replaced when dependencies are built.
