file(REMOVE_RECURSE
  "CMakeFiles/test_autoscalers.dir/test_autoscalers.cc.o"
  "CMakeFiles/test_autoscalers.dir/test_autoscalers.cc.o.d"
  "test_autoscalers"
  "test_autoscalers.pdb"
  "test_autoscalers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autoscalers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
