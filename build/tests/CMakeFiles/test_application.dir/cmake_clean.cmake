file(REMOVE_RECURSE
  "CMakeFiles/test_application.dir/test_application.cc.o"
  "CMakeFiles/test_application.dir/test_application.cc.o.d"
  "test_application"
  "test_application.pdb"
  "test_application[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
