# Empty compiler generated dependencies file for test_application.
# This may be replaced when dependencies are built.
