# Empty compiler generated dependencies file for test_knob.
# This may be replaced when dependencies are built.
