file(REMOVE_RECURSE
  "CMakeFiles/test_knob.dir/test_knob.cc.o"
  "CMakeFiles/test_knob.dir/test_knob.cc.o.d"
  "test_knob"
  "test_knob.pdb"
  "test_knob[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
