# Empty compiler generated dependencies file for test_kneedle.
# This may be replaced when dependencies are built.
