file(REMOVE_RECURSE
  "CMakeFiles/test_kneedle.dir/test_kneedle.cc.o"
  "CMakeFiles/test_kneedle.dir/test_kneedle.cc.o.d"
  "test_kneedle"
  "test_kneedle.pdb"
  "test_kneedle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kneedle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
