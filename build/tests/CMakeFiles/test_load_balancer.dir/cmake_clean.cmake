file(REMOVE_RECURSE
  "CMakeFiles/test_load_balancer.dir/test_load_balancer.cc.o"
  "CMakeFiles/test_load_balancer.dir/test_load_balancer.cc.o.d"
  "test_load_balancer"
  "test_load_balancer.pdb"
  "test_load_balancer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
