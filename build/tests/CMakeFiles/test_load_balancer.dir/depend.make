# Empty dependencies file for test_load_balancer.
# This may be replaced when dependencies are built.
