file(REMOVE_RECURSE
  "CMakeFiles/test_adapter.dir/test_adapter.cc.o"
  "CMakeFiles/test_adapter.dir/test_adapter.cc.o.d"
  "test_adapter"
  "test_adapter.pdb"
  "test_adapter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
