# Empty compiler generated dependencies file for test_adapter.
# This may be replaced when dependencies are built.
