# Empty compiler generated dependencies file for test_scatter_sampler.
# This may be replaced when dependencies are built.
