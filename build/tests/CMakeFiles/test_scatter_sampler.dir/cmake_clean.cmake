file(REMOVE_RECURSE
  "CMakeFiles/test_scatter_sampler.dir/test_scatter_sampler.cc.o"
  "CMakeFiles/test_scatter_sampler.dir/test_scatter_sampler.cc.o.d"
  "test_scatter_sampler"
  "test_scatter_sampler.pdb"
  "test_scatter_sampler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scatter_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
