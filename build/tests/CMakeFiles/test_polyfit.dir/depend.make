# Empty dependencies file for test_polyfit.
# This may be replaced when dependencies are built.
