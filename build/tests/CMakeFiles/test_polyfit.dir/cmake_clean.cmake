file(REMOVE_RECURSE
  "CMakeFiles/test_polyfit.dir/test_polyfit.cc.o"
  "CMakeFiles/test_polyfit.dir/test_polyfit.cc.o.d"
  "test_polyfit"
  "test_polyfit.pdb"
  "test_polyfit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polyfit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
