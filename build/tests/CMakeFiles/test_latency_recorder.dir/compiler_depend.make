# Empty compiler generated dependencies file for test_latency_recorder.
# This may be replaced when dependencies are built.
