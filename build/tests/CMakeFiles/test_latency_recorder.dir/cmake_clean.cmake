file(REMOVE_RECURSE
  "CMakeFiles/test_latency_recorder.dir/test_latency_recorder.cc.o"
  "CMakeFiles/test_latency_recorder.dir/test_latency_recorder.cc.o.d"
  "test_latency_recorder"
  "test_latency_recorder.pdb"
  "test_latency_recorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency_recorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
