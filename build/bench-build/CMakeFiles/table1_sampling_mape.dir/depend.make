# Empty dependencies file for table1_sampling_mape.
# This may be replaced when dependencies are built.
