file(REMOVE_RECURSE
  "../bench/table1_sampling_mape"
  "../bench/table1_sampling_mape.pdb"
  "CMakeFiles/table1_sampling_mape.dir/table1_sampling_mape.cc.o"
  "CMakeFiles/table1_sampling_mape.dir/table1_sampling_mape.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sampling_mape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
