file(REMOVE_RECURSE
  "../bench/fig11_conscale_vs_sora"
  "../bench/fig11_conscale_vs_sora.pdb"
  "CMakeFiles/fig11_conscale_vs_sora.dir/fig11_conscale_vs_sora.cc.o"
  "CMakeFiles/fig11_conscale_vs_sora.dir/fig11_conscale_vs_sora.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_conscale_vs_sora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
