# Empty dependencies file for fig11_conscale_vs_sora.
# This may be replaced when dependencies are built.
