# Empty compiler generated dependencies file for ablation_kneedle_degree.
# This may be replaced when dependencies are built.
