file(REMOVE_RECURSE
  "../bench/ablation_kneedle_degree"
  "../bench/ablation_kneedle_degree.pdb"
  "CMakeFiles/ablation_kneedle_degree.dir/ablation_kneedle_degree.cc.o"
  "CMakeFiles/ablation_kneedle_degree.dir/ablation_kneedle_degree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kneedle_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
