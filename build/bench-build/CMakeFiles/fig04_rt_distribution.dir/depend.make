# Empty dependencies file for fig04_rt_distribution.
# This may be replaced when dependencies are built.
