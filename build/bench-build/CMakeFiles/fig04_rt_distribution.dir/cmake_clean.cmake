file(REMOVE_RECURSE
  "../bench/fig04_rt_distribution"
  "../bench/fig04_rt_distribution.pdb"
  "CMakeFiles/fig04_rt_distribution.dir/fig04_rt_distribution.cc.o"
  "CMakeFiles/fig04_rt_distribution.dir/fig04_rt_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_rt_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
