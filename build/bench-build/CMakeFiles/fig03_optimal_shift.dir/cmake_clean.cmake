file(REMOVE_RECURSE
  "../bench/fig03_optimal_shift"
  "../bench/fig03_optimal_shift.pdb"
  "CMakeFiles/fig03_optimal_shift.dir/fig03_optimal_shift.cc.o"
  "CMakeFiles/fig03_optimal_shift.dir/fig03_optimal_shift.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_optimal_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
