# Empty dependencies file for fig03_optimal_shift.
# This may be replaced when dependencies are built.
