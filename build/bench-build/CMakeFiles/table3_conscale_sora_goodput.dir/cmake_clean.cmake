file(REMOVE_RECURSE
  "../bench/table3_conscale_sora_goodput"
  "../bench/table3_conscale_sora_goodput.pdb"
  "CMakeFiles/table3_conscale_sora_goodput.dir/table3_conscale_sora_goodput.cc.o"
  "CMakeFiles/table3_conscale_sora_goodput.dir/table3_conscale_sora_goodput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_conscale_sora_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
