# Empty dependencies file for table3_conscale_sora_goodput.
# This may be replaced when dependencies are built.
