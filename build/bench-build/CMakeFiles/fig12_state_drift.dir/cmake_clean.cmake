file(REMOVE_RECURSE
  "../bench/fig12_state_drift"
  "../bench/fig12_state_drift.pdb"
  "CMakeFiles/fig12_state_drift.dir/fig12_state_drift.cc.o"
  "CMakeFiles/fig12_state_drift.dir/fig12_state_drift.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_state_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
