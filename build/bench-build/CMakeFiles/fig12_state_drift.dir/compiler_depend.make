# Empty compiler generated dependencies file for fig12_state_drift.
# This may be replaced when dependencies are built.
