# Empty dependencies file for micro_model_cost.
# This may be replaced when dependencies are built.
