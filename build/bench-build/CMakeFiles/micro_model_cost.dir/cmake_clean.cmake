file(REMOVE_RECURSE
  "../bench/micro_model_cost"
  "../bench/micro_model_cost.pdb"
  "CMakeFiles/micro_model_cost.dir/micro_model_cost.cc.o"
  "CMakeFiles/micro_model_cost.dir/micro_model_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_model_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
