# Empty compiler generated dependencies file for fig09_model_validation.
# This may be replaced when dependencies are built.
