file(REMOVE_RECURSE
  "../bench/fig09_model_validation"
  "../bench/fig09_model_validation.pdb"
  "CMakeFiles/fig09_model_validation.dir/fig09_model_validation.cc.o"
  "CMakeFiles/fig09_model_validation.dir/fig09_model_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
