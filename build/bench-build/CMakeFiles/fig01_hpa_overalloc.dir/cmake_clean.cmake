file(REMOVE_RECURSE
  "../bench/fig01_hpa_overalloc"
  "../bench/fig01_hpa_overalloc.pdb"
  "CMakeFiles/fig01_hpa_overalloc.dir/fig01_hpa_overalloc.cc.o"
  "CMakeFiles/fig01_hpa_overalloc.dir/fig01_hpa_overalloc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_hpa_overalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
