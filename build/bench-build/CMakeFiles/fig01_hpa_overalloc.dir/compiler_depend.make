# Empty compiler generated dependencies file for fig01_hpa_overalloc.
# This may be replaced when dependencies are built.
