file(REMOVE_RECURSE
  "../bench/ablation_convergence"
  "../bench/ablation_convergence.pdb"
  "CMakeFiles/ablation_convergence.dir/ablation_convergence.cc.o"
  "CMakeFiles/ablation_convergence.dir/ablation_convergence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
