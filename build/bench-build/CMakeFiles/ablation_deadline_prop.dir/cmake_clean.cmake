file(REMOVE_RECURSE
  "../bench/ablation_deadline_prop"
  "../bench/ablation_deadline_prop.pdb"
  "CMakeFiles/ablation_deadline_prop.dir/ablation_deadline_prop.cc.o"
  "CMakeFiles/ablation_deadline_prop.dir/ablation_deadline_prop.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deadline_prop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
