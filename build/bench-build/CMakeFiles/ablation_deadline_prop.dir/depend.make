# Empty dependencies file for ablation_deadline_prop.
# This may be replaced when dependencies are built.
