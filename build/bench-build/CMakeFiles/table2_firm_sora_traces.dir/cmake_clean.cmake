file(REMOVE_RECURSE
  "../bench/table2_firm_sora_traces"
  "../bench/table2_firm_sora_traces.pdb"
  "CMakeFiles/table2_firm_sora_traces.dir/table2_firm_sora_traces.cc.o"
  "CMakeFiles/table2_firm_sora_traces.dir/table2_firm_sora_traces.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_firm_sora_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
