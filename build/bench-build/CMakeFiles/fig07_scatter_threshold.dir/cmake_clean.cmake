file(REMOVE_RECURSE
  "../bench/fig07_scatter_threshold"
  "../bench/fig07_scatter_threshold.pdb"
  "CMakeFiles/fig07_scatter_threshold.dir/fig07_scatter_threshold.cc.o"
  "CMakeFiles/fig07_scatter_threshold.dir/fig07_scatter_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_scatter_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
