# Empty compiler generated dependencies file for fig07_scatter_threshold.
# This may be replaced when dependencies are built.
