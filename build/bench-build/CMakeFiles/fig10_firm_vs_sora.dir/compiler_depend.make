# Empty compiler generated dependencies file for fig10_firm_vs_sora.
# This may be replaced when dependencies are built.
