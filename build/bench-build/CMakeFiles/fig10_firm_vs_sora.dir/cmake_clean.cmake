file(REMOVE_RECURSE
  "../bench/fig10_firm_vs_sora"
  "../bench/fig10_firm_vs_sora.pdb"
  "CMakeFiles/fig10_firm_vs_sora.dir/fig10_firm_vs_sora.cc.o"
  "CMakeFiles/fig10_firm_vs_sora.dir/fig10_firm_vs_sora.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_firm_vs_sora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
