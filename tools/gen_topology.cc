// gen_topology: synthesize a planet-scale topology and dump it.
//
// Usage:
//   gen_topology [--services N] [--tenants N] [--entries N] [--seed S]
//                [--shards N] [--json | --dot | --stats] [--out FILE]
//
// --json (default) emits the machine-readable description; with --shards N
// each node also carries its deterministic shard assignment and the dump
// records the partition lookahead. --dot renders Graphviz (tenant clusters,
// dashed async edges). --stats prints the distribution summary (depth
// histogram, fan-out p99, shared-tier in-degree).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "topo/export.h"
#include "topo/synth.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--services N] [--tenants N] [--entries N]\n"
               "          [--seed S] [--depth N] [--async-frac F]\n"
               "          [--shards N] [--json | --dot | --stats]\n"
               "          [--out FILE]\n",
               argv0);
}

bool parse_int(const char* s, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0';
}

bool parse_dbl(const char* s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  sora::topo::TopologyConfig cfg;
  int shards = 1;
  enum class Mode { kJson, kDot, kStats } mode = Mode::kJson;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    long long n = 0;
    double d = 0.0;
    if (std::strcmp(arg, "--json") == 0) {
      mode = Mode::kJson;
    } else if (std::strcmp(arg, "--dot") == 0) {
      mode = Mode::kDot;
    } else if (std::strcmp(arg, "--stats") == 0) {
      mode = Mode::kStats;
    } else if (std::strcmp(arg, "--services") == 0 && has_value &&
               parse_int(argv[++i], &n)) {
      cfg.services = static_cast<int>(n);
    } else if (std::strcmp(arg, "--tenants") == 0 && has_value &&
               parse_int(argv[++i], &n)) {
      cfg.tenants = static_cast<int>(n);
    } else if (std::strcmp(arg, "--entries") == 0 && has_value &&
               parse_int(argv[++i], &n)) {
      cfg.entries_per_tenant = static_cast<int>(n);
    } else if (std::strcmp(arg, "--seed") == 0 && has_value &&
               parse_int(argv[++i], &n)) {
      cfg.seed = static_cast<std::uint64_t>(n);
    } else if (std::strcmp(arg, "--depth") == 0 && has_value &&
               parse_int(argv[++i], &n)) {
      cfg.max_depth = static_cast<int>(n);
    } else if (std::strcmp(arg, "--async-frac") == 0 && has_value &&
               parse_dbl(argv[++i], &d)) {
      cfg.async_cycle_fraction = d;
    } else if (std::strcmp(arg, "--shards") == 0 && has_value &&
               parse_int(argv[++i], &n)) {
      shards = static_cast<int>(n);
    } else if (std::strcmp(arg, "--out") == 0 && has_value) {
      out_path = argv[++i];
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  sora::topo::Topology topo;
  try {
    topo = sora::topo::synthesize(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gen_topology: %s\n", e.what());
    return 1;
  }

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "gen_topology: cannot open %s\n", out_path.c_str());
      return 1;
    }
  }
  std::ostream& os = out_path.empty() ? std::cout : file;
  switch (mode) {
    case Mode::kJson:
      sora::topo::write_json(os, topo, shards);
      break;
    case Mode::kDot:
      sora::topo::write_dot(os, topo);
      break;
    case Mode::kStats:
      sora::topo::write_stats(os, topo);
      break;
  }
  return 0;
}
