// sora_top — live terminal dashboard for a running experiment.
//
// Polls the embedded ctl server's /statusz endpoint and renders a
// refreshing per-service table: replicas, CPU limit, thread pool occupancy,
// queue depth, p99, admission limit/shed and the current knee estimate.
//
//   SORA_CTL_PORT=8080 ./fig10_firm_vs_sora &   # terminal 1
//   ./sora_top --port 8080                      # terminal 2
//
// Flags:
//   --host <addr>        default 127.0.0.1
//   --port <port>        default 8080 (or $SORA_CTL_PORT)
//   --interval-ms <ms>   poll period, default 1000
//   --once               print one frame and exit (no ANSI clear; CI-safe)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "ctl/http.h"
#include "ctl/json_value.h"

namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = 8080;
  int interval_ms = 1000;
  bool once = false;
};

bool parse_args(int argc, char** argv, Options* out) {
  if (const char* env = std::getenv("SORA_CTL_PORT")) {
    out->port = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return false;
      out->host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return false;
      out->port = std::atoi(v);
    } else if (arg == "--interval-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      out->interval_ms = std::atoi(v);
    } else if (arg == "--once") {
      out->once = true;
    } else {
      return false;
    }
  }
  return out->port > 0 && out->interval_ms > 0;
}

std::string fmt_count(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (v >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.0fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

void render(const sora::ctl::JsonValue& status, const Options& opts) {
  if (!opts.once) {
    // Home + clear-to-end beats full clears: no flicker at 1 Hz.
    std::fputs("\x1b[H\x1b[J", stdout);
  }
  std::printf("sora_top — http://%s:%d  sim %.1fs  %s  events/s %s  log %s\n",
              opts.host.c_str(), opts.port, status["sim_time_sec"].as_number(),
              status["paused"].as_bool() ? "PAUSED" : "running",
              fmt_count(status["events_per_sec"].as_number()).c_str(),
              status["log_level"].as_string().c_str());
  std::printf(
      "requests: injected %s  completed %s  shed %s  e2e p99 %.1f ms\n",
      fmt_count(status["injected"].as_number()).c_str(),
      fmt_count(status["completed"].as_number()).c_str(),
      fmt_count(status["shed"].as_number()).c_str(),
      status["e2e_p99_ms"].as_number());
  std::printf("ctl: %0.f applied / %0.f rejected   decisions %s",
              status["commands_applied"].as_number(),
              status["commands_rejected"].as_number(),
              fmt_count(status["decisions_total"].as_number()).c_str());
  const auto& faults = status["faults"];
  if (faults["armed"].as_bool()) {
    std::printf("   faults: %0.f fired, %0.f crashes, %0.f stalls",
                faults["events_fired"].as_number(),
                faults["crashes"].as_number(), faults["stalls"].as_number());
  }
  std::printf("\n\n");

  std::printf("%-18s %4s %6s %9s %6s %7s %9s  %-26s %6s\n", "SERVICE", "REP",
              "CORES", "THREADS", "QUEUE", "P99MS", "COMPL", "ADMISSION",
              "KNEE");
  for (const auto& svc : status["services"].as_array()) {
    std::string admission = "-";
    if (svc.has("admission")) {
      const auto& adm = svc["admission"];
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s lim %.0f shed %s",
                    adm["policy"].as_string().c_str(),
                    adm["limit"].as_number(),
                    fmt_count(adm["shed"].as_number()).c_str());
      admission = buf;
    }
    char threads[24];
    const double cap = svc["threads_capacity"].as_number();
    if (cap >= 1e8) {  // unbounded pools use a huge sentinel capacity
      std::snprintf(threads, sizeof(threads), "%.0f/-",
                    svc["threads_in_use"].as_number());
    } else {
      std::snprintf(threads, sizeof(threads), "%.0f/%.0f",
                    svc["threads_in_use"].as_number(), cap);
    }
    const double knee = svc["knee"].as_number();
    char knee_buf[16] = "-";
    if (knee > 0) std::snprintf(knee_buf, sizeof(knee_buf), "%.1f", knee);
    std::printf("%-18s %4.0f %6.2f %9s %6.0f %7.1f %9s  %-26s %6s\n",
                svc["name"].as_string().c_str(), svc["replicas"].as_number(),
                svc["cpu_limit_cores"].as_number(), threads,
                svc["queue_depth"].as_number(), svc["p99_ms"].as_number(),
                fmt_count(svc["completions"].as_number()).c_str(),
                admission.c_str(), knee_buf);
  }

  const auto& episodes = status["active_episodes"].as_array();
  if (!episodes.empty()) {
    std::printf("\nSLO burn episodes (open):\n");
    for (const auto& ep : episodes) {
      std::printf("  %-12s since %.1fs  peak fast burn %.2f\n",
                  ep["entity"].as_string().c_str(),
                  ep["start_sec"].as_number(),
                  ep["peak_fast_burn"].as_number());
    }
  }
  std::fflush(stdout);
}

/// What-if panel from /causalz: the causal ranking next to the Pearson
/// localizer's pick, plus the top measured what-ifs per profile.
void render_causal(const sora::ctl::JsonValue& causal) {
  const auto& profiles = causal["profiles"].as_array();
  if (profiles.empty()) return;
  std::printf("\nCausal what-if profile:\n");
  for (const auto& p : profiles) {
    std::printf("  [%s] causal %s vs pearson %s  %s   rank %s\n",
                p["scenario"].as_string().c_str(),
                p["causal_pick"].as_string().c_str(),
                p["pearson_pick"].as_string().c_str(),
                p["agree"].as_bool() ? "MATCH" : "DIVERGE",
                p["causal_rank"].as_string().c_str());
    const auto& effects = p["effects"].as_array();
    for (std::size_t i = 0; i < effects.size() && i < 3; ++i) {
      const auto& e = effects[i];
      std::printf("    %-24s dp99 %+7.2f ms  dgoodput %+7.2f/s\n",
                  e["perturbation"].as_string().c_str(),
                  e["delta_p99_ms"].as_number(),
                  e["delta_goodput"].as_number());
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, &opts)) {
    std::fprintf(stderr,
                 "usage: sora_top [--host H] [--port P] [--interval-ms N] "
                 "[--once]\n");
    return 2;
  }

  int failures = 0;
  for (;;) {
    std::string body;
    if (!sora::ctl::http_get(opts.host, opts.port, "/statusz", &body)) {
      if (opts.once || ++failures > 5) {
        std::fprintf(stderr, "sora_top: no ctl server at %s:%d\n",
                     opts.host.c_str(), opts.port);
        return 1;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts.interval_ms));
      continue;
    }
    failures = 0;
    sora::ctl::JsonValue status;
    if (sora::ctl::parse_json(body, &status)) {
      render(status, opts);
      // Second, cheap GET: the causal profile changes once per profiling
      // round, so serving it separately keeps /statusz lean.
      std::string causal_body;
      sora::ctl::JsonValue causal;
      if (sora::ctl::http_get(opts.host, opts.port, "/causalz",
                              &causal_body) &&
          sora::ctl::parse_json(causal_body, &causal)) {
        render_causal(causal);
      }
    }
    if (opts.once) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.interval_ms));
  }
}
