#!/usr/bin/env bash
# Smoke-test the ctl introspection plane against a live experiment.
#
# Point any harness-built binary at a port (SORA_CTL_PORT=8080 ./fig10_...)
# and run this script against the same port while the experiment is going:
#
#   SORA_CTL_PORT=8080 ./build/bench/fig10_firm_vs_sora - 1 &
#   tools/introspect_smoke.sh 8080
#
# The script immediately issues a `pause` command so the probes see a frozen
# simulation however fast the host executes it, asserts every read endpoint
# answers well-formed, verifies the applied commands land in the decision
# log with their verbatim text (the replay contract), then resumes the run.
#
# Any extra arguments are executed as a command while the simulation is
# paused — CI uses this to capture a sora_top frame:
#
#   tools/introspect_smoke.sh 8080 60 sh -c './sora_top --once > frame.txt'
set -u

PORT="${1:?usage: introspect_smoke.sh <port> [timeout_sec] [cmd...]}"
TIMEOUT="${2:-60}"
BASE="http://127.0.0.1:${PORT}"

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# fetch_until <path> <grep-pattern> <label>: GET until the body matches.
fetch_until() {
  local path="$1" pattern="$2" label="$3" body=""
  for _ in $(seq 1 "$TIMEOUT"); do
    body="$(curl -fsS --max-time 5 "${BASE}${path}" 2>/dev/null)" || body=""
    if [ -n "$body" ] && echo "$body" | grep -q "$pattern"; then
      echo "ok: $label"
      return 0
    fi
    sleep 1
  done
  fail "$label never matched '$pattern' on $path"
}

# post_ctl <command-text-urlencoded> <label>: enqueue until accepted.
post_ctl() {
  local cmd="$1" label="$2"
  for _ in $(seq 1 "$TIMEOUT"); do
    if curl -fsS --max-time 5 "${BASE}/ctl?cmd=${cmd}" 2>/dev/null \
        | grep -q queued; then
      echo "ok: $label"
      return 0
    fi
    sleep 1
  done
  fail "$label was never accepted"
}

fetch_until /healthz '^ok$' "/healthz answers"

# Freeze the sim first: everything below then probes a stable world, however
# fast the host burns through simulated time.
post_ctl "pause" "/ctl queued pause"
fetch_until /statusz '"paused":true' "simulation paused at a safepoint"

fetch_until /statusz '"sim_time_sec":' "/statusz carries sim time"
fetch_until /statusz '"services":\[' "/statusz carries per-service state"
fetch_until /statusz '"events_per_sec":' "/statusz carries the event rate"

# /metrics warms up on first demand; keep scraping until real families show.
fetch_until /metrics '^# TYPE ' "/metrics serves a typed exposition"

# Raise the log level (a second write while paused); the applied command
# itself logs at INFO, which /logz must then retain.
post_ctl "loglevel%20info" "/ctl queued loglevel"
fetch_until "/logz?n=50" "ctl: applied" "/logz retains the applied command"
fetch_until "/decisions?tail=5" '.' "/decisions returns a log tail"

# Both commands' decision-log records carry the verbatim command text
# (what makes recorded runs replayable).
fetch_until "/decisions?tail=200" '"controller":"ctl"' \
  "ctl decision records present"
fetch_until "/decisions?tail=200" '"command":"pause"' \
  "pause record carries the verbatim command"
fetch_until "/decisions?tail=200" '"command":"loglevel info"' \
  "loglevel record carries the verbatim command"

# Caller-supplied probe (e.g. a dashboard frame) against the frozen sim.
if [ "$#" -gt 2 ]; then
  shift 2
  "$@" || fail "paused-probe command failed: $*"
  echo "ok: paused-probe command ran"
fi

post_ctl "resume" "/ctl queued resume"

echo "introspect smoke: all endpoints healthy, commands applied and recorded"
