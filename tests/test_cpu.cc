// Tests for the processor-sharing CPU scheduler with concurrency overhead.
#include "svc/cpu.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sora {
namespace {

TEST(CpuScheduler, SingleJobRunsAtFullSpeed) {
  Simulator sim;
  CpuScheduler cpu(sim, 2.0, 0.5);
  SimTime done_at = -1;
  cpu.submit(1000, [&] { done_at = sim.now(); });
  sim.run_all();
  EXPECT_EQ(done_at, 1000);
  EXPECT_EQ(cpu.jobs_completed(), 1u);
}

TEST(CpuScheduler, ZeroDemandCompletesSynchronously) {
  Simulator sim;
  CpuScheduler cpu(sim, 1.0, 0.0);
  bool done = false;
  cpu.submit(0, [&] { done = true; });
  EXPECT_TRUE(done);
}

TEST(CpuScheduler, TwoJobsOnTwoCoresNoInterference) {
  Simulator sim;
  CpuScheduler cpu(sim, 2.0, 0.5);
  std::vector<SimTime> done;
  cpu.submit(1000, [&] { done.push_back(sim.now()); });
  cpu.submit(2000, [&] { done.push_back(sim.now()); });
  sim.run_all();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 1000);
  EXPECT_EQ(done[1], 2000);
}

TEST(CpuScheduler, TwoJobsShareOneCore) {
  Simulator sim;
  CpuScheduler cpu(sim, 1.0, 0.0);  // no overhead
  std::vector<SimTime> done;
  cpu.submit(1000, [&] { done.push_back(sim.now()); });
  cpu.submit(1000, [&] { done.push_back(sim.now()); });
  sim.run_all();
  ASSERT_EQ(done.size(), 2u);
  // Each runs at 0.5x: both finish at ~2000.
  EXPECT_NEAR(static_cast<double>(done[0]), 2000.0, 2.0);
  EXPECT_NEAR(static_cast<double>(done[1]), 2000.0, 2.0);
}

TEST(CpuScheduler, OverheadSlowsExcessConcurrency) {
  Simulator sim;
  const double beta = 1.0;
  CpuScheduler cpu(sim, 1.0, beta);
  std::vector<SimTime> done;
  cpu.submit(1000, [&] { done.push_back(sim.now()); });
  cpu.submit(1000, [&] { done.push_back(sim.now()); });
  sim.run_all();
  // rate per job = 0.5 / (1 + ln(2)) -> each finishes at 2000*(1+ln2).
  const double expected = 2000.0 * (1.0 + std::log(2.0));
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(static_cast<double>(done[1]), expected, 5.0);
}

TEST(CpuScheduler, ShorterJobFinishesFirst) {
  Simulator sim;
  CpuScheduler cpu(sim, 1.0, 0.0);
  std::vector<int> order;
  cpu.submit(3000, [&] { order.push_back(1); });
  cpu.submit(1000, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(CpuScheduler, LateArrivalSharesRemaining) {
  Simulator sim;
  CpuScheduler cpu(sim, 1.0, 0.0);
  std::vector<SimTime> done;
  cpu.submit(2000, [&] { done.push_back(sim.now()); });
  sim.schedule_at(1000, [&] {
    cpu.submit(500, [&] { done.push_back(sim.now()); });
  });
  sim.run_all();
  // Job A: 1000 done at t=1000, then shares: remaining 1000 at 0.5x.
  // Job B: 500 at 0.5x -> done at t=2000. A done at t=2500.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(static_cast<double>(done[0]), 2000.0, 3.0);
  EXPECT_NEAR(static_cast<double>(done[1]), 2500.0, 3.0);
}

TEST(CpuScheduler, SetCoresSpeedsUpInFlight) {
  Simulator sim;
  CpuScheduler cpu(sim, 1.0, 0.0);
  SimTime done_at = -1;
  cpu.submit(2000, [&] { done_at = sim.now(); });
  cpu.submit(2000, [&] {});
  // At t=1000 each job received 500us of service (rate 0.5), leaving 1500
  // each; doubling cores runs both at full speed: done at t=2500 instead of
  // t=4000.
  sim.schedule_at(1000, [&] { cpu.set_cores(2.0); });
  sim.run_all();
  EXPECT_NEAR(static_cast<double>(done_at), 2500.0, 3.0);
}

TEST(CpuScheduler, BusyIntegralSingleJob) {
  Simulator sim;
  CpuScheduler cpu(sim, 4.0, 0.0);
  cpu.submit(1000, [] {});
  sim.run_all();
  // One job on 4 cores occupies 1 core for 1000us.
  EXPECT_NEAR(cpu.busy_integral(), 1000.0, 1.0);
}

TEST(CpuScheduler, BusyIntegralCapsAtCores) {
  Simulator sim;
  CpuScheduler cpu(sim, 2.0, 0.0);
  for (int i = 0; i < 8; ++i) cpu.submit(1000, [] {});
  sim.run_all();
  // 8000us of work on 2 cores: busy 2 cores x 4000us = 8000 core-us.
  EXPECT_NEAR(cpu.busy_integral(), 8000.0, 10.0);
}

TEST(CpuScheduler, CompletionCallbackCanResubmit) {
  Simulator sim;
  CpuScheduler cpu(sim, 1.0, 0.0);
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 4) cpu.submit(100, next);
  };
  cpu.submit(100, next);
  sim.run_all();
  EXPECT_EQ(chain, 4);
  EXPECT_EQ(sim.now(), 400);
}

TEST(CpuScheduler, FractionalCores) {
  Simulator sim;
  CpuScheduler cpu(sim, 0.5, 0.0);
  SimTime done_at = -1;
  cpu.submit(1000, [&] { done_at = sim.now(); });
  sim.run_all();
  // Half a core: 1000us of work takes ~2000us wall (plus overhead of the
  // beta term: n=1 > cores=0.5 -> 1+beta*ln(2) with beta 0 -> none).
  EXPECT_NEAR(static_cast<double>(done_at), 2000.0, 3.0);
}

// Property: work conservation — total busy time equals total demand when
// concurrency never exceeds cores; wall time of the batch is close to
// total_demand / cores when always saturated.
class CpuWorkConservation : public ::testing::TestWithParam<int> {};

TEST_P(CpuWorkConservation, BatchTiming) {
  const int jobs = GetParam();
  Simulator sim;
  CpuScheduler cpu(sim, 2.0, 0.0);
  SimTime last = 0;
  for (int i = 0; i < jobs; ++i) {
    cpu.submit(1000, [&] { last = sim.now(); });
  }
  sim.run_all();
  const double total_work = 1000.0 * jobs;
  if (jobs >= 2) {
    EXPECT_NEAR(static_cast<double>(last), total_work / 2.0,
                total_work * 0.01 + 5.0);
    EXPECT_NEAR(cpu.busy_integral(), total_work, total_work * 0.01 + 5.0);
  }
  EXPECT_EQ(cpu.jobs_completed(), static_cast<std::uint64_t>(jobs));
  EXPECT_EQ(cpu.active_jobs(), 0);
}

INSTANTIATE_TEST_SUITE_P(JobCounts, CpuWorkConservation,
                         ::testing::Values(1, 2, 3, 5, 10, 50));

// Property: the overhead model is monotone — more concurrency never speeds
// up an individual job.
TEST(CpuScheduler, MonotoneSlowdownWithConcurrency) {
  SimTime prev_done = 0;
  for (int n : {1, 2, 4, 8, 16}) {
    Simulator sim;
    CpuScheduler cpu(sim, 2.0, 0.5);
    SimTime done = 0;
    for (int i = 0; i < n; ++i) {
      cpu.submit(1000, [&] { done = sim.now(); });
    }
    sim.run_all();
    EXPECT_GE(done, prev_done);
    prev_done = done;
  }
}

}  // namespace
}  // namespace sora
