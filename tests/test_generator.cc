// Tests for open-loop and closed-loop workload generators.
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <map>

namespace sora {
namespace {

/// Immediate-response sink with counters.
class InstantTarget : public LoadTarget {
 public:
  explicit InstantTarget(Simulator& sim, SimTime response_time = 0)
      : sim_(sim), rt_(response_time) {}

  void inject(const RequestMeta& meta, Completion on_complete) override {
    ++count_;
    ++per_class_[meta.request_class];
    ++per_priority_[static_cast<int>(meta.priority)];
    if (rt_ == 0) {
      on_complete(0, true);
    } else {
      sim_.schedule_after(
          rt_, [rt = rt_, cb = std::move(on_complete)] { cb(rt, true); });
    }
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t per_class(int cls) const {
    auto it = per_class_.find(cls);
    return it == per_class_.end() ? 0 : it->second;
  }
  std::uint64_t per_priority(Priority p) const {
    return per_priority_[static_cast<int>(p)];
  }

 private:
  Simulator& sim_;
  SimTime rt_;
  std::uint64_t count_ = 0;
  std::map<int, std::uint64_t> per_class_;
  std::uint64_t per_priority_[kNumPriorities] = {};
};

TEST(RequestMix, SingleClass) {
  RequestMix mix(3);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(mix.sample(rng), 3);
}

TEST(RequestMix, WeightedSampling) {
  RequestMix mix{{0, 3.0}, {1, 1.0}};
  Rng rng(2);
  int c0 = 0, c1 = 0;
  for (int i = 0; i < 40000; ++i) {
    (mix.sample(rng) == 0 ? c0 : c1)++;
  }
  EXPECT_NEAR(static_cast<double>(c0) / (c0 + c1), 0.75, 0.02);
}

TEST(OpenLoop, GeneratesApproximateRate) {
  Simulator sim;
  InstantTarget target(sim);
  // Constant-rate trace: base == peak == 500 rps for 20 s -> ~10000 reqs.
  WorkloadTrace trace(TraceShape::kSlowlyVarying, sec(20), 500.0, 500.0);
  OpenLoopGenerator gen(sim, target, trace, 42);
  gen.start();
  sim.run_all();
  EXPECT_NEAR(static_cast<double>(target.count()), 10000.0, 300.0);
  EXPECT_EQ(gen.injected(), target.count());
}

TEST(OpenLoop, FollowsTraceShape) {
  Simulator sim;
  InstantTarget target(sim);
  WorkloadTrace trace(TraceShape::kDualPhase, sec(40), 100.0, 1000.0);
  OpenLoopGenerator gen(sim, target, trace, 7);
  std::uint64_t first_half = 0;
  sim.schedule_at(sec(20), [&] { first_half = target.count(); });
  gen.start();
  sim.run_all();
  const std::uint64_t second_half = target.count() - first_half;
  // Dual phase: the second half carries much more load.
  EXPECT_GT(second_half, first_half * 2);
}

TEST(OpenLoop, StopsAtTraceEnd) {
  Simulator sim;
  InstantTarget target(sim);
  WorkloadTrace trace(TraceShape::kSlowlyVarying, sec(5), 100.0, 100.0);
  OpenLoopGenerator gen(sim, target, trace, 3);
  gen.start();
  sim.run_until(sec(60));
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_NEAR(static_cast<double>(target.count()), 500.0, 80.0);
}

TEST(OpenLoop, StopHaltsInjection) {
  Simulator sim;
  InstantTarget target(sim);
  WorkloadTrace trace(TraceShape::kSlowlyVarying, sec(100), 200.0, 200.0);
  OpenLoopGenerator gen(sim, target, trace, 3);
  gen.start();
  sim.schedule_at(sec(2), [&] { gen.stop(); });
  sim.run_all();
  EXPECT_NEAR(static_cast<double>(target.count()), 400.0, 80.0);
}

TEST(OpenLoop, MixChangeAtRuntime) {
  Simulator sim;
  InstantTarget target(sim);
  WorkloadTrace trace(TraceShape::kSlowlyVarying, sec(20), 300.0, 300.0);
  OpenLoopGenerator gen(sim, target, trace, 5);
  gen.set_mix(RequestMix(0));
  gen.schedule_mix_change(sec(10), RequestMix(2));
  gen.start();
  sim.run_all();
  EXPECT_GT(target.per_class(0), 2000u);
  EXPECT_GT(target.per_class(2), 2000u);
  EXPECT_EQ(target.per_class(1), 0u);
}

TEST(OpenLoop, ObserverSeesCompletions) {
  Simulator sim;
  InstantTarget target(sim, msec(5));
  WorkloadTrace trace(TraceShape::kSlowlyVarying, sec(5), 100.0, 100.0);
  OpenLoopGenerator gen(sim, target, trace, 5);
  std::uint64_t observed = 0;
  gen.set_observer([&](SimTime, int, SimTime rt, bool ok) {
    EXPECT_EQ(rt, msec(5));
    EXPECT_TRUE(ok);
    ++observed;
  });
  gen.start();
  sim.run_all();
  EXPECT_EQ(observed, target.count());
}

TEST(ClosedLoop, ThroughputMatchesLittlesLaw) {
  Simulator sim;
  InstantTarget target(sim, msec(50));
  // 100 users, think 450ms, response 50ms -> ~200 req/s for 20 s.
  ClosedLoopGenerator gen(sim, target, 100, msec(450), 11);
  gen.start();
  sim.run_until(sec(20));
  gen.stop();
  const double rate = static_cast<double>(target.count()) / 20.0;
  EXPECT_NEAR(rate, 200.0, 20.0);
}

TEST(ClosedLoop, SetUsersGrows) {
  Simulator sim;
  InstantTarget target(sim, msec(10));
  ClosedLoopGenerator gen(sim, target, 10, msec(90), 12);
  gen.start();
  sim.run_until(sec(5));
  const std::uint64_t at_10_users = target.count();
  gen.set_users(100);
  sim.run_until(sec(10));
  const std::uint64_t delta = target.count() - at_10_users;
  EXPECT_GT(delta, at_10_users * 5);
}

TEST(ClosedLoop, SetUsersShrinksEventually) {
  Simulator sim;
  InstantTarget target(sim, msec(10));
  ClosedLoopGenerator gen(sim, target, 100, msec(90), 13);
  gen.start();
  sim.run_until(sec(5));
  gen.set_users(1);
  const std::uint64_t before = target.count();
  sim.run_until(sec(6));
  const std::uint64_t drain = target.count() - before;
  sim.run_until(sec(16));
  const std::uint64_t after = target.count() - before - drain;
  // Rate with 1 user ~ 10/s; over 10s ~ 100 requests.
  EXPECT_LT(after, 300u);
  EXPECT_GT(after, 20u);
}

TEST(ClosedLoop, FollowTraceTracksUserCounts) {
  Simulator sim;
  InstantTarget target(sim, msec(10));
  ClosedLoopGenerator gen(sim, target, 0, msec(90), 14);
  WorkloadTrace trace(TraceShape::kDualPhase, sec(40), 50.0, 500.0);
  gen.follow_trace(trace);
  gen.start();
  std::uint64_t first_half = 0;
  sim.schedule_at(sec(20), [&] { first_half = target.count(); });
  sim.run_until(sec(40));
  const std::uint64_t second_half = target.count() - first_half;
  EXPECT_GT(second_half, first_half * 2);
  // After the trace ends users retire.
  sim.run_until(sec(60));
  const std::uint64_t tail = target.count();
  sim.run_until(sec(70));
  EXPECT_LE(target.count() - tail, 10u);
}

TEST(ClosedLoop, DeterministicWithSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    InstantTarget target(sim, msec(20));
    ClosedLoopGenerator gen(sim, target, 50, msec(100), seed);
    gen.start();
    sim.run_until(sec(10));
    return target.count();
  };
  EXPECT_EQ(run(5), run(5));
}

}  // namespace
}  // namespace sora
