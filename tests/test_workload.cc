// Tests for the six bursty trace shapes.
#include "workload/traces.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sora {
namespace {

TEST(Traces, AllShapesListed) {
  EXPECT_EQ(all_trace_shapes().size(), 6u);
}

TEST(Traces, NamesMatchPaper) {
  EXPECT_STREQ(to_string(TraceShape::kLargeVariation), "Large Variation");
  EXPECT_STREQ(to_string(TraceShape::kQuickVarying), "Quick Varying");
  EXPECT_STREQ(to_string(TraceShape::kSlowlyVarying), "Slowly Varying");
  EXPECT_STREQ(to_string(TraceShape::kBigSpike), "Big Spike");
  EXPECT_STREQ(to_string(TraceShape::kDualPhase), "Dual Phase");
  EXPECT_STREQ(to_string(TraceShape::kSteepTriPhase), "Steep Tri Phase");
}

// Property: every shape maps [0,1] into [0,1] and clamps outside inputs.
class ShapeBounds : public ::testing::TestWithParam<TraceShape> {};

TEST_P(ShapeBounds, IntensityWithinUnitInterval) {
  const TraceShape shape = GetParam();
  for (int i = -10; i <= 110; ++i) {
    const double t = static_cast<double>(i) / 100.0;
    const double v = trace_intensity(shape, t);
    EXPECT_GE(v, 0.0) << to_string(shape) << " t=" << t;
    EXPECT_LE(v, 1.0) << to_string(shape) << " t=" << t;
  }
}

TEST_P(ShapeBounds, HasMeaningfulDynamicRange) {
  const TraceShape shape = GetParam();
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i <= 1000; ++i) {
    const double v = trace_intensity(shape, i / 1000.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 0.3) << to_string(shape);
  EXPECT_GT(hi, 0.75) << to_string(shape);  // every trace reaches a crest
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, ShapeBounds,
    ::testing::ValuesIn(all_trace_shapes()),
    [](const ::testing::TestParamInfo<TraceShape>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == ' ') c = '_';
      }
      return name;
    });

TEST(Traces, BigSpikeIsSpiky) {
  // Big Spike: short crest, low elsewhere.
  int above = 0;
  const int n = 1000;
  for (int i = 0; i <= n; ++i) {
    if (trace_intensity(TraceShape::kBigSpike, i / 1000.0) > 0.6) ++above;
  }
  EXPECT_GT(above, 0);
  EXPECT_LT(above, n / 6);
}

TEST(Traces, QuickVaryingOscillatesFasterThanSlowlyVarying) {
  auto count_direction_changes = [](TraceShape shape) {
    int changes = 0;
    double prev = trace_intensity(shape, 0.0);
    double prev_delta = 0.0;
    for (int i = 1; i <= 1000; ++i) {
      const double v = trace_intensity(shape, i / 1000.0);
      const double delta = v - prev;
      if (delta * prev_delta < 0) ++changes;
      if (delta != 0.0) prev_delta = delta;
      prev = v;
    }
    return changes;
  };
  EXPECT_GT(count_direction_changes(TraceShape::kQuickVarying),
            count_direction_changes(TraceShape::kSlowlyVarying) + 4);
}

TEST(Traces, DualPhaseHasTwoLevels) {
  const double early = trace_intensity(TraceShape::kDualPhase, 0.2);
  const double late = trace_intensity(TraceShape::kDualPhase, 0.7);
  EXPECT_GT(late, early + 0.3);
}

TEST(WorkloadTrace, MapsIntensityToRates) {
  WorkloadTrace trace(TraceShape::kSlowlyVarying, sec(100), 100.0, 900.0);
  EXPECT_EQ(trace.duration(), sec(100));
  EXPECT_DOUBLE_EQ(trace.base_rate(), 100.0);
  EXPECT_DOUBLE_EQ(trace.peak_rate(), 900.0);
  double lo = 1e9, hi = 0.0;
  for (SimTime t = 0; t <= sec(100); t += sec(1)) {
    const double r = trace.rate_at(t);
    EXPECT_GE(r, 100.0);
    EXPECT_LE(r, 900.0);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_LT(lo, 300.0);
  EXPECT_GT(hi, 800.0);
  EXPECT_LE(hi, trace.max_rate());
}

TEST(WorkloadTrace, ClampsOutsideDuration) {
  WorkloadTrace trace(TraceShape::kDualPhase, sec(10), 10.0, 100.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(-5), trace.rate_at(0));
  EXPECT_DOUBLE_EQ(trace.rate_at(sec(20)), trace.rate_at(sec(10)));
}

}  // namespace
}  // namespace sora
