// Tests for the SCG/SCT estimation models.
#include "core/scg_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace sora {
namespace {

/// Synthesize scatter samples from a goodput law gp(Q) with noise.
std::vector<SamplePoint> synth_samples(
    const std::function<double(double)>& goodput_law,
    const std::function<double(double)>& throughput_law, double q_max,
    std::size_t n, std::uint64_t seed, double capacity = 0.0) {
  Rng rng(seed);
  std::vector<SamplePoint> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SamplePoint p;
    p.at = static_cast<SimTime>(i) * msec(100);
    p.concurrency = rng.uniform(0.5, q_max);
    p.goodput = std::max(0.0, goodput_law(p.concurrency) +
                                  rng.normal(0.0, 8.0));
    p.throughput = std::max(0.0, throughput_law(p.concurrency) +
                                     rng.normal(0.0, 8.0));
    p.capacity = capacity;
    out.push_back(p);
  }
  return out;
}

/// Saturating goodput that collapses beyond q_opt (threshold effect).
double goodput_with_knee(double q, double q_opt) {
  const double rise = 1000.0 * (1.0 - std::exp(-q / (q_opt / 3.0)));
  const double penalty = q > 2.0 * q_opt ? (q - 2.0 * q_opt) * 40.0 : 0.0;
  return rise - penalty;
}

TEST(ScgModel, AggregateBinsByRoundedConcurrency) {
  ScgModel model;
  std::vector<SamplePoint> pts;
  for (int i = 0; i < 10; ++i) {
    SamplePoint p;
    p.concurrency = 2.2;
    p.goodput = 100 + i;
    p.throughput = 200;
    pts.push_back(p);
  }
  const auto curve = model.aggregate(pts);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].concurrency, 2.0);
  EXPECT_NEAR(curve[0].value, 104.5, 1e-9);
  EXPECT_EQ(curve[0].samples, 10u);
}

TEST(ScgModel, AggregateSkipsIdleBuckets) {
  ScgModel model;
  std::vector<SamplePoint> pts;
  SamplePoint busy;
  busy.concurrency = 3;
  busy.goodput = 500;
  busy.throughput = 1000;
  SamplePoint idle;
  idle.concurrency = 1;
  idle.goodput = 1;
  idle.throughput = 1;  // << 2% of max
  pts.push_back(busy);
  pts.push_back(idle);
  const auto curve = model.aggregate(pts);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].concurrency, 3.0);
}

TEST(ScgModel, AggregateCensorsCapacityPinnedBuckets) {
  ScgModel model;
  std::vector<SamplePoint> pts;
  for (int q = 1; q <= 10; ++q) {
    SamplePoint p;
    p.concurrency = q;
    p.goodput = 100.0 * q;
    p.throughput = 100.0 * q;
    p.capacity = 10.0;
    pts.push_back(p);
  }
  const auto curve = model.aggregate(pts);
  // Q=10 >= 0.92 * 10 -> censored; Q=9 < 9.2 stays.
  ASSERT_EQ(curve.size(), 9u);
  EXPECT_DOUBLE_EQ(curve.back().concurrency, 9.0);
}

TEST(ScgModel, EstimateRecoversKnee) {
  ScgOptions opts;
  const double q_opt = 10.0;
  const auto pts = synth_samples(
      [&](double q) { return goodput_with_knee(q, q_opt); },
      [&](double q) { return 1000.0 * (1.0 - std::exp(-q / 5.0)); }, 30.0,
      1200, 42);
  ScgModel model(opts);
  const auto est = model.estimate(pts);
  ASSERT_TRUE(est.valid) << est.failure;
  EXPECT_GT(est.recommended, 4);
  EXPECT_LT(est.recommended, 22);
  EXPECT_GT(est.r_squared, 0.8);
  EXPECT_GE(est.degree_used, opts.min_degree);
}

TEST(ScgModel, InsufficientSamplesFails) {
  ScgModel model;
  std::vector<SamplePoint> pts(10);
  const auto est = model.estimate(pts);
  EXPECT_FALSE(est.valid);
  EXPECT_EQ(est.failure, "insufficient samples");
}

TEST(ScgModel, NarrowConcurrencyRangeFails) {
  ScgModel model;
  std::vector<SamplePoint> pts;
  for (int i = 0; i < 200; ++i) {
    SamplePoint p;
    p.concurrency = 2.0;
    p.goodput = 100.0;
    p.throughput = 100.0;
    pts.push_back(p);
  }
  const auto est = model.estimate(pts);
  EXPECT_FALSE(est.valid);
  EXPECT_EQ(est.failure, "insufficient concurrency range");
}

TEST(ScgModel, LinearRisingCurveHasNoKnee) {
  // Goodput strictly proportional to concurrency (allocation still caps the
  // system): the model must not fabricate a knee.
  const auto pts = synth_samples([](double q) { return 50.0 * q; },
                                 [](double q) { return 50.0 * q; }, 12.0,
                                 800, 7);
  ScgModel model;
  const auto est = model.estimate(pts);
  EXPECT_FALSE(est.valid);
}

TEST(ScgModel, SctUsesThroughput) {
  // Goodput collapses at q > 8 but throughput keeps rising: SCT must pick a
  // higher setting than SCG (the ConScale over-allocation the paper shows).
  const auto law_gp = [](double q) {
    return q <= 8 ? 120.0 * q : 960.0 - 90.0 * (q - 8);
  };
  const auto law_tp = [](double q) {
    return 1200.0 * (1.0 - std::exp(-q / 6.0));
  };
  const auto pts = synth_samples(law_gp, law_tp, 25.0, 1500, 11);

  ScgOptions scg_opts;
  ScgModel scg(scg_opts);
  ScgOptions sct_opts;
  sct_opts.kind = ModelKind::kScatterConcurrencyThroughput;
  ScgModel sct(sct_opts);

  const auto est_scg = scg.estimate(pts);
  const auto est_sct = sct.estimate(pts);
  ASSERT_TRUE(est_scg.valid) << est_scg.failure;
  ASSERT_TRUE(est_sct.valid) << est_sct.failure;
  EXPECT_LT(est_scg.recommended, est_sct.recommended);
}

TEST(ScgModel, ModelKindNames) {
  EXPECT_STREQ(to_string(ModelKind::kScatterConcurrencyGoodput), "SCG");
  EXPECT_STREQ(to_string(ModelKind::kScatterConcurrencyThroughput), "SCT");
}

// Property: the estimate tracks the synthetic optimum across positions.
class ScgRecovery : public ::testing::TestWithParam<double> {};

TEST_P(ScgRecovery, KneeTracksOptimum) {
  const double q_opt = GetParam();
  const auto pts = synth_samples(
      [&](double q) { return goodput_with_knee(q, q_opt); },
      [&](double q) { return 1000.0 * (1.0 - std::exp(-q / (q_opt / 2))); },
      q_opt * 3.0, 1500, 17);
  ScgModel model;
  const auto est = model.estimate(pts);
  ASSERT_TRUE(est.valid) << est.failure << " q_opt=" << q_opt;
  EXPECT_GT(est.recommended, static_cast<int>(q_opt * 0.4));
  EXPECT_LT(est.recommended, static_cast<int>(q_opt * 2.5));
}

INSTANTIATE_TEST_SUITE_P(Optima, ScgRecovery,
                         ::testing::Values(6.0, 10.0, 16.0, 24.0));

}  // namespace
}  // namespace sora
