// Tests for critical-path extraction and upstream processing-time sums.
#include "trace/critical_path.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sora {
namespace {

using testutil::SyntheticSpan;

TEST(CriticalPath, SingleSpan) {
  const Trace t = testutil::make_trace({
      {-1, 0, 0, 1000, 0},
  });
  const CriticalPath cp = extract_critical_path(t);
  ASSERT_EQ(cp.hops.size(), 1u);
  EXPECT_EQ(cp.total_duration, 1000);
  EXPECT_EQ(cp.hops[0].service, ServiceId(0));
  EXPECT_EQ(cp.hops[0].processing_time, 1000);
}

TEST(CriticalPath, Chain) {
  // front(0..100) -> mid(10..90) -> leaf(20..80)
  const Trace t = testutil::make_trace({
      {-1, 0, 0, 100, 80},
      {0, 1, 10, 90, 60},
      {1, 2, 20, 80, 0},
  });
  const CriticalPath cp = extract_critical_path(t);
  ASSERT_EQ(cp.hops.size(), 3u);
  EXPECT_EQ(cp.hops[0].service, ServiceId(0));
  EXPECT_EQ(cp.hops[1].service, ServiceId(1));
  EXPECT_EQ(cp.hops[2].service, ServiceId(2));
  EXPECT_EQ(cp.hops[0].processing_time, 20);  // 100 - 80
  EXPECT_EQ(cp.hops[1].processing_time, 20);  // 80 - 60
  EXPECT_EQ(cp.hops[2].processing_time, 60);
  EXPECT_EQ(cp.total_duration, 100);
  EXPECT_TRUE(cp.contains(ServiceId(1)));
  EXPECT_FALSE(cp.contains(ServiceId(9)));
}

TEST(CriticalPath, ParallelFanoutPicksSlowerChild) {
  // root fans out to services 1 (10..40) and 2 (10..90): 2 dominates.
  const Trace t = testutil::make_trace({
      {-1, 0, 0, 100, 80},
      {0, 1, 10, 40, 0, 0},
      {0, 2, 10, 90, 0, 0},
  });
  const CriticalPath cp = extract_critical_path(t);
  ASSERT_EQ(cp.hops.size(), 2u);
  EXPECT_EQ(cp.hops[1].service, ServiceId(2));
}

TEST(CriticalPath, SequentialCallsPickLongest) {
  // Two sequential children: the chain descends into the longer one
  // ("path of maximal duration").
  const Trace t = testutil::make_trace({
      {-1, 0, 0, 200, 150},
      {0, 1, 10, 60, 0, 0},    // 50us
      {0, 2, 70, 170, 0, 1},   // 100us
  });
  const CriticalPath cp = extract_critical_path(t);
  ASSERT_EQ(cp.hops.size(), 2u);
  EXPECT_EQ(cp.hops[1].service, ServiceId(2));
}

TEST(CriticalPath, DeepTree) {
  const Trace t = testutil::make_trace({
      {-1, 0, 0, 1000, 900},
      {0, 1, 50, 900, 700},   // on path
      {0, 2, 50, 300, 0},     // parallel loser
      {1, 3, 100, 750, 0},    // deepest hop
  });
  const CriticalPath cp = extract_critical_path(t);
  ASSERT_EQ(cp.hops.size(), 3u);
  EXPECT_EQ(cp.hops[2].service, ServiceId(3));
  EXPECT_EQ(cp.hops[2].processing_time, 650);
}

TEST(CriticalPath, EmptyTrace) {
  Trace t;
  const CriticalPath cp = extract_critical_path(t);
  EXPECT_TRUE(cp.hops.empty());
  EXPECT_EQ(cp.total_duration, 0);
}

TEST(UpstreamProcessingTime, SumsHopsAboveService) {
  const Trace t = testutil::make_trace({
      {-1, 0, 0, 100, 80},   // PT 20
      {0, 1, 10, 90, 60},    // PT 20
      {1, 2, 20, 80, 0},     // PT 60
  });
  const CriticalPath cp = extract_critical_path(t);
  EXPECT_EQ(upstream_processing_time(cp, ServiceId(0)), 0);
  EXPECT_EQ(upstream_processing_time(cp, ServiceId(1)), 20);
  EXPECT_EQ(upstream_processing_time(cp, ServiceId(2)), 40);
  EXPECT_EQ(upstream_processing_time(cp, ServiceId(9)), -1);
}

// Degenerate input: two children with exactly tied durations. The descent
// uses a strict comparison, so the first child in call order wins — the
// choice must be deterministic (profile output is compared byte-for-byte).
TEST(CriticalPath, TiedChildDurationsPickFirstDeterministically) {
  const Trace t = testutil::make_trace({
      {-1, 0, 0, 100, 80},
      {0, 1, 10, 90, 0, 0},
      {0, 2, 10, 90, 0, 0},  // same duration as service 1
  });
  const CriticalPath a = extract_critical_path(t);
  const CriticalPath b = extract_critical_path(t);
  ASSERT_EQ(a.hops.size(), 2u);
  EXPECT_EQ(a.hops[1].service, ServiceId(1));  // first call order wins
  ASSERT_EQ(b.hops.size(), a.hops.size());
  EXPECT_EQ(b.hops[1].service, a.hops[1].service);
}

// Degenerate input: a parent references a child span that never made it
// into the trace (dropped span report). The walk must skip the gap, not
// crash or follow a dangling pointer.
TEST(CriticalPath, DanglingChildReferenceIsSkipped) {
  Trace t = testutil::make_trace({
      {-1, 0, 0, 100, 80},
      {0, 1, 10, 90, 60},
      {1, 2, 20, 80, 0},
  });
  // Drop the mid span (index 1) from the span list; the root's ChildCall
  // still references its id.
  t.spans.erase(t.spans.begin() + 1);
  const CriticalPath cp = extract_critical_path(t);
  ASSERT_EQ(cp.hops.size(), 1u);  // walk stops at the gap
  EXPECT_EQ(cp.hops[0].service, ServiceId(0));
  EXPECT_EQ(cp.total_duration, 100);
}

// Degenerate input: a gap in the middle of a deep chain — the surviving
// grandchild is unreachable, so only the prefix above the gap remains.
TEST(CriticalPath, GapTruncatesPathNotWholeTrace) {
  Trace t = testutil::make_trace({
      {-1, 0, 0, 500, 430},
      {0, 1, 20, 450, 350},
      {1, 2, 50, 400, 270},
      {2, 3, 80, 350, 0},
  });
  t.spans.erase(t.spans.begin() + 2);  // drop service 2's span
  const CriticalPath cp = extract_critical_path(t);
  ASSERT_EQ(cp.hops.size(), 2u);
  EXPECT_EQ(cp.hops[0].service, ServiceId(0));
  EXPECT_EQ(cp.hops[1].service, ServiceId(1));
  EXPECT_FALSE(cp.contains(ServiceId(3)));
}

// Property: PT of all hops never exceeds the total duration, and the hop
// list follows parent-child order.
TEST(CriticalPath, ProcessingTimeBoundedByDuration) {
  // Consistent chain: every span's downstream_wait equals its child's
  // duration (as the instrumentation records for serial calls).
  const Trace t = testutil::make_trace({
      {-1, 0, 0, 500, 430},
      {0, 1, 20, 450, 350},
      {1, 2, 50, 400, 270},
      {2, 3, 80, 350, 0},
  });
  const CriticalPath cp = extract_critical_path(t);
  SimTime pt_sum = 0;
  for (const auto& hop : cp.hops) {
    EXPECT_GE(hop.processing_time, 0);
    EXPECT_LE(hop.processing_time, hop.span_duration);
    pt_sum += hop.processing_time;
  }
  EXPECT_LE(pt_sum, cp.total_duration);
}

}  // namespace
}  // namespace sora
