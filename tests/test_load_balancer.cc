// Tests for replica selection policies.
#include "svc/load_balancer.h"

#include <gtest/gtest.h>

namespace sora {
namespace {

TEST(LoadBalancer, RoundRobinCycles) {
  LoadBalancer lb(LoadBalancePolicy::kRoundRobin);
  std::vector<int> outstanding{0, 0, 0};
  EXPECT_EQ(lb.pick(outstanding), 0u);
  EXPECT_EQ(lb.pick(outstanding), 1u);
  EXPECT_EQ(lb.pick(outstanding), 2u);
  EXPECT_EQ(lb.pick(outstanding), 0u);
}

TEST(LoadBalancer, RoundRobinHandlesShrinkingSet) {
  LoadBalancer lb(LoadBalancePolicy::kRoundRobin);
  std::vector<int> three{0, 0, 0};
  lb.pick(three);
  lb.pick(three);
  std::vector<int> two{0, 0};
  // Never out of range.
  for (int i = 0; i < 10; ++i) EXPECT_LT(lb.pick(two), 2u);
}

TEST(LoadBalancer, LeastOutstandingPicksIdlest) {
  LoadBalancer lb(LoadBalancePolicy::kLeastOutstanding);
  EXPECT_EQ(lb.pick({5, 2, 7}), 1u);
  EXPECT_EQ(lb.pick({0, 2, 7}), 0u);
}

TEST(LoadBalancer, LeastOutstandingTieBreaksFirst) {
  LoadBalancer lb(LoadBalancePolicy::kLeastOutstanding);
  EXPECT_EQ(lb.pick({3, 3, 3}), 0u);
}

TEST(LoadBalancer, PolicySwitch) {
  LoadBalancer lb(LoadBalancePolicy::kRoundRobin);
  EXPECT_EQ(lb.policy(), LoadBalancePolicy::kRoundRobin);
  lb.set_policy(LoadBalancePolicy::kLeastOutstanding);
  EXPECT_EQ(lb.pick({9, 1}), 1u);
}

TEST(LoadBalancer, SingleReplica) {
  LoadBalancer lb;
  for (int i = 0; i < 5; ++i) EXPECT_EQ(lb.pick({42}), 0u);
}

}  // namespace
}  // namespace sora
