// Exporter tests: an exact golden-file check for the Chrome trace_event
// exporter on a hand-built trace (fully controlled input), plus structural
// well-formedness checks on the telemetry an end-to-end experiment run
// emits (decision-log JSONL, Chrome trace, timelines, metrics). Full-run
// output is checked structurally, not byte-for-byte: any change to
// simulation timing would otherwise invalidate the golden.
//
// Regenerate the golden after an intentional format change with:
//   SORA_UPDATE_GOLDEN=1 ./test_obs_export
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "obs/chrome_trace.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "test_util.h"

#ifndef SORA_GOLDEN_DIR
#define SORA_GOLDEN_DIR "tests/golden"
#endif

namespace sora {
namespace {

// --- minimal structural JSON checker -----------------------------------------
// Not a parser: verifies balanced braces/brackets outside string literals
// and terminated strings, which catches every truncation/escaping bug the
// exporters could realistically produce.
bool json_structurally_valid(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

// --- golden-file check on a hand-built warehouse ------------------------------

Trace make_trace(std::uint64_t id, SimTime start) {
  Trace t;
  t.id = TraceId(id);
  t.request_class = 0;
  t.start = start;
  t.end = start + msec(12);

  Span root;
  root.id = SpanId(id * 10);
  root.trace = t.id;
  root.service = ServiceId(1);
  root.instance = InstanceId(11);
  root.arrival = start;
  root.admitted = start + usec(200);
  root.departure = t.end;
  root.downstream_wait = msec(8);
  root.children.push_back(
      ChildCall{SpanId(id * 10 + 1), 0, start + msec(1), start + msec(9)});

  Span child;
  child.id = SpanId(id * 10 + 1);
  child.trace = t.id;
  child.parent = root.id;
  child.service = ServiceId(2);
  child.instance = InstanceId(22);
  child.arrival = start + msec(1);
  child.admitted = start + msec(2);
  child.departure = start + msec(9);

  t.spans.push_back(root);
  t.spans.push_back(child);
  return t;
}

std::string service_name(ServiceId id) {
  return id.value() == 1 ? "front" : "leaf";
}

TEST(ChromeTraceExport, MatchesGoldenFile) {
  const std::vector<Trace> traces = {make_trace(1, msec(100)),
                                     make_trace(2, msec(150))};
  std::ostringstream os;
  const std::size_t n = obs::export_chrome_trace(traces, service_name, os);
  EXPECT_EQ(n, 2u);
  ASSERT_TRUE(json_structurally_valid(os.str()));

  const std::string golden_path =
      std::string(SORA_GOLDEN_DIR) + "/chrome_trace_small.json";
  if (std::getenv("SORA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    out << os.str();
    GTEST_SKIP() << "golden updated: " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path;
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(os.str(), golden.str());
}

TEST(ChromeTraceExport, WindowAndCapFilter) {
  const std::vector<Trace> traces = {make_trace(1, msec(100)),
                                     make_trace(2, msec(150)),
                                     make_trace(3, msec(200))};
  std::ostringstream windowed;
  obs::ChromeTraceOptions opt;
  opt.from = msec(170);  // only trace 3 (end = 212 ms) completes after this
  EXPECT_EQ(obs::export_chrome_trace(traces, service_name, windowed, opt), 1u);

  std::ostringstream capped;
  opt = {};
  opt.max_traces = 2;
  EXPECT_EQ(obs::export_chrome_trace(traces, service_name, capped, opt), 2u);
  EXPECT_TRUE(json_structurally_valid(capped.str()));
}

// --- end-to-end: a real run emits well-formed telemetry -----------------------

TEST(ExperimentTelemetry, EndToEndExportsAreWellFormed) {
  ExperimentConfig cfg;
  cfg.duration = sec(70);
  cfg.sla = msec(50);
  Experiment exp(testutil::chain_app(0.3), cfg);
  exp.closed_loop(40, msec(200));

  SoraFrameworkOptions so;
  so.control_period = sec(10);
  so.sla = cfg.sla;
  auto& fw = exp.add_sora(so);
  fw.manage(ResourceKnob::entry(exp.app().service("mid")));

  FirmOptions fo;
  fo.slo_latency = cfg.sla;
  auto& firm = exp.add_firm(fo);
  firm.manage(exp.app().service("mid"));
  Experiment::link(firm, fw);

  exp.track_service("mid");
  exp.enable_metrics_sampling(sec(10));
  exp.run();

  // Decision log: every control plane recorded every round.
  EXPECT_GT(exp.decision_log().by_controller("sora").size(), 0u);
  EXPECT_GT(exp.decision_log().by_controller("firm").size(), 0u);
  std::ostringstream decisions;
  exp.export_decision_log(decisions);
  const auto decision_lines = lines_of(decisions.str());
  ASSERT_EQ(decision_lines.size(), exp.decision_log().size());
  for (const std::string& line : decision_lines) {
    ASSERT_TRUE(json_structurally_valid(line)) << line;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"controller\":"), std::string::npos);
    EXPECT_NE(line.find("\"action\":"), std::string::npos);
    EXPECT_NE(line.find("\"reason\":"), std::string::npos);
  }

  // Chrome trace of the same run.
  std::ostringstream trace;
  obs::ChromeTraceOptions topt;
  topt.max_traces = 50;
  const std::size_t exported = exp.export_chrome_trace(trace, topt);
  EXPECT_GT(exported, 0u);
  ASSERT_TRUE(json_structurally_valid(trace.str()));
  EXPECT_NE(trace.str().find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"name\":\"mid\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"processing_us\":"), std::string::npos);

  // Timelines through the TimeSeriesSink.
  const obs::TimeSeriesSink sink = exp.timeline_sink("mid");
  EXPECT_GT(sink.num_rows(), 0u);
  std::ostringstream csv;
  exp.export_timelines_csv("mid", csv);
  const auto csv_lines = lines_of(csv.str());
  ASSERT_GT(csv_lines.size(), 1u);
  EXPECT_EQ(csv_lines.front(),
            "at_us,util_pct,limit_pct,replicas,entry_capacity,entry_in_use,"
            "edge_capacity,edge_in_use");
  std::ostringstream tl_jsonl;
  exp.export_timelines_jsonl(tl_jsonl);
  for (const std::string& line : lines_of(tl_jsonl.str())) {
    ASSERT_TRUE(json_structurally_valid(line)) << line;
    EXPECT_NE(line.find("\"series\":\"mid\""), std::string::npos);
  }

  // Metrics snapshots collected during the run.
  EXPECT_GT(exp.metrics_snapshots().size(), 0u);
  std::ostringstream metrics;
  exp.export_metrics_jsonl(metrics);
  bool saw_pool_metric = false;
  for (const std::string& line : lines_of(metrics.str())) {
    ASSERT_TRUE(json_structurally_valid(line)) << line;
    if (line.find("\"pool.capacity\"") != std::string::npos) {
      saw_pool_metric = true;
    }
  }
  EXPECT_TRUE(saw_pool_metric);

  // The profiler attributed control-plane work to this experiment.
  const ExperimentSummary summary = exp.summary();
  bool saw_round = false;
  for (const auto& s : summary.controller_overhead) {
    if (s.stage == "sora.control_round") {
      saw_round = true;
      EXPECT_GE(s.calls, 1u);
    }
  }
  EXPECT_TRUE(saw_round);
}

}  // namespace
}  // namespace sora
