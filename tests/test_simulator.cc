// Tests for the discrete-event simulation engine.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace sora {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfter) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run_all();
  SimTime fired_at = -1;
  sim.schedule_after(50, [&] { fired_at = sim.now(); });
  sim.run_all();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, HandleNotPendingAfterFire) {
  Simulator sim;
  EventHandle h = sim.schedule_at(1, [] {});
  sim.run_all();
  EXPECT_FALSE(h.pending());
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule_at(10, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(20, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(30, [&] { fired.push_back(sim.now()); });
  sim.run_until(20);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.now(), 20);
  sim.run_until(25);
  EXPECT_EQ(sim.now(), 25);  // clock advances even with no events
  sim.run_until(100);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, EventsScheduledDuringExecutionRun) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] {
    order.push_back(1);
    sim.schedule_after(5, [&] { order.push_back(2); });
  });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 15);
}

TEST(Simulator, ImmediateEventDuringExecution) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(10, [&] {
    sim.schedule_after(0, [&] { ++count; });
  });
  sim.run_all();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule_periodic(10, [&] { fired.push_back(sim.now()); });
  sim.run_until(35);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30}));
}

TEST(Simulator, PeriodicCancelStops) {
  Simulator sim;
  int count = 0;
  EventHandle h = sim.schedule_periodic(10, [&] { ++count; });
  sim.run_until(25);
  EXPECT_EQ(count, 2);
  h.cancel();
  sim.run_until(100);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PeriodicCancelFromWithinCallback) {
  Simulator sim;
  int count = 0;
  EventHandle h;
  h = sim.schedule_periodic(10, [&] {
    if (++count == 3) h.cancel();
  });
  sim.run_until(1000);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ManyEventsStress) {
  Simulator sim;
  std::uint64_t sum = 0;
  for (int i = 0; i < 10000; ++i) {
    sim.schedule_at((i * 7919) % 100000, [&sum] { ++sum; });
  }
  sim.run_all();
  EXPECT_EQ(sum, 10000u);
}

TEST(Simulator, CancelledCounterTracksCancels) {
  Simulator sim;
  EventHandle a = sim.schedule_at(10, [] {});
  EventHandle b = sim.schedule_at(20, [] {});
  sim.schedule_at(30, [] {});
  EXPECT_EQ(sim.events_cancelled(), 0u);
  a.cancel();
  b.cancel();
  b.cancel();  // double-cancel must not count twice
  EXPECT_EQ(sim.events_cancelled(), 2u);
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 1u);
  EXPECT_EQ(sim.events_cancelled(), 2u);
}

// A cancelled slot is recycled for the next scheduled event; the old
// handle's generation is stale and must neither report pending nor be able
// to cancel the slot's new occupant.
TEST(Simulator, StaleHandleCannotTouchReusedSlot) {
  Simulator sim;
  bool old_fired = false;
  bool new_fired = false;
  EventHandle old_h = sim.schedule_at(10, [&] { old_fired = true; });
  old_h.cancel();
  EventHandle new_h = sim.schedule_at(20, [&] { new_fired = true; });
  EXPECT_FALSE(old_h.pending());
  EXPECT_TRUE(new_h.pending());
  old_h.cancel();  // stale generation: must be a no-op on the new event
  EXPECT_TRUE(new_h.pending());
  sim.run_all();
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
  EXPECT_EQ(sim.events_cancelled(), 1u);
}

// A handle whose event already fired is equally stale across slot reuse.
TEST(Simulator, SpentHandleCannotCancelReusedSlot) {
  Simulator sim;
  EventHandle first = sim.schedule_at(1, [] {});
  sim.run_all();
  int fired = 0;
  sim.schedule_at(2, [&] { ++fired; });
  first.cancel();  // must not hit the recycled slot
  sim.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_cancelled(), 0u);
}

// Cancel/reschedule churn forces slots through many generations; every
// surviving event must fire exactly once, in time order, and no stale
// handle may interfere.
TEST(Simulator, HandleGenerationStress) {
  Simulator sim;
  std::vector<SimTime> fired;
  std::vector<EventHandle> cancelled;
  // Interleave: schedule two, cancel one, repeat. Free-list reuse makes
  // consecutive schedules revisit the same slots with bumped generations.
  for (int i = 0; i < 1000; ++i) {
    EventHandle keep =
        sim.schedule_at(2 * i, [&fired, &sim] { fired.push_back(sim.now()); });
    EventHandle drop = sim.schedule_at(2 * i + 1, [] { FAIL(); });
    drop.cancel();
    cancelled.push_back(drop);
    (void)keep;
  }
  // Re-cancelling every stale handle must not disturb pending events.
  for (EventHandle& h : cancelled) {
    EXPECT_FALSE(h.pending());
    h.cancel();
  }
  EXPECT_EQ(sim.events_pending(), 1000u);
  sim.run_all();
  ASSERT_EQ(fired.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(fired[i], 2 * i);
  EXPECT_EQ(sim.events_executed(), 1000u);
  EXPECT_EQ(sim.events_cancelled(), 1000u);
}

// Cancelling most of a large queue triggers in-place heap compaction; the
// survivors must still fire in exact (time, FIFO) order.
TEST(Simulator, CompactionPreservesOrder) {
  Simulator sim;
  std::vector<int> fired;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 512; ++i) {
    handles.push_back(
        sim.schedule_at(1000 - i, [&fired, i] { fired.push_back(i); }));
  }
  // Cancel all but every 8th event: well past the >50% stale threshold.
  std::uint64_t expected_cancelled = 0;
  for (int i = 0; i < 512; ++i) {
    if (i % 8 != 0) {
      handles[i].cancel();
      ++expected_cancelled;
    }
  }
  EXPECT_EQ(sim.events_cancelled(), expected_cancelled);
  EXPECT_EQ(sim.events_pending(), 512u - expected_cancelled);
  sim.run_all();
  ASSERT_EQ(fired.size(), 512u - expected_cancelled);
  // Times were 1000 - i, so survivors fire in descending index order.
  for (std::size_t k = 0; k < fired.size(); ++k) {
    EXPECT_EQ(fired[k], 504 - static_cast<int>(k) * 8);
  }
  EXPECT_EQ(sim.events_pending(), 0u);
}

// Compaction during execution: cancel from inside a callback, then keep
// scheduling; counters and order must stay consistent.
TEST(Simulator, CancelInsideCallbackWithChurn) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 200; ++i) {
    doomed.push_back(sim.schedule_at(100 + i, [] { FAIL(); }));
  }
  sim.schedule_at(50, [&] {
    for (EventHandle& h : doomed) h.cancel();
    order.push_back(1);
    sim.schedule_after(10, [&] { order.push_back(2); });
  });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.events_cancelled(), 200u);
  EXPECT_EQ(sim.events_executed(), 2u);
}

// Periodic chains run through the same slab; cancelling one mid-flight and
// re-arming new periodics must not cross wires through recycled slots.
TEST(Simulator, PeriodicSlotReuseAcrossGenerations) {
  Simulator sim;
  int first_count = 0;
  EventHandle first = sim.schedule_periodic(10, [&] { ++first_count; });
  sim.run_until(35);
  EXPECT_EQ(first_count, 3);
  first.cancel();
  int second_count = 0;
  EventHandle second = sim.schedule_periodic(5, [&] { ++second_count; });
  first.cancel();  // stale: must not stop the new chain
  sim.run_until(60);
  EXPECT_FALSE(first.pending());
  EXPECT_TRUE(second.pending());
  EXPECT_EQ(first_count, 3);
  EXPECT_EQ(second_count, 5);  // ticks at 40, 45, 50, 55, 60
}

// The stale-entry compactor fires only past the exact 50% boundary:
// heap >= kCompactMinHeap entries AND stale * 2 > heap size. At a 64-entry
// heap, 32 cancellations sit exactly at half — no compaction; the 33rd
// crosses the boundary and sweeps every stale entry in one pass.
TEST(Simulator, HeapCompactionAtExactHalfStaleBoundary) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(sim.schedule_at(1000 + i, [] {}));
  }
  ASSERT_EQ(sim.heap_entries(), 64u);  // == kCompactMinHeap
  for (int i = 0; i < 32; ++i) handles[static_cast<std::size_t>(i)].cancel();
  // 32 stale of 64 is exactly half, not "more than half": stale entries stay.
  EXPECT_EQ(sim.heap_entries(), 64u);
  EXPECT_EQ(sim.events_pending(), 32u);
  handles[32].cancel();
  // 33 of 64 crosses the boundary: only the 31 live entries survive.
  EXPECT_EQ(sim.heap_entries(), 31u);
  EXPECT_EQ(sim.events_pending(), 31u);
  EXPECT_EQ(sim.events_cancelled(), 33u);
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 31u);
}

// Below kCompactMinHeap a stale majority never triggers compaction — the
// pass would cost more than popping the stale entries at run time.
TEST(Simulator, NoCompactionBelowMinHeapSize) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 63; ++i) {
    handles.push_back(sim.schedule_at(1000 + i, [] { FAIL(); }));
  }
  for (EventHandle& h : handles) h.cancel();
  EXPECT_EQ(sim.heap_entries(), 63u);  // all stale, all still queued
  EXPECT_EQ(sim.events_pending(), 0u);
  sim.run_all();
  EXPECT_EQ(sim.heap_entries(), 0u);
  EXPECT_EQ(sim.events_executed(), 0u);
}

}  // namespace
}  // namespace sora
