// Tests for the discrete-event simulation engine.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace sora {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfter) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run_all();
  SimTime fired_at = -1;
  sim.schedule_after(50, [&] { fired_at = sim.now(); });
  sim.run_all();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, HandleNotPendingAfterFire) {
  Simulator sim;
  EventHandle h = sim.schedule_at(1, [] {});
  sim.run_all();
  EXPECT_FALSE(h.pending());
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule_at(10, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(20, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(30, [&] { fired.push_back(sim.now()); });
  sim.run_until(20);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.now(), 20);
  sim.run_until(25);
  EXPECT_EQ(sim.now(), 25);  // clock advances even with no events
  sim.run_until(100);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, EventsScheduledDuringExecutionRun) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(10, [&] {
    order.push_back(1);
    sim.schedule_after(5, [&] { order.push_back(2); });
  });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 15);
}

TEST(Simulator, ImmediateEventDuringExecution) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(10, [&] {
    sim.schedule_after(0, [&] { ++count; });
  });
  sim.run_all();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule_periodic(10, [&] { fired.push_back(sim.now()); });
  sim.run_until(35);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30}));
}

TEST(Simulator, PeriodicCancelStops) {
  Simulator sim;
  int count = 0;
  EventHandle h = sim.schedule_periodic(10, [&] { ++count; });
  sim.run_until(25);
  EXPECT_EQ(count, 2);
  h.cancel();
  sim.run_until(100);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PeriodicCancelFromWithinCallback) {
  Simulator sim;
  int count = 0;
  EventHandle h;
  h = sim.schedule_periodic(10, [&] {
    if (++count == 3) h.cancel();
  });
  sim.run_until(1000);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ManyEventsStress) {
  Simulator sim;
  std::uint64_t sum = 0;
  for (int i = 0; i < 10000; ++i) {
    sim.schedule_at((i * 7919) % 100000, [&sum] { ++sum; });
  }
  sim.run_all();
  EXPECT_EQ(sum, 10000u);
}

}  // namespace
}  // namespace sora
