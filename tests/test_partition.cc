// Deterministic service-graph partitioner: shard assignment, balance,
// entry pinning, and the conservative-lookahead derivation (fails closed
// on zero-latency cross-shard edges).
#include "sim/partition.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sora::sim {
namespace {

PartitionNode node(std::string name, double weight, bool entry = false) {
  return PartitionNode{std::move(name), weight, entry};
}

TEST(Partition, EntryServicesPinToShardZero) {
  const std::vector<PartitionNode> nodes = {
      node("front", 1.0, /*entry=*/true),
      node("mid", 5.0),
      node("leaf", 5.0),
  };
  const PartitionResult r = partition_service_graph(nodes, {}, 3);
  ASSERT_TRUE(r.ok) << r.reason;
  EXPECT_EQ(r.assignment[0], 0);
}

TEST(Partition, DeterministicAcrossCalls) {
  const std::vector<PartitionNode> nodes = {
      node("front", 1.0, /*entry=*/true), node("a", 3.0), node("b", 3.0),
      node("c", 2.0),                     node("d", 7.0),
  };
  const std::vector<PartitionEdge> edges = {
      {0, 1, 100}, {0, 2, 100}, {1, 3, 100}, {2, 4, 100}};
  const PartitionResult first = partition_service_graph(nodes, edges, 3);
  const PartitionResult second = partition_service_graph(nodes, edges, 3);
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.assignment, second.assignment);
  EXPECT_EQ(first.lookahead, second.lookahead);
}

TEST(Partition, EqualWeightsTieBreakByName) {
  // Two permutation-identical graphs must place the same-named node on the
  // same shard: assignment keys on (weight desc, name asc), never on index.
  const std::vector<PartitionNode> ab = {node("e", 1.0, true), node("a", 2.0),
                                         node("b", 2.0)};
  const std::vector<PartitionNode> ba = {node("e", 1.0, true), node("b", 2.0),
                                         node("a", 2.0)};
  const PartitionResult r1 = partition_service_graph(ab, {}, 2);
  const PartitionResult r2 = partition_service_graph(ba, {}, 2);
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(r1.assignment[1], r2.assignment[2]);  // "a" in both graphs
  EXPECT_EQ(r1.assignment[2], r2.assignment[1]);  // "b" in both graphs
}

TEST(Partition, GreedyPlacementBalancesWeight) {
  const std::vector<PartitionNode> nodes = {
      node("front", 1.0, /*entry=*/true), node("heavy", 8.0),
      node("big", 7.0),                   node("small", 2.0),
      node("tiny", 1.0),
  };
  const PartitionResult r = partition_service_graph(nodes, {}, 2);
  ASSERT_TRUE(r.ok);
  double load[2] = {0.0, 0.0};
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ASSERT_GE(r.assignment[i], 0);
    ASSERT_LT(r.assignment[i], 2);
    load[r.assignment[i]] += nodes[i].weight;
  }
  // Total weight 19; LPT keeps the split within the heaviest item.
  EXPECT_LE(std::abs(load[0] - load[1]), 8.0);
  EXPECT_GT(load[0], 0.0);
  EXPECT_GT(load[1], 0.0);
}

TEST(Partition, LookaheadIsMinimumCrossShardEdgeLatency) {
  const std::vector<PartitionNode> nodes = {
      node("front", 1.0, /*entry=*/true), node("mid", 2.0), node("leaf", 1.0)};
  // mid lands on shard 1 (heaviest non-entry), leaf back on shard 0.
  const std::vector<PartitionEdge> edges = {{0, 1, 300}, {1, 2, 150}};
  const PartitionResult r = partition_service_graph(nodes, edges, 2);
  ASSERT_TRUE(r.ok) << r.reason;
  ASSERT_EQ(r.assignment[0], 0);
  ASSERT_EQ(r.assignment[1], 1);
  ASSERT_EQ(r.assignment[2], 0);
  EXPECT_EQ(r.lookahead, 150);
}

TEST(Partition, ZeroLatencyCrossShardEdgeFailsClosed) {
  const std::vector<PartitionNode> nodes = {
      node("front", 1.0, /*entry=*/true), node("mid", 2.0)};
  const std::vector<PartitionEdge> edges = {{0, 1, 0}};
  const PartitionResult r = partition_service_graph(nodes, edges, 2);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.assignment.empty());
  EXPECT_NE(r.reason.find("zero-latency"), std::string::npos) << r.reason;
}

TEST(Partition, ZeroLatencyEdgeWithinOneShardIsFine) {
  // Both endpoints are entries, pinned to shard 0 together: a zero-latency
  // edge that never crosses shards constrains no window.
  const std::vector<PartitionNode> nodes = {node("a", 1.0, /*entry=*/true),
                                            node("b", 1.0, /*entry=*/true)};
  const std::vector<PartitionEdge> edges = {{0, 1, 0}};
  const PartitionResult r = partition_service_graph(nodes, edges, 2);
  ASSERT_TRUE(r.ok) << r.reason;
  EXPECT_EQ(r.lookahead, PartitionResult::kNoCrossEdges);
}

TEST(Partition, SingleShardHasNoCrossEdges) {
  const std::vector<PartitionNode> nodes = {
      node("front", 1.0, /*entry=*/true), node("mid", 2.0)};
  const std::vector<PartitionEdge> edges = {{0, 1, 0}};  // zero ok: same shard
  const PartitionResult r = partition_service_graph(nodes, edges, 1);
  ASSERT_TRUE(r.ok) << r.reason;
  EXPECT_EQ(r.assignment, (std::vector<int>{0, 0}));
  EXPECT_EQ(r.lookahead, PartitionResult::kNoCrossEdges);
}

TEST(Partition, RejectsBadInputs) {
  const std::vector<PartitionNode> nodes = {node("a", 1.0, /*entry=*/true)};
  EXPECT_FALSE(partition_service_graph(nodes, {}, 0).ok);
  EXPECT_FALSE(partition_service_graph(nodes, {{0, 3, 100}}, 2).ok);
  EXPECT_FALSE(partition_service_graph(nodes, {{-1, 0, 100}}, 2).ok);
}

}  // namespace
}  // namespace sora::sim
