// Tests for the in-process tracer and span lifecycle.
#include "trace/tracer.h"

#include <gtest/gtest.h>

#include <vector>

namespace sora {
namespace {

TEST(Tracer, SingleSpanTrace) {
  Tracer tracer;
  std::vector<Trace> done;
  tracer.add_trace_listener([&](const Trace& t) { done.push_back(t); });

  const TraceId tid = tracer.begin_trace(3, 100);
  const SpanId root =
      tracer.start_span(tid, SpanId{}, ServiceId(1), InstanceId(7), 3, 100);
  EXPECT_EQ(tracer.open_traces(), 1u);
  tracer.finish_span(tid, root, 500);

  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(tracer.open_traces(), 0u);
  EXPECT_EQ(tracer.traces_completed(), 1u);
  const Trace& t = done.front();
  EXPECT_EQ(t.request_class, 3);
  EXPECT_EQ(t.start, 100);
  EXPECT_EQ(t.end, 500);
  EXPECT_EQ(t.response_time(), 400);
  ASSERT_EQ(t.spans.size(), 1u);
  EXPECT_EQ(t.root().service, ServiceId(1));
  EXPECT_EQ(t.root().instance, InstanceId(7));
  EXPECT_EQ(t.root().duration(), 400);
}

TEST(Tracer, NestedSpans) {
  Tracer tracer;
  std::vector<Trace> done;
  tracer.add_trace_listener([&](const Trace& t) { done.push_back(t); });

  const TraceId tid = tracer.begin_trace(0, 0);
  const SpanId root =
      tracer.start_span(tid, SpanId{}, ServiceId(0), InstanceId(0), 0, 0);
  const SpanId child =
      tracer.start_span(tid, root, ServiceId(1), InstanceId(1), 0, 10);
  tracer.span(tid, root).children.push_back(ChildCall{child, 0, 10, 0});
  tracer.finish_span(tid, child, 60);
  tracer.span(tid, root).children[0].returned = 60;
  tracer.span(tid, root).downstream_wait = 50;
  tracer.finish_span(tid, root, 100);

  ASSERT_EQ(done.size(), 1u);
  const Trace& t = done.front();
  ASSERT_EQ(t.spans.size(), 2u);
  EXPECT_EQ(t.spans[0].processing_time(), 50);  // 100 - 50 downstream
  EXPECT_EQ(t.spans[1].duration(), 50);
  EXPECT_EQ(t.spans[1].parent, root);
}

TEST(Tracer, SpanListenerFiresPerSpan) {
  Tracer tracer;
  std::vector<std::uint64_t> services;
  tracer.add_span_listener(
      [&](const Span& s) { services.push_back(s.service.value()); });

  const TraceId tid = tracer.begin_trace(0, 0);
  const SpanId root =
      tracer.start_span(tid, SpanId{}, ServiceId(10), InstanceId(0), 0, 0);
  const SpanId child =
      tracer.start_span(tid, root, ServiceId(20), InstanceId(0), 0, 5);
  tracer.finish_span(tid, child, 50);
  tracer.finish_span(tid, root, 90);

  // Child finishes before root; listener sees both in completion order.
  ASSERT_EQ(services.size(), 2u);
  EXPECT_EQ(services[0], 20u);
  EXPECT_EQ(services[1], 10u);
}

TEST(Tracer, ConcurrentTraces) {
  Tracer tracer;
  int completed = 0;
  tracer.add_trace_listener([&](const Trace&) { ++completed; });

  const TraceId a = tracer.begin_trace(0, 0);
  const TraceId b = tracer.begin_trace(1, 10);
  const SpanId ra =
      tracer.start_span(a, SpanId{}, ServiceId(0), InstanceId(0), 0, 0);
  const SpanId rb =
      tracer.start_span(b, SpanId{}, ServiceId(0), InstanceId(0), 1, 10);
  EXPECT_EQ(tracer.open_traces(), 2u);
  tracer.finish_span(b, rb, 20);
  EXPECT_EQ(completed, 1);
  tracer.finish_span(a, ra, 30);
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(tracer.open_traces(), 0u);
}

TEST(Tracer, SpanIdsAreUniqueAcrossTraces) {
  Tracer tracer;
  const TraceId a = tracer.begin_trace(0, 0);
  const TraceId b = tracer.begin_trace(0, 0);
  const SpanId s1 =
      tracer.start_span(a, SpanId{}, ServiceId(0), InstanceId(0), 0, 0);
  const SpanId s2 =
      tracer.start_span(b, SpanId{}, ServiceId(0), InstanceId(0), 0, 0);
  EXPECT_NE(s1, s2);
}

TEST(Tracer, TraceIdsMonotone) {
  Tracer tracer;
  const TraceId a = tracer.begin_trace(0, 0);
  const TraceId b = tracer.begin_trace(0, 0);
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace sora
