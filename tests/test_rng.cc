// Tests for the deterministic PRNG and its distributions.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sora {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng a(9), b(9);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
  // Parent and child produce different streams.
  Rng c(10);
  Rng fc = c.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c.next_u64() == fc.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeMoments) {
  Rng r(6);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng r(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng r(8);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, LognormalMeanCv) {
  Rng r(9);
  const int n = 400000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.lognormal_mean_cv(100.0, 0.5);
    ASSERT_GT(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 100.0, 1.0);
  EXPECT_NEAR(std::sqrt(var) / mean, 0.5, 0.02);
}

TEST(Rng, LognormalZeroCvIsDeterministic) {
  Rng r(10);
  EXPECT_DOUBLE_EQ(r.lognormal_mean_cv(42.0, 0.0), 42.0);
}

TEST(Rng, PoissonMean) {
  Rng r(11);
  const int n = 100000;
  double small_sum = 0.0, large_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    small_sum += static_cast<double>(r.poisson(4.0));
    large_sum += static_cast<double>(r.poisson(80.0));
  }
  EXPECT_NEAR(small_sum / n, 4.0, 0.05);
  EXPECT_NEAR(large_sum / n, 80.0, 0.5);
}

TEST(Rng, PoissonZeroMean) {
  Rng r(12);
  EXPECT_EQ(r.poisson(0.0), 0u);
  EXPECT_EQ(r.poisson(-1.0), 0u);
}

TEST(Rng, BoundedParetoWithinBounds) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.bounded_pareto(1.5, 1.0, 100.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r(14);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.uniform_int(7), 7u);
  }
}

}  // namespace
}  // namespace sora
