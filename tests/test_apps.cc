// Tests for the Sock Shop and Social Network topologies.
#include <gtest/gtest.h>

#include <set>

#include "apps/sock_shop.h"
#include "apps/social_network.h"
#include "svc/application.h"
#include "trace/critical_path.h"
#include "trace/tracer.h"
#include "trace/warehouse.h"

namespace sora {
namespace {

struct Fixture {
  Simulator sim;
  Tracer tracer;
  TraceWarehouse warehouse{100000};
  Application app;
  explicit Fixture(ApplicationConfig cfg, std::uint64_t seed = 1)
      : app(sim, tracer, std::move(cfg), seed) {
    warehouse.attach(tracer);
  }
};

TEST(SockShop, TopologyBuilds) {
  Fixture f(sock_shop::make_sock_shop());
  EXPECT_GE(f.app.services().size(), 11u);
  for (const char* name :
       {"front-end", "cart", "cart-db", "catalogue", "catalogue-db", "user",
        "user-db", "orders", "order-db", "payment", "shipping",
        "queue-master", "recommender"}) {
    EXPECT_NE(f.app.service(name), nullptr) << name;
  }
}

TEST(SockShop, ParamsAreApplied) {
  sock_shop::Params p;
  p.cart_cores = 4.0;
  p.cart_threads = 30;
  p.catalogue_db_connections = 15;
  Fixture f(sock_shop::make_sock_shop(p));
  EXPECT_DOUBLE_EQ(f.app.service("cart")->cpu_limit(), 4.0);
  EXPECT_EQ(f.app.service("cart")->entry_pool_size(), 30);
  EXPECT_EQ(f.app.service("catalogue")->edge_pool_size("catalogue-db"), 15);
}

TEST(SockShop, BrowseRequestTouchesCartAndCatalogue) {
  Fixture f(sock_shop::make_sock_shop());
  f.app.inject(sock_shop::kBrowse, [](SimTime) {});
  f.sim.run_all();
  ASSERT_EQ(f.warehouse.size(), 1u);
  std::set<std::string> visited;
  f.warehouse.for_each_in_window(0, INT64_MAX, [&](const Trace& t) {
    for (const Span& s : t.spans) visited.insert(f.app.service_name(s.service));
  });
  EXPECT_TRUE(visited.count("front-end"));
  EXPECT_TRUE(visited.count("cart"));
  EXPECT_TRUE(visited.count("cart-db"));
  EXPECT_TRUE(visited.count("catalogue"));
  EXPECT_TRUE(visited.count("catalogue-db"));
  EXPECT_FALSE(visited.count("orders"));
}

TEST(SockShop, CheckoutTouchesOrderPipeline) {
  Fixture f(sock_shop::make_sock_shop());
  f.app.inject(sock_shop::kCheckout, [](SimTime) {});
  f.sim.run_all();
  std::set<std::string> visited;
  f.warehouse.for_each_in_window(0, INT64_MAX, [&](const Trace& t) {
    for (const Span& s : t.spans) visited.insert(f.app.service_name(s.service));
  });
  for (const char* name : {"orders", "payment", "shipping", "queue-master",
                           "order-db", "user", "cart"}) {
    EXPECT_TRUE(visited.count(name)) << name;
  }
}

TEST(SockShop, CriticalPathRunsThroughCartOrCatalogue) {
  Fixture f(sock_shop::make_sock_shop());
  for (int i = 0; i < 20; ++i) {
    f.sim.schedule_at(i * msec(20), [&f] {
      f.app.inject(sock_shop::kBrowse, [](SimTime) {});
    });
  }
  f.sim.run_all();
  int cart_paths = 0, catalogue_paths = 0;
  f.warehouse.for_each_in_window(0, INT64_MAX, [&](const Trace& t) {
    const CriticalPath cp = extract_critical_path(t);
    if (cp.contains(f.app.service("cart")->id())) ++cart_paths;
    if (cp.contains(f.app.service("catalogue")->id())) ++catalogue_paths;
  });
  // Every browse critical path goes through one of the two branches
  // (Figure 5 of the paper).
  EXPECT_EQ(cart_paths + catalogue_paths, 20);
}

TEST(SockShop, ConservationUnderLoad) {
  Fixture f(sock_shop::make_sock_shop(), 7);
  int completed = 0;
  for (int i = 0; i < 300; ++i) {
    f.sim.schedule_at(i * msec(5), [&, i] {
      f.app.inject(i % 3, [&](SimTime) { ++completed; });
    });
  }
  f.sim.run_all();
  EXPECT_EQ(completed, 300);
  EXPECT_EQ(f.app.in_flight(), 0u);
  EXPECT_EQ(f.tracer.open_traces(), 0u);
}

TEST(SocialNetwork, TopologyBuilds) {
  Fixture f(social_network::make_social_network());
  EXPECT_GE(f.app.services().size(), 20u);
  for (const char* name :
       {"nginx-front-end", "home-timeline", "post-storage",
        "post-storage-mongo", "compose-post", "social-graph", "text",
        "user-timeline", "write-home-timeline", "unique-id"}) {
    EXPECT_NE(f.app.service(name), nullptr) << name;
  }
}

TEST(SocialNetwork, HomeTimelineHasClientPoolKnob) {
  social_network::Params p;
  p.post_storage_connections = 10;
  Fixture f(social_network::make_social_network(p));
  EXPECT_EQ(f.app.service("home-timeline")->edge_pool_size("post-storage"), 10);
  EXPECT_GE(f.app.service("home-timeline")->edge_index_of("post-storage"), 0);
}

TEST(SocialNetwork, ReadPathTouchesPostStorage) {
  Fixture f(social_network::make_social_network());
  f.app.inject(social_network::kReadTimelineLight, [](SimTime) {});
  f.sim.run_all();
  std::set<std::string> visited;
  f.warehouse.for_each_in_window(0, INT64_MAX, [&](const Trace& t) {
    for (const Span& s : t.spans) visited.insert(f.app.service_name(s.service));
  });
  for (const char* name : {"nginx-front-end", "home-timeline",
                           "home-timeline-redis", "post-storage",
                           "post-storage-mongo"}) {
    EXPECT_TRUE(visited.count(name)) << name;
  }
  EXPECT_FALSE(visited.count("compose-post"));
}

TEST(SocialNetwork, ComposeFansOut) {
  Fixture f(social_network::make_social_network());
  f.app.inject(social_network::kComposePost, [](SimTime) {});
  f.sim.run_all();
  std::set<std::string> visited;
  f.warehouse.for_each_in_window(0, INT64_MAX, [&](const Trace& t) {
    for (const Span& s : t.spans) visited.insert(f.app.service_name(s.service));
  });
  for (const char* name :
       {"compose-post", "unique-id", "media", "user", "text", "url-shorten",
        "user-tag", "post-storage", "user-timeline", "write-home-timeline",
        "social-graph"}) {
    EXPECT_TRUE(visited.count(name)) << name;
  }
}

TEST(SocialNetwork, HeavyRequestsCostMore) {
  // Same call graph, heavier computation: heavy read must be slower.
  Fixture f(social_network::make_social_network(), 5);
  SimTime light_rt = 0, heavy_rt = 0;
  f.app.inject(social_network::kReadTimelineLight,
               [&](SimTime rt) { light_rt = rt; });
  f.sim.run_all();
  f.app.inject(social_network::kReadTimelineHeavy,
               [&](SimTime rt) { heavy_rt = rt; });
  f.sim.run_all();
  EXPECT_GT(heavy_rt, light_rt * 2);
}

TEST(SocialNetwork, PostStorageReplicasParam) {
  social_network::Params p;
  p.post_storage_replicas = 3;
  Fixture f(social_network::make_social_network(p));
  EXPECT_EQ(f.app.service("post-storage")->active_replicas(), 3);
}

}  // namespace
}  // namespace sora
