// Tests for the log-bucketed latency histogram and the linear histogram.
#include "common/histogram.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace sora {
namespace {

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), kNoSampleTime);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram h;
  h.record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 1234.0, 1234.0 * 0.02);
}

TEST(LatencyHistogram, SmallValuesExact) {
  // Values below 2^sub_bits are stored exactly.
  LatencyHistogram h(6);
  for (int i = 0; i < 64; ++i) h.record(i);
  EXPECT_EQ(h.percentile(0), 0);
  EXPECT_EQ(h.percentile(100), 63);
  EXPECT_EQ(h.count_at_or_below(31), 32u);
}

TEST(LatencyHistogram, PercentileRelativeError) {
  LatencyHistogram h(6);
  Rng rng(42);
  std::vector<double> raw;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.lognormal_mean_cv(50000.0, 1.0);
    raw.push_back(v);
    h.record(static_cast<SimTime>(v));
  }
  for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = percentile(raw, p);
    const double approx = static_cast<double>(h.percentile(p));
    EXPECT_NEAR(approx, exact, exact * 0.05) << "p=" << p;
  }
}

TEST(LatencyHistogram, MeanMatches) {
  LatencyHistogram h;
  h.record(100);
  h.record(300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(LatencyHistogram, CountAtOrBelow) {
  LatencyHistogram h;
  h.record(msec(10));
  h.record(msec(20));
  h.record(msec(400));
  EXPECT_EQ(h.count_at_or_below(msec(50)), 2u);
  EXPECT_EQ(h.count_at_or_below(msec(400)), 3u);
  EXPECT_EQ(h.count_at_or_below(-1), 0u);
}

TEST(LatencyHistogram, NegativeClampedToZero) {
  LatencyHistogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.count_at_or_below(0), 1u);
}

TEST(LatencyHistogram, MergeCombines) {
  LatencyHistogram a, b;
  a.record(100);
  b.record(1000);
  b.record(2000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 100);
  EXPECT_EQ(a.max(), 2000);
}

TEST(LatencyHistogram, MergeIntoEmpty) {
  LatencyHistogram a, b;
  b.record(5000);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 5000);
  EXPECT_EQ(a.max(), 5000);
}

TEST(LatencyHistogram, Reset) {
  LatencyHistogram h;
  h.record(123456);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(99), kNoSampleTime);
}

TEST(LatencyHistogram, LargeValues) {
  LatencyHistogram h;
  const SimTime big = sec(3600) * 24;  // a day in usec
  h.record(big);
  EXPECT_NEAR(static_cast<double>(h.percentile(100)),
              static_cast<double>(big), static_cast<double>(big) * 0.02);
}

// Percentile is monotone in p for arbitrary data.
class HistMonotone : public ::testing::TestWithParam<int> {};

TEST_P(HistMonotone, PercentileMonotone) {
  LatencyHistogram h;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 5000; ++i) {
    h.record(static_cast<SimTime>(rng.exponential(300000.0)));
  }
  SimTime prev = -1;
  for (double p = 0; p <= 100.0; p += 5.0) {
    const SimTime q = h.percentile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
  EXPECT_LE(h.percentile(100), h.max());
  EXPECT_GE(h.percentile(0), h.min());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistMonotone, ::testing::Range(1, 7));

TEST(LinearHistogram, BucketsAndClamping) {
  LinearHistogram h(10.0, 5);  // [0,50) in 5 buckets
  h.record(0.0);
  h.record(9.99);
  h.record(10.0);
  h.record(49.0);
  h.record(500.0);  // clamps into last bucket
  h.record(-3.0);   // clamps to 0
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket_count(0), 3u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_center(0), 5.0);
  EXPECT_DOUBLE_EQ(h.bucket_center(4), 45.0);
}

TEST(LinearHistogram, Reset) {
  LinearHistogram h(1.0, 3);
  h.record(1.5);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
}

}  // namespace
}  // namespace sora
