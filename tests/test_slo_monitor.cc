// Tests for the streaming SLO monitor: burn-rate math, multi-window episode
// detection, per-entity isolation, and decision-log emission.
#include "obs/slo_monitor.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/decision_log.h"

namespace sora::obs {
namespace {

SloMonitorOptions fast_options() {
  SloMonitorOptions o;
  o.target = 0.9;  // 10% error budget, easy numbers
  o.fast_window = sec(10);
  o.slow_window = sec(30);
  o.burn_threshold = 2.0;
  o.bucket = sec(1);
  return o;
}

TEST(SloMonitor, GoodRatioTracksOutcomes) {
  SloMonitor mon(fast_options());
  for (int i = 0; i < 9; ++i) mon.record("e2e", sec(1), true);
  mon.record("e2e", sec(1), false);
  EXPECT_DOUBLE_EQ(mon.good_ratio("e2e"), 0.9);
  EXPECT_EQ(mon.total("e2e"), 10u);
  // Unknown entity: nothing recorded -> perfect ratio, zero total.
  EXPECT_DOUBLE_EQ(mon.good_ratio("nope"), 1.0);
  EXPECT_EQ(mon.total("nope"), 0u);
}

TEST(SloMonitor, BurnRateMath) {
  SloMonitor mon(fast_options());
  // 40% bad over the window with a 10% budget -> burn 4.0.
  for (SimTime t = sec(1); t <= sec(10); t += sec(1)) {
    for (int i = 0; i < 6; ++i) mon.record("e2e", t, true);
    for (int i = 0; i < 4; ++i) mon.record("e2e", t, false);
  }
  mon.evaluate(sec(10));
  const TimeSeriesSink sink = mon.burn_timeline("e2e");
  ASSERT_EQ(sink.num_rows(), 1u);
  EXPECT_NEAR(sink.value(0, 0), 0.6, 1e-9);  // good_ratio_fast
  EXPECT_NEAR(sink.value(0, 1), 4.0, 1e-9);  // fast_burn
  EXPECT_NEAR(sink.value(0, 2), 4.0, 1e-9);  // slow_burn
  EXPECT_NEAR(sink.value(0, 3), 1.0, 1e-9);  // in_episode
}

TEST(SloMonitor, EpisodeOpensAndCloses) {
  SloMonitor mon(fast_options());
  // Healthy for 20s, outage (all bad) for 15s, healthy again.
  SimTime t = 0;
  for (; t < sec(20); t += sec(1)) {
    for (int i = 0; i < 10; ++i) mon.record("e2e", t, true);
    mon.evaluate(t);
  }
  EXPECT_TRUE(mon.episodes().empty());
  const SimTime outage_start = t;
  for (; t < sec(35); t += sec(1)) {
    for (int i = 0; i < 10; ++i) mon.record("e2e", t, false);
    mon.evaluate(t);
  }
  ASSERT_EQ(mon.episodes().size(), 1u);
  EXPECT_TRUE(mon.episodes()[0].open);
  // Recovery: the fast window must fully drain before the episode closes.
  for (; t < sec(60); t += sec(1)) {
    for (int i = 0; i < 10; ++i) mon.record("e2e", t, true);
    mon.evaluate(t);
  }
  ASSERT_EQ(mon.episodes().size(), 1u);
  const ViolationEpisode& ep = mon.episodes()[0];
  EXPECT_FALSE(ep.open);
  EXPECT_EQ(ep.entity, "e2e");
  EXPECT_GE(ep.start, outage_start);
  EXPECT_GT(ep.duration(), 0);
  EXPECT_GT(ep.peak_fast_burn, 2.0);
  EXPECT_GT(ep.bad_requests, 0u);
  EXPECT_GE(ep.requests, ep.bad_requests);
}

TEST(SloMonitor, SlowWindowSuppressesBlip) {
  // A 2-second blip saturates the fast window but not the 30s slow window:
  // no episode (the multiwindow rule's whole point).
  SloMonitor mon(fast_options());
  SimTime t = 0;
  for (; t < sec(28); t += sec(1)) {
    for (int i = 0; i < 10; ++i) mon.record("e2e", t, true);
    mon.evaluate(t);
  }
  for (; t < sec(30); t += sec(1)) {
    for (int i = 0; i < 10; ++i) mon.record("e2e", t, false);
    mon.evaluate(t);
  }
  // fast burn = (20/100)/0.1 = 2.0 at threshold... make the check explicit:
  // slow burn = (20/300)/0.1 ~ 0.67 < 2.0, so no episode may open.
  EXPECT_TRUE(mon.episodes().empty());
}

TEST(SloMonitor, FinishClosesOpenEpisodes) {
  SloMonitor mon(fast_options());
  for (SimTime t = 0; t < sec(30); t += sec(1)) {
    for (int i = 0; i < 10; ++i) mon.record("e2e", t, false);
    mon.evaluate(t);
  }
  ASSERT_EQ(mon.episodes().size(), 1u);
  EXPECT_TRUE(mon.episodes()[0].open);
  mon.finish(sec(30));
  EXPECT_FALSE(mon.episodes()[0].open);
  EXPECT_EQ(mon.episodes()[0].end, sec(30));
}

TEST(SloMonitor, EntitiesAreIndependent) {
  SloMonitor mon(fast_options());
  for (SimTime t = 0; t < sec(40); t += sec(1)) {
    for (int i = 0; i < 10; ++i) mon.record("cart", t, false);
    for (int i = 0; i < 10; ++i) mon.record("front", t, true);
    mon.evaluate(t);
  }
  mon.finish(sec(40));
  EXPECT_FALSE(mon.episodes_for("cart").empty());
  EXPECT_TRUE(mon.episodes_for("front").empty());
  const auto names = mon.entities();
  EXPECT_EQ(names.size(), 2u);
}

TEST(SloMonitor, EpisodesAppendToDecisionLog) {
  DecisionLog log;
  SloMonitor mon(fast_options());
  mon.set_decision_log(&log);
  SimTime t = 0;
  for (; t < sec(30); t += sec(1)) {
    for (int i = 0; i < 10; ++i) mon.record("e2e", t, false);
    mon.evaluate(t);
  }
  mon.finish(t);
  const auto starts = log.by_action("episode_start");
  const auto ends = log.by_action("episode_end");
  ASSERT_EQ(starts.size(), 1u);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(starts[0]->controller, "slo-monitor");
  EXPECT_EQ(starts[0]->target, "e2e");
  EXPECT_GT(starts[0]->fast_burn, 2.0);
  EXPECT_GT(ends[0]->peak_burn, 0.0);
  EXPECT_GT(ends[0]->episode_duration, 0);

  std::ostringstream os;
  log.write_jsonl(os);
  EXPECT_NE(os.str().find("\"fast_burn\""), std::string::npos);
  EXPECT_NE(os.str().find("\"episode_duration_s\""), std::string::npos);
}

TEST(SloMonitor, BurnTimelineUnknownEntityIsEmpty) {
  SloMonitor mon(fast_options());
  const TimeSeriesSink sink = mon.burn_timeline("ghost");
  EXPECT_EQ(sink.num_rows(), 0u);
}

}  // namespace
}  // namespace sora::obs
