// Controller conformance suite: every control plane, one contract.
//
// Parameterized over all seven controllers (Sora, ConScale, FIRM, HPA, VPA,
// Autothrottle, LSRAM), each wired into the same chain topology through the
// Experiment harness. The suite pins the shared Controller contract:
// byte-identical reruns per seed, no actions before the first control
// period, bounded actions per round, graceful stalled rounds and topology
// changes, and schema-valid decision records. A final non-parameterized
// test pins the base-class reason guard every controller inherits.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "harness/experiment.h"
#include "metrics/knob.h"
#include "test_util.h"

namespace sora {
namespace {

constexpr SimTime kDuration = sec(50);
constexpr SimTime kSla = msec(8);

struct Rig {
  std::unique_ptr<Experiment> exp;
  Controller* ctl = nullptr;
};

Rig make_rig(const std::string& name, std::uint64_t seed,
             SimTime duration = kDuration) {
  ExperimentConfig ecfg;
  ecfg.seed = seed;
  ecfg.duration = duration;
  ecfg.sla = kSla;
  Rig rig;
  rig.exp = std::make_unique<Experiment>(testutil::chain_app(0.4), ecfg);
  Experiment& exp = *rig.exp;
  exp.closed_loop(16, msec(10), RequestMix(0));

  if (name == "sora" || name == "conscale") {
    SoraFrameworkOptions so =
        name == "conscale" ? make_conscale_options() : SoraFrameworkOptions{};
    so.sla = kSla;
    auto& fw = exp.add_sora(so);
    fw.manage(ResourceKnob::entry(exp.app().service("mid")));
    rig.ctl = &fw;
  } else if (name == "firm") {
    FirmOptions fo;
    fo.slo_latency = kSla;
    auto& firm = exp.add_firm(fo);
    firm.manage(exp.app().service("mid"));
    rig.ctl = &firm;
  } else if (name == "k8s-hpa") {
    auto& hpa = exp.add_hpa();
    hpa.manage(exp.app().service("mid"));
    rig.ctl = &hpa;
  } else if (name == "k8s-vpa") {
    auto& vpa = exp.add_vpa();
    vpa.manage(exp.app().service("mid"));
    rig.ctl = &vpa;
  } else if (name == "autothrottle") {
    AutothrottleOptions ao;
    ao.period = sec(15);
    ao.budget = kSla;
    ao.min_spans = 5;
    auto& at = exp.add_autothrottle(ao);
    at.manage(exp.app().service("mid"));
    rig.ctl = &at;
  } else if (name == "lsram") {
    LsramOptions lo;
    lo.span_slo = msec(4);
    lo.min_spans = 5;
    auto& ls = exp.add_lsram(lo);
    ls.manage(ResourceKnob::entry(exp.app().service("mid")));
    rig.ctl = &ls;
  }
  EXPECT_NE(rig.ctl, nullptr) << "unknown controller: " << name;
  return rig;
}

std::string log_bytes(const Experiment& exp) {
  std::ostringstream os;
  exp.export_decision_log(os);
  return os.str();
}

class ControllerConformance : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(
    AllControllers, ControllerConformance,
    ::testing::Values("sora", "conscale", "firm", "k8s-hpa", "k8s-vpa",
                      "autothrottle", "lsram"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_P(ControllerConformance, ReportsNameAndBoundedContract) {
  Rig rig = make_rig(GetParam(), 42);
  EXPECT_EQ(std::string(rig.ctl->name()), GetParam());
  EXPECT_GT(rig.ctl->max_actions_per_round(), 0u);
  const ControllerNeeds needs = rig.ctl->needs();
  // Every controller in this suite consumes at least one telemetry feed.
  EXPECT_TRUE(needs.scatter_samples || needs.traces || needs.metrics_window);
}

TEST_P(ControllerConformance, ByteIdenticalRerunsPerSeed) {
  for (std::uint64_t seed : {7ull, 42ull}) {
    Rig first = make_rig(GetParam(), seed);
    first.exp->run();
    Rig second = make_rig(GetParam(), seed);
    second.exp->run();
    EXPECT_EQ(log_bytes(*first.exp), log_bytes(*second.exp))
        << GetParam() << " decision log diverged across reruns, seed "
        << seed;
    EXPECT_EQ(first.ctl->rounds(), second.ctl->rounds());
    EXPECT_EQ(first.ctl->actions().size(), second.ctl->actions().size());
  }
}

TEST_P(ControllerConformance, NoActionsBeforeWarmup) {
  Rig rig = make_rig(GetParam(), 42);
  rig.exp->run();
  EXPECT_GE(rig.ctl->rounds(), 2u);
  for (const ControlAction& a : rig.ctl->actions()) {
    EXPECT_GE(a.at, rig.ctl->period())
        << GetParam() << " acted before the first control period";
    EXPECT_GE(a.round, 1u);
    EXPECT_FALSE(a.reason.empty());
  }
}

TEST_P(ControllerConformance, ActionsPerRoundStayBounded) {
  Rig rig = make_rig(GetParam(), 42);
  rig.exp->run();
  std::map<std::uint64_t, std::size_t> per_round;
  for (const ControlAction& a : rig.ctl->actions()) ++per_round[a.round];
  for (const auto& [round, count] : per_round) {
    EXPECT_LE(count, rig.ctl->max_actions_per_round())
        << GetParam() << " emitted " << count << " actions in round "
        << round;
  }
}

TEST_P(ControllerConformance, StalledRoundsAreGracefulAndAudited) {
  Rig rig = make_rig(GetParam(), 42);
  // Stall [20s, 35s): the 30s round is skipped, 15s and 45s run normally.
  FaultPlan plan;
  FaultEvent ev;
  ev.kind = FaultKind::kControlStall;
  ev.at = sec(20);
  ev.duration = sec(15);
  plan.add(ev);
  rig.exp->enable_faults(plan);
  rig.exp->run();

  int stalled_records = 0;
  for (const auto& rec : rig.exp->decision_log().records()) {
    if (rec.controller == GetParam() && rec.action == "stalled") {
      ++stalled_records;
      EXPECT_FALSE(rec.reason.empty());
      EXPECT_EQ(rec.fault_kind, "control_stall");
    }
  }
  EXPECT_GE(stalled_records, 1) << GetParam() << " left no stall audit trail";
  // Rounds kept counting through the stall (15s, 30s, 45s at minimum)...
  EXPECT_GE(rig.ctl->rounds(), 3u);
  // ...but no action landed inside the stall window.
  for (const ControlAction& a : rig.ctl->actions()) {
    EXPECT_FALSE(a.at >= sec(20) && a.at < sec(35))
        << GetParam() << " acted while stalled, at=" << a.at;
  }
}

TEST_P(ControllerConformance, TopologyChangeMidRunIsGraceful) {
  Rig rig = make_rig(GetParam(), 42);
  rig.exp->run_until(sec(20));
  const std::uint64_t rounds_before = rig.ctl->rounds();
  rig.ctl->on_topology_changed(rig.exp->app().service("mid"),
                               "instance crash");
  rig.exp->run_until(kDuration);
  EXPECT_GT(rig.ctl->rounds(), rounds_before)
      << GetParam() << " stopped running rounds after a topology change";
  for (const auto& rec : rig.exp->decision_log().records()) {
    if (rec.controller != GetParam()) continue;
    EXPECT_FALSE(rec.action.empty());
    EXPECT_FALSE(rec.reason.empty());
  }
}

TEST_P(ControllerConformance, DecisionRecordsAreSchemaValid) {
  Rig rig = make_rig(GetParam(), 42);
  rig.exp->run();
  int own_records = 0;
  for (const auto& rec : rig.exp->decision_log().records()) {
    if (rec.controller != GetParam()) continue;
    ++own_records;
    EXPECT_FALSE(rec.action.empty()) << GetParam() << " record without action";
    EXPECT_FALSE(rec.reason.empty()) << GetParam() << " record without reason";
    EXPECT_GE(rec.round, 1u);
    EXPECT_GE(rec.at, rig.ctl->period());
  }
  EXPECT_GT(own_records, 0) << GetParam() << " appended no decision records";
}

// -- base-class reason guard (the unified VPA/HPA vs Sora/FIRM path) ---------

class BareController : public Controller {
 public:
  using Controller::Controller;
  const char* name() const override { return "bare"; }
  ControllerNeeds needs() const override { return {}; }
  std::size_t max_actions_per_round() const override { return 1; }

 protected:
  std::vector<ControlAction> decide(SimTime) override {
    obs::ControlDecisionRecord rec;
    rec.action = "hold";
    record_decision(rec);  // no reason on purpose
    ControlAction a;
    a.kind = ControlAction::Kind::kPoolResize;
    a.target = "svc/threads";
    return {a};  // no reason on purpose
  }
};

TEST(ControllerReasonGuard, EmptyReasonsGetTheSharedDefault) {
  Simulator sim;
  obs::DecisionLog log;
  BareController ctl(sim, sec(1));
  ctl.set_decision_log(&log);
  const auto actions = ctl.round();

  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].reason, "no rationale produced");
  EXPECT_EQ(actions[0].round, 1u);
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].controller, "bare");
  EXPECT_EQ(log.records()[0].reason, "no rationale produced");
  EXPECT_EQ(log.records()[0].round, 1u);
}

TEST(ControllerReasonGuard, StallRecordIsAppendedByTheBase) {
  Simulator sim;
  obs::DecisionLog log;
  BareController ctl(sim, sec(1));
  ctl.set_decision_log(&log);
  ctl.set_stalled(true);
  EXPECT_TRUE(ctl.round().empty());
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].action, "stalled");
  EXPECT_EQ(log.records()[0].fault_kind, "control_stall");
  EXPECT_EQ(ctl.rounds(), 1u);
  ctl.set_stalled(false);
  EXPECT_EQ(ctl.round().size(), 1u);
  EXPECT_EQ(ctl.rounds(), 2u);
}

}  // namespace
}  // namespace sora
