// Scale guard for the localization phase: the per-round cost must stay
// O(services + traces·depth) as the service count sweeps 50 -> 5000, and
// the top-k ranking must agree with the full sort. Guards count ops
// (LocalizerRoundCost), not wall-clock, so they hold under sanitizers and
// on loaded CI machines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/localization.h"
#include "harness/experiment.h"
#include "topo/synth.h"

namespace sora {
namespace {

topo::Topology make_topology(int services) {
  topo::TopologyConfig cfg;
  cfg.seed = 5;
  cfg.services = services;
  cfg.tenants = 2;
  cfg.entries_per_tenant = 1;
  return topo::synthesize(cfg);
}

// An idle round (no traffic) is a pure function of the service count:
// one utilization scan plus the ranking pass. This is the floor every
// control round pays at planet scale, so it must stay linear.
TEST(LocalizerScaleGuard, IdleRoundCostIsLinearInServices) {
  const std::vector<int> sweep = {50, 500, 2000, 5000};
  std::vector<double> per_service;
  for (int services : sweep) {
    const topo::Topology topo = make_topology(services);
    ExperimentConfig ecfg;
    ecfg.duration = sec(1);
    Experiment exp(topo.app, ecfg);
    LocalizerOptions opts;
    opts.top_k = 32;
    CriticalServiceLocalizer loc(exp.app(), exp.warehouse(), opts);
    loc.begin_window();
    (void)loc.analyze();
    const LocalizerRoundCost& cost = loc.last_round_cost();
    EXPECT_EQ(cost.services_scanned, static_cast<std::size_t>(services));
    EXPECT_EQ(cost.traces_folded, 0u);
    EXPECT_EQ(cost.hops_folded, 0u);
    per_service.push_back(static_cast<double>(cost.total()) / services);
  }
  // Linear scaling: ops per service must not grow with the fleet. Allow a
  // small constant-overhead bump at the low end by comparing against the
  // smallest sweep point.
  for (double ratio : per_service) {
    EXPECT_LE(ratio, per_service.front() * 1.5 + 8.0)
        << "per-service round cost grew super-linearly";
  }
}

// With traffic, the extra cost is the streaming fold: one op per trace
// plus one per critical-path hop. Nothing may scale with
// services × traces.
TEST(LocalizerScaleGuard, LoadedRoundCostTracksTracesNotProduct) {
  const topo::Topology topo = make_topology(200);
  ExperimentConfig ecfg;
  ecfg.duration = sec(20);
  ecfg.seed = 9;
  Experiment exp(topo.app, ecfg);
  LocalizerOptions opts;
  opts.top_k = 32;
  CriticalServiceLocalizer loc(exp.app(), exp.warehouse(), opts);
  loc.begin_window();
  // Modest rate: the synthesized fan-out trees make each request expensive,
  // and an overloaded graph completes no traces inside the window.
  for (int t = 0; t < 2; ++t) {
    exp.open_loop(WorkloadTrace(TraceShape::kSlowlyVarying, sec(20), 1.0, 1.0),
                  topo.tenant_mix(t));
  }
  exp.run();
  (void)loc.analyze();
  const LocalizerRoundCost& cost = loc.last_round_cost();
  EXPECT_GT(cost.traces_folded, 20u);
  EXPECT_GT(cost.hops_folded, cost.traces_folded);
  // Fold cost is per-trace (bounded by max path length), never per-service:
  // with 200 services a services × traces blowup would exceed this bound by
  // orders of magnitude.
  EXPECT_LT(cost.hops_folded, cost.traces_folded * 64u);
  // Ranking stays O(n log k) with top-k enabled.
  const double n = 200.0;
  EXPECT_LT(static_cast<double>(cost.sort_comparisons),
            8.0 * n * std::log2(64.0));
}

// Top-k reporting is a truncation of the full sort: same verdict, and the
// retained entries are exactly the k best under (pcc desc, id asc).
TEST(LocalizerScaleGuard, TopKAgreesWithFullSort) {
  const topo::Topology topo = make_topology(120);
  ExperimentConfig ecfg;
  ecfg.duration = sec(20);
  ecfg.seed = 13;
  Experiment exp(topo.app, ecfg);
  LocalizerOptions full_opts;  // top_k = 0: historical full sort
  LocalizerOptions topk_opts;
  topk_opts.top_k = 8;
  CriticalServiceLocalizer full(exp.app(), exp.warehouse(), full_opts);
  CriticalServiceLocalizer topk(exp.app(), exp.warehouse(), topk_opts);
  full.begin_window();
  topk.begin_window();
  for (int t = 0; t < 2; ++t) {
    exp.open_loop(WorkloadTrace(TraceShape::kSlowlyVarying, sec(20), 6.0,
                                12.0),
                  topo.tenant_mix(t));
  }
  exp.run();
  const CriticalServiceReport a = full.analyze();
  const CriticalServiceReport b = topk.analyze();

  // Verdicts are computed before ranking and must be identical.
  EXPECT_EQ(a.critical, b.critical);
  EXPECT_EQ(a.by_utilization, b.by_utilization);
  EXPECT_EQ(a.by_correlation, b.by_correlation);
  EXPECT_EQ(a.traces_analyzed, b.traces_analyzed);
  ASSERT_TRUE(a.critical.valid());

  // Expected top-k: the full report re-ranked with the top-k comparator.
  std::vector<ServiceDiagnostics> expect = a.services;
  std::sort(expect.begin(), expect.end(),
            [](const ServiceDiagnostics& x, const ServiceDiagnostics& y) {
              if (x.pcc != y.pcc) return x.pcc > y.pcc;
              return x.service.value() < y.service.value();
            });
  ASSERT_GE(b.services.size(), 8u);
  for (std::size_t i = 0; i < 8u; ++i) {
    EXPECT_EQ(b.services[i].service, expect[i].service) << "rank " << i;
    EXPECT_DOUBLE_EQ(b.services[i].pcc, expect[i].pcc) << "rank " << i;
  }
  // The critical service is always present in the truncated report.
  const bool has_critical =
      std::any_of(b.services.begin(), b.services.end(),
                  [&](const ServiceDiagnostics& d) {
                    return d.service == b.critical;
                  });
  EXPECT_TRUE(has_critical);

  // The truncation cuts the ranking work: strictly fewer comparisons than
  // the full sort on the same window.
  EXPECT_LT(topk.last_round_cost().sort_comparisons,
            full.last_round_cost().sort_comparisons);
}

}  // namespace
}  // namespace sora
