// Tests for the Concurrency Adapter: apply, clamp, explore, guardrails.
#include "core/adapter.h"

#include <gtest/gtest.h>

#include "svc/application.h"
#include "test_util.h"
#include "trace/tracer.h"

namespace sora {
namespace {

struct Fixture {
  Simulator sim;
  Tracer tracer;
  Application app;
  explicit Fixture(ApplicationConfig cfg)
      : app(sim, tracer, std::move(cfg), 1) {}
};

ConcurrencyEstimate valid_estimate(int recommended) {
  ConcurrencyEstimate est;
  est.valid = true;
  est.recommended = recommended;
  est.knee_concurrency = recommended;
  return est;
}

ConcurrencyEstimate invalid_estimate() {
  ConcurrencyEstimate est;
  est.failure = "no knee detected";
  return est;
}

TEST(Adapter, AppliesGrowthImmediately) {
  Fixture f(testutil::single_service(2.0, 5));
  ConcurrencyAdapter adapter;
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  const auto a = adapter.adapt(knob, valid_estimate(12), 3.0, sec(1));
  EXPECT_EQ(a.type, AdaptAction::Type::kApplied);
  EXPECT_EQ(a.old_size, 5);
  // Headroom: ceil(12 * 1.2 + 1) = 16.
  EXPECT_EQ(a.new_size, 16);
  EXPECT_EQ(knob.current_size(), 16);
  EXPECT_EQ(adapter.history().size(), 1u);
}

TEST(Adapter, ShrinkNeedsConfirmation) {
  Fixture f(testutil::single_service(2.0, 20));
  AdapterOptions opts;
  opts.shrink_confirmations = 2;
  ConcurrencyAdapter adapter(opts);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  // First shrink verdict: deferred.
  auto a = adapter.adapt(knob, valid_estimate(8), 10.0, sec(1));
  EXPECT_EQ(a.type, AdaptAction::Type::kNone);
  EXPECT_EQ(knob.current_size(), 20);
  // Second consecutive: applied (with headroom: ceil(8 * 1.2 + 1) = 11).
  a = adapter.adapt(knob, valid_estimate(8), 10.0, sec(2));
  EXPECT_EQ(a.type, AdaptAction::Type::kApplied);
  EXPECT_EQ(knob.current_size(), 11);
}

TEST(Adapter, ShrinkConfirmationResetByInvalidEstimate) {
  Fixture f(testutil::single_service(2.0, 20));
  ConcurrencyAdapter adapter;
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  adapter.adapt(knob, valid_estimate(8), 5.0, sec(1));     // pending
  adapter.adapt(knob, invalid_estimate(), 5.0, sec(2));    // resets
  const auto a = adapter.adapt(knob, valid_estimate(8), 5.0, sec(3));
  EXPECT_EQ(a.type, AdaptAction::Type::kNone);  // pending again, not applied
  EXPECT_EQ(knob.current_size(), 20);
}

TEST(Adapter, ClampsToBounds) {
  Fixture f(testutil::single_service(2.0, 5));
  AdapterOptions opts;
  opts.min_size = 2;
  opts.max_size = 50;
  ConcurrencyAdapter adapter(opts);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  auto a = adapter.adapt(knob, valid_estimate(500), 3.0, sec(1));
  EXPECT_EQ(a.new_size, 50);
  // Shrink below min clamps to min (two rounds for confirmation).
  // ceil(1 * 1.2 + 1) = 3 > min_size, so push the floor with min_size 3.
  adapter.adapt(knob, valid_estimate(1), 3.0, sec(2));
  a = adapter.adapt(knob, valid_estimate(1), 3.0, sec(3));
  EXPECT_EQ(a.new_size, 3);
}

TEST(Adapter, DividesAcrossReplicas) {
  Fixture f(testutil::single_service(2.0, 5));
  f.app.service("svc")->scale_replicas(4);
  ConcurrencyAdapter adapter;
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  const auto a = adapter.adapt(knob, valid_estimate(22), 3.0, sec(1));
  // ceil((22 * 1.2 + 1) / 4) = 7 per replica.
  EXPECT_EQ(a.new_size, 7);
  EXPECT_EQ(knob.total_capacity(), 28);
}

TEST(Adapter, ExploresWhenSaturatedWithoutEstimate) {
  Fixture f(testutil::single_service(2.0, 8));
  ConcurrencyAdapter adapter;
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  // Concurrency 7.5 >= 0.85 * 8.
  const auto a = adapter.adapt(knob, invalid_estimate(), 7.5, sec(1));
  EXPECT_EQ(a.type, AdaptAction::Type::kExplored);
  EXPECT_GT(a.new_size, 8);
}

TEST(Adapter, NoExplorationWhenUnsaturated) {
  Fixture f(testutil::single_service(2.0, 8));
  ConcurrencyAdapter adapter;
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  const auto a = adapter.adapt(knob, invalid_estimate(), 2.0, sec(1));
  EXPECT_EQ(a.type, AdaptAction::Type::kNone);
  EXPECT_EQ(knob.current_size(), 8);
}

TEST(Adapter, ExplorationCooldownAfterApply) {
  Fixture f(testutil::single_service(2.0, 5));
  AdapterOptions opts;
  opts.exploration_cooldown = sec(60);
  ConcurrencyAdapter adapter(opts);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  adapter.adapt(knob, valid_estimate(10), 4.0, sec(1));  // applied at t=1s
  // (headroom: pool is now 13.) Saturated right after apply: cooldown
  // suppresses exploration.
  auto a = adapter.adapt(knob, invalid_estimate(), 12.9, sec(10));
  EXPECT_EQ(a.type, AdaptAction::Type::kNone);
  // After the cooldown expires, exploration resumes.
  a = adapter.adapt(knob, invalid_estimate(), 12.9, sec(70));
  EXPECT_EQ(a.type, AdaptAction::Type::kExplored);
}

TEST(Adapter, ConfirmingCurrentSizeRefreshesCooldown) {
  Fixture f(testutil::single_service(2.0, 13));
  ConcurrencyAdapter adapter;
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  // Knee 10 + headroom = 13 = current size: no change, cooldown refreshed.
  auto a = adapter.adapt(knob, valid_estimate(10), 9.0, sec(1));
  EXPECT_EQ(a.type, AdaptAction::Type::kNone);
  a = adapter.adapt(knob, invalid_estimate(), 12.9, sec(30));
  EXPECT_EQ(a.type, AdaptAction::Type::kNone);  // still in cooldown
}

TEST(Adapter, EmergencyExplorationBypassesCooldown) {
  Fixture f(testutil::single_service(2.0, 13));
  ConcurrencyAdapter adapter;
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  adapter.adapt(knob, valid_estimate(10), 9.0, sec(1));  // cooldown armed
  // Saturated AND goodput collapsed -> emergency growth despite cooldown.
  const auto a =
      adapter.adapt(knob, invalid_estimate(), 12.9, sec(10), /*good=*/0.1);
  EXPECT_EQ(a.type, AdaptAction::Type::kExplored);
  // Emergency factor 3x: 13 * 3 + 1 = 40.
  EXPECT_EQ(a.new_size, 40);
}

TEST(Adapter, ProportionalRescale) {
  Fixture f(testutil::single_service(2.0, 10));
  ConcurrencyAdapter adapter;
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  auto a = adapter.rescale_proportional(knob, 2.0, sec(1));
  EXPECT_EQ(a.type, AdaptAction::Type::kProportional);
  EXPECT_EQ(knob.current_size(), 20);
  a = adapter.rescale_proportional(knob, 1.0, sec(2));
  EXPECT_EQ(a.type, AdaptAction::Type::kNone);
}

TEST(Adapter, ActionTypeNames) {
  EXPECT_STREQ(to_string(AdaptAction::Type::kNone), "none");
  EXPECT_STREQ(to_string(AdaptAction::Type::kApplied), "applied");
  EXPECT_STREQ(to_string(AdaptAction::Type::kExplored), "explored");
  EXPECT_STREQ(to_string(AdaptAction::Type::kProportional), "proportional");
}

}  // namespace
}  // namespace sora
