// Cross-module property tests: invariants that must hold for arbitrary
// (seeded-random) inputs, beyond the example-based unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "apps/sock_shop.h"
#include "common/rng.h"
#include "core/scg_model.h"
#include "core/sora.h"
#include "harness/experiment.h"
#include "svc/application.h"
#include "test_util.h"
#include "trace/critical_path.h"

namespace sora {
namespace {

// ---------------------------------------------------------------------------
// Simulator: event ordering is total and deterministic for random storms.
// ---------------------------------------------------------------------------

class SimStorm : public ::testing::TestWithParam<int> {};

TEST_P(SimStorm, RandomEventStormExecutesInOrder) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Simulator sim;
  std::vector<SimTime> fired;
  for (int i = 0; i < 2000; ++i) {
    const SimTime at = static_cast<SimTime>(rng.uniform_int(1000000));
    sim.schedule_at(at, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_all();
  ASSERT_EQ(fired.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimStorm, ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// CPU: processor sharing is fair — equal-demand jobs submitted together
// complete together, for any batch size and overhead.
// ---------------------------------------------------------------------------

class PsFairness : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PsFairness, EqualJobsFinishTogether) {
  const int jobs = std::get<0>(GetParam());
  const double beta = std::get<1>(GetParam());
  Simulator sim;
  CpuScheduler cpu(sim, 3.0, beta);
  std::vector<SimTime> done;
  for (int i = 0; i < jobs; ++i) {
    cpu.submit(5000, [&] { done.push_back(sim.now()); });
  }
  sim.run_all();
  ASSERT_EQ(done.size(), static_cast<std::size_t>(jobs));
  const SimTime spread = done.back() - done.front();
  EXPECT_LE(spread, 2) << "PS must not starve equal jobs";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PsFairness,
    ::testing::Combine(::testing::Values(2, 3, 7, 16),
                       ::testing::Values(0.0, 0.3, 1.0)));

// ---------------------------------------------------------------------------
// Pool: random acquire/release/resize storms never violate capacity
// accounting, and after draining everything is granted exactly once.
// ---------------------------------------------------------------------------

class PoolStorm : public ::testing::TestWithParam<int> {};

TEST_P(PoolStorm, ResizeStormKeepsAccounting) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  Simulator sim;
  SoftResourcePool pool(sim, PoolKind::kServerThreads, "p", 4);
  int grants = 0;
  int held = 0;
  int acquires = 0;
  for (int step = 0; step < 2000; ++step) {
    const auto op = rng.uniform_int(10);
    if (op < 5) {
      ++acquires;
      pool.acquire([&] {
        ++grants;
        ++held;
      });
    } else if (op < 8 && held > 0) {
      --held;
      pool.release();
    } else {
      pool.resize(1 + static_cast<int>(rng.uniform_int(16)));
    }
    ASSERT_GE(pool.in_use(), 0);
    ASSERT_EQ(pool.in_use(), held);
  }
  while (held > 0) {
    pool.release();
    --held;
  }
  EXPECT_EQ(grants, acquires - static_cast<int>(pool.waiting()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolStorm, ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// Traces: for every trace the substrate produces, the span tree is
// well-formed and the critical path is a root-anchored chain whose hops
// nest within their parents.
// ---------------------------------------------------------------------------

class TraceWellFormed : public ::testing::TestWithParam<int> {};

TEST_P(TraceWellFormed, SubstrateTracesAreConsistent) {
  Simulator sim;
  Tracer tracer;
  TraceWarehouse warehouse(10000);
  warehouse.attach(tracer);
  Application app(sim, tracer, sock_shop::make_sock_shop(),
                  static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 120; ++i) {
    sim.schedule_at(i * msec(7), [&app, i] {
      app.inject(i % 3, [](SimTime) {});
    });
  }
  sim.run_all();

  std::size_t checked = 0;
  warehouse.for_each_in_window(0, kSimTimeNever, [&](const Trace& t) {
    ++checked;
    std::map<std::uint64_t, const Span*> index;
    for (const Span& s : t.spans) index.emplace(s.id.value(), &s);
    for (const Span& s : t.spans) {
      EXPECT_LE(s.arrival, s.admitted);
      EXPECT_LE(s.admitted, s.departure);
      EXPECT_GE(s.downstream_wait, 0);
      EXPECT_LE(s.downstream_wait, s.duration());
      if (s.parent.valid()) {
        ASSERT_TRUE(index.count(s.parent.value()));
        const Span* parent = index[s.parent.value()];
        EXPECT_GE(s.arrival, parent->arrival);
        EXPECT_LE(s.departure, parent->departure);
      }
      for (const ChildCall& c : s.children) {
        ASSERT_TRUE(index.count(c.child.value()));
        EXPECT_GE(c.returned, c.issued);
      }
    }
    const CriticalPath cp = extract_critical_path(t);
    ASSERT_FALSE(cp.hops.empty());
    EXPECT_EQ(cp.hops.front().span, t.root().id);
    EXPECT_EQ(cp.total_duration, t.root().duration());
    SimTime pt_sum = 0;
    for (const auto& hop : cp.hops) pt_sum += hop.processing_time;
    EXPECT_LE(pt_sum, cp.total_duration);
  });
  EXPECT_EQ(checked, 120u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceWellFormed, ::testing::Range(1, 5));

// ---------------------------------------------------------------------------
// SCG invariant: goodput never exceeds throughput in any sample, and the
// model's recommendation is within the observed concurrency range.
// ---------------------------------------------------------------------------

class ScgRangeProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScgRangeProperty, RecommendationWithinObservedRange) {
  ExperimentConfig cfg;
  cfg.duration = minutes(2);
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  sock_shop::Params params;
  params.cart_cores = 2.0;
  params.cart_threads = 32;
  Experiment exp(sock_shop::make_sock_shop(params), cfg);
  const WorkloadTrace trace(TraceShape::kQuickVarying, cfg.duration, 300, 1000);
  auto& users = exp.closed_loop(300, sec(1), RequestMix(sock_shop::kBrowse));
  users.follow_trace(trace);
  ConcurrencyEstimator est(exp.sim(), exp.tracer());
  const ResourceKnob knob = ResourceKnob::entry(exp.app().service("cart"));
  est.watch(knob);
  est.set_rt_threshold(knob, msec(30));
  exp.run();

  double q_max = 0.0;
  for (const SamplePoint& p : est.sampler(knob)->points()) {
    EXPECT_LE(p.goodput, p.throughput + 1e-9);
    EXPECT_GE(p.concurrency, 0.0);
    q_max = std::max(q_max, p.concurrency);
  }
  const auto e = est.estimate(knob);
  if (e.valid) {
    EXPECT_GE(e.recommended, 1);
    EXPECT_LE(static_cast<double>(e.recommended), q_max + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScgRangeProperty, ::testing::Range(1, 5));

// ---------------------------------------------------------------------------
// Framework: managing several knobs at once keeps them independent (both
// adapt; neither is clobbered by the other's bookkeeping).
// ---------------------------------------------------------------------------

TEST(MultiKnob, CartAndCatalogueManagedTogether) {
  ExperimentConfig cfg;
  cfg.duration = minutes(5);
  cfg.sla = msec(250);
  cfg.seed = 12;
  sock_shop::Params params;
  params.cart_cores = 4.0;
  params.cart_threads = 2;              // starved for this load
  params.catalogue_db_connections = 2;  // starved once cart recovers
  Experiment exp(sock_shop::make_sock_shop(params), cfg);
  // Load high enough that BOTH gates choke: the cart pool first; then,
  // once Sora grows it and traffic reaches the catalogue branch at full
  // rate, the 2-connection DB gate (fixing one knob exposes the other).
  exp.closed_loop(2600, sec(1), RequestMix(sock_shop::kBrowse));

  SoraFrameworkOptions so;
  so.sla = cfg.sla;
  auto& sora = exp.add_sora(so);
  const ResourceKnob cart = ResourceKnob::entry(exp.app().service("cart"));
  const ResourceKnob cat =
      ResourceKnob::edge(exp.app().service("catalogue"), "catalogue-db");
  sora.manage(cart);
  sora.manage(cat);
  EXPECT_EQ(sora.managed().size(), 2u);

  exp.run();
  // Both starved pools must have been grown.
  EXPECT_GT(cart.current_size(), 2);
  EXPECT_GT(cat.current_size(), 2);
  // Independent thresholds were propagated for each.
  EXPECT_GT(sora.estimator().rt_threshold(cart), 0);
  EXPECT_GT(sora.estimator().rt_threshold(cat), 0);
}

// ---------------------------------------------------------------------------
// Workload: the open-loop thinning sampler reproduces the trace's relative
// intensity profile for every shape.
// ---------------------------------------------------------------------------

class OpenLoopShapes : public ::testing::TestWithParam<TraceShape> {};

TEST_P(OpenLoopShapes, ArrivalsFollowIntensity) {
  Simulator sim;
  struct Sink : LoadTarget {
    std::vector<SimTime> arrivals;
    Simulator& sim;
    explicit Sink(Simulator& s) : sim(s) {}
    void inject(const RequestMeta&, Completion cb) override {
      arrivals.push_back(sim.now());
      cb(0, true);
    }
  } sink{sim};
  const SimTime duration = sec(60);
  WorkloadTrace trace(GetParam(), duration, 50.0, 800.0);
  OpenLoopGenerator gen(sim, sink, trace, 77);
  gen.start();
  sim.run_all();

  // Compare per-10s bucket arrival counts against the integrated rate.
  const int buckets = 6;
  std::vector<double> counts(buckets, 0.0), expected(buckets, 0.0);
  for (SimTime t : sink.arrivals) {
    counts[std::min<int>(buckets - 1, static_cast<int>(t / sec(10)))] += 1.0;
  }
  for (int b = 0; b < buckets; ++b) {
    for (int i = 0; i < 100; ++i) {
      expected[b] += trace.rate_at(b * sec(10) + i * msec(100)) * 0.1;
    }
  }
  for (int b = 0; b < buckets; ++b) {
    EXPECT_NEAR(counts[b], expected[b],
                std::max(60.0, expected[b] * 0.15))
        << to_string(GetParam()) << " bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, OpenLoopShapes, ::testing::ValuesIn(all_trace_shapes()),
    [](const ::testing::TestParamInfo<TraceShape>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == ' ') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Vertical scaling invariant: adding cores never reduces a service's
// completion count over the same workload and seed.
// ---------------------------------------------------------------------------

class MoreCoresNeverWorse : public ::testing::TestWithParam<double> {};

TEST_P(MoreCoresNeverWorse, CompletionsMonotoneInCores) {
  auto run = [&](double cores) {
    ExperimentConfig cfg;
    cfg.duration = minutes(1);
    cfg.seed = 5;
    ApplicationConfig app = testutil::single_service(cores, 16, 4000, 2000, 0.5);
    Experiment exp(std::move(app), cfg);
    exp.closed_loop(60, msec(100));
    exp.run();
    return exp.app().completed();
  };
  const double cores = GetParam();
  // 20% slack: the closed loop reshuffles think times across runs.
  EXPECT_GE(run(cores * 2) * 1.2, run(cores));
}

INSTANTIATE_TEST_SUITE_P(Cores, MoreCoresNeverWorse,
                         ::testing::Values(1.0, 2.0, 4.0));

}  // namespace
}  // namespace sora
