// Tests for cluster-trace replay (workload/replay): fail-closed CSV
// parsing, piecewise-linear trace semantics, deterministic synthesis, and
// byte-identical replayed runs across reruns and shard counts.
#include "workload/replay.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/experiment.h"
#include "topo/synth.h"

namespace sora {
namespace {

const char kGoodCsv[] =
    "time_s,web,mobile\n"
    "0,10,5\n"
    "5,20,5\n"
    "10,15,8\n";

TEST(ReplayParse, AcceptsWellFormedCsv) {
  const ClusterTraceParse p = parse_cluster_trace_csv(std::string(kGoodCsv));
  ASSERT_TRUE(p.ok) << p.error;
  ASSERT_EQ(p.trace.tenants.size(), 2u);
  EXPECT_EQ(p.trace.tenants[0], "web");
  EXPECT_EQ(p.trace.tenants[1], "mobile");
  ASSERT_EQ(p.trace.times.size(), 3u);
  EXPECT_EQ(p.trace.times[1], sec(5));
  EXPECT_EQ(p.trace.duration(), sec(10));
  EXPECT_DOUBLE_EQ(p.trace.rows[1][0], 20.0);
  EXPECT_DOUBLE_EQ(p.trace.rows[2][1], 8.0);
}

TEST(ReplayParse, ToleratesCrlfAndBlankLines) {
  const ClusterTraceParse p = parse_cluster_trace_csv(
      "time_s,web\r\n0,10\r\n\r\n5,20\r\n");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.trace.times.size(), 2u);
}

// Every malformed shape must fail with a diagnostic, never parse partially.
TEST(ReplayParse, FailsClosedOnMalformedInput) {
  const char* cases[] = {
      // wrong header column
      "t,web\n0,10\n5,20\n",
      // no tenant columns
      "time_s\n0\n5\n",
      // empty tenant name
      "time_s,web,\n0,10,5\n5,20,5\n",
      // duplicate tenant name
      "time_s,web,web\n0,10,5\n5,20,5\n",
      // fewer than two data rows
      "time_s,web\n0,10\n",
      // empty input
      "",
      // ragged row
      "time_s,web,mobile\n0,10,5\n5,20\n",
      // non-monotone timestamps
      "time_s,web\n0,10\n5,20\n5,30\n",
      "time_s,web\n0,10\n5,20\n3,30\n",
      // negative timestamp
      "time_s,web\n-1,10\n5,20\n",
      // negative rate
      "time_s,web\n0,10\n5,-2\n",
      // non-finite rate
      "time_s,web\n0,10\n5,nan\n",
      "time_s,web\n0,inf\n5,20\n",
      // trailing garbage in a number
      "time_s,web\n0,10\n5,20x\n",
      "time_s,web\n0,10\nabc,20\n",
  };
  for (const char* text : cases) {
    const ClusterTraceParse p = parse_cluster_trace_csv(std::string(text));
    EXPECT_FALSE(p.ok) << "accepted: " << text;
    EXPECT_FALSE(p.error.empty()) << text;
  }
  // Errors cite the offending row so a bad file is debuggable.
  const ClusterTraceParse p =
      parse_cluster_trace_csv(std::string("time_s,web\n0,10\n5,-2\n"));
  EXPECT_NE(p.error.find("row"), std::string::npos) << p.error;
}

TEST(ReplayTrace, PiecewiseInterpolatesAndClamps) {
  const WorkloadTrace t = WorkloadTrace::piecewise(
      {{sec(0), 10.0}, {sec(10), 30.0}, {sec(20), 30.0}, {sec(30), 0.0}});
  EXPECT_DOUBLE_EQ(t.rate_at(sec(0)), 10.0);
  EXPECT_DOUBLE_EQ(t.rate_at(sec(5)), 20.0);
  EXPECT_DOUBLE_EQ(t.rate_at(sec(10)), 30.0);
  EXPECT_DOUBLE_EQ(t.rate_at(sec(15)), 30.0);
  EXPECT_DOUBLE_EQ(t.rate_at(sec(25)), 15.0);
  // Clamped outside the sampled span.
  EXPECT_DOUBLE_EQ(t.rate_at(sec(40)), 0.0);
  EXPECT_DOUBLE_EQ(t.max_rate(), 30.0);

  // Copies share the sampled curve (the generator stores traces by value).
  const WorkloadTrace copy = t;
  EXPECT_DOUBLE_EQ(copy.rate_at(sec(5)), 20.0);
}

TEST(ReplayTrace, TenantTraceScalesRates) {
  const ClusterTraceParse p = parse_cluster_trace_csv(std::string(kGoodCsv));
  ASSERT_TRUE(p.ok);
  const WorkloadTrace t = p.trace.tenant_trace(0, /*rate_scale=*/0.5);
  EXPECT_DOUBLE_EQ(t.rate_at(sec(5)), 10.0);
  EXPECT_DOUBLE_EQ(t.max_rate(), 10.0);
}

TEST(ReplaySynthesis, DeterministicAndParseable) {
  ReplaySynthesisConfig cfg;
  cfg.tenants = 3;
  cfg.duration_s = 120.0;
  const std::string a = synthesize_cluster_trace_csv(cfg);
  const std::string b = synthesize_cluster_trace_csv(cfg);
  EXPECT_EQ(a, b);

  cfg.seed = 8;
  EXPECT_NE(a, synthesize_cluster_trace_csv(cfg));

  const ClusterTraceParse p = parse_cluster_trace_csv(a);
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.trace.tenants.size(), 3u);
  EXPECT_GE(p.trace.times.size(), 20u);
}

// One replayed experiment: topology + cluster trace + ReplayWorkloadSource
// through the Experiment::set_workload_source seam.
struct ReplayRun {
  std::uint64_t injected = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t source_injected = 0;
  std::uint64_t warehouse_digest = 0;
  std::string fingerprint;
};

ReplayRun run_replay(int shards) {
  topo::TopologyConfig tcfg;
  tcfg.seed = 3;
  tcfg.services = 80;
  tcfg.tenants = 2;
  tcfg.entries_per_tenant = 1;
  const topo::Topology topo = topo::synthesize(tcfg);

  ReplaySynthesisConfig rcfg;
  rcfg.tenants = 2;
  rcfg.duration_s = 40.0;
  rcfg.step_s = 2.0;
  rcfg.base_rps = 8.0;
  const ClusterTraceParse parsed =
      parse_cluster_trace_csv(synthesize_cluster_trace_csv(rcfg));
  EXPECT_TRUE(parsed.ok) << parsed.error;

  ExperimentConfig ecfg;
  ecfg.duration = sec(40);
  ecfg.seed = 11;
  ecfg.sla = tcfg.request_sla;
  Experiment exp(topo.app, ecfg);
  exp.set_shards(shards);
  auto source = std::make_unique<ReplayWorkloadSource>(parsed.trace);
  for (int t = 0; t < tcfg.tenants; ++t) {
    source->set_tenant_mix(static_cast<std::size_t>(t), topo.tenant_mix(t));
  }
  WorkloadSource& bound = exp.set_workload_source(std::move(source));
  exp.run();

  ReplayRun out;
  const ExperimentSummary s = exp.summary();
  out.injected = s.injected;
  out.completed = s.completed;
  out.shed = s.shed;
  out.source_injected = bound.injected();
  out.warehouse_digest = exp.warehouse().digest();
  std::ostringstream os;
  os.precision(17);
  os << s.injected << '|' << s.completed << '|' << s.shed << '|' << s.mean_ms
     << '|' << s.p50_ms << '|' << s.p95_ms << '|' << s.p99_ms << '|'
     << s.goodput_rps << '|' << exp.warehouse().digest() << '|'
     << exp.warehouse().total_stored();
  out.fingerprint = os.str();
  return out;
}

TEST(ReplayRunDeterminism, RerunsAreByteIdentical) {
  const ReplayRun a = run_replay(/*shards=*/1);
  const ReplayRun b = run_replay(/*shards=*/1);
  EXPECT_GT(a.injected, 300u);
  EXPECT_GT(a.completed, 100u);
  // The parity fingerprint must cover real traces, not an empty warehouse.
  EXPECT_NE(a.warehouse_digest, TraceWarehouse(1).digest());
  EXPECT_EQ(a.source_injected, a.injected);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(ReplayRunDeterminism, ShardCountsAgree) {
  const ReplayRun one = run_replay(/*shards=*/1);
  const ReplayRun two = run_replay(/*shards=*/2);
  const ReplayRun four = run_replay(/*shards=*/4);
  EXPECT_EQ(one.fingerprint, two.fingerprint);
  EXPECT_EQ(one.fingerprint, four.fingerprint);
}

}  // namespace
}  // namespace sora
