#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sora::obs {
namespace {

TEST(OverheadProfiler, RecordAccumulatesPerStage) {
  OverheadProfiler p;
  p.record("scg.polyfit", 100.0);
  p.record("scg.polyfit", 300.0);
  p.record("scg.kneedle", 50.0);

  const auto stats = p.stats();
  ASSERT_EQ(stats.size(), 2u);
  // Sorted by stage name.
  EXPECT_EQ(stats[0].stage, "scg.kneedle");
  EXPECT_EQ(stats[1].stage, "scg.polyfit");
  EXPECT_EQ(stats[1].calls, 2u);
  EXPECT_DOUBLE_EQ(stats[1].total_us, 400.0);
  EXPECT_DOUBLE_EQ(stats[1].max_us, 300.0);
  EXPECT_DOUBLE_EQ(stats[1].mean_us(), 200.0);
}

TEST(OverheadProfiler, StatsSinceReportsOnlyTheDelta) {
  OverheadProfiler p;
  p.record("a", 100.0);
  p.record("b", 10.0);
  const auto baseline = p.stats();

  p.record("a", 50.0);
  p.record("c", 5.0);
  const auto delta = p.stats_since(baseline);

  // "b" did not move, so it drops out; "a" shows only the new work.
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0].stage, "a");
  EXPECT_EQ(delta[0].calls, 1u);
  EXPECT_DOUBLE_EQ(delta[0].total_us, 50.0);
  EXPECT_EQ(delta[1].stage, "c");
  EXPECT_DOUBLE_EQ(delta[1].total_us, 5.0);
}

TEST(OverheadProfiler, TotalUsSumsByPrefix) {
  OverheadProfiler p;
  p.record("scg.polyfit", 100.0);
  p.record("scg.kneedle", 50.0);
  p.record("sora.localization", 30.0);
  const auto stats = p.stats();
  EXPECT_DOUBLE_EQ(OverheadProfiler::total_us(stats, "scg."), 150.0);
  EXPECT_DOUBLE_EQ(OverheadProfiler::total_us(stats), 180.0);
}

TEST(OverheadProfiler, ScopeRecordsElapsedWallTime) {
  OverheadProfiler p;
  {
    OverheadProfiler::Scope scope(p, "stage");
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink = sink + static_cast<double>(i);
  }
  const auto stats = p.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].calls, 1u);
  EXPECT_GE(stats[0].total_us, 0.0);
}

TEST(OverheadProfiler, GlobalMacroFeedsTheGlobalProfiler) {
  OverheadProfiler::global().reset();
  {
    SORA_PROFILE_STAGE("test.macro_stage");
  }
  const auto stats = OverheadProfiler::global().stats();
  bool found = false;
  for (const auto& s : stats) {
    if (s.stage == "test.macro_stage") {
      found = true;
      EXPECT_EQ(s.calls, 1u);
    }
  }
  EXPECT_TRUE(found);
  OverheadProfiler::global().reset();
}

TEST(OverheadProfiler, ResetClears) {
  OverheadProfiler p;
  p.record("a", 1.0);
  p.reset();
  EXPECT_TRUE(p.stats().empty());
}

TEST(OverheadProfiler, PrintRendersEveryStage) {
  OverheadProfiler p;
  p.record("scg.polyfit", 123.0);
  p.record("sora.control_round", 456.0);
  std::ostringstream os;
  OverheadProfiler::print(p.stats(), os);
  EXPECT_NE(os.str().find("scg.polyfit"), std::string::npos);
  EXPECT_NE(os.str().find("sora.control_round"), std::string::npos);
}

}  // namespace
}  // namespace sora::obs
