// Tests for the experiment harness.
#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "apps/sock_shop.h"
#include "test_util.h"

namespace sora {
namespace {

TEST(Experiment, RunsClosedLoopAndSummarizes) {
  ExperimentConfig cfg;
  cfg.duration = sec(20);
  cfg.sla = msec(100);
  Experiment exp(testutil::chain_app(0.4), cfg);
  exp.closed_loop(20, msec(100));
  exp.run();
  const ExperimentSummary s = exp.summary();
  EXPECT_GT(s.injected, 100u);
  // Closed loop: at most one request in flight per user at the cutoff.
  EXPECT_LE(s.injected - s.completed, 20u);
  EXPECT_GT(s.throughput_rps, 0.0);
  EXPECT_GT(s.goodput_rps, 0.0);
  EXPECT_GT(s.p99_ms, s.p50_ms);
  EXPECT_GT(s.good_fraction, 0.9);  // lightly loaded chain well within 100ms
}

TEST(Experiment, OpenLoopDrivesTrace) {
  ExperimentConfig cfg;
  cfg.duration = sec(10);
  Experiment exp(testutil::chain_app(0.4), cfg);
  const WorkloadTrace trace(TraceShape::kSlowlyVarying, sec(10), 100, 100);
  exp.open_loop(trace);
  exp.run();
  EXPECT_NEAR(static_cast<double>(exp.summary().injected), 1000.0, 150.0);
}

TEST(Experiment, TimelineTracksService) {
  ExperimentConfig cfg;
  cfg.duration = sec(10);
  cfg.timeline_bucket = sec(1);
  Experiment exp(testutil::chain_app(0.4), cfg);
  exp.closed_loop(10, msec(100));
  exp.track_service("mid");
  exp.run();
  const auto& tl = exp.timeline("mid");
  ASSERT_GE(tl.size(), 9u);
  for (const auto& p : tl) {
    EXPECT_GT(p.util_pct, 0.0);
    EXPECT_DOUBLE_EQ(p.limit_pct, 400.0);
    EXPECT_EQ(p.replicas, 1);
    EXPECT_GT(p.entry_capacity, 0);
  }
}

TEST(Experiment, TimelineTracksEdgePool) {
  ExperimentConfig cfg;
  cfg.duration = sec(5);
  Experiment exp(testutil::edge_pool_app(4, 1000, 0.2), cfg);
  exp.closed_loop(8, msec(20));
  exp.track_service("caller", "db");
  exp.run();
  const auto& tl = exp.timeline("caller");
  ASSERT_GE(tl.size(), 4u);
  bool any_edge_use = false;
  for (const auto& p : tl) {
    EXPECT_EQ(p.edge_capacity, 4);
    if (p.edge_in_use > 0) any_edge_use = true;
  }
  EXPECT_TRUE(any_edge_use);
}

TEST(Experiment, UnknownServiceThrows) {
  ExperimentConfig cfg;
  Experiment exp(testutil::chain_app(), cfg);
  EXPECT_THROW(exp.track_service("nope"), std::invalid_argument);
  EXPECT_THROW(exp.timeline("front"), std::invalid_argument);
}

TEST(Experiment, LinkForwardsScaleEvents) {
  ExperimentConfig cfg;
  cfg.duration = sec(60);
  Experiment exp(testutil::single_service(1.0, 10, 4000, 2000, 0.4), cfg);
  exp.closed_loop(50, msec(50));

  VpaOptions vpa_opts;
  vpa_opts.period = sec(5);
  auto& vpa = exp.add_vpa(vpa_opts);
  vpa.manage(exp.app().service("svc"));

  auto& sora = exp.add_sora();
  ResourceKnob knob = ResourceKnob::entry(exp.app().service("svc"));
  sora.manage(knob);
  Experiment::link(vpa, sora);

  exp.run();
  // VPA scaled up; the linked framework must have reacted with proportional
  // soft-resource rescales (the final size depends on where the SCG knee
  // settles once the hardware stabilizes).
  ASSERT_FALSE(vpa.history().empty());
  bool proportional = false;
  for (const AdaptAction& a : sora.adapter().history()) {
    if (a.type == AdaptAction::Type::kProportional) proportional = true;
  }
  EXPECT_TRUE(proportional);
}

TEST(Experiment, SummaryPercentilesOrdered) {
  ExperimentConfig cfg;
  cfg.duration = sec(15);
  Experiment exp(testutil::chain_app(0.6), cfg);
  exp.closed_loop(30, msec(50));
  exp.run();
  const auto s = exp.summary();
  EXPECT_LE(s.p50_ms, s.p95_ms);
  EXPECT_LE(s.p95_ms, s.p99_ms);
}

TEST(Experiment, DeterministicWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.duration = sec(10);
    cfg.seed = seed;
    Experiment exp(testutil::chain_app(0.5), cfg);
    exp.closed_loop(25, msec(80));
    exp.run();
    return exp.summary();
  };
  const auto a = run(3), b = run(3), c = run(4);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
  EXPECT_NE(a.injected, c.injected);
}

}  // namespace
}  // namespace sora
