// Tests for the experiment harness.
#include "harness/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "apps/sock_shop.h"
#include "test_util.h"

namespace sora {
namespace {

TEST(Experiment, RunsClosedLoopAndSummarizes) {
  ExperimentConfig cfg;
  cfg.duration = sec(20);
  cfg.sla = msec(100);
  Experiment exp(testutil::chain_app(0.4), cfg);
  exp.closed_loop(20, msec(100));
  exp.run();
  const ExperimentSummary s = exp.summary();
  EXPECT_GT(s.injected, 100u);
  // Closed loop: at most one request in flight per user at the cutoff.
  EXPECT_LE(s.injected - s.completed, 20u);
  EXPECT_GT(s.throughput_rps, 0.0);
  EXPECT_GT(s.goodput_rps, 0.0);
  EXPECT_GT(s.p99_ms, s.p50_ms);
  EXPECT_GT(s.good_fraction, 0.9);  // lightly loaded chain well within 100ms
}

TEST(Experiment, OpenLoopDrivesTrace) {
  ExperimentConfig cfg;
  cfg.duration = sec(10);
  Experiment exp(testutil::chain_app(0.4), cfg);
  const WorkloadTrace trace(TraceShape::kSlowlyVarying, sec(10), 100, 100);
  exp.open_loop(trace);
  exp.run();
  EXPECT_NEAR(static_cast<double>(exp.summary().injected), 1000.0, 150.0);
}

TEST(Experiment, TimelineTracksService) {
  ExperimentConfig cfg;
  cfg.duration = sec(10);
  cfg.timeline_bucket = sec(1);
  Experiment exp(testutil::chain_app(0.4), cfg);
  exp.closed_loop(10, msec(100));
  exp.track_service("mid");
  exp.run();
  const auto& tl = exp.timeline("mid");
  ASSERT_GE(tl.size(), 9u);
  for (const auto& p : tl) {
    EXPECT_GT(p.util_pct, 0.0);
    EXPECT_DOUBLE_EQ(p.limit_pct, 400.0);
    EXPECT_EQ(p.replicas, 1);
    EXPECT_GT(p.entry_capacity, 0);
  }
}

TEST(Experiment, TimelineTracksEdgePool) {
  ExperimentConfig cfg;
  cfg.duration = sec(5);
  Experiment exp(testutil::edge_pool_app(4, 1000, 0.2), cfg);
  exp.closed_loop(8, msec(20));
  exp.track_service("caller", "db");
  exp.run();
  const auto& tl = exp.timeline("caller");
  ASSERT_GE(tl.size(), 4u);
  bool any_edge_use = false;
  for (const auto& p : tl) {
    EXPECT_EQ(p.edge_capacity, 4);
    if (p.edge_in_use > 0) any_edge_use = true;
  }
  EXPECT_TRUE(any_edge_use);
}

TEST(Experiment, UnknownServiceThrows) {
  ExperimentConfig cfg;
  Experiment exp(testutil::chain_app(), cfg);
  EXPECT_THROW(exp.track_service("nope"), std::invalid_argument);
  EXPECT_THROW(exp.timeline("front"), std::invalid_argument);
}

TEST(Experiment, LinkForwardsScaleEvents) {
  ExperimentConfig cfg;
  cfg.duration = sec(60);
  Experiment exp(testutil::single_service(1.0, 10, 4000, 2000, 0.4), cfg);
  exp.closed_loop(50, msec(50));

  VpaOptions vpa_opts;
  vpa_opts.period = sec(5);
  auto& vpa = exp.add_vpa(vpa_opts);
  vpa.manage(exp.app().service("svc"));

  auto& sora = exp.add_sora();
  ResourceKnob knob = ResourceKnob::entry(exp.app().service("svc"));
  sora.manage(knob);
  Experiment::link(vpa, sora);

  exp.run();
  // VPA scaled up; the linked framework must have reacted with proportional
  // soft-resource rescales (the final size depends on where the SCG knee
  // settles once the hardware stabilizes).
  ASSERT_FALSE(vpa.history().empty());
  bool proportional = false;
  for (const AdaptAction& a : sora.adapter().history()) {
    if (a.type == AdaptAction::Type::kProportional) proportional = true;
  }
  EXPECT_TRUE(proportional);
}

TEST(Experiment, ZeroRequestRunPropagatesNoSample) {
  // A run whose window saw zero requests must report kNoSample (NaN)
  // percentiles — not a fake 0 ms tail that reads as "infinitely fast".
  ExperimentConfig cfg;
  cfg.duration = sec(5);
  Experiment exp(testutil::chain_app(0.4), cfg);
  exp.run();  // no generators attached
  const ExperimentSummary s = exp.summary();
  EXPECT_EQ(s.injected, 0u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_TRUE(std::isnan(s.p50_ms));
  EXPECT_TRUE(std::isnan(s.p95_ms));
  EXPECT_TRUE(std::isnan(s.p99_ms));
  // Rate-style aggregates stay well-defined at zero.
  EXPECT_DOUBLE_EQ(s.throughput_rps, 0.0);
  EXPECT_DOUBLE_EQ(s.goodput_rps, 0.0);
}

TEST(Experiment, SummaryPercentilesOrdered) {
  ExperimentConfig cfg;
  cfg.duration = sec(15);
  Experiment exp(testutil::chain_app(0.6), cfg);
  exp.closed_loop(30, msec(50));
  exp.run();
  const auto s = exp.summary();
  EXPECT_LE(s.p50_ms, s.p95_ms);
  EXPECT_LE(s.p95_ms, s.p99_ms);
}

TEST(Experiment, DeterministicWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.duration = sec(10);
    cfg.seed = seed;
    Experiment exp(testutil::chain_app(0.5), cfg);
    exp.closed_loop(25, msec(80));
    exp.run();
    return exp.summary();
  };
  const auto a = run(3), b = run(3), c = run(4);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
  EXPECT_NE(a.injected, c.injected);
}

TEST(Experiment, SloAnalyticsDetectsEpisodesAndAttributes) {
  ExperimentConfig cfg;
  cfg.duration = sec(20);
  cfg.sla = msec(2);  // unattainable: the chain needs ~3.2ms of service time
  Experiment exp(testutil::chain_app(0.0), cfg);
  SloAnalyticsOptions slo;
  slo.monitor.fast_window = sec(5);
  slo.monitor.slow_window = sec(15);
  exp.enable_slo_analytics(slo);
  exp.closed_loop(10, msec(50));
  exp.run();

  ASSERT_TRUE(exp.slo_analytics_enabled());
  const ExperimentSummary s = exp.summary();
  EXPECT_GT(s.slo_episodes, 0u);
  EXPECT_LT(exp.slo_monitor().good_ratio("e2e"), 0.5);
  // Every request misses the SLA, so episode records landed in the log.
  EXPECT_FALSE(exp.decision_log().by_action("episode_start").empty());
  // Attribution resolves real service names; the top consumer must be one
  // of the chain's heavyweights (mid and leaf both do ~1.2ms of work).
  const std::string top = exp.attribution().top_consumer();
  EXPECT_TRUE(top == "mid" || top == "leaf") << top;
  EXPECT_GT(exp.attribution().traces_attributed(), 0u);

  // Stored spans carry the finalizer's budget annotation.
  bool all_annotated = true;
  std::size_t seen = 0;
  exp.warehouse().for_each_in_window(0, kSimTimeNever, [&](const Trace& t) {
    for (const Span& sp : t.spans) {
      ++seen;
      all_annotated = all_annotated && sp.budget_annotated();
    }
  });
  EXPECT_GT(seen, 0u);
  EXPECT_TRUE(all_annotated);

  std::ostringstream report, html, csv, burn;
  exp.export_slo_report_text(report, "chain");
  exp.export_slo_report_html(html, "chain");
  exp.export_attribution_csv(csv);
  exp.export_burn_csv("e2e", burn);
  EXPECT_NE(report.str().find("Violation episodes"), std::string::npos);
  EXPECT_NE(report.str().find("leaf"), std::string::npos);
  EXPECT_NE(html.str().find("<table>"), std::string::npos);
  EXPECT_NE(csv.str().find("mid"), std::string::npos);
  EXPECT_NE(burn.str().find("fast_burn"), std::string::npos);
}

TEST(Experiment, SloAnalyticsQuietWhenHealthy) {
  ExperimentConfig cfg;
  cfg.duration = sec(15);
  cfg.sla = msec(100);  // trivially met by the lightly loaded chain
  Experiment exp(testutil::chain_app(0.2), cfg);
  exp.enable_slo_analytics();
  exp.closed_loop(5, msec(100));
  exp.run();
  EXPECT_EQ(exp.summary().slo_episodes, 0u);
  EXPECT_GT(exp.slo_monitor().good_ratio("e2e"), 0.99);
}

}  // namespace
}  // namespace sora
