// Causal profiler: counterfactual determinism (control re-run digests),
// serial-vs-parallel profile bit parity, ranking sanity on a topology with
// a known bottleneck, and the decision-log records each round appends.
#include "harness/causal_lab.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "test_util.h"

namespace sora {
namespace {

/// Fan-out front -> {a, b} where a is 10x slower: the unambiguous causal
/// bottleneck. Stochastic demands (cv) keep the runs non-trivial.
CausalLab::Builder fanout_builder() {
  return [] {
    ExperimentConfig cfg;
    cfg.duration = sec(30);
    cfg.sla = msec(50);
    cfg.seed = 7;
    auto exp = std::make_unique<Experiment>(
        testutil::fanout_app(/*a_us=*/5000, /*b_us=*/500, /*cv=*/0.5), cfg);
    exp->closed_loop(40, msec(20));
    return exp;
  };
}

CausalLabOptions fanout_options(int threads) {
  CausalLabOptions opts;
  opts.checkpoint = sec(10);
  opts.speedup_factors = {0.75};
  opts.pool_delta = 2;
  opts.cap_delta = 0;
  opts.services = {"a", "b"};
  opts.threads = threads;
  opts.scenario = "test";
  return opts;
}

TEST(CausalLab, ControlReRunIsByteIdentical) {
  CausalLab lab(fanout_builder(), fanout_options(1));
  const obs::CausalProfile p = lab.run();
  EXPECT_TRUE(p.control_identical);
  EXPECT_EQ(p.control_sim_digest, p.primary_sim_digest);
  EXPECT_EQ(p.control_trace_digest, p.primary_trace_digest);
  EXPECT_NE(p.primary_sim_digest, 0u);
}

TEST(CausalLab, SerialAndParallelProfilesAreBitIdentical) {
  CausalLab serial(fanout_builder(), fanout_options(1));
  CausalLab parallel(fanout_builder(), fanout_options(4));
  const std::string serial_json = serial.run().to_json();
  const std::string parallel_json = parallel.run().to_json();
  EXPECT_EQ(serial_json, parallel_json);
}

TEST(CausalLab, SpeedupRankingFindsTheBottleneck) {
  CausalLab lab(fanout_builder(), fanout_options(2));
  const obs::CausalProfile p = lab.run();
  // 6 perturbations planned: speedup(0.75) + pool +/-2 for each of {a, b}.
  EXPECT_EQ(p.effects.size(), 6u);
  const std::vector<std::string> ranking = p.causal_service_ranking();
  ASSERT_GE(ranking.size(), 2u);
  // Speeding up the 5 ms service must beat speeding up the 0.5 ms one.
  EXPECT_EQ(ranking.front(), "a");
  EXPECT_EQ(p.causal_pick, "a");
  double a_delta = 0.0, b_delta = 0.0;
  for (const obs::CausalEffect& e : p.effects) {
    if (e.perturbation.kind != obs::PerturbationKind::kServiceSpeedup) {
      continue;
    }
    if (e.perturbation.service == "a") a_delta = e.delta_p99_ms();
    if (e.perturbation.service == "b") b_delta = e.delta_p99_ms();
  }
  EXPECT_LT(a_delta, 0.0);      // speeding up the bottleneck helps the tail
  EXPECT_LT(a_delta, b_delta);  // and helps more than the slack branch
}

TEST(CausalLab, EffectsCarrySpanAlignment) {
  CausalLab lab(fanout_builder(), fanout_options(2));
  const obs::CausalProfile p = lab.run();
  for (const obs::CausalEffect& e : p.effects) {
    EXPECT_GT(e.diff.traces_aligned, 0u);
    EXPECT_FALSE(e.edges.empty());
  }
}

TEST(CausalLab, AppendsDecisionRecords) {
  CausalLab lab(fanout_builder(), fanout_options(1));
  const obs::CausalProfile p = lab.run();
  std::size_t effect_records = 0, rank_records = 0;
  for (const obs::ControlDecisionRecord& rec :
       lab.baseline().decision_log().records()) {
    if (rec.controller != "causal") continue;
    if (rec.action == "causal_effect") {
      ++effect_records;
      EXPECT_FALSE(rec.causal_perturbation.empty());
    }
    if (rec.action == "causal_rank") {
      ++rank_records;
      EXPECT_EQ(rec.target, p.causal_pick);
      EXPECT_EQ(rec.causal_rank, p.ranking_string());
    }
  }
  EXPECT_EQ(effect_records, p.effects.size());
  EXPECT_EQ(rank_records, 1u);
}

TEST(CausalLab, ProfileJsonIsWellFormedDocument) {
  CausalLab lab(fanout_builder(), fanout_options(2));
  const obs::CausalProfile p = lab.run();
  const std::string doc = CausalLab::profiles_json({p});
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.back(), '}');
  EXPECT_NE(doc.find("\"profiles\""), std::string::npos);
  EXPECT_NE(doc.find("\"scenario\":\"test\""), std::string::npos);
  EXPECT_NE(doc.find("\"effects\""), std::string::npos);
}

}  // namespace
}  // namespace sora
