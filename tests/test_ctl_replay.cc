// Determinism guarantees of the ctl plane:
//   1. An idle plane (safepoints ticking, server bound, nobody connected)
//      changes nothing about simulation results — and parallel sweeps with
//      ctl enabled stay bit-identical to serial ones.
//   2. A recorded command stream replays byte-for-byte: re-running with
//      set_script(commands_from_log(recorded_log)) reproduces the full
//      decision log and summary of the recorded run exactly.
#include "ctl/plane.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/log.h"
#include "fault/fault_plan.h"
#include "harness/causal_lab.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "obs/decision_log.h"
#include "test_util.h"

namespace sora {
namespace {

bool same_sim_outputs(const ExperimentSummary& a, const ExperimentSummary& b) {
  return a.injected == b.injected && a.completed == b.completed &&
         a.shed == b.shed && a.mean_ms == b.mean_ms && a.p50_ms == b.p50_ms &&
         a.p95_ms == b.p95_ms && a.p99_ms == b.p99_ms &&
         a.goodput_rps == b.goodput_rps &&
         a.throughput_rps == b.throughput_rps &&
         a.good_fraction == b.good_fraction;
}

struct RunOutput {
  ExperimentSummary summary;
  std::string decisions_jsonl;
  std::vector<ctl::TimedCommand> recorded_commands;
  std::uint64_t applied = 0;
  std::uint64_t rejected = 0;
};

/// One run of the reference scenario: chain app (2-replica mid so a crash
/// is survivable), gradient admission on mid, armed (empty-plan) fault
/// injector, headless ctl plane with 500 ms safepoints. Commands arrive
/// either as a pre-run queue preload (the "recorded" run — the queue is the
/// exact path live /ctl requests take) or as a replay script.
RunOutput run_scenario(const std::vector<std::string>& preload,
                       const std::vector<ctl::TimedCommand>* script) {
  ExperimentConfig cfg;
  cfg.duration = sec(30);
  cfg.sla = msec(100);
  cfg.seed = 11;
  ApplicationConfig app = testutil::chain_app(0.4);
  app.services[1].with_replicas(2);
  Experiment exp(app, cfg);
  exp.closed_loop(12, msec(100));

  AdmissionOptions ao;
  ao.policy = AdmissionPolicy::kGradient;
  exp.enable_admission("mid", ao);
  exp.enable_faults(FaultPlan());  // armed injector, no scripted events

  ctl::CtlOptions copt;
  copt.start_server = false;  // headless: pure safepoint/replay machinery
  copt.safepoint_period = msec(500);
  exp.enable_ctl(copt);
  exp.start_all();

  ctl::CtlPlane* plane = exp.ctl_plane();
  for (const std::string& cmd : preload) plane->queue().push(cmd);
  if (script != nullptr) plane->set_script(*script);
  exp.run();

  RunOutput out;
  out.summary = exp.summary();
  std::ostringstream os;
  exp.export_decision_log(os);
  out.decisions_jsonl = os.str();
  out.recorded_commands = ctl::CtlPlane::commands_from_log(exp.decision_log());
  out.applied = plane->commands_applied();
  out.rejected = plane->commands_rejected();
  return out;
}

TEST(CtlReplay, RecordedCommandStreamReplaysByteForByte) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kOff);  // silence the WARN from the bogus command

  // The recorded run: a crash, an admission cap, and a command that gets
  // rejected (rejections are recorded too, and must replay identically).
  const std::vector<std::string> commands = {
      "fault crash mid 5", "cap mid 6", "frobnicate the widget"};
  const RunOutput recorded = run_scenario(commands, nullptr);
  EXPECT_EQ(recorded.applied, 2u);
  EXPECT_EQ(recorded.rejected, 1u);
  ASSERT_EQ(recorded.recorded_commands.size(), commands.size());
  for (std::size_t i = 0; i < commands.size(); ++i) {
    EXPECT_EQ(recorded.recorded_commands[i].text, commands[i]);
    EXPECT_GT(recorded.recorded_commands[i].at, 0);
  }
  // The crash actually happened and was logged by the injector.
  EXPECT_NE(recorded.decisions_jsonl.find("\"controller\":\"fault\""),
            std::string::npos);
  EXPECT_NE(recorded.decisions_jsonl.find("\"controller\":\"ctl\""),
            std::string::npos);

  // The replay: same scenario, commands re-applied from the recorded log.
  const RunOutput replayed = run_scenario({}, &recorded.recorded_commands);
  EXPECT_TRUE(same_sim_outputs(recorded.summary, replayed.summary));
  EXPECT_EQ(recorded.decisions_jsonl, replayed.decisions_jsonl)
      << "replay diverged from the recorded run";

  // Non-vacuity: the commands had real effect — a command-free run of the
  // same scenario produces a different history.
  const RunOutput baseline = run_scenario({}, nullptr);
  EXPECT_NE(baseline.decisions_jsonl, recorded.decisions_jsonl);
  EXPECT_FALSE(same_sim_outputs(baseline.summary, recorded.summary));

  set_log_level(old_level);
}

TEST(CtlReplay, ScriptedPauseResumePairNeverHangsHeadless) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kOff);
  // pause+resume recorded at the same safepoint replay within one drain —
  // the wait loop is never entered, so a headless replay cannot hang.
  std::vector<ctl::TimedCommand> script = {{sec(1), "pause"},
                                           {sec(1), "resume"}};
  const RunOutput out = run_scenario({}, &script);
  EXPECT_EQ(out.applied, 2u);
  EXPECT_NE(out.decisions_jsonl.find("\"command\":\"pause\""),
            std::string::npos);
  EXPECT_NE(out.decisions_jsonl.find("\"command\":\"resume\""),
            std::string::npos);
  set_log_level(old_level);
}

TEST(CtlReplay, LonePauseAutoResumesWithoutAServer) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kOff);
  // A pause with no server attached would wait forever for a resume that
  // cannot arrive; the plane detects this and resumes by itself.
  std::vector<ctl::TimedCommand> script = {{sec(1), "pause"}};
  const RunOutput out = run_scenario({}, &script);
  EXPECT_EQ(out.applied, 1u);
  EXPECT_GT(out.summary.completed, 0u);
  set_log_level(old_level);
}

TEST(CtlReplay, CommandsFromLogExtractsOnlyCtlRecords) {
  obs::DecisionLog log;
  obs::ControlDecisionRecord sora_rec;
  sora_rec.at = sec(1);
  sora_rec.controller = "sora";
  sora_rec.action = "resize";
  log.append(sora_rec);

  obs::ControlDecisionRecord ctl_rec;
  ctl_rec.at = sec(2);
  ctl_rec.controller = "ctl";
  ctl_rec.action = "applied";
  ctl_rec.command = "loglevel info";
  log.append(ctl_rec);

  obs::ControlDecisionRecord fault_rec;
  fault_rec.at = sec(3);
  fault_rec.controller = "fault";
  fault_rec.action = "crash";
  log.append(fault_rec);

  const auto script = ctl::CtlPlane::commands_from_log(log);
  ASSERT_EQ(script.size(), 1u);
  EXPECT_EQ(script[0].at, sec(2));
  EXPECT_EQ(script[0].text, "loglevel info");
}

// -- causal record determinism -----------------------------------------------

// The causal profiler's records (one causal_effect per what-if plus the
// causal_rank verdict) ride the same guarantee as ctl command replay: two
// independent profiling rounds of the same scenario export byte-identical
// decision logs, causal records included.
TEST(CtlReplay, CausalRoundDecisionLogExportsByteForByte) {
  const auto builder = [] {
    ExperimentConfig cfg;
    cfg.duration = sec(20);
    cfg.sla = msec(100);
    cfg.seed = 23;
    auto exp = std::make_unique<Experiment>(testutil::chain_app(0.4), cfg);
    exp->closed_loop(12, msec(100));
    return exp;
  };
  CausalLabOptions opts;
  opts.checkpoint = sec(8);
  opts.speedup_factors = {0.9};
  opts.pool_delta = 0;
  opts.cap_delta = 0;
  opts.services = {"mid"};
  opts.threads = 2;
  opts.scenario = "replay";

  CausalLab first(builder, opts);
  CausalLab second(builder, opts);
  first.run();
  second.run();

  std::ostringstream a, b;
  first.baseline().export_decision_log(a);
  second.baseline().export_decision_log(b);
  EXPECT_EQ(a.str(), b.str()) << "causal round export is not reproducible";
  EXPECT_NE(a.str().find("\"action\":\"causal_rank\""), std::string::npos);
  EXPECT_NE(a.str().find("\"action\":\"causal_effect\""), std::string::npos);
  EXPECT_NE(a.str().find("\"causal_rank\":"), std::string::npos);
}

// -- sweep parity with ctl enabled -------------------------------------------

/// The test_sweep run_point, plus a full ctl plane with a live (ephemeral,
/// idle) server attached.
ExperimentSummary run_point_with_ctl(std::size_t index) {
  ExperimentConfig cfg;
  cfg.duration = sec(10);
  cfg.sla = msec(100);
  cfg.seed = 100 + index;
  Experiment exp(testutil::chain_app(0.4), cfg);
  exp.closed_loop(10 + static_cast<int>(index) * 5, msec(100));
  ctl::CtlOptions copt;
  copt.port = 0;
  exp.enable_ctl(copt);
  exp.run();
  return exp.summary();
}

ExperimentSummary run_point_plain(std::size_t index) {
  ExperimentConfig cfg;
  cfg.duration = sec(10);
  cfg.sla = msec(100);
  cfg.seed = 100 + index;
  Experiment exp(testutil::chain_app(0.4), cfg);
  exp.closed_loop(10 + static_cast<int>(index) * 5, msec(100));
  exp.run();
  return exp.summary();
}

// Enabling the plane (safepoints + bound-but-idle server) must not change
// simulation results at all: the safepoint draws no randomness and mutates
// nothing unless a command is pending.
TEST(CtlSweepParity, IdlePlaneDoesNotPerturbResults) {
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(same_sim_outputs(run_point_plain(i), run_point_with_ctl(i)))
        << "ctl plane perturbed run " << i;
  }
}

// The PR's headline parity claim: serial and 4-thread sweeps of
// ctl-enabled experiments match bit for bit (each worker binds its own
// ephemeral server; ports are wall-side state the sim never observes).
TEST(CtlSweepParity, ParallelCtlEnabledSweepMatchesSerialBitForBit) {
  constexpr std::size_t kRuns = 6;
  SweepRunner serial(1);
  SweepRunner parallel(4);
  const auto s = serial.map(kRuns, run_point_with_ctl);
  const auto p = parallel.map(kRuns, run_point_with_ctl);
  ASSERT_EQ(s.size(), kRuns);
  ASSERT_EQ(p.size(), kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_TRUE(same_sim_outputs(s[i], p[i]))
        << "ctl-enabled run " << i << " diverged";
  }
  // Distinct configs still produce distinct outputs (guards against the
  // parity check comparing constants).
  EXPECT_FALSE(same_sim_outputs(s[0], s[1]));
}

}  // namespace
}  // namespace sora
