// Parity contract for the sharded engine: with any shard count (and with a
// worker pool), a run must produce byte-identical observable output to the
// serial engine — summaries, decision logs, and the trace-warehouse digest.
// Plus the window-scheduler ordering rules that make that possible.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "harness/experiment.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace sora {
namespace {

// ---------------------------------------------------------------------------
// Scheduler-level ordering rules.

// Regression: events scheduled before configure_shards (controller ticks,
// samplers, exporters) must land in the GLOBAL lane, not shard 0. When the
// scatter sampler's periodic ran inside shard 0 it interleaved with that
// shard's spans mid-window and shards>=2 diverged from serial.
TEST(ShardScheduler, PreConfigPeriodicStaysGlobal) {
  Simulator sim;
  std::vector<int> lanes;
  sim.schedule_periodic(usec(10),
                        [&] { lanes.push_back(Simulator::current_shard()); });
  sim.configure_shards(2, /*lookahead=*/usec(5));
  sim.run_until(usec(35));
  EXPECT_EQ(lanes, (std::vector<int>{-1, -1, -1}));
}

// Tie rule at a window edge W: global events at W run before shard events
// at W (the shard pass is exclusive of the bound; the deferred shard event
// runs at the start of the next window).
TEST(ShardScheduler, GlobalBeforeShardAtEqualTime) {
  Simulator sim;
  sim.configure_shards(2, /*lookahead=*/usec(100));
  std::vector<std::string> order;
  {
    Simulator::ShardScope scope(1);
    sim.schedule_at(usec(100), [&] { order.push_back("shard"); });
  }
  sim.schedule_at(usec(100), [&] { order.push_back("global"); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<std::string>{"global", "shard"}));
}

// Cross-shard sends are deferred by the wire latency and delivered on the
// destination shard's lane.
TEST(ShardScheduler, CrossShardSendArrivesAfterLatency) {
  Simulator sim;
  sim.configure_shards(2, /*lookahead=*/usec(5));
  SimTime delivered_at = -1;
  int delivered_on = -2;
  {
    Simulator::ShardScope scope(0);
    sim.schedule_at(usec(10), [&] {
      sim.send_cross(/*dst_shard=*/1, /*sender=*/7, /*send_idx=*/0,
                     /*delay=*/usec(5), [&] {
                       delivered_at = sim.now();
                       delivered_on = Simulator::current_shard();
                     });
    });
  }
  sim.run_all();
  EXPECT_EQ(delivered_at, usec(15));
  EXPECT_EQ(delivered_on, 1);
}

// Same-arrival mailbox deliveries merge in (sender, send_idx) order — never
// in send order — so the drain sequence is independent of which shard's
// window emitted them first.
TEST(ShardScheduler, SameArrivalMergesBySenderThenSendIndex) {
  Simulator sim;
  sim.configure_shards(2, /*lookahead=*/usec(5));
  std::vector<std::pair<int, int>> order;
  {
    Simulator::ShardScope scope(0);
    sim.schedule_at(usec(10), [&] {
      sim.send_cross(1, /*sender=*/9, /*send_idx=*/0, usec(5),
                     [&] { order.push_back({9, 0}); });
      sim.send_cross(1, /*sender=*/3, /*send_idx=*/1, usec(5),
                     [&] { order.push_back({3, 1}); });
      sim.send_cross(1, /*sender=*/3, /*send_idx=*/0, usec(5),
                     [&] { order.push_back({3, 0}); });
    });
  }
  sim.run_all();
  const std::vector<std::pair<int, int>> want = {{3, 0}, {3, 1}, {9, 0}};
  EXPECT_EQ(order, want);
}

// ---------------------------------------------------------------------------
// End-to-end parity: full Sora-managed runs, serial vs sharded vs threaded.

struct LegOutput {
  std::string summary;
  std::string decisions;
  std::uint64_t trace_digest = 0;
  std::uint64_t traces_stored = 0;
};

std::string summary_fingerprint(const ExperimentSummary& s) {
  std::ostringstream os;
  os.precision(17);
  os << s.injected << '|' << s.completed << '|' << s.shed << '|' << s.mean_ms
     << '|' << s.p50_ms << '|' << s.p95_ms << '|' << s.p99_ms << '|'
     << s.goodput_rps << '|' << s.throughput_rps << '|' << s.good_fraction
     << '|' << s.slo_episodes;
  return os.str();
}

FaultPlan parity_fault_plan() {
  FaultEvent crash;
  crash.kind = FaultKind::kCrashInstance;
  crash.at = sec(12);
  crash.service = "mid";
  crash.drop_inflight = true;
  crash.duration = sec(8);
  FaultEvent scatter;
  scatter.kind = FaultKind::kScatterDropout;
  scatter.at = sec(25);
  scatter.duration = sec(10);
  scatter.fraction = 0.5;
  FaultPlan plan;
  plan.add(crash).add(scatter);
  return plan;
}

LegOutput run_leg(int shards, int threads, bool faulted) {
  ExperimentConfig cfg;
  cfg.duration = sec(45);
  cfg.sla = msec(100);
  cfg.seed = 7;
  cfg.shard_threads = threads;
  ApplicationConfig app = testutil::chain_app(0.3);
  app.network_latency = usec(300);  // cross-service wire: makes shards legal
  app.services[1].with_replicas(2);
  Experiment exp(app, cfg);
  exp.set_shards(shards);  // after the ctor so it beats any env override
  SoraFrameworkOptions so;
  so.sla = cfg.sla;
  so.control_period = sec(5);
  auto& fw = exp.add_sora(so);
  fw.manage(ResourceKnob::entry(exp.app().service("mid")));
  if (faulted) exp.enable_faults(parity_fault_plan());
  exp.closed_loop(20, msec(50));
  exp.run();

  LegOutput out;
  out.summary = summary_fingerprint(exp.summary());
  std::ostringstream dl;
  exp.export_decision_log(dl);
  out.decisions = dl.str();
  out.trace_digest = exp.warehouse().digest();
  out.traces_stored = exp.warehouse().total_stored();
  return out;
}

void expect_identical(const LegOutput& serial, const LegOutput& other,
                      const std::string& label) {
  EXPECT_EQ(serial.summary, other.summary) << label;
  EXPECT_EQ(serial.decisions, other.decisions) << label;
  EXPECT_EQ(serial.trace_digest, other.trace_digest) << label;
  EXPECT_EQ(serial.traces_stored, other.traces_stored) << label;
}

// The parity contract: configured runs are byte-identical at every shard
// count. shards=1 is the serial reference — same engine, same canonical
// mailbox ordering, no cross-shard concurrency. (The unconfigured shards=0
// fast path breaks same-timestamp delivery ties by heap insertion order
// instead of the mailbox (sender, send_idx) key, so it is compared on
// aggregate behaviour, not bytes.)
TEST(ShardParity, ShardCountsProduceIdenticalOutput) {
  const LegOutput serial = run_leg(/*shards=*/1, /*threads=*/1, false);
  EXPECT_GT(serial.traces_stored, 0u);
  EXPECT_FALSE(serial.decisions.empty());
  expect_identical(serial, run_leg(2, 1, false), "shards=2");
  expect_identical(serial, run_leg(4, 1, false), "shards=4");
}

// The legacy unconfigured engine stays the default and must agree with the
// configured engine on what happened — same completions and shed count —
// even though same-timestamp tie ordering (and thus exact bytes) may differ.
TEST(ShardParity, UnconfiguredSerialAgreesOnAggregates) {
  const LegOutput serial = run_leg(/*shards=*/0, /*threads=*/1, false);
  const LegOutput sharded = run_leg(/*shards=*/1, /*threads=*/1, false);
  const auto count_field = [](const std::string& s) {
    return s.substr(0, s.find('|'));  // injected
  };
  const long injected_serial = std::stol(count_field(serial.summary));
  const long injected_sharded = std::stol(count_field(sharded.summary));
  EXPECT_NEAR(static_cast<double>(injected_serial),
              static_cast<double>(injected_sharded),
              0.01 * static_cast<double>(injected_serial));
  EXPECT_GT(serial.traces_stored, 0u);
}

TEST(ShardParity, WorkerThreadsDoNotChangeOutput) {
  const LegOutput one = run_leg(/*shards=*/2, /*threads=*/1, false);
  const LegOutput two = run_leg(/*shards=*/2, /*threads=*/2, false);
  expect_identical(one, two, "threads=2");
}

TEST(ShardParity, FaultedRunsMatchAcrossShardCounts) {
  const LegOutput serial = run_leg(/*shards=*/1, /*threads=*/1, true);
  EXPECT_GT(serial.traces_stored, 0u);
  expect_identical(serial, run_leg(2, 1, true), "faulted shards=2");
  expect_identical(serial, run_leg(4, 2, true), "faulted shards=4 threads=2");
}

// Canonical span ids survive sharding: every stored trace carries DFS-ordered
// per-trace ids 1..N (parents before children), so digests can't depend on
// which lane allocated the span.
TEST(ShardParity, StoredTracesCarryCanonicalDfsSpanIds) {
  ExperimentConfig cfg;
  cfg.duration = sec(20);
  cfg.sla = msec(100);
  cfg.seed = 11;
  ApplicationConfig app = testutil::chain_app(0.3);
  app.network_latency = usec(300);
  Experiment exp(app, cfg);
  exp.set_shards(2);
  exp.closed_loop(10, msec(50));
  exp.run();

  std::uint64_t checked = 0;
  exp.warehouse().for_each_in_window(
      0, cfg.duration + sec(1), [&](const Trace& t) {
        ++checked;
        for (std::size_t i = 0; i < t.spans.size(); ++i) {
          EXPECT_EQ(t.spans[i].id.value(), i + 1) << "trace " << t.id.value();
          if (i == 0) {
            EXPECT_FALSE(t.spans[i].parent.valid());
          } else {
            // DFS preorder: a parent is emitted before all of its children.
            EXPECT_LT(t.spans[i].parent.value(), t.spans[i].id.value());
          }
        }
      });
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace sora
