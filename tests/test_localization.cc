// Tests for critical-service localization (utilization + PCC two-step).
#include "core/localization.h"

#include <gtest/gtest.h>

#include "svc/application.h"
#include "test_util.h"
#include "trace/tracer.h"

namespace sora {
namespace {

struct Fixture {
  Simulator sim;
  Tracer tracer;
  TraceWarehouse warehouse{100000};
  Application app;
  explicit Fixture(ApplicationConfig cfg, std::uint64_t seed = 1)
      : app(sim, tracer, std::move(cfg), seed) {
    warehouse.attach(tracer);
  }
  void drive(int per_second, SimTime duration) {
    const SimTime gap = sec(1) / per_second;
    for (SimTime t = 0; t < duration; t += gap) {
      sim.schedule_at(sim.now() + t, [this] { app.inject(0, [](SimTime) {}); });
    }
  }
};

/// Chain where "mid" is the bottleneck: high variable demand, few cores.
ApplicationConfig bottleneck_chain() {
  ApplicationConfig app = testutil::chain_app(0.8);
  for (auto& s : app.services) {
    if (s.name == "mid") {
      s.cores = 1.0;
      s.classes[0].request_demand.mean_us = 4000;
      s.classes[0].response_demand.mean_us = 2000;
    } else {
      s.cores = 8.0;
    }
  }
  return app;
}

TEST(Localizer, FindsBottleneckService) {
  Fixture f(bottleneck_chain());
  CriticalServiceLocalizer loc(f.app, f.warehouse);
  loc.begin_window();
  f.drive(140, sec(10));
  f.sim.run_until(sec(10));
  const CriticalServiceReport report = loc.analyze();
  ASSERT_TRUE(report.critical.valid());
  EXPECT_EQ(f.app.service_name(report.critical), "mid");
  EXPECT_EQ(f.app.service_name(report.by_utilization), "mid");
  EXPECT_GT(report.traces_analyzed, 100u);
}

TEST(Localizer, DiagnosticsSortedByPcc) {
  Fixture f(bottleneck_chain());
  CriticalServiceLocalizer loc(f.app, f.warehouse);
  loc.begin_window();
  f.drive(140, sec(10));
  f.sim.run_until(sec(10));
  const auto report = loc.analyze();
  ASSERT_GE(report.services.size(), 3u);
  for (std::size_t i = 1; i < report.services.size(); ++i) {
    EXPECT_GE(report.services[i - 1].pcc, report.services[i].pcc);
  }
  // The bottleneck has the highest utilization among the three.
  double mid_util = 0.0, max_other = 0.0;
  for (const auto& d : report.services) {
    if (f.app.service_name(d.service) == "mid") {
      mid_util = d.utilization;
    } else {
      max_other = std::max(max_other, d.utilization);
    }
  }
  EXPECT_GT(mid_util, max_other);
}

TEST(Localizer, EmptyWindowFallsBackToUtilization) {
  Fixture f(bottleneck_chain());
  CriticalServiceLocalizer loc(f.app, f.warehouse);
  loc.begin_window();
  f.sim.run_until(sec(1));  // no traffic at all
  const auto report = loc.analyze();
  EXPECT_EQ(report.traces_analyzed, 0u);
  // Fallback verdict still produced (utilization winner, all ~0).
  EXPECT_TRUE(report.by_utilization.valid());
}

TEST(Localizer, WindowRestartsOnBeginWindow) {
  Fixture f(bottleneck_chain());
  CriticalServiceLocalizer loc(f.app, f.warehouse);
  loc.begin_window();
  f.drive(100, sec(5));
  f.sim.run_all();  // drain every in-flight request
  loc.analyze();
  loc.begin_window();
  f.sim.schedule_at(f.sim.now() + sec(1), [] {});
  f.sim.run_all();
  const auto report = loc.analyze();
  // New window, no new traffic. (A trace completing exactly at the window
  // boundary is counted inclusively, hence <= 1.)
  EXPECT_LE(report.traces_analyzed, 1u);
}

TEST(Localizer, CriticalShiftsWithBottleneck) {
  // Make "leaf" the bottleneck instead.
  ApplicationConfig cfg = testutil::chain_app(0.8);
  for (auto& s : cfg.services) {
    if (s.name == "leaf") {
      s.cores = 1.0;
      s.classes[0].request_demand.mean_us = 6000;
    } else {
      s.cores = 8.0;
    }
  }
  Fixture f(std::move(cfg));
  CriticalServiceLocalizer loc(f.app, f.warehouse);
  loc.begin_window();
  f.drive(140, sec(10));
  f.sim.run_until(sec(10));
  const auto report = loc.analyze();
  EXPECT_EQ(f.app.service_name(report.critical), "leaf");
}

}  // namespace
}  // namespace sora
