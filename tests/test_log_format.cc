#include "common/log.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/simulator.h"

namespace sora {
namespace {

/// Captures std::cerr for one test body and restores level/clock state.
class LogCapture {
 public:
  LogCapture() : old_level_(log_level()), old_buf_(std::cerr.rdbuf(os_.rdbuf())) {
    set_log_level(LogLevel::kInfo);
  }
  ~LogCapture() {
    std::cerr.rdbuf(old_buf_);
    set_log_level(old_level_);
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
  LogLevel old_level_;
  std::streambuf* old_buf_;
};

TEST(LogFormat, LinesCarryLevelTag) {
  LogCapture cap;
  SORA_INFO << "hello";
  SORA_WARN << "danger";
  EXPECT_NE(cap.str().find("[INFO] hello\n"), std::string::npos);
  EXPECT_NE(cap.str().find("[WARN] danger\n"), std::string::npos);
}

TEST(LogFormat, BelowThresholdIsDiscarded) {
  LogCapture cap;
  SORA_DEBUG << "invisible";
  EXPECT_EQ(cap.str(), "");
}

TEST(LogFormat, InstalledClockAddsSimTime) {
  LogCapture cap;
  static SimTime fake_now = msec(1500);
  int ctx = 0;
  set_log_clock(&ctx, [](const void*) { return fake_now; });
  SORA_INFO << "stamped";
  clear_log_clock(&ctx);
  EXPECT_NE(cap.str().find("[INFO 1.500s] stamped\n"), std::string::npos);

  SORA_INFO << "bare";
  EXPECT_NE(cap.str().find("[INFO] bare\n"), std::string::npos);
}

TEST(LogFormat, SimulatorInstallsItsClockWhileAlive) {
  LogCapture cap;
  {
    Simulator sim;
    sim.schedule_at(sec(15), [] { SORA_INFO << "from the future"; });
    sim.run_until(sec(20));
  }
  EXPECT_NE(cap.str().find("[INFO 15.000s] from the future\n"),
            std::string::npos);

  // The destroyed simulator's clock is gone again.
  SORA_INFO << "after";
  EXPECT_NE(cap.str().find("[INFO] after\n"), std::string::npos);
}

TEST(LogFormat, ClearingAStaleOwnerKeepsTheCurrentClock) {
  LogCapture cap;
  int a = 0, b = 0;
  set_log_clock(&a, [](const void*) { return sec(1); });
  set_log_clock(&b, [](const void*) { return sec(2); });
  clear_log_clock(&a);  // a is stale; must not tear down b's clock
  SORA_INFO << "still stamped";
  clear_log_clock(&b);
  EXPECT_NE(cap.str().find("[INFO 2.000s] still stamped\n"),
            std::string::npos);
}

}  // namespace
}  // namespace sora
