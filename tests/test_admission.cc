// Tests for the admission-control / overload-protection subsystem:
// controller mechanics (token bucket, AIMD, gradient, knee coupling,
// deadline shedding, priority classes), the end-to-end wiring through
// Experiment/Application/Service, shed-count reconciliation across the
// decision log / metrics registry / latency recorder, determinism, and
// composition with fault injection.
#include "admission/controller.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace sora {
namespace {

RequestMeta meta_with(Priority p = Priority::kHigh, SimTime deadline = 0) {
  RequestMeta m;
  m.priority = p;
  m.deadline = deadline;
  return m;
}

// ---------------------------------------------------------------------------
// Controller unit mechanics
// ---------------------------------------------------------------------------

TEST(AdmissionController, TokenBucketShedsWhenDrained) {
  AdmissionOptions opts;
  opts.policy = AdmissionPolicy::kTokenBucket;
  opts.tokens_per_sec = 10.0;
  opts.bucket_burst = 5.0;
  AdmissionController adm("svc", opts);

  int admits = 0, sheds = 0;
  for (int i = 0; i < 8; ++i) {
    const auto d = adm.decide(meta_with(), 0);
    if (d.admit) {
      adm.on_admit(0);
      ++admits;
    } else {
      EXPECT_STREQ(d.reason, "no_tokens");
      ++sheds;
    }
  }
  EXPECT_EQ(admits, 5);
  EXPECT_EQ(sheds, 3);
  EXPECT_EQ(adm.admitted(), 5u);
  EXPECT_EQ(adm.shed(), 3u);

  // One second later the bucket refilled to its burst cap.
  int refilled = 0;
  for (int i = 0; i < 8; ++i) {
    if (adm.decide(meta_with(), sec(1)).admit) {
      adm.on_admit(sec(1));
      ++refilled;
    }
  }
  EXPECT_EQ(refilled, 5);
}

TEST(AdmissionController, TokenBucketReservesHeadroomFromBatch) {
  AdmissionOptions opts;
  opts.policy = AdmissionPolicy::kTokenBucket;
  opts.tokens_per_sec = 10.0;
  opts.bucket_burst = 10.0;
  opts.batch_threshold = 0.5;  // batch may use at most half the burst
  AdmissionController adm("svc", opts);

  int batch_admits = 0;
  while (adm.decide(meta_with(Priority::kBatch), 0).admit) {
    adm.on_admit(0);
    ++batch_admits;
  }
  EXPECT_EQ(batch_admits, 5);
  // High priority still gets the reserved half.
  EXPECT_TRUE(adm.decide(meta_with(Priority::kHigh), 0).admit);
  EXPECT_EQ(adm.shed_by_priority(Priority::kBatch), 1u);
  EXPECT_EQ(adm.shed_by_priority(Priority::kHigh), 0u);
}

TEST(AdmissionController, AimdBacksOffOnErrorsAndRecovers) {
  AdmissionOptions opts;
  opts.policy = AdmissionPolicy::kAimd;
  opts.initial_limit = 10.0;
  opts.min_limit = 2.0;
  opts.aimd_backoff = 0.5;
  opts.aimd_latency_threshold = msec(100);
  AdmissionController adm("svc", opts);
  ASSERT_DOUBLE_EQ(adm.current_limit(), 10.0);

  adm.on_departure(0, msec(10), /*ok=*/false);  // error -> backoff
  EXPECT_DOUBLE_EQ(adm.current_limit(), 5.0);
  adm.on_departure(0, msec(200), /*ok=*/true);  // slow -> backoff
  EXPECT_DOUBLE_EQ(adm.current_limit(), 2.5);

  const double before = adm.current_limit();
  adm.on_departure(0, msec(10), /*ok=*/true);  // fast -> additive increase
  EXPECT_GT(adm.current_limit(), before);
  EXPECT_LE(adm.current_limit(), before + 1.0);
}

TEST(AdmissionController, AimdNeverLeavesConfiguredBounds) {
  AdmissionOptions opts;
  opts.policy = AdmissionPolicy::kAimd;
  opts.initial_limit = 4.0;
  opts.min_limit = 2.0;
  opts.max_limit = 6.0;
  opts.aimd_backoff = 0.1;
  opts.aimd_latency_threshold = msec(100);
  AdmissionController adm("svc", opts);
  for (int i = 0; i < 20; ++i) adm.on_departure(0, msec(10), false);
  EXPECT_DOUBLE_EQ(adm.current_limit(), 2.0);
  for (int i = 0; i < 1000; ++i) adm.on_departure(0, msec(10), true);
  EXPECT_DOUBLE_EQ(adm.current_limit(), 6.0);
}

TEST(AdmissionController, GradientShrinksUnderLatencyInflation) {
  AdmissionOptions opts;
  opts.policy = AdmissionPolicy::kGradient;
  opts.initial_limit = 100.0;
  AdmissionController adm("svc", opts);

  // Establish a fast min-RTT, then sustained 10x-inflated RTTs.
  adm.on_departure(0, msec(5), true);
  for (int i = 0; i < 200; ++i) adm.on_departure(0, msec(50), true);
  EXPECT_LT(adm.current_limit(), 100.0);

  // Back to min-RTT-level latencies: the limit grows again.
  const double congested = adm.current_limit();
  for (int i = 0; i < 200; ++i) adm.on_departure(0, msec(5), true);
  EXPECT_GT(adm.current_limit(), congested);
}

TEST(AdmissionController, ConcurrencyLimitShedsAboveLimit) {
  AdmissionOptions opts;
  opts.policy = AdmissionPolicy::kGradient;
  opts.initial_limit = 3.0;
  AdmissionController adm("svc", opts);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(adm.decide(meta_with(), 0).admit);
    adm.on_admit(0);
  }
  const auto d = adm.decide(meta_with(), 0);
  EXPECT_FALSE(d.admit);
  EXPECT_STREQ(d.reason, "concurrency_limit");
  EXPECT_DOUBLE_EQ(d.limit, 3.0);

  // A departure frees a slot.
  adm.on_departure(0, msec(1), true);
  EXPECT_TRUE(adm.decide(meta_with(), 0).admit);
  EXPECT_EQ(adm.in_flight(), 2);
}

TEST(AdmissionController, KneeCoupledFollowsPublishedKnee) {
  AdmissionOptions opts;
  opts.policy = AdmissionPolicy::kKneeCoupled;
  opts.initial_limit = 64.0;
  opts.min_limit = 2.0;
  opts.knee_headroom = 1.0;
  AdmissionController adm("svc", opts);
  ASSERT_DOUBLE_EQ(adm.current_limit(), 64.0);

  adm.set_knee(12.0, sec(1));
  EXPECT_DOUBLE_EQ(adm.current_limit(), 12.0);
  EXPECT_DOUBLE_EQ(adm.knee(), 12.0);
  EXPECT_EQ(adm.knee_updates(), 1u);

  // Below-min knees clamp; zero/negative publications are ignored.
  adm.set_knee(0.5, sec(2));
  EXPECT_DOUBLE_EQ(adm.current_limit(), 2.0);
  adm.set_knee(0.0, sec(3));
  EXPECT_EQ(adm.knee_updates(), 2u);

  // Shed reason names the knee once one was published.
  for (int i = 0; i < 2; ++i) adm.on_admit(sec(3));
  const auto d = adm.decide(meta_with(), sec(3));
  EXPECT_FALSE(d.admit);
  EXPECT_STREQ(d.reason, "knee_limit");
}

TEST(AdmissionController, KneeUpdatesAppendLimitUpdateRecords) {
  obs::DecisionLog log;
  AdmissionOptions opts;
  opts.policy = AdmissionPolicy::kKneeCoupled;
  opts.initial_limit = 64.0;
  AdmissionController adm("svc", opts);
  adm.set_decision_log(&log);
  adm.set_knee(8.0, sec(1));
  adm.set_knee(8.0, sec(2));   // no change -> no record
  adm.set_knee(16.0, sec(3));
  ASSERT_EQ(log.count_action("limit_update"), 2u);
  const auto recs = log.by_action("limit_update");
  EXPECT_EQ(recs[0]->controller, "admission");
  EXPECT_EQ(recs[0]->policy, "knee_coupled");
  EXPECT_DOUBLE_EQ(recs[0]->admission_limit, 8.0);
  EXPECT_DOUBLE_EQ(recs[1]->admission_limit, 16.0);
  EXPECT_DOUBLE_EQ(recs[1]->knee_concurrency, 16.0);
}

TEST(AdmissionController, DeadlineShedUsesMinRttEstimate) {
  AdmissionOptions opts;
  opts.policy = AdmissionPolicy::kNone;  // isolate the deadline check
  AdmissionController adm("svc", opts);

  // No min-RTT yet: deadline requests are admitted (nothing to compare).
  EXPECT_TRUE(adm.decide(meta_with(Priority::kHigh, msec(1)), 0).admit);

  adm.on_admit(0);
  adm.on_departure(msec(20), msec(20), true);  // min-RTT estimate = 20ms
  ASSERT_EQ(adm.min_rtt(), msec(20));

  // 5ms of remaining budget < 20ms min-RTT -> shed with the deadline reason.
  const auto d = adm.decide(meta_with(Priority::kHigh, msec(30)), msec(25));
  EXPECT_FALSE(d.admit);
  EXPECT_STREQ(d.reason, "deadline");
  EXPECT_EQ(d.remaining_deadline, msec(5));

  // A request with enough remaining budget passes.
  EXPECT_TRUE(adm.decide(meta_with(Priority::kHigh, msec(60)), msec(25)).admit);
  // Already-expired deadlines shed too.
  EXPECT_FALSE(adm.decide(meta_with(Priority::kHigh, msec(10)), msec(25)).admit);
}

TEST(AdmissionController, BatchGatedAtUtilizationThreshold) {
  AdmissionOptions opts;
  opts.policy = AdmissionPolicy::kGradient;
  opts.initial_limit = 10.0;
  opts.batch_threshold = 0.5;
  AdmissionController adm("svc", opts);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(adm.decide(meta_with(Priority::kBatch), 0).admit);
    adm.on_admit(0);
  }
  // At 5/10 in flight, batch is out of headroom but high still fits.
  EXPECT_FALSE(adm.decide(meta_with(Priority::kBatch), 0).admit);
  EXPECT_TRUE(adm.decide(meta_with(Priority::kHigh), 0).admit);
  EXPECT_EQ(adm.shed_by_priority(Priority::kBatch), 1u);
}

TEST(AdmissionController, ShedCountsReconcileAcrossLogAndMetrics) {
  obs::DecisionLog log;
  obs::MetricsRegistry metrics;
  AdmissionOptions opts;
  opts.policy = AdmissionPolicy::kGradient;
  opts.initial_limit = 2.0;
  AdmissionController adm("svc", opts);
  adm.set_decision_log(&log);
  adm.set_metrics(&metrics);

  for (int i = 0; i < 10; ++i) {
    const auto d = adm.decide(meta_with(i % 2 ? Priority::kBatch
                                              : Priority::kHigh),
                              msec(i));
    if (d.admit) adm.on_admit(msec(i));
  }
  ASSERT_GT(adm.shed(), 0u);
  EXPECT_EQ(adm.admitted() + adm.shed(), 10u);
  EXPECT_EQ(adm.shed(), adm.shed_by_priority(Priority::kHigh) +
                            adm.shed_by_priority(Priority::kBatch));

  // Decision log: one "shed" record per shed, fully annotated.
  EXPECT_EQ(log.count_action("shed"), adm.shed());
  for (const auto* rec : log.by_action("shed")) {
    EXPECT_EQ(rec->controller, "admission");
    EXPECT_EQ(rec->target, "svc");
    EXPECT_EQ(rec->policy, "gradient");
    EXPECT_FALSE(rec->reason.empty());
    EXPECT_GT(rec->admission_limit, 0.0);
    EXPECT_TRUE(rec->priority == "high" || rec->priority == "batch");
  }

  // Metrics: labeled shed counters sum to the same number; admits match.
  const auto snap = metrics.snapshot();
  double metric_sheds = 0.0, metric_admits = 0.0;
  for (const auto& s : snap.series) {
    if (s.name == "admission.shed") metric_sheds += s.value;
    if (s.name == "admission.admitted") metric_admits += s.value;
  }
  EXPECT_DOUBLE_EQ(metric_sheds, static_cast<double>(adm.shed()));
  EXPECT_DOUBLE_EQ(metric_admits, static_cast<double>(adm.admitted()));
  const auto* gauge = snap.find("admission.limit", {{"service", "svc"}});
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, adm.current_limit());
}

// ---------------------------------------------------------------------------
// End-to-end wiring through Experiment / Application / Service
// ---------------------------------------------------------------------------

TEST(AdmissionExperiment, UnknownServiceThrows) {
  ExperimentConfig cfg;
  cfg.duration = sec(1);
  Experiment exp(testutil::single_service(), cfg);
  EXPECT_THROW(exp.enable_admission("nope"), std::invalid_argument);
}

/// Overloaded single service with a tight concurrency limit on the entry
/// service: front-door sheds, counted everywhere.
struct FrontDoorRun {
  ExperimentSummary summary;
  std::uint64_t ctrl_shed = 0;
  std::uint64_t ctrl_admitted = 0;
  std::uint64_t app_shed = 0;
  std::uint64_t log_sheds = 0;
  double metric_sheds = 0.0;
  std::string decisions_jsonl;
};

FrontDoorRun run_front_door(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.duration = sec(20);
  cfg.sla = msec(200);
  cfg.seed = seed;
  Experiment exp(testutil::single_service(2.0, 8, 4000, 1000), cfg);
  AdmissionOptions ao;
  ao.policy = AdmissionPolicy::kGradient;
  ao.initial_limit = 4.0;
  ao.max_limit = 8.0;
  AdmissionController& adm = exp.enable_admission("svc", ao);
  exp.closed_loop(200, msec(50));
  exp.run();

  FrontDoorRun out;
  out.summary = exp.summary();
  out.ctrl_shed = adm.shed();
  out.ctrl_admitted = adm.admitted();
  out.app_shed = exp.app().shed();
  out.log_sheds = exp.decision_log().count_action("shed");
  const auto snap = exp.app().metrics().snapshot();
  for (const auto& s : snap.series) {
    if (s.name == "admission.shed") out.metric_sheds += s.value;
  }
  std::ostringstream os;
  exp.export_decision_log(os);
  out.decisions_jsonl = os.str();
  return out;
}

TEST(AdmissionExperiment, FrontDoorShedsReconcileEverywhere) {
  const FrontDoorRun r = run_front_door(7);
  ASSERT_GT(r.ctrl_shed, 0u) << "overload must trigger sheds";
  // Entry-service sheds happen at the application's front door.
  EXPECT_EQ(r.ctrl_shed, r.app_shed);
  // One decision-log record and one metrics increment per shed.
  EXPECT_EQ(r.log_sheds, r.ctrl_shed);
  EXPECT_DOUBLE_EQ(r.metric_sheds, static_cast<double>(r.ctrl_shed));
  // The client-side recorder counts every shed (excluded from percentiles).
  EXPECT_EQ(r.summary.shed, r.ctrl_shed);
  // Nothing is lost: every injected request was admitted or shed, and all
  // admitted ones either completed or were still in flight at the horizon.
  EXPECT_EQ(r.summary.injected, r.ctrl_admitted + r.ctrl_shed);
  EXPECT_GE(r.ctrl_admitted, r.summary.completed);
  // Shed records carry the full annotation in the exported JSONL.
  EXPECT_NE(r.decisions_jsonl.find("\"action\":\"shed\""), std::string::npos);
  EXPECT_NE(r.decisions_jsonl.find("\"policy\":\"gradient\""),
            std::string::npos);
}

TEST(AdmissionExperiment, ReRunIsByteIdentical) {
  const FrontDoorRun a = run_front_door(11);
  const FrontDoorRun b = run_front_door(11);
  EXPECT_EQ(a.summary.injected, b.summary.injected);
  EXPECT_EQ(a.summary.completed, b.summary.completed);
  EXPECT_EQ(a.summary.shed, b.summary.shed);
  EXPECT_EQ(a.summary.p99_ms, b.summary.p99_ms);
  EXPECT_EQ(a.summary.goodput_rps, b.summary.goodput_rps);
  EXPECT_EQ(a.decisions_jsonl, b.decisions_jsonl);
  // Different seeds genuinely differ (guards against constant outputs).
  const FrontDoorRun c = run_front_door(12);
  EXPECT_NE(a.decisions_jsonl, c.decisions_jsonl);
}

/// Admission installed mid-chain: sheds close the downstream span as a
/// rejected error response and fail the whole request.
TEST(AdmissionExperiment, MidChainShedsMarkSpansRejected) {
  ExperimentConfig cfg;
  cfg.duration = sec(20);
  cfg.sla = msec(200);
  cfg.seed = 3;
  Experiment exp(testutil::chain_app(0.2), cfg);
  AdmissionOptions ao;
  ao.policy = AdmissionPolicy::kGradient;
  ao.initial_limit = 2.0;
  ao.max_limit = 4.0;
  AdmissionController& adm = exp.enable_admission("mid", ao);
  exp.closed_loop(150, msec(50));
  exp.run();

  ASSERT_GT(adm.shed(), 0u);
  // Client view: every mid-shed fails exactly one request. Requests shed at
  // mid right before the horizon may still be finishing their (error)
  // response at "front" when the run ends, so reconcile modulo in-flight.
  EXPECT_LE(exp.summary().shed, adm.shed());
  EXPECT_GE(exp.summary().shed + exp.app().in_flight(), adm.shed());
  EXPECT_EQ(exp.app().shed(), 0u);  // no front-door sheds on "front"

  const ServiceId mid = exp.app().service("mid")->id();
  std::uint64_t rejected_spans = 0, rejected_traces = 0;
  exp.warehouse().for_each_in_window(0, cfg.duration, [&](const Trace& t) {
    if (t.rejected()) ++rejected_traces;
    for (const Span& s : t.spans) {
      if (s.rejected) {
        ++rejected_spans;
        EXPECT_EQ(s.service, mid);
        EXPECT_TRUE(s.failed) << "rejections are error responses";
      }
    }
  });
  EXPECT_GT(rejected_spans, 0u);
  EXPECT_EQ(rejected_spans, rejected_traces);  // one shed hop per rejection
}

TEST(AdmissionExperiment, BatchPriorityShedsBeforeHigh) {
  ExperimentConfig cfg;
  cfg.duration = sec(20);
  cfg.sla = msec(200);
  cfg.seed = 9;
  ApplicationConfig app = testutil::single_service(2.0, 8, 4000, 1000);
  app.services[0].with_demand(1, 4000, 1000, 0.0);
  app.entry_service[1] = "svc";
  Experiment exp(std::move(app), cfg);

  AdmissionOptions ao;
  ao.policy = AdmissionPolicy::kGradient;
  ao.initial_limit = 4.0;
  ao.max_limit = 8.0;
  ao.batch_threshold = 0.5;
  AdmissionController& adm = exp.enable_admission("svc", ao);

  RequestMix mix{{0, 1.0}, {1, 1.0}};
  mix.with_priority(1, Priority::kBatch);
  auto& gen = exp.closed_loop(200, msec(50), mix);
  std::map<int, std::uint64_t> ok_by_class, all_by_class;
  gen.set_observer([&](SimTime, int cls, SimTime, bool ok) {
    ++all_by_class[cls];
    if (ok) ++ok_by_class[cls];
  });
  exp.run();

  ASSERT_GT(adm.shed_by_priority(Priority::kBatch), 0u);
  // Batch loses headroom first: its shed share must dominate.
  EXPECT_GT(adm.shed_by_priority(Priority::kBatch),
            adm.shed_by_priority(Priority::kHigh));
  // And the high class keeps a better admitted (ok) fraction.
  ASSERT_GT(all_by_class[0], 0u);
  ASSERT_GT(all_by_class[1], 0u);
  const double high_ok = static_cast<double>(ok_by_class[0]) /
                         static_cast<double>(all_by_class[0]);
  const double batch_ok = static_cast<double>(ok_by_class[1]) /
                          static_cast<double>(all_by_class[1]);
  EXPECT_GT(high_ok, batch_ok);
}

/// Sora publishes its knee estimate into a knee-coupled controller on the
/// managed service.
TEST(AdmissionExperiment, SoraPublishesKneeIntoController) {
  ExperimentConfig cfg;
  cfg.duration = sec(60);
  cfg.seed = 21;
  // Varying load over a generous pool on a small CPU: the concurrency /
  // goodput scatter spans the knee, so the SCG fit converges quickly.
  Experiment exp(testutil::single_service(2.0, 16, 2000, 1000, 0.5), cfg);

  SoraFrameworkOptions so;
  so.control_period = sec(5);
  auto& fw = exp.add_sora(so);
  fw.manage(ResourceKnob::entry(exp.app().service("svc")));

  AdmissionOptions ao;
  ao.policy = AdmissionPolicy::kKneeCoupled;
  ao.initial_limit = 256.0;
  AdmissionController& adm = exp.enable_admission("svc", ao);

  auto& users = exp.closed_loop(10, msec(50));
  users.follow_trace(
      WorkloadTrace(TraceShape::kLargeVariation, cfg.duration, 10, 60));
  exp.run();

  EXPECT_GT(adm.knee_updates(), 0u) << "Sora never published a knee";
  EXPECT_GT(adm.knee(), 0.0);
  EXPECT_LT(adm.current_limit(), 256.0)
      << "knee coupling never tightened the cap";
}

// ---------------------------------------------------------------------------
// Sweep parity and fault composition
// ---------------------------------------------------------------------------

struct AdmittedFaultedRun {
  ExperimentSummary summary;
  std::uint64_t ctrl_shed = 0;
  std::string decisions_jsonl;
};

/// An admission-enabled run under a scripted FaultPlan and an active Sora
/// loop: the strictest determinism surface this subsystem touches.
AdmittedFaultedRun run_admitted_faulted_point(std::size_t index) {
  ExperimentConfig cfg;
  cfg.duration = sec(30);
  cfg.sla = msec(100);
  cfg.seed = 900 + index;
  ApplicationConfig app = testutil::chain_app(0.4);
  app.services[1].with_replicas(2);  // "mid" can crash without refusal
  Experiment exp(app, cfg);

  SoraFrameworkOptions so;
  so.control_period = sec(5);
  auto& fw = exp.add_sora(so);
  fw.manage(ResourceKnob::entry(exp.app().service("mid")));

  AdmissionOptions ao;
  ao.policy = AdmissionPolicy::kGradient;
  ao.initial_limit = 6.0;
  ao.max_limit = 32.0;
  AdmissionController& adm = exp.enable_admission("mid", ao);

  RandomFaultOptions fo;
  fo.crash_services = {"mid"};
  fo.cpu_services = {"leaf"};
  fo.crash_downtime = sec(8);
  fo.stall_duration = sec(6);
  fo.dropout_duration = sec(6);
  exp.enable_faults(FaultPlan::random(cfg.seed, cfg.duration, fo));

  exp.closed_loop(40 + static_cast<int>(index) * 10, msec(50));
  exp.run();

  AdmittedFaultedRun out;
  out.summary = exp.summary();
  out.ctrl_shed = adm.shed();
  std::ostringstream os;
  exp.export_decision_log(os);
  out.decisions_jsonl = os.str();
  return out;
}

bool same_sim_outputs(const ExperimentSummary& a, const ExperimentSummary& b) {
  return a.injected == b.injected && a.completed == b.completed &&
         a.shed == b.shed && a.mean_ms == b.mean_ms && a.p50_ms == b.p50_ms &&
         a.p95_ms == b.p95_ms && a.p99_ms == b.p99_ms &&
         a.goodput_rps == b.goodput_rps &&
         a.throughput_rps == b.throughput_rps &&
         a.good_fraction == b.good_fraction &&
         a.slo_episodes == b.slo_episodes;
}

TEST(AdmissionSweep, ParallelMatchesSerialWithFaultsByteForByte) {
  constexpr std::size_t kRuns = 4;
  SweepRunner serial(1);
  SweepRunner parallel(4);
  const auto s = serial.map(kRuns, run_admitted_faulted_point);
  const auto p = parallel.map(kRuns, run_admitted_faulted_point);
  ASSERT_EQ(s.size(), kRuns);
  bool any_shed = false;
  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_TRUE(same_sim_outputs(s[i].summary, p[i].summary))
        << "admitted+faulted run " << i << " diverged";
    EXPECT_EQ(s[i].ctrl_shed, p[i].ctrl_shed);
    EXPECT_EQ(s[i].decisions_jsonl, p[i].decisions_jsonl)
        << "decision log of run " << i << " diverged";
    // Both subsystems must actually be active in the witness log.
    EXPECT_NE(s[i].decisions_jsonl.find("\"controller\":\"fault\""),
              std::string::npos);
    if (s[i].ctrl_shed > 0) any_shed = true;
  }
  EXPECT_TRUE(any_shed) << "no run shed anything; parity proves too little";
  EXPECT_NE(s[0].decisions_jsonl, s[1].decisions_jsonl);
}

// ---------------------------------------------------------------------------
// Load balancer vs mid-window crash/restart (FaultInjector composition)
// ---------------------------------------------------------------------------

TEST(LoadBalancerFaults, NoRequestsRoutedToCrashedReplica) {
  ExperimentConfig cfg;
  cfg.duration = sec(30);
  cfg.sla = msec(200);
  cfg.seed = 17;
  ApplicationConfig app = testutil::chain_app(0.2);
  app.services[1].with_replicas(2);
  Experiment exp(app, cfg);

  const SimTime crash_at = sec(10);
  const SimTime downtime = sec(10);
  FaultPlan plan;
  FaultEvent ev;
  ev.kind = FaultKind::kCrashInstance;
  ev.at = crash_at;
  ev.service = "mid";
  ev.instance = 0;
  ev.drop_inflight = true;
  ev.duration = downtime;
  plan.add(ev);
  exp.enable_faults(plan);

  // Probe mid-window: replica 0 must be down, exactly one replica active.
  Service* mid = exp.app().service("mid");
  bool probed = false;
  exp.sim().schedule_at(sec(15), [&] {
    probed = true;
    EXPECT_FALSE(mid->instance(0).active());
    EXPECT_EQ(mid->active_replicas(), 1);
  });

  exp.closed_loop(40, msec(50));
  exp.run();
  ASSERT_TRUE(probed);

  const ServiceId mid_id = mid->id();
  const InstanceId dead = mid->instance(0).id();
  std::uint64_t on_dead_during_outage = 0;
  std::uint64_t on_dead_after_restore = 0;
  std::uint64_t on_peer_during_outage = 0;
  exp.warehouse().for_each_in_window(0, cfg.duration, [&](const Trace& t) {
    for (const Span& s : t.spans) {
      if (s.service != mid_id) continue;
      if (s.instance == dead) {
        if (s.arrival > crash_at && s.arrival < crash_at + downtime) {
          ++on_dead_during_outage;
        } else if (s.arrival >= crash_at + downtime) {
          ++on_dead_after_restore;
        }
      } else if (s.arrival > crash_at && s.arrival < crash_at + downtime) {
        ++on_peer_during_outage;
      }
    }
  });
  // The load balancer never routed into the outage window...
  EXPECT_EQ(on_dead_during_outage, 0u);
  // ...while the surviving replica carried the traffic...
  EXPECT_GT(on_peer_during_outage, 0u);
  // ...and the restored replica rejoined the rotation.
  EXPECT_GT(on_dead_after_restore, 0u);

  // Counters reconcile: the crash dropped in-flight visits (recorded on the
  // service), and every injected request is accounted for.
  EXPECT_GT(mid->visits_dropped(), 0u);
  const ExperimentSummary sum = exp.summary();
  EXPECT_EQ(sum.injected,
            sum.completed + sum.shed + exp.app().in_flight());
  // Crash aborts are not admission sheds: no rejection was recorded.
  EXPECT_EQ(sum.shed, 0u);
  EXPECT_EQ(exp.decision_log().count_action("shed"), 0u);
}

}  // namespace
}  // namespace sora
