// Tests for the LSRAM-style gradient-descent allocator: stepper clamping
// and convergence on a synthetic convex surface, degenerate inputs failing
// closed, and pool growth under violating load at the controller level.
#include <gtest/gtest.h>

#include "autoscale/lsram.h"
#include "svc/application.h"
#include "test_util.h"
#include "trace/tracer.h"
#include "workload/generator.h"

namespace sora {
namespace {

struct Fixture {
  Simulator sim;
  Tracer tracer;
  TraceWarehouse warehouse{100000};
  Application app;
  explicit Fixture(ApplicationConfig cfg, std::uint64_t seed = 1)
      : app(sim, tracer, std::move(cfg), seed) {
    warehouse.attach(tracer);
  }
};

// -- GradientStepper (pure math) ----------------------------------------------

TEST(GradientStepper, FirstCallProbesToSeedTheWarmStart) {
  GradientStepperOptions o;
  o.probe_step = 1.0;
  GradientStepper s(o);
  EXPECT_FALSE(s.warm());
  EXPECT_DOUBLE_EQ(s.step(10.0, 0.5), 11.0);
  EXPECT_TRUE(s.warm());
}

TEST(GradientStepper, StepsAreClampedToMaxStep) {
  GradientStepperOptions o;
  o.learning_rate = 8.0;
  o.max_step = 4.0;
  o.probe_step = 1.0;
  GradientStepper s(o);
  s.step(10.0, 5.0);  // probe -> 11
  // dj = -5 over dx = +1: raw step = -lr * g = 40, clamped to +4.
  EXPECT_DOUBLE_EQ(s.step(11.0, 0.0), 15.0);
}

TEST(GradientStepper, RespectsAllocationBounds) {
  GradientStepperOptions o;
  o.min_x = 2.0;
  o.max_x = 12.0;
  o.probe_step = 4.0;
  GradientStepper s(o);
  // Probe from near the ceiling stays inside [min_x, max_x].
  EXPECT_DOUBLE_EQ(s.step(10.0, 1.0), 12.0);
  // A steep descent direction cannot escape the ceiling either.
  EXPECT_LE(s.step(12.0, 0.0), 12.0);
  // And an ascent direction cannot fall below the floor.
  GradientStepper down(o);
  down.step(4.0, 0.0);
  EXPECT_GE(down.step(5.0, 100.0), 2.0);
}

TEST(GradientStepper, FlatSurfaceHoldsInsteadOfDrifting) {
  GradientStepper s;
  s.step(10.0, 1.0);                       // probe -> 11
  EXPECT_DOUBLE_EQ(s.step(11.0, 1.0), 11.0);  // dj == 0: hold
}

TEST(GradientStepper, AbsorbedStepProbesAgain) {
  GradientStepperOptions o;
  o.probe_step = 1.0;
  GradientStepper s(o);
  s.step(10.0, 1.0);  // probe -> 11, remembers x=10
  // The move was externally reverted (x still 10): no gradient, probe.
  EXPECT_DOUBLE_EQ(s.step(10.0, 1.0), 11.0);
}

TEST(GradientStepper, ConvergesNearTheMinimumOfAConvexSurface) {
  GradientStepperOptions o;
  o.learning_rate = 8.0;
  o.max_step = 4.0;
  o.min_x = 1.0;
  o.max_x = 100.0;
  GradientStepper s(o);
  auto j = [](double x) { return (x - 20.0) * (x - 20.0) / 100.0; };
  double x = 5.0;
  for (int i = 0; i < 50; ++i) x = s.step(x, j(x));
  EXPECT_NEAR(x, 20.0, 2.0);
}

TEST(GradientStepper, ResetForgetsTheWarmStart) {
  GradientStepperOptions o;
  o.probe_step = 1.0;
  GradientStepper s(o);
  s.step(10.0, 1.0);
  EXPECT_TRUE(s.warm());
  s.reset();
  EXPECT_FALSE(s.warm());
  // Next call probes again instead of differencing against stale state.
  EXPECT_DOUBLE_EQ(s.step(11.0, 0.5), 12.0);
}

// -- controller level ---------------------------------------------------------

TEST(LsramController, FailsClosedWithoutTraces) {
  Fixture f(testutil::single_service(2.0, 8, 1000, 500, 0.3));
  obs::DecisionLog log;
  LsramOptions opts;
  opts.period = sec(10);
  opts.min_spans = 20;
  LsramController ctl(f.app, f.warehouse, opts);
  ctl.set_decision_log(&log);
  ctl.manage(ResourceKnob::entry(f.app.service("svc")));
  ctl.start();
  f.sim.run_until(sec(35));  // three starved rounds
  ctl.stop();

  EXPECT_EQ(f.app.service("svc")->entry_pool_size(), 8);
  EXPECT_TRUE(ctl.actions().empty());
  ASSERT_GE(log.records().size(), 3u);
  for (const auto& rec : log.records()) {
    EXPECT_EQ(rec.action, "hold");
    EXPECT_NE(rec.reason.find("insufficient window telemetry"),
              std::string::npos);
  }
}

TEST(LsramController, GrowsAStarvedPoolUnderViolatingLoad) {
  // 4 cores behind a 2-thread entry pool: requests queue at the pool, span
  // durations blow past the SLO, and a larger pool strictly improves the
  // objective. The descent must discover that and grow the pool.
  Fixture f(testutil::single_service(4.0, 2, 3000, 0, 0.3), 7);
  LsramOptions opts;
  opts.period = sec(5);
  opts.span_slo = msec(6);
  opts.min_spans = 10;
  LsramController ctl(f.app, f.warehouse, opts);
  ctl.manage(ResourceKnob::entry(f.app.service("svc")));
  ctl.start();

  // ~870 r/s offered: well within the 4 cores (1333 r/s) but far beyond
  // what 2 threads can admit — the pool, not the CPU, is the bottleneck.
  ClosedLoopGenerator users(f.sim, f.app, 20, msec(20), 2);
  users.start();
  f.sim.run_until(sec(60));
  users.stop();
  ctl.stop();

  EXPECT_GT(f.app.service("svc")->entry_pool_size(), 2);
  ASSERT_FALSE(ctl.actions().empty());
  EXPECT_EQ(ctl.actions().front().kind, ControlAction::Kind::kPoolResize);
}

TEST(LsramController, TopologyChangeResetsTheWarmStartAndIsAudited) {
  Fixture f(testutil::single_service(4.0, 2, 3000, 0, 0.3), 7);
  obs::DecisionLog log;
  LsramOptions opts;
  opts.period = sec(5);
  opts.span_slo = msec(6);
  opts.min_spans = 10;
  LsramController ctl(f.app, f.warehouse, opts);
  ctl.set_decision_log(&log);
  ctl.manage(ResourceKnob::entry(f.app.service("svc")));
  ctl.start();
  ClosedLoopGenerator users(f.sim, f.app, 20, msec(20), 2);
  users.start();
  f.sim.run_until(sec(20));

  ctl.on_topology_changed(f.app.service("svc"), "instance crash");
  bool audited = false;
  for (const auto& rec : log.records()) {
    if (rec.action == "relocalize") {
      audited = true;
      EXPECT_NE(rec.reason.find("instance crash"), std::string::npos);
      EXPECT_EQ(rec.controller, "lsram");
    }
  }
  EXPECT_TRUE(audited);

  // The next decided move is a fresh probe, not a stale gradient step.
  f.sim.run_until(sec(30));
  users.stop();
  ctl.stop();
  bool probe_after_reset = false;
  for (const auto& rec : log.records()) {
    if (rec.at > sec(20) && rec.action == "probe") probe_after_reset = true;
  }
  EXPECT_TRUE(probe_after_reset);
}

}  // namespace
}  // namespace sora
