// Tests for the Autothrottle-style bi-level latency-target controller:
// credit-allocation math (targets sum to the budget, monotone in burn
// rate, floor handling), degenerate inputs fail closed, and the
// controller-level coupling to the admission layer.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "autoscale/autothrottle.h"
#include "harness/experiment.h"
#include "test_util.h"

namespace sora {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

// -- allocate_latency_targets (pure math) ------------------------------------

TEST(LatencyCredits, TargetsSumToBudget) {
  const auto t = allocate_latency_targets({0.5, 0.3, 0.2}, {1.0, 0.0, 2.0},
                                          400.0, 5.0);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_NEAR(sum(t), 400.0, 1e-9);
  for (double x : t) EXPECT_GE(x, 5.0 - 1e-9);
}

TEST(LatencyCredits, MonotoneInBurnRate) {
  const std::vector<double> demand = {0.4, 0.3, 0.3};
  const auto cold = allocate_latency_targets(demand, {0.0, 0.0, 0.0},
                                             300.0, 1.0);
  const auto hot = allocate_latency_targets(demand, {0.0, 3.0, 0.0},
                                            300.0, 1.0);
  ASSERT_EQ(cold.size(), 3u);
  ASSERT_EQ(hot.size(), 3u);
  // The burning service earns a strictly larger credit; with a fixed
  // budget the others shrink to pay for it.
  EXPECT_GT(hot[1], cold[1]);
  EXPECT_LT(hot[0], cold[0]);
  EXPECT_LT(hot[2], cold[2]);
  EXPECT_NEAR(sum(hot), 300.0, 1e-9);
}

TEST(LatencyCredits, FloorIsHonoredAndSumPreserved) {
  // 98% of the demand on one service would starve the other two below the
  // floor; the floor is raised and the big slice pays for it.
  const auto t = allocate_latency_targets({0.98, 0.01, 0.01}, {0.0, 0.0, 0.0},
                                          100.0, 10.0);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_NEAR(t[1], 10.0, 1e-9);
  EXPECT_NEAR(t[2], 10.0, 1e-9);
  EXPECT_NEAR(sum(t), 100.0, 1e-9);
}

TEST(LatencyCredits, SingleServiceGetsTheWholeBudget) {
  const auto t = allocate_latency_targets({1.0}, {0.7}, 250.0, 5.0);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_NEAR(t[0], 250.0, 1e-9);
}

TEST(LatencyCredits, DegenerateInputsFailClosed) {
  EXPECT_TRUE(allocate_latency_targets({}, {}, 400.0, 5.0).empty());
  EXPECT_TRUE(allocate_latency_targets({0.5, 0.5}, {0.0}, 400.0, 5.0).empty());
  EXPECT_TRUE(allocate_latency_targets({1.0}, {0.0}, 0.0, 5.0).empty());
  EXPECT_TRUE(allocate_latency_targets({1.0}, {0.0}, -10.0, 5.0).empty());
}

TEST(LatencyCredits, ZeroDemandSignalSplitsEqually) {
  const auto t = allocate_latency_targets({0.0, 0.0}, {0.0, 0.0}, 100.0, 5.0);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_NEAR(t[0], 50.0, 1e-9);
  EXPECT_NEAR(t[1], 50.0, 1e-9);
}

TEST(LatencyCredits, BudgetBelowFloorFallsBackToEqualSplit) {
  // 4 services x 5ms floor = 20ms > 12ms budget: the floor is unaffordable,
  // the equal split keeps the sum invariant.
  const auto t = allocate_latency_targets({0.7, 0.1, 0.1, 0.1},
                                          {0.0, 0.0, 0.0, 0.0}, 12.0, 5.0);
  ASSERT_EQ(t.size(), 4u);
  for (double x : t) EXPECT_NEAR(x, 3.0, 1e-9);
}

// -- controller level ---------------------------------------------------------

TEST(AutothrottleController, FailsClosedWithoutTelemetry) {
  ExperimentConfig ecfg;
  ecfg.duration = sec(35);
  ecfg.seed = 5;
  Experiment exp(testutil::single_service(2.0, 16, 1000, 500, 0.3), ecfg);
  // No workload at all: the trace window stays empty.
  AutothrottleOptions ao;
  ao.period = sec(15);
  ao.min_spans = 20;
  auto& at = exp.add_autothrottle(ao);
  at.manage(exp.app().service("svc"));
  exp.run();

  ASSERT_EQ(at.caps().size(), 1u);
  EXPECT_EQ(at.caps()[0], ao.initial_cap);
  EXPECT_EQ(at.targets_ms()[0], 0.0);
  EXPECT_TRUE(at.actions().empty());
  int holds = 0;
  for (const auto& rec : exp.decision_log().records()) {
    if (rec.controller != "autothrottle") continue;
    EXPECT_EQ(rec.action, "hold");
    EXPECT_NE(rec.reason.find("insufficient window telemetry"),
              std::string::npos);
    ++holds;
  }
  EXPECT_GE(holds, 2);
}

TEST(AutothrottleController, ThrottlesDownAndPublishesCapUnderOverload) {
  ExperimentConfig ecfg;
  ecfg.duration = sec(70);
  ecfg.sla = msec(8);
  ecfg.seed = 3;
  Experiment exp(testutil::single_service(1.0, 64, 4000, 2000, 0.4), ecfg);
  exp.closed_loop(40, msec(5), RequestMix(0));
  AdmissionOptions adm_opts;
  adm_opts.policy = AdmissionPolicy::kKneeCoupled;
  auto& adm = exp.enable_admission("svc", adm_opts);

  AutothrottleOptions ao;
  ao.period = sec(15);
  ao.budget = msec(4);  // far below the overloaded p99: must throttle
  ao.min_spans = 10;
  auto& at = exp.add_autothrottle(ao);
  at.manage(exp.app().service("svc"));
  exp.run();

  ASSERT_EQ(at.caps().size(), 1u);
  EXPECT_LT(at.caps()[0], ao.initial_cap);
  // The cap was pushed through the knee publication path and enforced.
  EXPECT_GT(adm.knee_updates(), 0u);
  EXPECT_NEAR(adm.knee(), at.caps()[0], 1e-9);
  bool published = false;
  for (const ControlAction& a : at.actions()) {
    if (a.kind == ControlAction::Kind::kAdmissionTarget) {
      published = true;
      EXPECT_EQ(a.target, "svc");
      EXPECT_GT(a.admission_target, 0.0);
    }
  }
  EXPECT_TRUE(published);
}

TEST(AutothrottleController, FlatLatencyHoldsCaps) {
  // Light load against a huge budget: p99 is inside [relax * target,
  // target], so the cap controller holds in both directions.
  ExperimentConfig ecfg;
  ecfg.duration = sec(65);
  ecfg.seed = 9;
  Experiment exp(testutil::single_service(4.0, 16, 1000, 500, 0.2), ecfg);
  exp.closed_loop(4, msec(20), RequestMix(0));

  AutothrottleOptions ao;
  ao.period = sec(15);
  ao.budget = sec(10);       // targets far above any observed p99
  ao.relax_fraction = 0.0;   // and the increase band is unreachable
  ao.min_spans = 10;
  auto& at = exp.add_autothrottle(ao);
  at.manage(exp.app().service("svc"));
  exp.run();

  EXPECT_EQ(at.caps()[0], ao.initial_cap);
  // Targets were still assigned (the allocator ran; only the caps held).
  EXPECT_GT(at.targets_ms()[0], 0.0);
  for (const ControlAction& a : at.actions()) {
    EXPECT_NE(a.kind, ControlAction::Kind::kAdmissionTarget);
  }
}

TEST(AutothrottleController, TargetsAcrossServicesSumToBudget) {
  ExperimentConfig ecfg;
  ecfg.duration = sec(65);
  ecfg.seed = 11;
  Experiment exp(testutil::chain_app(0.3), ecfg);
  exp.closed_loop(16, msec(10), RequestMix(0));

  AutothrottleOptions ao;
  ao.period = sec(15);
  ao.budget = msec(100);
  ao.min_target_ms = 5.0;
  ao.min_spans = 10;
  auto& at = exp.add_autothrottle(ao);
  at.manage(exp.app().service("front"));
  at.manage(exp.app().service("mid"));
  at.manage(exp.app().service("leaf"));
  exp.run();

  ASSERT_EQ(at.targets_ms().size(), 3u);
  EXPECT_NEAR(sum(at.targets_ms()), 100.0, 1e-6);
  for (double t : at.targets_ms()) EXPECT_GE(t, 5.0 - 1e-9);
}

}  // namespace
}  // namespace sora
