// Tests for deterministic fault plans: scripted construction and
// seed-derived randomization must be pure functions of their inputs.
#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <set>

namespace sora {
namespace {

RandomFaultOptions full_options() {
  RandomFaultOptions opt;
  opt.crash_services = {"front", "mid"};
  opt.cpu_services = {"leaf"};
  opt.crashes = 2;
  opt.cpu_steps = 2;
  opt.span_dropouts = 1;
  opt.scatter_dropouts = 1;
  opt.control_stalls = 1;
  return opt;
}

bool same_event(const FaultEvent& a, const FaultEvent& b) {
  return a.kind == b.kind && a.at == b.at && a.service == b.service &&
         a.instance == b.instance && a.drop_inflight == b.drop_inflight &&
         a.duration == b.duration && a.fraction == b.fraction &&
         a.delay == b.delay && a.cores == b.cores;
}

TEST(FaultPlan, ToStringCoversEveryKind) {
  EXPECT_STREQ(to_string(FaultKind::kCrashInstance), "crash_instance");
  EXPECT_STREQ(to_string(FaultKind::kCpuLimitStep), "cpu_limit_step");
  EXPECT_STREQ(to_string(FaultKind::kSpanDropout), "span_dropout");
  EXPECT_STREQ(to_string(FaultKind::kSpanDelay), "span_delay");
  EXPECT_STREQ(to_string(FaultKind::kScatterDropout), "scatter_dropout");
  EXPECT_STREQ(to_string(FaultKind::kControlStall), "control_stall");
}

TEST(FaultPlan, ScriptedAddPreservesEvents) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  FaultEvent crash;
  crash.kind = FaultKind::kCrashInstance;
  crash.at = sec(10);
  crash.service = "svc";
  crash.drop_inflight = true;
  crash.duration = sec(5);
  FaultEvent step;
  step.kind = FaultKind::kCpuLimitStep;
  step.at = sec(3);
  step.service = "svc";
  step.cores = 1.5;
  plan.add(crash).add(step);
  ASSERT_EQ(plan.size(), 2u);
  // add() keeps insertion order; the injector schedules by `at`, so the
  // simulator imposes time order regardless.
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kCrashInstance);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kCpuLimitStep);
  EXPECT_TRUE(plan.events()[0].drop_inflight);
  EXPECT_DOUBLE_EQ(plan.events()[1].cores, 1.5);
}

TEST(FaultPlan, RandomIsDeterministicPerSeed) {
  const FaultPlan a = FaultPlan::random(1234, minutes(10), full_options());
  const FaultPlan b = FaultPlan::random(1234, minutes(10), full_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_event(a.events()[i], b.events()[i])) << "event " << i;
  }
}

TEST(FaultPlan, RandomDiffersAcrossSeeds) {
  const FaultPlan a = FaultPlan::random(1, minutes(10), full_options());
  const FaultPlan b = FaultPlan::random(2, minutes(10), full_options());
  ASSERT_EQ(a.size(), b.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_event(a.events()[i], b.events()[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultPlan, RandomProducesExactCounts) {
  const FaultPlan plan = FaultPlan::random(7, minutes(10), full_options());
  std::size_t crashes = 0, steps = 0, span_drops = 0, scatter_drops = 0,
              stalls = 0;
  for (const FaultEvent& ev : plan.events()) {
    switch (ev.kind) {
      case FaultKind::kCrashInstance: ++crashes; break;
      case FaultKind::kCpuLimitStep: ++steps; break;
      case FaultKind::kSpanDropout: ++span_drops; break;
      case FaultKind::kScatterDropout: ++scatter_drops; break;
      case FaultKind::kControlStall: ++stalls; break;
      default: break;
    }
  }
  EXPECT_EQ(crashes, 2u);
  EXPECT_EQ(steps, 2u);
  EXPECT_EQ(span_drops, 1u);
  EXPECT_EQ(scatter_drops, 1u);
  EXPECT_EQ(stalls, 1u);
  EXPECT_EQ(plan.size(), 7u);
}

TEST(FaultPlan, RandomTimesStayInsideConfiguredWindow) {
  RandomFaultOptions opt = full_options();
  opt.earliest = 0.2;
  opt.latest = 0.6;
  const SimTime horizon = minutes(10);
  const FaultPlan plan = FaultPlan::random(99, horizon, opt);
  const auto lo = static_cast<SimTime>(0.2 * static_cast<double>(horizon));
  const auto hi = static_cast<SimTime>(0.6 * static_cast<double>(horizon));
  for (const FaultEvent& ev : plan.events()) {
    EXPECT_GE(ev.at, lo);
    EXPECT_LE(ev.at, hi);
  }
}

TEST(FaultPlan, RandomEventsSortedByTime) {
  const FaultPlan plan = FaultPlan::random(55, minutes(10), full_options());
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan.events()[i - 1].at, plan.events()[i].at);
  }
}

TEST(FaultPlan, RandomTargetsComeFromCandidateLists) {
  const RandomFaultOptions opt = full_options();
  const FaultPlan plan = FaultPlan::random(21, minutes(10), opt);
  const std::set<std::string> crash_ok(opt.crash_services.begin(),
                                       opt.crash_services.end());
  for (const FaultEvent& ev : plan.events()) {
    if (ev.kind == FaultKind::kCrashInstance) {
      EXPECT_TRUE(crash_ok.count(ev.service)) << ev.service;
    }
    if (ev.kind == FaultKind::kCpuLimitStep) {
      EXPECT_EQ(ev.service, "leaf");
      EXPECT_GE(ev.cores, opt.cpu_cores_lo);
      EXPECT_LE(ev.cores, opt.cpu_cores_hi);
    }
  }
}

TEST(FaultPlan, EmptyCandidateListsDisableThoseKinds) {
  RandomFaultOptions opt = full_options();
  opt.crash_services.clear();
  opt.cpu_services.clear();
  const FaultPlan plan = FaultPlan::random(3, minutes(10), opt);
  for (const FaultEvent& ev : plan.events()) {
    EXPECT_NE(ev.kind, FaultKind::kCrashInstance);
    EXPECT_NE(ev.kind, FaultKind::kCpuLimitStep);
  }
  // The telemetry/stall events remain.
  EXPECT_EQ(plan.size(), 3u);
}

TEST(FaultPlan, ZeroCountsYieldEmptyPlan) {
  RandomFaultOptions opt;
  opt.crashes = 0;
  opt.cpu_steps = 0;
  opt.span_dropouts = 0;
  opt.scatter_dropouts = 0;
  opt.control_stalls = 0;
  const FaultPlan plan = FaultPlan::random(1, minutes(10), opt);
  EXPECT_TRUE(plan.empty());
}

}  // namespace
}  // namespace sora
