// Tests for least-squares polynomial fitting.
#include "common/polyfit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace sora {
namespace {

TEST(Polyfit, ExactLine) {
  std::vector<double> xs{0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x + 2.0);
  const auto fit = polyfit(xs, ys, 1);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  for (double x : {0.5, 1.5, 3.7}) {
    EXPECT_NEAR(fit.poly(x), 3.0 * x + 2.0, 1e-8);
  }
  EXPECT_NEAR(fit.poly.derivative(1.0), 3.0, 1e-8);
}

TEST(Polyfit, ExactCubic) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 10; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(0.5 * x * x * x - 2.0 * x * x + x - 7.0);
  }
  const auto fit = polyfit(xs, ys, 3);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_NEAR(fit.poly(2.5), 0.5 * 15.625 - 2.0 * 6.25 + 2.5 - 7.0, 1e-6);
}

TEST(Polyfit, DerivativeOfQuadratic) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 8; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(x * x);
  }
  const auto fit = polyfit(xs, ys, 2);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.poly.derivative(3.0), 6.0, 1e-6);
}

TEST(Polyfit, UnderdeterminedFails) {
  std::vector<double> xs{1, 2};
  std::vector<double> ys{1, 2};
  EXPECT_FALSE(polyfit(xs, ys, 3).ok);
}

TEST(Polyfit, NegativeDegreeFails) {
  std::vector<double> xs{1, 2, 3};
  std::vector<double> ys{1, 2, 3};
  EXPECT_FALSE(polyfit(xs, ys, -1).ok);
}

TEST(Polyfit, SingularWhenAllXEqual) {
  std::vector<double> xs{2, 2, 2, 2};
  std::vector<double> ys{1, 2, 3, 4};
  EXPECT_FALSE(polyfit(xs, ys, 1).ok);
}

TEST(Polyfit, NoisyFitReasonableR2) {
  Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i) / 10.0;
    xs.push_back(x);
    ys.push_back(5.0 * x - 0.1 * x * x + rng.normal(0.0, 1.0));
  }
  const auto fit = polyfit(xs, ys, 2);
  ASSERT_TRUE(fit.ok);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(Polyfit, HighDegreeOnWideRangeStaysStable) {
  // Normalization keeps the Vandermonde conditioned on large x ranges.
  std::vector<double> xs, ys;
  for (int i = 0; i <= 40; ++i) {
    const double x = 1000.0 + 50.0 * i;
    xs.push_back(x);
    ys.push_back(std::sin(static_cast<double>(i) / 8.0));
  }
  const auto fit = polyfit(xs, ys, 8);
  ASSERT_TRUE(fit.ok);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Polyfit, ConstantData) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys{7, 7, 7, 7, 7};
  const auto fit = polyfit(xs, ys, 2);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.poly(3.0), 7.0, 1e-9);
  // TSS == 0 -> r_squared defined as 1.
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(Polynomial, DefaultIsZero) {
  Polynomial p;
  EXPECT_DOUBLE_EQ(p(3.0), 0.0);
  EXPECT_DOUBLE_EQ(p.derivative(3.0), 0.0);
  EXPECT_EQ(p.degree(), -1);
}

// Degenerate scatters: the fit must fail closed (ok == false, poly
// evaluates to 0) or produce finite values — never NaN, never a throw.
TEST(Polyfit, DegenerateEmptyInput) {
  const auto fit = polyfit({}, {}, 2);
  EXPECT_FALSE(fit.ok);
  // The documented fallback: a default Polynomial is identically zero.
  EXPECT_DOUBLE_EQ(fit.poly(1.0), 0.0);
  EXPECT_DOUBLE_EQ(fit.poly.derivative(1.0), 0.0);
}

TEST(Polyfit, DegenerateSinglePoint) {
  std::vector<double> xs{2.0};
  std::vector<double> ys{5.0};
  EXPECT_FALSE(polyfit(xs, ys, 2).ok);
  // Degree 0 on one point is determined: the constant.
  const auto fit = polyfit(xs, ys, 0);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.poly(123.0), 5.0, 1e-12);
}

TEST(Polyfit, DegenerateMonotoneDecreasingStaysFinite) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(i);
    ys.push_back(50.0 - 1.5 * i);
  }
  const auto fit = polyfit(xs, ys, 5);
  ASSERT_TRUE(fit.ok);
  for (double x : xs) {
    EXPECT_TRUE(std::isfinite(fit.poly(x)));
    EXPECT_TRUE(std::isfinite(fit.poly.derivative(x)));
  }
  EXPECT_TRUE(std::isfinite(fit.r_squared));
}

TEST(Polyfit, DegenerateDuplicateXMixedInIsFine) {
  // Repeated abscissae (same concurrency bucket sampled twice) keep the
  // normal equations well-posed as long as enough distinct x remain.
  std::vector<double> xs{1, 1, 2, 2, 3, 3, 4, 4, 5, 5};
  std::vector<double> ys{2, 2.2, 4, 3.8, 6, 6.1, 8, 7.9, 10, 10.2};
  const auto fit = polyfit(xs, ys, 1);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.poly.derivative(3.0), 2.0, 0.1);
  EXPECT_TRUE(std::isfinite(fit.rss));
}

TEST(Polyfit, DegreeExceedsDistinctXFailsClosed) {
  // 2 distinct x values cannot support a cubic: the normal equations go
  // singular and the fit must report !ok instead of returning NaN coeffs.
  std::vector<double> xs{1, 1, 1, 2, 2, 2};
  std::vector<double> ys{1, 1, 1, 2, 2, 2};
  const auto fit = polyfit(xs, ys, 3);
  EXPECT_FALSE(fit.ok);
  EXPECT_DOUBLE_EQ(fit.poly(1.5), 0.0);
}

// Property: fitting a polynomial of degree d with degree >= d recovers it.
class PolyRecovery : public ::testing::TestWithParam<int> {};

TEST_P(PolyRecovery, RecoversExactPolynomial) {
  const int degree = GetParam();
  Rng rng(static_cast<std::uint64_t>(degree) + 100);
  std::vector<double> coeffs;
  for (int i = 0; i <= degree; ++i) coeffs.push_back(rng.uniform(-2.0, 2.0));
  std::vector<double> xs, ys;
  for (int i = 0; i <= degree * 4 + 8; ++i) {
    const double x = static_cast<double>(i) / 4.0;
    double y = 0.0, p = 1.0;
    for (double c : coeffs) {
      y += c * p;
      p *= x;
    }
    xs.push_back(x);
    ys.push_back(y);
  }
  const auto fit = polyfit(xs, ys, degree);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-6);
  // Normal equations square the condition number, so allow a modest
  // tolerance at the higher degrees (the SCG smoothing use-case cares about
  // curve shape, not exact interpolation).
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(fit.poly(xs[i]), ys[i], 5e-3 * (1.0 + std::abs(ys[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyRecovery, ::testing::Range(1, 9));

}  // namespace
}  // namespace sora
