// Tests for RT threshold propagation (Eq. 1-3 of the paper).
#include "core/deadline.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sora {
namespace {

using testutil::SyntheticSpan;

// Chain 0 -> 1 -> 2 with PTs 20/20/60 (see test_critical_path).
Trace chain_trace(std::uint64_t id, SimTime shift = 0) {
  return testutil::make_trace(
      {
          {-1, 0, shift + 0, shift + 100, 80},
          {0, 1, shift + 10, shift + 90, 60},
          {1, 2, shift + 20, shift + 80, 0},
      },
      id);
}

// The synthetic traces use microsecond-scale timings; disable the
// millisecond floor so the arithmetic is visible.
DeadlineOptions usec_opts() {
  DeadlineOptions o;
  o.min_threshold = 1;
  return o;
}

TEST(Deadline, PropagatesSlaMinusUpstreamPt) {
  TraceWarehouse wh(100);
  wh.store(chain_trace(1));
  // Critical = service 2: upstream PT = 20 + 20 = 40.
  const DeadlineResult r =
      propagate_deadline(wh, 0, 1000, ServiceId(2), usec(500), usec_opts());
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.mean_upstream_pt, 40);
  EXPECT_EQ(r.rt_threshold, 460);
  EXPECT_EQ(r.traces_used, 1u);
}

TEST(Deadline, RootServiceGetsFullSla) {
  TraceWarehouse wh(100);
  wh.store(chain_trace(1));
  const DeadlineResult r =
      propagate_deadline(wh, 0, 1000, ServiceId(0), usec(500), usec_opts());
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.mean_upstream_pt, 0);
  EXPECT_EQ(r.rt_threshold, 500);
}

TEST(Deadline, AveragesAcrossTraces) {
  TraceWarehouse wh(100);
  wh.store(chain_trace(1));
  // Second trace with doubled PTs: upstream for svc2 = 80.
  wh.store(testutil::make_trace(
      {
          {-1, 0, 200, 400, 160},
          {0, 1, 220, 380, 120},
          {1, 2, 240, 360, 0},
      },
      2));
  const DeadlineResult r =
      propagate_deadline(wh, 0, 1000, ServiceId(2), usec(500), usec_opts());
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.traces_used, 2u);
  EXPECT_EQ(r.mean_upstream_pt, 60);  // (40 + 80) / 2
  EXPECT_EQ(r.rt_threshold, 440);
}

TEST(Deadline, FloorsAtMinThreshold) {
  TraceWarehouse wh(100);
  wh.store(chain_trace(1));
  DeadlineOptions opts;
  opts.min_threshold = usec(100);
  // SLA 30 < upstream 40 -> would be negative; floored.
  const DeadlineResult r =
      propagate_deadline(wh, 0, 1000, ServiceId(2), usec(30), opts);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.rt_threshold, usec(100));
}

TEST(Deadline, InvalidWhenServiceNotOnPath) {
  TraceWarehouse wh(100);
  wh.store(chain_trace(1));
  const DeadlineResult r =
      propagate_deadline(wh, 0, 1000, ServiceId(9), usec(500));
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.traces_used, 0u);
}

TEST(Deadline, WindowFiltersTraces) {
  TraceWarehouse wh(100);
  wh.store(chain_trace(1, 0));      // ends at 100
  wh.store(chain_trace(2, 10000));  // ends at 10100
  const DeadlineResult r =
      propagate_deadline(wh, 5000, 20000, ServiceId(2), usec(500));
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.traces_used, 1u);
}

TEST(Deadline, RequestClassFilter) {
  TraceWarehouse wh(100);
  Trace t = chain_trace(1);
  t.request_class = 2;
  wh.store(std::move(t));
  DeadlineOptions only_class_1;
  only_class_1.request_class = 1;
  EXPECT_FALSE(
      propagate_deadline(wh, 0, 1000, ServiceId(2), usec(500), only_class_1)
          .valid);
  DeadlineOptions only_class_2;
  only_class_2.request_class = 2;
  EXPECT_TRUE(
      propagate_deadline(wh, 0, 1000, ServiceId(2), usec(500), only_class_2)
          .valid);
}

// Property (Eq. 3): the propagated threshold never exceeds the SLA and
// decreases monotonically with upstream processing time.
TEST(Deadline, ThresholdMonotoneInUpstreamPt) {
  SimTime prev = kSimTimeNever;
  for (SimTime upstream_scale : {1, 2, 3, 4}) {
    TraceWarehouse wh(10);
    const SimTime pt = 20 * upstream_scale;
    wh.store(testutil::make_trace({
        {-1, 0, 0, 1000, 1000 - pt},        // root PT = pt
        {0, 1, pt / 2, 1000 - pt / 2, 0},   // leaf
    }));
    const DeadlineResult r =
        propagate_deadline(wh, 0, 2000, ServiceId(1), usec(500), usec_opts());
    ASSERT_TRUE(r.valid);
    EXPECT_LE(r.rt_threshold, usec(500));
    EXPECT_LT(r.rt_threshold, prev);
    prev = r.rt_threshold;
  }
}

// max_traces bounds the fold with deterministic systematic sampling: the
// sampled mean equals the full mean on a homogeneous window, reruns are
// byte-identical, and traces_used respects the bound.
TEST(Deadline, MaxTracesBoundsFoldDeterministically) {
  TraceWarehouse wh(1000);
  for (std::uint64_t i = 0; i < 100; ++i) {
    wh.store(chain_trace(i + 1, static_cast<SimTime>(i) * 10));
  }
  DeadlineOptions o = usec_opts();
  const DeadlineResult full =
      propagate_deadline(wh, 0, 100000, ServiceId(2), usec(500), o);
  ASSERT_TRUE(full.valid);
  EXPECT_EQ(full.traces_used, 100u);

  o.max_traces = 8;
  const DeadlineResult sampled =
      propagate_deadline(wh, 0, 100000, ServiceId(2), usec(500), o);
  ASSERT_TRUE(sampled.valid);
  EXPECT_LE(sampled.traces_used, 8u);
  EXPECT_GE(sampled.traces_used, 1u);
  // Identical traces => identical mean regardless of which were sampled.
  EXPECT_EQ(sampled.mean_upstream_pt, full.mean_upstream_pt);
  EXPECT_EQ(sampled.rt_threshold, full.rt_threshold);

  const DeadlineResult rerun =
      propagate_deadline(wh, 0, 100000, ServiceId(2), usec(500), o);
  EXPECT_EQ(rerun.traces_used, sampled.traces_used);
  EXPECT_EQ(rerun.mean_upstream_pt, sampled.mean_upstream_pt);

  // A bound at or above the window folds everything.
  o.max_traces = 100;
  const DeadlineResult exact =
      propagate_deadline(wh, 0, 100000, ServiceId(2), usec(500), o);
  EXPECT_EQ(exact.traces_used, 100u);
}

}  // namespace
}  // namespace sora
