// Integration tests for the Sora framework control loop.
#include "core/sora.h"

#include <gtest/gtest.h>

#include "svc/application.h"
#include "test_util.h"
#include "trace/tracer.h"
#include "workload/generator.h"

namespace sora {
namespace {

struct Fixture {
  Simulator sim;
  Tracer tracer;
  TraceWarehouse warehouse{100000};
  Application app;
  explicit Fixture(ApplicationConfig cfg, std::uint64_t seed = 1)
      : app(sim, tracer, std::move(cfg), seed) {
    warehouse.attach(tracer);
  }
};

/// Service with a starved entry pool (2) relative to its parallelism needs:
/// 8 cores, short demands, so the optimal is well above 2.
ApplicationConfig starved_app() {
  ApplicationConfig cfg = testutil::single_service(8.0, 2, 2000, 1000, 0.5);
  return cfg;
}

TEST(SoraFramework, GrowsStarvedPool) {
  Fixture f(starved_app());
  SoraFrameworkOptions opts;
  opts.sla = msec(100);
  opts.control_period = sec(5);
  SoraFramework sora(f.app, f.warehouse, opts);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  sora.manage(knob);
  sora.start();

  ClosedLoopGenerator users(f.sim, f.app, 40, msec(50), 3);
  users.start();
  f.sim.run_until(sec(90));
  users.stop();

  // The starved 2-slot pool must have been grown (knee ~ CPU parallelism
  // needs plus headroom); exactly where it settles depends on load.
  EXPECT_GE(knob.current_size(), 4);
  EXPECT_GT(sora.control_rounds(), 10u);
  // And the system must actually be healthy: most requests within SLA.
  // (A starved pool of 2 would queue them into the hundreds of ms.)
  bool adapted = false;
  for (const AdaptAction& a : sora.adapter().history()) {
    if (a.type != AdaptAction::Type::kNone) adapted = true;
  }
  EXPECT_TRUE(adapted);
}

TEST(SoraFramework, DeadlinePropagationUpdatesThreshold) {
  Fixture f(testutil::chain_app(0.3));
  SoraFrameworkOptions opts;
  opts.sla = msec(50);
  opts.control_period = sec(5);
  SoraFramework sora(f.app, f.warehouse, opts);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("leaf"));
  sora.manage(knob);
  sora.start();

  ClosedLoopGenerator users(f.sim, f.app, 20, msec(50), 4);
  users.start();
  f.sim.run_until(sec(30));
  users.stop();

  const SimTime rtt = sora.estimator().rt_threshold(knob);
  // Leaf's threshold = SLA - upstream PT (front 0.8ms + mid 1.2ms ~ 2ms).
  EXPECT_LT(rtt, msec(50));
  EXPECT_GT(rtt, msec(40));
}

TEST(SoraFramework, ConScaleModeSkipsDeadlines) {
  Fixture f(testutil::chain_app(0.3));
  SoraFrameworkOptions opts = make_conscale_options();
  opts.control_period = sec(5);
  const SimTime default_rtt = opts.estimator.default_rt_threshold;
  SoraFramework conscale(f.app, f.warehouse, opts);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("leaf"));
  conscale.manage(knob);
  conscale.start();

  ClosedLoopGenerator users(f.sim, f.app, 20, msec(50), 5);
  users.start();
  f.sim.run_until(sec(30));
  users.stop();

  EXPECT_EQ(conscale.estimator().rt_threshold(knob), default_rtt);
  EXPECT_EQ(conscale.options().model,
            ModelKind::kScatterConcurrencyThroughput);
}

TEST(SoraFramework, LocalizationRunsEachRound) {
  Fixture f(testutil::chain_app(0.5));
  SoraFrameworkOptions opts;
  opts.control_period = sec(5);
  SoraFramework sora(f.app, f.warehouse, opts);
  sora.manage(ResourceKnob::entry(f.app.service("mid")));
  sora.start();

  ClosedLoopGenerator users(f.sim, f.app, 30, msec(50), 6);
  users.start();
  f.sim.run_until(sec(20));
  users.stop();

  EXPECT_TRUE(sora.last_report().critical.valid());
  EXPECT_GT(sora.last_report().traces_analyzed, 0u);
}

TEST(SoraFramework, HardwareScaleVerticalRescalesEntryKnob) {
  Fixture f(testutil::single_service(2.0, 10, 2000, 1000, 0.3));
  SoraFramework sora(f.app, f.warehouse);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  sora.manage(knob);
  Service* svc = f.app.service("svc");
  svc->set_cpu_limit(4.0);
  sora.on_hardware_scaled(svc, 2.0, 4.0, 1, 1);
  EXPECT_EQ(knob.current_size(), 20);  // 10 x (4/2)
}

TEST(SoraFramework, HardwareScaleHorizontalTargetRescalesEdgeKnob) {
  Fixture f(testutil::edge_pool_app(10));
  SoraFramework sora(f.app, f.warehouse);
  ResourceKnob knob = ResourceKnob::edge(f.app.service("caller"), "db");
  sora.manage(knob);
  Service* db = f.app.service("db");
  db->scale_replicas(3);
  sora.on_hardware_scaled(db, db->cpu_limit(), db->cpu_limit(), 1, 3);
  EXPECT_EQ(knob.current_size(), 30);  // tracks target parallelism
}

TEST(SoraFramework, HardwareScaleUnrelatedServiceNoop) {
  Fixture f(testutil::chain_app());
  SoraFramework sora(f.app, f.warehouse);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("mid"));
  sora.manage(knob);
  const int before = knob.current_size();
  Service* leaf = f.app.service("leaf");
  sora.on_hardware_scaled(leaf, 2.0, 4.0, 1, 1);
  EXPECT_EQ(knob.current_size(), before);
}

TEST(SoraFramework, ManageIsIdempotent) {
  Fixture f(testutil::single_service());
  SoraFramework sora(f.app, f.warehouse);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  sora.manage(knob);
  sora.manage(knob);
  EXPECT_EQ(sora.managed().size(), 1u);
}

TEST(SoraFramework, StopHaltsControlLoop) {
  Fixture f(testutil::single_service());
  SoraFrameworkOptions opts;
  opts.control_period = sec(1);
  SoraFramework sora(f.app, f.warehouse, opts);
  sora.manage(ResourceKnob::entry(f.app.service("svc")));
  sora.start();
  f.sim.run_until(sec(3));
  const auto rounds = sora.control_rounds();
  sora.stop();
  f.sim.run_until(sec(10));
  EXPECT_EQ(sora.control_rounds(), rounds);
}

}  // namespace
}  // namespace sora
