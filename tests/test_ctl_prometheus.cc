// Conformance tests for the Prometheus text exposition (format 0.0.4):
// sanitized names, escaped label values, one TYPE line per family, counter
// _total convention, histogram-as-summary rendering. The suite parses the
// rendered output line-by-line with the format's own grammar rather than
// grepping for substrings, so any malformed byte fails loudly.
#include "ctl/prometheus.h"

#include <gtest/gtest.h>

#include <cctype>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace sora::ctl {
namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0 ||
                       c == '_' || c == ':';
    if (i == 0 ? !alpha
               : !(alpha || std::isdigit(static_cast<unsigned char>(c)))) {
      return false;
    }
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  if (name.size() >= 2 && name[0] == '_' && name[1] == '_') return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
    if (i == 0 ? !alpha
               : !(alpha || std::isdigit(static_cast<unsigned char>(c)))) {
      return false;
    }
  }
  return true;
}

struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;  ///< values still escaped
  std::string value;
};

struct Exposition {
  std::map<std::string, std::string> types;  ///< family -> type
  std::vector<Sample> samples;
  std::vector<std::string> errors;
};

/// Parse one `name{l1="v1",...} value` sample line per the exposition
/// grammar (escape-aware label value scanning; no regex shortcuts).
bool parse_sample(const std::string& line, Sample* out, std::string* err) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  out->name = line.substr(0, i);
  if (!valid_metric_name(out->name)) {
    *err = "bad metric name in: " + line;
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      std::size_t eq = line.find('=', i);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        *err = "malformed label in: " + line;
        return false;
      }
      const std::string label = line.substr(i, eq - i);
      if (!valid_label_name(label)) {
        *err = "bad label name '" + label + "' in: " + line;
        return false;
      }
      std::size_t j = eq + 2;
      std::string value;
      while (j < line.size() && line[j] != '"') {
        if (line[j] == '\\') {
          if (j + 1 >= line.size() ||
              (line[j + 1] != '\\' && line[j + 1] != '"' &&
               line[j + 1] != 'n')) {
            *err = "bad escape in: " + line;
            return false;
          }
          value += line[j];
          value += line[j + 1];
          j += 2;
        } else if (line[j] == '\n') {
          *err = "raw newline in label value: " + line;
          return false;
        } else {
          value += line[j];
          ++j;
        }
      }
      if (j >= line.size()) {
        *err = "unterminated label value in: " + line;
        return false;
      }
      out->labels[label] = value;
      i = j + 1;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      *err = "unterminated label set in: " + line;
      return false;
    }
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    *err = "missing value separator in: " + line;
    return false;
  }
  out->value = line.substr(i + 1);
  if (out->value.empty() || out->value.find(' ') != std::string::npos) {
    *err = "malformed value in: " + line;
    return false;
  }
  return true;
}

Exposition parse_exposition(const std::string& text) {
  Exposition out;
  std::size_t pos = 0;
  EXPECT_FALSE(text.empty()) << "empty exposition";
  if (!text.empty()) {
    EXPECT_EQ(text.back(), '\n') << "exposition must end with a newline";
  }
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) break;
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t sp = line.find(' ', 7);
      if (sp == std::string::npos) {
        out.errors.push_back("malformed TYPE line: " + line);
        continue;
      }
      const std::string family = line.substr(7, sp - 7);
      const std::string type = line.substr(sp + 1);
      if (out.types.count(family) != 0) {
        out.errors.push_back("duplicate TYPE for family: " + family);
      }
      if (type != "counter" && type != "gauge" && type != "summary" &&
          type != "histogram" && type != "untyped") {
        out.errors.push_back("unknown type '" + type + "' for " + family);
      }
      out.types[family] = type;
      continue;
    }
    if (line[0] == '#') continue;  // other comments are legal
    Sample s;
    std::string err;
    if (!parse_sample(line, &s, &err)) {
      out.errors.push_back(err);
      continue;
    }
    out.samples.push_back(std::move(s));
  }
  return out;
}

// -- sanitizer units ----------------------------------------------------------

TEST(PrometheusSanitize, MetricNamesMapInvalidCharsToUnderscore) {
  EXPECT_EQ(sanitize_metric_name("pool.queue-depth"), "pool_queue_depth");
  EXPECT_EQ(sanitize_metric_name("rpc.latency_us"), "rpc_latency_us");
  EXPECT_EQ(sanitize_metric_name("already_fine:x"), "already_fine:x");
  EXPECT_EQ(sanitize_metric_name("spaced out"), "spaced_out");
}

TEST(PrometheusSanitize, LeadingDigitGainsUnderscore) {
  EXPECT_EQ(sanitize_metric_name("9lives"), "_9lives");
  EXPECT_TRUE(valid_metric_name(sanitize_metric_name("42")));
}

TEST(PrometheusSanitize, EmptyNameStaysValid) {
  EXPECT_TRUE(valid_metric_name(sanitize_metric_name("")));
}

TEST(PrometheusSanitize, LabelNamesForbidColonAndReservedPrefix) {
  EXPECT_EQ(sanitize_label_name("service-name"), "service_name");
  EXPECT_EQ(sanitize_label_name("a:b"), "a_b");
  // "__" prefix is reserved by Prometheus; the sanitizer must not mint it.
  EXPECT_TRUE(valid_label_name(sanitize_label_name("__reserved")));
  EXPECT_TRUE(valid_label_name(sanitize_label_name("--flag")));
}

TEST(PrometheusSanitize, LabelValueEscaping) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
  EXPECT_EQ(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

// -- whole-snapshot conformance ----------------------------------------------

TEST(PrometheusExposition, NastyRegistryRendersCleanly) {
  obs::MetricsRegistry reg;
  // The registry's native naming: dotted families, dashed service names,
  // plus deliberately hostile label values.
  reg.counter("pool.resizes", {{"service", "cart-v2"}}).add(3);
  reg.counter("pool.resizes", {{"service", "front-end"}}).add(1);
  reg.gauge("pool.queue-depth", {{"service", "cart-v2"}}).set(7);
  reg.counter("sim.events_total").add(12345);
  reg.gauge("weird.value", {{"note", "line1\nline2 \"quoted\" back\\slash"}})
      .set(1.5);
  auto& h = reg.histogram("rpc.latency_us", {{"service", "cart-v2"}});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i) * 1000.0);

  const std::string text = to_prometheus(reg.snapshot());
  const Exposition exp = parse_exposition(text);
  for (const std::string& e : exp.errors) ADD_FAILURE() << e;

  // Families got sanitized and typed exactly once.
  EXPECT_EQ(exp.types.at("pool_resizes_total"), "counter");
  EXPECT_EQ(exp.types.at("pool_queue_depth"), "gauge");
  EXPECT_EQ(exp.types.at("rpc_latency_us"), "summary");
  // A counter already ending in _total keeps a single suffix.
  EXPECT_EQ(exp.types.count("sim_events_total_total"), 0u);
  EXPECT_EQ(exp.types.at("sim_events_total"), "counter");

  // Every sample's family has a TYPE line (strip summary suffixes).
  for (const Sample& s : exp.samples) {
    std::string family = s.name;
    for (const char* suffix : {"_sum", "_count"}) {
      const std::string suf(suffix);
      if (family.size() > suf.size() &&
          family.compare(family.size() - suf.size(), suf.size(), suf) == 0 &&
          exp.types.count(family) == 0) {
        family = family.substr(0, family.size() - suf.size());
      }
    }
    EXPECT_EQ(exp.types.count(family), 1u) << "untyped family of " << s.name;
  }

  // Hostile label value survives with exact escaping.
  bool found_weird = false;
  for (const Sample& s : exp.samples) {
    if (s.name != "weird_value") continue;
    found_weird = true;
    EXPECT_EQ(s.labels.at("note"),
              "line1\\nline2 \\\"quoted\\\" back\\\\slash");
  }
  EXPECT_TRUE(found_weird);

  // Histogram renders as a summary: three quantiles + _sum + _count with
  // the right per-series labels.
  int quantiles = 0;
  for (const Sample& s : exp.samples) {
    if (s.name == "rpc_latency_us") {
      EXPECT_EQ(s.labels.at("service"), "cart-v2");
      EXPECT_TRUE(s.labels.count("quantile"));
      ++quantiles;
    }
    if (s.name == "rpc_latency_us_count") {
      EXPECT_EQ(s.value, "100");
    }
  }
  EXPECT_EQ(quantiles, 3);

  // Two series of one counter family -> two samples under one TYPE line.
  int resize_samples = 0;
  for (const Sample& s : exp.samples) {
    if (s.name == "pool_resizes_total") ++resize_samples;
  }
  EXPECT_EQ(resize_samples, 2);
}

TEST(PrometheusExposition, KindCollisionDegradesToUntyped) {
  obs::MetricsRegistry reg;
  reg.gauge("clash").set(1);
  reg.histogram("clash", {{"which", "h"}}).observe(5.0);
  const Exposition exp = parse_exposition(to_prometheus(reg.snapshot()));
  for (const std::string& e : exp.errors) ADD_FAILURE() << e;
  // One family, one TYPE line, degraded to untyped (never two TYPE lines).
  EXPECT_EQ(exp.types.at("clash"), "untyped");
  EXPECT_EQ(exp.types.size(), 1u);
}

TEST(PrometheusExposition, EmptySnapshotRendersNothing) {
  obs::MetricsRegistry reg;
  EXPECT_TRUE(to_prometheus(reg.snapshot()).empty());
}

TEST(PrometheusExposition, NonFiniteValuesUseSpecialForms) {
  obs::MetricsRegistry reg;
  reg.gauge("inf_gauge").set(std::numeric_limits<double>::infinity());
  // A histogram with zero observations reports NaN percentiles.
  reg.histogram("empty.hist");
  const std::string text = to_prometheus(reg.snapshot());
  const Exposition exp = parse_exposition(text);
  for (const std::string& e : exp.errors) ADD_FAILURE() << e;
  bool saw_inf = false;
  for (const Sample& s : exp.samples) {
    if (s.name == "inf_gauge") {
      saw_inf = true;
      EXPECT_EQ(s.value, "+Inf");
    }
    // Whatever the value, it must be parseable as one token (the grammar
    // check in parse_sample already enforced no embedded spaces).
  }
  EXPECT_TRUE(saw_inf);
}

}  // namespace
}  // namespace sora::ctl
