// Tests for the mergeable DDSketch-style quantile sketch: relative-error
// bound against exact order statistics on several distributions, merge
// semantics (commutativity, sharded == unsharded), bounded memory, and the
// empty-sketch sentinel.
#include "obs/quantile_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace sora::obs {
namespace {

// Exact order statistic at the sketch's rank convention:
// rank = round(p/100 * (n-1)).
double exact_at(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(rank, xs.size() - 1)];
}

// Assert sketch percentiles sit within the relative-error bound of the exact
// order statistic for a spread of p.
void expect_within_bound(const QuantileSketch& sk,
                         const std::vector<double>& xs, double slack = 1.001) {
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = exact_at(xs, p);
    const double got = sk.percentile(p);
    EXPECT_NEAR(got, exact, std::abs(exact) * sk.relative_accuracy() * slack)
        << "p=" << p;
  }
}

TEST(QuantileSketch, EmptyReturnsSentinel) {
  QuantileSketch sk;
  EXPECT_TRUE(sk.empty());
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_TRUE(is_no_sample(sk.percentile(50)));
  EXPECT_TRUE(is_no_sample(sk.percentile(0)));
  EXPECT_TRUE(is_no_sample(sk.percentile(100)));
}

TEST(QuantileSketch, SingleValue) {
  QuantileSketch sk;
  sk.record(42.0);
  EXPECT_EQ(sk.count(), 1u);
  // min/max clamping makes a single value exact.
  EXPECT_DOUBLE_EQ(sk.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(sk.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(sk.percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(sk.min(), 42.0);
  EXPECT_DOUBLE_EQ(sk.max(), 42.0);
  EXPECT_DOUBLE_EQ(sk.mean(), 42.0);
}

TEST(QuantileSketch, UniformWithinRelativeErrorBound) {
  Rng rng(7);
  std::vector<double> xs;
  QuantileSketch sk(0.01);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform(1.0, 1000.0);
    xs.push_back(v);
    sk.record(v);
  }
  expect_within_bound(sk, xs);
}

TEST(QuantileSketch, LognormalWithinRelativeErrorBound) {
  Rng rng(11);
  std::vector<double> xs;
  QuantileSketch sk(0.01);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.lognormal_mean_cv(50.0, 1.5);
    xs.push_back(v);
    sk.record(v);
  }
  expect_within_bound(sk, xs);
}

TEST(QuantileSketch, BimodalWithinRelativeErrorBound) {
  // Two well-separated modes (fast path ~10, slow path ~500) — the shape
  // where interpolation-based percentiles mislead but order statistics and
  // the sketch agree.
  Rng rng(13);
  std::vector<double> xs;
  QuantileSketch sk(0.01);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform() < 0.8 ? rng.uniform(8.0, 12.0)
                                         : rng.uniform(450.0, 550.0);
    xs.push_back(v);
    sk.record(v);
  }
  expect_within_bound(sk, xs);
}

TEST(QuantileSketch, MonotoneInP) {
  Rng rng(17);
  QuantileSketch sk;
  for (int i = 0; i < 5000; ++i) sk.record(rng.exponential(100.0));
  double prev = sk.percentile(0);
  for (double p = 1; p <= 100; p += 1) {
    const double cur = sk.percentile(p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

TEST(QuantileSketch, MemoryIndependentOfSampleCount) {
  Rng rng(19);
  QuantileSketch sk(0.01);
  std::size_t buckets_at_10k = 0;
  for (int i = 0; i < 1000000; ++i) {
    sk.record(rng.lognormal_mean_cv(80.0, 1.0));
    if (i == 9999) buckets_at_10k = sk.num_buckets();
  }
  EXPECT_EQ(sk.count(), 1000000u);
  // 100x more samples must not grow the footprint beyond the value range's
  // bucket grid: the only growth allowed is the slightly wider extremes of
  // the larger sample, not anything proportional to the count.
  EXPECT_LE(sk.num_buckets(), buckets_at_10k + 128);
  EXPECT_LE(sk.num_buckets(), sk.max_buckets());
}

TEST(QuantileSketch, BucketCapCollapsesLowEndOnly) {
  QuantileSketch sk(0.01, 512);
  // Values across 12 orders of magnitude need ~1400 natural buckets at 1%
  // accuracy, forcing the low-end collapse.
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    const double v = std::pow(10.0, rng.uniform(-3.0, 9.0));
    xs.push_back(v);
    sk.record(v);
  }
  EXPECT_LE(sk.num_buckets(), 512u + 1u);  // +1 for the zero bucket
  // Tail percentiles (what SLO monitoring reads) stay within bound even
  // though the low end collapsed.
  for (double p : {90.0, 95.0, 99.0, 99.9}) {
    const double exact = exact_at(xs, p);
    EXPECT_NEAR(sk.percentile(p), exact, exact * 0.011) << "p=" << p;
  }
}

TEST(QuantileSketch, MergeIsCommutative) {
  Rng rng(29);
  QuantileSketch a(0.01), b(0.01);
  for (int i = 0; i < 3000; ++i) a.record(rng.uniform(1.0, 100.0));
  for (int i = 0; i < 3000; ++i) b.record(rng.exponential(40.0));

  QuantileSketch ab(a);
  ab.merge(b);
  QuantileSketch ba(b);
  ba.merge(a);

  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_DOUBLE_EQ(ab.sum(), ba.sum());
  for (double p : {1.0, 50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(ab.percentile(p), ba.percentile(p)) << "p=" << p;
  }
}

TEST(QuantileSketch, ShardedEqualsUnsharded) {
  // Record one stream into a single sketch and round-robin the same stream
  // into 8 shards; the merged shards must answer identically.
  Rng rng(31);
  QuantileSketch whole(0.01);
  std::vector<QuantileSketch> shards(8, QuantileSketch(0.01));
  for (int i = 0; i < 40000; ++i) {
    const double v = rng.lognormal_mean_cv(60.0, 2.0);
    whole.record(v);
    shards[static_cast<std::size_t>(i) % shards.size()].record(v);
  }
  QuantileSketch merged(0.01);
  for (const QuantileSketch& s : shards) merged.merge(s);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  for (double p = 0; p <= 100; p += 5) {
    EXPECT_DOUBLE_EQ(merged.percentile(p), whole.percentile(p)) << "p=" << p;
  }
}

TEST(QuantileSketch, CountAtOrBelow) {
  QuantileSketch sk(0.01);
  for (int i = 1; i <= 100; ++i) sk.record(static_cast<double>(i));
  EXPECT_EQ(sk.count_at_or_below(0.5), 0u);
  EXPECT_EQ(sk.count_at_or_below(1000.0), 100u);
  const std::uint64_t half = sk.count_at_or_below(50.0);
  EXPECT_NEAR(static_cast<double>(half), 50.0, 2.0);
}

TEST(QuantileSketch, ResetClears) {
  QuantileSketch sk;
  sk.record(5.0);
  sk.reset();
  EXPECT_TRUE(sk.empty());
  EXPECT_EQ(sk.num_buckets(), 0u);
  EXPECT_TRUE(is_no_sample(sk.percentile(50)));
}

TEST(QuantileSketch, NegativeAndZeroLandInZeroBucket) {
  QuantileSketch sk;
  sk.record(-3.0);
  sk.record(0.0);
  sk.record(10.0);
  EXPECT_EQ(sk.count(), 3u);
  EXPECT_DOUBLE_EQ(sk.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(sk.percentile(100), 10.0);
}

TEST(QuantileSketch, MergeWithEmptyOtherIsNoop) {
  QuantileSketch sk(0.01);
  for (int i = 1; i <= 50; ++i) sk.record(static_cast<double>(i));
  const std::uint64_t count_before = sk.count();
  const double p99_before = sk.percentile(99);
  QuantileSketch empty(0.01);
  sk.merge(empty);
  EXPECT_EQ(sk.count(), count_before);
  EXPECT_DOUBLE_EQ(sk.percentile(99), p99_before);
  EXPECT_DOUBLE_EQ(sk.min(), 1.0);
  EXPECT_DOUBLE_EQ(sk.max(), 50.0);
}

TEST(QuantileSketch, MergeIntoEmptyAdoptsOther) {
  QuantileSketch empty(0.01);
  QuantileSketch other(0.01);
  for (int i = 1; i <= 50; ++i) other.record(static_cast<double>(i));
  empty.merge(other);
  EXPECT_EQ(empty.count(), 50u);
  // Rank rounding on 50 samples lands between 25 and 26, plus 1% sketch
  // error.
  EXPECT_NEAR(empty.percentile(50), 25.5, 1.0);
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
}

TEST(QuantileSketch, MergeTwoEmptiesStaysNoSample) {
  QuantileSketch a(0.01), b(0.01);
  a.merge(b);
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(is_no_sample(a.percentile(99)));
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(QuantileSketch, WeightedRecord) {
  QuantileSketch sk;
  sk.record(10.0, 99);
  sk.record(100.0, 1);
  EXPECT_EQ(sk.count(), 100u);
  EXPECT_NEAR(sk.percentile(50), 10.0, 10.0 * 0.011);
  EXPECT_NEAR(sk.percentile(100), 100.0, 100.0 * 0.011);
}

}  // namespace
}  // namespace sora::obs
