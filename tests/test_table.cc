// Tests for table/CSV rendering helpers.
#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sora {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 22    |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("| x |"), std::string::npos);
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream out;
  t.print_csv(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TextTable, CsvPlain) {
  TextTable t({"k", "v"});
  t.add_row({"a", "b"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "k,v\na,b\n");
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, Count) { EXPECT_EQ(fmt_count(12345), "12345"); }

}  // namespace
}  // namespace sora
