// Tests for the hill-climbing baseline tuner.
#include "core/hillclimb.h"

#include <gtest/gtest.h>

#include "svc/application.h"
#include "test_util.h"
#include "trace/tracer.h"
#include "trace/warehouse.h"
#include "workload/generator.h"

namespace sora {
namespace {

struct Fixture {
  Simulator sim;
  Tracer tracer;
  Application app;
  explicit Fixture(ApplicationConfig cfg)
      : app(sim, tracer, std::move(cfg), 1) {}
};

TEST(HillClimb, ClimbsOutOfStarvation) {
  // 8-core service with a 2-slot pool: any climb direction that grows the
  // pool improves goodput, so the tuner must walk upward.
  Fixture f(testutil::single_service(8.0, 2, 2000, 1000, 0.4));
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  HillClimbOptions opts;
  opts.period = sec(5);
  opts.rt_threshold = msec(50);
  HillClimbTuner tuner(f.sim, f.tracer, knob, opts);
  tuner.start();

  ClosedLoopGenerator users(f.sim, f.app, 40, msec(50), 3);
  users.start();
  f.sim.run_until(sec(60));
  users.stop();
  tuner.stop();

  EXPECT_GT(knob.current_size(), 4);
  EXPECT_GT(tuner.steps_taken(), 3u);
}

TEST(HillClimb, RespectsBounds) {
  Fixture f(testutil::single_service(8.0, 2, 2000, 1000, 0.4));
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  HillClimbOptions opts;
  opts.period = sec(5);
  opts.max_size = 6;
  HillClimbTuner tuner(f.sim, f.tracer, knob, opts);
  tuner.start();
  ClosedLoopGenerator users(f.sim, f.app, 40, msec(50), 4);
  users.start();
  f.sim.run_until(sec(90));
  users.stop();
  EXPECT_LE(knob.current_size(), 6);
  EXPECT_GE(knob.current_size(), 1);
}

TEST(HillClimb, StopHaltsSteps) {
  Fixture f(testutil::single_service(8.0, 2, 2000, 1000, 0.4));
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  HillClimbOptions opts;
  opts.period = sec(5);
  HillClimbTuner tuner(f.sim, f.tracer, knob, opts);
  tuner.start();
  f.sim.run_until(sec(12));
  tuner.stop();
  const auto steps = tuner.steps_taken();
  f.sim.run_until(sec(60));
  EXPECT_EQ(tuner.steps_taken(), steps);
}

TEST(TraceSampling, WarehouseStoresEveryNth) {
  Simulator sim;
  Tracer tracer;
  TraceWarehouse wh(1000);
  wh.attach(tracer, 5);
  for (int i = 0; i < 50; ++i) {
    const TraceId tid = tracer.begin_trace(0, i);
    const SpanId root =
        tracer.start_span(tid, SpanId{}, ServiceId(0), InstanceId(0), 0, i);
    tracer.finish_span(tid, root, i + 10);
  }
  EXPECT_EQ(wh.size(), 10u);
}

}  // namespace
}  // namespace sora
