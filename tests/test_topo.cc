// Tests for the planet-scale topology synthesizer (src/topo).
#include "topo/synth.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "harness/experiment.h"
#include "topo/export.h"

namespace sora::topo {
namespace {

TopologyConfig small_config(std::uint64_t seed = 1) {
  TopologyConfig cfg;
  cfg.seed = seed;
  cfg.services = 120;
  cfg.tenants = 3;
  cfg.entries_per_tenant = 2;
  cfg.async_cycle_fraction = 0.2;  // make async edges likely in a small graph
  return cfg;
}

std::string serialized(const Topology& topo) {
  std::ostringstream os;
  write_json(os, topo, /*shards=*/4);
  std::ostringstream dot;
  write_dot(dot, topo);
  return os.str() + dot.str();
}

TEST(TopoSynth, SameConfigAndSeedIsByteIdentical) {
  const Topology a = synthesize(small_config());
  const Topology b = synthesize(small_config());
  EXPECT_EQ(serialized(a), serialized(b));
}

TEST(TopoSynth, DifferentSeedDiffers) {
  const Topology a = synthesize(small_config(1));
  const Topology b = synthesize(small_config(2));
  EXPECT_NE(serialized(a), serialized(b));
}

TEST(TopoSynth, RejectsImpossibleBudgets) {
  TopologyConfig cfg = small_config();
  cfg.services = 10;  // can't fit 6 entries + shared tiers + 3 mids
  EXPECT_THROW(synthesize(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.tenants = 0;
  EXPECT_THROW(synthesize(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.async_cycle_fraction = 1.5;
  EXPECT_THROW(synthesize(cfg), std::invalid_argument);
}

TEST(TopoSynth, StructureIsSane) {
  const TopologyConfig cfg = small_config();
  const Topology topo = synthesize(cfg);
  const TopologyStats stats = topo.stats();

  EXPECT_EQ(stats.services, cfg.services);
  EXPECT_EQ(static_cast<int>(topo.app.services.size()), cfg.services);
  EXPECT_EQ(stats.entries, cfg.tenants * cfg.entries_per_tenant);
  EXPECT_GT(stats.shared_services, 0);
  EXPECT_EQ(stats.entries + stats.mid_services + stats.shared_services,
            cfg.services);

  int histogram_total = 0;
  for (int count : stats.depth_histogram) histogram_total += count;
  EXPECT_EQ(histogram_total, cfg.services);

  // One request class per (tenant, entry); the callback class sits one past.
  EXPECT_EQ(static_cast<int>(topo.app.entry_service.size()),
            cfg.tenants * cfg.entries_per_tenant);
  EXPECT_EQ(topo.callback_class, cfg.tenants * cfg.entries_per_tenant);

  // Every mid service is reachable: nonzero sync in-degree.
  std::vector<int> in_degree(topo.app.services.size(), 0);
  for (const TopologyEdge& e : topo.edges) {
    if (!e.async) ++in_degree[static_cast<std::size_t>(e.to)];
  }
  for (std::size_t i = 0; i < topo.app.services.size(); ++i) {
    if (topo.tenant_of[i] >= 0 && topo.depth[i] > 0) {
      EXPECT_GT(in_degree[i], 0) << topo.app.services[i].name;
    }
  }
  // Shared tiers draw heavy fan-in.
  EXPECT_GT(stats.shared_in_degree_max, 1);
}

TEST(TopoSynth, AsyncEdgesPointAtAncestorsWithTerminalBehaviour) {
  const Topology topo = synthesize(small_config());
  int async_edges = 0;
  for (const TopologyEdge& e : topo.edges) {
    if (!e.async) continue;
    ++async_edges;
    // The callback fires from a deep mid back up its own path: a cycle in
    // the service graph, but never at entry depth.
    EXPECT_GE(topo.depth[static_cast<std::size_t>(e.from)], 2);
    EXPECT_LT(topo.depth[static_cast<std::size_t>(e.to)],
              topo.depth[static_cast<std::size_t>(e.from)]);
    // The target must define an explicit terminal behaviour for the
    // callback class — the class-0 fallback would replay its downstream
    // calls and async edges (a livelock).
    const ServiceConfig& target =
        topo.app.services[static_cast<std::size_t>(e.to)];
    const auto it = target.classes.find(topo.callback_class);
    ASSERT_NE(it, target.classes.end()) << target.name;
    EXPECT_TRUE(it->second.call_groups.empty());
    EXPECT_TRUE(it->second.async_callbacks.empty());
    EXPECT_GT(it->second.request_demand.mean_us, 0.0);
  }
  EXPECT_GT(async_edges, 0);
}

TEST(TopoSynth, PartitionAssignsEveryServiceAndPinsEntries) {
  const Topology topo = synthesize(small_config());
  const auto nodes = topo.partition_nodes();
  const auto edges = topo.partition_edges();
  EXPECT_EQ(nodes.size(), topo.app.services.size());
  EXPECT_EQ(edges.size(), topo.edges.size());
  for (int shards : {2, 4}) {
    const sim::PartitionResult part =
        sim::partition_service_graph(nodes, edges, shards);
    ASSERT_TRUE(part.ok) << part.reason;
    EXPECT_EQ(part.assignment.size(), nodes.size());
    EXPECT_EQ(part.lookahead, topo.config.network_latency);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].entry) {
        EXPECT_EQ(part.assignment[i], 0);
      }
    }
  }
}

TEST(TopoSynth, TenantMixesCoverClassesAndBatchPriority) {
  const Topology topo = synthesize(small_config());
  // batch_tenant_fraction = 0.25 of 3 tenants -> 0 batch tenants; raise it.
  TopologyConfig cfg = small_config();
  cfg.batch_tenant_fraction = 0.4;  // trailing 1 of 3
  const Topology batchy = synthesize(cfg);
  EXPECT_FALSE(batchy.tenant_is_batch(0));
  EXPECT_FALSE(batchy.tenant_is_batch(1));
  EXPECT_TRUE(batchy.tenant_is_batch(2));

  const std::vector<int> classes = topo.tenant_classes(1);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0], 2);
  EXPECT_EQ(classes[1], 3);
  RequestMix mix = batchy.tenant_mix(2);
  for (int cls : batchy.tenant_classes(2)) {
    EXPECT_EQ(mix.priority_of(cls), Priority::kBatch);
  }
  RequestMix high = batchy.tenant_mix(0);
  for (int cls : batchy.tenant_classes(0)) {
    EXPECT_EQ(high.priority_of(cls), Priority::kHigh);
  }
}

// The synthesized application must actually run end to end: requests fan
// through the mid tiers into the shared backends and complete, and async
// callbacks terminate (no livelock through the class-0 fallback).
TEST(TopoSynth, SynthesizedApplicationRuns) {
  TopologyConfig cfg = small_config();
  cfg.services = 60;
  const Topology topo = synthesize(cfg);
  ExperimentConfig ecfg;
  ecfg.duration = sec(10);
  ecfg.seed = 7;
  ecfg.sla = topo.config.request_sla;
  Experiment exp(topo.app, ecfg);
  for (int t = 0; t < cfg.tenants; ++t) {
    exp.open_loop(WorkloadTrace(TraceShape::kSlowlyVarying, sec(10), 20.0,
                                40.0),
                  topo.tenant_mix(t));
  }
  exp.run();
  const ExperimentSummary s = exp.summary();
  EXPECT_GT(s.injected, 100u);
  EXPECT_GT(s.completed, 0u);
  EXPECT_EQ(exp.app().in_flight() + exp.app().completed() + exp.app().shed(),
            exp.app().injected());
}

}  // namespace
}  // namespace sora::topo
