// End-to-end request execution through the microservice substrate.
#include "svc/application.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "trace/tracer.h"
#include "trace/warehouse.h"

namespace sora {
namespace {

struct Fixture {
  Simulator sim;
  Tracer tracer;
  TraceWarehouse warehouse{1024};
  Application app;
  explicit Fixture(ApplicationConfig cfg, std::uint64_t seed = 1)
      : app(sim, tracer, std::move(cfg), seed) {
    warehouse.attach(tracer);
  }
};

TEST(Application, SingleServiceRequestTiming) {
  // Deterministic demands (cv = 0): rt = req + resp exactly.
  Fixture f(testutil::single_service(2.0, 8, 1000, 500, 0.0));
  SimTime rt = -1;
  f.app.inject(0, [&](SimTime r) { rt = r; });
  f.sim.run_all();
  EXPECT_EQ(rt, 1500);
  EXPECT_EQ(f.app.injected(), 1u);
  EXPECT_EQ(f.app.completed(), 1u);
  EXPECT_EQ(f.app.in_flight(), 0u);
}

TEST(Application, ChainTiming) {
  // front 500+300, mid 800+400, leaf 1200 -> total 3200 (idle system).
  Fixture f(testutil::chain_app());
  SimTime rt = -1;
  f.app.inject(0, [&](SimTime r) { rt = r; });
  f.sim.run_all();
  EXPECT_EQ(rt, 3200);
}

TEST(Application, ChainTraceStructure) {
  Fixture f(testutil::chain_app());
  f.app.inject(0, [](SimTime) {});
  f.sim.run_all();
  ASSERT_EQ(f.warehouse.size(), 1u);
  f.warehouse.for_each_in_window(0, INT64_MAX, [&](const Trace& t) {
    ASSERT_EQ(t.spans.size(), 3u);
    const Span& front = t.spans[0];
    const Span& mid = t.spans[1];
    const Span& leaf = t.spans[2];
    EXPECT_FALSE(front.parent.valid());
    EXPECT_EQ(mid.parent, front.id);
    EXPECT_EQ(leaf.parent, mid.id);
    // Timestamps nest properly.
    EXPECT_LE(front.arrival, mid.arrival);
    EXPECT_LE(mid.arrival, leaf.arrival);
    EXPECT_LE(leaf.departure, mid.departure);
    EXPECT_LE(mid.departure, front.departure);
    // Processing times: front 800, mid 1200, leaf 1200.
    EXPECT_EQ(front.processing_time(), 800);
    EXPECT_EQ(mid.processing_time(), 1200);
    EXPECT_EQ(leaf.processing_time(), 1200);
    // Downstream waits recorded.
    EXPECT_EQ(front.downstream_wait, mid.duration());
    EXPECT_EQ(mid.downstream_wait, leaf.duration());
    ASSERT_EQ(front.children.size(), 1u);
    EXPECT_EQ(front.children[0].child, mid.id);
  });
}

TEST(Application, ParallelFanoutOverlaps) {
  // front 200+200; a=3000, b=1000 in parallel -> rt = 400 + max(3000,1000).
  Fixture f(testutil::fanout_app(3000, 1000));
  SimTime rt = -1;
  f.app.inject(0, [&](SimTime r) { rt = r; });
  f.sim.run_all();
  EXPECT_EQ(rt, 3400);
}

TEST(Application, FanoutDownstreamWaitCountsOnce) {
  Fixture f(testutil::fanout_app(3000, 1000));
  f.app.inject(0, [](SimTime) {});
  f.sim.run_all();
  f.warehouse.for_each_in_window(0, INT64_MAX, [&](const Trace& t) {
    EXPECT_EQ(t.root().downstream_wait, 3000);  // parallel wait, not 4000
    EXPECT_EQ(t.root().processing_time(), 400);
  });
}

TEST(Application, EntryPoolQueueingDelaysRequests) {
  // Pool of 1, two requests: the second queues behind the first.
  Fixture f(testutil::single_service(4.0, 1, 1000, 0, 0.0));
  std::vector<SimTime> rts;
  f.app.inject(0, [&](SimTime r) { rts.push_back(r); });
  f.app.inject(0, [&](SimTime r) { rts.push_back(r); });
  f.sim.run_all();
  ASSERT_EQ(rts.size(), 2u);
  EXPECT_EQ(rts[0], 1000);
  EXPECT_EQ(rts[1], 2000);  // waited 1000 in the entry queue
}

TEST(Application, EdgePoolGatesConcurrentCalls) {
  // 1 connection, db takes 1000us with 4 cores: two calls serialize.
  Fixture f(testutil::edge_pool_app(1, 1000, 0.0));
  std::vector<SimTime> rts;
  f.app.inject(0, [&](SimTime r) { rts.push_back(r); });
  f.app.inject(0, [&](SimTime r) { rts.push_back(r); });
  f.sim.run_all();
  ASSERT_EQ(rts.size(), 2u);
  // First: 100 + 1000 + 100 = 1200. Second waits ~1000 for the connection.
  EXPECT_EQ(rts[0], 1200);
  EXPECT_GE(rts[1], 2000);
}

TEST(Application, EdgePoolWiderAllowsParallelism) {
  Fixture f(testutil::edge_pool_app(2, 1000, 0.0));
  std::vector<SimTime> rts;
  f.app.inject(0, [&](SimTime r) { rts.push_back(r); });
  f.app.inject(0, [&](SimTime r) { rts.push_back(r); });
  f.sim.run_all();
  ASSERT_EQ(rts.size(), 2u);
  EXPECT_EQ(rts[0], 1200);
  EXPECT_EQ(rts[1], 1200);  // db has 4 cores: both run at full speed
}

TEST(Application, ConservationUnderLoad) {
  Fixture f(testutil::chain_app(0.5), 99);
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    f.sim.schedule_at(i * 500, [&] {
      f.app.inject(0, [&](SimTime) { ++completed; });
    });
  }
  f.sim.run_all();
  EXPECT_EQ(completed, 200);
  EXPECT_EQ(f.app.injected(), 200u);
  EXPECT_EQ(f.app.completed(), 200u);
  EXPECT_EQ(f.app.in_flight(), 0u);
  EXPECT_EQ(f.tracer.open_traces(), 0u);
  EXPECT_EQ(f.warehouse.size(), 200u);
}

TEST(Application, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Fixture f(testutil::chain_app(0.7), seed);
    std::vector<SimTime> rts;
    for (int i = 0; i < 50; ++i) {
      f.sim.schedule_at(i * 1000, [&] {
        f.app.inject(0, [&](SimTime r) { rts.push_back(r); });
      });
    }
    f.sim.run_all();
    return rts;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Application, NetworkLatencyAddsDelay) {
  ApplicationConfig cfg = testutil::chain_app();
  cfg.network_latency = msec(1);
  Fixture f(std::move(cfg));
  SimTime rt = -1;
  f.app.inject(0, [&](SimTime r) { rt = r; });
  f.sim.run_all();
  // 2 hops x 2 directions x 1ms = 4ms extra.
  EXPECT_EQ(rt, 3200 + 4000);
}

TEST(Application, ServiceLookup) {
  Fixture f(testutil::chain_app());
  EXPECT_NE(f.app.service("front"), nullptr);
  EXPECT_EQ(f.app.service("nope"), nullptr);
  const Service* front = f.app.service("front");
  EXPECT_EQ(f.app.service(front->id()), front);
  EXPECT_EQ(f.app.service_name(front->id()), "front");
  EXPECT_EQ(f.app.service_name(ServiceId(999)), "?");
}

TEST(Application, MultipleReplicasRoundRobin) {
  ApplicationConfig cfg = testutil::single_service(2.0, 4, 1000, 0, 0.0);
  cfg.services[0].initial_replicas = 2;
  Fixture f(std::move(cfg));
  Service* svc = f.app.service("svc");
  ASSERT_EQ(svc->active_replicas(), 2);
  // Two simultaneous requests land on different replicas: both at 1000us.
  std::vector<SimTime> rts;
  f.app.inject(0, [&](SimTime r) { rts.push_back(r); });
  f.app.inject(0, [&](SimTime r) { rts.push_back(r); });
  f.sim.run_all();
  EXPECT_EQ(rts[0], 1000);
  EXPECT_EQ(rts[1], 1000);
  EXPECT_EQ(svc->completions(), 2u);
}

}  // namespace
}  // namespace sora
