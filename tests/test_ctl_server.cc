// End-to-end tests for the ctl plane's embedded server: HTTP plumbing,
// snapshot board consistency, and a live experiment probed over loopback
// while frozen at a safepoint with a `pause` command.
#include "ctl/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "common/log.h"
#include "ctl/http.h"
#include "ctl/json_value.h"
#include "ctl/plane.h"
#include "harness/experiment.h"
#include "obs/decision_log.h"
#include "test_util.h"

namespace sora::ctl {
namespace {

// -- HTTP plumbing ------------------------------------------------------------

TEST(HttpParsing, RequestLineQueryAndBody) {
  HttpRequest req;
  ASSERT_TRUE(parse_http_request(
      "GET /decisions?tail=5&x=a%20b+c HTTP/1.0\r\n"
      "Host: localhost\r\n\r\n",
      &req));
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/decisions");
  EXPECT_EQ(req.query.at("tail"), "5");
  EXPECT_EQ(req.query.at("x"), "a b c");

  ASSERT_TRUE(parse_http_request(
      "POST /ctl HTTP/1.0\r\nContent-Length: 12\r\n\r\nloglevel info", &req));
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.path, "/ctl");
  EXPECT_FALSE(req.body.empty());
}

TEST(HttpParsing, RejectsGarbage) {
  HttpRequest req;
  EXPECT_FALSE(parse_http_request("", &req));
  EXPECT_FALSE(parse_http_request("not http at all", &req));
}

TEST(HttpParsing, ResponseCarriesContentLength) {
  const std::string resp = make_http_response(200, "text/plain", "hello\n");
  EXPECT_NE(resp.find("200"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 6"), std::string::npos);
  EXPECT_NE(resp.find("\r\n\r\nhello\n"), std::string::npos);
}

// -- snapshot board -----------------------------------------------------------

TEST(SnapshotBoardTest, ReadBeforeFirstPublishIsSeqZero) {
  SnapshotBoard board;
  EXPECT_EQ(board.read().seq, 0u);
}

TEST(SnapshotBoardTest, PublishStampsMonotonicSeq) {
  SnapshotBoard board;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    StatusSnapshot s;
    s.injected = i * 10;
    board.publish(std::move(s));
    const StatusSnapshot& got = board.read();
    EXPECT_EQ(got.seq, i);
    EXPECT_EQ(got.injected, i * 10);
  }
  EXPECT_EQ(board.published(), 5u);
}

// SPSC stress: one writer publishing correlated fields, one reader checking
// every observed snapshot is internally consistent (never a torn mix of two
// publishes) and that seq never goes backwards.
TEST(SnapshotBoardTest, ConcurrentReaderNeverSeesTornSnapshots) {
  SnapshotBoard board;
  constexpr std::uint64_t kPublishes = 20000;
  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= kPublishes; ++i) {
      StatusSnapshot s;
      s.injected = i;
      s.completed = i * 3;
      s.log_level = std::to_string(i);
      board.publish(std::move(s));
    }
  });
  std::uint64_t last_seq = 0;
  std::uint64_t reads = 0;
  while (last_seq < kPublishes) {
    const StatusSnapshot& s = board.read();
    ASSERT_GE(s.seq, last_seq) << "seq went backwards";
    last_seq = s.seq;
    if (s.seq == 0) continue;
    ASSERT_EQ(s.completed, s.injected * 3) << "torn snapshot at seq " << s.seq;
    ASSERT_EQ(s.log_level, std::to_string(s.injected))
        << "torn snapshot at seq " << s.seq;
    ++reads;
  }
  writer.join();
  EXPECT_GT(reads, 0u);
}

// -- command queue ------------------------------------------------------------

TEST(CommandQueueTest, DrainPreservesArrivalOrder) {
  CommandQueue q;
  EXPECT_TRUE(q.empty());
  q.push("first");
  q.push("second");
  const auto drained = q.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], "first");
  EXPECT_EQ(drained[1], "second");
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.drain().empty());
}

TEST(CommandQueueTest, TokenizerSplitsOnWhitespace) {
  const auto tok = tokenize_command("  fault  crash cart\t5 ");
  ASSERT_EQ(tok.size(), 4u);
  EXPECT_EQ(tok[0], "fault");
  EXPECT_EQ(tok[3], "5");
  EXPECT_TRUE(tokenize_command("   ").empty());
}

// -- live end-to-end ----------------------------------------------------------

/// GET /statusz and parse it; retries until `pred` holds or ~5 s elapse.
JsonValue poll_statusz_until(int port,
                             const std::function<bool(const JsonValue&)>& pred) {
  JsonValue doc;
  for (int i = 0; i < 250; ++i) {
    std::string body;
    if (http_get("127.0.0.1", port, "/statusz", &body) &&
        parse_json(body, &doc) && pred(doc)) {
      return doc;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return doc;
}

TEST(CtlEndpoints, LiveExperimentServesAndAppliesCommands) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kInfo);

  ExperimentConfig cfg;
  cfg.duration = sec(30);
  cfg.sla = msec(100);
  cfg.seed = 7;
  Experiment exp(testutil::chain_app(0.4), cfg);
  exp.closed_loop(10, msec(100));

  CtlOptions copt;
  copt.port = 0;  // ephemeral: tests never collide
  copt.safepoint_period = msec(100);
  exp.enable_ctl(copt);
  exp.start_all();
  CtlPlane* plane = exp.ctl_plane();
  ASSERT_NE(plane, nullptr);
  ASSERT_NE(plane->server(), nullptr);
  ASSERT_TRUE(plane->server()->running());
  const int port = plane->server()->port();
  ASSERT_GT(port, 0);

  // Freeze the sim at the very first safepoint so the probes below see a
  // stable world regardless of host speed.
  plane->queue().push("pause");
  std::thread sim_thread([&] { exp.run(); });

  const JsonValue paused = poll_statusz_until(
      port, [](const JsonValue& d) { return d["paused"].as_bool(); });
  ASSERT_TRUE(paused["paused"].as_bool()) << "sim never paused";
  EXPECT_GT(paused["sim_time_sec"].as_number(), 0.0);
  EXPECT_LT(paused["sim_time_sec"].as_number(), 30.0);
  ASSERT_EQ(paused["services"].as_array().size(), 3u);
  EXPECT_EQ(paused["services"].as_array()[0]["name"].as_string(), "front");
  EXPECT_EQ(paused["log_level"].as_string(), "info");

  // /healthz
  std::string body;
  int status = 0;
  ASSERT_TRUE(http_get("127.0.0.1", port, "/healthz", &body, &status));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");

  // Unknown endpoints 404 without killing the server.
  EXPECT_FALSE(http_get("127.0.0.1", port, "/nope", &body, &status));
  EXPECT_EQ(status, 404);

  // /metrics warms up on demand, then serves a real exposition.
  std::string metrics;
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(http_get("127.0.0.1", port, "/metrics", &metrics));
    if (metrics.find("# TYPE ") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_NE(metrics.find("# TYPE "), std::string::npos)
      << "metrics never warmed up";

  // /logz retains the applied-command line (level was raised to info).
  ASSERT_TRUE(http_get("127.0.0.1", port, "/logz?n=200", &body));
  EXPECT_NE(body.find("ctl: applied 'pause'"), std::string::npos);

  // /decisions carries the ctl record with the verbatim command text.
  ASSERT_TRUE(http_get("127.0.0.1", port, "/decisions?tail=100", &body));
  EXPECT_NE(body.find("\"controller\":\"ctl\""), std::string::npos);
  EXPECT_NE(body.find("\"command\":\"pause\""), std::string::npos);

  // A /ctl write applies while paused (the pause loop keeps draining).
  ASSERT_TRUE(http_get("127.0.0.1", port, "/ctl?cmd=loglevel%20debug", &body,
                       &status));
  EXPECT_EQ(status, 202);
  for (int i = 0; i < 250 && log_level() != LogLevel::kDebug; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kInfo);

  // A bogus command is rejected and counted, not applied.
  ASSERT_TRUE(http_get("127.0.0.1", port, "/ctl?cmd=frobnicate", &body));
  poll_statusz_until(port, [](const JsonValue& d) {
    return d["commands_rejected"].as_number() >= 1.0;
  });

  // Resume and let the run finish.
  ASSERT_TRUE(http_get("127.0.0.1", port, "/ctl?cmd=resume", &body, &status));
  EXPECT_EQ(status, 202);
  sim_thread.join();

  // Final state was force-published at end of run.
  ASSERT_TRUE(http_get("127.0.0.1", port, "/statusz", &body));
  JsonValue fin;
  ASSERT_TRUE(parse_json(body, &fin));
  EXPECT_FALSE(fin["paused"].as_bool());
  EXPECT_GE(fin["sim_time_sec"].as_number(), 30.0);
  EXPECT_GT(fin["completed"].as_number(), 0.0);

  EXPECT_GE(plane->commands_applied(), 3u);  // pause, loglevel, resume
  EXPECT_GE(plane->commands_rejected(), 1u);
  EXPECT_GT(plane->server()->requests_served(), 5u);

  // Every applied ctl record carries its command text (the replay script).
  std::size_t ctl_records = 0;
  for (const auto* rec : exp.decision_log().by_controller("ctl")) {
    EXPECT_FALSE(rec->command.empty());
    ++ctl_records;
  }
  EXPECT_GE(ctl_records, 4u);

  set_log_level(old_level);
}

// Two servers on one port: the second bind fails softly (the documented
// parallel-sweep behavior — first binder wins, the rest stay headless).
TEST(CtlEndpoints, SecondBindOnSamePortFailsSoftly) {
  SnapshotBoard board1, board2;
  CommandQueue q1, q2;
  CtlServer first(ServerOptions{0}, board1, q1);
  ASSERT_TRUE(first.start());
  ASSERT_GT(first.port(), 0);
  CtlServer second(ServerOptions{first.port()}, board2, q2);
  EXPECT_FALSE(second.start());
  EXPECT_FALSE(second.running());
  // The first server still works.
  std::string body;
  EXPECT_TRUE(http_get("127.0.0.1", first.port(), "/healthz", &body));
  EXPECT_EQ(body, "ok\n");
  first.stop();
  EXPECT_FALSE(first.running());
}

}  // namespace
}  // namespace sora::ctl
