// Tests for the SLO report generator: section presence, episode/attribution
// stitching, and well-formed HTML.
#include "obs/slo_report.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/budget.h"
#include "obs/decision_log.h"
#include "obs/quantile_sketch.h"
#include "obs/slo_monitor.h"
#include "test_util.h"

namespace sora::obs {
namespace {

// A populated analytics stack: latency sketch, a monitor with one episode,
// and an attributor where "leaf" dominates consumption.
struct Fixture {
  QuantileSketch latency;
  SloMonitor monitor;
  BudgetAttributor attribution;
  DecisionLog decisions;

  Fixture()
      : monitor([] {
          SloMonitorOptions o;
          o.target = 0.9;
          o.fast_window = sec(10);
          o.slow_window = sec(30);
          o.burn_threshold = 2.0;
          return o;
        }()),
        attribution(/*sla=*/150, /*window=*/sec(1),
                    [](ServiceId id) {
                      return id == ServiceId(2) ? std::string("leaf")
                                                : std::string();
                    }) {
    for (int i = 1; i <= 1000; ++i) latency.record(i * 100.0);  // 0.1..100ms
    for (SimTime t = 0; t < sec(30); t += sec(1)) {
      for (int i = 0; i < 10; ++i) monitor.record("e2e", t, false);
      monitor.evaluate(t);
      const Trace tr = testutil::make_trace(
          {
              {-1, 0, 0, 100, 80},
              {0, 1, 10, 90, 60},
              {1, 2, 20, 80, 0},
          },
          static_cast<std::uint64_t>(t / sec(1)) + 1);
      attribution.on_budget(attribute_budget(tr, 150), t);
    }
    monitor.finish(sec(30));
    attribution.flush(sec(30));
  }

  SloReportInputs inputs() const {
    SloReportInputs in;
    in.title = "test run";
    in.sla = msec(150);
    in.latency = &latency;
    in.monitor = &monitor;
    in.attribution = &attribution;
    in.decisions = &decisions;
    return in;
  }
};

TEST(SloReport, TextContainsAllSections) {
  Fixture fx;
  std::ostringstream os;
  write_slo_report_text(fx.inputs(), os);
  const std::string r = os.str();
  EXPECT_NE(r.find("=== test run ==="), std::string::npos);
  EXPECT_NE(r.find("End-to-end latency (quantile sketch)"), std::string::npos);
  EXPECT_NE(r.find("SLO compliance"), std::string::npos);
  EXPECT_NE(r.find("Violation episodes"), std::string::npos);
  EXPECT_NE(r.find("Latency-budget attribution"), std::string::npos);
  // Percentile rows and the sample count.
  EXPECT_NE(r.find("p50"), std::string::npos);
  EXPECT_NE(r.find("p99.9"), std::string::npos);
  // The monitor's single all-bad episode.
  EXPECT_NE(r.find("e2e"), std::string::npos);
  // Episode row names the top budget consumer resolved via the namer.
  EXPECT_NE(r.find("leaf"), std::string::npos);
}

TEST(SloReport, EmptyInputsDegradeGracefully) {
  SloReportInputs in;
  in.title = "empty";
  in.sla = msec(100);
  std::ostringstream os;
  write_slo_report_text(in, os);
  const std::string r = os.str();
  EXPECT_NE(r.find("=== empty ==="), std::string::npos);
  EXPECT_NE(r.find("(none detected)"), std::string::npos);
  EXPECT_NE(r.find("(no attributed traces)"), std::string::npos);
}

TEST(SloReport, HtmlIsSelfContained) {
  Fixture fx;
  std::ostringstream os;
  write_slo_report_html(fx.inputs(), os);
  const std::string r = os.str();
  EXPECT_EQ(r.rfind("<!DOCTYPE html>", 0), 0u);  // starts with doctype
  EXPECT_NE(r.find("</html>"), std::string::npos);
  EXPECT_NE(r.find("<table>"), std::string::npos);
  EXPECT_NE(r.find("<th>"), std::string::npos);
  EXPECT_NE(r.find("leaf"), std::string::npos);
  // No external asset references.
  EXPECT_EQ(r.find("http://"), std::string::npos);
  EXPECT_EQ(r.find("https://"), std::string::npos);
  EXPECT_EQ(r.find("src="), std::string::npos);
}

TEST(SloReport, HtmlEscapesTitle) {
  Fixture fx;
  SloReportInputs in = fx.inputs();
  in.title = "a<b>&c";
  std::ostringstream os;
  write_slo_report_html(in, os);
  EXPECT_EQ(os.str().find("<b>&c"), std::string::npos);
}

}  // namespace
}  // namespace sora::obs
