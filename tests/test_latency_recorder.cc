// Tests for client-side latency/goodput recording.
#include "metrics/latency_recorder.h"

#include <gtest/gtest.h>

namespace sora {
namespace {

TEST(LatencyRecorder, PercentilesExact) {
  Simulator sim;
  LatencyRecorder rec(sim, msec(100));
  for (int i = 1; i <= 100; ++i) rec.record(msec(i));
  EXPECT_EQ(rec.count(), 100u);
  // Percentiles come from the mergeable quantile sketch: exact up to the
  // sketch's 1% relative-error bound, not to machine precision.
  EXPECT_NEAR(rec.percentile_ms(50), 50.0, 50.0 * 0.011);
  EXPECT_NEAR(rec.percentile_ms(99), 99.0, 99.0 * 0.011);
  EXPECT_NEAR(rec.mean_ms(), 50.5, 0.01);
}

TEST(LatencyRecorder, EmptyIsZero) {
  Simulator sim;
  LatencyRecorder rec(sim, msec(100));
  EXPECT_TRUE(is_no_sample(rec.percentile_ms(99)));
  EXPECT_DOUBLE_EQ(rec.average_goodput(), 0.0);
  EXPECT_DOUBLE_EQ(rec.good_fraction(), 0.0);
}

TEST(LatencyRecorder, GoodputCountsWithinSla) {
  Simulator sim;
  LatencyRecorder rec(sim, msec(100));
  sim.schedule_at(sec(10), [&] {
    for (int i = 0; i < 60; ++i) rec.record(msec(50));   // good
    for (int i = 0; i < 40; ++i) rec.record(msec(200));  // bad
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(rec.good_fraction(), 0.6);
  // 60 good over 10 seconds elapsed.
  EXPECT_NEAR(rec.average_goodput(), 6.0, 0.01);
}

TEST(LatencyRecorder, SlaBoundaryInclusive) {
  Simulator sim;
  LatencyRecorder rec(sim, msec(100));
  sim.schedule_at(sec(1), [&] {
    rec.record(msec(100));
    rec.record(msec(100) + 1);
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(rec.good_fraction(), 0.5);
}

TEST(LatencyRecorder, TimelineBuckets) {
  Simulator sim;
  LatencyRecorder rec(sim, msec(100), sec(1));
  sim.schedule_at(msec(500), [&] { rec.record(msec(10)); });
  sim.schedule_at(msec(2500), [&] {
    rec.record(msec(20));
    rec.record(msec(300));
  });
  sim.run_all();
  const auto& tl = rec.timeline();
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[0].completed, 1u);
  EXPECT_EQ(tl[1].completed, 0u);
  EXPECT_EQ(tl[2].completed, 2u);
  EXPECT_EQ(tl[2].good, 1u);
  EXPECT_NEAR(tl[2].mean_rt_ms(), 160.0, 0.01);
  EXPECT_NEAR(tl[2].max_rt_ms(), 300.0, 0.01);
  EXPECT_EQ(tl[0].start, 0);
  EXPECT_EQ(tl[2].start, sec(2));
}

TEST(LatencyRecorder, DistributionHistogram) {
  Simulator sim;
  LatencyRecorder rec(sim, msec(100));
  rec.record(msec(5));
  rec.record(msec(15));
  rec.record(msec(15));
  const LinearHistogram h = rec.distribution_ms(10.0, 5);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
}

TEST(LatencyRecorder, SetSlaAffectsFutureRecords) {
  Simulator sim;
  LatencyRecorder rec(sim, msec(100));
  sim.schedule_at(sec(1), [&] {
    rec.record(msec(150));  // bad under 100ms SLA
    rec.set_sla(msec(200));
    rec.record(msec(150));  // good under 200ms SLA
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(rec.good_fraction(), 0.5);
}

}  // namespace
}  // namespace sora
