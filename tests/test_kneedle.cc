// Tests for the Kneedle knee detector.
#include "core/kneedle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace sora {
namespace {

std::pair<std::vector<double>, std::vector<double>> saturating_curve(
    double knee_x, double x_max, double step = 1.0) {
  // y = 1 - exp(-x / knee_x): curvature max near knee_x.
  std::vector<double> xs, ys;
  for (double x = 0.0; x <= x_max; x += step) {
    xs.push_back(x);
    ys.push_back(1.0 - std::exp(-x / knee_x));
  }
  return {xs, ys};
}

TEST(Kneedle, FindsKneeOfSaturatingCurve) {
  auto [xs, ys] = saturating_curve(5.0, 40.0);
  const auto knee = kneedle(xs, ys);
  ASSERT_TRUE(knee.has_value());
  // Analytic knee of 1-exp(-x/5) via Kneedle's difference curve is ~5-9.
  EXPECT_GT(knee->x, 3.0);
  EXPECT_LT(knee->x, 12.0);
}

TEST(Kneedle, NoKneeOnStraightLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 1.0);
  }
  EXPECT_FALSE(kneedle(xs, ys).has_value());
}

TEST(Kneedle, TooFewPoints) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{1, 2, 3, 4};
  EXPECT_FALSE(kneedle(xs, ys).has_value());
}

TEST(Kneedle, DegenerateFlatCurve) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6};
  std::vector<double> ys{5, 5, 5, 5, 5, 5};
  EXPECT_FALSE(kneedle(xs, ys).has_value());
}

TEST(Kneedle, RestrictsToRisingSegment) {
  // Rise to a peak at x=10 then fall: the falling tail must not confuse
  // detection when restrict_to_rising is on.
  std::vector<double> xs, ys;
  for (double x = 0; x <= 20; x += 1.0) {
    xs.push_back(x);
    ys.push_back(x <= 10 ? 1.0 - std::exp(-x / 3.0) : 1.0 - 0.05 * (x - 10));
  }
  const auto knee = kneedle(xs, ys);
  ASSERT_TRUE(knee.has_value());
  EXPECT_LE(knee->x, 10.0);
}

TEST(Kneedle, HigherSensitivityIsMoreConservative) {
  auto [xs, ys] = saturating_curve(5.0, 40.0);
  // Inject mild noise.
  Rng rng(3);
  for (double& y : ys) y += rng.normal(0.0, 0.002);
  KneedleOptions aggressive;
  aggressive.sensitivity = 0.5;
  KneedleOptions conservative;
  conservative.sensitivity = 20.0;
  const auto k_aggr = kneedle(xs, ys, aggressive);
  const auto k_cons = kneedle(xs, ys, conservative);
  EXPECT_TRUE(k_aggr.has_value());
  // Very high sensitivity may reject; if it accepts, the knee is no earlier.
  if (k_cons) EXPECT_GE(k_cons->x, k_aggr->x - 1e-9);
}

TEST(Kneedle, ReportsCurveValueAtKnee) {
  auto [xs, ys] = saturating_curve(4.0, 30.0);
  const auto knee = kneedle(xs, ys);
  ASSERT_TRUE(knee.has_value());
  EXPECT_DOUBLE_EQ(knee->y, ys[knee->index]);
  EXPECT_DOUBLE_EQ(knee->x, xs[knee->index]);
}

// Degenerate scatters must be rejected cleanly: nullopt, never a NaN knee,
// never a throw. These are exactly the windows the estimator sees under
// fault injection (empty after dropout, flat after a stall, decreasing
// after overload) before its own sample gates kick in.
TEST(Kneedle, DegenerateEmptyInput) {
  EXPECT_FALSE(kneedle({}, {}).has_value());
}

TEST(Kneedle, DegenerateSinglePoint) {
  std::vector<double> xs{3.0};
  std::vector<double> ys{1.0};
  EXPECT_FALSE(kneedle(xs, ys).has_value());
}

TEST(Kneedle, DegenerateMonotoneDecreasing) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(100.0 - 3.0 * i);
  }
  // restrict_to_rising truncates to the first point -> rejected.
  EXPECT_FALSE(kneedle(xs, ys).has_value());
  // Even on the full (falling) curve, no NaN may escape.
  KneedleOptions opts;
  opts.restrict_to_rising = false;
  const auto knee = kneedle(xs, ys, opts);
  if (knee) {
    EXPECT_FALSE(std::isnan(knee->x));
    EXPECT_FALSE(std::isnan(knee->y));
  }
}

TEST(Kneedle, DegenerateAllDuplicateX) {
  std::vector<double> xs{4, 4, 4, 4, 4, 4};
  std::vector<double> ys{1, 2, 3, 4, 5, 6};
  // Zero x-range cannot be normalized; rejected, not divided by.
  EXPECT_FALSE(kneedle(xs, ys).has_value());
}

TEST(Kneedle, DuplicateXWithinCurveProducesFiniteKnee) {
  // Concurrency buckets repeat in real scatters; duplicates inside an
  // otherwise increasing curve must not poison the difference curve.
  std::vector<double> xs{0, 1, 1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(1.0 - std::exp(-x / 2.0));
  const auto knee = kneedle(xs, ys);
  if (knee) {
    EXPECT_FALSE(std::isnan(knee->x));
    EXPECT_FALSE(std::isnan(knee->y));
    EXPECT_LT(knee->index, xs.size());
  }
}

// Property: knee recovery across knee positions and noise seeds.
class KneedleRecovery
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(KneedleRecovery, RecoversSyntheticKnee) {
  const double knee_x = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  auto [xs, ys] = saturating_curve(knee_x, knee_x * 8.0, knee_x / 5.0);
  Rng rng(static_cast<std::uint64_t>(seed));
  for (double& y : ys) y += rng.normal(0.0, 0.004);
  const auto knee = kneedle(xs, ys);
  ASSERT_TRUE(knee.has_value()) << "knee_x=" << knee_x << " seed=" << seed;
  // Kneedle's knee for 1-exp(-x/k) lands within ~[0.7k, 2.2k].
  EXPECT_GT(knee->x, 0.5 * knee_x);
  EXPECT_LT(knee->x, 2.5 * knee_x);
}

INSTANTIATE_TEST_SUITE_P(
    KneesAndSeeds, KneedleRecovery,
    ::testing::Combine(::testing::Values(3.0, 5.0, 10.0, 20.0),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace sora
