// Whole-system integration tests: Sora + autoscaler vs. static baselines on
// the paper's benchmark applications (scaled-down versions of the Section 5
// experiments, kept small enough for the unit-test budget).
#include <gtest/gtest.h>

#include "apps/sock_shop.h"
#include "apps/social_network.h"
#include "harness/experiment.h"

namespace sora {
namespace {

/// Run Sock Shop browse traffic for `duration`, with or without Sora
/// managing the Cart thread pool, and return the summary.
ExperimentSummary run_sock_shop(bool with_sora, int users, SimTime duration,
                                int cart_threads, std::uint64_t seed) {
  sock_shop::Params params;
  params.cart_cores = 2.0;
  params.cart_threads = cart_threads;
  ExperimentConfig cfg;
  cfg.duration = duration;
  cfg.sla = msec(250);
  cfg.seed = seed;
  Experiment exp(sock_shop::make_sock_shop(params), cfg);
  exp.closed_loop(users, sec(1), RequestMix(sock_shop::kBrowse));
  if (with_sora) {
    SoraFrameworkOptions opts;
    opts.sla = cfg.sla;
    auto& sora = exp.add_sora(opts);
    sora.manage(ResourceKnob::entry(exp.app().service("cart")));
  }
  exp.run();
  return exp.summary();
}

TEST(Integration, SoraImprovesBadlyUnderProvisionedCart) {
  // 1 thread on a 2-core Cart is a pathological under-allocation: Sora must
  // lift goodput substantially.
  const auto baseline = run_sock_shop(false, 350, minutes(3), 1, 11);
  const auto with = run_sock_shop(true, 350, minutes(3), 1, 11);
  EXPECT_GT(with.goodput_rps, baseline.goodput_rps * 1.2);
  EXPECT_LT(with.p99_ms, baseline.p99_ms);
}

TEST(Integration, SoraConvergesNearGoodStaticAllocation) {
  // Against a reasonable static setting, adaptive management must be in the
  // same ballpark (no catastrophic regression).
  const auto good_static = run_sock_shop(false, 350, minutes(3), 8, 12);
  const auto adaptive = run_sock_shop(true, 350, minutes(3), 1, 12);
  EXPECT_GT(adaptive.goodput_rps, good_static.goodput_rps * 0.7);
}

TEST(Integration, FullRunIsDeterministic) {
  const auto a = run_sock_shop(true, 200, minutes(1), 3, 5);
  const auto b = run_sock_shop(true, 200, minutes(1), 3, 5);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
  EXPECT_DOUBLE_EQ(a.goodput_rps, b.goodput_rps);
}

TEST(Integration, TracingConservationOnSocialNetwork) {
  ExperimentConfig cfg;
  cfg.duration = minutes(1);
  cfg.sla = msec(200);
  Experiment exp(social_network::make_social_network(), cfg);
  auto& users =
      exp.closed_loop(100, msec(500),
                      RequestMix{{social_network::kReadTimelineLight, 9.0},
                                 {social_network::kComposePost, 1.0}});
  exp.run();
  // Stop the user population, drain in-flight work, check conservation.
  users.stop();
  exp.sim().run_all();
  EXPECT_EQ(exp.app().injected(), exp.app().completed());
  EXPECT_EQ(exp.tracer().open_traces(), 0u);
  EXPECT_GT(exp.summary().injected, 1000u);
}

TEST(Integration, StateDriftShiftsCriticalDemand) {
  // Flip light -> heavy mid-run: post-storage utilization must jump.
  ExperimentConfig cfg;
  cfg.duration = minutes(2);
  cfg.sla = msec(200);
  Experiment exp(social_network::make_social_network(), cfg);
  auto& users = exp.closed_loop(
      80, msec(500), RequestMix(social_network::kReadTimelineLight));
  exp.sim().schedule_at(minutes(1), [&users] {
    users.set_mix(RequestMix(social_network::kReadTimelineHeavy));
  });
  exp.track_service("post-storage");
  exp.run();
  const auto& tl = exp.timeline("post-storage");
  ASSERT_GE(tl.size(), 110u);
  double util_first = 0, util_second = 0;
  for (std::size_t i = 10; i < 55; ++i) util_first += tl[i].util_pct;
  for (std::size_t i = 70; i < 115; ++i) util_second += tl[i].util_pct;
  EXPECT_GT(util_second, util_first * 1.5);
}

}  // namespace
}  // namespace sora
