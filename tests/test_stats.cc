// Tests for statistics helpers (mean/variance/Pearson/MAPE/percentiles).
#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sora {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, VarianceBasics) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{2.0, 4.0}), 1.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{2.0, 4.0}), 1.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAnticorrelation) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  std::vector<double> xs{1, 1, 1};
  std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
  EXPECT_DOUBLE_EQ(pearson(ys, xs), 0.0);
}

TEST(Stats, PearsonShortSeriesIsZero) {
  std::vector<double> one{1.0};
  EXPECT_DOUBLE_EQ(pearson(one, one), 0.0);
}

TEST(Stats, PearsonIndependentNearZero) {
  // Deterministic "uncorrelated" pattern.
  std::vector<double> xs, ys;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(static_cast<double>(i % 7));
    ys.push_back(static_cast<double>((i * 37 + 11) % 13));
  }
  EXPECT_LT(std::abs(pearson(xs, ys)), 0.1);
}

TEST(Stats, MapeBasics) {
  std::vector<double> actual{100, 200};
  std::vector<double> pred{110, 180};
  // |10/100| = 10%, |20/200| = 10% -> 10%
  EXPECT_NEAR(mape(actual, pred), 10.0, 1e-9);
}

TEST(Stats, MapeSkipsZeroActuals) {
  std::vector<double> actual{0, 100};
  std::vector<double> pred{50, 150};
  EXPECT_NEAR(mape(actual, pred), 50.0, 1e-9);
}

TEST(Stats, MapeEmpty) {
  EXPECT_DOUBLE_EQ(mape(std::vector<double>{}, std::vector<double>{}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Stats, PercentileUnsortedInput) {
  std::vector<double> xs{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
}

TEST(Stats, PercentileEdgeCases) {
  // An empty sample has no percentile: the sentinel (NaN) is returned so
  // callers can't mistake "no data" for "p == 0".
  EXPECT_TRUE(is_no_sample(percentile(std::vector<double>{}, 50.0)));
  EXPECT_TRUE(is_no_sample(percentile_sorted(std::vector<double>{}, 99.0)));
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 99.0), 7.0);
  // Out-of-range p clamps.
  std::vector<double> xs{1, 2};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 150.0), 2.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  std::vector<double> xs{3, 1, 4, 1, 5, 9, 2, 6};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 31.0);
}

TEST(Stats, RunningStatsReset) {
  RunningStats rs;
  rs.add(5.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

// Property: percentile is monotone in p.
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  const int seed = GetParam();
  std::vector<double> xs;
  unsigned v = static_cast<unsigned>(seed) * 2654435761u + 1;
  for (int i = 0; i < 100; ++i) {
    v = v * 1664525u + 1013904223u;
    xs.push_back(static_cast<double>(v % 10000));
  }
  double prev = -1.0;
  for (double p = 0; p <= 100.0; p += 2.5) {
    const double q = percentile(xs, p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone, ::testing::Range(1, 9));

}  // namespace
}  // namespace sora
