// Tests for Service: compilation, scaling knobs, aggregates.
#include "svc/service.h"

#include <gtest/gtest.h>

#include "svc/application.h"
#include "test_util.h"
#include "trace/tracer.h"

namespace sora {
namespace {

struct Fixture {
  Simulator sim;
  Tracer tracer;
  Application app;
  explicit Fixture(ApplicationConfig cfg, std::uint64_t seed = 1)
      : app(sim, tracer, std::move(cfg), seed) {}
};

TEST(Service, CompilesTopology) {
  Fixture f(testutil::chain_app());
  Service* front = f.app.service("front");
  ASSERT_NE(front, nullptr);
  const CompiledBehavior& b = front->behavior(0);
  ASSERT_EQ(b.groups.size(), 1u);
  ASSERT_EQ(b.groups[0].calls.size(), 1u);
  EXPECT_EQ(b.groups[0].calls[0].target, f.app.service("mid"));
  EXPECT_EQ(b.groups[0].calls[0].edge_index, -1);  // ungated
}

TEST(Service, BehaviorFallsBackToClassZero) {
  Fixture f(testutil::single_service());
  Service* svc = f.app.service("svc");
  const CompiledBehavior& b0 = svc->behavior(0);
  const CompiledBehavior& b7 = svc->behavior(7);
  EXPECT_DOUBLE_EQ(b7.request_demand.mean_us, b0.request_demand.mean_us);
}

TEST(Service, EdgePoolIndexing) {
  Fixture f(testutil::edge_pool_app(5));
  Service* caller = f.app.service("caller");
  EXPECT_GE(caller->edge_index_of("db"), 0);
  EXPECT_EQ(caller->edge_index_of("nope"), -1);
  EXPECT_EQ(caller->edge_pool_size("db"), 5);
  EXPECT_EQ(caller->edge_capacity("db"), 5);
  const CompiledBehavior& b = caller->behavior(0);
  EXPECT_EQ(b.groups[0].calls[0].edge_index, caller->edge_index_of("db"));
}

TEST(Service, ScaleReplicasUpCreatesInstances) {
  Fixture f(testutil::single_service());
  Service* svc = f.app.service("svc");
  EXPECT_EQ(svc->active_replicas(), 1);
  svc->scale_replicas(3);
  EXPECT_EQ(svc->active_replicas(), 3);
  EXPECT_EQ(svc->total_replicas(), 3u);
  // Entry capacity aggregates across replicas (8 per replica).
  EXPECT_EQ(svc->entry_capacity(), 24);
}

TEST(Service, ScaleReplicasDownDeactivates) {
  Fixture f(testutil::single_service());
  Service* svc = f.app.service("svc");
  svc->scale_replicas(4);
  svc->scale_replicas(2);
  EXPECT_EQ(svc->active_replicas(), 2);
  EXPECT_EQ(svc->total_replicas(), 4u);  // instances retained for reuse
  svc->scale_replicas(3);                 // reactivates one
  EXPECT_EQ(svc->active_replicas(), 3);
  EXPECT_EQ(svc->total_replicas(), 4u);
}

TEST(Service, ScaleNeverBelowOne) {
  Fixture f(testutil::single_service());
  Service* svc = f.app.service("svc");
  svc->scale_replicas(0);
  EXPECT_EQ(svc->active_replicas(), 1);
}

TEST(Service, VerticalScalingAppliesToAllReplicas) {
  Fixture f(testutil::single_service(2.0));
  Service* svc = f.app.service("svc");
  svc->scale_replicas(3);
  svc->set_cpu_limit(4.0);
  EXPECT_DOUBLE_EQ(svc->cpu_limit(), 4.0);
  for (std::size_t i = 0; i < svc->total_replicas(); ++i) {
    EXPECT_DOUBLE_EQ(svc->instance(i).cpu().cores(), 4.0);
  }
  EXPECT_DOUBLE_EQ(svc->cpu_capacity(), 12.0);
}

TEST(Service, ResizeEntryPoolAppliesToAllReplicas) {
  Fixture f(testutil::single_service(2.0, 8));
  Service* svc = f.app.service("svc");
  svc->scale_replicas(2);
  svc->resize_entry_pool(20);
  EXPECT_EQ(svc->entry_pool_size(), 20);
  EXPECT_EQ(svc->entry_capacity(), 40);
}

TEST(Service, ResizeEdgePool) {
  Fixture f(testutil::edge_pool_app(5));
  Service* caller = f.app.service("caller");
  caller->resize_edge_pool("db", 12);
  EXPECT_EQ(caller->edge_pool_size("db"), 12);
  EXPECT_EQ(caller->edge_capacity("db"), 12);
}

TEST(Service, ReactivatedReplicaInheritsCurrentKnobs) {
  Fixture f(testutil::single_service(2.0, 8));
  Service* svc = f.app.service("svc");
  svc->scale_replicas(2);
  svc->scale_replicas(1);
  // Change knobs while replica 1 is inactive.
  svc->set_cpu_limit(4.0);
  svc->resize_entry_pool(16);
  svc->scale_replicas(2);
  EXPECT_DOUBLE_EQ(svc->instance(1).cpu().cores(), 4.0);
  EXPECT_EQ(svc->instance(1).entry_pool().capacity(), 16);
}

TEST(Service, DemandScale) {
  Fixture f(testutil::single_service());
  Service* svc = f.app.service("svc");
  EXPECT_DOUBLE_EQ(svc->demand_scale(), 1.0);
  svc->set_demand_scale(2.5);
  EXPECT_DOUBLE_EQ(svc->demand_scale(), 2.5);
}

TEST(Service, UnlimitedEntryPool) {
  ApplicationConfig cfg = testutil::single_service();
  cfg.services[0].entry_pool_size = 0;
  Fixture f(std::move(cfg));
  Service* svc = f.app.service("svc");
  EXPECT_GE(svc->instance(0).entry_pool().capacity(), 1'000'000);
}

}  // namespace
}  // namespace sora
