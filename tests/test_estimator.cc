// Tests for the Concurrency Estimator (sampler management + windows).
#include "core/estimator.h"

#include <gtest/gtest.h>

#include "svc/application.h"
#include "test_util.h"
#include "trace/tracer.h"

namespace sora {
namespace {

struct Fixture {
  Simulator sim;
  Tracer tracer;
  Application app;
  explicit Fixture(ApplicationConfig cfg)
      : app(sim, tracer, std::move(cfg), 1) {}
  void drive(int per_second, SimTime duration) {
    const SimTime gap = sec(1) / per_second;
    for (SimTime t = 0; t < duration; t += gap) {
      sim.schedule_at(sim.now() + t, [this] { app.inject(0, [](SimTime) {}); });
    }
  }
};

TEST(Estimator, WatchIsIdempotent) {
  Fixture f(testutil::single_service());
  ConcurrencyEstimator est(f.sim, f.tracer);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  ScatterSampler& a = est.watch(knob);
  ScatterSampler& b = est.watch(knob);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(est.knobs().size(), 1u);
}

TEST(Estimator, ThresholdRoundTrip) {
  Fixture f(testutil::single_service());
  ConcurrencyEstimator est(f.sim, f.tracer);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  est.watch(knob);
  est.set_rt_threshold(knob, msec(42));
  EXPECT_EQ(est.rt_threshold(knob), msec(42));
}

TEST(Estimator, UnwatchedKnobFails) {
  Fixture f(testutil::single_service());
  ConcurrencyEstimator est(f.sim, f.tracer);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  const auto e = est.estimate(knob);
  EXPECT_FALSE(e.valid);
  EXPECT_EQ(e.failure, "knob not watched");
  EXPECT_EQ(est.sampler(knob), nullptr);
  EXPECT_DOUBLE_EQ(est.mean_concurrency(knob), 0.0);
}

TEST(Estimator, CollectsSamplesWhileRunning) {
  Fixture f(testutil::single_service(4.0, 16, 2000, 0, 0.3));
  EstimatorOptions opts;
  opts.sampling_interval = msec(100);
  ConcurrencyEstimator est(f.sim, f.tracer, opts);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  est.watch(knob);
  f.drive(200, sec(5));
  f.sim.run_until(sec(5));
  ASSERT_NE(est.sampler(knob), nullptr);
  EXPECT_GE(est.sampler(knob)->size(), 45u);
  EXPECT_GT(est.mean_concurrency(knob), 0.0);
}

TEST(Estimator, QuantileAboveMean) {
  Fixture f(testutil::single_service(4.0, 16, 2000, 0, 0.6));
  ConcurrencyEstimator est(f.sim, f.tracer);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  est.watch(knob);
  f.drive(300, sec(5));
  f.sim.run_until(sec(5));
  EXPECT_GE(est.concurrency_quantile(knob, 90.0),
            est.concurrency_quantile(knob, 50.0));
  EXPECT_GE(est.concurrency_quantile(knob, 50.0), 0.0);
}

TEST(Estimator, ClearDropsSamples) {
  Fixture f(testutil::single_service());
  ConcurrencyEstimator est(f.sim, f.tracer);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  est.watch(knob);
  f.drive(100, sec(2));
  f.sim.run_until(sec(2));
  EXPECT_GT(est.sampler(knob)->size(), 0u);
  est.clear(knob);
  EXPECT_EQ(est.sampler(knob)->size(), 0u);
}

TEST(Estimator, WindowLimitsEstimateInput) {
  // Samples older than the window must not influence the estimate count.
  Fixture f(testutil::single_service(4.0, 16, 2000, 0, 0.3));
  EstimatorOptions opts;
  opts.window = sec(2);
  ConcurrencyEstimator est(f.sim, f.tracer, opts);
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  est.watch(knob);
  f.drive(200, sec(2));
  f.sim.run_until(sec(10));  // idle for 8 s: window now empty
  const auto e = est.estimate(knob);
  EXPECT_FALSE(e.valid);
  EXPECT_EQ(e.failure, "insufficient samples");
}

}  // namespace
}  // namespace sora
