// Tournament determinism: a cell rerun twice and a sweep fanned over
// worker threads (explicitly and via SORA_SWEEP_THREADS) must emit
// byte-identical canonical league rows.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "harness/tournament.h"

namespace sora::bench {
namespace {

std::vector<TournamentCell> small_grid() {
  std::vector<TournamentCell> cells;
  auto cell = [](const char* name, bool faults, bool admission) {
    TournamentCell c;
    c.controller = name;
    c.shape = TraceShape::kBigSpike;
    c.duration = sec(40);
    c.faults = faults;
    c.admission = admission;
    c.seed = 17;
    return c;
  };
  cells.push_back(cell("sora", true, true));
  cells.push_back(cell("autothrottle", false, true));
  cells.push_back(cell("k8s-hpa", true, false));
  cells.push_back(cell("lsram", false, false));
  return cells;
}

std::vector<std::string> canonical(const std::vector<TournamentRow>& rows) {
  std::vector<std::string> out;
  for (const auto& r : rows) out.push_back(canonical_row(r));
  return out;
}

TEST(Tournament, CellRerunIsByteIdentical) {
  TournamentCell cell;
  cell.controller = "sora";
  cell.shape = TraceShape::kSteepTriPhase;
  cell.duration = sec(40);
  cell.faults = true;
  cell.admission = true;
  cell.seed = 23;
  const std::string first = canonical_row(run_tournament_cell(cell));
  const std::string second = canonical_row(run_tournament_cell(cell));
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("sora|"), std::string::npos);
}

TEST(Tournament, SerialAndParallelSweepsEmitIdenticalRows) {
  const auto cells = small_grid();
  const auto serial = canonical(run_tournament(cells, 1));
  const auto parallel = canonical(run_tournament(cells, 4));
  ASSERT_EQ(serial.size(), cells.size());
  EXPECT_EQ(serial, parallel);
}

TEST(Tournament, SweepThreadsEnvVarPreservesRows) {
  const auto cells = small_grid();
  const auto serial = canonical(run_tournament(cells, 1));

  const char* prev = std::getenv("SORA_SWEEP_THREADS");
  const std::string saved = prev ? prev : "";
  ::setenv("SORA_SWEEP_THREADS", "4", 1);
  const auto enviro = canonical(run_tournament(cells, 0));
  if (prev) {
    ::setenv("SORA_SWEEP_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("SORA_SWEEP_THREADS");
  }
  EXPECT_EQ(serial, enviro);
}

TEST(Tournament, LeagueAggregatesAndRanks) {
  const auto cells = small_grid();
  const auto rows = run_tournament(cells, 2);
  const auto standings = league(rows);
  ASSERT_EQ(standings.size(), 4u);  // four distinct controllers
  for (std::size_t i = 1; i < standings.size(); ++i) {
    EXPECT_GE(standings[i - 1].goodput_rps, standings[i].goodput_rps);
  }
  for (const auto& e : standings) EXPECT_EQ(e.cells, 1u);
  EXPECT_EQ(league_table(standings).num_rows(), 4u);
  EXPECT_EQ(rows_table(rows).num_rows(), 4u);
}

}  // namespace
}  // namespace sora::bench
