// Tests for the fault injector: every fault kind performs its effect,
// leaves decision-log evidence, and the whole faulted run stays
// deterministic per seed.
#include "fault/injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "harness/experiment.h"
#include "test_util.h"

namespace sora {
namespace {

/// Chain app with 2 "mid" replicas so one can crash without refusal.
ApplicationConfig crashable_chain() {
  ApplicationConfig app = testutil::chain_app(0.3);
  app.services[1].with_replicas(2);  // "mid"
  return app;
}

ExperimentConfig short_config(std::uint64_t seed = 11,
                              SimTime duration = sec(60)) {
  ExperimentConfig cfg;
  cfg.duration = duration;
  cfg.sla = msec(100);
  cfg.seed = seed;
  return cfg;
}

FaultEvent crash_event(const std::string& service, SimTime at,
                       SimTime downtime, bool drop) {
  FaultEvent ev;
  ev.kind = FaultKind::kCrashInstance;
  ev.at = at;
  ev.service = service;
  ev.instance = 0;
  ev.drop_inflight = drop;
  ev.duration = downtime;
  return ev;
}

bool log_has(const obs::DecisionLog& log, const std::string& action,
             const std::string& fault_kind) {
  for (const auto& rec : log.records()) {
    if (rec.action == action && rec.fault_kind == fault_kind) return true;
  }
  return false;
}

TEST(FaultInjector, CrashTakesReplicaDownAndRestartRestoresIt) {
  Experiment exp(crashable_chain(), short_config());
  auto& sora = exp.add_sora();
  sora.manage(ResourceKnob::entry(exp.app().service("mid")));
  FaultPlan plan;
  plan.add(crash_event("mid", sec(10), sec(20), /*drop=*/false));
  exp.enable_faults(plan);
  exp.closed_loop(20, msec(50));

  exp.run_until(sec(15));  // mid-crash
  Service* mid = exp.app().service("mid");
  EXPECT_EQ(mid->active_replicas(), 1);
  exp.run_until(sec(40));  // past the restart
  EXPECT_EQ(mid->active_replicas(), 2);

  ASSERT_NE(exp.fault_injector(), nullptr);
  EXPECT_EQ(exp.fault_injector()->crashes(), 1u);
  EXPECT_EQ(exp.fault_injector()->restarts(), 1u);
  EXPECT_TRUE(log_has(exp.decision_log(), "crash", "crash_instance"));
  EXPECT_TRUE(log_has(exp.decision_log(), "restart", "crash_instance"));
}

TEST(FaultInjector, CrashTriggersFrameworkRelocalization) {
  Experiment exp(crashable_chain(), short_config());
  auto& sora = exp.add_sora();
  sora.manage(ResourceKnob::entry(exp.app().service("mid")));
  FaultPlan plan;
  plan.add(crash_event("mid", sec(10), sec(20), false));
  exp.enable_faults(plan);
  exp.closed_loop(20, msec(50));
  exp.run();

  // Crash and restart each restart the localization window with a record
  // saying why.
  std::size_t relocalize = 0;
  for (const auto& rec : exp.decision_log().records()) {
    if (rec.action == "relocalize") {
      ++relocalize;
      EXPECT_EQ(rec.target, "mid");
      EXPECT_NE(rec.reason.find("topology changed"), std::string::npos);
    }
  }
  EXPECT_EQ(relocalize, 2u);
}

TEST(FaultInjector, CrashOnLastReplicaIsRefusedWithEvidence) {
  // chain_app leaves every service at 1 replica: crashing "mid" must be
  // refused, recorded, and the run must be unharmed.
  Experiment exp(testutil::chain_app(0.3), short_config());
  FaultPlan plan;
  plan.add(crash_event("mid", sec(10), sec(20), true));
  exp.enable_faults(plan);
  exp.closed_loop(10, msec(50));
  exp.run();

  EXPECT_EQ(exp.fault_injector()->crashes(), 0u);
  EXPECT_EQ(exp.fault_injector()->crashes_refused(), 1u);
  EXPECT_EQ(exp.app().service("mid")->active_replicas(), 1);
  EXPECT_TRUE(log_has(exp.decision_log(), "crash_refused", "crash_instance"));
  EXPECT_GT(exp.summary().completed, 0u);
}

TEST(FaultInjector, CrashOnUnknownServiceIsRefused) {
  Experiment exp(testutil::chain_app(0.3), short_config());
  FaultPlan plan;
  plan.add(crash_event("nope", sec(5), 0, false));
  exp.enable_faults(plan);
  exp.closed_loop(5, msec(50));
  exp.run();
  EXPECT_EQ(exp.fault_injector()->crashes_refused(), 1u);
  EXPECT_TRUE(log_has(exp.decision_log(), "crash_refused", "crash_instance"));
}

TEST(FaultInjector, DropInflightAbortsVisitsButConservesRequests) {
  Experiment exp(crashable_chain(), short_config(13));
  FaultPlan plan;
  plan.add(crash_event("mid", sec(10), sec(20), /*drop=*/true));
  exp.enable_faults(plan);
  exp.closed_loop(40, msec(20));
  exp.run();

  Service* mid = exp.app().service("mid");
  EXPECT_GT(mid->visits_dropped(), 0u);
  // Conservation: every injected request departed one way or another — the
  // closed loop would deadlock (and completions stop) if an aborted visit
  // lost its continuation.
  const ExperimentSummary s = exp.summary();
  EXPECT_GT(s.completed, 0u);
  EXPECT_GE(s.injected, s.completed);
  // And traffic kept flowing after the crash: completions at 60s must
  // exceed a pre-crash-only run's worth by a wide margin.
  EXPECT_GT(s.throughput_rps, 0.0);
}

TEST(FaultInjector, CpuStepChangesLimitWithoutAnnouncement) {
  Experiment exp(testutil::chain_app(0.3), short_config());
  auto& sora = exp.add_sora();
  ResourceKnob knob = ResourceKnob::entry(exp.app().service("mid"));
  sora.manage(knob);
  const int knob_before = knob.current_size();

  FaultEvent ev;
  ev.kind = FaultKind::kCpuLimitStep;
  ev.at = sec(10);
  ev.service = "mid";
  ev.cores = 1.0;  // chain_app gives mid 4 cores
  FaultPlan plan;
  plan.add(ev);
  exp.enable_faults(plan);
  exp.closed_loop(10, msec(50));
  exp.run_until(sec(12));

  EXPECT_DOUBLE_EQ(exp.app().service("mid")->cpu_limit(), 1.0);
  // Unannounced: no on_hardware_scaled, so no proportional knob rescale at
  // the step instant.
  EXPECT_EQ(knob.current_size(), knob_before);
  EXPECT_EQ(exp.fault_injector()->cpu_steps(), 1u);
  bool found = false;
  for (const auto& rec : exp.decision_log().records()) {
    if (rec.action == "cpu_step") {
      found = true;
      EXPECT_EQ(rec.fault_kind, "cpu_limit_step");
      EXPECT_DOUBLE_EQ(rec.old_cores, 4.0);
      EXPECT_DOUBLE_EQ(rec.new_cores, 1.0);
      EXPECT_NE(rec.reason.find("unannounced"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(FaultInjector, SpanDropoutSuppressesSpanReports) {
  Experiment exp(testutil::single_service(4.0, 16), short_config());
  auto& sora = exp.add_sora();
  sora.manage(ResourceKnob::entry(exp.app().service("svc")));
  FaultEvent ev;
  ev.kind = FaultKind::kSpanDropout;
  ev.at = sec(5);
  ev.duration = sec(30);
  ev.fraction = 1.0;  // drop everything in the window
  FaultPlan plan;
  plan.add(ev);
  exp.enable_faults(plan);
  exp.closed_loop(20, msec(20));
  exp.run();

  EXPECT_GT(exp.fault_injector()->spans_dropped(), 0u);
  EXPECT_TRUE(log_has(exp.decision_log(), "fault_start", "span_dropout"));
  EXPECT_TRUE(log_has(exp.decision_log(), "fault_end", "span_dropout"));
  // Dropping span *reports* must not corrupt trace assembly: requests keep
  // completing end to end.
  EXPECT_GT(exp.summary().completed, 0u);
}

TEST(FaultInjector, SpanDelayRedeliversLate) {
  Experiment exp(testutil::single_service(4.0, 16), short_config());
  auto& sora = exp.add_sora();
  sora.manage(ResourceKnob::entry(exp.app().service("svc")));
  FaultEvent ev;
  ev.kind = FaultKind::kSpanDelay;
  ev.at = sec(5);
  ev.duration = sec(30);
  ev.fraction = 1.0;
  ev.delay = sec(2);
  FaultPlan plan;
  plan.add(ev);
  exp.enable_faults(plan);
  exp.closed_loop(20, msec(20));
  exp.run();

  EXPECT_GT(exp.fault_injector()->spans_delayed(), 0u);
  EXPECT_EQ(exp.fault_injector()->spans_dropped(), 0u);
  EXPECT_TRUE(log_has(exp.decision_log(), "fault_start", "span_delay"));
  EXPECT_GT(exp.summary().completed, 0u);
}

TEST(FaultInjector, ScatterDropoutDiscardsBucketsBeforeEstimator) {
  Experiment exp(testutil::single_service(4.0, 16), short_config());
  auto& sora = exp.add_sora();
  sora.manage(ResourceKnob::entry(exp.app().service("svc")));
  FaultEvent ev;
  ev.kind = FaultKind::kScatterDropout;
  ev.at = sec(5);
  ev.duration = sec(40);
  ev.fraction = 1.0;
  FaultPlan plan;
  plan.add(ev);
  exp.enable_faults(plan);
  exp.closed_loop(20, msec(20));
  exp.run();

  EXPECT_GT(exp.fault_injector()->scatter_dropped(), 0u);
  EXPECT_TRUE(log_has(exp.decision_log(), "fault_start", "scatter_dropout"));
  EXPECT_TRUE(log_has(exp.decision_log(), "fault_end", "scatter_dropout"));
}

TEST(FaultInjector, ControlStallSkipsRoundsWithRecords) {
  ExperimentConfig cfg = short_config(11, sec(90));
  Experiment exp(testutil::chain_app(0.3), cfg);
  SoraFrameworkOptions so;
  so.control_period = sec(5);
  auto& sora = exp.add_sora(so);
  sora.manage(ResourceKnob::entry(exp.app().service("mid")));
  auto& firm = exp.add_firm();
  firm.manage(exp.app().service("mid"));

  FaultEvent ev;
  ev.kind = FaultKind::kControlStall;
  ev.at = sec(20);
  ev.duration = sec(30);
  FaultPlan plan;
  plan.add(ev);
  exp.enable_faults(plan);
  exp.closed_loop(20, msec(50));
  exp.run();

  EXPECT_EQ(exp.fault_injector()->stalls(), 1u);
  EXPECT_FALSE(sora.stalled());  // window ended
  std::size_t sora_stalled = 0, firm_stalled = 0;
  for (const auto& rec : exp.decision_log().records()) {
    if (rec.action != "stalled") continue;
    EXPECT_EQ(rec.fault_kind, "control_stall");
    EXPECT_NE(rec.reason.find("stalled"), std::string::npos);
    if (rec.controller == "sora") ++sora_stalled;
    if (rec.controller == "firm") ++firm_stalled;
  }
  // 30 s stall / 5 s period: several skipped rounds, each with a record.
  EXPECT_GE(sora_stalled, 4u);
  EXPECT_GE(firm_stalled, 1u);
  EXPECT_TRUE(log_has(exp.decision_log(), "fault_start", "control_stall"));
  EXPECT_TRUE(log_has(exp.decision_log(), "fault_end", "control_stall"));
}

// The headline determinism claim: a faulted run is a pure function of its
// seed — byte-identical decision-log JSONL and identical summary on rerun.
TEST(FaultInjector, FaultedRunIsByteIdenticalAcrossReruns) {
  auto run_once = [](std::string* jsonl) {
    ExperimentConfig cfg = short_config(77, sec(60));
    Experiment exp(crashable_chain(), cfg);
    SoraFrameworkOptions so;
    so.control_period = sec(5);
    auto& sora = exp.add_sora(so);
    sora.manage(ResourceKnob::entry(exp.app().service("mid")));
    RandomFaultOptions fo;
    fo.crash_services = {"mid"};
    fo.cpu_services = {"leaf"};
    fo.crash_downtime = sec(15);
    fo.stall_duration = sec(10);
    exp.enable_faults(FaultPlan::random(cfg.seed, cfg.duration, fo));
    exp.closed_loop(20, msec(50));
    exp.run();
    std::ostringstream os;
    exp.export_decision_log(os);
    *jsonl = os.str();
    return exp.summary();
  };
  std::string jsonl_a, jsonl_b;
  const ExperimentSummary a = run_once(&jsonl_a);
  const ExperimentSummary b = run_once(&jsonl_b);
  EXPECT_FALSE(jsonl_a.empty());
  EXPECT_EQ(jsonl_a, jsonl_b);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.goodput_rps, b.goodput_rps);
}

// Satellite 4: control rounds that cannot estimate must still leave a
// decision record with an explicit fallback reason.
TEST(FaultInjector, InsufficientScatterLeavesFallbackReason) {
  // No traffic at all: every control round sees an empty scatter window.
  ExperimentConfig cfg = short_config(5, sec(30));
  Experiment exp(testutil::single_service(), cfg);
  SoraFrameworkOptions so;
  so.control_period = sec(5);
  auto& sora = exp.add_sora(so);
  sora.manage(ResourceKnob::entry(exp.app().service("svc")));
  exp.run();

  bool saw_fallback = false;
  for (const auto& rec : exp.decision_log().records()) {
    if (rec.controller != "sora" || rec.action != "none") continue;
    EXPECT_FALSE(rec.reason.empty());
    if (rec.reason.find("no known-good knee yet") != std::string::npos) {
      saw_fallback = true;
      EXPECT_FALSE(rec.estimate_valid);
    }
  }
  EXPECT_TRUE(saw_fallback);
}

TEST(FaultInjector, StallRecordsAppearEvenWhenScatterWouldBeValid) {
  // Direct framework-level check of the stall path (satellite 4): a stalled
  // round appends exactly one "stalled" record and runs nothing else.
  ExperimentConfig cfg = short_config(6, sec(10));
  Experiment exp(testutil::single_service(), cfg);
  auto& sora = exp.add_sora();
  sora.manage(ResourceKnob::entry(exp.app().service("svc")));
  exp.start_all();
  const std::uint64_t rounds_before = sora.control_rounds();
  sora.set_stalled(true);
  sora.control_round();
  EXPECT_EQ(sora.control_rounds(), rounds_before + 1);
  ASSERT_FALSE(exp.decision_log().empty());
  const auto& rec = exp.decision_log().records().back();
  EXPECT_EQ(rec.action, "stalled");
  EXPECT_EQ(rec.controller, "sora");
  EXPECT_EQ(rec.fault_kind, "control_stall");
  sora.set_stalled(false);
}

}  // namespace
}  // namespace sora
