// Robustness regression suite: every controller must survive every fault
// scenario, Sora's tail degradation must stay bounded, and the decision log
// must carry the fault evidence.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "fault/fault_plan.h"
#include "harness/experiment.h"
#include "test_util.h"

namespace sora {
namespace {

enum class Controller { kNone, kSora, kConScale, kFirm, kHpa };
enum class Scenario { kNone, kCrash, kCpuChurn, kTelemetryDropout, kStall };

FaultPlan scenario_plan(Scenario scenario) {
  FaultPlan plan;
  switch (scenario) {
    case Scenario::kNone:
      break;
    case Scenario::kCrash: {
      FaultEvent ev;
      ev.kind = FaultKind::kCrashInstance;
      ev.at = sec(20);
      ev.service = "mid";
      ev.drop_inflight = true;
      ev.duration = sec(20);
      plan.add(ev);
      break;
    }
    case Scenario::kCpuChurn: {
      FaultEvent down;
      down.kind = FaultKind::kCpuLimitStep;
      down.at = sec(20);
      down.service = "mid";
      down.cores = 1.0;
      FaultEvent up;
      up.kind = FaultKind::kCpuLimitStep;
      up.at = sec(45);
      up.service = "mid";
      up.cores = 4.0;
      plan.add(down).add(up);
      break;
    }
    case Scenario::kTelemetryDropout: {
      FaultEvent spans;
      spans.kind = FaultKind::kSpanDropout;
      spans.at = sec(20);
      spans.duration = sec(30);
      spans.fraction = 0.7;
      FaultEvent scatter;
      scatter.kind = FaultKind::kScatterDropout;
      scatter.at = sec(20);
      scatter.duration = sec(30);
      scatter.fraction = 0.7;
      plan.add(spans).add(scatter);
      break;
    }
    case Scenario::kStall: {
      FaultEvent ev;
      ev.kind = FaultKind::kControlStall;
      ev.at = sec(20);
      ev.duration = sec(25);
      plan.add(ev);
      break;
    }
  }
  return plan;
}

struct RunOutput {
  ExperimentSummary summary;
  std::size_t crash_records = 0;
  std::size_t cpu_records = 0;
  std::size_t stalled_records = 0;
  std::size_t fault_window_records = 0;
  std::size_t relocalize_records = 0;
};

RunOutput run_scenario(Controller controller, Scenario scenario,
                       std::uint64_t seed = 42) {
  ExperimentConfig cfg;
  cfg.duration = sec(90);
  cfg.sla = msec(100);
  cfg.seed = seed;
  ApplicationConfig app = testutil::chain_app(0.3);
  app.services[1].with_replicas(2);  // crashable "mid"
  Experiment exp(app, cfg);

  switch (controller) {
    case Controller::kNone:
      break;
    case Controller::kSora:
    case Controller::kConScale: {
      SoraFrameworkOptions so = controller == Controller::kConScale
                                    ? make_conscale_options()
                                    : SoraFrameworkOptions{};
      so.sla = cfg.sla;
      so.control_period = sec(5);
      auto& fw = exp.add_sora(so);
      fw.manage(ResourceKnob::entry(exp.app().service("mid")));
      break;
    }
    case Controller::kFirm: {
      FirmOptions fo;
      fo.slo_latency = cfg.sla;
      auto& firm = exp.add_firm(fo);
      firm.manage(exp.app().service("mid"));
      break;
    }
    case Controller::kHpa: {
      auto& hpa = exp.add_hpa();
      hpa.manage(exp.app().service("mid"));
      break;
    }
  }

  const FaultPlan plan = scenario_plan(scenario);
  if (!plan.empty()) exp.enable_faults(plan);
  exp.closed_loop(30, msec(50));
  exp.run();

  RunOutput out;
  out.summary = exp.summary();
  for (const auto& rec : exp.decision_log().records()) {
    if (rec.action == "crash" || rec.action == "restart") ++out.crash_records;
    if (rec.action == "cpu_step") ++out.cpu_records;
    if (rec.action == "stalled") ++out.stalled_records;
    if (rec.action == "fault_start" || rec.action == "fault_end") {
      ++out.fault_window_records;
    }
    if (rec.action == "relocalize") ++out.relocalize_records;
  }
  return out;
}

void expect_survived(const RunOutput& out) {
  EXPECT_GT(out.summary.injected, 0u);
  EXPECT_GT(out.summary.completed, 0u);
  EXPECT_GT(out.summary.throughput_rps, 0.0);
  EXPECT_TRUE(std::isfinite(out.summary.p99_ms));
}

TEST(FaultRobustness, SoraSurvivesCrashWithEvidence) {
  const RunOutput out = run_scenario(Controller::kSora, Scenario::kCrash);
  expect_survived(out);
  EXPECT_EQ(out.crash_records, 2u);  // crash + restart
  EXPECT_EQ(out.relocalize_records, 2u);
}

TEST(FaultRobustness, SoraSurvivesCpuChurnWithEvidence) {
  const RunOutput out = run_scenario(Controller::kSora, Scenario::kCpuChurn);
  expect_survived(out);
  EXPECT_EQ(out.cpu_records, 2u);
}

TEST(FaultRobustness, SoraSurvivesTelemetryDropoutWithEvidence) {
  const RunOutput out =
      run_scenario(Controller::kSora, Scenario::kTelemetryDropout);
  expect_survived(out);
  EXPECT_EQ(out.fault_window_records, 4u);  // 2 windows x start/end
}

TEST(FaultRobustness, SoraSurvivesControlStallWithEvidence) {
  const RunOutput out = run_scenario(Controller::kSora, Scenario::kStall);
  expect_survived(out);
  // 25 s stall / 5 s control period: several skipped-but-recorded rounds.
  EXPECT_GE(out.stalled_records, 4u);
}

// The bounded-degradation claim: faults hurt, but Sora's tail must stay
// within a small factor of the fault-free run (the system recovers instead
// of collapsing).
TEST(FaultRobustness, SoraP99StaysBoundedUnderEveryFault) {
  const RunOutput base = run_scenario(Controller::kSora, Scenario::kNone);
  ASSERT_GT(base.summary.p99_ms, 0.0);
  for (Scenario s : {Scenario::kCrash, Scenario::kCpuChurn,
                     Scenario::kTelemetryDropout, Scenario::kStall}) {
    const RunOutput out = run_scenario(Controller::kSora, s);
    expect_survived(out);
    EXPECT_LE(out.summary.p99_ms, base.summary.p99_ms * 5.0)
        << "scenario " << static_cast<int>(s);
    // Goodput must not collapse either: at least half the fault-free rate.
    EXPECT_GE(out.summary.goodput_rps, base.summary.goodput_rps * 0.5)
        << "scenario " << static_cast<int>(s);
  }
}

TEST(FaultRobustness, ConScaleBaselineSurvivesCrashAndStall) {
  expect_survived(run_scenario(Controller::kConScale, Scenario::kCrash));
  expect_survived(run_scenario(Controller::kConScale, Scenario::kStall));
}

TEST(FaultRobustness, FirmBaselineSurvivesEveryFault) {
  for (Scenario s : {Scenario::kCrash, Scenario::kCpuChurn,
                     Scenario::kTelemetryDropout, Scenario::kStall}) {
    expect_survived(run_scenario(Controller::kFirm, s));
  }
}

TEST(FaultRobustness, HpaBaselineSurvivesEveryFault) {
  for (Scenario s : {Scenario::kCrash, Scenario::kCpuChurn,
                     Scenario::kTelemetryDropout, Scenario::kStall}) {
    expect_survived(run_scenario(Controller::kHpa, s));
  }
}

TEST(FaultRobustness, UncontrolledRunSurvivesCrash) {
  // Even with no control plane at all the fault machinery must be safe.
  expect_survived(run_scenario(Controller::kNone, Scenario::kCrash));
}

}  // namespace
}  // namespace sora
