#include "obs/decision_log.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sora::obs {
namespace {

ControlDecisionRecord soft_record() {
  ControlDecisionRecord r;
  r.at = sec(15);
  r.controller = "sora";
  r.round = 1;
  r.target = "cart/threads";
  r.critical_service = "cart";
  r.critical_utilization = 0.93;
  r.critical_pcc = 0.87;
  r.traces_analyzed = 420;
  r.deadline_valid = true;
  r.rt_threshold = msec(180);
  r.mean_upstream_pt = msec(220);
  r.estimate_valid = true;
  r.scatter_points = 600;
  r.recommended = 12;
  r.knee_concurrency = 9.6;
  r.knee_value = 410.0;
  r.degree_used = 3;
  r.r_squared = 0.97;
  r.action = "applied";
  r.reason = "estimate applied";
  r.old_size = 5;
  r.new_size = 12;
  return r;
}

ControlDecisionRecord hardware_record() {
  ControlDecisionRecord r;
  r.at = sec(30);
  r.controller = "firm";
  r.round = 2;
  r.target = "cart";
  r.observed_p99_ms = 612.0;
  r.observed_utilization = 0.95;
  r.action = "scale_up";
  r.reason = "SLO violation or utilization above high watermark";
  r.old_cores = 2.0;
  r.new_cores = 2.5;
  r.old_replicas = r.new_replicas = 1;
  return r;
}

TEST(DecisionLog, QueriesByControllerAndAction) {
  DecisionLog log;
  log.append(soft_record());
  log.append(hardware_record());
  ControlDecisionRecord hold = hardware_record();
  hold.action = "hold";
  hold.reason = "latency and utilization within bounds";
  log.append(hold);

  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.by_controller("sora").size(), 1u);
  EXPECT_EQ(log.by_controller("firm").size(), 2u);
  EXPECT_EQ(log.by_controller("hpa").size(), 0u);
  EXPECT_EQ(log.count_action("applied"), 1u);
  EXPECT_EQ(log.count_action("hold"), 1u);
  ASSERT_EQ(log.by_action("scale_up").size(), 1u);
  EXPECT_EQ(log.by_action("scale_up")[0]->target, "cart");
}

TEST(DecisionLog, SoftRecordJsonCarriesReasoningChain) {
  const std::string json = soft_record().to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"controller\":\"sora\""), std::string::npos);
  EXPECT_NE(json.find("\"target\":\"cart/threads\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_service\":\"cart\""), std::string::npos);
  EXPECT_NE(json.find("\"rt_threshold_ms\":180"), std::string::npos);
  EXPECT_NE(json.find("\"knee_concurrency\":9.6"), std::string::npos);
  EXPECT_NE(json.find("\"action\":\"applied\""), std::string::npos);
  EXPECT_NE(json.find("\"old_size\":5"), std::string::npos);
  EXPECT_NE(json.find("\"new_size\":12"), std::string::npos);
  // Hardware-only fields are absent from a soft record.
  EXPECT_EQ(json.find("old_cores"), std::string::npos);
  EXPECT_EQ(json.find("observed_p99_ms"), std::string::npos);
}

TEST(DecisionLog, InvalidEstimateEmitsFailureInsteadOfModelFields) {
  ControlDecisionRecord r = soft_record();
  r.estimate_valid = false;
  r.estimate_failure = "insufficient samples";
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"estimate_valid\":false"), std::string::npos);
  EXPECT_NE(json.find("\"estimate_failure\":\"insufficient samples\""),
            std::string::npos);
  EXPECT_EQ(json.find("knee_concurrency"), std::string::npos);
  EXPECT_EQ(json.find("r_squared"), std::string::npos);
}

TEST(DecisionLog, HardwareRecordJsonCarriesSloEvidence) {
  const std::string json = hardware_record().to_json();
  EXPECT_NE(json.find("\"observed_p99_ms\":612"), std::string::npos);
  EXPECT_NE(json.find("\"observed_utilization\":0.95"), std::string::npos);
  EXPECT_NE(json.find("\"old_cores\":2"), std::string::npos);
  EXPECT_NE(json.find("\"new_cores\":2.5"), std::string::npos);
  // Soft-only fields stay out of hardware records.
  EXPECT_EQ(json.find("scatter_points\":0,\"recommended"), std::string::npos);
  EXPECT_EQ(json.find("old_size"), std::string::npos);
}

TEST(DecisionLog, WriteJsonlIsOneRecordPerLineInOrder) {
  DecisionLog log;
  log.append(soft_record());
  log.append(hardware_record());

  std::ostringstream os;
  log.write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find(lines == 0 ? "\"controller\":\"sora\""
                                   : "\"controller\":\"firm\""),
              std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(DecisionLog, JsonEscapesSpecialCharacters) {
  ControlDecisionRecord r;
  r.controller = "sora";
  r.target = "cart/\"quoted\"\npool";
  r.action = "none";
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // stays one line
}

}  // namespace
}  // namespace sora::obs
