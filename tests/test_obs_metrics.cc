#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.h"

namespace sora::obs {
namespace {

TEST(MetricsRegistry, CounterAccumulatesAndNeverDecreases) {
  MetricsRegistry reg;
  Counter& c = reg.counter("requests");
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  c.add(-10.0);  // negative deltas are ignored
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(MetricsRegistry, SetTotalAdoptsMonotonicSourceAndIgnoresRegressions) {
  MetricsRegistry reg;
  Counter& c = reg.counter("pool.waits");
  c.set_total(40.0);
  EXPECT_DOUBLE_EQ(c.value(), 40.0);
  c.set_total(55.0);
  EXPECT_DOUBLE_EQ(c.value(), 55.0);
  c.set_total(10.0);  // source reset: must not go backwards
  EXPECT_DOUBLE_EQ(c.value(), 55.0);
}

TEST(MetricsRegistry, GaugeSetsAndAdds) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("queue_depth");
  g.set(7.0);
  g.add(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(MetricsRegistry, HistogramSummaries) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("latency_us");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i) * 100.0);
  h.observe(-5.0);  // clamped to 0, still counted
  EXPECT_EQ(h.count(), 101u);
  EXPECT_GT(h.mean(), 0.0);
  EXPECT_LE(h.percentile(50.0), h.percentile(99.0));
  EXPECT_GE(h.max(), 10000.0);
}

TEST(MetricsRegistry, HistogramPercentileSentinelWhenEmpty) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("rt_us");
  EXPECT_TRUE(is_no_sample(h.percentile(50.0)));
  EXPECT_TRUE(is_no_sample(h.percentile(99.0)));
  h.observe(1234.0);
  EXPECT_FALSE(is_no_sample(h.percentile(99.0)));
}

TEST(MetricsRegistry, HandlesAreStableAndSharedPerSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x", {{"svc", "cart"}});
  // Force storage growth, then re-lookup.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler" + std::to_string(i));
  }
  Counter& b = reg.counter("x", {{"svc", "cart"}});
  EXPECT_EQ(&a, &b);
  a.add(1.0);
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
}

TEST(MetricsRegistry, LabelOrderDoesNotCreateDuplicateSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x", {{"svc", "cart"}});
  Counter& b = reg.counter("x", {{"svc", "catalogue"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, WindowDeltasAreNonDestructive) {
  MetricsRegistry reg;
  Counter& c = reg.counter("events");
  c.add(10.0);
  reg.begin_window();
  c.add(5.0);

  const MetricsSnapshot snap = reg.snapshot();
  const SeriesSnapshot* s = snap.find("events");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 15.0);         // total is untouched
  EXPECT_DOUBLE_EQ(s->window_delta, 5.0);   // delta since the window began

  // Series created after begin_window() have a zero baseline.
  reg.counter("late").add(3.0);
  const MetricsSnapshot snap2 = reg.snapshot();
  const SeriesSnapshot* late = snap2.find("late");
  ASSERT_NE(late, nullptr);
  EXPECT_DOUBLE_EQ(late->window_delta, 3.0);
}

TEST(MetricsRegistry, SnapshotStampedBySimClock) {
  SimTime now = sec(42);
  MetricsRegistry reg([&now] { return now; });
  reg.begin_window();
  now = sec(57);
  reg.gauge("g").set(1.0);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.at, sec(57));
  EXPECT_EQ(snap.window_start, sec(42));
  EXPECT_DOUBLE_EQ(snap.window_sec(), 15.0);
}

TEST(MetricsRegistry, FindRequiresExactLabels) {
  MetricsRegistry reg;
  reg.gauge("g", {{"svc", "cart"}}).set(1.0);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_NE(snap.find("g", {{"svc", "cart"}}), nullptr);
  EXPECT_EQ(snap.find("g"), nullptr);
  EXPECT_EQ(snap.find("g", {{"svc", "other"}}), nullptr);
}

TEST(MetricsRegistry, WriteJsonlEmitsOneObjectPerSeries) {
  MetricsRegistry reg;
  reg.counter("c", {{"svc", "cart"}}).add(2.0);
  reg.gauge("g").set(-1.5);
  reg.histogram("h").observe(100.0);

  std::ostringstream os;
  MetricsRegistry::write_jsonl(reg.snapshot(), os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"name\":"), std::string::npos);
    EXPECT_NE(line.find("\"kind\":"), std::string::npos);
  }
  EXPECT_EQ(lines, 3u);
}

}  // namespace
}  // namespace sora::obs
