// Tests for ResourceKnob (entry and edge soft-resource handles).
#include "metrics/knob.h"

#include <gtest/gtest.h>

#include "svc/application.h"
#include "test_util.h"
#include "trace/tracer.h"

namespace sora {
namespace {

struct Fixture {
  Simulator sim;
  Tracer tracer;
  Application app;
  explicit Fixture(ApplicationConfig cfg)
      : app(sim, tracer, std::move(cfg), 1) {}
};

TEST(ResourceKnob, InvalidByDefault) {
  ResourceKnob knob;
  EXPECT_FALSE(knob.valid());
  EXPECT_EQ(knob.label(), "<invalid>");
}

TEST(ResourceKnob, EntryKnobBasics) {
  Fixture f(testutil::single_service(2.0, 8));
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  EXPECT_TRUE(knob.valid());
  EXPECT_FALSE(knob.is_edge());
  EXPECT_EQ(knob.label(), "svc/threads");
  EXPECT_EQ(knob.current_size(), 8);
  EXPECT_EQ(knob.total_capacity(), 8);
  EXPECT_EQ(knob.completion_service(), f.app.service("svc")->id());
  knob.apply(12);
  EXPECT_EQ(knob.current_size(), 12);
  EXPECT_EQ(f.app.service("svc")->entry_pool_size(), 12);
}

TEST(ResourceKnob, EdgeKnobBasics) {
  Fixture f(testutil::edge_pool_app(5));
  ResourceKnob knob = ResourceKnob::edge(f.app.service("caller"), "db");
  EXPECT_TRUE(knob.is_edge());
  EXPECT_EQ(knob.label(), "caller->db");
  EXPECT_EQ(knob.current_size(), 5);
  EXPECT_EQ(knob.completion_service(), f.app.service("db")->id());
  knob.apply(9);
  EXPECT_EQ(f.app.service("caller")->edge_pool_size("db"), 9);
}

TEST(ResourceKnob, CapacityAggregatesReplicas) {
  Fixture f(testutil::single_service(2.0, 8));
  Service* svc = f.app.service("svc");
  svc->scale_replicas(3);
  ResourceKnob knob = ResourceKnob::entry(svc);
  EXPECT_EQ(knob.total_capacity(), 24);
  EXPECT_EQ(knob.current_size(), 8);  // per replica
}

TEST(ResourceKnob, InUseTracksActiveRequests) {
  Fixture f(testutil::single_service(2.0, 8, 1000, 0, 0.0));
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  EXPECT_EQ(knob.total_in_use(), 0);
  f.app.inject(0, [](SimTime) {});
  EXPECT_EQ(knob.total_in_use(), 1);
  f.sim.run_all();
  EXPECT_EQ(knob.total_in_use(), 0);
  EXPECT_GT(knob.usage_integral(), 0.0);
}

TEST(ResourceKnob, Equality) {
  Fixture f(testutil::edge_pool_app(5));
  ResourceKnob a = ResourceKnob::edge(f.app.service("caller"), "db");
  ResourceKnob b = ResourceKnob::edge(f.app.service("caller"), "db");
  ResourceKnob c = ResourceKnob::entry(f.app.service("caller"));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace sora
