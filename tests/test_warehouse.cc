// Tests for the trace warehouse and the aggregate call-graph store.
#include "trace/warehouse.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sora {
namespace {

Trace trace_ending_at(SimTime end, std::uint64_t id) {
  return testutil::make_trace({{-1, 0, end - 100, end, 0}}, id);
}

TEST(TraceWarehouse, StoresAndCounts) {
  TraceWarehouse wh(10);
  wh.store(trace_ending_at(100, 1));
  wh.store(trace_ending_at(200, 2));
  wh.store(trace_ending_at(300, 3));
  EXPECT_EQ(wh.size(), 3u);
  EXPECT_EQ(wh.count_in_window(0, 1000), 3u);
  EXPECT_EQ(wh.count_in_window(150, 250), 1u);
  EXPECT_EQ(wh.count_in_window(301, 400), 0u);
  EXPECT_EQ(wh.total_stored(), 3u);
}

TEST(TraceWarehouse, WindowBoundariesInclusive) {
  TraceWarehouse wh(10);
  wh.store(trace_ending_at(100, 1));
  EXPECT_EQ(wh.count_in_window(100, 100), 1u);
}

TEST(TraceWarehouse, EvictsOldest) {
  TraceWarehouse wh(2);
  wh.store(trace_ending_at(100, 1));
  wh.store(trace_ending_at(200, 2));
  wh.store(trace_ending_at(300, 3));
  EXPECT_EQ(wh.size(), 2u);
  EXPECT_EQ(wh.total_evicted(), 1u);
  EXPECT_EQ(wh.count_in_window(0, 150), 0u);  // oldest gone
}

TEST(TraceWarehouse, VisitsOldestFirst) {
  TraceWarehouse wh(10);
  wh.store(trace_ending_at(300, 3));
  // (stores are completion-ordered by construction in real use)
  std::vector<SimTime> ends;
  wh.store(trace_ending_at(400, 4));
  wh.for_each_in_window(0, 1000,
                        [&](const Trace& t) { ends.push_back(t.end); });
  EXPECT_EQ(ends, (std::vector<SimTime>{300, 400}));
}

TEST(TraceWarehouse, AttachToTracer) {
  Tracer tracer;
  TraceWarehouse wh(10);
  wh.attach(tracer);
  const TraceId tid = tracer.begin_trace(0, 0);
  const SpanId root =
      tracer.start_span(tid, SpanId{}, ServiceId(0), InstanceId(0), 0, 0);
  tracer.finish_span(tid, root, 50);
  EXPECT_EQ(wh.size(), 1u);
}

TEST(CallGraphStore, CountsEdgesAndRoots) {
  CallGraphStore store;
  const Trace t = testutil::make_trace({
      {-1, 0, 0, 100, 80},
      {0, 1, 10, 90, 60},
      {1, 2, 20, 80, 0},
      {0, 3, 10, 30, 0},
  });
  store.ingest(t);
  store.ingest(t);
  EXPECT_EQ(store.root_count(ServiceId(0)), 2u);
  EXPECT_EQ(store.edge_count(ServiceId(0), ServiceId(1)), 2u);
  EXPECT_EQ(store.edge_count(ServiceId(1), ServiceId(2)), 2u);
  EXPECT_EQ(store.edge_count(ServiceId(0), ServiceId(3)), 2u);
  EXPECT_EQ(store.edge_count(ServiceId(2), ServiceId(0)), 0u);
  EXPECT_EQ(store.num_edges(), 3u);
}

}  // namespace
}  // namespace sora
