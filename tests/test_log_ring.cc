// Tests for the in-process log ring behind /logz: retention order,
// wraparound, truncation, and the level filter sitting in front of it.
#include "common/log.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace sora {
namespace {

/// Stateless discard sink: safe even with several writer threads logging
/// concurrently (an ostringstream here would be a data race).
class NullBuf : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override { return n; }
};

/// Mutes std::cerr (the ring still retains every line) and restores the
/// level + ring state afterwards so other suites see a clean slate.
class RingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    old_level_ = log_level();
    old_buf_ = std::cerr.rdbuf(&sink_);
    set_log_level(LogLevel::kInfo);
    log_ring_clear();
  }
  void TearDown() override {
    std::cerr.rdbuf(old_buf_);
    set_log_level(old_level_);
    log_ring_clear();
  }

 private:
  NullBuf sink_;
  LogLevel old_level_ = LogLevel::kWarn;
  std::streambuf* old_buf_ = nullptr;
};

TEST_F(RingFixture, CapacityIsAPowerOfTwo) {
  const std::size_t cap = log_ring_capacity();
  ASSERT_GT(cap, 0u);
  EXPECT_EQ(cap & (cap - 1), 0u);
}

TEST_F(RingFixture, RetainsLinesOldestFirst) {
  SORA_INFO << "ring first";
  SORA_WARN << "ring second";
  SORA_ERROR << "ring third";
  const auto lines = log_ring_recent(10);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "[INFO] ring first");
  EXPECT_EQ(lines[1], "[WARN] ring second");
  EXPECT_EQ(lines[2], "[ERROR] ring third");
  EXPECT_EQ(log_ring_total(), 3u);
}

TEST_F(RingFixture, MaxLinesReturnsTheTail) {
  for (int i = 0; i < 5; ++i) SORA_INFO << "tail " << i;
  const auto lines = log_ring_recent(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[INFO] tail 3");
  EXPECT_EQ(lines[1], "[INFO] tail 4");
}

TEST_F(RingFixture, LevelFilterAppliesBeforeRetention) {
  SORA_DEBUG << "below threshold";
  SORA_INFO << "kept";
  const auto lines = log_ring_recent(10);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[INFO] kept");
}

// The load-bearing wraparound case: after logging well past capacity, the
// ring holds exactly the newest `capacity` lines, still oldest-first, with
// no gaps, duplicates, or stale pre-wrap lines.
TEST_F(RingFixture, WraparoundKeepsExactlyTheNewestCapacityLines) {
  const std::size_t cap = log_ring_capacity();
  const std::size_t total = cap + cap / 2 + 7;  // wraps 1.5x, off-aligned
  for (std::size_t i = 0; i < total; ++i) SORA_INFO << "wrap " << i;
  EXPECT_EQ(log_ring_total(), total);

  const auto lines = log_ring_recent(cap);
  ASSERT_EQ(lines.size(), cap);
  for (std::size_t i = 0; i < cap; ++i) {
    const std::size_t expect = total - cap + i;
    EXPECT_EQ(lines[i], "[INFO] wrap " + std::to_string(expect))
        << "slot " << i;
  }
  // Asking for more than capacity still yields at most capacity lines.
  EXPECT_EQ(log_ring_recent(cap * 4).size(), cap);
}

TEST_F(RingFixture, OverlongLinesAreHardTruncated) {
  const std::string payload(1000, 'x');
  SORA_INFO << payload;
  const auto lines = log_ring_recent(1);
  ASSERT_EQ(lines.size(), 1u);
  // Slots are fixed-size; the retained line is a prefix of the full one.
  EXPECT_LT(lines[0].size(), payload.size());
  EXPECT_EQ(lines[0].rfind("[INFO] xxx", 0), 0u);
  EXPECT_EQ(lines[0].find_first_not_of('x', 7), std::string::npos);
}

TEST_F(RingFixture, ClearForgetsEverything) {
  SORA_INFO << "gone after clear";
  log_ring_clear();
  EXPECT_TRUE(log_ring_recent(10).empty());
  EXPECT_EQ(log_ring_total(), 0u);
}

// Concurrent writers on several threads: the reader must never crash, never
// return torn lines, and every returned line must be one that some writer
// actually emitted in full.
TEST_F(RingFixture, ConcurrentWritersProduceOnlyIntactLines) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        SORA_INFO << "w" << t << " line " << i << " payload-payload-payload";
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    for (const std::string& line : log_ring_recent(64)) {
      EXPECT_EQ(line.rfind("[INFO] w", 0), 0u) << "torn line: " << line;
      EXPECT_NE(line.find("payload-payload-payload"), std::string::npos)
          << "torn line: " << line;
    }
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(log_ring_total(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace sora
