// Differential span alignment: exactness on identical twins, attribution
// of injected slowdowns, and re-synchronization under span drop/insert —
// the structural drift the causal profiler must tolerate when a
// counterfactual run sheds or aborts requests the baseline completed.
#include "trace/align.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "trace/warehouse.h"

namespace sora {
namespace {

using testutil::SyntheticSpan;

// front(0) -> mid(1) -> leaf(2), root 0..1000.
Trace chain_trace(std::uint64_t id, SimTime leaf_extra = 0,
                  SimTime shift = 0) {
  return testutil::make_trace(
      {
          {-1, 0, shift + 0, shift + 1000 + leaf_extra, 800 + leaf_extra},
          {0, 1, shift + 100, shift + 900 + leaf_extra, 600 + leaf_extra},
          {1, 2, shift + 200, shift + 800 + leaf_extra, 0},
      },
      id);
}

TEST(AlignSpans, IdenticalTwinsAlignCompletely) {
  const Trace base = chain_trace(1);
  const Trace cf = chain_trace(1);
  std::vector<EdgeLatencyDelta> edges;
  const TraceAlignment a = align_spans(base, cf, edges);
  EXPECT_EQ(a.spans_aligned, 3u);
  EXPECT_EQ(a.base_unmatched, 0u);
  EXPECT_EQ(a.cf_unmatched, 0u);
  ASSERT_EQ(edges.size(), 3u);
  for (const EdgeLatencyDelta& e : edges) {
    EXPECT_EQ(e.aligned, 1u);
    EXPECT_EQ(e.base_duration, e.cf_duration);
    EXPECT_DOUBLE_EQ(e.mean_delta_ms(), 0.0);
  }
}

TEST(AlignSpans, SlowdownAttributedToTheRightEdge) {
  const Trace base = chain_trace(1);
  const Trace cf = chain_trace(1, /*leaf_extra=*/400);
  std::vector<EdgeLatencyDelta> edges;
  align_spans(base, cf, edges);
  // Every span got 400 longer end-to-end, but only leaf's *processing*
  // grew; front/mid absorbed it as downstream wait.
  ASSERT_EQ(edges.size(), 3u);
  for (const EdgeLatencyDelta& e : edges) {
    EXPECT_EQ(e.cf_duration - e.base_duration, 400);
    if (e.service == ServiceId(2)) {
      EXPECT_EQ(e.cf_processing - e.base_processing, 400);
    } else {
      EXPECT_EQ(e.cf_processing, e.base_processing);
    }
  }
  // The root edge's caller is the client (invalid service id).
  bool saw_client_edge = false;
  for (const EdgeLatencyDelta& e : edges) {
    if (!e.parent.valid()) {
      saw_client_edge = true;
      EXPECT_EQ(e.service, ServiceId(0));
    }
  }
  EXPECT_TRUE(saw_client_edge);
}

TEST(AlignSpans, TimeShiftedTwinHasZeroDeltas) {
  // A pure time shift (the counterfactual run served everything later but
  // no slower) must not register as an edge latency change.
  const Trace base = chain_trace(1);
  const Trace cf = chain_trace(1, /*leaf_extra=*/0, /*shift=*/5000);
  std::vector<EdgeLatencyDelta> edges;
  const TraceAlignment a = align_spans(base, cf, edges);
  EXPECT_EQ(a.spans_aligned, 3u);
  for (const EdgeLatencyDelta& e : edges) {
    EXPECT_DOUBLE_EQ(e.mean_delta_ms(), 0.0);
    EXPECT_DOUBLE_EQ(e.mean_processing_delta_ms(), 0.0);
  }
}

TEST(AlignSpans, DroppedSpanResynchronizes) {
  const Trace base = chain_trace(1);
  // Counterfactual lost the mid span (service 1): front -> leaf remain.
  const Trace cf = testutil::make_trace(
      {
          {-1, 0, 0, 1000, 800},
          {0, 2, 200, 800, 0},
      },
      1);
  std::vector<EdgeLatencyDelta> edges;
  const TraceAlignment a = align_spans(base, cf, edges);
  EXPECT_EQ(a.spans_aligned, 2u);
  EXPECT_EQ(a.base_unmatched, 1u);  // the dropped mid span
  EXPECT_EQ(a.cf_unmatched, 0u);
  // leaf still aligned exactly despite the gap before it.
  for (const EdgeLatencyDelta& e : edges) {
    if (e.service == ServiceId(2)) EXPECT_EQ(e.aligned, 1u);
  }
}

TEST(AlignSpans, InsertedSpanCountedNotMisaligned) {
  const Trace base = chain_trace(1);
  // Counterfactual visited an extra service (9) between front and mid —
  // e.g. a retry path the baseline never took.
  const Trace cf = testutil::make_trace(
      {
          {-1, 0, 0, 1000, 800},
          {0, 9, 50, 80, 0},
          {0, 1, 100, 900, 600},
          {2, 2, 200, 800, 0},
      },
      1);
  std::vector<EdgeLatencyDelta> edges;
  const TraceAlignment a = align_spans(base, cf, edges);
  EXPECT_EQ(a.spans_aligned, 3u);
  EXPECT_EQ(a.base_unmatched, 0u);
  EXPECT_EQ(a.cf_unmatched, 1u);  // the inserted service-9 span
}

TEST(AlignSpans, SingleSpanTraces) {
  const Trace base = testutil::make_trace({{-1, 0, 0, 1000, 0}}, 1);
  const Trace cf = testutil::make_trace({{-1, 0, 0, 700, 0}}, 1);
  std::vector<EdgeLatencyDelta> edges;
  const TraceAlignment a = align_spans(base, cf, edges);
  EXPECT_EQ(a.spans_aligned, 1u);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].cf_duration - edges[0].base_duration, -300);
  EXPECT_LT(edges[0].mean_delta_ms(), 0.0);
}

TEST(DiffWarehouses, MatchesTwinsByTraceIdWithinWindow) {
  TraceWarehouse base(64), cf(64);
  base.store(chain_trace(1));                      // twin in cf
  base.store(chain_trace(2, /*leaf_extra=*/200));  // twin in cf, differs
  {
    // Starts outside [0, 2000]: must be ignored entirely.
    base.store(chain_trace(3, 0, /*shift=*/10000));
  }
  base.store(chain_trace(4));  // no cf twin
  cf.store(chain_trace(1));
  cf.store(chain_trace(2));
  cf.store(chain_trace(5));  // cf-only

  const DiffSummary d = diff_warehouses(base, cf, 0, 2000);
  EXPECT_EQ(d.traces_aligned, 2u);
  EXPECT_EQ(d.base_only, 1u);  // trace 4
  EXPECT_EQ(d.cf_only, 1u);    // trace 5
  EXPECT_EQ(d.spans_aligned, 6u);
  EXPECT_EQ(d.spans_unmatched, 0u);
  // Trace 2's baseline ran 200 *longer* than its counterfactual twin, so
  // the aggregate e2e delta (cf - base) is negative.
  EXPECT_LT(d.e2e_delta_ms, 0.0);
}

TEST(DiffWarehouses, EdgesSortedByAbsoluteDelta) {
  TraceWarehouse base(64), cf(64);
  base.store(chain_trace(1));
  cf.store(chain_trace(1, /*leaf_extra=*/300));
  const DiffSummary d = diff_warehouses(base, cf, 0, 2000);
  ASSERT_GE(d.edges.size(), 2u);
  for (std::size_t i = 1; i < d.edges.size(); ++i) {
    EXPECT_GE(std::abs(d.edges[i - 1].total_delta_ms()),
              std::abs(d.edges[i].total_delta_ms()));
  }
}

TEST(DiffWarehouses, EmptyWindowIsEmptySummary) {
  TraceWarehouse base(64), cf(64);
  base.store(chain_trace(1));
  cf.store(chain_trace(1));
  const DiffSummary d = diff_warehouses(base, cf, 50000, 60000);
  EXPECT_EQ(d.traces_aligned, 0u);
  EXPECT_EQ(d.base_only, 0u);
  EXPECT_EQ(d.cf_only, 0u);
  EXPECT_TRUE(d.edges.empty());
  EXPECT_DOUBLE_EQ(d.e2e_delta_ms, 0.0);
}

}  // namespace
}  // namespace sora
