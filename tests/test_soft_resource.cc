// Tests for soft-resource pools (the paper's threads/connections).
#include "svc/soft_resource.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace sora {
namespace {

TEST(SoftResourcePool, GrantsImmediatelyWhenFree) {
  Simulator sim;
  SoftResourcePool pool(sim, PoolKind::kServerThreads, "t", 2);
  int granted = 0;
  pool.acquire([&] { ++granted; });
  pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(pool.in_use(), 2);
  EXPECT_EQ(pool.waiting(), 0u);
}

TEST(SoftResourcePool, QueuesWhenFull) {
  Simulator sim;
  SoftResourcePool pool(sim, PoolKind::kServerThreads, "t", 1);
  int granted = 0;
  pool.acquire([&] { ++granted; });
  pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 1);
  EXPECT_EQ(pool.waiting(), 1u);
  pool.release();
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(pool.in_use(), 1);
  EXPECT_EQ(pool.waiting(), 0u);
}

TEST(SoftResourcePool, FifoOrder) {
  Simulator sim;
  SoftResourcePool pool(sim, PoolKind::kDbConnections, "db", 1);
  std::vector<int> order;
  pool.acquire([&] {});
  for (int i = 0; i < 5; ++i) {
    pool.acquire([&order, i] { order.push_back(i); });
  }
  for (int i = 0; i < 5; ++i) pool.release();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SoftResourcePool, ResizeGrowAdmitsWaiters) {
  Simulator sim;
  SoftResourcePool pool(sim, PoolKind::kServerThreads, "t", 1);
  int granted = 0;
  for (int i = 0; i < 4; ++i) pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 1);
  pool.resize(3);
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(pool.in_use(), 3);
  EXPECT_EQ(pool.capacity(), 3);
  EXPECT_EQ(pool.waiting(), 1u);
}

TEST(SoftResourcePool, ResizeShrinkIsLazy) {
  Simulator sim;
  SoftResourcePool pool(sim, PoolKind::kServerThreads, "t", 3);
  int granted = 0;
  for (int i = 0; i < 3; ++i) pool.acquire([&] { ++granted; });
  pool.resize(1);
  // Slots in use are not revoked.
  EXPECT_EQ(pool.in_use(), 3);
  pool.acquire([&] { ++granted; });
  EXPECT_EQ(granted, 3);  // queued: over capacity
  pool.release();
  EXPECT_EQ(pool.in_use(), 2);
  // Still above the new capacity: no admission.
  EXPECT_EQ(granted, 3);
  pool.release();
  pool.release();
  // Now in_use 0 < 1: waiter admitted on the first release below capacity.
  EXPECT_EQ(granted, 4);
  EXPECT_EQ(pool.in_use(), 1);
}

TEST(SoftResourcePool, WaitStatistics) {
  Simulator sim;
  SoftResourcePool pool(sim, PoolKind::kClientConnections, "c", 1);
  pool.acquire([] {});
  sim.schedule_at(100, [&] { pool.acquire([] {}); });
  sim.run_all();
  EXPECT_EQ(pool.total_waits(), 1u);
  sim.schedule_at(250, [&] { pool.release(); });
  sim.run_all();
  EXPECT_EQ(pool.total_wait_time(), 150);
  EXPECT_EQ(pool.total_acquires(), 2u);
}

TEST(SoftResourcePool, UsageIntegralTracksTime) {
  Simulator sim;
  SoftResourcePool pool(sim, PoolKind::kServerThreads, "t", 4);
  pool.acquire([] {});
  pool.acquire([] {});
  sim.schedule_at(1000, [&] { pool.release(); });
  sim.run_all();
  sim.schedule_at(2000, [] {});
  sim.run_all();
  // 2 slots x 1000us + 1 slot x 1000us = 3000 slot-usec.
  EXPECT_DOUBLE_EQ(pool.usage_integral(), 3000.0);
}

TEST(SoftResourcePool, GrantCanReenterPool) {
  // A grant callback that releases and re-acquires must not corrupt state.
  Simulator sim;
  SoftResourcePool pool(sim, PoolKind::kServerThreads, "t", 1);
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      pool.release();
      pool.acquire(chain);
    }
  };
  pool.acquire(chain);
  EXPECT_EQ(depth, 5);
}

TEST(SoftResourcePool, Kinds) {
  EXPECT_STREQ(to_string(PoolKind::kServerThreads), "server-threads");
  EXPECT_STREQ(to_string(PoolKind::kDbConnections), "db-connections");
  EXPECT_STREQ(to_string(PoolKind::kClientConnections), "client-connections");
}

// Property: for any interleaving pattern, in_use never exceeds capacity and
// waiters are admitted exactly once.
class PoolProperty : public ::testing::TestWithParam<int> {};

TEST_P(PoolProperty, InvariantsUnderRandomOps) {
  const int capacity = GetParam();
  Simulator sim;
  SoftResourcePool pool(sim, PoolKind::kServerThreads, "t", capacity);
  int grants = 0;
  int releases_pending = 0;
  unsigned v = static_cast<unsigned>(capacity) * 2654435761u + 17;
  int acquires = 0;
  for (int step = 0; step < 500; ++step) {
    v = v * 1664525u + 1013904223u;
    if (v % 3 != 0 || releases_pending == 0) {
      ++acquires;
      pool.acquire([&] {
        ++grants;
        ++releases_pending;
      });
    } else {
      pool.release();
      --releases_pending;
    }
    ASSERT_LE(pool.in_use(), std::max(capacity, pool.in_use()));
    ASSERT_GE(pool.in_use(), 0);
  }
  // Drain: everything queued is eventually granted.
  while (pool.waiting() > 0 || releases_pending > 0) {
    if (releases_pending == 0) break;
    pool.release();
    --releases_pending;
  }
  EXPECT_EQ(grants, acquires - static_cast<int>(pool.waiting()));
}

INSTANTIATE_TEST_SUITE_P(Capacities, PoolProperty, ::testing::Values(1, 2, 3, 8, 64));

}  // namespace
}  // namespace sora
