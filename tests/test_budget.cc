// Tests for latency-budget attribution: per-hop deadline propagation on the
// critical path, whole-tree span annotation, windowed aggregation, and the
// CSV export.
#include "obs/budget.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"
#include "trace/tracer.h"

namespace sora {
namespace {

using testutil::make_trace;

// front(0..100, pt 20) -> mid(10..90, pt 20) -> leaf(20..80, pt 60).
Trace chain_trace(std::uint64_t id = 1) {
  return make_trace(
      {
          {-1, 0, 0, 100, 80},
          {0, 1, 10, 90, 60},
          {1, 2, 20, 80, 0},
      },
      id);
}

TEST(BudgetAttribution, DeadlinePropagatesDownCriticalPath) {
  const Trace t = chain_trace();
  const obs::TraceBudget b = obs::attribute_budget(t, /*sla=*/150);
  EXPECT_EQ(b.response, 100);
  EXPECT_TRUE(b.met_sla);
  ASSERT_EQ(b.hops.size(), 3u);

  // Hop 0 (front): full SLA, consumed PT 20.
  EXPECT_EQ(b.hops[0].service, ServiceId(0));
  EXPECT_EQ(b.hops[0].deadline, 150);
  EXPECT_EQ(b.hops[0].processing, 20);
  EXPECT_EQ(b.hops[0].slack, 150 - 100);  // deadline - span duration

  // Hop 1 (mid): SLA minus front's PT (Eq. 1-3).
  EXPECT_EQ(b.hops[1].deadline, 130);
  EXPECT_EQ(b.hops[1].slack, 130 - 80);

  // Hop 2 (leaf): SLA minus front+mid PT.
  EXPECT_EQ(b.hops[2].deadline, 110);
  EXPECT_EQ(b.hops[2].processing, 60);
  EXPECT_EQ(b.hops[2].slack, 110 - 60);

  const obs::HopBudget* top = b.top_consumer();
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->service, ServiceId(2));  // leaf ate the most budget
}

TEST(BudgetAttribution, MissedSlaGivesNegativeSlack) {
  const Trace t = chain_trace();
  const obs::TraceBudget b = obs::attribute_budget(t, /*sla=*/70);
  EXPECT_FALSE(b.met_sla);
  // front: deadline 70, duration 100 -> blew the budget.
  EXPECT_LT(b.hops[0].slack, 0);
}

TEST(BudgetAnnotation, StampsEverySpan) {
  Trace t = make_trace({
      {-1, 0, 0, 100, 80},
      {0, 1, 10, 40, 0, 0},  // parallel loser: still annotated
      {0, 2, 10, 90, 0, 0},
  });
  EXPECT_FALSE(t.spans[0].budget_annotated());
  obs::annotate_budget(t, /*sla=*/200);
  ASSERT_TRUE(t.spans[0].budget_annotated());
  EXPECT_EQ(t.spans[0].budget_deadline, 200);
  EXPECT_EQ(t.spans[0].budget_slack, 100);
  // Both children inherit SLA minus root PT (20), on path or not.
  EXPECT_EQ(t.spans[1].budget_deadline, 180);
  EXPECT_EQ(t.spans[1].budget_slack, 180 - 30);
  EXPECT_EQ(t.spans[2].budget_deadline, 180);
  EXPECT_EQ(t.spans[2].budget_slack, 180 - 80);
}

TEST(BudgetAnnotation, RunsAsTracerFinalizer) {
  // The finalizer hook annotates the assembled trace before listeners see
  // it, so the warehouse (a listener) stores annotated spans.
  Tracer tracer;
  tracer.set_trace_finalizer(
      [](Trace& t) { obs::annotate_budget(t, /*sla=*/5000); });
  Trace seen;
  tracer.add_trace_listener([&](const Trace& t) { seen = t; });

  const TraceId tid = tracer.begin_trace(0, 0);
  const SpanId root =
      tracer.start_span(tid, SpanId{}, ServiceId(0), InstanceId(0), 0, 0);
  tracer.finish_span(tid, root, 1000);

  ASSERT_EQ(seen.spans.size(), 1u);
  EXPECT_TRUE(seen.spans[0].budget_annotated());
  EXPECT_EQ(seen.spans[0].budget_deadline, 5000);
  EXPECT_EQ(seen.spans[0].budget_slack, 4000);
}

TEST(BudgetAttributor, AggregatesIntoWindows) {
  obs::BudgetAttributor attr(/*sla=*/150, /*window=*/1000);
  // Two traces in window [0, 1000), one in [1000, 2000).
  Trace t1 = chain_trace(1);
  Trace t2 = chain_trace(2);
  Trace t3 = chain_trace(3);
  attr.on_budget(obs::attribute_budget(t1, 150), /*completed_at=*/100);
  attr.on_budget(obs::attribute_budget(t2, 150), /*completed_at=*/900);
  attr.on_budget(obs::attribute_budget(t3, 150), /*completed_at=*/1500);
  attr.flush(2000);

  EXPECT_EQ(attr.traces_attributed(), 3u);
  ASSERT_EQ(attr.timelines().size(), 3u);  // three services
  // Each service sink has two windows: [0,1000) stamped at 1000 with 2
  // traces, [1000,2000) stamped at 2000 with 1.
  for (const obs::TimeSeriesSink& sink : attr.timelines()) {
    ASSERT_EQ(sink.num_rows(), 2u);
    EXPECT_EQ(sink.row_time(0), 1000);
    EXPECT_DOUBLE_EQ(sink.value(0, 0), 2.0);  // traces
    EXPECT_EQ(sink.row_time(1), 2000);
    EXPECT_DOUBLE_EQ(sink.value(1, 0), 1.0);
  }
}

TEST(BudgetAttributor, TopConsumerIsLargestTotalPt) {
  obs::BudgetAttributor attr(/*sla=*/150, /*window=*/1000);
  attr.on_trace(chain_trace());
  attr.flush(1000);
  // Leaf (service-2) consumed PT 60 vs 20/20.
  EXPECT_EQ(attr.top_consumer(), "service-2");
  const auto totals = attr.consumption_ms();
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ(totals[0].first, "service-2");
  EXPECT_DOUBLE_EQ(totals[0].second, 0.06);  // 60us in ms
}

TEST(BudgetAttributor, NamerRendersServices) {
  obs::BudgetAttributor attr(150, 1000, [](ServiceId id) {
    return id == ServiceId(2) ? std::string("leaf") : std::string();
  });
  attr.on_trace(chain_trace());
  attr.flush(1000);
  EXPECT_EQ(attr.top_consumer(), "leaf");  // namer hit
}

TEST(BudgetAttributor, ViolationsCountBlownHops) {
  obs::BudgetAttributor attr(/*sla=*/70, /*window=*/1000);
  attr.on_trace(chain_trace());
  attr.flush(1000);
  // front's slack is negative under a 70us SLA.
  std::ostringstream os;
  attr.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("service,at_us,traces,mean_pt_ms"), std::string::npos);
  EXPECT_NE(csv.find("service-0"), std::string::npos);
  // At least one row reports a violation.
  bool violation = false;
  for (const obs::TimeSeriesSink& sink : attr.timelines()) {
    for (std::size_t r = 0; r < sink.num_rows(); ++r) {
      if (sink.value(r, 5) > 0) violation = true;
    }
  }
  EXPECT_TRUE(violation);
}

TEST(BudgetAttributor, TimeRangeFiltersConsumption) {
  obs::BudgetAttributor attr(150, 1000);
  attr.on_budget(obs::attribute_budget(chain_trace(1), 150), 100);
  attr.on_budget(obs::attribute_budget(chain_trace(2), 150), 1500);
  attr.flush(2000);
  // Only the first window (stamped at 1000).
  EXPECT_EQ(attr.top_consumer(0, 1000), "service-2");
  const auto first = attr.consumption_ms(0, 1000);
  const auto all = attr.consumption_ms();
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(all.empty());
  EXPECT_LT(first[0].second, all[0].second);
}

}  // namespace
}  // namespace sora
