// Tests for the fine-grained concurrency/goodput sampler.
#include "metrics/scatter_sampler.h"

#include <gtest/gtest.h>

#include "svc/application.h"
#include "test_util.h"
#include "trace/tracer.h"

namespace sora {
namespace {

struct Fixture {
  Simulator sim;
  Tracer tracer;
  Application app;
  explicit Fixture(ApplicationConfig cfg)
      : app(sim, tracer, std::move(cfg), 1) {}

  void drive(int per_second, SimTime duration) {
    // Deterministic arrivals, starting from the current sim time so a
    // second drive() after run_until() does not schedule in the past.
    const SimTime gap = sec(1) / per_second;
    const SimTime base = sim.now();
    for (SimTime t = 0; t < duration; t += gap) {
      sim.schedule_at(base + t, [this] { app.inject(0, [](SimTime) {}); });
    }
  }
};

TEST(ScatterSampler, CountsThroughputPerBucket) {
  Fixture f(testutil::single_service(4.0, 8, 1000, 0, 0.0));
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  ScatterSampler sampler(f.sim, f.tracer, knob, msec(100), msec(50));
  sampler.start();
  f.drive(100, sec(2));
  f.sim.run_until(sec(2));
  const auto pts = sampler.points();
  ASSERT_GE(pts.size(), 19u);
  for (std::size_t i = 0; i < 19; ++i) {
    EXPECT_NEAR(pts[i].throughput, 100.0, 11.0) << i;
    EXPECT_NEAR(pts[i].goodput, 100.0, 11.0) << i;  // rt 1ms << 50ms
    EXPECT_EQ(pts[i].capacity, 8.0);
  }
}

TEST(ScatterSampler, ThresholdSplitsGoodput) {
  // Service rt = 10ms deterministic; threshold 5ms -> goodput 0.
  Fixture f(testutil::single_service(4.0, 8, 10000, 0, 0.0));
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  ScatterSampler sampler(f.sim, f.tracer, knob, msec(100), msec(5));
  sampler.start();
  f.drive(50, sec(1));
  f.sim.run_until(sec(2));
  for (const auto& p : sampler.points()) {
    EXPECT_DOUBLE_EQ(p.goodput, 0.0);
  }
  // Raise the threshold at runtime: goodput reappears.
  sampler.set_rt_threshold(msec(50));
  f.drive(50, sec(1));
  f.sim.run_until(sec(4));
  bool any_good = false;
  for (const auto& p : sampler.points()) {
    if (p.goodput > 0) any_good = true;
  }
  EXPECT_TRUE(any_good);
}

TEST(ScatterSampler, ConcurrencyAveragesInUse) {
  // One request of 100ms CPU on an idle service: during its bucket the
  // entry pool holds 1 slot.
  Fixture f(testutil::single_service(4.0, 8, 100000, 0, 0.0));
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  ScatterSampler sampler(f.sim, f.tracer, knob, msec(100), msec(500));
  sampler.start();
  f.sim.schedule_at(0, [&] { f.app.inject(0, [](SimTime) {}); });
  f.sim.run_until(msec(100));
  const auto pts = sampler.points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].concurrency, 1.0, 0.01);
}

TEST(ScatterSampler, EdgeKnobMeasuresTargetCompletions) {
  Fixture f(testutil::edge_pool_app(2, 1000, 0.0));
  ResourceKnob knob = ResourceKnob::edge(f.app.service("caller"), "db");
  ScatterSampler sampler(f.sim, f.tracer, knob, msec(100), msec(50));
  sampler.start();
  f.drive(100, sec(1));
  f.sim.run_until(sec(1));
  double total = 0.0;
  for (const auto& p : sampler.points()) total += p.throughput;
  // ~100 db visits over 10 buckets at 100ms -> sum of rates ~ 1000.
  EXPECT_NEAR(total, 1000.0, 150.0);
}

TEST(ScatterSampler, RingBufferBounded) {
  Fixture f(testutil::single_service());
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  ScatterSampler sampler(f.sim, f.tracer, knob, msec(10), msec(50), 16);
  sampler.start();
  f.sim.run_until(sec(1));
  EXPECT_LE(sampler.size(), 16u);
}

TEST(ScatterSampler, PointsSinceFilters) {
  Fixture f(testutil::single_service());
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  ScatterSampler sampler(f.sim, f.tracer, knob, msec(100), msec(50));
  sampler.start();
  f.sim.run_until(sec(1));
  EXPECT_EQ(sampler.points_since(0).size(), 10u);
  EXPECT_EQ(sampler.points_since(msec(550)).size(), 5u);
  sampler.clear();
  EXPECT_EQ(sampler.size(), 0u);
}

TEST(ScatterSampler, StopHaltsSampling) {
  Fixture f(testutil::single_service());
  ResourceKnob knob = ResourceKnob::entry(f.app.service("svc"));
  ScatterSampler sampler(f.sim, f.tracer, knob, msec(100), msec(50));
  sampler.start();
  f.sim.run_until(msec(300));
  sampler.stop();
  const std::size_t n = sampler.size();
  f.sim.run_until(sec(1));
  EXPECT_EQ(sampler.size(), n);
}

}  // namespace
}  // namespace sora
