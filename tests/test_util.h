// Shared helpers for the test suite: small topologies and synthetic traces.
#pragma once

#include <string>
#include <vector>

#include "svc/config.h"
#include "trace/span.h"

namespace sora::testutil {

/// One service "svc": no downstream calls, configurable demand/pool/cores.
inline ApplicationConfig single_service(double cores = 2.0,
                                        int entry_pool = 8,
                                        double req_us = 1000,
                                        double resp_us = 500,
                                        double cv = 0.0) {
  ApplicationConfig app;
  ServiceConfig s;
  s.name = "svc";
  s.with_cores(cores).with_entry_pool(entry_pool);
  s.with_demand(0, req_us, resp_us, cv);
  app.services.push_back(s);
  app.entry_service[0] = "svc";
  return app;
}

/// Chain: front -> mid -> leaf (deterministic demands by default).
inline ApplicationConfig chain_app(double cv = 0.0) {
  ApplicationConfig app;
  {
    ServiceConfig s;
    s.name = "front";
    s.with_cores(4).with_entry_pool(64);
    s.with_demand(0, 500, 300, cv);
    s.with_call(0, "mid");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "mid";
    s.with_cores(4).with_entry_pool(32);
    s.with_demand(0, 800, 400, cv);
    s.with_call(0, "leaf");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "leaf";
    s.with_cores(4).with_entry_pool(32);
    s.with_demand(0, 1200, 0, cv);
    app.services.push_back(s);
  }
  app.entry_service[0] = "front";
  return app;
}

/// Fan-out: front calls {a, b} in parallel; a is slower.
inline ApplicationConfig fanout_app(double a_us = 3000, double b_us = 1000,
                                    double cv = 0.0) {
  ApplicationConfig app;
  {
    ServiceConfig s;
    s.name = "front";
    s.with_cores(4).with_entry_pool(64);
    s.with_demand(0, 200, 200, cv);
    s.with_parallel_calls(0, {"a", "b"});
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "a";
    s.with_cores(4).with_entry_pool(32);
    s.with_demand(0, a_us, 0, cv);
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "b";
    s.with_cores(4).with_entry_pool(32);
    s.with_demand(0, b_us, 0, cv);
    app.services.push_back(s);
  }
  app.entry_service[0] = "front";
  return app;
}

/// Caller with a gated edge pool to a leaf target ("db").
inline ApplicationConfig edge_pool_app(int connections, double db_us = 1000,
                                       double cv = 0.0) {
  ApplicationConfig app;
  {
    ServiceConfig s;
    s.name = "caller";
    s.with_cores(8).with_entry_pool(0);
    s.with_edge_pool("db", connections, PoolKind::kDbConnections);
    s.with_demand(0, 100, 100, cv);
    s.with_call(0, "db");
    app.services.push_back(s);
  }
  {
    ServiceConfig s;
    s.name = "db";
    s.with_cores(4).with_entry_pool(512);
    s.with_demand(0, db_us, 0, cv);
    app.services.push_back(s);
  }
  app.entry_service[0] = "caller";
  return app;
}

/// Build a synthetic trace by hand. Spans are given as tuples; children are
/// linked through the parent index.
struct SyntheticSpan {
  int parent_index;  // -1 for root
  std::uint64_t service;
  SimTime arrival;
  SimTime departure;
  SimTime downstream_wait;
  int parallel_group = 0;
};

inline Trace make_trace(const std::vector<SyntheticSpan>& spans,
                        std::uint64_t trace_id = 1) {
  Trace t;
  t.id = TraceId(trace_id);
  t.request_class = 0;
  t.start = spans.empty() ? 0 : spans.front().arrival;
  t.end = spans.empty() ? 0 : spans.front().departure;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SyntheticSpan& ss = spans[i];
    Span s;
    s.id = SpanId(trace_id * 1000 + i);
    s.trace = t.id;
    s.parent = ss.parent_index >= 0
                   ? SpanId(trace_id * 1000 +
                            static_cast<std::uint64_t>(ss.parent_index))
                   : SpanId{};
    s.service = ServiceId(ss.service);
    s.instance = InstanceId(0);
    s.arrival = ss.arrival;
    s.admitted = ss.arrival;
    s.departure = ss.departure;
    s.downstream_wait = ss.downstream_wait;
    t.spans.push_back(s);
  }
  // Wire children links.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent_index < 0) continue;
    Span& parent = t.spans[static_cast<std::size_t>(spans[i].parent_index)];
    parent.children.push_back(ChildCall{t.spans[i].id,
                                        spans[i].parallel_group,
                                        spans[i].arrival,
                                        spans[i].departure});
  }
  return t;
}

}  // namespace sora::testutil
