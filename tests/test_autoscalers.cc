// Tests for the hardware-only autoscalers: HPA, VPA, FIRM-like.
#include <gtest/gtest.h>

#include "autoscale/firm.h"
#include "autoscale/hpa.h"
#include "autoscale/vpa.h"
#include "svc/application.h"
#include "test_util.h"
#include "trace/tracer.h"
#include "workload/generator.h"

namespace sora {
namespace {

struct Fixture {
  Simulator sim;
  Tracer tracer;
  TraceWarehouse warehouse{100000};
  Application app;
  explicit Fixture(ApplicationConfig cfg, std::uint64_t seed = 1)
      : app(sim, tracer, std::move(cfg), seed) {
    warehouse.attach(tracer);
  }
};

/// Single CPU-bound service that one replica/core cannot handle.
ApplicationConfig hot_app(double cores = 1.0) {
  return testutil::single_service(cores, 64, 4000, 2000, 0.4);
}

TEST(UtilizationTracker, MeasuresBusyFraction) {
  Fixture f(testutil::single_service(1.0, 8, 100000, 0, 0.0));
  UtilizationTracker util(f.app);
  Service* svc = f.app.service("svc");
  // One 100ms job on 1 core over a 200ms window -> 50% utilization.
  f.app.inject(0, [](SimTime) {});
  f.sim.run_until(msec(200));
  EXPECT_NEAR(util.utilization(*svc), 0.5, 0.02);
  util.epoch();
  f.sim.run_until(msec(300));
  EXPECT_NEAR(util.utilization(*svc), 0.0, 0.01);
}

TEST(Hpa, ScalesOutUnderLoad) {
  Fixture f(hot_app());
  HpaOptions opts;
  opts.period = sec(5);
  opts.max_replicas = 6;
  HorizontalPodAutoscaler hpa(f.sim, f.app, opts);
  hpa.manage(f.app.service("svc"));
  hpa.start();

  ClosedLoopGenerator users(f.sim, f.app, 50, msec(50), 2);
  users.start();
  f.sim.run_until(sec(60));
  users.stop();
  hpa.stop();

  EXPECT_GT(f.app.service("svc")->active_replicas(), 1);
  ASSERT_FALSE(hpa.history().empty());
  EXPECT_EQ(hpa.history().front().kind, ScaleEvent::Kind::kHorizontal);
  EXPECT_GT(hpa.history().front().new_replicas,
            hpa.history().front().old_replicas);
}

TEST(Hpa, ScalesInAfterLoadDropsWithStabilization) {
  Fixture f(hot_app());
  HpaOptions opts;
  opts.period = sec(5);
  opts.max_replicas = 6;
  opts.downscale_stabilization_periods = 3;
  HorizontalPodAutoscaler hpa(f.sim, f.app, opts);
  hpa.manage(f.app.service("svc"));
  hpa.start();

  ClosedLoopGenerator users(f.sim, f.app, 50, msec(50), 3);
  users.start();
  f.sim.run_until(sec(60));
  const int peak = f.app.service("svc")->active_replicas();
  users.set_users(1);
  f.sim.run_until(sec(180));
  users.stop();
  hpa.stop();

  EXPECT_LT(f.app.service("svc")->active_replicas(), peak);
}

TEST(Hpa, RespectsMaxReplicas) {
  Fixture f(hot_app());
  HpaOptions opts;
  opts.period = sec(5);
  opts.max_replicas = 2;
  HorizontalPodAutoscaler hpa(f.sim, f.app, opts);
  hpa.manage(f.app.service("svc"));
  hpa.start();
  ClosedLoopGenerator users(f.sim, f.app, 200, msec(20), 4);
  users.start();
  f.sim.run_until(sec(60));
  EXPECT_LE(f.app.service("svc")->active_replicas(), 2);
}

TEST(Vpa, ScalesUpCores) {
  Fixture f(hot_app(1.0));
  VpaOptions opts;
  opts.period = sec(5);
  opts.max_cores = 4.0;
  VerticalPodAutoscaler vpa(f.sim, f.app, opts);
  vpa.manage(f.app.service("svc"));
  vpa.start();
  ClosedLoopGenerator users(f.sim, f.app, 50, msec(50), 5);
  users.start();
  f.sim.run_until(sec(60));
  EXPECT_GT(f.app.service("svc")->cpu_limit(), 1.0);
  EXPECT_LE(f.app.service("svc")->cpu_limit(), 4.0);
  ASSERT_FALSE(vpa.history().empty());
  EXPECT_EQ(vpa.history().front().kind, ScaleEvent::Kind::kVertical);
}

TEST(Vpa, ScalesDownWhenIdleWithStabilization) {
  Fixture f(hot_app(4.0));
  VpaOptions opts;
  opts.period = sec(5);
  opts.min_cores = 1.0;
  opts.downscale_stabilization_periods = 2;
  VerticalPodAutoscaler vpa(f.sim, f.app, opts);
  vpa.manage(f.app.service("svc"));
  vpa.start();
  f.sim.run_until(sec(60));  // no load at all
  EXPECT_LT(f.app.service("svc")->cpu_limit(), 4.0);
}

TEST(Firm, ScalesCriticalServiceOnSloViolation) {
  Fixture f(hot_app(1.0));
  FirmOptions opts;
  opts.period = sec(5);
  opts.slo_latency = msec(20);
  opts.max_cores = 4.0;
  FirmAutoscaler firm(f.sim, f.app, f.warehouse, opts);
  firm.start();
  ClosedLoopGenerator users(f.sim, f.app, 40, msec(50), 6);
  users.start();
  f.sim.run_until(sec(60));
  EXPECT_GT(f.app.service("svc")->cpu_limit(), 1.0);
  EXPECT_TRUE(firm.last_report().critical.valid());
}

TEST(Firm, NeverTouchesPools) {
  Fixture f(hot_app(1.0));
  const int pool_before = f.app.service("svc")->entry_pool_size();
  FirmOptions opts;
  opts.period = sec(5);
  opts.slo_latency = msec(20);
  FirmAutoscaler firm(f.sim, f.app, f.warehouse, opts);
  firm.start();
  ClosedLoopGenerator users(f.sim, f.app, 40, msec(50), 7);
  users.start();
  f.sim.run_until(sec(60));
  EXPECT_EQ(f.app.service("svc")->entry_pool_size(), pool_before);
}

TEST(Firm, ManagedListRestrictsScaling) {
  Fixture f(testutil::chain_app(0.5));
  FirmOptions opts;
  opts.period = sec(5);
  opts.slo_latency = msec(1);  // always violating
  FirmAutoscaler firm(f.sim, f.app, f.warehouse, opts);
  firm.manage(f.app.service("mid"));
  firm.start();
  ClosedLoopGenerator users(f.sim, f.app, 30, msec(50), 8);
  users.start();
  f.sim.run_until(sec(40));
  // Only "mid" may have been scaled.
  EXPECT_DOUBLE_EQ(f.app.service("front")->cpu_limit(), 4.0);
  EXPECT_DOUBLE_EQ(f.app.service("leaf")->cpu_limit(), 4.0);
  EXPECT_GE(f.app.service("mid")->cpu_limit(), 4.0);
}

TEST(Autoscaler, ListenersReceiveEvents) {
  Fixture f(hot_app(1.0));
  VpaOptions opts;
  opts.period = sec(5);
  VerticalPodAutoscaler vpa(f.sim, f.app, opts);
  vpa.manage(f.app.service("svc"));
  int events = 0;
  vpa.add_scale_listener([&](const ScaleEvent& ev) {
    ++events;
    EXPECT_EQ(ev.service, f.app.service("svc"));
  });
  vpa.start();
  ClosedLoopGenerator users(f.sim, f.app, 50, msec(50), 9);
  users.start();
  f.sim.run_until(sec(60));
  EXPECT_GT(events, 0);
  EXPECT_EQ(static_cast<std::size_t>(events), vpa.history().size());
}

}  // namespace
}  // namespace sora
