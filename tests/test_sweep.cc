// Tests for the parallel experiment sweep runner.
#include "harness/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "fault/fault_plan.h"
#include "harness/experiment.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace sora {
namespace {

/// One self-contained simulation run, as every bench sweep performs it.
ExperimentSummary run_point(std::size_t index) {
  ExperimentConfig cfg;
  cfg.duration = sec(10);
  cfg.sla = msec(100);
  cfg.seed = 100 + index;
  Experiment exp(testutil::chain_app(0.4), cfg);
  exp.closed_loop(10 + static_cast<int>(index) * 5, msec(100));
  exp.run();
  return exp.summary();
}

bool same_sim_outputs(const ExperimentSummary& a, const ExperimentSummary& b) {
  return a.injected == b.injected && a.completed == b.completed &&
         a.shed == b.shed && a.mean_ms == b.mean_ms && a.p50_ms == b.p50_ms &&
         a.p95_ms == b.p95_ms && a.p99_ms == b.p99_ms &&
         a.goodput_rps == b.goodput_rps &&
         a.throughput_rps == b.throughput_rps &&
         a.good_fraction == b.good_fraction &&
         a.slo_episodes == b.slo_episodes;
}

TEST(SweepRunner, MapReturnsResultsInIndexOrder) {
  SweepRunner runner(4);
  const auto out = runner.map(32, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 32u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, ItemOverloadPreservesItemOrder) {
  SweepRunner runner(4);
  const std::vector<int> items = {7, -3, 0, 42, 5};
  const auto out = runner.map(items, [](int v) { return v * 2; });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(out[i], items[i] * 2);
  }
}

TEST(SweepRunner, EachIndexRunsExactlyOnce) {
  SweepRunner runner(4);
  std::atomic<int> calls{0};
  const auto out = runner.map(100, [&](std::size_t i) {
    calls.fetch_add(1);
    return i;
  });
  EXPECT_EQ(calls.load(), 100);
  std::set<std::size_t> seen(out.begin(), out.end());
  EXPECT_EQ(seen.size(), 100u);
}

// The core parity claim: a 4-thread sweep of real simulations produces
// bit-identical summaries to the serial sweep — determinism lives in the
// per-run seeds, not in scheduling.
TEST(SweepRunner, ParallelSimulationsMatchSerialBitForBit) {
  constexpr std::size_t kRuns = 6;
  SweepRunner serial(1);
  SweepRunner parallel(4);
  ASSERT_EQ(parallel.threads(), 4);
  const auto s = serial.map(kRuns, run_point);
  const auto p = parallel.map(kRuns, run_point);
  ASSERT_EQ(s.size(), kRuns);
  ASSERT_EQ(p.size(), kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_TRUE(same_sim_outputs(s[i], p[i])) << "run " << i << " diverged";
  }
  // Distinct configs must produce distinct outputs (guards against the
  // parity check accidentally comparing constants).
  EXPECT_FALSE(same_sim_outputs(s[0], s[1]));
}

// Repeating the same parallel sweep must be deterministic run-to-run.
TEST(SweepRunner, ParallelSweepIsRepeatable) {
  SweepRunner runner(4);
  const auto first = runner.map(4, run_point);
  const auto second = runner.map(4, run_point);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(same_sim_outputs(first[i], second[i]));
  }
}

TEST(SweepRunner, PropagatesFirstException) {
  SweepRunner runner(4);
  EXPECT_THROW(runner.map(16,
                          [](std::size_t i) -> int {
                            if (i == 3) throw std::runtime_error("boom");
                            return static_cast<int>(i);
                          }),
               std::runtime_error);
}

TEST(SweepRunner, EmptyMapReturnsEmpty) {
  SweepRunner runner(4);
  EXPECT_TRUE(runner.map(0, [](std::size_t i) { return i; }).empty());
}

TEST(SweepRunner, SerialFallbackForSingleWorker) {
  SweepRunner runner(1);
  EXPECT_EQ(runner.threads(), 1);
  std::thread::id main_id = std::this_thread::get_id();
  runner.map(4, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), main_id);
    return i;
  });
}

/// A faulted run: seed-derived fault plan (crash + cpu step + stall +
/// scatter dropout) under an active Sora control loop. Returns the summary
/// plus the full decision-log JSONL, the strictest determinism witness we
/// have (every fault event and every controller reaction, byte for byte).
struct FaultedRun {
  ExperimentSummary summary;
  std::string decisions_jsonl;
};

FaultedRun run_faulted_point(std::size_t index) {
  ExperimentConfig cfg;
  cfg.duration = sec(30);
  cfg.sla = msec(100);
  cfg.seed = 500 + index;
  ApplicationConfig app = testutil::chain_app(0.4);
  app.services[1].with_replicas(2);  // "mid" can crash without refusal
  Experiment exp(app, cfg);
  SoraFrameworkOptions so;
  so.control_period = sec(5);
  auto& fw = exp.add_sora(so);
  fw.manage(ResourceKnob::entry(exp.app().service("mid")));

  RandomFaultOptions fo;
  fo.crash_services = {"mid"};
  fo.cpu_services = {"leaf"};
  fo.crash_downtime = sec(8);
  fo.stall_duration = sec(6);
  fo.dropout_duration = sec(6);
  exp.enable_faults(FaultPlan::random(cfg.seed, cfg.duration, fo));

  exp.closed_loop(10 + static_cast<int>(index) * 5, msec(100));
  exp.run();

  FaultedRun out;
  out.summary = exp.summary();
  std::ostringstream os;
  exp.export_decision_log(os);
  out.decisions_jsonl = os.str();
  return out;
}

// Bit parity must also hold with an active FaultPlan: the injector's RNG
// streams are per-experiment and drawn in event order, so fault timing and
// controller reactions cannot depend on worker scheduling.
TEST(SweepRunner, FaultedParallelSweepMatchesSerialByteForByte) {
  constexpr std::size_t kRuns = 4;
  SweepRunner serial(1);
  SweepRunner parallel(4);
  const auto s = serial.map(kRuns, run_faulted_point);
  const auto p = parallel.map(kRuns, run_faulted_point);
  ASSERT_EQ(s.size(), kRuns);
  ASSERT_EQ(p.size(), kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_TRUE(same_sim_outputs(s[i].summary, p[i].summary))
        << "faulted run " << i << " diverged";
    EXPECT_FALSE(s[i].decisions_jsonl.empty());
    EXPECT_EQ(s[i].decisions_jsonl, p[i].decisions_jsonl)
        << "decision log of faulted run " << i << " diverged";
    // The log must actually contain injected-fault records, or this parity
    // test silently degenerates to the fault-free one.
    EXPECT_NE(s[i].decisions_jsonl.find("\"controller\":\"fault\""),
              std::string::npos);
  }
  // Distinct seeds must produce distinct fault histories.
  EXPECT_NE(s[0].decisions_jsonl, s[1].decisions_jsonl);
}

TEST(SweepRunner, FaultedParallelSweepIsRepeatable) {
  SweepRunner runner(4);
  const auto first = runner.map(3, run_faulted_point);
  const auto second = runner.map(3, run_faulted_point);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(same_sim_outputs(first[i].summary, second[i].summary));
    EXPECT_EQ(first[i].decisions_jsonl, second[i].decisions_jsonl);
  }
}

// Each worker's Simulator registers itself as that thread's log clock;
// clocks on different threads must not interfere (the pre-PR global clock
// would tear between concurrent sims).
TEST(SweepRunner, LogClockIsPerThread) {
  SweepRunner runner(4);
  runner.map(8, [](std::size_t i) {
    Simulator sim;
    const SimTime target = sec(1) * static_cast<SimTime>(i + 1);
    sim.schedule_at(target, [] {});
    sim.run_all();
    // The thread's registered clock must read back this sim's clock, not a
    // concurrent worker's.
    SimTime logged = -1;
    EXPECT_TRUE(log_clock_now(&logged));
    EXPECT_EQ(logged, sim.now());
    return 0;
  });
}

}  // namespace
}  // namespace sora
