#include "fault/fault_plan.h"

#include <algorithm>

#include "common/rng.h"

namespace sora {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashInstance:
      return "crash_instance";
    case FaultKind::kCpuLimitStep:
      return "cpu_limit_step";
    case FaultKind::kSpanDropout:
      return "span_dropout";
    case FaultKind::kSpanDelay:
      return "span_delay";
    case FaultKind::kScatterDropout:
      return "scatter_dropout";
    case FaultKind::kControlStall:
      return "control_stall";
  }
  return "unknown";
}

FaultPlan& FaultPlan::add(FaultEvent ev) {
  events_.push_back(std::move(ev));
  return *this;
}

FaultPlan FaultPlan::random(std::uint64_t seed, SimTime horizon,
                            RandomFaultOptions options) {
  // Independent stream: the plan must not perturb (or be perturbed by) the
  // workload/demand RNGs derived from the same experiment seed.
  Rng rng(seed ^ 0x0fa1742bd93c6e85ULL);
  FaultPlan plan;

  const SimTime lo = static_cast<SimTime>(options.earliest *
                                          static_cast<double>(horizon));
  const SimTime hi = static_cast<SimTime>(options.latest *
                                          static_cast<double>(horizon));
  auto draw_at = [&] {
    return hi > lo ? lo + static_cast<SimTime>(rng.uniform_int(
                              static_cast<std::uint64_t>(hi - lo)))
                   : lo;
  };

  if (!options.crash_services.empty()) {
    for (int i = 0; i < options.crashes; ++i) {
      FaultEvent ev;
      ev.kind = FaultKind::kCrashInstance;
      ev.at = draw_at();
      ev.service = options.crash_services[rng.uniform_int(
          options.crash_services.size())];
      ev.instance = static_cast<std::size_t>(rng.uniform_int(4));
      ev.drop_inflight = options.drop_inflight;
      ev.duration = options.crash_downtime;
      plan.add(std::move(ev));
    }
  }
  if (!options.cpu_services.empty()) {
    for (int i = 0; i < options.cpu_steps; ++i) {
      FaultEvent ev;
      ev.kind = FaultKind::kCpuLimitStep;
      ev.at = draw_at();
      ev.service =
          options.cpu_services[rng.uniform_int(options.cpu_services.size())];
      ev.cores = rng.uniform(options.cpu_cores_lo, options.cpu_cores_hi);
      plan.add(std::move(ev));
    }
  }
  for (int i = 0; i < options.span_dropouts; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kSpanDropout;
    ev.at = draw_at();
    ev.fraction = options.dropout_fraction;
    ev.duration = options.dropout_duration;
    plan.add(std::move(ev));
  }
  for (int i = 0; i < options.scatter_dropouts; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kScatterDropout;
    ev.at = draw_at();
    ev.fraction = options.dropout_fraction;
    ev.duration = options.dropout_duration;
    plan.add(std::move(ev));
  }
  for (int i = 0; i < options.control_stalls; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kControlStall;
    ev.at = draw_at();
    ev.duration = options.stall_duration;
    plan.add(std::move(ev));
  }

  // Stable sort: events generated earlier win ties, so the order is a pure
  // function of (seed, horizon, options).
  std::stable_sort(plan.events_.begin(), plan.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace sora
