// Deterministic fault plans.
//
// A FaultPlan is a schedule of fault events — replica crashes, CPU-limit
// steps, telemetry dropout/delay windows, control-plane stalls — that the
// FaultInjector arms into the simulator event loop. Plans are either
// scripted (add() each event) or derived from the experiment seed
// (FaultPlan::random), so the same seed always produces the same faults at
// the same sim times: faulted runs stay byte-for-byte reproducible, under
// SweepRunner parallelism included.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace sora {

enum class FaultKind {
  kCrashInstance,   ///< take one replica down (drain or drop), restart later
  kCpuLimitStep,    ///< step a service's per-replica CPU limit at runtime
  kSpanDropout,     ///< drop a fraction of tracer span reports
  kSpanDelay,       ///< delay a fraction of tracer span reports
  kScatterDropout,  ///< drop a fraction of scatter sample buckets
  kControlStall,    ///< stall every control loop (rounds skipped, not run)
};

/// Stable lower_snake_case name, used as the decision log's fault_kind.
const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kCrashInstance;
  SimTime at = 0;  ///< injection time (sim clock)

  /// Target service name for kCrashInstance / kCpuLimitStep ("" = n/a).
  std::string service;
  /// Preferred replica index for kCrashInstance; the injector crashes the
  /// first *active* replica at or after this index (wrapping), so a plan
  /// stays valid whatever the autoscaler did to the replica set meanwhile.
  std::size_t instance = 0;
  /// kCrashInstance: abort in-flight visits instead of draining them.
  bool drop_inflight = false;

  /// How long the fault lasts: crash downtime before restart, telemetry
  /// window length, stall length. 0 = permanent (no restore event).
  /// Ignored by kCpuLimitStep (steps are permanent state changes).
  SimTime duration = 0;

  /// Affected fraction for kSpanDropout / kSpanDelay / kScatterDropout.
  double fraction = 0.0;
  /// Redelivery delay for kSpanDelay.
  SimTime delay = 0;
  /// New per-replica CPU limit for kCpuLimitStep.
  double cores = 0.0;
};

/// Knobs for seed-derived plans. Counts are exact (not expectations); the
/// injection times are drawn uniformly from the middle of the horizon so
/// restores land inside the run.
struct RandomFaultOptions {
  /// Candidate crash targets; empty disables crash events.
  std::vector<std::string> crash_services;
  /// Candidate CPU-step targets; empty disables CPU events.
  std::vector<std::string> cpu_services;

  int crashes = 1;
  int cpu_steps = 1;
  int span_dropouts = 0;
  int scatter_dropouts = 1;
  int control_stalls = 1;

  bool drop_inflight = true;
  SimTime crash_downtime = sec(45);
  double cpu_cores_lo = 0.5;  ///< uniform range for the stepped limit
  double cpu_cores_hi = 2.0;
  double dropout_fraction = 0.5;
  SimTime dropout_duration = sec(60);
  SimTime stall_duration = sec(45);
  SimTime span_delay = sec(5);

  /// Events are drawn in [earliest * horizon, latest * horizon].
  double earliest = 0.15;
  double latest = 0.70;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Append one scripted event (kept sorted by injection time, stable for
  /// equal times, when armed).
  FaultPlan& add(FaultEvent ev);

  /// Derive a plan from a seed: same (seed, horizon, options) => identical
  /// event list, independent of everything else in the experiment.
  static FaultPlan random(std::uint64_t seed, SimTime horizon,
                          RandomFaultOptions options = {});

  const std::vector<FaultEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace sora
