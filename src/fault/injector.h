// Deterministic fault injector.
//
// Arms a FaultPlan into the simulator event loop and performs each fault
// when its time comes:
//
//   crash_instance  -> Service::crash_replica (drain or drop in-flight),
//                      restore after the downtime; frameworks are told to
//                      re-localize (the autoscaler did not cause this)
//   cpu_limit_step  -> Service::set_cpu_limit, *unannounced*: unlike a
//                      hardware autoscaler event there is no
//                      on_hardware_scaled notification — controllers must
//                      notice the drift through telemetry
//   span_dropout    -> a fraction of span reports never reach the span
//   span_delay         listeners / arrive late (Tracer span interceptor)
//   scatter_dropout -> a fraction of scatter buckets are discarded before
//                      entering the estimators' scatter windows
//   control_stall   -> every attached framework/autoscaler skips rounds
//
// Every decision point appends a controller="fault" record (with a
// fault_kind field) to the decision log, so a run's fault history reads out
// of the same JSONL stream as the controllers' reactions to it.
//
// Determinism: the injector draws from its own seed-forked RNG streams,
// only from inside simulator callbacks (so draws happen in event order),
// and owns no wall-clock or cross-experiment state. Same seed + same plan
// => byte-identical decision log and summary, across reruns and across
// SweepRunner thread counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fault/fault_plan.h"
#include "trace/tracer.h"

namespace sora {

class Application;
class Controller;
class Service;
class Simulator;
class SoraFramework;
namespace obs {
class DecisionLog;
}

class FaultInjector {
 public:
  /// Everything the injector acts on. `log` may be null (no audit records);
  /// the controller lists may be empty (telemetry faults then only count).
  /// `controllers` is the uniform list every control plane lives on —
  /// stalls and topology notifications go through the shared Controller
  /// contract. `frameworks` additionally names the Sora/ConScale instances
  /// (also present in `controllers`) whose estimator internals the scatter-
  /// dropout fault gates.
  struct Hooks {
    Simulator* sim = nullptr;
    Application* app = nullptr;
    Tracer* tracer = nullptr;
    obs::DecisionLog* log = nullptr;
    std::vector<Controller*> controllers;
    std::vector<SoraFramework*> frameworks;
  };

  FaultInjector(FaultPlan plan, Hooks hooks, std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule every plan event (events in the past fire immediately) and
  /// install the telemetry interceptors. Call once, before the run.
  void arm();

  const FaultPlan& plan() const { return plan_; }
  bool armed() const { return armed_; }

  /// Fire an ad-hoc event immediately (ctl plane's `fault ...` command).
  /// Must be called from inside a simulator callback — the ctl safepoint is
  /// one — so the fault lands at a well-defined point in event order.
  void trigger(const FaultEvent& ev);

  // -- outcome counters --------------------------------------------------------

  std::uint64_t events_fired() const { return events_fired_; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t crashes_refused() const { return crashes_refused_; }
  std::uint64_t restarts() const { return restarts_; }
  std::uint64_t cpu_steps() const { return cpu_steps_; }
  std::uint64_t spans_dropped() const {
    return spans_dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t spans_delayed() const {
    return spans_delayed_.load(std::memory_order_relaxed);
  }
  std::uint64_t scatter_dropped() const { return scatter_dropped_; }
  std::uint64_t stalls() const { return stalls_; }

 private:
  void fire(const FaultEvent& ev);
  void fire_crash(const FaultEvent& ev);
  void fire_cpu_step(const FaultEvent& ev);
  void fire_span_window(const FaultEvent& ev);
  void fire_scatter_window(const FaultEvent& ev);
  void fire_stall(const FaultEvent& ev);

  Tracer::SpanFate intercept_span(const Span& span);
  bool admit_scatter_bucket();

  /// Deterministic per-span coin in [0,1), hashed from the span's intrinsic
  /// identity (trace id, service, message timestamps) and a salt. Used
  /// instead of the sequential RNG stream when the simulator is sharded:
  /// spans then close on concurrent lanes in an interleaving-dependent
  /// order, so draw order — and with it every later coin — would differ
  /// between shard counts. The hash depends only on the span itself.
  /// (Span ids are deliberately excluded: at intercept time they are still
  /// the raw pre-canonical ids, which are interleaving-dependent.)
  double span_coin(const Span& span, std::uint64_t salt) const;

  void set_stall(bool on);

  /// Append a controller="fault" decision record.
  void record(const FaultEvent& ev, const char* action,
              const std::string& target, const std::string& reason,
              double old_cores = 0.0, double new_cores = 0.0,
              int old_replicas = 0, int new_replicas = 0);
  void count_event(FaultKind kind);

  FaultPlan plan_;
  Hooks hooks_;
  bool armed_ = false;
  std::uint64_t seed_ = 0;  ///< raw seed, kept for the sharded hash coins

  // Independent streams so e.g. the span coin flips never shift the
  // scatter coin flips when windows overlap. rng_scatter_ stays sequential
  // even in sharded runs: bucket flushes happen on periodic ticks, which
  // run on the global lane in a fixed order.
  Rng rng_spans_;
  Rng rng_scatter_;

  // Active telemetry windows (depth counters support overlapping events;
  // the most recent event's fraction/delay wins).
  int span_drop_depth_ = 0;
  int span_delay_depth_ = 0;
  int scatter_drop_depth_ = 0;
  int stall_depth_ = 0;
  double span_drop_fraction_ = 0.0;
  double span_delay_fraction_ = 0.0;
  SimTime span_delay_ = 0;
  double scatter_drop_fraction_ = 0.0;

  std::uint64_t events_fired_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t crashes_refused_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t cpu_steps_ = 0;
  // Atomics: span intercepts run on whichever shard lane closes the span,
  // concurrently across worker threads. Everything else fires on the global
  // lane only.
  std::atomic<std::uint64_t> spans_dropped_{0};
  std::atomic<std::uint64_t> spans_delayed_{0};
  std::uint64_t scatter_dropped_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace sora
