#include "fault/injector.h"

#include <algorithm>
#include <string>
#include <utility>

#include "autoscale/autoscaler.h"
#include "common/log.h"
#include "core/estimator.h"
#include "core/sora.h"
#include "metrics/scatter_sampler.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "svc/application.h"
#include "svc/service.h"

namespace sora {

FaultInjector::FaultInjector(FaultPlan plan, Hooks hooks, std::uint64_t seed)
    : plan_(std::move(plan)),
      hooks_(std::move(hooks)),
      seed_(seed),
      // Streams forked per concern: span coin flips never shift scatter
      // coin flips, whatever windows overlap.
      rng_spans_(seed ^ 0x6a09e667f3bcc908ULL),
      rng_scatter_(seed ^ 0xbb67ae8584caa73bULL) {}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;

  // The telemetry paths are gated permanently; the gates are free
  // passthroughs outside active windows.
  hooks_.tracer->set_span_interceptor(
      [this](const Span& s) { return intercept_span(s); });
  for (SoraFramework* fw : hooks_.frameworks) {
    for (const ResourceKnob& knob : fw->estimator().knobs()) {
      if (ScatterSampler* sampler = fw->estimator().sampler(knob)) {
        sampler->set_bucket_filter(
            [this](const SamplePoint&) { return admit_scatter_bucket(); });
      }
    }
  }

  const SimTime now = hooks_.sim->now();
  for (const FaultEvent& ev : plan_.events()) {
    hooks_.sim->schedule_at(std::max(ev.at, now), [this, ev] { fire(ev); });
  }
}

void FaultInjector::trigger(const FaultEvent& ev) { fire(ev); }

void FaultInjector::fire(const FaultEvent& ev) {
  ++events_fired_;
  count_event(ev.kind);
  switch (ev.kind) {
    case FaultKind::kCrashInstance:
      fire_crash(ev);
      break;
    case FaultKind::kCpuLimitStep:
      fire_cpu_step(ev);
      break;
    case FaultKind::kSpanDropout:
    case FaultKind::kSpanDelay:
      fire_span_window(ev);
      break;
    case FaultKind::kScatterDropout:
      fire_scatter_window(ev);
      break;
    case FaultKind::kControlStall:
      fire_stall(ev);
      break;
  }
}

void FaultInjector::fire_crash(const FaultEvent& ev) {
  Service* svc = hooks_.app->service(ev.service);
  if (svc == nullptr) {
    ++crashes_refused_;
    record(ev, "crash_refused", ev.service, "unknown service");
    return;
  }
  const int before = svc->active_replicas();
  const std::size_t n = svc->total_replicas();
  // Crash the first active replica at or after the preferred index: the
  // plan does not need to know what the autoscaler did to the replica set.
  std::size_t chosen = n == 0 ? 0 : ev.instance % n;
  bool ok = false;
  for (std::size_t k = 0; k < n && !ok; ++k) {
    const std::size_t idx = (ev.instance + k) % n;
    if (svc->instance(idx).active() &&
        svc->crash_replica(idx, ev.drop_inflight)) {
      chosen = idx;
      ok = true;
    }
  }
  if (!ok) {
    ++crashes_refused_;
    record(ev, "crash_refused", svc->name(),
           "refused: would take down the last active replica", 0.0, 0.0,
           before, before);
    return;
  }

  ++crashes_;
  record(ev, "crash", svc->name(),
         std::string(ev.drop_inflight ? "replica crashed, in-flight dropped"
                                      : "replica crashed, draining") +
             " (replica " + std::to_string(chosen) + ")",
         0.0, 0.0, before, svc->active_replicas());
  for (Controller* c : hooks_.controllers) {
    c->on_topology_changed(svc, "instance crash");
  }
  SORA_INFO << "fault: crashed " << svc->name() << "[" << chosen << "]";

  if (ev.duration > 0) {
    hooks_.sim->schedule_after(ev.duration, [this, ev, svc, chosen] {
      const int was = svc->active_replicas();
      if (!svc->restore_replica(chosen)) return;  // autoscaler revived it
      ++restarts_;
      record(ev, "restart", svc->name(),
             "replica " + std::to_string(chosen) + " restarted after " +
                 std::to_string(to_sec(ev.duration)) + "s downtime",
             0.0, 0.0, was, svc->active_replicas());
      for (Controller* c : hooks_.controllers) {
        c->on_topology_changed(svc, "instance restart");
      }
      SORA_INFO << "fault: restored " << svc->name() << "[" << chosen << "]";
    });
  }
}

void FaultInjector::fire_cpu_step(const FaultEvent& ev) {
  Service* svc = hooks_.app->service(ev.service);
  if (svc == nullptr) {
    record(ev, "cpu_step_refused", ev.service, "unknown service");
    return;
  }
  const double old_cores = svc->cpu_limit();
  svc->set_cpu_limit(ev.cores);
  ++cpu_steps_;
  // Deliberately NOT announced via on_hardware_scaled: this models external
  // CPU churn (noisy neighbor, node pressure) that the controllers must
  // discover through their own telemetry.
  record(ev, "cpu_step", svc->name(),
         "per-replica CPU limit stepped externally (unannounced)", old_cores,
         ev.cores);
}

void FaultInjector::fire_span_window(const FaultEvent& ev) {
  const bool is_delay = ev.kind == FaultKind::kSpanDelay;
  if (is_delay) {
    ++span_delay_depth_;
    span_delay_fraction_ = ev.fraction;
    span_delay_ = ev.delay;
  } else {
    ++span_drop_depth_;
    span_drop_fraction_ = ev.fraction;
  }
  record(ev, "fault_start", "",
         std::to_string(static_cast<int>(ev.fraction * 100.0)) +
             "% of span reports " + (is_delay ? "delayed" : "dropped"));
  if (ev.duration > 0) {
    hooks_.sim->schedule_after(ev.duration, [this, ev, is_delay] {
      if (is_delay) {
        --span_delay_depth_;
      } else {
        --span_drop_depth_;
      }
      record(ev, "fault_end", "", "span telemetry window ended");
    });
  }
}

void FaultInjector::fire_scatter_window(const FaultEvent& ev) {
  ++scatter_drop_depth_;
  scatter_drop_fraction_ = ev.fraction;
  record(ev, "fault_start", "",
         std::to_string(static_cast<int>(ev.fraction * 100.0)) +
             "% of scatter sample buckets dropped");
  if (ev.duration > 0) {
    hooks_.sim->schedule_after(ev.duration, [this, ev] {
      --scatter_drop_depth_;
      record(ev, "fault_end", "", "scatter dropout window ended");
    });
  }
}

void FaultInjector::fire_stall(const FaultEvent& ev) {
  ++stalls_;
  set_stall(true);
  record(ev, "fault_start", "", "control planes stalled");
  if (ev.duration > 0) {
    hooks_.sim->schedule_after(ev.duration, [this, ev] {
      set_stall(false);
      record(ev, "fault_end", "", "control planes resumed");
    });
  }
}

void FaultInjector::set_stall(bool on) {
  stall_depth_ += on ? 1 : -1;
  const bool stalled = stall_depth_ > 0;
  for (Controller* c : hooks_.controllers) c->set_stalled(stalled);
}

namespace {
// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

double FaultInjector::span_coin(const Span& span, std::uint64_t salt) const {
  std::uint64_t h = mix64(seed_ ^ salt);
  h = mix64(h ^ span.trace.value());
  h = mix64(h ^ span.service.value());
  h = mix64(h ^ static_cast<std::uint64_t>(span.arrival));
  h = mix64(h ^ static_cast<std::uint64_t>(span.departure));
  // Top 53 bits -> [0,1) with full double precision.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Tracer::SpanFate FaultInjector::intercept_span(const Span& span) {
  // Sharded runs use stateless per-span hash coins (see span_coin); serial
  // runs keep the historical sequential stream so existing seeded scenarios
  // reproduce byte-for-byte.
  const bool hashed = hooks_.sim->sharding();
  if (span_drop_depth_ > 0) {
    const double u = hashed ? span_coin(span, 0x9e3779b97f4a7c15ULL)
                            : rng_spans_.uniform();
    if (u < span_drop_fraction_) {
      spans_dropped_.fetch_add(1, std::memory_order_relaxed);
      return Tracer::SpanFate::kDrop;
    }
  }
  if (span_delay_depth_ > 0) {
    const double u = hashed ? span_coin(span, 0xc2b2ae3d27d4eb4fULL)
                            : rng_spans_.uniform();
    if (u < span_delay_fraction_) {
      spans_delayed_.fetch_add(1, std::memory_order_relaxed);
      // Deliver a copy after the delay; the sampler sees it in the wrong
      // bucket, which is the point. Scheduled from the closing event, so it
      // lands on the span's own lane and stays in that service's event
      // chain.
      hooks_.sim->schedule_after(span_delay_, [this, copy = span] {
        hooks_.tracer->deliver_span(copy);
      });
      return Tracer::SpanFate::kDefer;
    }
  }
  return Tracer::SpanFate::kDeliver;
}

bool FaultInjector::admit_scatter_bucket() {
  if (scatter_drop_depth_ <= 0) return true;
  if (rng_scatter_.uniform() < scatter_drop_fraction_) {
    ++scatter_dropped_;
    return false;
  }
  return true;
}

void FaultInjector::record(const FaultEvent& ev, const char* action,
                           const std::string& target,
                           const std::string& reason, double old_cores,
                           double new_cores, int old_replicas,
                           int new_replicas) {
  if (hooks_.log == nullptr) return;
  obs::ControlDecisionRecord rec;
  rec.at = hooks_.sim->now();
  rec.controller = "fault";
  rec.round = events_fired_;
  rec.target = target;
  rec.fault_kind = to_string(ev.kind);
  rec.action = action;
  rec.reason = reason;
  rec.old_cores = old_cores;
  rec.new_cores = new_cores;
  rec.old_replicas = old_replicas;
  rec.new_replicas = new_replicas;
  hooks_.log->append(std::move(rec));
}

void FaultInjector::count_event(FaultKind kind) {
  if (hooks_.app == nullptr) return;
  hooks_.app->metrics()
      .counter("fault.events", {{"kind", to_string(kind)}})
      .add();
}

}  // namespace sora
