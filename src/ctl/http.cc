#include "ctl/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace sora::ctl {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Split "k1=v1&k2=v2" into the decoded query map.
void parse_query(std::string_view qs, std::map<std::string, std::string>* out) {
  std::size_t pos = 0;
  while (pos < qs.size()) {
    std::size_t amp = qs.find('&', pos);
    if (amp == std::string_view::npos) amp = qs.size();
    const std::string_view pair = qs.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (!pair.empty()) (*out)[url_decode(pair)] = "";
    } else {
      (*out)[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
}

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Unknown";
  }
}

}  // namespace

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

bool parse_http_request(std::string_view raw, HttpRequest* out) {
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string_view::npos) return false;
  const std::string_view line = raw.substr(0, line_end);

  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  out->method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;

  const std::size_t qmark = target.find('?');
  if (qmark == std::string_view::npos) {
    out->path = url_decode(target);
  } else {
    out->path = url_decode(target.substr(0, qmark));
    parse_query(target.substr(qmark + 1), &out->query);
  }

  const std::size_t headers_end = raw.find("\r\n\r\n");
  if (headers_end == std::string_view::npos) {
    out->body.clear();
    return true;  // header-only request (body may simply not have arrived)
  }
  out->body = std::string(raw.substr(headers_end + 4));
  return true;
}

std::string make_http_response(int status, std::string_view content_type,
                               std::string_view body) {
  std::ostringstream os;
  os << "HTTP/1.0 " << status << ' ' << status_text(status) << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

bool http_get(const std::string& host, int port, const std::string& path,
              std::string* body, int* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }

  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.0 200 OK" — pull the status, hand back everything after the
  // header block.
  int code = 0;
  if (std::sscanf(response.c_str(), "HTTP/%*d.%*d %d", &code) != 1) {
    return false;
  }
  if (status != nullptr) *status = code;
  const std::size_t headers_end = response.find("\r\n\r\n");
  *body = headers_end == std::string::npos ? std::string()
                                           : response.substr(headers_end + 4);
  return code >= 200 && code < 300;
}

}  // namespace sora::ctl
