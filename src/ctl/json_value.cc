#include "ctl/json_value.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace sora::ctl {

namespace {
const JsonValue& null_value() {
  static const JsonValue kNull;
  return kNull;
}
}  // namespace

const JsonValue& JsonValue::operator[](const std::string& key) const {
  if (kind_ != Kind::kObject) return null_value();
  const auto it = object_.find(key);
  return it == object_.end() ? null_value() : it->second;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return parse_string(&out->string_);
      case 't':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return literal("true");
      case 'f':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return literal("false");
      case 'n':
        out->kind_ = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object_.emplace(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_array(JsonValue* out) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->array_.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_string(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are out of
            // scope for the telemetry writer, which only escapes < 0x20).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return false;
        }
        continue;
      }
      *out += c;
      ++pos_;
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue* out) {
    // Copy the token first: the view need not be null-terminated, so strtod
    // cannot be pointed at it directly.
    std::size_t end_pos = pos_;
    while (end_pos < text_.size()) {
      const char c = text_[end_pos];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++end_pos;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(pos_, end_pos - pos_));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) return false;
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = v;
    pos_ = end_pos;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool parse_json(std::string_view text, JsonValue* out) {
  *out = JsonValue();
  JsonParser parser(text);
  if (parser.parse(out)) return true;
  *out = JsonValue();
  return false;
}

}  // namespace sora::ctl
