// Minimal read-side JSON: a recursive-descent parser into a tagged value.
//
// The repo's telemetry stack only ever *wrote* JSON (obs/json.h); the ctl
// plane adds the first consumers — sora_top parsing /statusz and the tests
// parsing exported documents — so this is the matching reader. Scope is
// exactly RFC 8259 minus fancy number formats: objects, arrays, strings
// (with \uXXXX decoded as Latin-1/UTF-8 passthrough), doubles, bools, null.
// No external dependency.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sora::ctl {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool as_bool(bool fallback = false) const {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return kind_ == Kind::kNumber ? number_ : fallback;
  }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }

  /// Object member lookup; a shared null value when absent or not an object.
  const JsonValue& operator[](const std::string& key) const;
  bool has(const std::string& key) const {
    return kind_ == Kind::kObject && object_.count(key) > 0;
  }

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parse one JSON document. Returns false (and leaves *out null) on any
/// syntax error; trailing whitespace is allowed, trailing garbage is not.
bool parse_json(std::string_view text, JsonValue* out);

}  // namespace sora::ctl
