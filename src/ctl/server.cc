#include "ctl/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/log.h"
#include "ctl/prometheus.h"

namespace sora::ctl {

namespace {

/// Read until the header terminator (plus any body bytes that rode along)
/// or the peer closes; bounded by `cap` and a short poll timeout so a
/// stalled client cannot wedge the accept loop.
bool read_request(int fd, std::size_t cap, std::string* out) {
  char buf[4096];
  while (out->size() < cap) {
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, /*timeout_ms=*/2000);
    if (pr <= 0) return !out->empty();
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) return false;
    if (n == 0) break;
    out->append(buf, static_cast<std::size_t>(n));
    if (out->find("\r\n\r\n") != std::string::npos) break;
  }
  return !out->empty();
}

void write_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t query_count(const HttpRequest& request, const char* key,
                        std::size_t fallback, std::size_t cap) {
  const auto it = request.query.find(key);
  if (it == request.query.end()) return fallback;
  const long v = std::strtol(it->second.c_str(), nullptr, 10);
  if (v <= 0) return fallback;
  return std::min<std::size_t>(static_cast<std::size_t>(v), cap);
}

}  // namespace

CtlServer::CtlServer(ServerOptions options, SnapshotBoard& board,
                     CommandQueue& queue)
    : options_(options), board_(board), queue_(queue) {}

CtlServer::~CtlServer() { stop(); }

bool CtlServer::start() {
  if (running()) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    SORA_WARN << "ctl: socket() failed: " << std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    // EADDRINUSE is the normal outcome for all-but-one experiment of a
    // parallel sweep sharing one SORA_CTL_PORT: whoever bound first serves.
    if (errno == EADDRINUSE) {
      SORA_INFO << "ctl: 127.0.0.1:" << options_.port
                << " already serving (another experiment bound it first)";
    } else {
      SORA_WARN << "ctl: cannot listen on 127.0.0.1:" << options_.port << " ("
                << std::strerror(errno) << "); introspection server disabled";
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_fds_) != 0) {
    SORA_WARN << "ctl: pipe() failed: " << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { accept_loop(); });
  SORA_INFO << "ctl: introspection server on http://127.0.0.1:" << port_
            << " (/metrics /statusz /logz /decisions /causalz /ctl)";
  return true;
}

void CtlServer::stop() {
  if (!running()) return;
  stop_requested_.store(true, std::memory_order_release);
  // Self-pipe wakes poll() even with no inbound connection.
  const char byte = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
}

void CtlServer::accept_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int pr = ::poll(fds, 2, /*timeout_ms=*/500);
    if (pr <= 0) continue;
    if (fds[1].revents != 0) break;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void CtlServer::handle_connection(int fd) {
  std::string raw;
  if (!read_request(fd, options_.max_request_bytes, &raw)) return;
  HttpRequest request;
  std::string response;
  if (!parse_http_request(raw, &request)) {
    response = make_http_response(400, "text/plain", "malformed request\n");
  } else {
    response = route(request);
  }
  write_all(fd, response);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

void CtlServer::publish_causal(std::string json) {
  const std::lock_guard<std::mutex> lock(causal_mu_);
  causal_json_ = std::move(json);
}

std::string CtlServer::causal_json() const {
  const std::lock_guard<std::mutex> lock(causal_mu_);
  return causal_json_;
}

std::string CtlServer::route(const HttpRequest& request) {
  if (request.path == "/healthz") {
    return make_http_response(200, "text/plain", "ok\n");
  }

  if (request.path == "/ctl") {
    std::string command;
    const auto it = request.query.find("cmd");
    if (it != request.query.end()) command = it->second;
    if (command.empty()) command = request.body;
    // Trim trailing newline from POSTed command lines.
    while (!command.empty() &&
           (command.back() == '\n' || command.back() == '\r')) {
      command.pop_back();
    }
    if (command.empty()) {
      return make_http_response(400, "text/plain",
                                "usage: /ctl?cmd=<command> or POST body\n");
    }
    queue_.push(command);
    status_demand_.store(true, std::memory_order_release);
    return make_http_response(202, "text/plain",
                              "queued (applies at next safepoint)\n");
  }

  if (request.method != "GET") {
    return make_http_response(405, "text/plain", "GET only\n");
  }

  if (request.path == "/statusz") {
    status_demand_.store(true, std::memory_order_release);
    const StatusSnapshot& snap = board_.read();
    return make_http_response(200, "application/json", snap.to_json() + "\n");
  }

  if (request.path == "/metrics") {
    metrics_demand_.store(true, std::memory_order_release);
    status_demand_.store(true, std::memory_order_release);
    const StatusSnapshot& snap = board_.read();
    if (!snap.has_metrics) {
      // First scrape after the demand bit flips: the safepoint has not
      // published a metrics-bearing snapshot yet. 200 with a comment keeps
      // Prometheus scrapers happy; the next scrape sees real series.
      return make_http_response(
          200, "text/plain; version=0.0.4",
          "# metrics snapshot pending (first scrape warms it up)\n");
    }
    return make_http_response(200, "text/plain; version=0.0.4",
                              to_prometheus(snap.metrics));
  }

  if (request.path == "/causalz") {
    std::string body = causal_json();
    if (body.empty()) body = "{\"profiles\":[]}";
    return make_http_response(200, "application/json", body + "\n");
  }

  if (request.path == "/logz") {
    const std::size_t n = query_count(request, "n", 100, log_ring_capacity());
    const std::vector<std::string> lines = log_ring_recent(n);
    std::string body;
    for (const std::string& line : lines) {
      body += line;
      body += '\n';
    }
    return make_http_response(200, "text/plain", body);
  }

  if (request.path == "/decisions") {
    status_demand_.store(true, std::memory_order_release);
    const std::size_t tail = query_count(request, "tail", 32, 100000);
    const StatusSnapshot& snap = board_.read();
    std::string body;
    const std::size_t count = std::min(tail, snap.decision_tail.size());
    for (std::size_t i = snap.decision_tail.size() - count;
         i < snap.decision_tail.size(); ++i) {
      body += snap.decision_tail[i];
      body += '\n';
    }
    return make_http_response(200, "application/x-ndjson", body);
  }

  return make_http_response(404, "text/plain", "unknown endpoint\n");
}

}  // namespace sora::ctl
