// The embedded introspection server: plain TCP, HTTP/1.0, one thread.
//
// Binds 127.0.0.1:<port> (port 0 = kernel-assigned, reported by port())
// and serves one request per connection from a single accept loop — no
// worker pool, which is exactly what makes the SnapshotBoard's single-reader
// contract hold. The server owns no simulation state: reads come from the
// board (written by the sim thread at safepoints), writes go into the
// command queue (drained by the sim thread at safepoints). The only shared
// flags are two demand bits the safepoint uses to decide whether assembling
// a fresh snapshot is worth anything.
//
// Endpoints:
//   GET /metrics            Prometheus text exposition of the registry
//   GET /statusz            live JSON: sim time, services, admission, knees
//   GET /logz?n=N           last N retained SORA_LOG lines (plain text)
//   GET /decisions?tail=N   decision-log tail as JSONL
//   GET /causalz            latest causal what-if profile as JSON
//   GET|POST /ctl?cmd=...   enqueue a control command (applied at the next
//                           safepoint; POST body is the command line)
//   GET /healthz            liveness probe
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "ctl/command.h"
#include "ctl/http.h"
#include "ctl/snapshot.h"

namespace sora::ctl {

struct ServerOptions {
  int port = 8080;  ///< 0 = ephemeral (bound port via CtlServer::port())
  std::size_t max_request_bytes = 64 * 1024;
};

class CtlServer {
 public:
  CtlServer(ServerOptions options, SnapshotBoard& board, CommandQueue& queue);
  ~CtlServer();

  CtlServer(const CtlServer&) = delete;
  CtlServer& operator=(const CtlServer&) = delete;

  /// Bind + listen + spawn the accept thread. Returns false (with a log
  /// line) when the port is unavailable; the ctl plane stays functional
  /// without a server, so a failed bind never aborts an experiment.
  bool start();
  /// Stop accepting, join the thread. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound port (differs from options.port when it was 0).
  int port() const { return port_; }

  /// True when a /statusz, /decisions or /ctl request arrived since the
  /// last consume; the safepoint publishes a fresh snapshot only on demand,
  /// so an idle server costs the sim thread nothing.
  bool consume_status_demand() {
    return status_demand_.exchange(false, std::memory_order_acq_rel);
  }
  /// Same, for /metrics (tracked separately: the full registry snapshot
  /// with its sketch percentile queries is the expensive part).
  bool consume_metrics_demand() {
    return metrics_demand_.exchange(false, std::memory_order_acq_rel);
  }

  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Publish (replace) the causal-profile JSON served at /causalz. Unlike
  /// the snapshot board, this is not safepoint data: the causal profiler
  /// publishes once per profiling round from the main thread, after its
  /// counterfactual fan completes, so a plain mutex-guarded string is the
  /// right tool. Thread-safe.
  void publish_causal(std::string json);
  /// Current /causalz body ("" when nothing published yet).
  std::string causal_json() const;

 private:
  void accept_loop();
  void handle_connection(int fd);
  std::string route(const HttpRequest& request);

  ServerOptions options_;
  SnapshotBoard& board_;
  CommandQueue& queue_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: unblocks poll() on stop()
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> status_demand_{false};
  std::atomic<bool> metrics_demand_{false};
  std::atomic<std::uint64_t> requests_served_{0};

  mutable std::mutex causal_mu_;
  std::string causal_json_;
};

}  // namespace sora::ctl
