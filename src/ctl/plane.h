// The ctl plane: glue between a running experiment and the CtlServer.
//
// One CtlPlane owns the SnapshotBoard, the CommandQueue and (optionally)
// the embedded server, and installs a periodic *safepoint* event into the
// simulator. The safepoint is the only place runtime commands touch
// simulation state:
//
//   sim thread                         server thread
//   ----------                         -------------
//   ... events ...                     /ctl  -> queue.push(cmd)
//   safepoint:                         /statusz -> demand bit + board.read()
//     drain queue, apply commands
//     (each application appends a controller="ctl" decision record
//      carrying the verbatim command text)
//     publish snapshot iff demanded
//   ... events ...
//
// Because commands apply only at safepoints, an applied command is fully
// determined by (safepoint sim time, command text) — which the decision log
// records. Re-running the experiment with set_script(commands_from_log(log))
// re-applies the identical text at the identical safepoints and reproduces
// the run byte-for-byte, even though the original commands arrived over TCP
// at arbitrary wall times.
//
// Overhead: with no client connected, a safepoint is one empty try_lock
// drain and two relaxed atomic reads — snapshots are assembled only while a
// demand bit set by an actual request is pending, so the hot path stays
// within the <1% events/sec budget even with a 10 Hz dashboard attached.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "ctl/command.h"
#include "ctl/server.h"
#include "ctl/snapshot.h"
#include "sim/simulator.h"

namespace sora {
class Application;
class FaultInjector;
class LatencyRecorder;
class SoraFramework;
namespace obs {
class DecisionLog;
class SloMonitor;
}  // namespace obs
}  // namespace sora

namespace sora::ctl {

struct CtlOptions {
  /// TCP port for the embedded server (0 = kernel-assigned; query
  /// server().port()). Ignored when start_server is false.
  int port = 8080;
  /// false = headless plane: safepoints, scripts and replay still work, but
  /// no socket is opened (replay runs and parity tests use this).
  bool start_server = true;
  /// Safepoint period. Commands apply, and snapshots publish, at this
  /// granularity. The safepoint event itself never draws randomness and
  /// never mutates state unless a command is pending, so enabling the plane
  /// does not change simulation results.
  SimTime safepoint_period = sec(1);
  /// Decision-log records retained in the snapshot for /decisions.
  std::size_t decision_tail_cap = 256;
};

class CtlPlane {
 public:
  /// Everything the safepoint reads (snapshot assembly) or steers (command
  /// application). app/sim are required; the rest may be null/empty.
  struct Hooks {
    Simulator* sim = nullptr;
    Application* app = nullptr;
    LatencyRecorder* recorder = nullptr;
    obs::DecisionLog* decision_log = nullptr;
    obs::SloMonitor* slo_monitor = nullptr;
    FaultInjector* fault_injector = nullptr;
    std::vector<SoraFramework*> frameworks;
  };

  CtlPlane(CtlOptions options, Hooks hooks);
  ~CtlPlane();

  CtlPlane(const CtlPlane&) = delete;
  CtlPlane& operator=(const CtlPlane&) = delete;

  /// Schedule the safepoint tick and (per options) start the server. A
  /// failed bind logs a warning and leaves the plane headless; it never
  /// fails the experiment. Call once, before the run.
  void start();
  /// Stop the server and cancel the tick. Idempotent; also runs at
  /// destruction.
  void stop();

  /// The fault injector is armed after the plane in start_all(); the
  /// harness back-fills it here.
  void set_fault_injector(FaultInjector* injector) {
    hooks_.fault_injector = injector;
  }

  /// Replay script: apply each command at the first safepoint whose sim
  /// time reaches command.at (commands must be sorted by at — which
  /// commands_from_log output is). Replaces any previous script.
  void set_script(std::vector<TimedCommand> script);

  /// Extract the replay script from a recorded run's decision log: every
  /// controller=="ctl" applied command, in order.
  static std::vector<TimedCommand> commands_from_log(
      const obs::DecisionLog& log);

  /// Assemble and publish a snapshot now, regardless of demand (end-of-run
  /// final state; tests).
  void publish_now(bool with_metrics);

  /// Forward a causal-profile JSON document to the server's /causalz
  /// endpoint. No-op on a headless plane. Thread-safe (the server side
  /// guards the string); normally called from the main thread after a
  /// profiling round.
  void publish_causal(const std::string& json) {
    if (server_ != nullptr) server_->publish_causal(json);
  }

  // -- introspection ----------------------------------------------------------

  CtlServer* server() { return server_.get(); }
  SnapshotBoard& board() { return board_; }
  CommandQueue& queue() { return queue_; }
  std::uint64_t safepoints() const { return safepoints_; }
  std::uint64_t commands_applied() const { return commands_applied_; }
  std::uint64_t commands_rejected() const { return commands_rejected_; }
  bool paused() const { return paused_; }

  /// One safepoint, immediately (tests; normally driven by the periodic
  /// event).
  void safepoint();

 private:
  /// Apply one command line at the current sim time; records the outcome.
  void apply_command(const std::string& text);
  void record(const std::string& command, const std::string& target,
              const char* action, std::string reason);
  StatusSnapshot assemble(bool with_metrics);
  /// Drain + apply live commands, then script commands due by now.
  void apply_pending();
  /// Publish iff a demand bit is pending (or `force`).
  void publish_on_demand(bool force);

  CtlOptions options_;
  Hooks hooks_;

  SnapshotBoard board_;
  CommandQueue queue_;
  std::unique_ptr<CtlServer> server_;
  EventHandle tick_;

  std::vector<TimedCommand> script_;
  std::size_t script_next_ = 0;

  bool started_ = false;
  bool paused_ = false;
  std::uint64_t safepoints_ = 0;
  std::uint64_t commands_applied_ = 0;
  std::uint64_t commands_rejected_ = 0;

  // Wall-clock sampling for the events/sec figure in /statusz.
  std::uint64_t rate_events_base_ = 0;
  std::uint64_t rate_wall_ns_base_ = 0;
  double last_events_per_sec_ = 0.0;
};

}  // namespace sora::ctl
