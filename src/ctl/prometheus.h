// Prometheus text exposition (format version 0.0.4) of a MetricsSnapshot.
//
// The registry's naming convention (dotted families like "pool.queue_depth",
// service names with dashes) is not valid Prometheus, so every name is
// sanitized on the way out: metric and label names map any character outside
// [a-zA-Z0-9_:] (names) / [a-zA-Z0-9_] (labels) to '_', and a leading digit
// gains a '_' prefix. Label values keep their exact bytes via the official
// escaping (backslash, double-quote, newline). Families render as:
//
//   Counter   -> `# TYPE f_total counter`   one sample per series
//   Gauge     -> `# TYPE f gauge`           one sample per series
//   Histogram -> `# TYPE f summary`         p50/p90/p99 quantile samples
//                                           plus f_sum and f_count
//
// Distinct registry families that collide after sanitization are merged into
// one exposition family; if their kinds disagree the family degrades to
// `untyped` (never two TYPE lines for one name — the format forbids it).
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace sora::ctl {

/// Map to a valid exposition metric name: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string sanitize_metric_name(std::string_view name);

/// Map to a valid label name: [a-zA-Z_][a-zA-Z0-9_]*. Leading "__" is
/// reserved by Prometheus, so a sanitized name never starts with it.
std::string sanitize_label_name(std::string_view name);

/// Escape a label value for `label="<value>"`: \ -> \\, " -> \", LF -> \n.
std::string escape_label_value(std::string_view value);

/// Render the whole snapshot in exposition text format.
void write_prometheus(const obs::MetricsSnapshot& snap, std::ostream& os);
std::string to_prometheus(const obs::MetricsSnapshot& snap);

}  // namespace sora::ctl
