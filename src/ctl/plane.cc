#include "ctl/plane.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>

#include "admission/controller.h"
#include "common/log.h"
#include "core/sora.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "metrics/latency_recorder.h"
#include "obs/decision_log.h"
#include "obs/slo_monitor.h"
#include "svc/application.h"
#include "svc/instance.h"
#include "svc/service.h"

namespace sora::ctl {

namespace {

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

CtlPlane::CtlPlane(CtlOptions options, Hooks hooks)
    : options_(options), hooks_(std::move(hooks)) {}

CtlPlane::~CtlPlane() { stop(); }

void CtlPlane::start() {
  if (started_) return;
  started_ = true;
  tick_ = hooks_.sim->schedule_periodic(options_.safepoint_period,
                                        [this] { safepoint(); });
  if (options_.start_server) {
    server_ = std::make_unique<CtlServer>(ServerOptions{options_.port},
                                          board_, queue_);
    server_->start();  // bind failure already logged; plane stays headless
  }
}

void CtlPlane::stop() {
  if (server_ != nullptr) server_->stop();
  tick_.cancel();
}

void CtlPlane::set_script(std::vector<TimedCommand> script) {
  script_ = std::move(script);
  script_next_ = 0;
}

std::vector<TimedCommand> CtlPlane::commands_from_log(
    const obs::DecisionLog& log) {
  std::vector<TimedCommand> out;
  for (const obs::ControlDecisionRecord& rec : log.records()) {
    if (rec.controller != "ctl" || rec.command.empty()) continue;
    out.push_back(TimedCommand{rec.at, rec.command});
  }
  return out;
}

void CtlPlane::safepoint() {
  ++safepoints_;
  apply_pending();
  while (paused_) {
    if (server_ == nullptr || !server_->running()) {
      // Headless (or the bind failed): nothing can ever deliver a resume,
      // so a pause would hang the run. A scripted pause is normally undone
      // by a scripted resume at the same safepoint before we get here.
      SORA_WARN << "ctl: paused with no server attached; resuming";
      paused_ = false;
      break;
    }
    publish_on_demand(false);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    for (const std::string& cmd : queue_.drain()) apply_command(cmd);
  }
  publish_on_demand(false);
}

void CtlPlane::apply_pending() {
  for (const std::string& cmd : queue_.drain()) apply_command(cmd);
  const SimTime now = hooks_.sim->now();
  while (script_next_ < script_.size() && script_[script_next_].at <= now) {
    apply_command(script_[script_next_].text);
    ++script_next_;
  }
}

void CtlPlane::apply_command(const std::string& text) {
  const std::vector<std::string> tok = tokenize_command(text);
  if (tok.empty()) {
    record(text, "", "rejected", "empty command");
    return;
  }
  const SimTime now = hooks_.sim->now();

  if (tok[0] == "loglevel") {
    LogLevel level;
    if (tok.size() != 2 || !parse_log_level(tok[1], &level)) {
      record(text, "", "rejected", "usage: loglevel <debug|info|warn|error|off>");
      return;
    }
    set_log_level(level);
    record(text, "", "applied", "log level set to " + tok[1]);
    return;
  }

  if (tok[0] == "headroom" || tok[0] == "cap") {
    double value = 0.0;
    if (tok.size() != 3 || !parse_double(tok[2], &value) || value <= 0.0) {
      record(text, "", "rejected",
             "usage: " + tok[0] + " <service> <positive number>");
      return;
    }
    Service* svc = hooks_.app->service(tok[1]);
    if (svc == nullptr || svc->admission() == nullptr) {
      record(text, tok[1], "rejected",
             "no admission controller on service '" + tok[1] + "'");
      return;
    }
    if (tok[0] == "headroom") {
      svc->admission()->set_knee_headroom(value, now);
      record(text, tok[1], "applied", "knee headroom set to " + tok[2]);
    } else {
      svc->admission()->set_limit_bounds(0.0, value, now);
      record(text, tok[1], "applied", "admission max limit set to " + tok[2]);
    }
    return;
  }

  if (tok[0] == "fault") {
    if (tok.size() < 3 || tok[1] != "crash") {
      record(text, "", "rejected", "usage: fault crash <service> [downtime_sec]");
      return;
    }
    if (hooks_.fault_injector == nullptr) {
      record(text, tok[2], "rejected",
             "no fault injector armed (enable_faults before the run)");
      return;
    }
    double downtime = 30.0;
    if (tok.size() >= 4 && (!parse_double(tok[3], &downtime) || downtime < 0)) {
      record(text, tok[2], "rejected", "bad downtime '" + tok[3] + "'");
      return;
    }
    FaultEvent ev;
    ev.kind = FaultKind::kCrashInstance;
    ev.at = now;
    ev.service = tok[2];
    ev.duration = sec(downtime);
    // The injector appends its own "crash"/"crash_refused" record; this one
    // documents who asked.
    record(text, tok[2], "applied", "crash triggered");
    hooks_.fault_injector->trigger(ev);
    return;
  }

  if (tok[0] == "pause") {
    if (tok.size() != 1) {
      record(text, "", "rejected", "pause takes no arguments");
      return;
    }
    paused_ = true;
    record(text, "", "applied", "simulation paused (wall clock keeps going)");
    return;
  }

  if (tok[0] == "resume") {
    if (tok.size() != 1) {
      record(text, "", "rejected", "resume takes no arguments");
      return;
    }
    paused_ = false;
    record(text, "", "applied", "simulation resumed");
    return;
  }

  record(text, "", "rejected", "unknown command '" + tok[0] + "'");
}

void CtlPlane::record(const std::string& command, const std::string& target,
                      const char* action, std::string reason) {
  const bool applied = std::string_view(action) == "applied";
  if (applied) {
    ++commands_applied_;
    SORA_INFO << "ctl: applied '" << command << "' (" << reason << ")";
  } else {
    ++commands_rejected_;
    SORA_WARN << "ctl: rejected '" << command << "' (" << reason << ")";
  }
  if (hooks_.decision_log == nullptr) return;
  obs::ControlDecisionRecord rec;
  rec.at = hooks_.sim->now();
  rec.controller = "ctl";
  rec.round = safepoints_;
  rec.target = target;
  rec.action = action;
  rec.reason = std::move(reason);
  rec.command = command;
  hooks_.decision_log->append(std::move(rec));
}

void CtlPlane::publish_on_demand(bool force) {
  bool with_metrics = force;
  bool want = force;
  if (server_ != nullptr) {
    // Order matters: consuming metrics demand must also count as status
    // demand (a /metrics request wants the freshest registry state).
    if (server_->consume_metrics_demand()) {
      with_metrics = true;
      want = true;
    }
    if (server_->consume_status_demand()) want = true;
  }
  if (!want) return;
  board_.publish(assemble(with_metrics));
}

void CtlPlane::publish_now(bool with_metrics) {
  board_.publish(assemble(with_metrics));
}

StatusSnapshot CtlPlane::assemble(bool with_metrics) {
  StatusSnapshot snap;
  snap.sim_time = hooks_.sim->now();
  snap.paused = paused_;
  snap.log_level = std::string(log_level_name(log_level()));
  snap.events_executed = hooks_.sim->events_executed();
  snap.events_pending = hooks_.sim->events_pending();

  // Wall-rate between publishes; first publish reports 0.
  const std::uint64_t now_ns = wall_ns();
  if (rate_wall_ns_base_ != 0 && now_ns > rate_wall_ns_base_) {
    const double dt = static_cast<double>(now_ns - rate_wall_ns_base_) / 1e9;
    if (dt >= 0.01) {
      last_events_per_sec_ =
          static_cast<double>(snap.events_executed - rate_events_base_) / dt;
      rate_events_base_ = snap.events_executed;
      rate_wall_ns_base_ = now_ns;
    }
  } else {
    rate_events_base_ = snap.events_executed;
    rate_wall_ns_base_ = now_ns;
  }
  snap.events_per_sec = last_events_per_sec_;

  snap.injected = hooks_.app->injected();
  snap.completed = hooks_.app->completed();
  if (hooks_.recorder != nullptr) {
    snap.shed = hooks_.recorder->shed();
    if (hooks_.recorder->count() > 0) {
      snap.e2e_p99_ms = hooks_.recorder->percentile_ms(99.0);
    }
  }
  snap.commands_applied = commands_applied_;
  snap.commands_rejected = commands_rejected_;

  // Last-good knee per service from the soft-resource frameworks (entry
  // knobs win over edge knobs when both are managed).
  std::map<std::string, double> knees;
  for (SoraFramework* fw : hooks_.frameworks) {
    if (fw == nullptr) continue;
    for (const SoraFramework::KnobKnee& k : fw->current_knees()) {
      if (k.service.empty()) continue;
      const bool entry = k.label == k.service + "/threads";
      if (entry || knees.find(k.service) == knees.end()) {
        knees[k.service] = k.knee_concurrency;
      }
    }
  }

  obs::MetricsRegistry& metrics = hooks_.app->metrics();
  for (const auto& svc_ptr : hooks_.app->services()) {
    const Service& svc = *svc_ptr;
    ServiceStatus s;
    s.name = svc.name();
    s.replicas = svc.active_replicas();
    s.cpu_limit_cores = svc.cpu_limit();
    s.threads_capacity = svc.entry_capacity();
    s.threads_in_use = svc.entry_in_use();
    for (std::size_t i = 0; i < svc.total_replicas(); ++i) {
      const ServiceInstance& inst = svc.instance(i);
      if (inst.active()) {
        s.queue_depth += static_cast<int>(inst.entry_pool().waiting());
      }
    }
    s.completions = svc.completions();
    if (const obs::HistogramMetric* h = metrics.find_histogram(
            "rpc.latency_us", {{"service", svc.name()}})) {
      if (h->count() > 0) s.p99_ms = h->percentile(99.0) / 1000.0;
    }
    const auto knee_it = knees.find(svc.name());
    if (knee_it != knees.end()) s.knee = knee_it->second;
    if (const AdmissionController* adm = svc.admission()) {
      s.has_admission = true;
      s.admission_policy = to_string(adm->policy());
      s.admission_limit = adm->current_limit();
      s.admission_in_flight = adm->in_flight();
      s.admitted = adm->admitted();
      s.shed = adm->shed();
      s.admission_knee = adm->knee();
    }
    snap.services.push_back(std::move(s));
  }

  if (hooks_.slo_monitor != nullptr) {
    snap.episodes_total = hooks_.slo_monitor->episodes().size();
    for (const obs::ViolationEpisode& ep : hooks_.slo_monitor->episodes()) {
      if (!ep.open) continue;
      EpisodeStatus e;
      e.entity = ep.entity;
      e.start = ep.start;
      e.peak_fast_burn = ep.peak_fast_burn;
      snap.active_episodes.push_back(std::move(e));
    }
  }

  if (hooks_.fault_injector != nullptr) {
    const FaultInjector& inj = *hooks_.fault_injector;
    snap.faults.armed = inj.armed();
    snap.faults.events_fired = inj.events_fired();
    snap.faults.crashes = inj.crashes();
    snap.faults.restarts = inj.restarts();
    snap.faults.cpu_steps = inj.cpu_steps();
    snap.faults.stalls = inj.stalls();
  }

  if (hooks_.decision_log != nullptr) {
    const auto& records = hooks_.decision_log->records();
    snap.decisions_total = records.size();
    const std::size_t tail =
        std::min(records.size(), options_.decision_tail_cap);
    snap.decision_tail.reserve(tail);
    for (std::size_t i = records.size() - tail; i < records.size(); ++i) {
      snap.decision_tail.push_back(records[i].to_json());
    }
  }

  if (with_metrics) {
    // Refresh the gauges services only push on publish, then snapshot the
    // whole registry (the expensive part: sketch percentile queries per
    // histogram — which is why it is gated on /metrics demand).
    hooks_.app->publish_metrics();
    snap.metrics = metrics.snapshot();
    snap.has_metrics = true;
  }
  return snap;
}

}  // namespace sora::ctl
