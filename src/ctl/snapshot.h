// Shared state between the simulation thread and the ctl server thread.
//
// The sim thread is the single writer: at each safepoint it assembles a
// StatusSnapshot and publishes it through a SnapshotBoard. The server thread
// is the single reader. The board is a wait-free single-writer/single-reader
// triple buffer: three slots, a packed atomic holding the index of the most
// recently published slot plus a freshness bit. The writer always writes a
// slot the reader is provably not touching, so non-trivial members
// (strings, vectors) are safe without torn reads, and neither side ever
// blocks or spins — publishing costs the snapshot assembly plus one atomic
// exchange, which is how the <1% hot-path overhead budget is met. Every
// snapshot carries a monotonically increasing sequence number so readers can
// tell a fresh publish from a re-read.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"

namespace sora::ctl {

/// Per-service live state surfaced by /statusz and sora_top.
struct ServiceStatus {
  std::string name;
  int replicas = 0;
  double cpu_limit_cores = 0.0;
  int threads_capacity = 0;  ///< aggregate entry-pool size
  int threads_in_use = 0;
  int queue_depth = 0;  ///< entry-pool waiters across active replicas
  std::uint64_t completions = 0;
  double p99_ms = 0.0;  ///< RPC latency sketch p99 (NaN before first sample)

  // Admission controller state (has_admission gates the rest).
  bool has_admission = false;
  std::string admission_policy;
  double admission_limit = 0.0;
  int admission_in_flight = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  double admission_knee = 0.0;

  // Soft-resource knee estimate for this service's entry knob (0 = none).
  double knee = 0.0;
};

/// One open SLO burn episode.
struct EpisodeStatus {
  std::string entity;
  SimTime start = 0;
  double peak_fast_burn = 0.0;
};

/// Fault-injector outcome counters (zeros when no injector armed).
struct FaultStatus {
  bool armed = false;
  std::uint64_t events_fired = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t cpu_steps = 0;
  std::uint64_t stalls = 0;
};

struct StatusSnapshot {
  std::uint64_t seq = 0;  ///< publish sequence number (board-stamped)
  SimTime sim_time = 0;
  bool paused = false;
  std::string log_level;
  std::uint64_t events_executed = 0;
  std::uint64_t events_pending = 0;
  double events_per_sec = 0.0;  ///< wall-clock rate between the last publishes

  std::uint64_t injected = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  double e2e_p99_ms = 0.0;

  std::uint64_t commands_applied = 0;
  std::uint64_t commands_rejected = 0;

  std::vector<ServiceStatus> services;
  std::vector<EpisodeStatus> active_episodes;
  std::size_t episodes_total = 0;
  FaultStatus faults;

  /// Full registry state for /metrics (may be empty when the publish was
  /// driven by a /statusz poll only — metrics demand is tracked separately
  /// so a 10 Hz dashboard never pays for sketch percentile queries).
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;

  /// Tail of the decision log, pre-rendered as JSONL lines (bounded).
  std::vector<std::string> decision_tail;
  std::size_t decisions_total = 0;

  /// Render the /statusz JSON document (everything except metrics/tail).
  std::string to_json() const;
};

/// Wait-free SPSC triple buffer. One writer thread calls publish(); one
/// reader thread calls read(). (Both sides are single-threaded by design:
/// the sim loop writes, the ctl server's accept loop reads.)
class SnapshotBoard {
 public:
  /// Publish a snapshot (writer side). Stamps snapshot.seq.
  void publish(StatusSnapshot snapshot) {
    snapshot.seq = ++publish_seq_;
    slots_[write_idx_] = std::move(snapshot);
    const unsigned prev =
        state_.exchange(write_idx_ | kFresh, std::memory_order_acq_rel);
    write_idx_ = prev & kIdxMask;
  }

  /// Latest snapshot (reader side); seq 0 until the first publish. The
  /// reference stays valid until the next read() call on this board.
  const StatusSnapshot& read() {
    const unsigned cur = state_.load(std::memory_order_acquire);
    if (cur & kFresh) {
      const unsigned prev =
          state_.exchange(read_idx_, std::memory_order_acq_rel);
      read_idx_ = prev & kIdxMask;
    }
    return slots_[read_idx_];
  }

  std::uint64_t published() const { return publish_seq_; }

 private:
  static constexpr unsigned kIdxMask = 0x3;
  static constexpr unsigned kFresh = 0x4;

  // {write_idx_, state_ & kIdxMask, read_idx_} is always a permutation of
  // {0, 1, 2}: the writer only ever takes the slot it got back from the
  // exchange, which is never the reader's current slot.
  StatusSnapshot slots_[3];
  std::atomic<unsigned> state_{1};
  unsigned write_idx_ = 2;
  unsigned read_idx_ = 0;  // slot 0 starts as the reader's (empty) snapshot
  std::uint64_t publish_seq_ = 0;  // writer-private
};

}  // namespace sora::ctl
