#include "ctl/command.h"

#include <cctype>

namespace sora::ctl {

std::vector<std::string> tokenize_command(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace sora::ctl
