#include "ctl/prometheus.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

namespace sora::ctl {

namespace {

bool name_char_ok(char c, bool first) {
  const bool alpha =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  if (first) return alpha;
  return alpha || (c >= '0' && c <= '9');
}

bool label_char_ok(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  if (first) return alpha;
  return alpha || (c >= '0' && c <= '9');
}

std::string sanitize(std::string_view name, bool (*ok)(char, bool)) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty()) return "_";
  if (!ok(name.front(), true) && ok(name.front(), false)) out += '_';
  for (char c : name) out += ok(c, false) ? c : '_';
  return out;
}

/// Exposition float: decimal or scientific, plus the special NaN/Inf forms.
std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Render `name{labels...}` with optional extra (label, value) appended.
std::string sample_name(const std::string& family,
                        const obs::MetricLabels& labels,
                        const char* extra_label = nullptr,
                        const char* extra_value = nullptr) {
  std::string out = family;
  if (labels.empty() && extra_label == nullptr) return out;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += sanitize_label_name(k);
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (extra_label != nullptr) {
    if (!first) out += ',';
    out += extra_label;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

struct Family {
  obs::MetricKind kind = obs::MetricKind::kGauge;
  bool mixed_kinds = false;
  std::vector<const obs::SeriesSnapshot*> series;
};

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  return sanitize(name, name_char_ok);
}

std::string sanitize_label_name(std::string_view name) {
  std::string out = sanitize(name, label_char_ok);
  // "__"-prefixed label names are reserved for Prometheus internals.
  if (out.size() >= 2 && out[0] == '_' && out[1] == '_') out = "x" + out;
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void write_prometheus(const obs::MetricsSnapshot& snap, std::ostream& os) {
  // Group by sanitized family name so collisions share one TYPE line.
  std::map<std::string, Family> families;
  for (const obs::SeriesSnapshot& s : snap.series) {
    std::string base = sanitize_metric_name(s.name);
    if (s.kind == obs::MetricKind::kCounter) {
      // Counter convention: families end in _total (append once).
      if (base.size() < 6 || base.compare(base.size() - 6, 6, "_total") != 0) {
        base += "_total";
      }
    }
    Family& fam = families[base];
    if (fam.series.empty()) {
      fam.kind = s.kind;
    } else if (fam.kind != s.kind) {
      fam.mixed_kinds = true;
    }
    fam.series.push_back(&s);
  }

  for (const auto& [name, fam] : families) {
    const char* type = "untyped";
    if (!fam.mixed_kinds) {
      switch (fam.kind) {
        case obs::MetricKind::kCounter:
          type = "counter";
          break;
        case obs::MetricKind::kGauge:
          type = "gauge";
          break;
        case obs::MetricKind::kHistogram:
          type = "summary";
          break;
      }
    }
    os << "# TYPE " << name << ' ' << type << '\n';
    for (const obs::SeriesSnapshot* s : fam.series) {
      if (!fam.mixed_kinds && s->kind == obs::MetricKind::kHistogram) {
        os << sample_name(name, s->labels, "quantile", "0.5") << ' '
           << format_value(s->p50) << '\n';
        os << sample_name(name, s->labels, "quantile", "0.99") << ' '
           << format_value(s->p99) << '\n';
        os << sample_name(name, s->labels, "quantile", "1") << ' '
           << format_value(s->max) << '\n';
        os << sample_name(name + "_sum", s->labels) << ' '
           << format_value(s->mean * static_cast<double>(s->count)) << '\n';
        os << sample_name(name + "_count", s->labels) << ' '
           << format_value(static_cast<double>(s->count)) << '\n';
      } else {
        // Counters/gauges expose their scalar; a histogram trapped in a
        // mixed-kind family degrades to its observation count.
        os << sample_name(name, s->labels) << ' ' << format_value(s->value)
           << '\n';
      }
    }
  }
}

std::string to_prometheus(const obs::MetricsSnapshot& snap) {
  std::ostringstream os;
  write_prometheus(snap, os);
  return os.str();
}

}  // namespace sora::ctl
