#include "ctl/snapshot.h"

#include "obs/json.h"

namespace sora::ctl {

std::string StatusSnapshot::to_json() const {
  obs::JsonObject o;
  o.field("seq", seq);
  o.field("sim_time_sec", to_sec(sim_time));
  o.field("paused", paused);
  o.field("log_level", log_level);
  o.field("events_executed", events_executed);
  o.field("events_pending", events_pending);
  o.field("events_per_sec", events_per_sec);
  o.field("injected", injected);
  o.field("completed", completed);
  o.field("shed", shed);
  o.field("e2e_p99_ms", e2e_p99_ms);
  o.field("commands_applied", commands_applied);
  o.field("commands_rejected", commands_rejected);
  o.field("decisions_total", static_cast<std::uint64_t>(decisions_total));
  o.field("episodes_total", static_cast<std::uint64_t>(episodes_total));

  std::string services_json = "[";
  for (std::size_t i = 0; i < services.size(); ++i) {
    const ServiceStatus& s = services[i];
    if (i > 0) services_json += ',';
    obs::JsonObject so;
    so.field("name", s.name);
    so.field("replicas", s.replicas);
    so.field("cpu_limit_cores", s.cpu_limit_cores);
    so.field("threads_capacity", s.threads_capacity);
    so.field("threads_in_use", s.threads_in_use);
    so.field("queue_depth", s.queue_depth);
    so.field("completions", s.completions);
    so.field("p99_ms", s.p99_ms);
    so.field("knee", s.knee);
    if (s.has_admission) {
      obs::JsonObject ao;
      ao.field("policy", s.admission_policy);
      ao.field("limit", s.admission_limit);
      ao.field("in_flight", s.admission_in_flight);
      ao.field("admitted", s.admitted);
      ao.field("shed", s.shed);
      ao.field("knee", s.admission_knee);
      so.raw("admission", ao.str());
    }
    services_json += so.str();
  }
  services_json += ']';
  o.raw("services", services_json);

  std::string episodes_json = "[";
  for (std::size_t i = 0; i < active_episodes.size(); ++i) {
    const EpisodeStatus& e = active_episodes[i];
    if (i > 0) episodes_json += ',';
    obs::JsonObject eo;
    eo.field("entity", e.entity);
    eo.field("start_sec", to_sec(e.start));
    eo.field("peak_fast_burn", e.peak_fast_burn);
    episodes_json += eo.str();
  }
  episodes_json += ']';
  o.raw("active_episodes", episodes_json);

  obs::JsonObject fo;
  fo.field("armed", faults.armed);
  fo.field("events_fired", faults.events_fired);
  fo.field("crashes", faults.crashes);
  fo.field("restarts", faults.restarts);
  fo.field("cpu_steps", faults.cpu_steps);
  fo.field("stalls", faults.stalls);
  o.raw("faults", fo.str());

  return o.str();
}

}  // namespace sora::ctl
