// Runtime control commands and the queue that carries them to a safepoint.
//
// Commands are line-oriented text (the same grammar over HTTP /ctl and in
// replay scripts):
//
//   loglevel <debug|info|warn|error|off>     set the global SORA_LOG level
//   headroom <service> <factor>              knee-coupled admission headroom
//   cap <service> <max_limit>                admission policy max limit
//   fault crash <service> [downtime_sec]     crash one replica, restore later
//   pause                                    freeze sim time (wall keeps going)
//   resume                                   leave the pause loop
//
// The server thread only ever *enqueues*; commands are applied exclusively
// by the sim thread at event-loop safepoints (the ctl plane's periodic
// tick), so a command can never observe — or mutate — mid-event state. Every
// applied command lands in the decision log stamped with the safepoint's sim
// time, which is what makes a recorded run replayable byte-for-byte: the
// replay script re-applies the same text at the same safepoint.
#pragma once

#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/time.h"

namespace sora::ctl {

/// A command scheduled for (or recorded at) an absolute sim time.
struct TimedCommand {
  SimTime at = 0;
  std::string text;
};

/// MPSC queue: any thread may push; the sim thread drains at safepoints.
/// A plain mutex suffices — the hot path never touches the queue (draining
/// happens once per safepoint period and the common case is empty, one
/// try_lock away).
class CommandQueue {
 public:
  void push(std::string command) {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(command));
  }

  /// All pending commands in arrival order; empties the queue. Returns an
  /// empty vector without blocking when the queue is contended (the next
  /// safepoint will pick the commands up — arrival wall time is not
  /// sim-meaningful, so the delay is invisible).
  std::vector<std::string> drain() {
    std::vector<std::string> out;
    const std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
    if (!lock.owns_lock()) return out;
    out.assign(std::make_move_iterator(queue_.begin()),
               std::make_move_iterator(queue_.end()));
    queue_.clear();
    return out;
  }

  bool empty() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return queue_.empty();
  }

 private:
  mutable std::mutex mu_;
  std::deque<std::string> queue_;
};

/// Split a command line into whitespace-separated tokens.
std::vector<std::string> tokenize_command(const std::string& line);

}  // namespace sora::ctl
