// Line-oriented HTTP/1.0 — just enough for the ctl endpoints and sora_top.
//
// No keep-alive, no chunking, no TLS: one request per connection, response
// ends at close. Parsing is deliberately forgiving (curl, browsers and the
// bundled client all speak more than we need) but bounded: request lines and
// header blocks are size-capped so a misbehaving peer cannot balloon memory.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace sora::ctl {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< decoded path without the query string
  std::map<std::string, std::string> query;  ///< decoded key -> value
  std::string body;
};

/// Parse "GET /decisions?tail=5 HTTP/1.0" + headers + optional body out of a
/// raw request buffer. Returns false on malformed input.
bool parse_http_request(std::string_view raw, HttpRequest* out);

/// Percent-decode a URL component (also maps '+' to space).
std::string url_decode(std::string_view s);

/// Serialize a full response with Content-Length and Connection: close.
std::string make_http_response(int status, std::string_view content_type,
                               std::string_view body);

/// Blocking one-shot client: GET `path` from host:port, return the response
/// body. Returns false on connect/read failure or non-2xx status. Used by
/// sora_top and the tests (no external HTTP dependency).
bool http_get(const std::string& host, int port, const std::string& path,
              std::string* body, int* status = nullptr);

}  // namespace sora::ctl
