#include "trace/tracer.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <vector>

namespace sora {

TraceId Tracer::begin_trace(int request_class, SimTime now) {
  MaybeLock lock(mu_, thread_safe_);
  const TraceId id = trace_ids_.next();
  OpenTrace open;
  open.trace.id = id;
  open.trace.request_class = request_class;
  open.trace.start = now;
  open_.emplace(id.value(), std::move(open));
  return id;
}

SpanId Tracer::start_span(TraceId trace, SpanId parent, ServiceId service,
                          InstanceId instance, int request_class,
                          SimTime arrival) {
  MaybeLock lock(mu_, thread_safe_);
  auto it = open_.find(trace.value());
  assert(it != open_.end() && "start_span on unknown trace");
  OpenTrace& open = it->second;

  const SpanId id = span_ids_.next();
  Span s;
  s.id = id;
  s.trace = trace;
  s.parent = parent;
  s.service = service;
  s.instance = instance;
  s.request_class = request_class;
  s.arrival = arrival;
  s.admitted = arrival;
  s.departure = arrival;
  open.trace.spans.push_back(std::move(s));
  ++open.open_spans;
  return id;
}

Span& Tracer::find_span(OpenTrace& open, SpanId id) {
  auto& spans = open.trace.spans;
  for (std::size_t i = spans.size(); i-- > 0;) {
    if (spans[i].id == id) return spans[i];
  }
  assert(false && "span lookup on unknown span");
  return spans.front();
}

Span& Tracer::span(TraceId trace, SpanId id) {
  MaybeLock lock(mu_, thread_safe_);
  auto it = open_.find(trace.value());
  assert(it != open_.end() && "span() on unknown trace");
  return find_span(it->second, id);
}

void Tracer::canonicalize(Trace& t) {
  // Raw span ids come from a shared counter and spans sit in creation
  // order — both depend on how shard lanes interleaved. The call tree does
  // not: parents record their ChildCalls in issue order. Rewrite the trace
  // into that intrinsic form: spans in depth-first call order, ids = 1-based
  // DFS position.
  if (t.spans.empty()) return;
  const std::size_t n = t.spans.size();
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) by_id.emplace(t.spans[i].id.value(), i);

  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> placed(n, false);
  // Iterative DFS; the explicit stack holds (span index, next child).
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  stack.emplace_back(0, 0);
  order.push_back(0);
  placed[0] = true;
  while (!stack.empty()) {
    auto& [idx, child] = stack.back();
    const Span& s = t.spans[idx];
    if (child >= s.children.size()) {
      stack.pop_back();
      continue;
    }
    const std::uint64_t child_id = s.children[child++].child.value();
    auto it = by_id.find(child_id);
    if (it == by_id.end() || placed[it->second]) continue;
    placed[it->second] = true;
    order.push_back(it->second);
    stack.emplace_back(it->second, 0);
  }
  // Defensive: spans unreachable from the root (should not happen — every
  // start_span is paired with a ChildCall) are appended in a stable order
  // that does not depend on creation order.
  std::vector<std::size_t> stray;
  for (std::size_t i = 0; i < n; ++i) {
    if (!placed[i]) stray.push_back(i);
  }
  std::sort(stray.begin(), stray.end(), [&t](std::size_t a, std::size_t b) {
    const Span& sa = t.spans[a];
    const Span& sb = t.spans[b];
    if (sa.arrival != sb.arrival) return sa.arrival < sb.arrival;
    if (sa.service.value() != sb.service.value()) {
      return sa.service.value() < sb.service.value();
    }
    return sa.departure < sb.departure;
  });
  order.insert(order.end(), stray.begin(), stray.end());

  std::vector<std::uint64_t> new_id(n, 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    new_id[order[pos]] = pos + 1;
  }
  std::deque<Span> out;
  for (const std::size_t idx : order) {
    Span s = std::move(t.spans[idx]);
    s.id = SpanId(new_id[idx]);
    if (s.parent.valid()) {
      auto it = by_id.find(s.parent.value());
      s.parent = it != by_id.end() ? SpanId(new_id[it->second]) : SpanId{};
    }
    for (ChildCall& c : s.children) {
      auto it = by_id.find(c.child.value());
      if (it != by_id.end()) c.child = SpanId(new_id[it->second]);
    }
    out.push_back(std::move(s));
  }
  t.spans = std::move(out);
}

void Tracer::finish_span(TraceId trace, SpanId id, SimTime departure) {
  MaybeLock lock(mu_, thread_safe_);
  auto it = open_.find(trace.value());
  assert(it != open_.end() && "finish_span on unknown trace");
  OpenTrace& open = it->second;

  Span& s = find_span(open, id);
  s.departure = departure;
  assert(open.open_spans > 0);
  --open.open_spans;

  const bool is_root = !s.parent.valid();
  if (is_root) {
    // The root's departure is the user-visible response time; async
    // callback spans running past it never move trace.end.
    open.trace.end = departure;
    open.root_finished = true;
  }

  if (!open.root_finished || open.open_spans > 0) {
    // Listeners run outside the lock: their state is lane-confined and the
    // span reference stays valid (deque storage; only begin_trace — entry
    // lane only — inserts into the open-trace table).
    lock.unlock();
    if (is_root) {
      for (const auto& listener : root_listeners_) listener(open.trace);
    }
    const SpanFate fate =
        span_interceptor_ ? span_interceptor_(s) : SpanFate::kDeliver;
    if (fate == SpanFate::kDeliver) {
      for (const auto& listener : span_listeners_) listener(s);
    }
    return;
  }

  // Last open span closed: assemble. Move the trace out before invoking
  // listeners so that re-entrant tracer use from a listener cannot
  // invalidate it.
  Trace done = std::move(open.trace);
  open_.erase(it);
  ++traces_completed_;
  lock.unlock();

  // `s` moved with the trace; relocate the closing span for its report.
  Span* closing = nullptr;
  for (Span& sp : done.spans) {
    if (sp.id == id) {
      closing = &sp;
      break;
    }
  }
  assert(closing != nullptr);
  if (is_root) {
    for (const auto& listener : root_listeners_) listener(done);
  }
  const SpanFate fate =
      span_interceptor_ ? span_interceptor_(*closing) : SpanFate::kDeliver;
  if (fate == SpanFate::kDeliver) {
    for (const auto& listener : span_listeners_) listener(*closing);
  }
  if (!is_root && deferred_delivery_) {
    // The trace outlived its root (async callbacks): hand it off so the
    // harness can route assembly back to the entry lane.
    const ServiceId last_service = closing->service;
    deferred_delivery_(std::move(done), last_service);
    return;
  }
  deliver_trace(std::move(done));
}

void Tracer::deliver_trace(Trace&& done) {
  if (canonical_ids_) canonicalize(done);
  if (trace_finalizer_) trace_finalizer_(done);
  for (const auto& listener : trace_listeners_) listener(done);
}

}  // namespace sora
