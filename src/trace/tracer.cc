#include "trace/tracer.h"

#include <cassert>

namespace sora {

TraceId Tracer::begin_trace(int request_class, SimTime now) {
  const TraceId id = trace_ids_.next();
  OpenTrace open;
  open.trace.id = id;
  open.trace.request_class = request_class;
  open.trace.start = now;
  // Typical traces have a handful of spans; one up-front allocation beats
  // the doubling sequence during start_span.
  open.trace.spans.reserve(8);
  open_.emplace(id.value(), std::move(open));
  return id;
}

SpanId Tracer::start_span(TraceId trace, SpanId parent, ServiceId service,
                          InstanceId instance, int request_class,
                          SimTime arrival) {
  auto it = open_.find(trace.value());
  assert(it != open_.end() && "start_span on unknown trace");
  OpenTrace& open = it->second;

  const SpanId id = span_ids_.next();
  Span s;
  s.id = id;
  s.trace = trace;
  s.parent = parent;
  s.service = service;
  s.instance = instance;
  s.request_class = request_class;
  s.arrival = arrival;
  s.admitted = arrival;
  s.departure = arrival;
  open.trace.spans.push_back(std::move(s));
  ++open.open_spans;
  return id;
}

Span& Tracer::find_span(OpenTrace& open, SpanId id) {
  auto& spans = open.trace.spans;
  for (std::size_t i = spans.size(); i-- > 0;) {
    if (spans[i].id == id) return spans[i];
  }
  assert(false && "span lookup on unknown span");
  return spans.front();
}

Span& Tracer::span(TraceId trace, SpanId id) {
  auto it = open_.find(trace.value());
  assert(it != open_.end() && "span() on unknown trace");
  return find_span(it->second, id);
}

void Tracer::finish_span(TraceId trace, SpanId id, SimTime departure) {
  auto it = open_.find(trace.value());
  assert(it != open_.end() && "finish_span on unknown trace");
  OpenTrace& open = it->second;

  Span& s = find_span(open, id);
  s.departure = departure;
  assert(open.open_spans > 0);
  --open.open_spans;

  const SpanFate fate =
      span_interceptor_ ? span_interceptor_(s) : SpanFate::kDeliver;
  if (fate == SpanFate::kDeliver) {
    for (const auto& listener : span_listeners_) listener(s);
  }

  const bool is_root = !s.parent.valid();
  if (is_root) {
    assert(open.open_spans == 0 && "root span closed with open children");
    open.trace.end = departure;
    // Move the trace out before invoking listeners so that re-entrant tracer
    // use from a listener cannot invalidate it.
    Trace done = std::move(open.trace);
    open_.erase(it);
    ++traces_completed_;
    if (trace_finalizer_) trace_finalizer_(done);
    for (const auto& listener : trace_listeners_) listener(done);
  }
}

}  // namespace sora
