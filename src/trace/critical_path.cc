#include "trace/critical_path.h"

#include <unordered_map>

namespace sora {

namespace {

using SpanIndex = std::unordered_map<std::uint64_t, const Span*>;

SpanIndex index_spans(const Trace& trace) {
  SpanIndex idx;
  idx.reserve(trace.spans.size());
  for (const Span& s : trace.spans) idx.emplace(s.id.value(), &s);
  return idx;
}

}  // namespace

CriticalPath extract_critical_path(const Trace& trace) {
  CriticalPath path;
  if (trace.spans.empty()) return path;

  const SpanIndex idx = index_spans(trace);
  const Span* current = &trace.root();
  path.total_duration = current->duration();

  while (current != nullptr) {
    path.hops.push_back(CriticalHop{current->service, current->id,
                                    current->processing_time(),
                                    current->duration()});
    // Descend into the child visit of maximal duration: it dominates the
    // downstream wall time of this span. Async callback children are
    // fire-and-forget — the caller's response never waits on them — so they
    // can never sit on the critical path, however long they run.
    const Span* next = nullptr;
    SimTime best = -1;
    for (const ChildCall& call : current->children) {
      if (call.async) continue;
      auto it = idx.find(call.child.value());
      if (it == idx.end()) continue;  // child span missing (defensive)
      const SimTime d = it->second->duration();
      if (d > best) {
        best = d;
        next = it->second;
      }
    }
    current = next;
  }
  return path;
}

SimTime upstream_processing_time(const CriticalPath& path, ServiceId service) {
  SimTime sum = 0;
  for (const auto& hop : path.hops) {
    if (hop.service == service) return sum;
    sum += hop.processing_time;
  }
  return -1;
}

}  // namespace sora
