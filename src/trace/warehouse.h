// Trace warehouse: bounded store of recent completed traces.
//
// Stands in for the paper's Neo4j + per-service MongoDB trace stores: the
// Concurrency Estimator pulls recent traces from here asynchronously for
// critical-service localization and deadline propagation. A ring buffer
// bounds memory; queries filter by completion-time window.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>

#include "common/time.h"
#include "trace/span.h"
#include "trace/tracer.h"

namespace sora {

class TraceWarehouse {
 public:
  /// `capacity` bounds the number of retained traces (oldest evicted first).
  explicit TraceWarehouse(std::size_t capacity = 65536);

  /// Wire the warehouse to a tracer. `sample_every_n` > 1 stores only every
  /// n-th completed trace — the head-based sampling production tracing
  /// systems use to bound collection overhead (the paper's Section 6
  /// scalability concern). The ablation benches quantify what sampling
  /// costs the localization/deadline phases.
  void attach(Tracer& tracer, std::uint64_t sample_every_n = 1);

  /// Store a completed trace directly (used by tests).
  void store(Trace trace);

  /// Observe every trace as it is stored (after sampling/eviction policy
  /// admits it). The critical-service localizer streams its correlation
  /// accumulators from here so control rounds no longer rescan the window.
  void add_store_listener(std::function<void(const Trace&)> fn) {
    store_listeners_.push_back(std::move(fn));
  }

  /// Visit traces whose end time falls in [from, to]. Traces are visited
  /// oldest-first.
  void for_each_in_window(SimTime from, SimTime to,
                          const std::function<void(const Trace&)>& fn) const;

  /// Count of traces ending in [from, to].
  std::size_t count_in_window(SimTime from, SimTime to) const;

  /// Order-sensitive FNV-1a fingerprint of every retained trace (ids, span
  /// services, message timestamps, failure flags). Two warehouses from
  /// byte-identical runs digest equal; any timing or structural divergence
  /// changes the value. Used by the causal profiler's control-run check.
  std::uint64_t digest() const;

  std::size_t size() const { return traces_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_stored() const { return total_stored_; }
  std::uint64_t total_evicted() const { return total_evicted_; }

 private:
  std::size_t capacity_;
  std::deque<Trace> traces_;  // ordered by completion time
  std::vector<std::function<void(const Trace&)>> store_listeners_;
  std::uint64_t total_stored_ = 0;
  std::uint64_t total_evicted_ = 0;
};

/// Aggregate call-graph store: counts observed service->service invocation
/// edges across traces (the role the paper assigns to its Neo4j graph
/// database). Useful for topology discovery and diagnostics.
class CallGraphStore {
 public:
  void attach(Tracer& tracer);
  void ingest(const Trace& trace);

  /// Number of observed calls from `from` to `to`.
  std::uint64_t edge_count(ServiceId from, ServiceId to) const;
  /// Number of root spans observed at `service`.
  std::uint64_t root_count(ServiceId service) const;
  std::size_t num_edges() const { return edges_.size(); }

 private:
  static std::uint64_t key(ServiceId from, ServiceId to) {
    return (from.value() << 32) | (to.value() & 0xffffffffULL);
  }
  std::unordered_map<std::uint64_t, std::uint64_t> edges_;
  std::unordered_map<std::uint64_t, std::uint64_t> roots_;
};

}  // namespace sora
