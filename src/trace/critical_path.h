// Critical-path extraction from completed traces.
//
// The critical path of a call graph (footnote 1 of the paper) is the chain
// of maximal duration from the user request to the final response. We walk
// the span tree from the root, descending at each span into the child call
// of largest duration; sequential calls are all "dominant" in turn but the
// chain keeps the one contributing the most wall time.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "trace/span.h"

namespace sora {

/// One hop on the critical path.
struct CriticalHop {
  ServiceId service;
  SpanId span;
  SimTime processing_time = 0;  ///< PT of this hop (queue + CPU, no downstream)
  SimTime span_duration = 0;    ///< full visit duration at this hop
};

struct CriticalPath {
  std::vector<CriticalHop> hops;  ///< root first, deepest hop last.
  SimTime total_duration = 0;     ///< equals the root span's duration.

  bool contains(ServiceId s) const {
    for (const auto& h : hops) {
      if (h.service == s) return true;
    }
    return false;
  }
};

/// Extract the critical path of a completed trace.
CriticalPath extract_critical_path(const Trace& trace);

/// Sum of processing times of hops strictly above (upstream of) `service`
/// on the critical path; used by deadline propagation:
///   RTT_si <= SLA - sum_{k<i} PT_sk.
/// Returns -1 if the service does not appear on the path.
SimTime upstream_processing_time(const CriticalPath& path, ServiceId service);

}  // namespace sora
