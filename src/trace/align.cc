#include "trace/align.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace sora {

namespace {

/// Resolve the caller service of `span` within `trace` (invalid ServiceId
/// for the root span — the client edge).
ServiceId parent_service(
    const std::unordered_map<std::uint64_t, ServiceId>& span_service,
    const Span& span) {
  if (!span.parent.valid()) return ServiceId{};  // root: the client edge
  const auto it = span_service.find(span.parent.value());
  return it == span_service.end() ? ServiceId{} : it->second;
}

std::uint64_t edge_key(ServiceId parent, ServiceId service) {
  return (parent.value() << 32) | (service.value() & 0xffffffffULL);
}

EdgeLatencyDelta& edge_slot(std::vector<EdgeLatencyDelta>& edges,
                            std::unordered_map<std::uint64_t, std::size_t>& idx,
                            ServiceId parent, ServiceId service) {
  const std::uint64_t key = edge_key(parent, service);
  const auto it = idx.find(key);
  if (it != idx.end()) return edges[it->second];
  idx.emplace(key, edges.size());
  edges.push_back(EdgeLatencyDelta{parent, service, 0, 0, 0, 0, 0});
  return edges.back();
}

}  // namespace

TraceAlignment align_spans(const Trace& base, const Trace& cf,
                           std::vector<EdgeLatencyDelta>& edges) {
  // Edge accumulation uses a per-call index rebuilt lazily: callers that
  // difference whole windows pass the same `edges` vector repeatedly, so the
  // index is reconstructed from it (edge counts are tiny — one entry per
  // call-graph edge, not per span).
  std::unordered_map<std::uint64_t, std::size_t> idx;
  idx.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    idx.emplace(edge_key(edges[i].parent, edges[i].service), i);
  }

  // parent-span -> service lookup for edge identity (baseline side names
  // the edge; the cf side only contributes timings).
  std::unordered_map<std::uint64_t, ServiceId> base_svc;
  base_svc.reserve(base.spans.size());
  for (const Span& s : base.spans) base_svc.emplace(s.id.value(), s.service);

  TraceAlignment out;
  std::size_t bi = 0, ci = 0;
  while (bi < base.spans.size() && ci < cf.spans.size()) {
    const Span& b = base.spans[bi];
    // Re-synchronize: find the next counterfactual span (from the cursor)
    // visiting the same service. Span creation order is deterministic, so a
    // match further ahead means the cf run inserted extra spans (all
    // unmatched); no match means the baseline span was dropped in the cf run.
    std::size_t probe = ci;
    while (probe < cf.spans.size() && !(cf.spans[probe].service == b.service)) {
      ++probe;
    }
    if (probe == cf.spans.size()) {
      ++out.base_unmatched;
      ++bi;
      continue;
    }
    out.cf_unmatched += probe - ci;
    ci = probe;
    const Span& c = cf.spans[ci];

    ++out.spans_aligned;
    EdgeLatencyDelta& e =
        edge_slot(edges, idx, parent_service(base_svc, b), b.service);
    ++e.aligned;
    e.base_duration += b.duration();
    e.cf_duration += c.duration();
    e.base_processing += b.processing_time();
    e.cf_processing += c.processing_time();
    ++bi;
    ++ci;
  }
  out.base_unmatched += base.spans.size() - bi;
  out.cf_unmatched += cf.spans.size() - ci;
  return out;
}

DiffSummary diff_warehouses(const TraceWarehouse& base, const TraceWarehouse& cf,
                            SimTime from, SimTime to) {
  DiffSummary out;

  // Index the counterfactual side by TraceId (identical ids across runs).
  std::unordered_map<std::uint64_t, const Trace*> cf_by_id;
  cf_by_id.reserve(cf.size());
  cf.for_each_in_window(0, kSimTimeNever, [&](const Trace& t) {
    if (t.start >= from && t.start <= to) cf_by_id.emplace(t.id.value(), &t);
  });

  base.for_each_in_window(0, kSimTimeNever, [&](const Trace& t) {
    if (t.start < from || t.start > to) return;
    const auto it = cf_by_id.find(t.id.value());
    if (it == cf_by_id.end()) {
      ++out.base_only;
      return;
    }
    const TraceAlignment a = align_spans(t, *it->second, out.edges);
    ++out.traces_aligned;
    out.spans_aligned += a.spans_aligned;
    out.spans_unmatched += a.base_unmatched + a.cf_unmatched;
    out.e2e_delta_ms +=
        to_msec(it->second->response_time() - t.response_time());
    cf_by_id.erase(it);
  });
  out.cf_only = cf_by_id.size();

  std::sort(out.edges.begin(), out.edges.end(),
            [](const EdgeLatencyDelta& a, const EdgeLatencyDelta& b) {
              const double da = std::abs(a.total_delta_ms());
              const double db = std::abs(b.total_delta_ms());
              if (da != db) return da > db;
              // Deterministic tie-break so profile output is bit-stable.
              if (!(a.service == b.service)) {
                return a.service.value() < b.service.value();
              }
              return a.parent.value() < b.parent.value();
            });
  return out;
}

}  // namespace sora
