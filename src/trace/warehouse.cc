#include "trace/warehouse.h"

#include <memory>
#include <unordered_map>

namespace sora {

TraceWarehouse::TraceWarehouse(std::size_t capacity) : capacity_(capacity) {}

void TraceWarehouse::attach(Tracer& tracer, std::uint64_t sample_every_n) {
  if (sample_every_n <= 1) {
    tracer.add_trace_listener([this](const Trace& t) { store(t); });
    return;
  }
  auto counter = std::make_shared<std::uint64_t>(0);
  tracer.add_trace_listener([this, counter, sample_every_n](const Trace& t) {
    if ((*counter)++ % sample_every_n == 0) store(t);
  });
}

void TraceWarehouse::store(Trace trace) {
  traces_.push_back(std::move(trace));
  ++total_stored_;
  for (const auto& listener : store_listeners_) listener(traces_.back());
  while (traces_.size() > capacity_) {
    traces_.pop_front();
    ++total_evicted_;
  }
}

void TraceWarehouse::for_each_in_window(
    SimTime from, SimTime to,
    const std::function<void(const Trace&)>& fn) const {
  for (const Trace& t : traces_) {
    if (t.end < from) continue;
    if (t.end > to) break;  // traces are completion-ordered
    fn(t);
  }
}

std::uint64_t TraceWarehouse::digest() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  for (const Trace& t : traces_) {
    fold(t.id.value());
    fold(static_cast<std::uint64_t>(t.start));
    fold(static_cast<std::uint64_t>(t.end));
    fold(t.spans.size());
    for (const Span& s : t.spans) {
      fold(s.service.value());
      fold(static_cast<std::uint64_t>(s.arrival));
      fold(static_cast<std::uint64_t>(s.admitted));
      fold(static_cast<std::uint64_t>(s.departure));
      fold(static_cast<std::uint64_t>(s.downstream_wait));
      fold((s.failed ? 1u : 0u) | (s.rejected ? 2u : 0u));
    }
  }
  return h;
}

std::size_t TraceWarehouse::count_in_window(SimTime from, SimTime to) const {
  std::size_t n = 0;
  for_each_in_window(from, to, [&n](const Trace&) { ++n; });
  return n;
}

void CallGraphStore::attach(Tracer& tracer) {
  tracer.add_trace_listener([this](const Trace& t) { ingest(t); });
}

void CallGraphStore::ingest(const Trace& trace) {
  std::unordered_map<std::uint64_t, const Span*> idx;
  idx.reserve(trace.spans.size());
  for (const Span& s : trace.spans) idx.emplace(s.id.value(), &s);
  for (const Span& s : trace.spans) {
    if (!s.parent.valid()) {
      ++roots_[s.service.value()];
      continue;
    }
    auto it = idx.find(s.parent.value());
    if (it != idx.end()) {
      ++edges_[key(it->second->service, s.service)];
    }
  }
}

std::uint64_t CallGraphStore::edge_count(ServiceId from, ServiceId to) const {
  auto it = edges_.find(key(from, to));
  return it == edges_.end() ? 0 : it->second;
}

std::uint64_t CallGraphStore::root_count(ServiceId service) const {
  auto it = roots_.find(service.value());
  return it == roots_.end() ? 0 : it->second;
}

}  // namespace sora
