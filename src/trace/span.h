// Distributed-tracing data model.
//
// Every end-user request carries a trace; each service visit is one span.
// Spans record the message timestamps the SCG model needs: arrival at the
// service, admission (soft-resource slot granted), departure, and the wall
// time blocked on downstream calls. From these we derive the per-service
// processing time PT_si (Section 3.2, Eq. 1-3) and the critical path.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace sora {

/// One downstream call issued by a span. `parallel_group` identifies calls
/// issued concurrently (same group fires together); groups execute in
/// ascending order. Async callback edges (fire-and-forget notifications
/// issued as the visit completes — the mechanism that expresses
/// cross-service cycles) carry `async = true` and `parallel_group = -1`:
/// the caller never waits on them, so they contribute nothing to its
/// downstream_wait and are skipped by critical-path extraction.
struct ChildCall {
  SpanId child;
  int parallel_group = 0;
  SimTime issued = 0;    ///< When the caller initiated the call.
  SimTime returned = 0;  ///< When the response came back (0 for async).
  bool async = false;    ///< Fire-and-forget callback; caller never waits.
};

/// One service visit.
struct Span {
  SpanId id;
  TraceId trace;
  SpanId parent;  ///< invalid for the root span.
  ServiceId service;
  InstanceId instance;
  int request_class = 0;

  SimTime arrival = 0;    ///< Request message reached the service (or its
                          ///< connection gate).
  SimTime admitted = 0;   ///< Soft-resource slot granted; processing begins.
  SimTime departure = 0;  ///< Response message left the service.

  /// Total wall time this span spent blocked waiting on >= 1 downstream
  /// call (parallel waits counted once).
  SimTime downstream_wait = 0;

  /// The visit was aborted (replica crash dropped it mid-flight); the span
  /// closed early with an error response. Failed spans are excluded from
  /// goodput/throughput sampling.
  bool failed = false;

  /// The request was shed by the service's admission controller before it
  /// reached a replica (failed is also set — rejection is an error response
  /// — but rejected distinguishes deliberate shedding from crash aborts).
  bool rejected = false;

  // -- latency-budget annotation (stamped at trace completion when SLO
  // analytics is enabled; see obs/budget.h) -----------------------------------
  /// Propagated local deadline at this hop: the end-to-end SLA minus the
  /// processing time of every ancestor (Eq. 1-3 generalized to the whole
  /// span tree). kSimTimeNever when the trace was never annotated.
  SimTime budget_deadline = kSimTimeNever;
  /// budget_deadline - duration(): how much budget was left (negative =
  /// this hop blew its share). Meaningless unless annotated.
  SimTime budget_slack = 0;

  std::vector<ChildCall> children;

  bool budget_annotated() const { return budget_deadline != kSimTimeNever; }

  /// Span response time as observed by the caller.
  SimTime duration() const { return departure - arrival; }

  /// Processing time PT_si: time attributable to this service itself
  /// (queueing + CPU), excluding time blocked on downstream services.
  SimTime processing_time() const { return duration() - downstream_wait; }
};

/// A completed request trace: the root span plus all descendants.
/// Spans are stored in creation order; spans[0] is the root. (In sharded
/// runs the tracer rewrites completed traces into canonical DFS order with
/// per-trace span ids — see Tracer::set_canonical_ids — so creation-order
/// differences between shard interleavings never escape.) A deque rather
/// than a vector: appending a span must not invalidate references to spans
/// already held by concurrently executing shard lanes.
struct Trace {
  TraceId id;
  int request_class = 0;
  SimTime start = 0;
  SimTime end = 0;
  std::deque<Span> spans;

  SimTime response_time() const { return end - start; }
  const Span& root() const { return spans.front(); }

  /// True when any hop of this request was shed by admission control (the
  /// end-user saw a rejection, not a served response).
  bool rejected() const {
    for (const Span& s : spans) {
      if (s.rejected) return true;
    }
    return false;
  }
};

}  // namespace sora
