// In-process OpenTracing-style tracer.
//
// The paper instruments every microservice with a Jaeger/Zipkin-compatible
// agent and stores request/response timestamps per service. Here the tracer
// is an in-process collector: services open and close spans; when the root
// span closes, the assembled Trace is handed to the TraceWarehouse and to
// any registered listeners (e.g. the Concurrency Estimator and metric
// samplers).
//
// Sharded runs flip two opt-in switches. set_thread_safe(true) guards the
// open-trace table with a mutex, since spans of one trace open and close on
// different shard lanes (listeners still run outside the lock — each
// listener's state is confined to one lane by construction). And
// set_canonical_ids(true) rewrites every completed trace into canonical
// form — spans in depth-first call order, renumbered 1..N within the trace —
// because raw span ids and creation order depend on how lanes interleave,
// which would differ between shard counts even though the trace tree itself
// is identical.
#pragma once

#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "trace/span.h"

namespace sora {

class Tracer {
 public:
  using TraceListener = std::function<void(const Trace&)>;
  /// Span listeners fire on every span completion (service visit), which is
  /// what the scatter samplers consume.
  using SpanListener = std::function<void(const Span&)>;
  /// Root listeners fire the instant the ROOT span closes — the user-visible
  /// response time — even when async callback spans keep the trace open
  /// past it (assembly is then deferred until the last span closes). The
  /// trace passed in may still gain spans afterwards; listeners must read
  /// and return, not retain the reference or re-enter the tracer.
  using RootListener = std::function<void(const Trace&)>;
  /// Hand-off for deferred assembly: when the last span of a trace closes
  /// after the root already departed (async callbacks outliving the
  /// response), the raw trace is passed here with the service whose span
  /// closed last, instead of being processed inline. The hook must
  /// eventually call deliver_trace — the harness routes the hand-off
  /// through the network layer so trace listeners always run on the entry
  /// lane at a shard-count-invariant time. Without a hook, finish_span
  /// calls deliver_trace inline.
  using DeferredDelivery = std::function<void(Trace&&, ServiceId)>;

  /// What the span interceptor decided for one completed span's report.
  enum class SpanFate {
    kDeliver,  ///< fan out to span listeners now (the default path)
    kDrop,     ///< suppress the report entirely (lost agent message)
    kDefer,    ///< the interceptor retained a copy and will redeliver it
               ///< later via deliver_span (delayed agent message)
  };
  /// Gate on span-listener delivery, installed by the fault injector to
  /// model a lossy/laggy tracing agent. Trace assembly (the warehouse path)
  /// is unaffected: only the per-span metrics feed is filtered.
  using SpanInterceptor = std::function<SpanFate(const Span&)>;

  /// Start a new trace for a request of the given class. Returns its id.
  TraceId begin_trace(int request_class, SimTime now);

  /// Open a span under `trace`. `parent` is invalid for the root span.
  /// `arrival` is when the request message reached the service.
  SpanId start_span(TraceId trace, SpanId parent, ServiceId service,
                    InstanceId instance, int request_class, SimTime arrival);

  /// Mutable access to an open span (to stamp admitted/downstream_wait and
  /// append child calls). Must not be called after the span is finished.
  /// The returned reference stays valid while the trace is open (spans live
  /// in a deque), but the lookup itself synchronizes in thread-safe mode.
  Span& span(TraceId trace, SpanId id);

  /// Close a span. When the last open span of a trace closes (the root
  /// itself on async-free traces), the trace is assembled, listeners run,
  /// and the trace's storage is released. A root closing while async
  /// callback spans are still open only fires the root listeners; assembly
  /// waits for the stragglers.
  void finish_span(TraceId trace, SpanId id, SimTime departure);

  void add_trace_listener(TraceListener cb) {
    trace_listeners_.push_back(std::move(cb));
  }
  void add_root_listener(RootListener cb) {
    root_listeners_.push_back(std::move(cb));
  }
  /// Install (or clear, with nullptr) the deferred-assembly hand-off.
  void set_deferred_delivery(DeferredDelivery fn) {
    deferred_delivery_ = std::move(fn);
  }
  /// Assemble a trace whose spans have all closed: canonical ids (when
  /// enabled), finalizer, then trace listeners. Called by finish_span for
  /// ordinary traces and by the deferred-delivery hook's continuation for
  /// traces that outlived their root.
  void deliver_trace(Trace&& t);
  /// Install a finalizer that may mutate the assembled trace after the root
  /// span closes but before any trace listener runs (used to stamp the
  /// latency-budget annotations so the warehouse stores annotated spans).
  /// Pass nullptr to clear.
  void set_trace_finalizer(std::function<void(Trace&)> fn) {
    trace_finalizer_ = std::move(fn);
  }
  void add_span_listener(SpanListener cb) {
    span_listeners_.push_back(std::move(cb));
  }
  /// Install (or clear, with nullptr) the span-report gate.
  void set_span_interceptor(SpanInterceptor fn) {
    span_interceptor_ = std::move(fn);
  }
  /// Deliver a span to the span listeners now — used to redeliver a copy
  /// the interceptor deferred. Safe after the owning trace closed.
  void deliver_span(const Span& s) {
    for (const auto& listener : span_listeners_) listener(s);
  }

  /// Guard the open-trace table with a mutex (sharded runs with worker
  /// threads; harmless but unnecessary otherwise). Listener callbacks run
  /// outside the lock.
  void set_thread_safe(bool on) { thread_safe_ = on; }
  /// Rewrite completed traces into canonical DFS span order with per-trace
  /// span ids 1..N before the finalizer and listeners see them. Required
  /// for cross-shard-count byte parity; off by default so unsharded runs
  /// keep their historical creation-order traces.
  void set_canonical_ids(bool on) { canonical_ids_ = on; }
  bool canonical_ids() const { return canonical_ids_; }

  /// Number of traces currently in flight (diagnostics / leak checks).
  std::size_t open_traces() const { return open_.size(); }
  std::uint64_t traces_completed() const { return traces_completed_; }

 private:
  struct OpenTrace {
    Trace trace;
    std::size_t open_spans = 0;
    /// The root span departed; trace.end is final. Spans still open are
    /// async callbacks — when the last closes, the trace assembles.
    bool root_finished = false;
  };

  /// Find a span inside an open trace by id. Traces hold a handful of
  /// spans, so a backwards linear scan (most recently opened first) beats
  /// a per-trace hash index.
  static Span& find_span(OpenTrace& open, SpanId id);

  /// Reorder `t.spans` into DFS call order and renumber ids 1..N.
  static void canonicalize(Trace& t);

  class MaybeLock {
   public:
    MaybeLock(std::mutex& mu, bool engage) : mu_(mu), engaged_(engage) {
      if (engaged_) mu_.lock();
    }
    ~MaybeLock() { unlock(); }
    void unlock() {
      if (engaged_) {
        mu_.unlock();
        engaged_ = false;
      }
    }
    MaybeLock(const MaybeLock&) = delete;
    MaybeLock& operator=(const MaybeLock&) = delete;

   private:
    std::mutex& mu_;
    bool engaged_;
  };

  IdGenerator<TraceId> trace_ids_;
  IdGenerator<SpanId> span_ids_;
  std::unordered_map<std::uint64_t, OpenTrace> open_;
  std::function<void(Trace&)> trace_finalizer_;
  SpanInterceptor span_interceptor_;
  DeferredDelivery deferred_delivery_;
  std::vector<TraceListener> trace_listeners_;
  std::vector<SpanListener> span_listeners_;
  std::vector<RootListener> root_listeners_;
  std::uint64_t traces_completed_ = 0;
  bool thread_safe_ = false;
  bool canonical_ids_ = false;
  std::mutex mu_;
};

}  // namespace sora
