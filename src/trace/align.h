// Differential span alignment between two deterministic runs.
//
// The causal profiler re-runs an experiment with a perturbation overlay
// applied from a checkpoint onward. Because both runs draw from identical
// seeded RNG streams, every request injected before the runs diverge — and,
// with open/closed-loop generators driven by the same streams, every request
// after it too — carries the *same TraceId* in both runs. That identity
// makes counterfactual attribution exact: instead of comparing latency
// distributions, we align each baseline trace with its counterfactual twin
// and difference them span by span, aggregating the deltas per call-graph
// edge (parent service -> child service).
//
// Alignment is robust to structural drift between the runs: a span dropped
// in one run (fault injection, admission shedding, crash aborts) is counted
// as unmatched and skipped, and the cursor-based matcher re-synchronizes on
// the next service-id match, so one missing hop never misaligns the rest of
// the trace.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "trace/span.h"
#include "trace/warehouse.h"

namespace sora {

/// Latency delta accumulated on one call-graph edge. The "edge" is the
/// (caller service, callee service) pair; the root span's caller is the
/// end user, represented by an invalid ServiceId.
struct EdgeLatencyDelta {
  ServiceId parent;   ///< caller service (invalid = client -> entry edge)
  ServiceId service;  ///< callee service (the spans being differenced)
  std::size_t aligned = 0;  ///< span pairs matched on this edge

  SimTime base_duration = 0;  ///< sum of baseline span durations
  SimTime cf_duration = 0;    ///< sum of counterfactual span durations
  SimTime base_processing = 0;  ///< sum of baseline PT (no downstream wait)
  SimTime cf_processing = 0;

  /// Mean per-span duration delta (counterfactual - baseline), ms.
  /// Negative = the perturbation made this edge faster.
  double mean_delta_ms() const {
    return aligned == 0
               ? 0.0
               : to_msec(cf_duration - base_duration) /
                     static_cast<double>(aligned);
  }
  /// Total duration delta across all aligned spans, ms.
  double total_delta_ms() const { return to_msec(cf_duration - base_duration); }
  /// Mean per-span processing-time delta, ms.
  double mean_processing_delta_ms() const {
    return aligned == 0
               ? 0.0
               : to_msec(cf_processing - base_processing) /
                     static_cast<double>(aligned);
  }
};

/// Result of aligning one baseline trace against its counterfactual twin.
struct TraceAlignment {
  std::size_t spans_aligned = 0;
  std::size_t base_unmatched = 0;  ///< baseline spans with no cf partner
  std::size_t cf_unmatched = 0;    ///< counterfactual spans with no partner
};

/// Aggregate differential over a window of traces.
struct DiffSummary {
  std::size_t traces_aligned = 0;
  std::size_t base_only = 0;  ///< baseline traces with no cf twin
  std::size_t cf_only = 0;    ///< counterfactual traces with no baseline twin
  std::size_t spans_aligned = 0;
  std::size_t spans_unmatched = 0;  ///< dropped/extra spans on either side

  /// Per-edge deltas, sorted by |total duration delta| descending.
  std::vector<EdgeLatencyDelta> edges;

  /// Sum of end-to-end response-time deltas (cf - base) over aligned
  /// traces, ms — the direct trace-level view of the causal effect.
  double e2e_delta_ms = 0.0;
};

/// Align the spans of two traces with the same TraceId. Spans are stored in
/// creation order in both runs; the matcher walks both vectors with a
/// cursor, pairing spans of equal service id and skipping (counting) spans
/// present on only one side. `edges` accumulates per-edge deltas across
/// calls (pass the same vector for every trace of a window).
TraceAlignment align_spans(const Trace& base, const Trace& cf,
                           std::vector<EdgeLatencyDelta>& edges);

/// Difference every baseline trace starting in [from, to] against the
/// counterfactual warehouse (matched by TraceId). Traces whose twin is
/// missing on either side are counted, not matched. The returned edge list
/// is sorted by |total duration delta| descending.
DiffSummary diff_warehouses(const TraceWarehouse& base,
                            const TraceWarehouse& cf, SimTime from, SimTime to);

}  // namespace sora
