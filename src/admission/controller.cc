#include "admission/controller.h"

#include <algorithm>
#include <cmath>

namespace sora {

const char* to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kNone: return "none";
    case AdmissionPolicy::kTokenBucket: return "token_bucket";
    case AdmissionPolicy::kAimd: return "aimd";
    case AdmissionPolicy::kGradient: return "gradient";
    case AdmissionPolicy::kKneeCoupled: return "knee_coupled";
  }
  return "?";
}

AdmissionController::AdmissionController(std::string service,
                                         AdmissionOptions options)
    : service_(std::move(service)), options_(options) {
  limit_ = std::clamp(options_.initial_limit, options_.min_limit,
                      options_.max_limit);
  tokens_ = options_.bucket_burst;
}

void AdmissionController::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) {
    admit_counter_ = nullptr;
    limit_gauge_ = nullptr;
    return;
  }
  admit_counter_ =
      &metrics_->counter("admission.admitted", {{"service", service_}});
  limit_gauge_ = &metrics_->gauge("admission.limit", {{"service", service_}});
  limit_gauge_->set(limit_);
}

void AdmissionController::refill_tokens(SimTime now) {
  if (now <= last_refill_) return;
  tokens_ = std::min(
      options_.bucket_burst,
      tokens_ + to_sec(now - last_refill_) * options_.tokens_per_sec);
  last_refill_ = now;
}

SimTime AdmissionController::aimd_threshold() const {
  if (options_.aimd_latency_threshold > 0) {
    return options_.aimd_latency_threshold;
  }
  return min_rtt_ > 0 ? 2 * min_rtt_ : 0;
}

AdmissionDecision AdmissionController::decide(const RequestMeta& meta,
                                              SimTime now) {
  AdmissionDecision d;
  d.limit = limit_;
  if (meta.deadline > 0) {
    d.remaining_deadline = meta.deadline > now ? meta.deadline - now : 0;
  }

  // Deadline check first: a request that cannot make its deadline is shed
  // whatever the concurrency policy says (it would only waste a slot).
  if (options_.shed_expired_deadlines && meta.deadline > 0 && min_rtt_ > 0 &&
      d.remaining_deadline < min_rtt_) {
    d.admit = false;
    d.reason = "deadline";
    record_shed(meta, now, d);
    return d;
  }

  const double batch_room =
      meta.priority == Priority::kBatch ? options_.batch_threshold : 1.0;

  switch (options_.policy) {
    case AdmissionPolicy::kNone:
      break;
    case AdmissionPolicy::kTokenBucket: {
      refill_tokens(now);
      // Batch may not drain the bucket below its reserved headroom.
      const double floor =
          meta.priority == Priority::kBatch
              ? (1.0 - options_.batch_threshold) * options_.bucket_burst
              : 0.0;
      if (tokens_ - 1.0 < floor) {
        d.admit = false;
        d.reason = "no_tokens";
      } else {
        tokens_ -= 1.0;
      }
      break;
    }
    case AdmissionPolicy::kAimd:
    case AdmissionPolicy::kGradient:
      if (static_cast<double>(in_flight_) + 1.0 > limit_ * batch_room) {
        d.admit = false;
        d.reason = "concurrency_limit";
      }
      break;
    case AdmissionPolicy::kKneeCoupled:
      if (static_cast<double>(in_flight_) + 1.0 > limit_ * batch_room) {
        d.admit = false;
        d.reason = knee_ > 0.0 ? "knee_limit" : "concurrency_limit";
      }
      break;
  }

  if (!d.admit) record_shed(meta, now, d);
  return d;
}

void AdmissionController::on_admit(SimTime) {
  ++in_flight_;
  ++admitted_;
  if (admit_counter_ != nullptr) admit_counter_->add();
}

void AdmissionController::on_departure(SimTime now, SimTime rtt, bool ok) {
  if (in_flight_ > 0) --in_flight_;

  // Windowed min-RTT: only successful responses describe the service's
  // floor (an aborted visit returns instantly and would fake a tiny RTT).
  if (ok && rtt > 0) {
    if (now - min_rtt_window_start_ >= options_.min_rtt_window) {
      // Rotate: the finished window's min becomes the estimate, so a
      // persistent shift (slower service) ages in within one window.
      min_rtt_ = window_min_rtt_ > 0 ? window_min_rtt_ : rtt;
      window_min_rtt_ = rtt;
      min_rtt_window_start_ = now;
    } else {
      window_min_rtt_ =
          window_min_rtt_ > 0 ? std::min(window_min_rtt_, rtt) : rtt;
    }
    if (min_rtt_ == 0) min_rtt_ = rtt;
    min_rtt_ = std::min(min_rtt_, rtt);
    ewma_rtt_ = ewma_rtt_ == 0.0
                    ? static_cast<double>(rtt)
                    : (1.0 - options_.gradient_smoothing) * ewma_rtt_ +
                          options_.gradient_smoothing *
                              static_cast<double>(rtt);
  }

  const double old_limit = limit_;
  switch (options_.policy) {
    case AdmissionPolicy::kAimd: {
      const SimTime threshold = aimd_threshold();
      const bool congested = !ok || (threshold > 0 && rtt > threshold);
      if (congested) {
        limit_ = std::max(options_.min_limit, limit_ * options_.aimd_backoff);
      } else {
        limit_ = std::min(options_.max_limit,
                          limit_ + options_.aimd_increase / limit_);
      }
      break;
    }
    case AdmissionPolicy::kGradient: {
      if (!ok || min_rtt_ == 0 || ewma_rtt_ <= 0.0) break;
      // Vegas/Gradient2: shrink toward min_rtt/ewma_rtt when latency
      // inflates beyond the tolerance, grow by a sqrt queue allowance when
      // the service is keeping up.
      const double gradient =
          std::clamp(options_.gradient_tolerance *
                         static_cast<double>(min_rtt_) / ewma_rtt_,
                     0.5, 1.0);
      const double target = limit_ * gradient + std::sqrt(limit_);
      limit_ = std::clamp((1.0 - options_.gradient_smoothing) * limit_ +
                              options_.gradient_smoothing * target,
                          options_.min_limit, options_.max_limit);
      break;
    }
    case AdmissionPolicy::kNone:
    case AdmissionPolicy::kTokenBucket:
    case AdmissionPolicy::kKneeCoupled:
      break;
  }
  if (limit_ != old_limit && limit_gauge_ != nullptr) {
    limit_gauge_->set(limit_);
  }
  // Adaptive-limit drift is continuous; individual departures are not worth
  // a log record each (the limit gauge tracks them). Discrete jumps — knee
  // updates — are logged in set_knee.
}

void AdmissionController::set_knee(double aggregate_knee, SimTime now) {
  if (aggregate_knee <= 0.0) return;
  knee_ = aggregate_knee;
  ++knee_updates_;
  if (options_.policy != AdmissionPolicy::kKneeCoupled) return;
  const double old_limit = limit_;
  limit_ = std::clamp(aggregate_knee * options_.knee_headroom,
                      options_.min_limit, options_.max_limit);
  if (limit_ != old_limit) note_limit_change(old_limit, now, "knee update");
}

void AdmissionController::set_knee_headroom(double headroom, SimTime now) {
  if (headroom <= 0.0) return;
  options_.knee_headroom = headroom;
  if (options_.policy != AdmissionPolicy::kKneeCoupled || knee_ <= 0.0) return;
  const double old_limit = limit_;
  limit_ = std::clamp(knee_ * options_.knee_headroom, options_.min_limit,
                      options_.max_limit);
  if (limit_ != old_limit) note_limit_change(old_limit, now, "ctl headroom");
}

void AdmissionController::set_limit_bounds(double min_limit, double max_limit,
                                           SimTime now) {
  if (min_limit > 0.0) options_.min_limit = min_limit;
  if (max_limit > 0.0) options_.max_limit = max_limit;
  if (options_.max_limit < options_.min_limit) {
    options_.max_limit = options_.min_limit;
  }
  const double old_limit = limit_;
  limit_ = std::clamp(limit_, options_.min_limit, options_.max_limit);
  if (limit_ != old_limit) note_limit_change(old_limit, now, "ctl bounds");
}

void AdmissionController::note_limit_change(double old_limit, SimTime now,
                                            const char* why) {
  if (limit_gauge_ != nullptr) limit_gauge_->set(limit_);
  if (log_ == nullptr) return;
  obs::ControlDecisionRecord rec;
  rec.at = now;
  rec.controller = "admission";
  rec.target = service_;
  rec.action = "limit_update";
  rec.policy = to_string(options_.policy);
  rec.admission_limit = limit_;
  rec.old_size = static_cast<int>(old_limit);
  rec.new_size = static_cast<int>(limit_);
  rec.knee_concurrency = knee_;
  rec.reason = why;
  log_->append(std::move(rec));
}

void AdmissionController::record_shed(const RequestMeta& meta, SimTime now,
                                      const AdmissionDecision& d) {
  ++shed_;
  ++shed_by_priority_[static_cast<int>(meta.priority)];
  if (metrics_ != nullptr) {
    metrics_
        ->counter("admission.shed", {{"service", service_},
                                     {"policy", to_string(options_.policy)},
                                     {"reason", d.reason},
                                     {"priority", to_string(meta.priority)}})
        .add();
  }
  if (log_ != nullptr) {
    obs::ControlDecisionRecord rec;
    rec.at = now;
    rec.controller = "admission";
    rec.target = service_;
    rec.action = "shed";
    rec.reason = d.reason;
    rec.policy = to_string(options_.policy);
    rec.admission_limit = d.limit;
    rec.remaining_deadline = d.remaining_deadline;
    rec.priority = to_string(meta.priority);
    log_->append(std::move(rec));
  }
}

}  // namespace sora
