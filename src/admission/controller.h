// Per-service admission control and overload protection.
//
// The controller sits at a service's front door, between the caller (load
// balancer) and the replica queues. For every incoming request it makes one
// decision — admit or shed — from three ingredients:
//
//   1. an admission policy bounding the service's concurrent load: a static
//      token bucket, an AIMD or gradient-based (Vegas/Gradient2 style)
//      adaptive concurrency limit driven by observed RTT vs. min-RTT, or a
//      knee-coupled limit pinned to the Sora framework's current knee
//      estimate (the concurrency where extra load stops buying goodput);
//   2. CoDel-style deadline shedding: a request whose remaining propagated
//      deadline is smaller than the service's min-RTT estimate cannot make
//      its SLA no matter what, so it is rejected in ~0 time instead of
//      queueing past it;
//   3. priority awareness: batch traffic is admitted only while load is
//      below a configurable fraction of the limit, so interactive traffic
//      keeps the headroom under overload.
//
// Every shed appends a decision-log record (policy, reason, current limit,
// remaining deadline, priority) and bumps labeled MetricsRegistry counters,
// so shed counts are reconcilable across the three observability surfaces.
#pragma once

#include <cstdint>
#include <string>

#include "admission/request.h"
#include "common/time.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"

namespace sora {

enum class AdmissionPolicy {
  kNone,         ///< admit everything (deadline shedding may still apply)
  kTokenBucket,  ///< static rate limit
  kAimd,         ///< additive-increase / multiplicative-decrease limit
  kGradient,     ///< Vegas/Gradient2-style limit from RTT vs min-RTT
  kKneeCoupled,  ///< limit pinned to the published SCG knee estimate
};

const char* to_string(AdmissionPolicy policy);

struct AdmissionOptions {
  AdmissionPolicy policy = AdmissionPolicy::kGradient;

  // -- token bucket -----------------------------------------------------------
  double tokens_per_sec = 1000.0;
  double bucket_burst = 100.0;  ///< bucket capacity (tokens)

  // -- concurrency limits (AIMD / gradient / knee-coupled) --------------------
  double initial_limit = 32.0;
  double min_limit = 2.0;
  double max_limit = 4096.0;

  // -- AIMD -------------------------------------------------------------------
  /// Multiplicative backoff applied when a departure signals congestion
  /// (error, or RTT above aimd_latency_threshold).
  double aimd_backoff = 0.9;
  /// RTT above this is congestion; 0 = use 2x the current min-RTT estimate.
  SimTime aimd_latency_threshold = 0;
  /// Additive increase credited per uncongested departure (scaled by
  /// 1/limit, the classic one-per-window rule).
  double aimd_increase = 1.0;

  // -- gradient ---------------------------------------------------------------
  /// EWMA smoothing factor for the long-term RTT average (per departure).
  double gradient_smoothing = 0.1;
  /// Allowed long-RTT inflation over min-RTT before the limit shrinks.
  double gradient_tolerance = 1.5;

  // -- knee coupling ----------------------------------------------------------
  /// Admitted concurrency cap = knee * headroom (aggregate across replicas).
  double knee_headroom = 1.0;

  // -- deadline shedding ------------------------------------------------------
  /// Shed requests whose remaining deadline is below the min-RTT estimate.
  bool shed_expired_deadlines = true;
  /// Window after which the min-RTT estimate is restarted (tracks drift).
  SimTime min_rtt_window = sec(30);

  // -- priorities -------------------------------------------------------------
  /// Batch requests are admitted only while utilization (in-flight / limit,
  /// or spent burst fraction for the token bucket) is below this fraction.
  double batch_threshold = 0.75;
};

/// The outcome of one admission decision.
struct AdmissionDecision {
  bool admit = true;
  /// Shed reason: "concurrency_limit", "knee_limit", "no_tokens",
  /// "deadline"; empty for admits.
  const char* reason = "";
  double limit = 0.0;            ///< effective limit at decision time
  SimTime remaining_deadline = 0;  ///< deadline - now (0 = no deadline)
};

class AdmissionController {
 public:
  AdmissionController(std::string service, AdmissionOptions options);

  /// Decide whether to admit a request arriving `now`. Sheds are counted,
  /// logged and metered here; admits must be confirmed with on_admit().
  AdmissionDecision decide(const RequestMeta& meta, SimTime now);

  /// Confirm an admit: the request entered the service.
  void on_admit(SimTime now);

  /// Completion feedback: one admitted request departed with the given
  /// service-level RTT; `ok` is false for error responses (aborted visits).
  /// Drives the adaptive limiters and the min-RTT estimate.
  void on_departure(SimTime now, SimTime rtt, bool ok);

  /// Knee publication hook (Sora framework): the current SCG knee estimate
  /// in *aggregate* concurrency across the service's replicas. Under
  /// kKneeCoupled the admitted-concurrency cap follows knee * headroom.
  void set_knee(double aggregate_knee, SimTime now);

  // -- runtime control (ctl plane) --------------------------------------------

  /// Retarget the knee-coupled headroom at runtime. Under kKneeCoupled the
  /// limit is recomputed immediately from the last published knee; other
  /// policies pick it up at the next knee publication.
  void set_knee_headroom(double headroom, SimTime now);
  /// Re-clamp the adaptive limit range (and the current limit) to
  /// [min_limit, max_limit]; values <= 0 keep the existing bound.
  void set_limit_bounds(double min_limit, double max_limit, SimTime now);

  // -- introspection ----------------------------------------------------------

  const std::string& service() const { return service_; }
  const AdmissionOptions& options() const { return options_; }
  AdmissionPolicy policy() const { return options_.policy; }
  double current_limit() const { return limit_; }
  int in_flight() const { return in_flight_; }
  double knee() const { return knee_; }
  std::uint64_t knee_updates() const { return knee_updates_; }
  /// Current min-RTT estimate (0 until the first departure).
  SimTime min_rtt() const { return min_rtt_; }

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t shed() const { return shed_; }
  std::uint64_t shed_by_priority(Priority p) const {
    return shed_by_priority_[static_cast<int>(p)];
  }

  // -- observability wiring ---------------------------------------------------

  /// Append one record per shed (action "shed") and per limit change
  /// (action "limit_update") to this log.
  void set_decision_log(obs::DecisionLog* log) { log_ = log; }
  /// Count admits/sheds and export the current limit as a gauge.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  void refill_tokens(SimTime now);
  void note_limit_change(double old_limit, SimTime now, const char* why);
  void record_shed(const RequestMeta& meta, SimTime now,
                   const AdmissionDecision& d);
  /// Effective congestion threshold for AIMD (option or 2x min-RTT).
  SimTime aimd_threshold() const;

  std::string service_;
  AdmissionOptions options_;

  double limit_ = 0.0;     ///< current concurrency limit (unused for tokens)
  int in_flight_ = 0;      ///< admitted requests not yet departed
  double knee_ = 0.0;      ///< last published aggregate knee (0 = none yet)
  std::uint64_t knee_updates_ = 0;

  // Token bucket state.
  double tokens_ = 0.0;
  SimTime last_refill_ = 0;

  // RTT tracking: windowed min (deadline shedding, gradient floor) and a
  // long-term EWMA (gradient numerator).
  SimTime min_rtt_ = 0;
  SimTime window_min_rtt_ = 0;  ///< min within the current window
  SimTime min_rtt_window_start_ = 0;
  double ewma_rtt_ = 0.0;

  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t shed_by_priority_[kNumPriorities] = {0, 0};

  obs::DecisionLog* log_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* admit_counter_ = nullptr;
  obs::Gauge* limit_gauge_ = nullptr;
};

}  // namespace sora
