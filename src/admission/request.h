// Request metadata threaded from the workload generators down the call
// chain: class, priority and the propagated absolute deadline.
//
// Priorities make load shedding selective (batch traffic is sacrificed
// before interactive traffic); the deadline lets the admission layer
// fast-reject requests that can no longer meet their SLA instead of
// queueing them past it (CoDel-style "drop at the front door").
#pragma once

#include <cstdint>

#include "common/time.h"

namespace sora {

/// Request priority class. kHigh is interactive / latency-sensitive
/// traffic; kBatch is throughput traffic that is shed first under overload.
enum class Priority : std::uint8_t { kHigh = 0, kBatch = 1 };

inline constexpr int kNumPriorities = 2;

inline const char* to_string(Priority p) {
  return p == Priority::kHigh ? "high" : "batch";
}

/// Metadata carried by one end-user request and inherited by every
/// downstream call it issues.
struct RequestMeta {
  int request_class = 0;
  Priority priority = Priority::kHigh;
  /// Absolute deadline (sim time) by which the end-to-end response must
  /// leave the front-end; 0 = no deadline. Stamped by the Application from
  /// ApplicationConfig::request_sla when the generator left it unset, and
  /// propagated verbatim to downstream calls (an absolute deadline needs no
  /// per-hop arithmetic).
  SimTime deadline = 0;
};

}  // namespace sora
