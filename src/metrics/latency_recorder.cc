#include "metrics/latency_recorder.h"

#include <algorithm>

#include "common/stats.h"

namespace sora {

LatencyRecorder::LatencyRecorder(Simulator& sim, SimTime sla, SimTime bucket)
    : sim_(sim), sla_(sla), bucket_(bucket), start_(sim.now()) {}

TimelineBucket& LatencyRecorder::bucket_for(SimTime t) {
  const auto idx = static_cast<std::size_t>(
      std::max<SimTime>(0, t - start_) / bucket_);
  while (timeline_.size() <= idx) {
    TimelineBucket b;
    b.start = start_ + static_cast<SimTime>(timeline_.size()) * bucket_;
    timeline_.push_back(b);
  }
  return timeline_[idx];
}

void LatencyRecorder::record(SimTime rt) {
  hist_.record(rt);
  raw_.push_back(rt);
  TimelineBucket& b = bucket_for(sim_.now());
  ++b.completed;
  if (rt <= sla_) ++b.good;
  b.sum_rt += static_cast<double>(rt);
  b.max_rt = std::max(b.max_rt, rt);
}

double LatencyRecorder::percentile_ms(double p) const {
  if (raw_.empty()) return 0.0;
  std::vector<double> copy;
  copy.reserve(raw_.size());
  for (SimTime v : raw_) copy.push_back(static_cast<double>(v));
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, p) / 1e3;
}

double LatencyRecorder::average_goodput() const {
  const SimTime elapsed = sim_.now() - start_;
  if (elapsed <= 0) return 0.0;
  std::uint64_t good = 0;
  for (const auto& b : timeline_) good += b.good;
  return static_cast<double>(good) / to_sec(elapsed);
}

double LatencyRecorder::good_fraction() const {
  if (raw_.empty()) return 0.0;
  std::uint64_t good = 0;
  for (const auto& b : timeline_) good += b.good;
  return static_cast<double>(good) / static_cast<double>(raw_.size());
}

LinearHistogram LatencyRecorder::distribution_ms(double bucket_ms,
                                                 std::size_t buckets) const {
  LinearHistogram h(bucket_ms, buckets);
  for (SimTime v : raw_) h.record(to_msec(v));
  return h;
}

}  // namespace sora
