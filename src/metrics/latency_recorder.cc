#include "metrics/latency_recorder.h"

#include <algorithm>

#include "common/stats.h"

namespace sora {

LatencyRecorder::LatencyRecorder(Simulator& sim, SimTime sla, SimTime bucket)
    : sim_(sim), sla_(sla), bucket_(bucket), start_(sim.now()) {}

TimelineBucket& LatencyRecorder::bucket_for(SimTime t) {
  const auto idx = static_cast<std::size_t>(
      std::max<SimTime>(0, t - start_) / bucket_);
  while (timeline_.size() <= idx) {
    TimelineBucket b;
    b.start = start_ + static_cast<SimTime>(timeline_.size()) * bucket_;
    timeline_.push_back(b);
  }
  return timeline_[idx];
}

void LatencyRecorder::record(SimTime rt, bool ok) {
  TimelineBucket& b = bucket_for(sim_.now());
  if (!ok) {
    ++shed_;
    ++b.shed;
    return;
  }
  hist_.record(rt);
  sketch_.record(static_cast<double>(rt));
  ++b.completed;
  if (rt <= sla_) ++b.good;
  b.sum_rt += static_cast<double>(rt);
  b.max_rt = std::max(b.max_rt, rt);
}

double LatencyRecorder::percentile_ms(double p) const {
  return sketch_.percentile(p) / 1e3;  // kNoSample propagates through /
}

double LatencyRecorder::average_goodput() const {
  const SimTime elapsed = sim_.now() - start_;
  if (elapsed <= 0) return 0.0;
  std::uint64_t good = 0;
  for (const auto& b : timeline_) good += b.good;
  return static_cast<double>(good) / to_sec(elapsed);
}

double LatencyRecorder::good_fraction() const {
  // Shed requests count against the denominator: a rejection is not a
  // within-SLA response, even though it never entered the latency sketch.
  const std::uint64_t total = count() + shed_;
  if (total == 0) return 0.0;
  std::uint64_t good = 0;
  for (const auto& b : timeline_) good += b.good;
  return static_cast<double>(good) / static_cast<double>(total);
}

LinearHistogram LatencyRecorder::distribution_ms(double bucket_ms,
                                                 std::size_t buckets) const {
  // Rebuild the linear view from the sketch's cumulative counts: each grid
  // cell receives the samples whose sketch representative falls inside it.
  LinearHistogram h(bucket_ms, buckets);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i + 1 < buckets; ++i) {
    const double hi_us = bucket_ms * static_cast<double>(i + 1) * 1e3;
    const std::uint64_t cum = sketch_.count_at_or_below(hi_us);
    h.record_n(h.bucket_center(i), cum - below);
    below = cum;
  }
  h.record_n(h.bucket_center(buckets - 1), sketch_.count() - below);
  return h;
}

}  // namespace sora
