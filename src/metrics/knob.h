// ResourceKnob: a runtime-adjustable soft resource.
//
// A knob identifies one adaptable concurrency setting: either a service's
// entry thread pool, or a connection pool on an edge (caller -> target).
// It unifies how the Concurrency Estimator measures concurrency and how the
// Concurrency Adapter applies new sizes, regardless of pool kind — the
// paper's "generic soft resources" (Section 6, Applicability).
#pragma once

#include <string>

#include "common/ids.h"
#include "common/time.h"

namespace sora {

class Service;

class ResourceKnob {
 public:
  /// Entry-pool (server threads) knob on `service`.
  static ResourceKnob entry(Service* service);
  /// Connection-pool knob on the edge `service` -> `target`.
  static ResourceKnob edge(Service* service, std::string target);

  ResourceKnob() = default;

  bool valid() const { return service_ != nullptr; }
  bool is_edge() const { return !edge_target_.empty(); }
  Service* service() const { return service_; }
  const std::string& edge_target() const { return edge_target_; }

  /// Human-readable name, e.g. "cart/threads" or "home-timeline->post-storage".
  std::string label() const;

  /// The service whose span completions measure this knob's goodput: the
  /// target service for edge knobs, the owner for entry knobs.
  ServiceId completion_service() const;

  /// Current per-replica pool size.
  int current_size() const;
  /// Aggregate pool capacity across active replicas.
  int total_capacity() const;
  /// Aggregate slots in use right now.
  int total_in_use() const;
  /// Cumulative concurrency integral (slot-microseconds); snapshot deltas
  /// give exact time-averaged concurrency.
  double usage_integral() const;

  /// Apply a new per-replica size.
  void apply(int per_replica) const;

  friend bool operator==(const ResourceKnob& a, const ResourceKnob& b) {
    return a.service_ == b.service_ && a.edge_target_ == b.edge_target_;
  }

 private:
  ResourceKnob(Service* service, std::string edge_target)
      : service_(service), edge_target_(std::move(edge_target)) {}

  Service* service_ = nullptr;
  std::string edge_target_;
};

}  // namespace sora
