#include "metrics/scatter_sampler.h"

namespace sora {

ScatterSampler::ScatterSampler(Simulator& sim, Tracer& tracer,
                               ResourceKnob knob, SimTime interval,
                               SimTime rt_threshold, std::size_t max_points)
    : sim_(sim),
      knob_(knob),
      completion_service_(knob.completion_service()),
      interval_(interval),
      rt_threshold_(rt_threshold),
      max_points_(max_points) {
  tracer.add_span_listener([this](const Span& s) { on_span(s); });
}

ScatterSampler::~ScatterSampler() { stop(); }

void ScatterSampler::start() {
  if (running_) return;
  running_ = true;
  bucket_start_ = sim_.now();
  usage_snapshot_ = knob_.usage_integral();
  bucket_good_ = 0;
  bucket_all_ = 0;
  tick_ = sim_.schedule_periodic(interval_, [this] { on_tick(); });
}

void ScatterSampler::stop() {
  running_ = false;
  tick_.cancel();
}

void ScatterSampler::on_span(const Span& span) {
  if (!running_ || span.service != completion_service_) return;
  // Aborted visits (crash drops) are error responses, not completions:
  // they must not inflate goodput with their artificially short durations.
  if (span.failed) return;
  ++bucket_all_;
  if (span.duration() <= rt_threshold_) ++bucket_good_;
}

void ScatterSampler::on_tick() {
  const SimTime now = sim_.now();
  const SimTime dt = now - bucket_start_;
  if (dt <= 0) return;
  const double usage_now = knob_.usage_integral();
  const double secs = to_sec(dt);

  SamplePoint p;
  p.at = now;
  p.concurrency = (usage_now - usage_snapshot_) / static_cast<double>(dt);
  p.goodput = static_cast<double>(bucket_good_) / secs;
  p.throughput = static_cast<double>(bucket_all_) / secs;
  p.capacity = static_cast<double>(knob_.total_capacity());
  if (bucket_filter_ && !bucket_filter_(p)) {
    ++samples_dropped_;
  } else {
    points_.push_back(p);
    while (points_.size() > max_points_) points_.pop_front();
  }

  bucket_start_ = now;
  usage_snapshot_ = usage_now;
  bucket_good_ = 0;
  bucket_all_ = 0;
}

std::vector<SamplePoint> ScatterSampler::points() const {
  return std::vector<SamplePoint>(points_.begin(), points_.end());
}

std::vector<SamplePoint> ScatterSampler::points_since(SimTime from) const {
  std::vector<SamplePoint> out;
  for (const SamplePoint& p : points_) {
    if (p.at >= from) out.push_back(p);
  }
  return out;
}

}  // namespace sora
