#include "metrics/knob.h"

#include <cassert>

#include "svc/application.h"
#include "svc/service.h"

namespace sora {

ResourceKnob ResourceKnob::entry(Service* service) {
  assert(service != nullptr);
  return ResourceKnob(service, "");
}

ResourceKnob ResourceKnob::edge(Service* service, std::string target) {
  assert(service != nullptr && !target.empty());
  assert(service->edge_index_of(target) >= 0 &&
         "edge knob requires a configured edge pool");
  return ResourceKnob(service, std::move(target));
}

std::string ResourceKnob::label() const {
  if (!valid()) return "<invalid>";
  if (is_edge()) return service_->name() + "->" + edge_target_;
  return service_->name() + "/threads";
}

ServiceId ResourceKnob::completion_service() const {
  if (!valid()) return ServiceId{};
  if (is_edge()) {
    const Service* target = service_->app().service(edge_target_);
    return target != nullptr ? target->id() : ServiceId{};
  }
  return service_->id();
}

int ResourceKnob::current_size() const {
  if (!valid()) return 0;
  return is_edge() ? service_->edge_pool_size(edge_target_)
                   : service_->entry_pool_size();
}

int ResourceKnob::total_capacity() const {
  if (!valid()) return 0;
  return is_edge() ? service_->edge_capacity(edge_target_)
                   : service_->entry_capacity();
}

int ResourceKnob::total_in_use() const {
  if (!valid()) return 0;
  return is_edge() ? service_->edge_in_use(edge_target_)
                   : service_->entry_in_use();
}

double ResourceKnob::usage_integral() const {
  if (!valid()) return 0.0;
  return is_edge() ? service_->edge_usage_integral(edge_target_)
                   : service_->entry_usage_integral();
}

void ResourceKnob::apply(int per_replica) const {
  assert(valid());
  if (is_edge()) {
    service_->resize_edge_pool(edge_target_, per_replica);
  } else {
    service_->resize_entry_pool(per_replica);
  }
}

}  // namespace sora
