// Fine-grained concurrency / goodput / throughput sampling.
//
// Implements the Metrics Collection Phase of the SCG model (Section 3.2):
// every `interval` (default 100 ms, Table 1 sweeps it) one SamplePoint is
// emitted pairing the exact time-averaged concurrency of a knob's pools
// with the goodput (completions within the current response-time threshold)
// and throughput measured at the knob's completion service over the same
// bucket. A bounded ring of recent points forms the scatter graph that the
// Estimation Phase consumes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "metrics/knob.h"
#include "sim/simulator.h"
#include "trace/tracer.h"

namespace sora {

struct SamplePoint {
  SimTime at = 0;            ///< end of the bucket
  double concurrency = 0.0;  ///< time-averaged slots in use
  double goodput = 0.0;      ///< req/s within threshold
  double throughput = 0.0;   ///< req/s total
  double capacity = 0.0;     ///< aggregate pool capacity at sample time;
                             ///< buckets pinned at capacity are
                             ///< right-censored by the model (their latency
                             ///< collapse is self-inflicted queueing, not
                             ///< evidence about higher concurrency)
};

class ScatterSampler {
 public:
  /// `rt_threshold` is the service-level response-time threshold (deadline)
  /// used for goodput; adjustable at runtime via set_rt_threshold (the RT
  /// Threshold Propagation Phase updates it).
  ScatterSampler(Simulator& sim, Tracer& tracer, ResourceKnob knob,
                 SimTime interval, SimTime rt_threshold,
                 std::size_t max_points = 4096);
  ~ScatterSampler();

  ScatterSampler(const ScatterSampler&) = delete;
  ScatterSampler& operator=(const ScatterSampler&) = delete;

  void start();
  void stop();

  void set_rt_threshold(SimTime t) { rt_threshold_ = t; }
  SimTime rt_threshold() const { return rt_threshold_; }
  SimTime interval() const { return interval_; }
  const ResourceKnob& knob() const { return knob_; }

  /// Fault-injection hook: when set and returning false for a finished
  /// bucket, that SamplePoint is discarded instead of entering the scatter
  /// (models a lost metrics report). Accumulators still reset, so the next
  /// bucket is unaffected. Pass nullptr to clear.
  using BucketFilter = std::function<bool(const SamplePoint&)>;
  void set_bucket_filter(BucketFilter f) { bucket_filter_ = std::move(f); }
  /// Buckets discarded by the filter over this sampler's lifetime.
  std::uint64_t samples_dropped() const { return samples_dropped_; }

  /// All retained points, oldest first.
  std::vector<SamplePoint> points() const;
  /// Points whose bucket ended at or after `from`.
  std::vector<SamplePoint> points_since(SimTime from) const;
  std::size_t size() const { return points_.size(); }
  void clear() { points_.clear(); }

 private:
  void on_span(const Span& span);
  void on_tick();

  Simulator& sim_;
  ResourceKnob knob_;
  ServiceId completion_service_;
  SimTime interval_;
  SimTime rt_threshold_;
  std::size_t max_points_;

  bool running_ = false;
  EventHandle tick_;
  BucketFilter bucket_filter_;
  std::uint64_t samples_dropped_ = 0;

  // current bucket accumulators
  SimTime bucket_start_ = 0;
  double usage_snapshot_ = 0.0;
  std::uint64_t bucket_good_ = 0;
  std::uint64_t bucket_all_ = 0;

  std::deque<SamplePoint> points_;
};

}  // namespace sora
