// End-to-end latency and goodput recording.
//
// The recorder is wired as the workload generator's completion observer. It
// maintains (a) a mergeable quantile sketch plus a log-bucketed histogram
// for tail percentiles (Table 2) in memory independent of the sample count,
// (b) a per-bucket timeline of mean/max response time, throughput and
// goodput for the figure-style timeline plots (Figures 10-12), and (c) a
// linear-grid view of the response-time distribution derived from the
// sketch (Figure 4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/time.h"
#include "obs/quantile_sketch.h"
#include "sim/simulator.h"

namespace sora {

/// One timeline bucket of aggregate client-side metrics.
struct TimelineBucket {
  SimTime start = 0;
  std::uint64_t completed = 0;
  std::uint64_t good = 0;  ///< rt <= sla threshold
  std::uint64_t shed = 0;  ///< rejected by admission control
  double sum_rt = 0.0;     ///< microseconds
  SimTime max_rt = 0;

  double mean_rt_ms() const {
    return completed ? to_msec(static_cast<SimTime>(sum_rt)) /
                           static_cast<double>(completed)
                     : 0.0;
  }
  double max_rt_ms() const { return to_msec(max_rt); }
};

class LatencyRecorder {
 public:
  /// `sla` is the end-to-end goodput threshold (e.g. 400 ms in Figure 10);
  /// `bucket` is the timeline resolution.
  LatencyRecorder(Simulator& sim, SimTime sla, SimTime bucket = sec(1));

  /// Record one completed request. `ok == false` means admission control
  /// shed it: the rejection counts against goodput (it is not a served
  /// response) but stays out of the latency sketch/histogram, so
  /// percentiles describe admitted requests only.
  void record(SimTime rt, bool ok = true);

  // -- summary ----------------------------------------------------------------

  /// Served (admitted and completed) requests.
  std::uint64_t count() const { return sketch_.count(); }
  /// Requests rejected by admission control.
  std::uint64_t shed() const { return shed_; }
  /// p-th response-time percentile in milliseconds, answered by the quantile
  /// sketch (relative error bounded by the sketch's accuracy, default 1%).
  /// Returns kNoSample when nothing has been recorded.
  double percentile_ms(double p) const;
  double mean_ms() const { return to_msec(static_cast<SimTime>(hist_.mean())); }

  /// Goodput in requests/second over the whole recording window.
  double average_goodput() const;
  /// Fraction of requests within the SLA.
  double good_fraction() const;

  SimTime sla() const { return sla_; }
  void set_sla(SimTime sla) { sla_ = sla; }

  // -- timeline ---------------------------------------------------------------

  const std::vector<TimelineBucket>& timeline() const { return timeline_; }
  SimTime bucket_width() const { return bucket_; }

  /// Response-time distribution on a linear ms grid (for Figure 4), rebuilt
  /// from the sketch (counts are exact up to the sketch's bucket
  /// granularity).
  LinearHistogram distribution_ms(double bucket_ms, std::size_t buckets) const;

  const LatencyHistogram& histogram() const { return hist_; }
  /// The mergeable response-time sketch (microsecond unit), for SLO
  /// reporting and cross-run aggregation.
  const obs::QuantileSketch& sketch() const { return sketch_; }

 private:
  TimelineBucket& bucket_for(SimTime t);

  Simulator& sim_;
  SimTime sla_;
  SimTime bucket_;
  SimTime start_;
  std::uint64_t shed_ = 0;
  LatencyHistogram hist_;
  obs::QuantileSketch sketch_;
  std::vector<TimelineBucket> timeline_;
};

}  // namespace sora
