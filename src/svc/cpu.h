// Processor-sharing CPU model with concurrency overhead.
//
// Each service instance owns a CpuScheduler configured with a CPU limit
// (`cores`, fractional allowed — Kubernetes CPU quotas) and an overhead
// coefficient beta. Jobs submitted with a CPU demand (microseconds of work)
// share the cores: with n active jobs each progresses at rate
//
//     r(n) = min(1, cores/n) / (1 + beta * ln(1 + max(0, n - cores)/cores))
//
// The divisor models multithreading overhead (context switches, cache and
// scheduler contention) that grows once concurrency exceeds the core count;
// the logarithm saturates the penalty, matching the moderate (tens of
// percent, not multiples) capacity loss real servers show at very high
// oversubscription.
// This is the mechanism behind the paper's Figure 3: too few concurrent
// jobs leave cores idle (left side of the goodput curve), too many inflate
// everyone's latency (right side).
//
// Implementation uses the classic virtual-time formulation of PS so each
// arrival/completion costs O(log n).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/function.h"
#include "common/time.h"
#include "sim/simulator.h"

namespace sora {

class CpuScheduler {
 public:
  using Completion = UniqueFunction;

  CpuScheduler(Simulator& sim, double cores, double overhead_beta);

  /// Submit a job needing `demand` microseconds of CPU work; `done` runs at
  /// completion. Demands <= 0 complete immediately (synchronously).
  void submit(SimTime demand, Completion done);

  /// Change the CPU limit at runtime (vertical scaling). Takes effect
  /// immediately for all active jobs.
  void set_cores(double cores);

  double cores() const { return cores_; }
  double overhead_beta() const { return beta_; }
  int active_jobs() const { return static_cast<int>(jobs_.size()); }

  // -- metrics ---------------------------------------------------------------

  /// Cumulative busy time in core-microseconds up to now. Observers
  /// snapshot this and divide deltas by (elapsed * cores) for utilization.
  double busy_integral() const;

  std::uint64_t jobs_completed() const { return jobs_completed_; }

 private:
  struct Job {
    Completion done;
  };

  /// Per-job progress rate with n active jobs. Memoized per n (invalidated
  /// by set_cores): advance() calls this on every event affecting the
  /// instance and the log1p dominates otherwise.
  double rate(int n) const;
  double rate_uncached(int n) const;

  /// Fold elapsed wall time into virtual time and the busy integral.
  void advance();
  /// (Re)schedule the completion event for the earliest-finishing job.
  void reschedule();
  void complete_front();

  Simulator& sim_;
  double cores_;
  double beta_;

  // Virtual time: every active job has received v_ service; a job with
  // finish tag f completes when v_ reaches f. Multimap orders by finish tag.
  double v_ = 0.0;
  std::multimap<double, Job> jobs_;
  SimTime last_advance_ = 0;
  EventHandle completion_event_;

  // busy integral: core-microseconds actually consumed
  double busy_integral_ = 0.0;

  // rate(n) memo, indexed by n; grown lazily, cleared on set_cores.
  mutable std::vector<double> rate_cache_;

  std::uint64_t jobs_completed_ = 0;
};

}  // namespace sora
