#include "svc/soft_resource.h"

#include <cassert>

#include "sim/simulator.h"

namespace sora {

const char* to_string(PoolKind kind) {
  switch (kind) {
    case PoolKind::kServerThreads:
      return "server-threads";
    case PoolKind::kDbConnections:
      return "db-connections";
    case PoolKind::kClientConnections:
      return "client-connections";
  }
  return "?";
}

SoftResourcePool::SoftResourcePool(Simulator& sim, PoolKind kind,
                                   std::string name, int capacity)
    : sim_(sim), kind_(kind), name_(std::move(name)), capacity_(capacity) {
  assert(capacity >= 1);
  last_change_ = sim_.now();
}

void SoftResourcePool::account() {
  const SimTime now = sim_.now();
  use_integral_ += static_cast<double>(in_use_) *
                   static_cast<double>(now - last_change_);
  last_change_ = now;
}

void SoftResourcePool::acquire(Grant grant) {
  ++total_acquires_;
  if (in_use_ < capacity_) {
    account();
    ++in_use_;
    grant();
    return;
  }
  ++total_waits_;
  waiters_.push_back(Waiter{std::move(grant), sim_.now()});
}

void SoftResourcePool::release() {
  assert(in_use_ > 0 && "release without matching acquire");
  account();
  --in_use_;
  // Admit the next waiter if the (possibly shrunk) capacity allows.
  if (!waiters_.empty() && in_use_ < capacity_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    total_wait_time_ += sim_.now() - w.since;
    account();
    ++in_use_;
    w.grant();
  }
}

void SoftResourcePool::resize(int new_capacity) {
  assert(new_capacity >= 1);
  capacity_ = new_capacity;
  // Growth: admit newly fitting waiters immediately.
  while (!waiters_.empty() && in_use_ < capacity_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    total_wait_time_ += sim_.now() - w.since;
    account();
    ++in_use_;
    w.grant();
  }
}

double SoftResourcePool::usage_integral() const {
  return use_integral_ + static_cast<double>(in_use_) *
                             static_cast<double>(sim_.now() - last_change_);
}

}  // namespace sora
