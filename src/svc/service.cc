#include "svc/service.h"

#include <cassert>

#include "common/log.h"
#include "sim/simulator.h"
#include "svc/application.h"
#include "trace/tracer.h"

namespace sora {

Service::Service(Application& app, ServiceId id, ServiceConfig config, Rng rng)
    : app_(app),
      id_(id),
      config_(std::move(config)),
      rng_(rng),
      cpu_limit_(config_.cores),
      entry_pool_size_(config_.entry_pool_size) {}

Service::~Service() = default;

void Service::compile_and_start() {
  // Edge pools: stable index order (std::map iteration = name order).
  for (const auto& [target, edge_cfg] : config_.edge_pools) {
    edge_index_.emplace(target, static_cast<int>(edge_names_.size()));
    edge_names_.push_back(target);
    edge_configs_.push_back(edge_cfg);
    edge_pool_sizes_.push_back(edge_cfg.size);
  }

  // Behaviours: dense vector indexed by class, falling back to class 0.
  int max_class = 0;
  for (const auto& [cls, _] : config_.classes) max_class = std::max(max_class, cls);
  behaviors_.resize(static_cast<std::size_t>(max_class) + 1);
  const ClassBehavior* fallback = nullptr;
  if (auto it = config_.classes.find(0); it != config_.classes.end()) {
    fallback = &it->second;
  }
  for (int cls = 0; cls <= max_class; ++cls) {
    const ClassBehavior* src = fallback;
    if (auto it = config_.classes.find(cls); it != config_.classes.end()) {
      src = &it->second;
    }
    CompiledBehavior& out = behaviors_[static_cast<std::size_t>(cls)];
    if (src == nullptr) continue;  // leaf default: zero demand, no calls
    out.request_demand = src->request_demand;
    out.response_demand = src->response_demand;
    for (const CallGroup& group : src->call_groups) {
      CompiledGroup cg;
      for (const std::string& target_name : group.targets) {
        Service* target = app_.service(target_name);
        assert(target != nullptr && "call target does not exist");
        cg.calls.push_back(CompiledCall{target, edge_index_of(target_name)});
      }
      out.groups.push_back(std::move(cg));
    }
    for (const AsyncCallback& cb : src->async_callbacks) {
      Service* target = app_.service(cb.target);
      assert(target != nullptr && "async callback target does not exist");
      out.async_callbacks.push_back(
          CompiledAsyncCall{target, cb.request_class, cb.priority});
    }
  }
  refresh_samplers();

  scale_replicas(std::max(1, config_.initial_replicas));
}

void Service::refresh_samplers() {
  for (CompiledBehavior& b : behaviors_) {
    b.request_sampler = LognormalSampler(
        b.request_demand.mean_us * demand_scale_, b.request_demand.cv);
    b.response_sampler = LognormalSampler(
        b.response_demand.mean_us * demand_scale_, b.response_demand.cv);
  }
}

void Service::set_demand_scale(double scale) {
  demand_scale_ = scale;
  refresh_samplers();
}

const CompiledBehavior& Service::behavior(int request_class) const {
  if (request_class >= 0 &&
      static_cast<std::size_t>(request_class) < behaviors_.size()) {
    return behaviors_[static_cast<std::size_t>(request_class)];
  }
  return behaviors_.front();
}

ServiceInstance& Service::pick_replica(Priority priority) {
  assert(active_count_ > 0 && "dispatch to service with no active replicas");
  // Collect outstanding counts of active replicas in order.
  pick_outstanding_.clear();
  pick_index_.clear();
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i]->active()) {
      pick_outstanding_.push_back(instances_[i]->outstanding());
      pick_index_.push_back(i);
    }
  }
  const std::size_t pick = lb_.pick(pick_outstanding_, priority);
  return *instances_[pick_index_[pick]];
}

void Service::dispatch(TraceId trace, SpanId span, const RequestMeta& meta,
                       UniqueFunction done, bool pre_admitted) {
  if (admission_ != nullptr && !pre_admitted) {
    const SimTime now = app_.sim().now();
    const AdmissionDecision d = admission_->decide(meta, now);
    if (!d.admit) {
      // Shed a mid-chain call: close the caller-opened span as a rejected
      // error response. The caller sees an (instant) error return.
      Tracer& tracer = app_.tracer();
      Span& s = tracer.span(trace, span);
      s.failed = true;
      s.rejected = true;
      tracer.finish_span(trace, span, now);
      done();
      return;
    }
    admission_->on_admit(now);
  }
  pick_replica(meta.priority).serve(trace, span, meta, std::move(done));
}

void Service::note_request_departure(SimTime rtt, bool ok) {
  if (admission_ != nullptr) {
    admission_->on_departure(app_.sim().now(), rtt, ok);
  }
}

void Service::revive(ServiceInstance& inst) {
  inst.set_active(true);
  // Bring the revived replica in line with current knob settings.
  inst.cpu().set_cores(cpu_limit_);
  inst.entry_pool().resize(entry_pool_size_ <= 0 ? 1'000'000'000
                                                 : entry_pool_size_);
  for (std::size_t e = 0; e < edge_pool_sizes_.size(); ++e) {
    if (auto* pool = inst.edge_pool(static_cast<int>(e))) {
      pool->resize(std::max(1, edge_pool_sizes_[e]));
    }
  }
  ++active_count_;
}

void Service::scale_replicas(int target) {
  target = std::max(target, 1);
  // Reactivate drained replicas first, then create fresh ones.
  if (target > active_count_) {
    for (auto& inst : instances_) {
      if (active_count_ >= target) break;
      if (!inst->active()) revive(*inst);
    }
    while (active_count_ < target) {
      instances_.push_back(
          std::make_unique<ServiceInstance>(*this, app_.instance_ids().next()));
      ++active_count_;
    }
  } else {
    // Deactivate from the back; in-flight requests drain naturally.
    for (std::size_t i = instances_.size(); i-- > 0 && active_count_ > target;) {
      if (instances_[i]->active()) {
        instances_[i]->set_active(false);
        --active_count_;
      }
    }
  }
}

bool Service::crash_replica(std::size_t index, bool drop_inflight) {
  if (index >= instances_.size()) return false;
  ServiceInstance& inst = *instances_[index];
  if (!inst.active()) return false;
  if (active_count_ <= 1) return false;  // never kill the last replica
  inst.set_active(false);
  --active_count_;
  if (drop_inflight) inst.condemn_in_flight();
  app_.metrics()
      .counter("fault.crashes", {{"service", name()}})
      .add();
  return true;
}

bool Service::restore_replica(std::size_t index) {
  if (index >= instances_.size()) return false;
  ServiceInstance& inst = *instances_[index];
  if (inst.active()) return false;
  revive(inst);
  return true;
}

std::uint64_t Service::visits_dropped() const {
  std::uint64_t total = 0;
  for (const auto& inst : instances_) total += inst->visits_dropped();
  return total;
}

void Service::set_cpu_limit(double cores) {
  cpu_limit_ = cores;
  for (auto& inst : instances_) inst->cpu().set_cores(cores);
}

void Service::resize_entry_pool(int per_replica) {
  entry_pool_size_ = per_replica;
  const int effective = per_replica <= 0 ? 1'000'000'000 : per_replica;
  for (auto& inst : instances_) inst->entry_pool().resize(effective);
  app_.metrics()
      .counter("pool.resizes", {{"service", name()}, {"pool", "entry"}})
      .add();
}

void Service::resize_edge_pool(const std::string& target, int per_replica) {
  const int idx = edge_index_of(target);
  assert(idx >= 0 && "resizing an unconfigured edge pool");
  edge_pool_sizes_[static_cast<std::size_t>(idx)] = per_replica;
  for (auto& inst : instances_) {
    if (auto* pool = inst->edge_pool(idx)) {
      pool->resize(std::max(1, per_replica));
    }
  }
  app_.metrics()
      .counter("pool.resizes", {{"service", name()}, {"pool", "->" + target}})
      .add();
}

int Service::edge_pool_size(const std::string& target) const {
  const int idx = edge_index_of(target);
  return idx < 0 ? 0 : edge_pool_sizes_[static_cast<std::size_t>(idx)];
}

int Service::edge_index_of(const std::string& target) const {
  auto it = edge_index_.find(target);
  return it == edge_index_.end() ? -1 : it->second;
}

int Service::entry_in_use() const {
  int total = 0;
  for (const auto& inst : instances_) {
    if (inst->active()) total += inst->entry_pool().in_use();
  }
  return total;
}

int Service::entry_capacity() const {
  int total = 0;
  for (const auto& inst : instances_) {
    if (inst->active()) total += inst->entry_pool().capacity();
  }
  return total;
}

double Service::entry_usage_integral() const {
  double total = 0.0;
  for (const auto& inst : instances_) {
    total += inst->entry_pool().usage_integral();
  }
  return total;
}

int Service::edge_in_use(const std::string& target) const {
  const int idx = edge_index_of(target);
  if (idx < 0) return 0;
  int total = 0;
  for (const auto& inst : instances_) {
    if (!inst->active()) continue;
    if (const auto* pool = inst->edge_pool(idx)) total += pool->in_use();
  }
  return total;
}

int Service::edge_capacity(const std::string& target) const {
  const int idx = edge_index_of(target);
  if (idx < 0) return 0;
  int total = 0;
  for (const auto& inst : instances_) {
    if (!inst->active()) continue;
    if (const auto* pool = inst->edge_pool(idx)) total += pool->capacity();
  }
  return total;
}

double Service::edge_usage_integral(const std::string& target) const {
  const int idx = edge_index_of(target);
  if (idx < 0) return 0.0;
  double total = 0.0;
  for (const auto& inst : instances_) {
    if (const auto* pool = inst->edge_pool(idx)) {
      total += pool->usage_integral();
    }
  }
  return total;
}

double Service::cpu_busy_integral() const {
  double total = 0.0;
  for (const auto& inst : instances_) total += inst->cpu().busy_integral();
  return total;
}

double Service::cpu_capacity() const {
  double total = 0.0;
  for (const auto& inst : instances_) {
    if (inst->active()) total += inst->cpu().cores();
  }
  return total;
}

void Service::publish_metrics(obs::MetricsRegistry& metrics) const {
  const obs::MetricLabels svc_label{{"service", name()}};
  metrics.gauge("service.replicas", svc_label)
      .set(static_cast<double>(active_count_));
  metrics.gauge("service.cpu_limit_cores", svc_label).set(cpu_limit_);
  metrics.counter("service.cpu_busy_core_us", svc_label)
      .set_total(cpu_busy_integral());
  metrics.counter("service.completions", svc_label)
      .set_total(static_cast<double>(completions_));

  // Aggregate a pool family (entry or one edge) across replicas: gauges
  // over active replicas, monotonic wait totals over all replicas.
  auto publish_pool = [&](const std::string& pool_name,
                          auto&& pool_of /* instance -> pool* */) {
    int capacity = 0, in_use = 0;
    std::size_t waiting = 0;
    double waits = 0.0, wait_us = 0.0;
    for (const auto& inst : instances_) {
      const SoftResourcePool* pool = pool_of(*inst);
      if (pool == nullptr) continue;
      waits += static_cast<double>(pool->total_waits());
      wait_us += static_cast<double>(pool->total_wait_time());
      if (!inst->active()) continue;
      capacity += pool->capacity();
      in_use += pool->in_use();
      waiting += pool->waiting();
    }
    const obs::MetricLabels labels{{"service", name()}, {"pool", pool_name}};
    metrics.gauge("pool.capacity", labels).set(capacity);
    metrics.gauge("pool.in_use", labels).set(in_use);
    metrics.gauge("pool.queue_depth", labels)
        .set(static_cast<double>(waiting));
    metrics.counter("pool.waits", labels).set_total(waits);
    metrics.counter("pool.wait_time_us", labels).set_total(wait_us);
  };

  publish_pool("entry", [](const ServiceInstance& inst) {
    return &inst.entry_pool();
  });
  for (const auto& [target, idx] : edge_index_) {
    publish_pool("->" + target, [idx = idx](const ServiceInstance& inst) {
      return inst.edge_pool(idx);
    });
  }
}

}  // namespace sora
