// Soft-resource pools.
//
// A SoftResourcePool models the concurrency-gating software entities the
// paper calls "soft resources": server thread pools (SpringBoot Cart),
// database connection pools (Golang Catalogue) and RPC client connection
// pools (Thrift Home-Timeline -> Post Storage). A pool has a capacity;
// requests acquire a slot before proceeding and queue FIFO when none is
// free. Pools are resizable at runtime with live semantics: growing admits
// waiters immediately, shrinking takes effect lazily as slots are released
// (mirroring how JMX/Jolokia thread-pool resizes and database/sql
// SetMaxOpenConns behave).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/function.h"
#include "common/time.h"

namespace sora {

class Simulator;

enum class PoolKind {
  kServerThreads,      ///< gates request handling at a service instance
  kDbConnections,      ///< gates calls into a database child
  kClientConnections,  ///< gates RPCs from a caller to one callee service
};

const char* to_string(PoolKind kind);

class SoftResourcePool {
 public:
  using Grant = UniqueFunction;

  SoftResourcePool(Simulator& sim, PoolKind kind, std::string name,
                   int capacity);

  /// Request a slot. If one is free the grant runs synchronously; otherwise
  /// the request queues FIFO and the grant runs when a slot frees up.
  void acquire(Grant grant);

  /// Return a slot, admitting the next waiter if any.
  void release();

  /// Change capacity at runtime. Growth admits as many waiters as newly fit;
  /// shrinking never revokes slots already in use.
  void resize(int new_capacity);

  int capacity() const { return capacity_; }
  int in_use() const { return in_use_; }
  std::size_t waiting() const { return waiters_.size(); }
  PoolKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  // -- metrics ---------------------------------------------------------------

  /// Cumulative integral of in_use over time (slot-microseconds) up to now.
  /// Observers snapshot this and divide deltas by elapsed time to get the
  /// exact time-averaged concurrency over their own window — the
  /// concurrency axis of the SCG scatter graph.
  double usage_integral() const;

  std::uint64_t total_acquires() const { return total_acquires_; }
  std::uint64_t total_waits() const { return total_waits_; }
  /// Cumulative microseconds spent by requests in the wait queue.
  SimTime total_wait_time() const { return total_wait_time_; }

 private:
  struct Waiter {
    Grant grant;
    SimTime since;
  };

  void account();  ///< fold elapsed time into the usage integral.

  Simulator& sim_;
  PoolKind kind_;
  std::string name_;
  int capacity_;
  int in_use_ = 0;

  std::deque<Waiter> waiters_;

  // usage integral for time-averaged concurrency
  SimTime last_change_ = 0;
  double use_integral_ = 0.0;  // microseconds x slots

  std::uint64_t total_acquires_ = 0;
  std::uint64_t total_waits_ = 0;
  SimTime total_wait_time_ = 0;
};

}  // namespace sora
