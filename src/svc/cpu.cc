#include "svc/cpu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace sora {

namespace {
// Slack when matching virtual finish tags: tags are microseconds of work, so
// 1e-3 is one nanosecond of residual demand.
constexpr double kTagEps = 1e-3;
}  // namespace

CpuScheduler::CpuScheduler(Simulator& sim, double cores, double overhead_beta)
    : sim_(sim), cores_(cores), beta_(overhead_beta) {
  assert(cores > 0.0);
  assert(overhead_beta >= 0.0);
  last_advance_ = sim_.now();
}

double CpuScheduler::rate_uncached(int n) const {
  const double nd = static_cast<double>(n);
  double r = std::min(1.0, cores_ / nd);
  if (nd > cores_) {
    r /= 1.0 + beta_ * std::log1p((nd - cores_) / cores_);
  }
  return r;
}

double CpuScheduler::rate(int n) const {
  if (n <= 0) return 1.0;
  const auto idx = static_cast<std::size_t>(n);
  if (idx >= rate_cache_.size()) {
    rate_cache_.reserve(idx + 16);
    for (std::size_t i = rate_cache_.size(); i <= idx + 15; ++i) {
      rate_cache_.push_back(rate_uncached(static_cast<int>(i)));
    }
  }
  return rate_cache_[idx];
}

void CpuScheduler::advance() {
  const SimTime now = sim_.now();
  const SimTime dt = now - last_advance_;
  if (dt <= 0) return;
  const int n = static_cast<int>(jobs_.size());
  if (n > 0) {
    v_ += static_cast<double>(dt) * rate(n);
    // Cores occupied: overhead keeps the CPU busy even when useful progress
    // is degraded, matching what a utilization probe (cAdvisor) reports.
    busy_integral_ +=
        static_cast<double>(dt) * std::min(static_cast<double>(n), cores_);
  }
  last_advance_ = now;
}

void CpuScheduler::reschedule() {
  completion_event_.cancel();
  if (jobs_.empty()) return;
  const double remaining_v = jobs_.begin()->first - v_;
  const double r = rate(static_cast<int>(jobs_.size()));
  const double dt = std::max(remaining_v, 0.0) / r;
  const SimTime delay = std::max<SimTime>(
      0, static_cast<SimTime>(std::ceil(dt)));
  completion_event_ = sim_.schedule_after(delay, [this] { complete_front(); });
}

void CpuScheduler::complete_front() {
  advance();
  // Typically exactly one job finishes per completion event; keep that case
  // free of heap traffic and only spill ties into a vector.
  Completion first;
  std::vector<Completion> rest;
  std::uint64_t n = 0;
  while (!jobs_.empty() && jobs_.begin()->first <= v_ + kTagEps) {
    Completion done = std::move(jobs_.begin()->second.done);
    jobs_.erase(jobs_.begin());
    if (n++ == 0) {
      first = std::move(done);
    } else {
      rest.push_back(std::move(done));
    }
  }
  if (n == 0 && !jobs_.empty()) {
    // Rounding scheduled us a hair early; the front job has sub-nanosecond
    // residual work. Complete it rather than spin.
    first = std::move(jobs_.begin()->second.done);
    jobs_.erase(jobs_.begin());
    n = 1;
  }
  jobs_completed_ += n;
  reschedule();
  if (n > 0) first();
  for (auto& done : rest) done();
}

void CpuScheduler::submit(SimTime demand, Completion done) {
  if (demand <= 0) {
    ++jobs_completed_;
    done();
    return;
  }
  advance();
  jobs_.emplace(v_ + static_cast<double>(demand), Job{std::move(done)});
  reschedule();
}

void CpuScheduler::set_cores(double cores) {
  assert(cores > 0.0);
  advance();
  cores_ = cores;
  rate_cache_.clear();
  reschedule();
}

double CpuScheduler::busy_integral() const {
  double busy = busy_integral_;
  const int n = static_cast<int>(jobs_.size());
  if (n > 0) {
    busy += static_cast<double>(sim_.now() - last_advance_) *
            std::min(static_cast<double>(n), cores_);
  }
  return busy;
}

}  // namespace sora
