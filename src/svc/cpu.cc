#include "svc/cpu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace sora {

namespace {
// Slack when matching virtual finish tags: tags are microseconds of work, so
// 1e-3 is one nanosecond of residual demand.
constexpr double kTagEps = 1e-3;
}  // namespace

CpuScheduler::CpuScheduler(Simulator& sim, double cores, double overhead_beta)
    : sim_(sim), cores_(cores), beta_(overhead_beta) {
  assert(cores > 0.0);
  assert(overhead_beta >= 0.0);
  last_advance_ = sim_.now();
}

double CpuScheduler::rate(int n) const {
  if (n <= 0) return 1.0;
  const double nd = static_cast<double>(n);
  double r = std::min(1.0, cores_ / nd);
  if (nd > cores_) {
    r /= 1.0 + beta_ * std::log1p((nd - cores_) / cores_);
  }
  return r;
}

void CpuScheduler::advance() {
  const SimTime now = sim_.now();
  const SimTime dt = now - last_advance_;
  if (dt <= 0) return;
  const int n = static_cast<int>(jobs_.size());
  if (n > 0) {
    v_ += static_cast<double>(dt) * rate(n);
    // Cores occupied: overhead keeps the CPU busy even when useful progress
    // is degraded, matching what a utilization probe (cAdvisor) reports.
    busy_integral_ +=
        static_cast<double>(dt) * std::min(static_cast<double>(n), cores_);
  }
  last_advance_ = now;
}

void CpuScheduler::reschedule() {
  completion_event_.cancel();
  if (jobs_.empty()) return;
  const double remaining_v = jobs_.begin()->first - v_;
  const double r = rate(static_cast<int>(jobs_.size()));
  const double dt = std::max(remaining_v, 0.0) / r;
  const SimTime delay = std::max<SimTime>(
      0, static_cast<SimTime>(std::ceil(dt)));
  completion_event_ = sim_.schedule_after(delay, [this] { complete_front(); });
}

void CpuScheduler::complete_front() {
  advance();
  std::vector<Completion> ready;
  while (!jobs_.empty() && jobs_.begin()->first <= v_ + kTagEps) {
    ready.push_back(std::move(jobs_.begin()->second.done));
    jobs_.erase(jobs_.begin());
  }
  if (ready.empty() && !jobs_.empty()) {
    // Rounding scheduled us a hair early; the front job has sub-nanosecond
    // residual work. Complete it rather than spin.
    ready.push_back(std::move(jobs_.begin()->second.done));
    jobs_.erase(jobs_.begin());
  }
  jobs_completed_ += ready.size();
  reschedule();
  for (auto& done : ready) done();
}

void CpuScheduler::submit(SimTime demand, Completion done) {
  if (demand <= 0) {
    ++jobs_completed_;
    done();
    return;
  }
  advance();
  jobs_.emplace(v_ + static_cast<double>(demand), Job{std::move(done)});
  reschedule();
}

void CpuScheduler::set_cores(double cores) {
  assert(cores > 0.0);
  advance();
  cores_ = cores;
  reschedule();
}

double CpuScheduler::busy_integral() const {
  double busy = busy_integral_;
  const int n = static_cast<int>(jobs_.size());
  if (n > 0) {
    busy += static_cast<double>(sim_.now() - last_advance_) *
            std::min(static_cast<double>(n), cores_);
  }
  return busy;
}

}  // namespace sora
