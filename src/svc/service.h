// A logical microservice: a set of replicas plus routing and runtime knobs.
//
// The Service is the unit the autoscalers and the Concurrency Adapter act
// on: replicas can be added/removed (horizontal scaling), the per-replica
// CPU limit changed (vertical scaling), and the soft-resource pools resized
// (Sora's contribution).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "admission/controller.h"
#include "admission/request.h"
#include "common/function.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "svc/config.h"
#include "svc/instance.h"
#include "svc/load_balancer.h"

namespace sora {

class Application;
class Simulator;
class Tracer;

/// A downstream call with its target resolved and its connection-pool slot
/// (if any) identified.
struct CompiledCall {
  Service* target = nullptr;
  int edge_index = -1;  ///< index into the caller instance's edge pools, -1 = ungated
};

struct CompiledGroup {
  std::vector<CompiledCall> calls;
};

/// An async callback edge with its target resolved. Never gated by a
/// connection pool: fire-and-forget sends hold no caller-side slot.
struct CompiledAsyncCall {
  Service* target = nullptr;
  int request_class = 0;
  Priority priority = Priority::kHigh;
};

struct CompiledBehavior {
  DemandSpec request_demand;
  DemandSpec response_demand;
  // Demand samplers with the scale multiplier folded in; refreshed by
  // set_demand_scale so the per-request path never recomputes log/sqrt.
  LognormalSampler request_sampler;
  LognormalSampler response_sampler;
  std::vector<CompiledGroup> groups;
  std::vector<CompiledAsyncCall> async_callbacks;
};

class Service {
 public:
  Service(Application& app, ServiceId id, ServiceConfig config, Rng rng);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Resolve call targets against the application's service map and spin up
  /// the initial replicas. Called once by Application after all services
  /// exist.
  void compile_and_start();

  // -- request path ----------------------------------------------------------

  /// Route a call (span already opened by the caller) to a replica. When an
  /// admission controller is installed and `pre_admitted` is false, the call
  /// is first run through admission: a shed closes the span immediately as a
  /// rejected error response (failed + rejected) and invokes `done`.
  /// `pre_admitted` is set by Application::inject for root requests it
  /// already admitted at the front door.
  void dispatch(TraceId trace, SpanId span, const RequestMeta& meta,
                UniqueFunction done, bool pre_admitted = false);

  // -- admission control -------------------------------------------------------

  /// Install (or replace) this service's admission controller. Pass nullptr
  /// to remove it.
  void set_admission(std::unique_ptr<AdmissionController> controller) {
    admission_ = std::move(controller);
  }
  AdmissionController* admission() { return admission_.get(); }
  const AdmissionController* admission() const { return admission_.get(); }

  /// Completion feedback from replicas: every admitted request that departs
  /// (served or aborted) reports its visit round-trip time here so the
  /// adaptive limits can track latency. No-op without a controller.
  void note_request_departure(SimTime rtt, bool ok);

  /// Behaviour for a class (falls back to class 0).
  const CompiledBehavior& behavior(int request_class) const;

  // -- identity --------------------------------------------------------------

  ServiceId id() const { return id_; }
  const std::string& name() const { return config_.name; }
  const ServiceConfig& config() const { return config_; }
  Application& app() { return app_; }

  /// Shard lane owning this service's events (sharded runs; see
  /// sim/partition.h). Always 0 in unsharded runs.
  int shard() const { return shard_; }
  void set_shard(int shard) { shard_ = shard; }
  /// Monotone counter over this service's network sends; forms the
  /// shard-count-invariant merge key for same-arrival cross-lane messages.
  std::uint64_t bump_send_seq() { return send_seq_++; }

  // -- scaling knobs ---------------------------------------------------------

  /// Horizontal scaling: activate/deactivate replicas (creating new ones as
  /// needed). Deactivated replicas drain; they stop receiving traffic.
  void scale_replicas(int target);

  /// Vertical scaling: set the CPU limit (cores) of every replica.
  void set_cpu_limit(double cores);
  double cpu_limit() const { return cpu_limit_; }

  /// Soft-resource knobs (per replica).
  void resize_entry_pool(int per_replica);
  void resize_edge_pool(const std::string& target, int per_replica);
  int entry_pool_size() const { return entry_pool_size_; }
  int edge_pool_size(const std::string& target) const;

  /// Scale all CPU demands (models dataset growth / software updates —
  /// "system state drifting"). Folded into the compiled demand samplers.
  void set_demand_scale(double scale);
  double demand_scale() const { return demand_scale_; }

  // -- fault injection ---------------------------------------------------------

  /// Take replica `index` down. Returns false (and does nothing) when the
  /// index is invalid, the replica is already down, or it is the last
  /// active replica — routing requires >= 1 active. With `drop_inflight`,
  /// in-flight visits abort at their next continuation with failed spans;
  /// otherwise they drain like a scale-down.
  bool crash_replica(std::size_t index, bool drop_inflight);
  /// Bring a crashed/drained replica back with the current knob settings
  /// (CPU limit, pool sizes). Returns false when the index is invalid or
  /// the replica is already active.
  bool restore_replica(std::size_t index);
  /// Visits aborted by crashes, summed across replicas.
  std::uint64_t visits_dropped() const;

  // -- replica access & aggregates -------------------------------------------

  int active_replicas() const { return active_count_; }
  std::size_t total_replicas() const { return instances_.size(); }
  ServiceInstance& instance(std::size_t i) { return *instances_[i]; }
  const ServiceInstance& instance(std::size_t i) const { return *instances_[i]; }

  /// Sum of entry-pool slots in use across active replicas (the service's
  /// current request-processing concurrency).
  int entry_in_use() const;
  /// Sum of entry-pool capacities across active replicas.
  int entry_capacity() const;
  /// Sum of entry-pool usage integrals across ALL replicas (inactive
  /// replicas contribute a constant, so deltas remain exact).
  double entry_usage_integral() const;

  /// Sum of in-use / capacity / usage integral of the edge pools toward
  /// `target`.
  int edge_in_use(const std::string& target) const;
  int edge_capacity(const std::string& target) const;
  double edge_usage_integral(const std::string& target) const;

  /// Sum of CPU busy integrals (core-microseconds) across all replicas.
  double cpu_busy_integral() const;
  /// Aggregate CPU capacity in cores across active replicas.
  double cpu_capacity() const;

  std::uint64_t completions() const { return completions_; }

  LoadBalancer& load_balancer() { return lb_; }

  /// Index of the edge pool for `target` in each instance's pool vector;
  /// -1 if that target has no gate configured.
  int edge_index_of(const std::string& target) const;

  /// Publish this service's current state into a metrics registry: scaling
  /// gauges (replicas, CPU limit), CPU busy total, and per-pool capacity /
  /// in-use / queue depth / wait totals for the entry pool and every edge
  /// pool. Labels: {service=<name>} plus {pool=entry|-><target>}.
  void publish_metrics(obs::MetricsRegistry& metrics) const;

 private:
  friend class ServiceInstance;

  ServiceInstance& pick_replica(Priority priority);
  void note_completion() { ++completions_; }
  void refresh_samplers();
  /// Reactivate a down replica, syncing it to the current knob settings.
  void revive(ServiceInstance& inst);

  Application& app_;
  ServiceId id_;
  ServiceConfig config_;
  Rng rng_;

  // class -> compiled behaviour (index = class id; falls back to [0])
  std::vector<CompiledBehavior> behaviors_;
  // target name -> edge pool index (order of config_.edge_pools)
  std::map<std::string, int> edge_index_;
  std::vector<EdgePoolConfig> edge_configs_;  // by edge index
  std::vector<std::string> edge_names_;       // by edge index

  std::vector<std::unique_ptr<ServiceInstance>> instances_;
  int active_count_ = 0;
  LoadBalancer lb_;
  std::unique_ptr<AdmissionController> admission_;

  double cpu_limit_;
  int entry_pool_size_;
  std::vector<int> edge_pool_sizes_;  // by edge index (per replica)
  double demand_scale_ = 1.0;

  std::uint64_t completions_ = 0;
  IdGenerator<InstanceId>* instance_ids_ = nullptr;  // owned by Application
  int shard_ = 0;
  std::uint64_t send_seq_ = 0;

  // Scratch buffers reused by pick_replica() to keep the per-dispatch hot
  // path free of allocations.
  std::vector<int> pick_outstanding_;
  std::vector<std::size_t> pick_index_;
};

}  // namespace sora
