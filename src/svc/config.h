// Declarative description of a microservice application topology.
//
// An application is a set of services; each service declares its CPU limit,
// its soft-resource pools (entry thread pool, per-target connection pools)
// and, per request class, its CPU demands and downstream call graph. The
// Application compiles these declarations into runnable services.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "admission/request.h"
#include "svc/soft_resource.h"

namespace sora {

/// CPU demand distribution: lognormal with the given mean (microseconds of
/// work on one core) and coefficient of variation.
struct DemandSpec {
  double mean_us = 0.0;
  double cv = 0.4;
};

/// One group of downstream calls issued concurrently. Groups execute in
/// order; a sequential chain is a list of singleton groups.
struct CallGroup {
  std::vector<std::string> targets;
};

/// Fire-and-forget notification issued as a visit completes — the async
/// callback edge that expresses cross-service cycles (cache invalidation,
/// write-behind, webhooks) without deadlocking the synchronous request
/// path. The caller's response never waits on it.
struct AsyncCallback {
  std::string target;
  /// Request class the callback runs under at the target. Give the target
  /// an explicit terminal behaviour for this class: the class-0 fallback
  /// would re-trigger the target's own async edges and could loop forever.
  int request_class = 0;
  Priority priority = Priority::kHigh;
};

/// Behaviour of a service for one request class.
struct ClassBehavior {
  DemandSpec request_demand;   ///< CPU before any downstream call.
  DemandSpec response_demand;  ///< CPU after downstream calls return.
  std::vector<CallGroup> call_groups;
  /// Issued after the response departs; spans stay in the parent trace.
  std::vector<AsyncCallback> async_callbacks;
};

/// Connection pool owned by a caller, gating its RPCs to one target.
struct EdgePoolConfig {
  int size = 0;  ///< 0 = no gate (unlimited).
  PoolKind kind = PoolKind::kClientConnections;
};

struct ServiceConfig {
  std::string name;

  /// CPU limit per replica, in cores (fractional allowed).
  double cores = 2.0;

  /// Multithreading overhead coefficient (see CpuScheduler). Typical values
  /// 0.3-1.0; larger = steeper penalty for over-allocation.
  double overhead_beta = 0.5;

  /// Entry pool (server threads) per replica. 0 = effectively unlimited
  /// (e.g. a Golang service with goroutine-per-request).
  int entry_pool_size = 0;
  PoolKind entry_pool_kind = PoolKind::kServerThreads;

  /// Per-target connection pools (per replica), keyed by target service
  /// name. Targets not listed are called without a gate.
  std::map<std::string, EdgePoolConfig> edge_pools;

  /// Behaviour per request class. Class 0 is the fallback for classes
  /// without an explicit entry.
  std::map<int, ClassBehavior> classes;

  int initial_replicas = 1;

  /// Max concurrent jobs the CPU will accept before the entry pool; kept
  /// for completeness (uncapped by default).
  // -- convenience builders ----------------------------------------------

  ServiceConfig& with_cores(double c) {
    cores = c;
    return *this;
  }
  ServiceConfig& with_entry_pool(int size,
                                 PoolKind kind = PoolKind::kServerThreads) {
    entry_pool_size = size;
    entry_pool_kind = kind;
    return *this;
  }
  ServiceConfig& with_edge_pool(const std::string& target, int size,
                                PoolKind kind = PoolKind::kClientConnections) {
    edge_pools[target] = EdgePoolConfig{size, kind};
    return *this;
  }
  ServiceConfig& with_demand(int request_class, double req_mean_us,
                             double resp_mean_us, double cv = 0.4) {
    auto& b = classes[request_class];
    b.request_demand = DemandSpec{req_mean_us, cv};
    b.response_demand = DemandSpec{resp_mean_us, cv};
    return *this;
  }
  ServiceConfig& with_call(int request_class,
                           const std::string& target) {
    classes[request_class].call_groups.push_back(CallGroup{{target}});
    return *this;
  }
  ServiceConfig& with_parallel_calls(int request_class,
                                     std::vector<std::string> targets) {
    classes[request_class].call_groups.push_back(
        CallGroup{std::move(targets)});
    return *this;
  }
  ServiceConfig& with_async_callback(int request_class,
                                     const std::string& target,
                                     int callback_class,
                                     Priority priority = Priority::kHigh) {
    classes[request_class].async_callbacks.push_back(
        AsyncCallback{target, callback_class, priority});
    return *this;
  }
  ServiceConfig& with_replicas(int n) {
    initial_replicas = n;
    return *this;
  }
  ServiceConfig& with_overhead(double beta) {
    overhead_beta = beta;
    return *this;
  }
};

struct ApplicationConfig {
  std::vector<ServiceConfig> services;
  /// Entry (front-end) service per request class; class 0 entry is the
  /// fallback.
  std::map<int, std::string> entry_service;
  /// One-way network latency added to each inter-service message
  /// (paper assumes negligible; default 0).
  SimTime network_latency = 0;
  /// End-to-end deadline stamped onto injected requests that carry none
  /// (0 = requests stay deadline-free). Deadline-aware admission shedding
  /// keys off this.
  SimTime request_sla = 0;
};

}  // namespace sora
