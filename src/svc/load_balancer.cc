#include "svc/load_balancer.h"

#include <cassert>

namespace sora {

std::size_t LoadBalancer::pick(const std::vector<int>& outstanding,
                               Priority priority) {
  assert(!outstanding.empty());
  switch (policy_) {
    case LoadBalancePolicy::kRoundRobin: {
      std::uint64_t& next = rr_next_[static_cast<std::size_t>(priority)];
      return static_cast<std::size_t>(next++ % outstanding.size());
    }
    case LoadBalancePolicy::kLeastOutstanding: {
      std::size_t best = 0;
      for (std::size_t i = 1; i < outstanding.size(); ++i) {
        if (outstanding[i] < outstanding[best]) best = i;
      }
      return best;
    }
  }
  return 0;
}

}  // namespace sora
