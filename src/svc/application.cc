#include "svc/application.h"

#include <cassert>

#include "sim/simulator.h"
#include "trace/tracer.h"

namespace sora {

Application::Application(Simulator& sim, Tracer& tracer,
                         ApplicationConfig config, std::uint64_t seed)
    : sim_(sim),
      tracer_(tracer),
      config_(std::move(config)),
      rng_(seed),
      metrics_([&sim] { return sim.now(); }) {
  assert(!config_.services.empty());
  services_.reserve(config_.services.size());
  for (std::size_t i = 0; i < config_.services.size(); ++i) {
    auto svc = std::make_unique<Service>(*this, ServiceId(i),
                                         config_.services[i], rng_.fork());
    by_name_.emplace(svc->name(), svc.get());
    services_.push_back(std::move(svc));
  }
  assert(by_name_.size() == services_.size() && "duplicate service names");

  for (const auto& [cls, name] : config_.entry_service) {
    Service* svc = service(name);
    assert(svc != nullptr && "entry service does not exist");
    entries_.emplace(cls, svc);
  }
  if (entries_.empty()) {
    entries_.emplace(0, services_.front().get());
  }

  for (auto& svc : services_) svc->compile_and_start();

  // Pre-register counters that hot paths bump at runtime, so those bumps are
  // pure map finds — in sharded runs, concurrent lanes may look these up
  // while the registry must not be mutated off-barrier.
  for (const auto& svc : services_) {
    metrics_.counter("fault.visits_dropped", {{"service", svc->name()}});
  }
  for (const auto& [cls, entry] : entries_) {
    metrics_.counter("app.shed", {{"service", entry->name()}});
  }

  // Per-span RPC latency, recorded as spans complete. Handles are resolved
  // once here so the span listener is a vector index + histogram record.
  span_latency_.reserve(services_.size());
  for (const auto& svc : services_) {
    span_latency_.push_back(
        &metrics_.histogram("rpc.latency_us", {{"service", svc->name()}}));
  }
  tracer_.add_span_listener([this](const Span& span) {
    if (span.service.valid() && span.service.value() < span_latency_.size()) {
      span_latency_[span.service.value()]->observe(
          static_cast<double>(span.duration()));
    }
  });
  // Served-vs-rejected verdict for the injection callback (see
  // last_trace_ok_ in the header for the ordering argument). A root
  // listener, not a trace listener: trace assembly is deferred while async
  // callback spans are still open, but the verdict must be fresh when the
  // root's done() continuation fires — and a callback shed later must not
  // flip the verdict of a response the user already received.
  tracer_.add_root_listener(
      [this](const Trace& trace) { last_trace_ok_ = !trace.rejected(); });
}

Application::~Application() = default;

Service* Application::service(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const Service* Application::service(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

Service* Application::service(ServiceId id) {
  if (!id.valid() || id.value() >= services_.size()) return nullptr;
  return services_[id.value()].get();
}

const std::string& Application::service_name(ServiceId id) const {
  static const std::string kUnknown = "?";
  if (!id.valid() || id.value() >= services_.size()) return kUnknown;
  return services_[id.value()]->name();
}

Service& Application::entry_service(int request_class) {
  auto it = entries_.find(request_class);
  if (it != entries_.end()) return *it->second;
  return *entries_.begin()->second;
}

void Application::inject(const RequestMeta& meta, Completion on_complete) {
  ++injected_;
  const SimTime start = sim_.now();
  Service& entry = entry_service(meta.request_class);

  RequestMeta request = meta;
  if (request.deadline == 0 && config_.request_sla > 0) {
    request.deadline = start + config_.request_sla;
  }

  // Front-door admission: shed before any trace exists, so rejections are
  // effectively free (~0 latency) and invisible to the trace pipeline.
  bool pre_admitted = false;
  if (AdmissionController* adm = entry.admission()) {
    const AdmissionDecision d = adm->decide(request, start);
    if (!d.admit) {
      ++shed_;
      metrics_.counter("app.shed", {{"service", entry.name()}}).add();
      on_complete(0, false);
      return;
    }
    adm->on_admit(start);
    pre_admitted = true;
  }

  const TraceId trace = tracer_.begin_trace(request.request_class, start);
  const SpanId root =
      tracer_.start_span(trace, SpanId{}, entry.id(), InstanceId{},
                         request.request_class, start);
  entry.dispatch(
      trace, root, request,
      [this, start, cb = std::move(on_complete)] {
        ++completed_;
        cb(sim_.now() - start, last_trace_ok_);
      },
      pre_admitted);
}

void Application::publish_metrics() {
  sim_.publish_metrics(metrics_);
  for (auto& svc : services_) svc->publish_metrics(metrics_);
  metrics_.gauge("app.in_flight").set(static_cast<double>(in_flight()));
  metrics_.counter("app.injected").set_total(static_cast<double>(injected_));
  metrics_.counter("app.completed").set_total(static_cast<double>(completed_));
  metrics_.counter("app.shed_total").set_total(static_cast<double>(shed_));
}

void Application::deliver(UniqueFunction fn) {
  if (config_.network_latency <= 0) {
    fn();
    return;
  }
  sim_.schedule_after(config_.network_latency, std::move(fn));
}

void Application::deliver(Service& sender, int dst_shard, UniqueFunction fn) {
  if (config_.network_latency <= 0) {
    fn();
    return;
  }
  if (sim_.sharding()) {
    // Sender key 0 is reserved for non-service sends, so service ids shift
    // by one.
    sim_.send_cross(dst_shard, sender.id().value() + 1, sender.bump_send_seq(),
                    config_.network_latency, std::move(fn));
    return;
  }
  sim_.schedule_after(config_.network_latency, std::move(fn));
}

}  // namespace sora
