// Replica selection policies.
//
// Kubernetes services route round-robin-ish; least-outstanding is the
// smarter client-side policy. Round robin is the default because the paper's
// HPA experiments rely on the workload imbalance it produces right after a
// scale-out (Section 5.3).
//
// Round-robin keeps one rotation counter per admission priority class so
// that batch traffic cannot skew the replica sequence the high-priority
// stream sees (and an all-high workload is bit-identical to the
// pre-priority behaviour).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "admission/request.h"

namespace sora {

enum class LoadBalancePolicy { kRoundRobin, kLeastOutstanding };

class LoadBalancer {
 public:
  explicit LoadBalancer(LoadBalancePolicy policy = LoadBalancePolicy::kRoundRobin)
      : policy_(policy) {}

  /// Pick an index given per-candidate outstanding request counts.
  /// `outstanding.size()` is the number of active replicas (must be >= 1).
  std::size_t pick(const std::vector<int>& outstanding,
                   Priority priority = Priority::kHigh);

  LoadBalancePolicy policy() const { return policy_; }
  void set_policy(LoadBalancePolicy p) { policy_ = p; }

 private:
  LoadBalancePolicy policy_;
  std::uint64_t rr_next_[kNumPriorities] = {};
};

}  // namespace sora
