// The compiled, runnable microservice application.
//
// Owns every Service, routes injected end-user requests to the entry
// (front-end) service, and finalizes traces on completion. Implements
// LoadTarget so workload generators can drive it.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/function.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "svc/config.h"
#include "svc/service.h"
#include "workload/load_target.h"

namespace sora {

class Simulator;
class Tracer;

class Application : public LoadTarget {
 public:
  /// Builds all services and their initial replicas. `seed` drives every
  /// stochastic element (demand sampling) deterministically.
  Application(Simulator& sim, Tracer& tracer, ApplicationConfig config,
              std::uint64_t seed);
  ~Application() override;

  Application(const Application&) = delete;
  Application& operator=(const Application&) = delete;

  // -- LoadTarget -------------------------------------------------------------

  using LoadTarget::inject;

  /// Inject one end-user request. `on_complete` receives the end-to-end
  /// response time when the response leaves the front-end, plus whether it
  /// was actually served. Requests without a deadline pick one up from
  /// config.request_sla (when set). When the entry service has an admission
  /// controller, requests may be shed at the front door: the callback fires
  /// synchronously with (0, false) — no trace is created, so shed requests
  /// never pollute the trace warehouse or the concurrency estimator.
  void inject(const RequestMeta& meta, Completion on_complete) override;

  // -- lookup ------------------------------------------------------------------

  Service* service(const std::string& name);
  const Service* service(const std::string& name) const;
  Service* service(ServiceId id);
  const std::vector<std::unique_ptr<Service>>& services() const {
    return services_;
  }
  const std::string& service_name(ServiceId id) const;

  Simulator& sim() { return sim_; }
  Tracer& tracer() { return tracer_; }
  const ApplicationConfig& config() const { return config_; }

  /// Application-wide metrics registry (sim-time stamped). Per-span RPC
  /// latency histograms are recorded automatically; call publish_metrics()
  /// (typically from a periodic sampler) to refresh the service/pool/sim
  /// gauges.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Publish current event-loop and per-service state (replicas, CPU, pool
  /// capacity/in-use/waits) into the registry.
  void publish_metrics();

  IdGenerator<InstanceId>& instance_ids() { return instance_ids_; }
  Rng& rng() { return rng_; }

  /// Total requests injected / completed / shed (conservation checks).
  /// Shed requests never enter the system: injected = completed + shed +
  /// in_flight.
  std::uint64_t injected() const { return injected_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t shed() const { return shed_; }
  std::uint64_t in_flight() const { return injected_ - completed_ - shed_; }

  /// Deliver a message across the network: runs `fn` after the configured
  /// network latency (synchronously when latency is 0).
  void deliver(UniqueFunction fn);

  /// Routed variant for service-to-service messages: in sharded runs the
  /// callback lands on `dst_shard`'s lane via the simulator's mailbox path,
  /// keyed by the sender's (service id, send seq) so same-arrival messages
  /// merge in a shard-count-invariant order. Falls back to plain deliver()
  /// when the simulator is unsharded.
  void deliver(Service& sender, int dst_shard, UniqueFunction fn);

 private:
  Service& entry_service(int request_class);

  Simulator& sim_;
  Tracer& tracer_;
  ApplicationConfig config_;
  Rng rng_;
  IdGenerator<InstanceId> instance_ids_;
  obs::MetricsRegistry metrics_;
  // per-service RPC latency histograms, indexed by ServiceId value
  std::vector<obs::HistogramMetric*> span_latency_;

  std::vector<std::unique_ptr<Service>> services_;  // index == ServiceId value
  std::map<std::string, Service*> by_name_;
  std::map<int, Service*> entries_;

  std::uint64_t injected_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t shed_ = 0;  ///< front-door sheds (no trace ever created)
  /// Whether the most recently departed root was served end-to-end (no
  /// hop rejected by admission). Root listeners run synchronously inside
  /// the root finish_span, before the root's done() continuation, so this
  /// is always fresh when the injection callback fires — even when async
  /// callback spans keep the trace open past the root.
  bool last_trace_ok_ = true;
};

}  // namespace sora
