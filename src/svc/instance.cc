#include "svc/instance.h"

#include <cassert>
#include <utility>

#include "common/log.h"
#include "sim/simulator.h"
#include "svc/application.h"
#include "svc/service.h"
#include "trace/tracer.h"

namespace sora {

namespace {
// Capacity standing in for "no limit" (e.g. goroutine-per-request services).
constexpr int kUnlimited = 1'000'000'000;

int effective_pool_size(int configured) {
  return configured <= 0 ? kUnlimited : configured;
}
}  // namespace

/// Per-request-visit state shared by the callbacks of the state machine.
/// Pooled: recycled through visit_free_ rather than heap-allocated per
/// request, so capturing a raw Visit* is safe until finish() releases it.
struct ServiceInstance::Visit {
  TraceId trace;
  SpanId span;
  int request_class = 0;
  Priority priority = Priority::kHigh;
  SimTime deadline = 0;  ///< absolute; propagated to downstream calls
  SimTime arrived = 0;   ///< serve() time; visit RTT = departure - arrived
  Done done;
  const CompiledBehavior* behavior = nullptr;
  SimTime blocked_since = 0;
  int pending_calls = 0;  ///< downstream calls outstanding in current group
  bool in_flight = false;  ///< slab entry currently serving a request
  bool condemned = false;  ///< crash dropped this visit; abort at next step
};

ServiceInstance::Visit* ServiceInstance::alloc_visit() {
  if (visit_free_.empty()) {
    visit_slab_.push_back(std::make_unique<Visit>());
    return visit_slab_.back().get();
  }
  Visit* v = visit_free_.back();
  visit_free_.pop_back();
  return v;
}

void ServiceInstance::free_visit(Visit* v) {
  v->done.reset();
  v->behavior = nullptr;
  v->priority = Priority::kHigh;
  v->deadline = 0;
  v->arrived = 0;
  v->blocked_since = 0;
  v->pending_calls = 0;
  v->in_flight = false;
  v->condemned = false;
  visit_free_.push_back(v);
}

ServiceInstance::ServiceInstance(Service& service, InstanceId id)
    : svc_(service),
      id_(id),
      cpu_(service.app().sim(), service.cpu_limit(),
           service.config().overhead_beta),
      entry_pool_(service.app().sim(), service.config().entry_pool_kind,
                  service.name() + "/entry",
                  effective_pool_size(service.entry_pool_size())),
      rng_(service.app().rng().fork()) {
  // One connection pool per configured edge; size 0 = ungated (null).
  const std::size_t n = service.edge_names_.size();
  edge_pools_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int size = service.edge_pool_sizes_[i];
    if (size <= 0) {
      edge_pools_.push_back(nullptr);
    } else {
      edge_pools_.push_back(std::make_unique<SoftResourcePool>(
          service.app().sim(), service.edge_configs_[i].kind,
          service.name() + "->" + service.edge_names_[i], size));
    }
  }
}

ServiceInstance::~ServiceInstance() = default;

SoftResourcePool* ServiceInstance::edge_pool(int edge_index) {
  if (edge_index < 0 ||
      static_cast<std::size_t>(edge_index) >= edge_pools_.size()) {
    return nullptr;
  }
  return edge_pools_[static_cast<std::size_t>(edge_index)].get();
}

const SoftResourcePool* ServiceInstance::edge_pool(int edge_index) const {
  return const_cast<ServiceInstance*>(this)->edge_pool(edge_index);
}

void ServiceInstance::serve(TraceId trace, SpanId span, const RequestMeta& meta,
                            Done done) {
  ++outstanding_;
  Tracer& tracer = svc_.app().tracer();
  tracer.span(trace, span).instance = id_;

  Visit* v = alloc_visit();
  v->trace = trace;
  v->span = span;
  v->request_class = meta.request_class;
  v->priority = meta.priority;
  v->deadline = meta.deadline;
  v->arrived = svc_.app().sim().now();
  v->done = std::move(done);
  v->behavior = &svc_.behavior(meta.request_class);
  v->in_flight = true;

  entry_pool_.acquire([this, v] { on_admitted(v); });
}

void ServiceInstance::condemn_in_flight() {
  for (const auto& v : visit_slab_) {
    if (v->in_flight) v->condemned = true;
  }
}

void ServiceInstance::on_admitted(Visit* v) {
  if (v->condemned) {
    abort_visit(v);
    return;
  }
  Simulator& sim = svc_.app().sim();
  Tracer& tracer = svc_.app().tracer();
  tracer.span(v->trace, v->span).admitted = sim.now();

  const SimTime demand =
      static_cast<SimTime>(v->behavior->request_sampler.sample(rng_));
  cpu_.submit(demand, [this, v] { run_group(v, 0); });
}

void ServiceInstance::run_group(Visit* v, std::size_t group_index) {
  if (v->condemned) {
    abort_visit(v);
    return;
  }
  if (group_index >= v->behavior->groups.size()) {
    on_groups_done(v);
    return;
  }
  const CompiledGroup& group = v->behavior->groups[group_index];
  if (group.calls.empty()) {
    run_group(v, group_index + 1);
    return;
  }
  v->blocked_since = svc_.app().sim().now();
  v->pending_calls = static_cast<int>(group.calls.size());
  for (std::size_t ci = 0; ci < group.calls.size(); ++ci) {
    issue_call(v, group_index, ci);
  }
}

void ServiceInstance::issue_call(Visit* v, std::size_t group_index,
                                 std::size_t call_index) {
  Application& app = svc_.app();
  Tracer& tracer = app.tracer();
  const CompiledGroup& group = v->behavior->groups[group_index];
  const CompiledCall& call = group.calls[call_index];
  Service* target = call.target;
  assert(target != nullptr);

  const SimTime issued = app.sim().now();
  const SpanId child = tracer.start_span(v->trace, v->span, target->id(),
                                         InstanceId{}, v->request_class,
                                         issued);
  Span& parent = tracer.span(v->trace, v->span);
  parent.children.push_back(
      ChildCall{child, static_cast<int>(group_index), issued, 0});
  const std::size_t child_slot = parent.children.size() - 1;

  SoftResourcePool* gate = edge_pool(call.edge_index);

  // Dispatch once the connection gate admits us; when the response returns,
  // release the connection, stamp the return time, and advance the group
  // after all peer calls have finished.
  auto launch = [this, v, child, gate, target, group_index, child_slot] {
    Application& app2 = svc_.app();
    // Request hop: caller's shard -> target's shard.
    app2.deliver(svc_, target->shard(),
                 [this, v, child, gate, target, group_index, child_slot] {
      target->dispatch(
          v->trace, child,
          RequestMeta{v->request_class, v->priority, v->deadline},
          [this, v, gate, target, group_index, child_slot] {
            Application& app3 = svc_.app();
            // Response hop: runs on the target's shard, back to the caller.
            app3.deliver(*target, svc_.shard(),
                         [this, v, gate, group_index, child_slot] {
              if (gate != nullptr) gate->release();
              Tracer& t = svc_.app().tracer();
              Span& p = t.span(v->trace, v->span);
              p.children[child_slot].returned = svc_.app().sim().now();
              if (--v->pending_calls == 0) {
                p.downstream_wait += svc_.app().sim().now() - v->blocked_since;
                run_group(v, group_index + 1);
              }
            });
          });
    });
  };

  if (gate != nullptr) {
    gate->acquire(launch);
  } else {
    launch();
  }
}

void ServiceInstance::on_groups_done(Visit* v) {
  const SimTime demand =
      static_cast<SimTime>(v->behavior->response_sampler.sample(rng_));
  cpu_.submit(demand, [this, v] { finish(v); });
}

void ServiceInstance::issue_async_callbacks(Visit* v) {
  Application& app = svc_.app();
  Tracer& tracer = app.tracer();
  const SimTime now = app.sim().now();
  for (const CompiledAsyncCall& cb : v->behavior->async_callbacks) {
    Service* target = cb.target;
    const SpanId child = tracer.start_span(v->trace, v->span, target->id(),
                                           InstanceId{}, cb.request_class, now);
    Span& parent = tracer.span(v->trace, v->span);
    parent.children.push_back(
        ChildCall{child, /*parallel_group=*/-1, now, 0, /*async=*/true});
    // No deadline: the user's response already departed, so there is
    // nothing left for the callback to be late for.
    app.deliver(svc_, target->shard(),
                [target, trace = v->trace, child, cls = cb.request_class,
                 prio = cb.priority] {
                  target->dispatch(trace, child, RequestMeta{cls, prio, 0},
                                   [] {});
                });
  }
}

void ServiceInstance::finish(Visit* v) {
  Application& app = svc_.app();
  if (!v->behavior->async_callbacks.empty()) issue_async_callbacks(v);
  app.tracer().finish_span(v->trace, v->span, app.sim().now());
  svc_.note_completion();
  svc_.note_request_departure(app.sim().now() - v->arrived, true);
  entry_pool_.release();
  --outstanding_;
  // Recycle the visit before running its continuation: `done` may start a
  // fresh request on this instance, which can then reuse the slot.
  Done done = std::move(v->done);
  free_visit(v);
  done();
}

void ServiceInstance::abort_visit(Visit* v) {
  Application& app = svc_.app();
  app.tracer().span(v->trace, v->span).failed = true;
  app.tracer().finish_span(v->trace, v->span, app.sim().now());
  svc_.note_request_departure(app.sim().now() - v->arrived, false);
  entry_pool_.release();
  --outstanding_;
  ++visits_dropped_;
  app.metrics()
      .counter("fault.visits_dropped", {{"service", svc_.name()}})
      .add();
  Done done = std::move(v->done);
  free_visit(v);
  done();
}

}  // namespace sora
