// One replica (pod) of a microservice.
//
// An instance owns the physical execution resources of a replica: a CPU
// scheduler bounded by the pod's CPU limit, an entry soft-resource pool
// (server threads) and per-target connection pools. Requests flow through
// the state machine:
//
//   arrive -> entry pool (queue) -> request CPU -> downstream call groups
//          -> response CPU -> depart
//
// RPCs are synchronous: the entry slot is held across downstream calls,
// which is how soft-resource pressure propagates along the call chain.
#pragma once

#include <memory>
#include <vector>

#include "admission/request.h"
#include "common/function.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "svc/cpu.h"
#include "svc/soft_resource.h"

namespace sora {

class Service;

class ServiceInstance {
 public:
  using Done = UniqueFunction;

  ServiceInstance(Service& service, InstanceId id);
  ~ServiceInstance();

  ServiceInstance(const ServiceInstance&) = delete;
  ServiceInstance& operator=(const ServiceInstance&) = delete;

  /// Serve a request visit whose span `span` was already opened by the
  /// caller (arrival stamped). `done` runs after the span is finished.
  /// `meta` carries the class plus the admission metadata (priority,
  /// deadline) propagated to downstream calls.
  void serve(TraceId trace, SpanId span, const RequestMeta& meta, Done done);

  InstanceId id() const { return id_; }
  bool active() const { return active_; }
  void set_active(bool a) { active_ = a; }
  int outstanding() const { return outstanding_; }

  /// Fault injection: condemn every in-flight visit. A condemned visit
  /// aborts at its next continuation (entry admission, group boundary, or
  /// before the response phase): the span closes immediately with
  /// `failed = true`, the entry slot is released, and the caller's `done`
  /// runs as if an error response was returned. CPU slices and downstream
  /// RPCs already in progress complete first — the simulator has no job
  /// preemption, and child spans must close through their own services.
  void condemn_in_flight();
  /// Visits aborted by condemn_in_flight over this instance's lifetime.
  std::uint64_t visits_dropped() const { return visits_dropped_; }

  CpuScheduler& cpu() { return cpu_; }
  const CpuScheduler& cpu() const { return cpu_; }
  SoftResourcePool& entry_pool() { return entry_pool_; }
  const SoftResourcePool& entry_pool() const { return entry_pool_; }

  /// Connection pool toward the target with the given edge index, or
  /// nullptr when that edge is ungated.
  SoftResourcePool* edge_pool(int edge_index);
  const SoftResourcePool* edge_pool(int edge_index) const;
  std::size_t num_edge_pools() const { return edge_pools_.size(); }

 private:
  struct Visit;

  /// Grab a recycled Visit (or grow the pool). Visits return to the free
  /// list in finish(); instances are never destroyed mid-run (scale-down
  /// only deactivates), so pooled pointers stay valid for the whole sim.
  Visit* alloc_visit();
  void free_visit(Visit* v);

  void on_admitted(Visit* v);
  void run_group(Visit* v, std::size_t group_index);
  void issue_call(Visit* v, std::size_t group_index, std::size_t call_index);
  void on_groups_done(Visit* v);
  /// Fire the behaviour's async callback edges as the visit completes:
  /// each opens a detached child span (ChildCall.async) in the parent
  /// trace and dispatches to its target over the network, but the response
  /// departs without waiting — issued before finish_span so the parent
  /// span is still open to record the ChildCall.
  void issue_async_callbacks(Visit* v);
  void finish(Visit* v);
  /// Close a condemned visit early: failed span, entry slot released,
  /// caller's done() invoked (conservation holds — every arrival departs).
  void abort_visit(Visit* v);

  Service& svc_;
  InstanceId id_;
  bool active_ = true;
  int outstanding_ = 0;
  std::uint64_t visits_dropped_ = 0;

  CpuScheduler cpu_;
  SoftResourcePool entry_pool_;
  // Indexed by the service's edge-pool index; entries may be null (ungated).
  std::vector<std::unique_ptr<SoftResourcePool>> edge_pools_;
  Rng rng_;

  // Visit pool: visit_slab_ owns every Visit ever allocated; visit_free_
  // holds the currently idle ones.
  std::vector<std::unique_ptr<Visit>> visit_slab_;
  std::vector<Visit*> visit_free_;
};

}  // namespace sora
