#include "autoscale/autoscaler.h"

#include "sim/simulator.h"
#include "svc/application.h"
#include "svc/service.h"

namespace sora {

void Autoscaler::notify(const ScaleEvent& ev) {
  history_.push_back(ev);
  if (metrics() != nullptr && ev.service != nullptr) {
    metrics()
        ->counter("scale.events",
                  {{"controller", name()},
                   {"service", ev.service->name()},
                   {"kind", ev.kind == ScaleEvent::Kind::kHorizontal
                                ? "horizontal"
                                : "vertical"}})
        .add();
  }
  for (const auto& cb : listeners_) cb(ev);
}

UtilizationTracker::UtilizationTracker(Application& app) : app_(app) {
  epoch();
}

void UtilizationTracker::epoch() {
  epoch_start_ = app_.sim().now();
  for (const auto& svc : app_.services()) {
    busy_[svc->id().value()] = svc->cpu_busy_integral();
  }
}

double UtilizationTracker::utilization(const Service& service) const {
  const SimTime elapsed = app_.sim().now() - epoch_start_;
  if (elapsed <= 0) return 0.0;
  auto it = busy_.find(service.id().value());
  const double busy0 = it == busy_.end() ? 0.0 : it->second;
  const double busy = service.cpu_busy_integral() - busy0;
  const double capacity =
      service.cpu_capacity() * static_cast<double>(elapsed);
  return capacity > 0.0 ? busy / capacity : 0.0;
}

}  // namespace sora
