// Kubernetes Horizontal Pod Autoscaler (rule-based).
//
// Implements the standard HPA control law: every control period (default
// 15 s, matching the paper), desired replicas = ceil(current * utilization
// / target). Scale-up applies immediately; scale-down waits for a
// stabilization window of consistently low desire, mirroring Kubernetes'
// downscale stabilization.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "autoscale/autoscaler.h"
#include "sim/simulator.h"

namespace sora {

struct HpaOptions {
  SimTime period = sec(15);
  double target_utilization = 0.8;
  int min_replicas = 1;
  int max_replicas = 8;
  /// Consecutive periods of low desired count before scaling down.
  int downscale_stabilization_periods = 4;
  /// Ignore utilization within this tolerance of the target (K8s: 10%).
  double tolerance = 0.1;
};

class HorizontalPodAutoscaler : public Autoscaler {
 public:
  HorizontalPodAutoscaler(Simulator& sim, Application& app, HpaOptions options);

  /// Put a service under HPA control.
  void manage(Service* service);

  const char* name() const override { return "k8s-hpa"; }
  ControllerNeeds needs() const override {
    ControllerNeeds n;
    n.metrics_window = true;
    return n;
  }
  std::size_t max_actions_per_round() const override {
    return managed_.size();
  }

 protected:
  void begin() override { util_.epoch(); }
  std::vector<ControlAction> decide(SimTime now) override;

 private:
  struct Managed {
    Service* service;
    int low_periods = 0;
    int pending_down = 0;
  };

  Application& app_;
  HpaOptions options_;
  UtilizationTracker util_;
  std::vector<Managed> managed_;
};

}  // namespace sora
