// LSRAM-style lightweight gradient-descent SLO allocation.
//
// LSRAM (see PAPERS.md) treats resource allocation as online optimization:
// each round it evaluates an SLO-violation + cost objective at the current
// allocation and takes one clamped gradient step, warm-started from the
// previous round's evaluation instead of re-exploring. Here the allocation
// axis is a soft-resource pool (a ResourceKnob: entry thread pool or edge
// connection pool), the objective is
//
//   J(x) = violation_weight * viol_frac(x) + cost_weight * x / max_size
//
// with viol_frac measured from completed spans of the knob's completion
// service over the last window, and the gradient is a finite difference
// against the previous round's (allocation, objective) pair.
//
// GradientStepper holds the per-knob optimization state and is exposed
// directly so the step clamping / convergence behavior is unit-testable on
// synthetic surfaces without a simulator (tests/test_lsram.cc).
#pragma once

#include <cstddef>
#include <vector>

#include "autoscale/controller.h"
#include "metrics/knob.h"
#include "sim/simulator.h"
#include "trace/warehouse.h"

namespace sora {

class Application;

struct GradientStepperOptions {
  double learning_rate = 8.0;
  double max_step = 4.0;   ///< per-round step clamp (both directions)
  double probe_step = 1.0; ///< first move / restart when the surface is flat
  double min_x = 1.0;
  double max_x = 512.0;
  /// |gradient| below this reads as a flat surface: hold instead of drifting
  /// on noise.
  double flat_gradient = 1e-6;
};

/// One-dimensional warm-started gradient descent with clamped steps.
/// step(x, j) consumes this round's evaluation of the objective at x and
/// returns the next allocation to try. The first call (nothing to difference
/// against yet) probes by +probe_step; a zero-length move or a flat gradient
/// holds.
class GradientStepper {
 public:
  explicit GradientStepper(GradientStepperOptions options = {})
      : options_(options) {}

  double step(double x, double j);

  /// Forget the warm start (topology changed: the old surface is gone).
  void reset() { has_prev_ = false; }
  bool warm() const { return has_prev_; }

 private:
  GradientStepperOptions options_;
  bool has_prev_ = false;
  double prev_x_ = 0.0;
  double prev_j_ = 0.0;
};

struct LsramOptions {
  SimTime period = sec(15);
  /// Per-span latency objective for the knob's completion service: spans
  /// slower than this count as violations.
  SimTime span_slo = msec(100);
  double violation_weight = 1.0;
  double cost_weight = 0.05;
  /// Hold (fail closed) when the window has fewer spans than this.
  std::size_t min_spans = 20;
  GradientStepperOptions stepper;
};

class LsramController : public Controller {
 public:
  LsramController(Application& app, TraceWarehouse& warehouse,
                  LsramOptions options = {});

  /// Put a soft-resource pool under gradient control.
  void manage(const ResourceKnob& knob);

  const char* name() const override { return "lsram"; }
  ControllerNeeds needs() const override {
    ControllerNeeds n;
    n.traces = true;
    return n;
  }
  std::size_t max_actions_per_round() const override { return knobs_.size(); }

  void on_topology_changed(Service* service, const std::string& why) override;

 protected:
  void begin() override { window_start_ = sim().now(); }
  void observe(SimTime now) override;
  std::vector<ControlAction> decide(SimTime now) override;

 private:
  Application& app_;
  TraceWarehouse& warehouse_;
  LsramOptions options_;

  std::vector<ResourceKnob> knobs_;
  std::vector<GradientStepper> steppers_;  ///< parallel to knobs_

  // Window evidence gathered by observe(), parallel to knobs_.
  SimTime window_start_ = 0;
  std::vector<std::size_t> span_counts_;
  std::vector<std::size_t> violations_;
};

}  // namespace sora
