#include "autoscale/hpa.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "svc/application.h"
#include "svc/service.h"

namespace sora {

HorizontalPodAutoscaler::HorizontalPodAutoscaler(Simulator& sim,
                                                 Application& app,
                                                 HpaOptions options)
    : Autoscaler(sim, options.period),
      app_(app),
      options_(options),
      util_(app) {}

void HorizontalPodAutoscaler::manage(Service* service) {
  managed_.push_back(Managed{service, 0, 0});
}

std::vector<ControlAction> HorizontalPodAutoscaler::decide(SimTime now) {
  std::vector<ControlAction> actions;
  for (Managed& m : managed_) {
    Service& svc = *m.service;
    const double util = util_.utilization(svc);
    const int current = svc.active_replicas();
    const double ratio = util / options_.target_utilization;

    int desired = current;
    if (std::abs(ratio - 1.0) > options_.tolerance) {
      desired = static_cast<int>(std::ceil(static_cast<double>(current) * ratio));
    }
    desired = std::clamp(desired, options_.min_replicas, options_.max_replicas);

    obs::ControlDecisionRecord rec;
    rec.at = now;
    rec.target = svc.name();
    rec.observed_utilization = util;
    rec.old_replicas = current;
    rec.new_replicas = current;
    rec.old_cores = rec.new_cores = svc.cpu_limit();

    if (desired > current) {
      m.low_periods = 0;
      svc.scale_replicas(desired);
      ScaleEvent ev;
      ev.service = &svc;
      ev.kind = ScaleEvent::Kind::kHorizontal;
      ev.old_replicas = current;
      ev.new_replicas = desired;
      ev.old_cores = ev.new_cores = svc.cpu_limit();
      ev.at = now;
      notify(ev);
      rec.action = "scale_out";
      rec.reason = "utilization above target";
      rec.new_replicas = desired;
      ControlAction act;
      act.kind = ControlAction::Kind::kReplicas;
      act.target = svc.name();
      act.reason = rec.reason;
      act.old_replicas = current;
      act.new_replicas = desired;
      act.old_cores = act.new_cores = svc.cpu_limit();
      actions.push_back(std::move(act));
      SORA_INFO << "HPA scale-out " << svc.name() << " " << current << " -> "
                << desired << " (util " << util << ")";
    } else if (desired < current) {
      // Downscale stabilization: require consistent low desire.
      ++m.low_periods;
      m.pending_down = std::max(desired, m.pending_down);
      if (m.low_periods >= options_.downscale_stabilization_periods) {
        const int target = std::max(desired, m.pending_down);
        svc.scale_replicas(target);
        ScaleEvent ev;
        ev.service = &svc;
        ev.kind = ScaleEvent::Kind::kHorizontal;
        ev.old_replicas = current;
        ev.new_replicas = target;
        ev.old_cores = ev.new_cores = svc.cpu_limit();
        ev.at = now;
        notify(ev);
        rec.action = "scale_in";
        rec.reason = "stabilized low desired replica count";
        rec.new_replicas = target;
        ControlAction act;
        act.kind = ControlAction::Kind::kReplicas;
        act.target = svc.name();
        act.reason = rec.reason;
        act.old_replicas = current;
        act.new_replicas = target;
        act.old_cores = act.new_cores = svc.cpu_limit();
        actions.push_back(std::move(act));
        SORA_INFO << "HPA scale-in " << svc.name() << " " << current << " -> "
                  << target << " (util " << util << ")";
        m.low_periods = 0;
        m.pending_down = 0;
      } else {
        rec.action = "hold";
        rec.reason = "desire below current, awaiting downscale stabilization";
      }
    } else {
      m.low_periods = 0;
      m.pending_down = 0;
      rec.action = "hold";
      rec.reason = "utilization within tolerance of target";
    }
    record_decision(std::move(rec));
  }
  util_.epoch();
  return actions;
}

}  // namespace sora
