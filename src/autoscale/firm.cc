#include "autoscale/firm.h"

#include <algorithm>
#include <vector>

#include "common/log.h"
#include "common/stats.h"
#include "svc/application.h"
#include "svc/service.h"

namespace sora {

FirmAutoscaler::FirmAutoscaler(Simulator& sim, Application& app,
                               TraceWarehouse& warehouse, FirmOptions options)
    : Autoscaler(sim, options.period),
      app_(app),
      warehouse_(warehouse),
      options_(options),
      util_(app),
      localizer_(app, warehouse, options.localizer) {}

void FirmAutoscaler::manage(Service* service) {
  allowed_services_.push_back(service);
}

bool FirmAutoscaler::allowed(const Service& svc) const {
  if (allowed_services_.empty()) return true;
  for (const Service* s : allowed_services_) {
    if (s == &svc) return true;
  }
  return false;
}

void FirmAutoscaler::begin() {
  util_.epoch();
  localizer_.begin_window();
  window_start_ = sim().now();
}

void FirmAutoscaler::observe(SimTime now) {
  // End-to-end p99 over the last window, from the trace warehouse.
  std::vector<double> rts;
  warehouse_.for_each_in_window(window_start_, now, [&](const Trace& t) {
    rts.push_back(static_cast<double>(t.response_time()));
  });
  // Empty window (no completed traces) counts as p99 = 0 here: the
  // kNoSample sentinel would poison the SimTime cast below, and "no
  // traffic" should read as relaxed, not unknown.
  observed_p99_ = rts.empty() ? 0.0 : percentile(rts, 99.0);

  // Critical-service localization (FIRM step).
  last_report_ = localizer_.analyze();
  localizer_.begin_window();
  window_start_ = now;
}

std::vector<ControlAction> FirmAutoscaler::decide(SimTime now) {
  std::vector<ControlAction> actions;
  const double p99 = observed_p99_;

  Service* critical = app_.service(last_report_.critical);
  if (critical == nullptr || !allowed(*critical)) {
    // Fall back to the managed service when localization is ambiguous.
    critical = allowed_services_.empty() ? nullptr : allowed_services_.front();
  }
  if (critical == nullptr) {
    util_.epoch();
    return actions;
  }

  const double util = util_.utilization(*critical);
  const double current = critical->cpu_limit();
  double desired = current;

  obs::ControlDecisionRecord rec;
  rec.at = now;
  rec.target = critical->name();
  rec.critical_service =
      app_.service(last_report_.critical) != nullptr
          ? app_.service(last_report_.critical)->name()
          : "";
  rec.traces_analyzed = last_report_.traces_analyzed;
  rec.observed_p99_ms = to_msec(static_cast<SimTime>(p99));
  rec.observed_utilization = util;
  rec.old_replicas = rec.new_replicas = critical->active_replicas();
  rec.old_cores = rec.new_cores = current;
  rec.action = "hold";

  const bool violating =
      p99 > static_cast<double>(options_.slo_latency) ||
      util > options_.high_utilization;
  const bool relaxed =
      p99 < options_.relax_fraction * static_cast<double>(options_.slo_latency) &&
      util < options_.low_utilization;

  if (violating) {
    low_periods_ = 0;
    desired = std::min(options_.max_cores, current + options_.step_cores);
    rec.reason = desired == current
                     ? "SLO violation or high utilization, but at max cores"
                     : "SLO violation or utilization above high watermark";
  } else if (relaxed) {
    ++low_periods_;
    if (low_periods_ >= options_.downscale_stabilization_periods) {
      desired = std::max(options_.min_cores, current - options_.step_cores);
      low_periods_ = 0;
      rec.reason = desired == current ? "relaxed but at min cores"
                                      : "stabilized relaxed latency";
    } else {
      rec.reason = "latency relaxed, awaiting downscale stabilization";
    }
  } else {
    low_periods_ = 0;
    rec.reason = "latency and utilization within bounds";
  }

  if (desired != current) {
    critical->set_cpu_limit(desired);
    ScaleEvent ev;
    ev.service = critical;
    ev.kind = ScaleEvent::Kind::kVertical;
    ev.old_replicas = ev.new_replicas = critical->active_replicas();
    ev.old_cores = current;
    ev.new_cores = desired;
    ev.at = now;
    notify(ev);
    rec.action = desired > current ? "scale_up" : "scale_down";
    rec.new_cores = desired;
    ControlAction act;
    act.kind = ControlAction::Kind::kCores;
    act.target = critical->name();
    act.reason = rec.reason;
    act.old_cores = current;
    act.new_cores = desired;
    act.old_replicas = act.new_replicas = critical->active_replicas();
    actions.push_back(std::move(act));
    SORA_INFO << "FIRM " << critical->name() << " cores " << current << " -> "
              << desired << " (p99 " << to_msec(static_cast<SimTime>(p99))
              << "ms, util " << util << ")";
  }
  record_decision(std::move(rec));
  util_.epoch();
  return actions;
}

}  // namespace sora
