// Autothrottle-style bi-level latency-target controller.
//
// Autothrottle (NSDI '24, see PAPERS.md) splits control into two levels: a
// slow global allocator that assigns each service a performance target from
// the end-to-end latency budget, and fast per-service local controllers
// that enforce the target between allocator rounds. Here the fast half is
// the PR-5 admission layer itself — each managed service's
// AdmissionController is the throttler, and the allocator steers it through
// the same set_knee() publication path the Sora framework uses: the
// published value is the admitted-concurrency cap, which kKneeCoupled
// admission enforces per request at zero allocator involvement.
//
// Each slow round the allocator:
//   1. measures per-service span p99 and demand share over the last window;
//   2. converts per-service burn (p99 / current target) and demand share
//      into latency credits: targets proportional to demand x (1 + burn),
//      summing to the end-to-end budget (allocate_latency_targets);
//   3. nudges each service's concurrency cap against its target —
//      multiplicative backoff when p99 overshoots the target, additive
//      increase when comfortably under it (AIMD, but at allocator cadence);
//   4. publishes the cap via AdmissionController::set_knee().
//
// Degenerate inputs fail closed: an empty trace window, a service with no
// spans, or a missing admission controller all hold the previous caps and
// say so in the decision record.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "autoscale/controller.h"
#include "sim/simulator.h"
#include "trace/warehouse.h"

namespace sora {

class Application;
class Service;

/// Split `budget_ms` of end-to-end latency across services: credits
/// proportional to demand_share[i] * (1 + burn[i]), so hot services (high
/// demand) and struggling services (high burn = observed p99 / target) earn
/// larger targets. Every target is at least `min_target_ms` (when the
/// budget can afford it) and the targets sum to budget_ms. Empty input,
/// mismatched sizes, or a non-positive budget return an empty vector (fail
/// closed).
std::vector<double> allocate_latency_targets(
    const std::vector<double>& demand_share, const std::vector<double>& burn,
    double budget_ms, double min_target_ms);

struct AutothrottleOptions {
  /// Slow allocator cadence (2x the default control period: the fast loop
  /// is the admission layer, the allocator only moves targets).
  SimTime period = sec(30);
  /// End-to-end latency budget the credits are carved from (the SLA).
  SimTime budget = msec(400);
  double min_target_ms = 5.0;

  // Cap controller (slow AIMD on the admitted-concurrency cap).
  double initial_cap = 64.0;
  double min_cap = 2.0;
  double max_cap = 4096.0;
  double backoff = 0.85;        ///< multiplicative decrease on overshoot
  double increase = 2.0;        ///< additive increase when under target
  double relax_fraction = 0.7;  ///< p99 below this x target allows increase

  /// Hold everything when the window carries fewer spans than this (fail
  /// closed on missing telemetry).
  std::size_t min_spans = 20;
};

class AutothrottleController : public Controller {
 public:
  AutothrottleController(Application& app, TraceWarehouse& warehouse,
                         AutothrottleOptions options = {});

  /// Put a service under allocator control. Its admission controller (if
  /// installed) becomes the fast local throttler.
  void manage(Service* service);

  const char* name() const override { return "autothrottle"; }
  ControllerNeeds needs() const override {
    ControllerNeeds n;
    n.traces = true;
    return n;
  }
  /// Per service and round: one latency-target assignment plus one cap
  /// publication.
  std::size_t max_actions_per_round() const override {
    return managed_.size() * 2;
  }

  /// Current per-service latency targets (ms), in manage() order (0 until
  /// the first completed allocation round).
  const std::vector<double>& targets_ms() const { return targets_ms_; }
  /// Current per-service concurrency caps, in manage() order.
  const std::vector<double>& caps() const { return caps_; }

 protected:
  void begin() override { window_start_ = sim().now(); }
  void observe(SimTime now) override;
  std::vector<ControlAction> decide(SimTime now) override;

 private:
  Application& app_;
  TraceWarehouse& warehouse_;
  AutothrottleOptions options_;

  std::vector<Service*> managed_;
  std::vector<double> targets_ms_;  ///< per managed service, 0 = unassigned
  std::vector<double> caps_;        ///< per managed service

  // Window evidence gathered by observe().
  SimTime window_start_ = 0;
  std::vector<double> observed_p99_ms_;   ///< per managed service
  std::vector<std::size_t> span_counts_;  ///< per managed service
  std::size_t window_spans_ = 0;          ///< total across managed services
};

}  // namespace sora
