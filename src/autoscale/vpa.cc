#include "autoscale/vpa.h"

#include <algorithm>

#include "common/log.h"
#include "svc/application.h"
#include "svc/service.h"

namespace sora {

VerticalPodAutoscaler::VerticalPodAutoscaler(Simulator& sim, Application& app,
                                             VpaOptions options)
    : Autoscaler(sim, options.period),
      app_(app),
      options_(options),
      util_(app) {}

void VerticalPodAutoscaler::manage(Service* service) {
  managed_.push_back(Managed{service, 0});
}

std::vector<ControlAction> VerticalPodAutoscaler::decide(SimTime now) {
  std::vector<ControlAction> actions;
  for (Managed& m : managed_) {
    Service& svc = *m.service;
    const double util = util_.utilization(svc);
    const double current = svc.cpu_limit();
    double desired = current;

    obs::ControlDecisionRecord rec;
    rec.at = now;
    rec.target = svc.name();
    rec.observed_utilization = util;
    rec.old_replicas = rec.new_replicas = svc.active_replicas();
    rec.old_cores = rec.new_cores = current;
    rec.action = "hold";

    if (util > options_.high_utilization) {
      m.low_periods = 0;
      desired = std::min(options_.max_cores, current + options_.step_cores);
      rec.reason = desired == current ? "high utilization but at max cores"
                                      : "utilization above high watermark";
    } else if (util < options_.low_utilization) {
      ++m.low_periods;
      if (m.low_periods >= options_.downscale_stabilization_periods) {
        desired = std::max(options_.min_cores, current - options_.step_cores);
        m.low_periods = 0;
        rec.reason = desired == current ? "low utilization but at min cores"
                                        : "stabilized low utilization";
      } else {
        rec.reason = "low utilization, awaiting downscale stabilization";
      }
    } else {
      m.low_periods = 0;
      rec.reason = "utilization within watermarks";
    }

    if (desired != current) {
      svc.set_cpu_limit(desired);
      ScaleEvent ev;
      ev.service = &svc;
      ev.kind = ScaleEvent::Kind::kVertical;
      ev.old_replicas = ev.new_replicas = svc.active_replicas();
      ev.old_cores = current;
      ev.new_cores = desired;
      ev.at = now;
      notify(ev);
      rec.action = desired > current ? "scale_up" : "scale_down";
      rec.new_cores = desired;
      ControlAction act;
      act.kind = ControlAction::Kind::kCores;
      act.target = svc.name();
      act.reason = rec.reason;
      act.old_cores = current;
      act.new_cores = desired;
      act.old_replicas = act.new_replicas = svc.active_replicas();
      actions.push_back(std::move(act));
      SORA_INFO << "VPA " << svc.name() << " cores " << current << " -> "
                << desired << " (util " << util << ")";
    }
    record_decision(std::move(rec));
  }
  util_.epoch();
  return actions;
}

}  // namespace sora
