#include "autoscale/vpa.h"

#include <algorithm>

#include "common/log.h"
#include "svc/application.h"
#include "svc/service.h"

namespace sora {

VerticalPodAutoscaler::VerticalPodAutoscaler(Simulator& sim, Application& app,
                                             VpaOptions options)
    : sim_(sim), app_(app), options_(options), util_(app) {}

void VerticalPodAutoscaler::manage(Service* service) {
  managed_.push_back(Managed{service, 0});
}

void VerticalPodAutoscaler::start() {
  util_.epoch();
  tick_event_ = sim_.schedule_periodic(options_.period, [this] { tick(); });
}

void VerticalPodAutoscaler::stop() { tick_event_.cancel(); }

void VerticalPodAutoscaler::tick() {
  next_round();
  if (handle_stall(sim_.now())) return;
  for (Managed& m : managed_) {
    Service& svc = *m.service;
    const double util = util_.utilization(svc);
    const double current = svc.cpu_limit();
    double desired = current;

    obs::ControlDecisionRecord rec;
    rec.at = sim_.now();
    rec.target = svc.name();
    rec.observed_utilization = util;
    rec.old_replicas = rec.new_replicas = svc.active_replicas();
    rec.old_cores = rec.new_cores = current;
    rec.action = "hold";

    if (util > options_.high_utilization) {
      m.low_periods = 0;
      desired = std::min(options_.max_cores, current + options_.step_cores);
      rec.reason = desired == current ? "high utilization but at max cores"
                                      : "utilization above high watermark";
    } else if (util < options_.low_utilization) {
      ++m.low_periods;
      if (m.low_periods >= options_.downscale_stabilization_periods) {
        desired = std::max(options_.min_cores, current - options_.step_cores);
        m.low_periods = 0;
        rec.reason = desired == current ? "low utilization but at min cores"
                                        : "stabilized low utilization";
      } else {
        rec.reason = "low utilization, awaiting downscale stabilization";
      }
    } else {
      m.low_periods = 0;
      rec.reason = "utilization within watermarks";
    }

    if (desired != current) {
      svc.set_cpu_limit(desired);
      ScaleEvent ev;
      ev.service = &svc;
      ev.kind = ScaleEvent::Kind::kVertical;
      ev.old_replicas = ev.new_replicas = svc.active_replicas();
      ev.old_cores = current;
      ev.new_cores = desired;
      ev.at = sim_.now();
      notify(ev);
      rec.action = desired > current ? "scale_up" : "scale_down";
      rec.new_cores = desired;
      SORA_INFO << "VPA " << svc.name() << " cores " << current << " -> "
                << desired << " (util " << util << ")";
    }
    record_decision(std::move(rec));
  }
  util_.epoch();
}

}  // namespace sora
