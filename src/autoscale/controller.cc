#include "autoscale/controller.h"

namespace sora {

const char* to_string(ControlAction::Kind kind) {
  switch (kind) {
    case ControlAction::Kind::kPoolResize:
      return "pool_resize";
    case ControlAction::Kind::kCores:
      return "cores";
    case ControlAction::Kind::kReplicas:
      return "replicas";
    case ControlAction::Kind::kAdmissionTarget:
      return "admission_target";
    case ControlAction::Kind::kLatencyTarget:
      return "latency_target";
  }
  return "unknown";
}

Controller::Controller(Simulator& sim, SimTime period)
    : sim_(sim), period_(period) {}

void Controller::start() {
  if (running_) return;
  running_ = true;
  begin();
  tick_ = sim_.schedule_periodic(period_, [this] { tick(); });
}

void Controller::stop() {
  running_ = false;
  tick_.cancel();
}

std::vector<ControlAction> Controller::round() {
  ++rounds_;
  const SimTime now = sim_.now();

  if (stalled_) {
    // The control plane is down (fault injection): no observation, no
    // decision — but the skipped round must still leave an auditable
    // record, so a gap in decisions is never ambiguous between "controller
    // chose nothing" and "controller never ran". Telemetry windows are left
    // untouched; the first round after the stall ends evaluates evidence
    // spanning the whole outage.
    if (metrics_ != nullptr) {
      metrics_->counter("control.rounds_stalled", {{"controller", name()}})
          .add();
    }
    obs::ControlDecisionRecord rec;
    rec.at = now;
    rec.action = "stalled";
    rec.fault_kind = "control_stall";
    rec.reason = "control round skipped: control plane stalled";
    record_decision(std::move(rec));
    return {};
  }

  if (metrics_ != nullptr) {
    metrics_->counter("control.rounds", {{"controller", name()}}).add();
  }

  observe(now);
  std::vector<ControlAction> acts = decide(now);

  for (ControlAction& a : acts) {
    a.at = now;
    a.round = rounds_;
    if (a.reason.empty()) a.reason = "no rationale produced";
    if (metrics_ != nullptr) {
      metrics_
          ->counter("control.actions",
                    {{"controller", name()}, {"kind", to_string(a.kind)}})
          .add();
    }
  }
  actions_.insert(actions_.end(), acts.begin(), acts.end());
  return acts;
}

void Controller::record_decision(obs::ControlDecisionRecord rec) {
  if (decision_log_ == nullptr) return;
  rec.controller = name();
  rec.round = rounds_;
  if (rec.reason.empty()) rec.reason = "no rationale produced";
  decision_log_->append(std::move(rec));
}

}  // namespace sora
