// Threshold-based Vertical Pod Autoscaler.
//
// Adjusts a service's per-replica CPU limit in whole-core steps when its
// utilization crosses thresholds — the "simple threshold-based hardware
// scaling solution (Kubernetes VPA)" both ConScale and Sora are paired
// with in Section 5.2.
#pragma once

#include <vector>

#include "autoscale/autoscaler.h"
#include "sim/simulator.h"

namespace sora {

struct VpaOptions {
  SimTime period = sec(15);
  double high_utilization = 0.8;  ///< scale up above this
  double low_utilization = 0.35;  ///< scale down below this
  double step_cores = 1.0;
  double min_cores = 1.0;
  double max_cores = 8.0;
  /// Consecutive low periods before scaling down.
  int downscale_stabilization_periods = 4;
};

class VerticalPodAutoscaler : public Autoscaler {
 public:
  VerticalPodAutoscaler(Simulator& sim, Application& app, VpaOptions options);

  void manage(Service* service);

  void start() override;
  void stop() override;
  const char* name() const override { return "k8s-vpa"; }

 private:
  void tick();

  struct Managed {
    Service* service;
    int low_periods = 0;
  };

  Simulator& sim_;
  Application& app_;
  VpaOptions options_;
  UtilizationTracker util_;
  std::vector<Managed> managed_;
  EventHandle tick_event_;
};

}  // namespace sora
