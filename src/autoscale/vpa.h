// Threshold-based Vertical Pod Autoscaler.
//
// Adjusts a service's per-replica CPU limit in whole-core steps when its
// utilization crosses thresholds — the "simple threshold-based hardware
// scaling solution (Kubernetes VPA)" both ConScale and Sora are paired
// with in Section 5.2.
#pragma once

#include <vector>

#include "autoscale/autoscaler.h"
#include "sim/simulator.h"

namespace sora {

struct VpaOptions {
  SimTime period = sec(15);
  double high_utilization = 0.8;  ///< scale up above this
  double low_utilization = 0.35;  ///< scale down below this
  double step_cores = 1.0;
  double min_cores = 1.0;
  double max_cores = 8.0;
  /// Consecutive low periods before scaling down.
  int downscale_stabilization_periods = 4;
};

class VerticalPodAutoscaler : public Autoscaler {
 public:
  VerticalPodAutoscaler(Simulator& sim, Application& app, VpaOptions options);

  void manage(Service* service);

  const char* name() const override { return "k8s-vpa"; }
  ControllerNeeds needs() const override {
    ControllerNeeds n;
    n.metrics_window = true;
    return n;
  }
  std::size_t max_actions_per_round() const override {
    return managed_.size();
  }

 protected:
  void begin() override { util_.epoch(); }
  std::vector<ControlAction> decide(SimTime now) override;

 private:
  struct Managed {
    Service* service;
    int low_periods = 0;
  };

  Application& app_;
  VpaOptions options_;
  UtilizationTracker util_;
  std::vector<Managed> managed_;
};

}  // namespace sora
