#include "autoscale/autothrottle.h"

#include <algorithm>
#include <vector>

#include "admission/controller.h"
#include "common/log.h"
#include "common/stats.h"
#include "svc/application.h"
#include "svc/service.h"

namespace sora {

std::vector<double> allocate_latency_targets(
    const std::vector<double>& demand_share, const std::vector<double>& burn,
    double budget_ms, double min_target_ms) {
  const std::size_t n = demand_share.size();
  if (n == 0 || burn.size() != n || budget_ms <= 0.0) return {};
  if (min_target_ms < 0.0) min_target_ms = 0.0;

  // Credits: demand x (1 + burn). A service carrying more of the traffic or
  // burning hotter against its current target earns a larger slice.
  std::vector<double> weight(n, 0.0);
  double sum_w = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    weight[i] = std::max(demand_share[i], 0.0) * (1.0 + std::max(burn[i], 0.0));
    sum_w += weight[i];
  }

  std::vector<double> target(n, 0.0);
  if (sum_w <= 0.0) {
    // No demand signal at all: equal split keeps the sum invariant without
    // inventing a preference.
    std::fill(target.begin(), target.end(), budget_ms / static_cast<double>(n));
    return target;
  }
  for (std::size_t i = 0; i < n; ++i) {
    target[i] = budget_ms * weight[i] / sum_w;
  }

  // The floor cannot be honored for everyone when the budget is too small;
  // fall back to the equal split (sum preserved, floor best-effort).
  if (budget_ms < min_target_ms * static_cast<double>(n)) {
    std::fill(target.begin(), target.end(), budget_ms / static_cast<double>(n));
    return target;
  }

  // Raise sub-floor targets to the floor and re-shrink the rest
  // proportionally so the total stays exactly the budget. Each pass can
  // push more targets below the floor, so iterate to a fixed point (at most
  // n passes: the clamped set only grows).
  for (std::size_t pass = 0; pass < n; ++pass) {
    double clamped_sum = 0.0;
    double free_sum = 0.0;
    bool any_below = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (target[i] <= min_target_ms) {
        if (target[i] < min_target_ms) any_below = true;
        clamped_sum += min_target_ms;
      } else {
        free_sum += target[i];
      }
    }
    if (!any_below) break;
    const double remaining = budget_ms - clamped_sum;
    for (std::size_t i = 0; i < n; ++i) {
      if (target[i] <= min_target_ms) {
        target[i] = min_target_ms;
      } else {
        target[i] = free_sum > 0.0 ? target[i] * remaining / free_sum
                                   : min_target_ms;
      }
    }
  }
  return target;
}

AutothrottleController::AutothrottleController(Application& app,
                                               TraceWarehouse& warehouse,
                                               AutothrottleOptions options)
    : Controller(app.sim(), options.period),
      app_(app),
      warehouse_(warehouse),
      options_(options) {
  set_metrics(&app.metrics());
}

void AutothrottleController::manage(Service* service) {
  for (const Service* s : managed_) {
    if (s == service) return;
  }
  managed_.push_back(service);
  targets_ms_.push_back(0.0);
  caps_.push_back(options_.initial_cap);
}

void AutothrottleController::observe(SimTime now) {
  const std::size_t n = managed_.size();
  observed_p99_ms_.assign(n, 0.0);
  span_counts_.assign(n, 0);
  window_spans_ = 0;

  std::vector<std::vector<double>> durations(n);
  warehouse_.for_each_in_window(window_start_, now, [&](const Trace& t) {
    for (const Span& s : t.spans) {
      if (s.failed) continue;
      for (std::size_t i = 0; i < n; ++i) {
        if (managed_[i]->id() == s.service) {
          durations[i].push_back(static_cast<double>(s.duration()));
          break;
        }
      }
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    span_counts_[i] = durations[i].size();
    window_spans_ += durations[i].size();
    if (!durations[i].empty()) {
      observed_p99_ms_[i] =
          to_msec(static_cast<SimTime>(percentile(durations[i], 99.0)));
    }
  }
  window_start_ = now;
}

std::vector<ControlAction> AutothrottleController::decide(SimTime now) {
  std::vector<ControlAction> actions;
  const std::size_t n = managed_.size();
  if (n == 0) {
    obs::ControlDecisionRecord rec;
    rec.at = now;
    rec.action = "round";
    rec.reason = "allocator round completed with no managed services";
    record_decision(std::move(rec));
    return actions;
  }

  if (window_spans_ < options_.min_spans) {
    // Fail closed: without a trustworthy latency picture, moving targets or
    // caps is guessing. Hold everything and say so, once per service so the
    // audit trail stays per-target.
    for (std::size_t i = 0; i < n; ++i) {
      obs::ControlDecisionRecord rec;
      rec.at = now;
      rec.target = managed_[i]->name();
      rec.action = "hold";
      rec.reason = "insufficient window telemetry (" +
                   std::to_string(window_spans_) + " spans < " +
                   std::to_string(options_.min_spans) +
                   "), holding targets and caps";
      rec.latency_target_ms = targets_ms_[i];
      rec.observed_p99_ms = observed_p99_ms_[i];
      record_decision(std::move(rec));
    }
    return actions;
  }

  // Slow level: carve the end-to-end budget into per-service credits.
  const double budget_ms = to_msec(options_.budget);
  std::vector<double> demand(n, 0.0);
  std::vector<double> burn(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    demand[i] = static_cast<double>(span_counts_[i]) /
                static_cast<double>(window_spans_);
    const double prev_target = targets_ms_[i] > 0.0
                                   ? targets_ms_[i]
                                   : budget_ms / static_cast<double>(n);
    burn[i] = prev_target > 0.0 ? observed_p99_ms_[i] / prev_target : 0.0;
  }
  std::vector<double> next =
      allocate_latency_targets(demand, burn, budget_ms, options_.min_target_ms);
  if (next.size() != n) return actions;  // fail closed (cannot happen here)

  for (std::size_t i = 0; i < n; ++i) {
    Service& svc = *managed_[i];
    const double target = next[i];
    const double p99 = observed_p99_ms_[i];

    obs::ControlDecisionRecord rec;
    rec.at = now;
    rec.target = svc.name();
    rec.latency_target_ms = target;
    rec.observed_p99_ms = p99;
    rec.traces_analyzed = span_counts_[i];

    if (target != targets_ms_[i]) {
      ControlAction act;
      act.kind = ControlAction::Kind::kLatencyTarget;
      act.target = svc.name();
      act.latency_target_ms = target;
      act.reason = "allocated latency credit from demand share and burn rate";
      actions.push_back(std::move(act));
    }
    targets_ms_[i] = target;

    // Fast-level coupling: steer the service's admission throttler by
    // republishing its concurrency cap (AIMD at allocator cadence).
    const double old_cap = caps_[i];
    double cap = old_cap;
    if (span_counts_[i] == 0 || p99 <= 0.0) {
      rec.action = "hold";
      rec.reason = "no span latency observed for service, holding cap";
    } else if (p99 > target) {
      cap = std::max(options_.min_cap, cap * options_.backoff);
      rec.action = "throttle_down";
      rec.reason = "span p99 above allocated latency target";
    } else if (p99 < options_.relax_fraction * target) {
      cap = std::min(options_.max_cap, cap + options_.increase);
      rec.action = "throttle_up";
      rec.reason = "span p99 comfortably below allocated latency target";
    } else {
      rec.action = "hold";
      rec.reason = "span p99 within the allocated latency target";
    }
    caps_[i] = cap;
    rec.admission_limit = cap;

    if (cap != old_cap) {
      if (svc.admission() != nullptr) {
        svc.admission()->set_knee(cap, now);
        ControlAction act;
        act.kind = ControlAction::Kind::kAdmissionTarget;
        act.target = svc.name();
        act.admission_target = cap;
        act.reason = rec.reason;
        actions.push_back(std::move(act));
        SORA_INFO << "autothrottle " << svc.name() << " cap " << old_cap
                  << " -> " << cap << " (p99 " << p99 << "ms, target "
                  << target << "ms)";
      } else {
        rec.reason += "; no admission controller installed, cap not enforced";
      }
    }
    record_decision(std::move(rec));
  }
  return actions;
}

}  // namespace sora
