// FIRM-like fine-grained hardware-only resource manager.
//
// FIRM (Qiu et al., OSDI '20) localizes the critical microservice instance
// and reprovisions its hardware (CPU) to curb SLO violations; it never
// re-adapts soft resources — exactly the property the paper's Section 5.2
// comparison exercises. The RL policy internals are irrelevant to that
// comparison, so this implementation keeps FIRM's structure (tracing-based
// critical-service localization + fine-grained vertical CPU scaling driven
// by measured tail latency against the SLO) with a deterministic policy:
//
//   * p99(end-to-end) > slo_latency, or utilization > high  ->  +step cores
//   * p99 < relax_fraction * slo and utilization < low      ->  -step cores
#pragma once

#include <vector>

#include "autoscale/autoscaler.h"
#include "core/localization.h"
#include "sim/simulator.h"
#include "trace/warehouse.h"

namespace sora {

struct FirmOptions {
  SimTime period = sec(15);
  SimTime slo_latency = msec(400);  ///< end-to-end p99 objective
  double high_utilization = 0.8;
  double low_utilization = 0.35;
  double relax_fraction = 0.4;  ///< p99 below this x SLO allows scale-down
  double step_cores = 1.0;
  double min_cores = 1.0;
  double max_cores = 8.0;
  int downscale_stabilization_periods = 4;
  LocalizerOptions localizer;
};

class FirmAutoscaler : public Autoscaler {
 public:
  FirmAutoscaler(Simulator& sim, Application& app, TraceWarehouse& warehouse,
                 FirmOptions options);

  /// Restrict scaling decisions to this set (empty = any service the
  /// localizer identifies as critical).
  void manage(Service* service);

  const char* name() const override { return "firm"; }
  ControllerNeeds needs() const override {
    ControllerNeeds n;
    n.traces = true;
    n.metrics_window = true;
    return n;
  }
  std::size_t max_actions_per_round() const override { return 1; }

  /// Most recent localization verdict (diagnostics).
  const CriticalServiceReport& last_report() const { return last_report_; }

 protected:
  void begin() override;
  void observe(SimTime now) override;
  std::vector<ControlAction> decide(SimTime now) override;

 private:
  bool allowed(const Service& svc) const;

  Application& app_;
  TraceWarehouse& warehouse_;
  FirmOptions options_;
  UtilizationTracker util_;
  CriticalServiceLocalizer localizer_;
  std::vector<Service*> allowed_services_;
  CriticalServiceReport last_report_;
  SimTime window_start_ = 0;
  double observed_p99_ = 0.0;  ///< end-to-end p99 of the last window
  int low_periods_ = 0;
};

}  // namespace sora
