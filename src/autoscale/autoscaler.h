// Hardware-only autoscaler interface.
//
// Sora is deliberately decoupled from the hardware scaler (Section 4.1,
// Reallocation Module): any autoscaler that emits scale events can be
// paired with the Concurrency Adapter. Implementations here: Kubernetes
// HPA (horizontal, rule-based), a threshold VPA (vertical), and a
// FIRM-like fine-grained vertical scaler driven by SLO violations and
// critical-service localization.
//
// Autoscaler is a thin specialization of the shared Controller contract
// (autoscale/controller.h) that adds the hardware-scaling vocabulary:
// ScaleEvent history and listeners (the harness wires these to
// SoraFramework::on_hardware_scaled for proportional re-adaptation).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "autoscale/controller.h"
#include "common/ids.h"
#include "common/time.h"

namespace sora {

class Application;
class Service;

struct ScaleEvent {
  enum class Kind { kHorizontal, kVertical };
  Service* service = nullptr;
  Kind kind = Kind::kHorizontal;
  int old_replicas = 0;
  int new_replicas = 0;
  double old_cores = 0.0;
  double new_cores = 0.0;
  SimTime at = 0;
};

class Autoscaler : public Controller {
 public:
  using ScaleListener = std::function<void(const ScaleEvent&)>;

  Autoscaler(Simulator& sim, SimTime period) : Controller(sim, period) {}

  void add_scale_listener(ScaleListener cb) {
    listeners_.push_back(std::move(cb));
  }

  const std::vector<ScaleEvent>& history() const { return history_; }

 protected:
  /// Record the event in history, count it into the metrics registry (if
  /// attached; counter "scale.events", labels controller/service/kind), and
  /// invoke the scale listeners. Defined in autoscaler.cc (needs the
  /// Service definition for its name).
  void notify(const ScaleEvent& ev);

 private:
  std::vector<ScaleListener> listeners_;
  std::vector<ScaleEvent> history_;
};

/// Snapshot-based CPU utilization tracker shared by the scalers: call
/// epoch() each control period; utilization() reports the mean utilization
/// of a service since the previous epoch.
class UtilizationTracker {
 public:
  explicit UtilizationTracker(Application& app);

  /// Mean utilization (0..1 of the limit) of `service` since the last epoch.
  double utilization(const Service& service) const;

  /// Advance the epoch (snapshot integrals).
  void epoch();

 private:
  Application& app_;
  SimTime epoch_start_ = 0;
  std::map<std::uint64_t, double> busy_;  // service id -> busy integral
};

}  // namespace sora
