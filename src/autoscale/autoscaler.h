// Hardware-only autoscaler interface.
//
// Sora is deliberately decoupled from the hardware scaler (Section 4.1,
// Reallocation Module): any autoscaler that emits scale events can be
// paired with the Concurrency Adapter. Implementations here: Kubernetes
// HPA (horizontal, rule-based), a threshold VPA (vertical), and a
// FIRM-like fine-grained vertical scaler driven by SLO violations and
// critical-service localization.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"

namespace sora {

class Application;
class Service;

struct ScaleEvent {
  enum class Kind { kHorizontal, kVertical };
  Service* service = nullptr;
  Kind kind = Kind::kHorizontal;
  int old_replicas = 0;
  int new_replicas = 0;
  double old_cores = 0.0;
  double new_cores = 0.0;
  SimTime at = 0;
};

class Autoscaler {
 public:
  using ScaleListener = std::function<void(const ScaleEvent&)>;

  virtual ~Autoscaler() = default;

  virtual void start() = 0;
  virtual void stop() = 0;
  virtual const char* name() const = 0;

  void add_scale_listener(ScaleListener cb) {
    listeners_.push_back(std::move(cb));
  }

  const std::vector<ScaleEvent>& history() const { return history_; }

  /// Attach a control-decision audit log: every control round appends one
  /// record per managed service — including explicit "hold" verdicts, so
  /// quiet rounds are distinguishable from missing telemetry. Nullptr
  /// detaches.
  void set_decision_log(obs::DecisionLog* log) { decision_log_ = log; }
  obs::DecisionLog* decision_log() const { return decision_log_; }

  /// Attach a metrics registry: notify() counts scale events into it
  /// (counter "scale.events", labels controller/service/kind).
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Fault-injection hook: while stalled, implementations skip their
  /// control logic each tick and append a single "stalled" record instead,
  /// leaving their utilization/latency windows untouched — the first round
  /// after the stall ends evaluates evidence spanning the whole outage.
  void set_stalled(bool stalled) { stalled_ = stalled; }
  bool stalled() const { return stalled_; }

 protected:
  /// Record the event in history, count it into the metrics registry (if
  /// attached), and invoke the scale listeners. Defined in autoscaler.cc
  /// (needs the Service definition for its name).
  void notify(const ScaleEvent& ev);

  /// Append a per-round decision record (no-op without a log). Fills in
  /// the controller name and current round number.
  void record_decision(obs::ControlDecisionRecord rec);

  /// Bump and return the control-round counter; call once per tick.
  std::uint64_t next_round() { return ++rounds_; }

  /// Shared stall short-circuit: when stalled, append the "stalled" record
  /// (with `at` stamped by the caller) and return true — the tick must then
  /// return without running its control logic.
  bool handle_stall(SimTime now) {
    if (!stalled_) return false;
    obs::ControlDecisionRecord rec;
    rec.at = now;
    rec.action = "stalled";
    rec.fault_kind = "control_stall";
    rec.reason = "control round skipped: control plane stalled";
    record_decision(std::move(rec));
    return true;
  }

 private:
  std::vector<ScaleListener> listeners_;
  std::vector<ScaleEvent> history_;
  obs::DecisionLog* decision_log_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::uint64_t rounds_ = 0;
  bool stalled_ = false;
};

/// Snapshot-based CPU utilization tracker shared by the scalers: call
/// epoch() each control period; utilization() reports the mean utilization
/// of a service since the previous epoch.
class UtilizationTracker {
 public:
  explicit UtilizationTracker(Application& app);

  /// Mean utilization (0..1 of the limit) of `service` since the last epoch.
  double utilization(const Service& service) const;

  /// Advance the epoch (snapshot integrals).
  void epoch();

 private:
  Application& app_;
  SimTime epoch_start_ = 0;
  std::map<std::uint64_t, double> busy_;  // service id -> busy integral
};

}  // namespace sora
