// The Controller interface: one contract for every control plane.
//
// Sora/ConScale, the hardware autoscalers (FIRM/HPA/VPA) and the new
// bi-level (Autothrottle) and gradient-descent (LSRAM) baselines all follow
// the same round structure — observe telemetry gathered since the previous
// round, decide, and emit a list of applied actions — but each used to
// hand-roll its own periodic scheduling, stall short-circuit, round
// counting and decision-log wiring. This base class owns all of that once:
//
//   round():  bump round counter
//             -> stalled?  append one auditable "stalled" record and return
//             -> observe(now)  (virtual: ingest the telemetry window)
//             -> decide(now)   (virtual: act; return the ControlAction list)
//             -> contract enforcement: stamp round/time, guarantee a
//                non-empty reason on every action, meter, retain history
//
// Controllers declare their telemetry needs up front (scatter samples,
// traces, metrics windows) so harnesses can validate wiring and the
// conformance suite (tests/test_controller_conformance.cc) can assert the
// shared contract uniformly: byte-identical reruns per seed, no actions
// before warm-up, bounded actions per round, graceful stalls and topology
// changes, and schema-valid decision records for every emitted action.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace sora {

class Service;

/// Telemetry a controller consumes each round, declared up front. The
/// harness uses this to validate wiring (e.g. a traces-needing controller
/// requires a TraceWarehouse) and the conformance suite asserts the
/// declaration is honest (a controller that declares no needs must still
/// produce schema-valid rounds when every feed is empty).
struct ControllerNeeds {
  bool scatter_samples = false;  ///< per-knob scatter windows (estimator)
  bool traces = false;           ///< completed traces (warehouse window)
  bool metrics_window = false;   ///< CPU utilization / metrics snapshots
};

/// One action a controller's decide phase applied this round, in a
/// controller-agnostic shape. The detailed evidence lives in the decision
/// log; the action list is the machine-checkable contract surface (bounded
/// per round, never before warm-up, always carrying a reason).
struct ControlAction {
  enum class Kind {
    kPoolResize,       ///< soft-resource pool size change (old/new_size)
    kCores,            ///< vertical CPU limit change (old/new_cores)
    kReplicas,         ///< horizontal replica change (old/new_replicas)
    kAdmissionTarget,  ///< published admitted-concurrency cap
    kLatencyTarget,    ///< assigned per-service latency target
  };
  Kind kind = Kind::kPoolResize;
  SimTime at = 0;           ///< stamped by Controller::round()
  std::uint64_t round = 0;  ///< stamped by Controller::round()
  std::string target;       ///< knob label or service name
  std::string reason;       ///< mandatory; round() fills a default if empty
  int old_size = 0;
  int new_size = 0;
  double old_cores = 0.0;
  double new_cores = 0.0;
  int old_replicas = 0;
  int new_replicas = 0;
  double admission_target = 0.0;   ///< kAdmissionTarget: published cap
  double latency_target_ms = 0.0;  ///< kLatencyTarget: assigned target
};

const char* to_string(ControlAction::Kind kind);

class Controller {
 public:
  /// `period` is the control round cadence; start() schedules the first
  /// round at now() + period.
  Controller(Simulator& sim, SimTime period);
  virtual ~Controller() = default;

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Controller tag used in decision records and metric labels ("sora",
  /// "firm", "autothrottle", ...).
  virtual const char* name() const = 0;

  /// Declared telemetry needs (see ControllerNeeds).
  virtual ControllerNeeds needs() const = 0;

  /// Contract: the most actions one round may emit (typically a small
  /// multiple of the managed target count). The conformance suite asserts
  /// every round stays within it.
  virtual std::size_t max_actions_per_round() const = 0;

  SimTime period() const { return period_; }
  Simulator& sim() const { return sim_; }

  /// Schedule the periodic control rounds (idempotent). Calls begin() once
  /// so implementations can open telemetry windows.
  void start();
  void stop();
  bool running() const { return running_; }

  /// Run one control round now. Exposed for tests and harness-driven
  /// stepping; the scheduled periodic calls exactly this.
  std::vector<ControlAction> round();

  /// Topology changed outside this controller (replica crash/restore, PR-4
  /// fault hooks). Default: no-op. Implementations discard evidence that
  /// described the old topology.
  virtual void on_topology_changed(Service* service, const std::string& why) {
    (void)service;
    (void)why;
  }

  // -- wiring -----------------------------------------------------------------

  /// Attach a control-decision audit log; every round appends at least one
  /// record through record_decision(), which stamps the controller name and
  /// round and guarantees a non-empty reason. Nullptr detaches.
  void set_decision_log(obs::DecisionLog* log) { decision_log_ = log; }
  obs::DecisionLog* decision_log() const { return decision_log_; }

  /// Attach a metrics registry (round/stall/action counters).
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Fault-injection hook: while stalled, round() skips observe/decide and
  /// appends a single "stalled" record instead, leaving telemetry windows
  /// untouched — the first round after the stall ends evaluates evidence
  /// spanning the whole outage.
  void set_stalled(bool stalled) { stalled_ = stalled; }
  bool stalled() const { return stalled_; }

  // -- introspection ----------------------------------------------------------

  std::uint64_t rounds() const { return rounds_; }
  /// Every action ever emitted, in round order (the conformance suite's
  /// warm-up and bounded-actions checks read this).
  const std::vector<ControlAction>& actions() const { return actions_; }

 protected:
  /// Called once from start(), before the first round is scheduled: open
  /// telemetry windows, snapshot utilization epochs.
  virtual void begin() {}

  /// Scheduled periodic entry point; defaults to round(). Override only to
  /// wrap the round (e.g. a profiler scope) — the round structure itself is
  /// not overridable.
  virtual void tick() { round(); }

  /// Observe phase: ingest the telemetry gathered since the previous round
  /// (trace windows, utilization epochs). Not called while stalled.
  virtual void observe(SimTime now) { (void)now; }

  /// Decide phase: act on the observed evidence and return the actions
  /// applied this round (empty = hold). Implementations append their
  /// evidence-rich decision records via record_decision().
  virtual std::vector<ControlAction> decide(SimTime now) = 0;

  /// Append a decision record: stamps the controller name and current
  /// round, and — the invariant every controller shares — fills a default
  /// reason when the implementation produced none, so no record ever
  /// reaches the log without a rationale.
  void record_decision(obs::ControlDecisionRecord rec);

 private:
  Simulator& sim_;
  SimTime period_;
  EventHandle tick_;
  bool running_ = false;
  bool stalled_ = false;
  std::uint64_t rounds_ = 0;
  std::vector<ControlAction> actions_;
  obs::DecisionLog* decision_log_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace sora
