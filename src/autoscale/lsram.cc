#include "autoscale/lsram.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/log.h"
#include "svc/application.h"
#include "svc/service.h"

namespace sora {

double GradientStepper::step(double x, double j) {
  x = std::clamp(x, options_.min_x, options_.max_x);
  if (!has_prev_) {
    // Nothing to difference against: probe once to create a baseline pair.
    has_prev_ = true;
    prev_x_ = x;
    prev_j_ = j;
    return std::clamp(x + options_.probe_step, options_.min_x, options_.max_x);
  }

  const double dx = x - prev_x_;
  prev_x_ = x;
  const double dj = j - prev_j_;
  prev_j_ = j;

  if (dx == 0.0) {
    // The previous step was absorbed (clamped, rounded away, or externally
    // reverted): no gradient information. Probe downhill-agnostically.
    return std::clamp(x + options_.probe_step, options_.min_x, options_.max_x);
  }

  const double gradient = dj / dx;
  if (std::abs(gradient) < options_.flat_gradient) {
    // Flat surface: hold rather than drift on numerical noise.
    return x;
  }
  double step = -options_.learning_rate * gradient;
  step = std::clamp(step, -options_.max_step, options_.max_step);
  return std::clamp(x + step, options_.min_x, options_.max_x);
}

LsramController::LsramController(Application& app, TraceWarehouse& warehouse,
                                 LsramOptions options)
    : Controller(app.sim(), options.period),
      app_(app),
      warehouse_(warehouse),
      options_(options) {
  set_metrics(&app.metrics());
}

void LsramController::manage(const ResourceKnob& knob) {
  for (const ResourceKnob& existing : knobs_) {
    if (existing == knob) return;
  }
  knobs_.push_back(knob);
  steppers_.emplace_back(options_.stepper);
}

void LsramController::observe(SimTime now) {
  const std::size_t n = knobs_.size();
  span_counts_.assign(n, 0);
  violations_.assign(n, 0);

  warehouse_.for_each_in_window(window_start_, now, [&](const Trace& t) {
    for (const Span& s : t.spans) {
      if (s.failed) continue;
      for (std::size_t i = 0; i < n; ++i) {
        if (knobs_[i].completion_service() == s.service) {
          ++span_counts_[i];
          if (s.duration() > options_.span_slo) ++violations_[i];
        }
      }
    }
  });
  window_start_ = now;
}

std::vector<ControlAction> LsramController::decide(SimTime now) {
  std::vector<ControlAction> actions;
  if (knobs_.empty()) {
    obs::ControlDecisionRecord rec;
    rec.at = now;
    rec.action = "round";
    rec.reason = "gradient round completed with no managed knobs";
    record_decision(std::move(rec));
    return actions;
  }

  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    const ResourceKnob& knob = knobs_[i];
    const int current = knob.current_size();

    obs::ControlDecisionRecord rec;
    rec.at = now;
    rec.target = knob.label();
    rec.traces_analyzed = span_counts_[i];
    rec.old_size = rec.new_size = current;

    if (span_counts_[i] < options_.min_spans) {
      // Fail closed: a gradient computed from a starved window optimizes
      // noise. Hold the allocation and keep the warm start for later — but
      // note the previous evaluation is now stale.
      rec.action = "hold";
      rec.reason = "insufficient window telemetry (" +
                   std::to_string(span_counts_[i]) + " spans < " +
                   std::to_string(options_.min_spans) +
                   "), holding allocation";
      record_decision(std::move(rec));
      continue;
    }

    const double viol_frac = static_cast<double>(violations_[i]) /
                             static_cast<double>(span_counts_[i]);
    const double cost = static_cast<double>(current) / options_.stepper.max_x;
    const double objective =
        options_.violation_weight * viol_frac + options_.cost_weight * cost;
    rec.objective = objective;
    rec.objective_valid = true;
    rec.good_fraction = 1.0 - viol_frac;

    const bool was_warm = steppers_[i].warm();
    const double next =
        steppers_[i].step(static_cast<double>(current), objective);
    const int desired = static_cast<int>(std::lround(next));

    if (desired != current) {
      knob.apply(desired);
      rec.action = was_warm ? "gradient_step" : "probe";
      rec.reason = was_warm
                       ? "gradient step against SLO-violation + cost objective"
                       : "probing allocation to seed the gradient warm start";
      rec.new_size = desired;
      ControlAction act;
      act.kind = ControlAction::Kind::kPoolResize;
      act.target = knob.label();
      act.reason = rec.reason;
      act.old_size = current;
      act.new_size = desired;
      actions.push_back(std::move(act));
      SORA_INFO << "lsram " << knob.label() << " size " << current << " -> "
                << desired << " (J " << objective << ", viol " << viol_frac
                << ")";
    } else {
      rec.action = "hold";
      rec.reason = "gradient flat or step rounded away, holding allocation";
    }
    record_decision(std::move(rec));
  }
  return actions;
}

void LsramController::on_topology_changed(Service* service,
                                          const std::string& why) {
  for (std::size_t i = 0; i < knobs_.size(); ++i) {
    const bool owns = knobs_[i].service() == service;
    const bool targets = knobs_[i].is_edge() &&
                         knobs_[i].completion_service() == service->id();
    if (owns || targets) steppers_[i].reset();
  }
  obs::ControlDecisionRecord rec;
  rec.at = sim().now();
  rec.target = service->name();
  rec.action = "relocalize";
  rec.reason = "topology changed (" + why +
               "): gradient warm start discarded for affected knobs";
  record_decision(std::move(rec));
}

}  // namespace sora
