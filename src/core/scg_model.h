// The Scatter-Concurrency-Goodput (SCG) model — the paper's core
// contribution (Section 3) — and its latency-agnostic ancestor, the
// Scatter-Concurrency-Throughput (SCT) model used by ConScale (the
// baseline of Section 5.2).
//
// Pipeline (Estimation Phase):
//   1. aggregate the scatter of <concurrency Q_n, goodput GP_n> sample
//      points into per-Q mean goodput (the "main sequence curve"),
//   2. fit a smoothing polynomial, tuning the degree incrementally from low
//      to high until the fit matches the profiling data (Section 3.3),
//   3. run Kneedle on the fitted curve; the knee is the optimal concurrency.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/polyfit.h"
#include "core/kneedle.h"
#include "metrics/scatter_sampler.h"

namespace sora {

/// Which metric forms the y-axis of the scatter.
enum class ModelKind {
  kScatterConcurrencyGoodput,    ///< SCG (Sora): latency-filtered
  kScatterConcurrencyThroughput, ///< SCT (ConScale): latency-agnostic
};

const char* to_string(ModelKind kind);

struct ScgOptions {
  ModelKind kind = ModelKind::kScatterConcurrencyGoodput;

  /// Minimum number of raw sample points required to attempt an estimate.
  std::size_t min_points = 50;
  /// Minimum distinct concurrency bins (range of observed Q) required.
  std::size_t min_bins = 6;

  /// Incremental polynomial-degree tuning range (paper: 5-8 typically fit).
  int min_degree = 3;
  int max_degree = 10;
  /// Accept the first degree whose fit reaches this R^2 and yields a knee.
  double r2_accept = 0.65;

  /// Dense evaluation grid for locating the fitted curve's peak.
  std::size_t grid_points = 200;

  /// A knee only counts when its goodput is at least this fraction of the
  /// fitted curve's peak: a "knee" far below saturation means the observed
  /// concurrency range has not reached the plateau yet (the allocation is
  /// capping concurrency), so the right move is exploration, not shrinking.
  double min_knee_fraction = 0.8;

  KneedleOptions kneedle;

  /// Discard sample buckets with throughput below this fraction of the
  /// maximum observed throughput (idle buckets carry no signal).
  double min_load_fraction = 0.02;

  /// Right-censor buckets whose concurrency is pinned at the pool capacity
  /// (>= this fraction of it): their goodput collapse reflects queueing
  /// behind the current cap, not the service's behaviour at that
  /// concurrency. Without censoring, a conservative allocation manufactures
  /// a false knee at the cap (Section 3.2 discusses exactly this:
  /// "too-conservative concurrency settings may affect knee point
  /// detection ... we gradually increase the allocation").
  double capacity_censor_fraction = 0.92;
};

/// One aggregated point of the main sequence curve.
struct CurvePoint {
  double concurrency = 0.0;
  double value = 0.0;  ///< mean goodput (SCG) or throughput (SCT), req/s
  std::size_t samples = 0;
};

struct ConcurrencyEstimate {
  bool valid = false;
  /// Recommended concurrency setting (knee, rounded to an integer >= 1).
  int recommended = 0;
  /// Raw knee location and value.
  double knee_concurrency = 0.0;
  double knee_value = 0.0;
  /// Peak of the fitted curve (saturation point) — the SCT-style optimum.
  double peak_concurrency = 0.0;
  double peak_value = 0.0;
  /// Fit diagnostics.
  int degree_used = 0;
  double r_squared = 0.0;
  std::size_t points_used = 0;
  std::string failure;  ///< non-empty when !valid
};

class ScgModel {
 public:
  explicit ScgModel(ScgOptions options = {});

  /// Estimate the optimal concurrency from raw scatter samples.
  ConcurrencyEstimate estimate(std::span<const SamplePoint> samples) const;

  /// Aggregate raw samples into the per-Q main sequence curve (exposed for
  /// tests and the figure benches).
  std::vector<CurvePoint> aggregate(std::span<const SamplePoint> samples) const;

  const ScgOptions& options() const { return options_; }
  ScgOptions& options() { return options_; }

 private:
  double sample_value(const SamplePoint& p) const;

  ScgOptions options_;
};

}  // namespace sora
