// Kneedle knee-point detection (Satopaa, Albrecht, Irwin, Raghavan:
// "Finding a 'Kneedle' in a Haystack", ICDCS workshops 2011) — the detector
// the SCG model uses to find the optimal concurrency on the main sequence
// curve (Section 3.3).
//
// Given a curve y(x) that rises and flattens (concave increasing), the knee
// is the point of maximum curvature, approximated as the maximum of the
// difference between the normalized curve and the diagonal.
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace sora {

struct KneedleOptions {
  /// Sensitivity S of the original algorithm: how far a local maximum of
  /// the difference curve must stand out to count as a knee. Smaller =
  /// more aggressive detection.
  double sensitivity = 1.0;
  /// Restrict the input to the rising part of the curve (up to the global
  /// maximum of y) before detecting; goodput curves fall after saturation
  /// and Kneedle's concave-increasing form expects a rising curve.
  bool restrict_to_rising = true;
};

struct KneeResult {
  double x = 0.0;  ///< knee abscissa (same units as input xs)
  double y = 0.0;  ///< curve value at the knee
  std::size_t index = 0;  ///< index into the (possibly truncated) input
};

/// Detect the knee of (xs, ys). xs must be strictly increasing. Returns
/// nullopt when the input is too small (< 5 points) or no local maximum of
/// the difference curve clears the sensitivity threshold.
std::optional<KneeResult> kneedle(std::span<const double> xs,
                                  std::span<const double> ys,
                                  const KneedleOptions& options = {});

}  // namespace sora
