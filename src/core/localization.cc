#include "core/localization.h"

#include <algorithm>

#include "obs/profiler.h"
#include "sim/simulator.h"
#include "svc/application.h"
#include "trace/critical_path.h"

namespace sora {

std::vector<ServiceId> ranked_by_pcc(const CriticalServiceReport& report) {
  std::vector<ServiceDiagnostics> by_pcc = report.services;
  std::sort(by_pcc.begin(), by_pcc.end(),
            [](const ServiceDiagnostics& a, const ServiceDiagnostics& b) {
              if (a.pcc != b.pcc) return a.pcc > b.pcc;
              return a.service.value() < b.service.value();
            });
  std::vector<ServiceId> ranking;
  ranking.reserve(by_pcc.size() + 1);
  if (report.critical.valid()) ranking.push_back(report.critical);
  for (const ServiceDiagnostics& d : by_pcc) {
    if (!(d.service == report.critical)) ranking.push_back(d.service);
  }
  return ranking;
}

namespace {
std::size_t rank_of(const std::vector<ServiceId>& ranking, ServiceId id) {
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i] == id) return i;
  }
  return SIZE_MAX;
}
}  // namespace

LocalizerCrossCheck cross_validate(
    const CriticalServiceReport& report,
    const std::vector<ServiceId>& causal_ranking) {
  LocalizerCrossCheck check;
  check.pearson_pick = report.critical;
  if (!causal_ranking.empty()) check.causal_pick = causal_ranking.front();
  check.agree = check.pearson_pick.valid() && check.causal_pick.valid() &&
                check.pearson_pick == check.causal_pick;
  const std::vector<ServiceId> pearson_ranking = ranked_by_pcc(report);
  if (check.causal_pick.valid()) {
    check.causal_pick_pearson_rank = rank_of(pearson_ranking, check.causal_pick);
  }
  if (check.pearson_pick.valid()) {
    check.pearson_pick_causal_rank = rank_of(causal_ranking, check.pearson_pick);
  }
  return check;
}

CriticalServiceLocalizer::CriticalServiceLocalizer(Application& app,
                                                   TraceWarehouse& warehouse,
                                                   LocalizerOptions options)
    : app_(app), warehouse_(warehouse), options_(options) {
  warehouse_.add_store_listener([this](const Trace& t) {
    if (t.end >= window_start_) accumulate(t);
  });
  begin_window();
}

void CriticalServiceLocalizer::accumulate(const Trace& t) {
  ++window_traces_;
  const CriticalPath cp = [&] {
    SORA_PROFILE_STAGE("trace.critical_path");
    return extract_critical_path(t);
  }();
  for (const CriticalHop& hop : cp.hops) {
    const std::uint64_t sid = hop.service.value();
    if (sid >= accum_.size()) continue;  // defensive: unknown service
    ++window_hops_;
    accum_[sid].add(static_cast<double>(hop.processing_time),
                    static_cast<double>(cp.total_duration));
  }
}

void CriticalServiceLocalizer::begin_window() {
  window_start_ = app_.sim().now();
  const std::size_t n = app_.services().size();
  busy_snapshot_.resize(n);
  accum_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    busy_snapshot_[i] = app_.services()[i]->cpu_busy_integral();
    accum_[i].reset();
  }
  // Restart the streaming state. Traces already in the warehouse whose
  // completion falls at or after the new window start stay in scope (the
  // boundary is inclusive, matching the old rescanning behaviour), so fold
  // them back in; everything later arrives via the store listener.
  window_traces_ = 0;
  window_hops_ = 0;
  warehouse_.for_each_in_window(window_start_, kSimTimeNever,
                                [this](const Trace& t) { accumulate(t); });
}

CriticalServiceReport CriticalServiceLocalizer::analyze() {
  SORA_PROFILE_STAGE("sora.localization");
  CriticalServiceReport report;
  const SimTime now = app_.sim().now();
  const SimTime elapsed = now - window_start_;
  LocalizerRoundCost cost;
  cost.traces_folded = window_traces_;
  cost.hops_folded = window_hops_;

  // --- Step 1: utilization ---------------------------------------------------
  const std::size_t n = app_.services().size();
  diag_.assign(n, ServiceDiagnostics{});
  double top_util = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& svc = app_.services()[i];
    ServiceDiagnostics& d = diag_[i];
    d.service = svc->id();
    if (elapsed > 0) {
      const double busy0 = i < busy_snapshot_.size() ? busy_snapshot_[i] : 0.0;
      const double busy = svc->cpu_busy_integral() - busy0;
      const double capacity =
          svc->cpu_capacity() * static_cast<double>(elapsed);
      d.utilization = capacity > 0.0 ? busy / capacity : 0.0;
    }
    if (d.utilization > top_util) {
      top_util = d.utilization;
      report.by_utilization = svc->id();
    }
  }
  cost.services_scanned = n;

  // --- Step 2: PCC(PT_si, RT_CP), streamed since begin_window ------------------
  // The heavy lifting (critical-path extraction, co-moment accumulation)
  // already happened at trace-store time; this pass is O(services), and
  // services the window's critical paths never touched (acc.n == 0) cost
  // one branch each.
  report.traces_analyzed = window_traces_;
  double top_pcc = -2.0;
  for (std::size_t i = 0; i < n && i < accum_.size(); ++i) {
    const CorrelationAccumulator& acc = accum_[i];
    if (acc.n == 0) continue;
    ++cost.accumulators_folded;
    ServiceDiagnostics& d = diag_[i];
    d.cp_appearances = static_cast<std::size_t>(acc.n);
    d.mean_pt_ms = to_msec(static_cast<SimTime>(acc.mean_x()));
    if (acc.n < options_.min_cp_appearances) continue;
    d.pcc = acc.r();
    if (d.pcc > top_pcc) {
      top_pcc = d.pcc;
      report.by_correlation = ServiceId(i);
    }
  }

  // --- Combine ----------------------------------------------------------------
  // Prefer the correlation winner among high-utilization candidates; fall
  // back to the global correlation winner, then the utilization winner.
  ServiceId best_candidate;
  double best_candidate_pcc = -2.0;
  for (const ServiceDiagnostics& d : diag_) {
    if (d.utilization >= options_.utilization_threshold &&
        d.cp_appearances >= options_.min_cp_appearances &&
        d.pcc > best_candidate_pcc) {
      best_candidate_pcc = d.pcc;
      best_candidate = d.service;
    }
  }
  if (best_candidate.valid()) {
    report.critical = best_candidate;
  } else if (report.by_correlation.valid()) {
    report.critical = report.by_correlation;
  } else {
    report.critical = report.by_utilization;
  }

  // --- Rank -------------------------------------------------------------------
  if (options_.top_k > 0 && options_.top_k < n) {
    // Top-k detail: O(n log k) partial sort with a deterministic id
    // tie-break, plus the verdict's entry appended if it fell outside.
    report.services.assign(diag_.begin(), diag_.end());
    const auto k =
        static_cast<std::vector<ServiceDiagnostics>::difference_type>(
            options_.top_k);
    std::partial_sort(
        report.services.begin(), report.services.begin() + k,
        report.services.end(),
        [&cost](const ServiceDiagnostics& a, const ServiceDiagnostics& b) {
          ++cost.sort_comparisons;
          if (a.pcc != b.pcc) return a.pcc > b.pcc;
          return a.service.value() < b.service.value();
        });
    report.services.resize(options_.top_k);
    bool has_critical = false;
    for (const ServiceDiagnostics& d : report.services) {
      if (d.service == report.critical) {
        has_critical = true;
        break;
      }
    }
    if (!has_critical && report.critical.valid() &&
        report.critical.value() < diag_.size()) {
      report.services.push_back(diag_[report.critical.value()]);
    }
  } else {
    // Full report, sorted by PCC with the historical comparator — the
    // exact sort the byte-parity suites pin down.
    report.services.assign(diag_.begin(), diag_.end());
    std::sort(report.services.begin(), report.services.end(),
              [&cost](const ServiceDiagnostics& a,
                      const ServiceDiagnostics& b) {
                ++cost.sort_comparisons;
                return a.pcc > b.pcc;
              });
  }
  last_cost_ = cost;
  return report;
}

}  // namespace sora
