#include "core/localization.h"

#include <algorithm>

#include "obs/profiler.h"
#include "sim/simulator.h"
#include "svc/application.h"
#include "trace/critical_path.h"

namespace sora {

std::vector<ServiceId> ranked_by_pcc(const CriticalServiceReport& report) {
  std::vector<ServiceDiagnostics> by_pcc = report.services;
  std::sort(by_pcc.begin(), by_pcc.end(),
            [](const ServiceDiagnostics& a, const ServiceDiagnostics& b) {
              if (a.pcc != b.pcc) return a.pcc > b.pcc;
              return a.service.value() < b.service.value();
            });
  std::vector<ServiceId> ranking;
  ranking.reserve(by_pcc.size() + 1);
  if (report.critical.valid()) ranking.push_back(report.critical);
  for (const ServiceDiagnostics& d : by_pcc) {
    if (!(d.service == report.critical)) ranking.push_back(d.service);
  }
  return ranking;
}

namespace {
std::size_t rank_of(const std::vector<ServiceId>& ranking, ServiceId id) {
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i] == id) return i;
  }
  return SIZE_MAX;
}
}  // namespace

LocalizerCrossCheck cross_validate(
    const CriticalServiceReport& report,
    const std::vector<ServiceId>& causal_ranking) {
  LocalizerCrossCheck check;
  check.pearson_pick = report.critical;
  if (!causal_ranking.empty()) check.causal_pick = causal_ranking.front();
  check.agree = check.pearson_pick.valid() && check.causal_pick.valid() &&
                check.pearson_pick == check.causal_pick;
  const std::vector<ServiceId> pearson_ranking = ranked_by_pcc(report);
  if (check.causal_pick.valid()) {
    check.causal_pick_pearson_rank = rank_of(pearson_ranking, check.causal_pick);
  }
  if (check.pearson_pick.valid()) {
    check.pearson_pick_causal_rank = rank_of(causal_ranking, check.pearson_pick);
  }
  return check;
}

CriticalServiceLocalizer::CriticalServiceLocalizer(Application& app,
                                                   TraceWarehouse& warehouse,
                                                   LocalizerOptions options)
    : app_(app), warehouse_(warehouse), options_(options) {
  warehouse_.add_store_listener([this](const Trace& t) {
    if (t.end >= window_start_) accumulate(t);
  });
  begin_window();
}

void CriticalServiceLocalizer::accumulate(const Trace& t) {
  ++window_traces_;
  const CriticalPath cp = [&] {
    SORA_PROFILE_STAGE("trace.critical_path");
    return extract_critical_path(t);
  }();
  for (const CriticalHop& hop : cp.hops) {
    accum_[hop.service.value()].add(static_cast<double>(hop.processing_time),
                                    static_cast<double>(cp.total_duration));
  }
}

void CriticalServiceLocalizer::begin_window() {
  window_start_ = app_.sim().now();
  busy_snapshot_.clear();
  for (const auto& svc : app_.services()) {
    busy_snapshot_[svc->id().value()] = svc->cpu_busy_integral();
  }
  // Restart the streaming state. Traces already in the warehouse whose
  // completion falls at or after the new window start stay in scope (the
  // boundary is inclusive, matching the old rescanning behaviour), so fold
  // them back in; everything later arrives via the store listener.
  accum_.clear();
  window_traces_ = 0;
  warehouse_.for_each_in_window(window_start_, kSimTimeNever,
                                [this](const Trace& t) { accumulate(t); });
}

CriticalServiceReport CriticalServiceLocalizer::analyze() {
  SORA_PROFILE_STAGE("sora.localization");
  CriticalServiceReport report;
  const SimTime now = app_.sim().now();
  const SimTime elapsed = now - window_start_;

  // --- Step 1: utilization ---------------------------------------------------
  std::map<std::uint64_t, ServiceDiagnostics> diag;
  double top_util = -1.0;
  for (const auto& svc : app_.services()) {
    ServiceDiagnostics d;
    d.service = svc->id();
    if (elapsed > 0) {
      const double busy0 = busy_snapshot_.count(svc->id().value())
                               ? busy_snapshot_[svc->id().value()]
                               : 0.0;
      const double busy = svc->cpu_busy_integral() - busy0;
      const double capacity =
          svc->cpu_capacity() * static_cast<double>(elapsed);
      d.utilization = capacity > 0.0 ? busy / capacity : 0.0;
    }
    if (d.utilization > top_util) {
      top_util = d.utilization;
      report.by_utilization = svc->id();
    }
    diag.emplace(svc->id().value(), d);
  }

  // --- Step 2: PCC(PT_si, RT_CP), streamed since begin_window ------------------
  // The heavy lifting (critical-path extraction, co-moment accumulation)
  // already happened at trace-store time; this pass is O(services).
  report.traces_analyzed = window_traces_;
  double top_pcc = -2.0;
  for (const auto& [sid, acc] : accum_) {
    auto it = diag.find(sid);
    if (it == diag.end()) continue;
    ServiceDiagnostics& d = it->second;
    d.cp_appearances = static_cast<std::size_t>(acc.n);
    d.mean_pt_ms =
        acc.n == 0 ? 0.0 : to_msec(static_cast<SimTime>(acc.mean_x()));
    if (acc.n < options_.min_cp_appearances) continue;
    d.pcc = acc.r();
    if (d.pcc > top_pcc) {
      top_pcc = d.pcc;
      report.by_correlation = ServiceId(sid);
    }
  }

  // --- Combine ----------------------------------------------------------------
  // Prefer the correlation winner among high-utilization candidates; fall
  // back to the global correlation winner, then the utilization winner.
  ServiceId best_candidate;
  double best_candidate_pcc = -2.0;
  for (const auto& [sid, d] : diag) {
    if (d.utilization >= options_.utilization_threshold &&
        d.cp_appearances >= options_.min_cp_appearances &&
        d.pcc > best_candidate_pcc) {
      best_candidate_pcc = d.pcc;
      best_candidate = ServiceId(sid);
    }
  }
  if (best_candidate.valid()) {
    report.critical = best_candidate;
  } else if (report.by_correlation.valid()) {
    report.critical = report.by_correlation;
  } else {
    report.critical = report.by_utilization;
  }

  report.services.reserve(diag.size());
  for (const auto& [sid, d] : diag) report.services.push_back(d);
  std::sort(report.services.begin(), report.services.end(),
            [](const ServiceDiagnostics& a, const ServiceDiagnostics& b) {
              return a.pcc > b.pcc;
            });
  return report;
}

}  // namespace sora
