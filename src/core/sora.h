// The Sora framework (Section 4).
//
// Composes the four SCG phases into a runtime control loop that coordinates
// with any hardware-only autoscaler:
//
//   Monitoring  — distributed traces (Tracer -> TraceWarehouse) + CPU probes
//   Estimator   — per-knob scatter sampling + SCG estimation
//   Reallocation — Concurrency Adapter applies recommendations; hardware
//                  scale events trigger proportional re-adaptation and
//                  model resets
//
// Configured with ModelKind::kScatterConcurrencyThroughput and deadline
// propagation disabled, the same loop implements the ConScale baseline
// (make_conscale_options).
//
// SoraFramework implements the shared Controller contract
// (autoscale/controller.h): localization runs in observe(), the per-knob
// estimate/adapt loop in decide(), and the harness drives it exactly like
// every other controller.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "autoscale/controller.h"
#include "core/adapter.h"
#include "core/deadline.h"
#include "core/estimator.h"
#include "core/localization.h"
#include "core/scg_model.h"
#include "metrics/knob.h"
#include "obs/decision_log.h"
#include "sim/simulator.h"
#include "trace/warehouse.h"

namespace sora {

struct SoraFrameworkOptions {
  /// Control period of the adaptation loop (aligned with the hardware
  /// autoscaler's 15 s default).
  SimTime control_period = sec(15);

  /// End-to-end SLA driving deadline propagation.
  SimTime sla = msec(400);

  /// SCG (Sora) or SCT (ConScale).
  ModelKind model = ModelKind::kScatterConcurrencyGoodput;

  /// Enable the RT Threshold Propagation Phase. Disabled for ConScale and
  /// for the deadline-propagation ablation (a fixed default threshold is
  /// used instead).
  bool deadline_propagation = true;

  /// Adapt only knobs associated with the currently-critical service
  /// (false = adapt every managed knob each round).
  bool adapt_only_critical = false;

  EstimatorOptions estimator;
  AdapterOptions adapter;
  LocalizerOptions localizer;
  DeadlineOptions deadline;
};

/// Options preset for the ConScale baseline: SCT model, no deadlines.
SoraFrameworkOptions make_conscale_options();

class Application;

class SoraFramework : public Controller {
 public:
  SoraFramework(Application& app, TraceWarehouse& warehouse,
                SoraFrameworkOptions options = {});

  /// Register a soft-resource knob for runtime adaptation.
  void manage(const ResourceKnob& knob);

  /// "sora" for the SCG model, "conscale" for the SCT baseline; used as the
  /// controller tag in decision records and metric labels.
  const char* name() const override;
  ControllerNeeds needs() const override {
    ControllerNeeds n;
    n.scatter_samples = true;
    n.traces = true;
    return n;
  }
  /// Per knob and round: at most one pool resize plus one knee publication
  /// to the admission layer.
  std::size_t max_actions_per_round() const override {
    return knobs_.size() * 2;
  }

  /// Notify the framework that a hardware autoscaler changed `service`
  /// (wired by the harness to Autoscaler::add_scale_listener). Performs the
  /// immediate proportional re-adaptation of Section 4.1 and resets the
  /// affected knobs' learned curves.
  void on_hardware_scaled(Service* service, double old_cores, double new_cores,
                          int old_replicas, int new_replicas);

  /// Notify the framework that the replica topology of `service` changed
  /// outside the paired autoscaler (replica crash/restore). The current
  /// localization window analyzed a topology that no longer exists, so it
  /// restarts, and the affected knobs' learned scatter is discarded; a
  /// "relocalize" record documents why.
  void on_topology_changed(Service* service, const std::string& why) override;

  /// Backwards-compatible alias for name() (pre-Controller callers).
  const char* controller_name() const { return name(); }

  // -- introspection -----------------------------------------------------------

  ConcurrencyEstimator& estimator() { return estimator_; }
  ConcurrencyAdapter& adapter() { return adapter_; }
  const CriticalServiceReport& last_report() const { return last_report_; }
  /// The localization engine (scale guards read its per-round op count).
  const CriticalServiceLocalizer& localizer() const { return localizer_; }
  const std::vector<ResourceKnob>& managed() const { return knobs_; }
  const SoraFrameworkOptions& options() const { return options_; }
  std::uint64_t control_rounds() const { return rounds(); }

  /// One last-good knee estimate per knob that has ever produced a valid
  /// fit. For the ctl plane's /statusz: the per-replica knee the adapter is
  /// currently steering toward, with the round/time it was learned.
  struct KnobKnee {
    std::string label;            ///< knob label ("cart/threads")
    std::string service;          ///< owning service name ("" if unresolved)
    double knee_concurrency = 0;  ///< per-replica knee location
    int recommended = 0;          ///< rounded setting the adapter targets
    SimTime at = 0;               ///< when the estimate was learned
    std::uint64_t round = 0;      ///< control round that learned it
  };
  std::vector<KnobKnee> current_knees() const;

  /// Run one control round immediately (exposed for tests).
  void control_round();

 protected:
  void begin() override;
  void tick() override { control_round(); }
  void observe(SimTime now) override;
  std::vector<ControlAction> decide(SimTime now) override;

 private:
  Application& app_;
  TraceWarehouse& warehouse_;
  SoraFrameworkOptions options_;

  ConcurrencyEstimator estimator_;
  ConcurrencyAdapter adapter_;
  CriticalServiceLocalizer localizer_;
  CriticalServiceReport last_report_;

  std::vector<ResourceKnob> knobs_;

  // Localization verdict resolved in observe(), shared by every knob's
  // record in the same round's decide().
  std::string critical_name_;
  double critical_util_ = 0.0;
  double critical_pcc_ = 0.0;

  // knob label -> sim time of the last valid estimate (drives the
  // "estimate age" gauge: how stale is the knowledge the knob runs on).
  std::map<std::string, SimTime> last_valid_estimate_;
  /// Last estimate that passed the model's sample gates, per knob: when a
  /// round's scatter window is rejected (too few samples, no knee), the
  /// knob holds this knee instead of moving blind, and the decision record
  /// says so.
  struct LastGoodEstimate {
    ConcurrencyEstimate estimate;
    SimTime at = 0;
    std::uint64_t round = 0;
  };
  std::map<std::string, LastGoodEstimate> last_good_;
};

}  // namespace sora
