#include "core/scg_model.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/profiler.h"

namespace sora {

const char* to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kScatterConcurrencyGoodput:
      return "SCG";
    case ModelKind::kScatterConcurrencyThroughput:
      return "SCT";
  }
  return "?";
}

ScgModel::ScgModel(ScgOptions options) : options_(options) {}

double ScgModel::sample_value(const SamplePoint& p) const {
  return options_.kind == ModelKind::kScatterConcurrencyGoodput ? p.goodput
                                                                : p.throughput;
}

std::vector<CurvePoint> ScgModel::aggregate(
    std::span<const SamplePoint> samples) const {
  SORA_PROFILE_STAGE("scg.aggregate");
  // Filter out idle buckets, then bin by rounded concurrency and average
  // ("for a specific server concurrency Q_n we calculate the average
  // goodput GP_n", Section 3.2).
  double max_tp = 0.0;
  for (const SamplePoint& p : samples) max_tp = std::max(max_tp, p.throughput);
  const double tp_floor = max_tp * options_.min_load_fraction;

  std::map<int, std::pair<double, std::size_t>> bins;  // Q -> (sum, count)
  for (const SamplePoint& p : samples) {
    if (p.throughput < tp_floor) continue;
    if (p.capacity > 0.0 &&
        p.concurrency >= options_.capacity_censor_fraction * p.capacity) {
      continue;  // right-censored: pinned at the current allocation
    }
    const int q = static_cast<int>(std::lround(p.concurrency));
    if (q < 1) continue;
    auto& [sum, count] = bins[q];
    sum += sample_value(p);
    ++count;
  }

  std::vector<CurvePoint> curve;
  curve.reserve(bins.size());
  for (const auto& [q, agg] : bins) {
    curve.push_back(CurvePoint{static_cast<double>(q),
                               agg.first / static_cast<double>(agg.second),
                               agg.second});
  }
  return curve;
}

ConcurrencyEstimate ScgModel::estimate(
    std::span<const SamplePoint> samples) const {
  SORA_PROFILE_STAGE("scg.estimate");
  ConcurrencyEstimate est;
  est.points_used = samples.size();

  if (samples.size() < options_.min_points) {
    est.failure = "insufficient samples";
    return est;
  }
  const std::vector<CurvePoint> curve = aggregate(samples);
  if (curve.size() < options_.min_bins) {
    est.failure = "insufficient concurrency range";
    return est;
  }

  std::vector<double> xs, ys;
  xs.reserve(curve.size());
  ys.reserve(curve.size());
  for (const CurvePoint& p : curve) {
    xs.push_back(p.concurrency);
    ys.push_back(p.value);
  }

  // Incremental degree tuning: lowest degree whose fit both matches the
  // data (R^2) and produces a confirmed knee wins. Track the best fallback
  // in case no degree satisfies both.
  std::optional<KneeResult> best_knee;
  PolyFitResult best_fit;
  int best_degree = 0;

  // The knee is detected on the *smoothed* curve evaluated at the observed
  // concurrency bins: Kneedle's sensitivity threshold is calibrated to the
  // data spacing, so evaluating on an arbitrarily dense grid would make the
  // threshold vanish and admit noise bumps as knees.
  const int max_degree =
      std::min<int>(options_.max_degree, static_cast<int>(xs.size()) - 2);
  for (int degree = options_.min_degree; degree <= max_degree; ++degree) {
    const PolyFitResult fit = [&] {
      SORA_PROFILE_STAGE("scg.polyfit");
      return polyfit(xs, ys, degree);
    }();
    if (!fit.ok) continue;

    std::vector<double> smooth(xs.size());
    double fit_peak = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      smooth[i] = (fit.poly)(xs[i]);
      fit_peak = std::max(fit_peak, smooth[i]);
    }
    auto knee = [&] {
      SORA_PROFILE_STAGE("scg.kneedle");
      return kneedle(xs, smooth, options_.kneedle);
    }();
    // Reject knees below the saturation plateau (see min_knee_fraction).
    if (knee && knee->y < options_.min_knee_fraction * fit_peak) {
      knee.reset();
    }

    const bool better_fit = !best_fit.ok || fit.r_squared > best_fit.r_squared;
    if (better_fit && (knee || !best_knee)) {
      best_fit = fit;
      best_degree = degree;
      if (knee) best_knee = knee;
    }
    if (knee && fit.r_squared >= options_.r2_accept) {
      best_fit = fit;
      best_degree = degree;
      best_knee = knee;
      break;  // minimum adequate degree found
    }
  }

  if (!best_fit.ok) {
    est.failure = "polynomial fit failed";
    return est;
  }

  // Peak of the fitted curve over the observed range.
  {
    const double lo = xs.front(), hi = xs.back();
    double peak_x = lo, peak_y = (best_fit.poly)(lo);
    for (std::size_t i = 1; i < options_.grid_points; ++i) {
      const double x = lo + (hi - lo) * static_cast<double>(i) /
                                static_cast<double>(options_.grid_points - 1);
      const double y = (best_fit.poly)(x);
      if (y > peak_y) {
        peak_y = y;
        peak_x = x;
      }
    }
    est.peak_concurrency = peak_x;
    est.peak_value = peak_y;
  }

  est.degree_used = best_degree;
  est.r_squared = best_fit.r_squared;

  if (!best_knee) {
    // Fallback: a curve that rises (near-)linearly to an interior maximum
    // and clearly declines afterwards has no curvature knee, but its peak
    // is the optimal concurrency — beyond it goodput is lost outright.
    const double x_max = xs.back();
    const double tail = (best_fit.poly)(x_max);
    const bool interior_peak = est.peak_concurrency < 0.9 * x_max;
    const bool declines = tail < options_.min_knee_fraction * est.peak_value;
    if (best_fit.ok && interior_peak && declines &&
        best_fit.r_squared >= options_.r2_accept) {
      est.valid = true;
      est.knee_concurrency = est.peak_concurrency;
      est.knee_value = est.peak_value;
      est.recommended =
          std::max(1, static_cast<int>(std::lround(est.peak_concurrency)));
      return est;
    }
    est.failure = "no knee detected";
    return est;
  }

  est.valid = true;
  est.knee_concurrency = best_knee->x;
  est.knee_value = best_knee->y;
  est.recommended = std::max(1, static_cast<int>(std::lround(best_knee->x)));
  return est;
}

}  // namespace sora
