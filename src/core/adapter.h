// Concurrency Adapter (Section 4.1, Reallocation Module).
//
// Applies estimator recommendations to the live pools, with guardrails:
// clamping, hysteresis (skip no-op changes), exploration when the model
// cannot see a knee because the current allocation saturates (the paper:
// "we gradually increase the allocation to find a new optimal value"), and
// proportional rescaling right after a hardware scale event so the system
// is not left mismatched while the model re-learns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/scg_model.h"
#include "metrics/knob.h"

namespace sora {

struct AdapterOptions {
  int min_size = 1;
  int max_size = 512;
  /// Exploration when saturated and no knee: new = cur * factor + add.
  double exploration_factor = 1.25;
  int exploration_add = 1;
  /// Recent high-quantile concurrency >= this fraction of capacity counts
  /// as saturated.
  double saturation_fraction = 0.85;
  /// A shrink is applied only after this many consecutive estimates agree
  /// the pool should shrink (guards against transient false knees).
  int shrink_confirmations = 2;
  /// After applying an estimate, suppress saturation-driven exploration for
  /// this long: the applied knee intentionally caps concurrency, so
  /// saturation right after an apply is expected, not evidence the knee is
  /// stale.
  SimTime exploration_cooldown = sec(60);
  /// Headroom applied on top of the knee: new = ceil(knee * factor) + add.
  /// The knee is where goodput saturates; a little slack above it keeps
  /// bursts from queueing behind the pool without entering the
  /// over-allocation regime.
  double headroom_factor = 1.2;
  int headroom_add = 1;
  /// Emergency exploration: when the pool is saturated AND the fraction of
  /// within-deadline completions has collapsed below this, the system state
  /// has shifted under the knee (e.g. request-type drift) — grow
  /// immediately, ignoring the cooldown, at an accelerated factor.
  double emergency_good_fraction = 0.5;
  double emergency_factor = 3.0;
};

/// What the adapter decided for one knob on one control round.
struct AdaptAction {
  enum class Type {
    kNone,         ///< no change (estimate missing and not saturated)
    kApplied,      ///< estimate applied
    kExplored,     ///< grew the allocation to expose the knee
    kProportional  ///< rescaled after a hardware scale event
  };
  Type type = Type::kNone;
  int old_size = 0;
  int new_size = 0;
  SimTime at = 0;
  /// Human-readable rationale for the verdict (fed into the decision log).
  std::string reason;
};

const char* to_string(AdaptAction::Type type);

class ConcurrencyAdapter {
 public:
  explicit ConcurrencyAdapter(AdapterOptions options = {});

  /// Apply an estimate to a knob. `recent_concurrency` is a high quantile
  /// of recent aggregate concurrency (for saturation detection) and
  /// `good_fraction` the recent fraction of within-deadline completions
  /// (for emergency detection); `now` stamps the action. The estimate's
  /// recommendation is the *aggregate* optimal concurrency; it is divided
  /// across the owner's active replicas.
  AdaptAction adapt(const ResourceKnob& knob, const ConcurrencyEstimate& est,
                    double recent_concurrency, SimTime now,
                    double good_fraction = 1.0);

  /// Proportionally rescale a knob after hardware scaling (`factor` =
  /// new capacity / old capacity).
  AdaptAction rescale_proportional(const ResourceKnob& knob, double factor,
                                   SimTime now);

  const AdapterOptions& options() const { return options_; }
  const std::vector<AdaptAction>& history() const { return history_; }

 private:
  struct KnobState {
    int pending_shrinks = 0;
    SimTime last_applied_at = -1;
  };

  int clamp_size(double size) const;
  KnobState& state(const ResourceKnob& knob);

  AdapterOptions options_;
  std::vector<AdaptAction> history_;
  std::vector<std::pair<ResourceKnob, KnobState>> states_;
};

}  // namespace sora
