#include "core/sora.h"

#include <algorithm>

#include "common/log.h"
#include "svc/application.h"
#include "svc/service.h"

namespace sora {

SoraFrameworkOptions make_conscale_options() {
  SoraFrameworkOptions options;
  options.model = ModelKind::kScatterConcurrencyThroughput;
  options.deadline_propagation = false;
  return options;
}

SoraFramework::SoraFramework(Application& app, TraceWarehouse& warehouse,
                             SoraFrameworkOptions options)
    : app_(app),
      warehouse_(warehouse),
      options_(options),
      estimator_(app.sim(), app.tracer(),
                 [&options] {
                   EstimatorOptions e = options.estimator;
                   e.scg.kind = options.model;
                   return e;
                 }()),
      adapter_(options.adapter),
      localizer_(app, warehouse, options.localizer) {}

void SoraFramework::manage(const ResourceKnob& knob) {
  for (const ResourceKnob& existing : knobs_) {
    if (existing == knob) return;
  }
  knobs_.push_back(knob);
  estimator_.watch(knob);
}

void SoraFramework::start() {
  if (running_) return;
  running_ = true;
  localizer_.begin_window();
  tick_ = app_.sim().schedule_periodic(options_.control_period,
                                       [this] { control_round(); });
}

void SoraFramework::stop() {
  running_ = false;
  tick_.cancel();
}

void SoraFramework::control_round() {
  ++control_rounds_;
  const SimTime now = app_.sim().now();

  // Critical Service Localization Phase.
  last_report_ = localizer_.analyze();
  localizer_.begin_window();

  for (const ResourceKnob& knob : knobs_) {
    const ServiceId knob_service = knob.completion_service();
    if (options_.adapt_only_critical && last_report_.critical.valid() &&
        knob_service != last_report_.critical &&
        knob.service()->id() != last_report_.critical) {
      continue;
    }

    // RT Threshold Propagation Phase (SCG only).
    if (options_.deadline_propagation &&
        options_.model == ModelKind::kScatterConcurrencyGoodput) {
      const DeadlineResult dl = propagate_deadline(
          warehouse_, now - options_.estimator.window, now, knob_service,
          options_.sla, options_.deadline);
      if (dl.valid) {
        estimator_.set_rt_threshold(knob, dl.rt_threshold);
      }
    }

    // Estimation Phase + Reallocation.
    const ConcurrencyEstimate est = estimator_.estimate(knob);
    const AdaptAction action = adapter_.adapt(
        knob, est, estimator_.concurrency_quantile(knob, 90.0), now,
        estimator_.good_fraction(knob));
    if (action.type != AdaptAction::Type::kNone) {
      // Samples gathered under the old allocation describe a different
      // system; restart the scatter for the new one.
      estimator_.clear(knob);
    }
  }
}

void SoraFramework::on_hardware_scaled(Service* service, double old_cores,
                                       double new_cores, int old_replicas,
                                       int new_replicas) {
  const SimTime now = app_.sim().now();
  for (const ResourceKnob& knob : knobs_) {
    const bool owns = knob.service() == service;
    const bool targets =
        knob.is_edge() && knob.completion_service() == service->id();
    if (!owns && !targets) continue;

    double factor = 1.0;
    if (old_cores > 0.0 && new_cores != old_cores && owns && !knob.is_edge()) {
      // Vertical scaling of the pool's owner: thread demand scales with the
      // usable cores.
      factor = new_cores / old_cores;
    } else if (old_cores > 0.0 && new_cores != old_cores && targets) {
      // Vertical scaling of an edge knob's target: the target can absorb
      // proportionally more concurrent calls.
      factor = new_cores / old_cores;
    } else if (old_replicas > 0 && new_replicas != old_replicas && targets) {
      // Horizontal scaling of the target: the caller's connection pool
      // should track the target's aggregate parallelism (Section 5.3).
      factor = static_cast<double>(new_replicas) /
               static_cast<double>(old_replicas);
    }

    if (factor != 1.0) {
      adapter_.rescale_proportional(knob, factor, now);
    }
    // The learned concurrency-goodput curve described the old hardware.
    estimator_.clear(knob);
    SORA_INFO << "sora: hardware scaled for " << knob.label()
              << ", curve reset (factor " << factor << ")";
  }
}

}  // namespace sora
