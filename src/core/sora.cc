#include "core/sora.h"

#include <algorithm>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "svc/application.h"
#include "svc/service.h"

namespace sora {

SoraFrameworkOptions make_conscale_options() {
  SoraFrameworkOptions options;
  options.model = ModelKind::kScatterConcurrencyThroughput;
  options.deadline_propagation = false;
  return options;
}

SoraFramework::SoraFramework(Application& app, TraceWarehouse& warehouse,
                             SoraFrameworkOptions options)
    : Controller(app.sim(), options.control_period),
      app_(app),
      warehouse_(warehouse),
      options_(options),
      estimator_(app.sim(), app.tracer(),
                 [&options] {
                   EstimatorOptions e = options.estimator;
                   e.scg.kind = options.model;
                   return e;
                 }()),
      adapter_(options.adapter),
      localizer_(app, warehouse, options.localizer) {
  set_metrics(&app.metrics());
}

void SoraFramework::manage(const ResourceKnob& knob) {
  for (const ResourceKnob& existing : knobs_) {
    if (existing == knob) return;
  }
  knobs_.push_back(knob);
  estimator_.watch(knob);
}

void SoraFramework::begin() { localizer_.begin_window(); }

const char* SoraFramework::name() const {
  return options_.model == ModelKind::kScatterConcurrencyGoodput ? "sora"
                                                                 : "conscale";
}

std::vector<SoraFramework::KnobKnee> SoraFramework::current_knees() const {
  std::vector<KnobKnee> out;
  out.reserve(last_good_.size());
  for (const auto& [label, lg] : last_good_) {
    KnobKnee k;
    k.label = label;
    for (const ResourceKnob& knob : knobs_) {
      if (knob.label() == label && knob.service() != nullptr) {
        k.service = knob.service()->name();
        break;
      }
    }
    k.knee_concurrency = lg.estimate.knee_concurrency;
    k.recommended = lg.estimate.recommended;
    k.at = lg.at;
    k.round = lg.round;
    out.push_back(std::move(k));
  }
  return out;
}

void SoraFramework::control_round() {
  SORA_PROFILE_STAGE("sora.control_round");
  round();
}

void SoraFramework::observe(SimTime now) {
  (void)now;
  // Critical Service Localization Phase.
  last_report_ = localizer_.analyze();
  localizer_.begin_window();

  // Resolve the localization verdict once; every knob's record shares it.
  critical_name_.clear();
  critical_util_ = 0.0;
  critical_pcc_ = 0.0;
  if (last_report_.critical.valid()) {
    for (const auto& svc : app_.services()) {
      if (svc->id() == last_report_.critical) {
        critical_name_ = svc->name();
        break;
      }
    }
    for (const ServiceDiagnostics& d : last_report_.services) {
      if (d.service == last_report_.critical) {
        critical_util_ = d.utilization;
        critical_pcc_ = d.pcc;
        break;
      }
    }
  }
}

std::vector<ControlAction> SoraFramework::decide(SimTime now) {
  std::vector<ControlAction> actions;
  obs::MetricsRegistry& metrics = app_.metrics();
  obs::DecisionLog* log = decision_log();

  for (const ResourceKnob& knob : knobs_) {
    obs::ControlDecisionRecord rec;
    rec.at = now;
    rec.target = knob.label();
    rec.critical_service = critical_name_;
    rec.critical_utilization = critical_util_;
    rec.critical_pcc = critical_pcc_;
    rec.traces_analyzed = last_report_.traces_analyzed;

    const ServiceId knob_service = knob.completion_service();
    if (options_.adapt_only_critical && last_report_.critical.valid() &&
        knob_service != last_report_.critical &&
        knob.service()->id() != last_report_.critical) {
      rec.action = "skipped";
      rec.reason = "knob not associated with the critical service";
      rec.old_size = rec.new_size = knob.current_size();
      record_decision(std::move(rec));
      continue;
    }

    // RT Threshold Propagation Phase (SCG only).
    if (options_.deadline_propagation &&
        options_.model == ModelKind::kScatterConcurrencyGoodput) {
      const DeadlineResult dl = propagate_deadline(
          warehouse_, now - options_.estimator.window, now, knob_service,
          options_.sla, options_.deadline);
      if (dl.valid) {
        estimator_.set_rt_threshold(knob, dl.rt_threshold);
      }
      rec.deadline_valid = dl.valid;
      rec.rt_threshold = estimator_.rt_threshold(knob);
      rec.mean_upstream_pt = dl.mean_upstream_pt;
    }

    // Estimation Phase + Reallocation.
    const ConcurrencyEstimate est = estimator_.estimate(knob);
    if (est.valid) {
      last_valid_estimate_[knob.label()] = now;
      last_good_[knob.label()] = LastGoodEstimate{est, now, rounds()};
      // Publish the knee to the knob service's admission controller (if
      // one is installed): knee-coupled admission caps admitted concurrency
      // at the knee the SCG model just fitted. knee_concurrency is already
      // the aggregate across replicas — exactly the admission unit.
      Service* knee_svc = knob.is_edge() ? app_.service(knob.completion_service())
                                         : knob.service();
      if (knee_svc != nullptr && knee_svc->admission() != nullptr) {
        knee_svc->admission()->set_knee(est.knee_concurrency, now);
        ControlAction pub;
        pub.kind = ControlAction::Kind::kAdmissionTarget;
        pub.target = knee_svc->name();
        pub.admission_target = est.knee_concurrency;
        pub.reason = "published fitted knee to admission controller";
        actions.push_back(std::move(pub));
      }
    }
    const double good_fraction = estimator_.good_fraction(knob);
    const AdaptAction action = adapter_.adapt(
        knob, est, estimator_.concurrency_quantile(knob, 90.0), now,
        good_fraction);
    if (action.type != AdaptAction::Type::kNone) {
      // Samples gathered under the old allocation describe a different
      // system; restart the scatter for the new one.
      estimator_.clear(knob);
      ControlAction act;
      act.kind = ControlAction::Kind::kPoolResize;
      act.target = knob.label();
      act.reason = action.reason;
      act.old_size = action.old_size;
      act.new_size = action.new_size;
      actions.push_back(std::move(act));
    }

    const obs::MetricLabels knob_labels{{"knob", knob.label()}};
    metrics.gauge("sora.scatter_points", knob_labels)
        .set(static_cast<double>(est.points_used));
    metrics.gauge("sora.rt_threshold_us", knob_labels)
        .set(static_cast<double>(estimator_.rt_threshold(knob)));
    if (est.valid) {
      metrics.counter("sora.estimates_valid", knob_labels).add();
      metrics.gauge("sora.knee_concurrency", knob_labels)
          .set(est.knee_concurrency);
      metrics.gauge("sora.fit_degree", knob_labels)
          .set(static_cast<double>(est.degree_used));
    } else {
      metrics.counter("sora.estimate_failures", knob_labels).add();
    }
    const auto age_it = last_valid_estimate_.find(knob.label());
    metrics.gauge("sora.estimate_age_us", knob_labels)
        .set(age_it == last_valid_estimate_.end()
                 ? -1.0
                 : static_cast<double>(now - age_it->second));
    metrics
        .counter("sora.actions", {{"controller", name()},
                                  {"action", to_string(action.type)}})
        .add();

    if (log != nullptr) {
      rec.estimate_valid = est.valid;
      rec.scatter_points = est.points_used;
      rec.recommended = est.recommended;
      rec.knee_concurrency = est.knee_concurrency;
      rec.knee_value = est.knee_value;
      rec.peak_concurrency = est.peak_concurrency;
      rec.peak_value = est.peak_value;
      rec.degree_used = est.degree_used;
      rec.r_squared = est.r_squared;
      rec.good_fraction = good_fraction;
      rec.estimate_failure = est.failure;
      rec.action = to_string(action.type);
      rec.reason = action.reason;
      if (!est.valid && action.type == AdaptAction::Type::kNone) {
        // The scatter window was rejected (too few samples, no knee, ...):
        // say explicitly what the knob is running on instead.
        const auto lg = last_good_.find(knob.label());
        if (lg != last_good_.end()) {
          rec.reason += "; holding last-known-good knee (recommended " +
                        std::to_string(lg->second.estimate.recommended) +
                        " from round " + std::to_string(lg->second.round) +
                        ")";
        } else {
          rec.reason += "; no known-good knee yet, holding configured size";
        }
      }
      rec.old_size = action.old_size;
      rec.new_size = action.new_size;
      record_decision(std::move(rec));
    }
  }

  if (knobs_.empty()) {
    // A round with nothing to manage must still be distinguishable from a
    // round that never ran.
    obs::ControlDecisionRecord rec;
    rec.at = now;
    rec.action = "round";
    rec.reason = "control round completed with no managed knobs";
    record_decision(std::move(rec));
  }
  return actions;
}

void SoraFramework::on_topology_changed(Service* service,
                                        const std::string& why) {
  const SimTime now = app_.sim().now();
  // Traces gathered so far describe a replica set that no longer exists;
  // restart the localization window so the next verdict is computed from
  // post-change evidence only.
  localizer_.begin_window();
  for (const ResourceKnob& knob : knobs_) {
    const bool owns = knob.service() == service;
    const bool targets =
        knob.is_edge() && knob.completion_service() == service->id();
    if (owns || targets) estimator_.clear(knob);
  }
  obs::ControlDecisionRecord rec;
  rec.at = now;
  rec.target = service->name();
  rec.action = "relocalize";
  rec.reason = "topology changed (" + why +
               "): localization window restarted, affected scatter discarded";
  record_decision(std::move(rec));
  SORA_INFO << "sora: topology changed for " << service->name() << " (" << why
            << "), relocalizing";
}

void SoraFramework::on_hardware_scaled(Service* service, double old_cores,
                                       double new_cores, int old_replicas,
                                       int new_replicas) {
  const SimTime now = app_.sim().now();
  for (const ResourceKnob& knob : knobs_) {
    const bool owns = knob.service() == service;
    const bool targets =
        knob.is_edge() && knob.completion_service() == service->id();
    if (!owns && !targets) continue;

    double factor = 1.0;
    if (old_cores > 0.0 && new_cores != old_cores && owns && !knob.is_edge()) {
      // Vertical scaling of the pool's owner: thread demand scales with the
      // usable cores.
      factor = new_cores / old_cores;
    } else if (old_cores > 0.0 && new_cores != old_cores && targets) {
      // Vertical scaling of an edge knob's target: the target can absorb
      // proportionally more concurrent calls.
      factor = new_cores / old_cores;
    } else if (old_replicas > 0 && new_replicas != old_replicas && targets) {
      // Horizontal scaling of the target: the caller's connection pool
      // should track the target's aggregate parallelism (Section 5.3).
      factor = static_cast<double>(new_replicas) /
               static_cast<double>(old_replicas);
    }

    if (factor != 1.0) {
      const AdaptAction action = adapter_.rescale_proportional(knob, factor, now);
      obs::ControlDecisionRecord rec;
      rec.at = now;
      rec.target = knob.label();
      rec.action = to_string(action.type);
      rec.reason = action.reason;
      rec.old_size = action.old_size;
      rec.new_size = action.new_size;
      rec.old_cores = old_cores;
      rec.new_cores = new_cores;
      rec.old_replicas = old_replicas;
      rec.new_replicas = new_replicas;
      record_decision(std::move(rec));
    }
    // The learned concurrency-goodput curve described the old hardware.
    estimator_.clear(knob);
    SORA_INFO << "sora: hardware scaled for " << knob.label()
              << ", curve reset (factor " << factor << ")";
  }
}

}  // namespace sora
