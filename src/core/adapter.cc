#include "core/adapter.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "svc/service.h"

namespace sora {

const char* to_string(AdaptAction::Type type) {
  switch (type) {
    case AdaptAction::Type::kNone:
      return "none";
    case AdaptAction::Type::kApplied:
      return "applied";
    case AdaptAction::Type::kExplored:
      return "explored";
    case AdaptAction::Type::kProportional:
      return "proportional";
  }
  return "?";
}

ConcurrencyAdapter::ConcurrencyAdapter(AdapterOptions options)
    : options_(options) {}

int ConcurrencyAdapter::clamp_size(double size) const {
  return std::clamp(static_cast<int>(std::lround(size)), options_.min_size,
                    options_.max_size);
}

ConcurrencyAdapter::KnobState& ConcurrencyAdapter::state(
    const ResourceKnob& knob) {
  for (auto& [k, s] : states_) {
    if (k == knob) return s;
  }
  states_.emplace_back(knob, KnobState{});
  return states_.back().second;
}

AdaptAction ConcurrencyAdapter::adapt(const ResourceKnob& knob,
                                      const ConcurrencyEstimate& est,
                                      double recent_concurrency, SimTime now,
                                      double good_fraction) {
  AdaptAction action;
  action.at = now;
  action.old_size = knob.current_size();

  const int replicas = std::max(1, knob.service()->active_replicas());
  KnobState& st = state(knob);

  if (est.valid) {
    const double with_headroom =
        static_cast<double>(est.recommended) * options_.headroom_factor +
        options_.headroom_add;
    const double per_replica = with_headroom / static_cast<double>(replicas);
    action.new_size = clamp_size(std::ceil(per_replica));
    const bool is_shrink = action.new_size < action.old_size;
    if (is_shrink && ++st.pending_shrinks < options_.shrink_confirmations) {
      // Wait for the next round to confirm before shrinking a working pool.
      action.new_size = action.old_size;
      action.type = AdaptAction::Type::kNone;
      action.reason = "shrink pending confirmation";
    } else if (action.new_size != action.old_size) {
      st.pending_shrinks = 0;
      st.last_applied_at = now;
      knob.apply(action.new_size);
      action.type = AdaptAction::Type::kApplied;
      action.reason = "estimate applied";
      SORA_INFO << "adapter: " << knob.label() << " " << action.old_size
                << " -> " << action.new_size << " (knee "
                << est.knee_concurrency << ")";
    } else {
      st.pending_shrinks = 0;
      st.last_applied_at = now;  // model confirms current size is the knee
      action.new_size = action.old_size;
      action.type = AdaptAction::Type::kNone;
      action.reason = "estimate confirms current size";
    }
  } else {
    st.pending_shrinks = 0;
    // No usable estimate. If the current allocation is saturated the knee
    // is invisible because the pool itself caps concurrency: explore up —
    // unless an estimate was applied recently (saturation at the knee is
    // expected; see exploration_cooldown). Exception: when goodput has
    // collapsed while saturated, the system state has drifted under the
    // applied knee — grow immediately and faster.
    const int capacity = knob.total_capacity();
    const bool pinned =
        capacity > 0 &&
        recent_concurrency >=
            options_.saturation_fraction * static_cast<double>(capacity);
    const bool emergency =
        pinned && good_fraction < options_.emergency_good_fraction;
    const bool in_cooldown =
        !emergency && st.last_applied_at >= 0 &&
        now - st.last_applied_at < options_.exploration_cooldown;
    const bool saturated = pinned && !in_cooldown;
    if (saturated) {
      const double factor = emergency
                                ? std::max(options_.exploration_factor,
                                           options_.emergency_factor)
                                : options_.exploration_factor;
      const double grown =
          static_cast<double>(action.old_size) * factor +
          options_.exploration_add;
      action.new_size = clamp_size(grown);
      if (action.new_size != action.old_size) {
        knob.apply(action.new_size);
        action.type = AdaptAction::Type::kExplored;
        action.reason =
            emergency
                ? "emergency exploration: saturated, good fraction collapsed"
                : "exploration: saturated, no visible knee";
        SORA_INFO << "adapter: exploring " << knob.label() << " "
                  << action.old_size << " -> " << action.new_size;
      } else {
        action.type = AdaptAction::Type::kNone;
        action.reason = "saturated at size ceiling";
      }
    } else {
      action.new_size = action.old_size;
      action.type = AdaptAction::Type::kNone;
      action.reason = in_cooldown ? "saturated but in exploration cooldown"
                      : est.failure.empty()
                          ? "not saturated, no estimate"
                          : "no estimate (" + est.failure + "), not saturated";
    }
  }
  history_.push_back(action);
  return action;
}

AdaptAction ConcurrencyAdapter::rescale_proportional(const ResourceKnob& knob,
                                                     double factor,
                                                     SimTime now) {
  AdaptAction action;
  action.at = now;
  action.old_size = knob.current_size();
  action.new_size =
      clamp_size(static_cast<double>(action.old_size) * factor);
  if (action.new_size != action.old_size) {
    knob.apply(action.new_size);
    action.type = AdaptAction::Type::kProportional;
    action.reason = "proportional rescale after hardware scale";
    SORA_INFO << "adapter: proportional " << knob.label() << " "
              << action.old_size << " -> " << action.new_size << " (x"
              << factor << ")";
  } else {
    action.type = AdaptAction::Type::kNone;
    action.reason = "proportional rescale is a no-op";
  }
  history_.push_back(action);
  return action;
}

}  // namespace sora
