#include "core/estimator.h"

#include "common/stats.h"

namespace sora {

ConcurrencyEstimator::ConcurrencyEstimator(Simulator& sim, Tracer& tracer,
                                           EstimatorOptions options)
    : sim_(sim), tracer_(tracer), options_(options), model_(options.scg) {}

ConcurrencyEstimator::Watched* ConcurrencyEstimator::find(
    const ResourceKnob& knob) {
  for (auto& w : watched_) {
    if (w.knob == knob) return &w;
  }
  return nullptr;
}

const ConcurrencyEstimator::Watched* ConcurrencyEstimator::find(
    const ResourceKnob& knob) const {
  for (const auto& w : watched_) {
    if (w.knob == knob) return &w;
  }
  return nullptr;
}

ScatterSampler& ConcurrencyEstimator::watch(const ResourceKnob& knob) {
  if (Watched* w = find(knob)) return *w->sampler;
  const std::size_t max_points = static_cast<std::size_t>(
      options_.window / options_.sampling_interval) * 4 + 16;
  Watched w;
  w.knob = knob;
  w.sampler = std::make_unique<ScatterSampler>(
      sim_, tracer_, knob, options_.sampling_interval,
      options_.default_rt_threshold, max_points);
  w.sampler->start();
  watched_.push_back(std::move(w));
  return *watched_.back().sampler;
}

void ConcurrencyEstimator::set_rt_threshold(const ResourceKnob& knob,
                                            SimTime rtt) {
  if (Watched* w = find(knob)) w->sampler->set_rt_threshold(rtt);
}

SimTime ConcurrencyEstimator::rt_threshold(const ResourceKnob& knob) const {
  const Watched* w = find(knob);
  return w != nullptr ? w->sampler->rt_threshold()
                      : options_.default_rt_threshold;
}

ConcurrencyEstimate ConcurrencyEstimator::estimate(
    const ResourceKnob& knob) const {
  const Watched* w = find(knob);
  if (w == nullptr) {
    ConcurrencyEstimate est;
    est.failure = "knob not watched";
    return est;
  }
  const auto points = w->sampler->points_since(sim_.now() - options_.window);
  return model_.estimate(points);
}

void ConcurrencyEstimator::clear(const ResourceKnob& knob) {
  if (Watched* w = find(knob)) w->sampler->clear();
}

double ConcurrencyEstimator::mean_concurrency(const ResourceKnob& knob) const {
  const Watched* w = find(knob);
  if (w == nullptr) return 0.0;
  const auto points = w->sampler->points_since(sim_.now() - options_.window);
  if (points.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : points) sum += p.concurrency;
  return sum / static_cast<double>(points.size());
}

double ConcurrencyEstimator::good_fraction(const ResourceKnob& knob) const {
  const Watched* w = find(knob);
  if (w == nullptr) return 1.0;
  const auto points = w->sampler->points_since(sim_.now() - options_.window);
  double good = 0.0, all = 0.0;
  for (const auto& p : points) {
    good += p.goodput;
    all += p.throughput;
  }
  return all > 0.0 ? good / all : 1.0;
}

double ConcurrencyEstimator::concurrency_quantile(const ResourceKnob& knob,
                                                  double p) const {
  const Watched* w = find(knob);
  if (w == nullptr) return 0.0;
  const auto points = w->sampler->points_since(sim_.now() - options_.window);
  if (points.empty()) return 0.0;
  std::vector<double> qs;
  qs.reserve(points.size());
  for (const auto& pt : points) qs.push_back(pt.concurrency);
  return percentile(qs, p);
}

ScatterSampler* ConcurrencyEstimator::sampler(const ResourceKnob& knob) {
  Watched* w = find(knob);
  return w != nullptr ? w->sampler.get() : nullptr;
}

const ScatterSampler* ConcurrencyEstimator::sampler(
    const ResourceKnob& knob) const {
  const Watched* w = find(knob);
  return w != nullptr ? w->sampler.get() : nullptr;
}

const std::vector<ResourceKnob> ConcurrencyEstimator::knobs() const {
  std::vector<ResourceKnob> out;
  out.reserve(watched_.size());
  for (const auto& w : watched_) out.push_back(w.knob);
  return out;
}

}  // namespace sora
