// Concurrency Estimator (Section 4.1).
//
// Watches a set of resource knobs: for each one it runs a fine-grained
// ScatterSampler (Metrics Collection Phase) and can produce an optimal
// concurrency estimate through the SCG/SCT model (Estimation Phase) over a
// sliding window. The RT Threshold Propagation Phase updates each watched
// knob's goodput threshold at runtime.
#pragma once

#include <memory>
#include <vector>

#include "core/scg_model.h"
#include "metrics/knob.h"
#include "metrics/scatter_sampler.h"
#include "sim/simulator.h"
#include "trace/tracer.h"

namespace sora {

struct EstimatorOptions {
  SimTime sampling_interval = msec(100);  ///< Table 1's best setting
  /// Estimation window. The paper's testbed uses 60 s against 12-minute
  /// traces; our compressed traces keep the same crest coverage with 120 s
  /// (a window that only sees a trough recommends a knee that strands the
  /// next crest).
  SimTime window = sec(120);
  SimTime default_rt_threshold = msec(50);
  ScgOptions scg;
};

class ConcurrencyEstimator {
 public:
  ConcurrencyEstimator(Simulator& sim, Tracer& tracer,
                       EstimatorOptions options = {});

  /// Start watching a knob (idempotent). Returns its sampler.
  ScatterSampler& watch(const ResourceKnob& knob);

  /// Update the propagated response-time threshold for a knob's goodput.
  void set_rt_threshold(const ResourceKnob& knob, SimTime rtt);
  SimTime rt_threshold(const ResourceKnob& knob) const;

  /// Run the model over the knob's recent window.
  ConcurrencyEstimate estimate(const ResourceKnob& knob) const;

  /// Discard the knob's accumulated samples (after hardware scaling the old
  /// curve no longer describes the system).
  void clear(const ResourceKnob& knob);

  /// Mean observed concurrency over the window.
  double mean_concurrency(const ResourceKnob& knob) const;

  /// Fraction of completions within the knob's deadline over the window
  /// (sum goodput / sum throughput); 1.0 when no data. The adapter's
  /// emergency-exploration trigger consumes this.
  double good_fraction(const ResourceKnob& knob) const;

  /// p-th percentile (0..100) of per-bucket concurrency over the window.
  /// The adapter uses a high quantile for saturation detection: under
  /// bursty load a pool can pin at capacity during crests while the window
  /// mean stays low.
  double concurrency_quantile(const ResourceKnob& knob, double p) const;

  ScatterSampler* sampler(const ResourceKnob& knob);
  const ScatterSampler* sampler(const ResourceKnob& knob) const;

  const ScgModel& model() const { return model_; }
  ScgModel& model() { return model_; }
  const EstimatorOptions& options() const { return options_; }

  const std::vector<ResourceKnob> knobs() const;

 private:
  struct Watched {
    ResourceKnob knob;
    std::unique_ptr<ScatterSampler> sampler;
  };

  Watched* find(const ResourceKnob& knob);
  const Watched* find(const ResourceKnob& knob) const;

  Simulator& sim_;
  Tracer& tracer_;
  EstimatorOptions options_;
  ScgModel model_;
  std::vector<Watched> watched_;
};

}  // namespace sora
